#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include "storage/page.h"
#include "storage/page_file.h"

namespace mlq {
namespace {

TEST(PageTest, PagesForBytes) {
  EXPECT_EQ(PagesForBytes(0), 0);
  EXPECT_EQ(PagesForBytes(-5), 0);
  EXPECT_EQ(PagesForBytes(1), 1);
  EXPECT_EQ(PagesForBytes(kPageSizeBytes), 1);
  EXPECT_EQ(PagesForBytes(kPageSizeBytes + 1), 2);
  EXPECT_EQ(PagesForBytes(10 * kPageSizeBytes), 10);
}

TEST(PageFileTest, AllocationIsDense) {
  PageFile file("f");
  EXPECT_EQ(file.num_pages(), 0);
  EXPECT_EQ(file.Allocate(), 0);
  EXPECT_EQ(file.Allocate(), 1);
  EXPECT_EQ(file.AllocateRun(5), 2);
  EXPECT_EQ(file.num_pages(), 7);
  EXPECT_EQ(file.Allocate(), 7);
}

TEST(PageFileTest, PhysicalReadCounting) {
  PageFile file("f");
  file.AllocateRun(3);
  file.RecordPhysicalRead(0);
  file.RecordPhysicalRead(2);
  EXPECT_EQ(file.physical_reads(), 2);
  file.ResetStats();
  EXPECT_EQ(file.physical_reads(), 0);
}

TEST(BufferPoolTest, FirstFetchMissesSecondHits) {
  PageFile file("f");
  file.AllocateRun(10);
  BufferPool pool(4);
  EXPECT_FALSE(pool.Fetch(&file, 0));
  EXPECT_TRUE(pool.Fetch(&file, 0));
  EXPECT_EQ(pool.hits(), 1);
  EXPECT_EQ(pool.misses(), 1);
  EXPECT_EQ(file.physical_reads(), 1);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  PageFile file("f");
  file.AllocateRun(10);
  BufferPool pool(3);
  pool.Fetch(&file, 0);
  pool.Fetch(&file, 1);
  pool.Fetch(&file, 2);
  // Touch 0 so 1 becomes LRU.
  pool.Fetch(&file, 0);
  // Admit 3: evicts 1.
  pool.Fetch(&file, 3);
  EXPECT_TRUE(pool.Fetch(&file, 0));
  EXPECT_TRUE(pool.Fetch(&file, 2));
  EXPECT_TRUE(pool.Fetch(&file, 3));
  EXPECT_FALSE(pool.Fetch(&file, 1)) << "page 1 should have been evicted";
}

TEST(BufferPoolTest, CapacityBoundsResidentPages) {
  PageFile file("f");
  file.AllocateRun(100);
  BufferPool pool(8);
  for (PageId p = 0; p < 100; ++p) pool.Fetch(&file, p);
  EXPECT_EQ(pool.resident_pages(), 8);
  EXPECT_EQ(pool.misses(), 100);
}

TEST(BufferPoolTest, DistinguishesFiles) {
  PageFile a("a");
  PageFile b("b");
  a.AllocateRun(2);
  b.AllocateRun(2);
  BufferPool pool(8);
  EXPECT_FALSE(pool.Fetch(&a, 0));
  EXPECT_FALSE(pool.Fetch(&b, 0)) << "same page id, different file";
  EXPECT_TRUE(pool.Fetch(&a, 0));
  EXPECT_TRUE(pool.Fetch(&b, 0));
}

TEST(BufferPoolTest, FetchRunCountsMisses) {
  PageFile file("f");
  file.AllocateRun(20);
  BufferPool pool(16);
  EXPECT_EQ(pool.FetchRun(&file, 0, 10), 10);
  EXPECT_EQ(pool.FetchRun(&file, 5, 10), 5);  // 5..9 hit, 10..14 miss.
  EXPECT_EQ(pool.FetchRun(&file, 0, 0), 0);
}

TEST(BufferPoolTest, InvalidateDropsAllPages) {
  PageFile file("f");
  file.AllocateRun(4);
  BufferPool pool(8);
  pool.FetchRun(&file, 0, 4);
  pool.Invalidate();
  EXPECT_EQ(pool.resident_pages(), 0);
  EXPECT_FALSE(pool.Fetch(&file, 0));
}

TEST(BufferPoolTest, HitRate) {
  PageFile file("f");
  file.AllocateRun(2);
  BufferPool pool(2);
  EXPECT_DOUBLE_EQ(pool.HitRate(), 0.0);
  pool.Fetch(&file, 0);  // Miss.
  pool.Fetch(&file, 0);  // Hit.
  pool.Fetch(&file, 0);  // Hit.
  pool.Fetch(&file, 1);  // Miss.
  EXPECT_DOUBLE_EQ(pool.HitRate(), 0.5);
  pool.ResetStats();
  EXPECT_EQ(pool.hits(), 0);
  EXPECT_EQ(pool.misses(), 0);
}

TEST(BufferPoolTest, RepeatedScanLargerThanPoolAlwaysMisses) {
  // Classic sequential-flooding behaviour of LRU: a loop over N > capacity
  // pages never hits. This is exactly the cache-state-dependent cost noise
  // the IO experiments rely on.
  PageFile file("f");
  file.AllocateRun(10);
  BufferPool pool(5);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(pool.FetchRun(&file, 0, 10), 10) << "round " << round;
  }
}

}  // namespace
}  // namespace mlq
