// Property/fuzz test for the MLQ core: random insert/predict/compression
// sequences across random configurations (dimension, strategy, beta,
// lambda, budget, eviction policy, decay, auto-expansion), with
// CheckInvariants called after every compression and at the end of every
// sequence. Fixed master seed: failures reproduce exactly.

#include "quadtree/memory_limited_quadtree.h"

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mlq {
namespace {

MlqConfig RandomConfig(Rng& rng) {
  MlqConfig config;
  config.strategy = rng.NextBool(0.5) ? InsertionStrategy::kEager
                                      : InsertionStrategy::kLazy;
  config.max_depth = static_cast<int>(rng.UniformInt(2, 7));
  config.alpha = rng.Uniform(0.01, 0.2);
  config.gamma = rng.Uniform(0.001, 0.05);
  config.beta = rng.UniformInt(1, 10);
  config.memory_limit_bytes = rng.UniformInt(150, 4000);
  config.auto_expand = rng.NextBool(0.25);
  const int64_t policy = rng.UniformInt(0, 2);
  config.eviction_policy = policy == 0   ? EvictionPolicy::kSseg
                           : policy == 1 ? EvictionPolicy::kCountOnly
                                         : EvictionPolicy::kRandom;
  config.recency_half_life = rng.NextBool(0.3) ? rng.Uniform(50.0, 2000.0)
                                               : 0.0;
  return config;
}

std::string DescribeConfig(const MlqConfig& c, int dims) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "dims=%d strategy=%s lambda=%d alpha=%.3f gamma=%.4f "
                "beta=%lld budget=%lld expand=%d policy=%d half_life=%.0f",
                dims,
                c.strategy == InsertionStrategy::kEager ? "eager" : "lazy",
                c.max_depth, c.alpha, c.gamma,
                static_cast<long long>(c.beta),
                static_cast<long long>(c.memory_limit_bytes),
                c.auto_expand ? 1 : 0, static_cast<int>(c.eviction_policy),
                c.recency_half_life);
  return buf;
}

TEST(InvariantFuzzTest, RandomOpSequencesKeepTreeConsistent) {
  Rng master(0xF0220);
  constexpr int kConfigs = 40;
  constexpr int kOpsPerConfig = 600;
  int64_t total_compressions = 0;

  for (int round = 0; round < kConfigs; ++round) {
    Rng rng(master.Next64());
    const int dims = static_cast<int>(rng.UniformInt(1, 4));
    const MlqConfig config = RandomConfig(rng);
    const std::string description = DescribeConfig(config, dims);
    SCOPED_TRACE("round " + std::to_string(round) + ": " + description);

    const Box space = Box::Cube(dims, 0.0, 1000.0);
    MemoryLimitedQuadtree tree(space, config);
    std::string error;
    int64_t compressions_seen = 0;

    for (int op = 0; op < kOpsPerConfig; ++op) {
      const double dice = rng.NextDouble();
      // Points slightly beyond the space exercise clamping (or, with
      // auto_expand, root expansion).
      const double lo = config.auto_expand ? -200.0 : -50.0;
      const double hi = config.auto_expand ? 1200.0 : 1050.0;
      Point p(dims);
      for (int d = 0; d < dims; ++d) p[d] = rng.Uniform(lo, hi);

      if (dice < 0.80) {
        tree.Insert(p, rng.Uniform(0.0, 10000.0));
      } else if (dice < 0.95) {
        const Prediction prediction = tree.Predict(p);
        ASSERT_GE(prediction.value, 0.0);
        ASSERT_GE(prediction.count, 0);
      } else {
        tree.Compress();
      }

      // The compressor is the most delicate mutation path: validate the
      // whole structure every time it ran (inserts trigger it internally
      // too, so watch the counter rather than the op kind).
      const int64_t compressions = tree.counters().compressions;
      if (compressions != compressions_seen) {
        compressions_seen = compressions;
        ASSERT_TRUE(tree.CheckInvariants(&error))
            << "after compression #" << compressions << " (op " << op
            << "): " << error;
      }
      ASSERT_LE(tree.memory_used(), tree.memory_limit());
    }

    ASSERT_TRUE(tree.CheckInvariants(&error)) << "final: " << error;
    total_compressions += compressions_seen;
  }

  // The budgets above are tight enough that compression must actually have
  // been exercised, or the test is vacuous.
  EXPECT_GT(total_compressions, 100);
}

}  // namespace
}  // namespace mlq
