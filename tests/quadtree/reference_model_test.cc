// Differential test: the quadtree against an independent brute-force
// oracle.
//
// With eager insertion and a budget large enough that compression never
// runs, the tree's state has a purely *geometric* characterization: a block
// at depth k exists iff at least one inserted point maps into it, and its
// summary aggregates exactly the inserted points in its region (every
// insert materializes its full path, so a block exists from the first
// arrival in its region onward and absorbs everything after — i.e. all of
// them). Prediction with parameter beta then has a closed form the oracle
// computes directly from the stored points, with none of the tree's code.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "quadtree/memory_limited_quadtree.h"

namespace mlq {
namespace {

struct Observation {
  Point point;
  double value;
};

// Brute-force re-implementation of Fig. 3's prediction semantics from first
// principles (region arithmetic over the raw observations).
class ReferenceOracle {
 public:
  ReferenceOracle(const Box& space, int max_depth)
      : space_(space), max_depth_(max_depth) {}

  void Insert(const Point& p, double v) { data_.push_back({p, v}); }

  // Deepest block containing `q` with >= beta points; returns its average.
  // Falls back to the root average (reliable = count >= beta) like the tree.
  Prediction Predict(const Point& q, int64_t beta) const {
    Prediction best;
    best.reliable = false;
    for (int depth = 0; depth <= max_depth_; ++depth) {
      const Box region = RegionAt(q, depth);
      double sum = 0.0;
      int64_t count = 0;
      for (const Observation& o : data_) {
        if (InRegion(region, o.point, depth)) {
          sum += o.value;
          ++count;
        }
      }
      if (depth == 0) {
        best.value = count > 0 ? sum / static_cast<double>(count) : 0.0;
        best.count = count;
        best.depth = 0;
        best.reliable = count >= beta;
        if (!best.reliable) return best;
        continue;
      }
      if (count >= beta && count > 0) {
        best.value = sum / static_cast<double>(count);
        best.count = count;
        best.depth = depth;
      } else {
        break;  // Counts shrink with depth; nothing deeper qualifies.
      }
    }
    return best;
  }

 private:
  // The depth-k quadtree block containing q, derived by repeated halving.
  Box RegionAt(const Point& q, int depth) const {
    Box box = space_;
    for (int k = 0; k < depth; ++k) box = box.Child(box.ChildIndexOf(q));
    return box;
  }

  // Membership must use the same tie-breaking as the tree: a point belongs
  // to the child chosen by ChildIndexOf at every level, not to a closed
  // box. Recompute its path and compare prefixes.
  bool InRegion(const Box& region, const Point& p, int depth) const {
    Box box = space_;
    for (int k = 0; k < depth; ++k) {
      box = box.Child(box.ChildIndexOf(p));
    }
    return box == region;
  }

  Box space_;
  int max_depth_;
  std::vector<Observation> data_;
};

class ReferenceModelTest : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(ReferenceModelTest, TreeMatchesOracleOnRandomWorkloads) {
  const auto [dims, beta] = GetParam();
  const Box space = Box::Cube(dims, 0.0, 1024.0);
  MlqConfig config;
  config.strategy = InsertionStrategy::kEager;
  config.max_depth = 4;
  config.memory_limit_bytes = 64 << 20;  // Compression never triggers.

  MemoryLimitedQuadtree tree(space, config);
  ReferenceOracle oracle(space, config.max_depth);

  Rng rng(31337 + static_cast<uint64_t>(dims) * 100 +
          static_cast<uint64_t>(beta));
  for (int i = 0; i < 400; ++i) {
    Point p(dims);
    for (int d = 0; d < dims; ++d) p[d] = rng.Uniform(0.0, 1024.0);
    const double v = rng.Uniform(0.0, 10000.0);
    tree.Insert(p, v);
    oracle.Insert(p, v);

    // Interleave predictions with inserts so every tree size is checked.
    if (i % 20 == 19) {
      for (int probe = 0; probe < 10; ++probe) {
        Point q(dims);
        for (int d = 0; d < dims; ++d) q[d] = rng.Uniform(0.0, 1024.0);
        const Prediction actual = tree.PredictWithBeta(q, beta);
        const Prediction expected = oracle.Predict(q, beta);
        ASSERT_EQ(actual.reliable, expected.reliable)
            << "after " << i + 1 << " inserts at " << q.ToString();
        ASSERT_EQ(actual.depth, expected.depth)
            << "after " << i + 1 << " inserts at " << q.ToString();
        ASSERT_EQ(actual.count, expected.count) << q.ToString();
        ASSERT_NEAR(actual.value, expected.value,
                    1e-9 * std::max(1.0, std::abs(expected.value)))
            << q.ToString();
      }
    }
  }
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

TEST_P(ReferenceModelTest, ClusteredWorkloadsMatchToo) {
  const auto [dims, beta] = GetParam();
  const Box space = Box::Cube(dims, -8.0, 8.0);
  MlqConfig config;
  config.strategy = InsertionStrategy::kEager;
  config.max_depth = 3;
  config.memory_limit_bytes = 64 << 20;

  MemoryLimitedQuadtree tree(space, config);
  ReferenceOracle oracle(space, config.max_depth);
  Rng rng(999 + static_cast<uint64_t>(dims));
  for (int i = 0; i < 300; ++i) {
    // Tight cluster: many duplicate blocks, stressing count aggregation.
    Point p(dims);
    for (int d = 0; d < dims; ++d) {
      p[d] = std::clamp(rng.Gaussian(1.0, 0.5), -8.0, 8.0);
    }
    const double v = rng.Uniform(0.0, 10.0);
    tree.Insert(p, v);
    oracle.Insert(p, v);
  }
  for (int probe = 0; probe < 60; ++probe) {
    Point q(dims);
    for (int d = 0; d < dims; ++d) {
      q[d] = std::clamp(rng.Gaussian(1.0, 1.0), -8.0, 8.0);
    }
    const Prediction actual = tree.PredictWithBeta(q, beta);
    const Prediction expected = oracle.Predict(q, beta);
    ASSERT_EQ(actual.depth, expected.depth) << q.ToString();
    ASSERT_EQ(actual.count, expected.count) << q.ToString();
    ASSERT_NEAR(actual.value, expected.value, 1e-9) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndBeta, ReferenceModelTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values<int64_t>(1, 3, 10)));

}  // namespace
}  // namespace mlq
