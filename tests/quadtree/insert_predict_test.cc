#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "quadtree/memory_limited_quadtree.h"

namespace mlq {
namespace {

MlqConfig BigBudgetConfig(InsertionStrategy strategy, int max_depth = 6) {
  MlqConfig config;
  config.strategy = strategy;
  config.max_depth = max_depth;
  config.memory_limit_bytes = 1 << 20;  // Never compress in these tests.
  return config;
}

TEST(InsertTest, EmptyTreePredictionIsUnreliableZero) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0),
                             BigBudgetConfig(InsertionStrategy::kEager));
  const Prediction p = tree.Predict(Point{50.0, 50.0});
  EXPECT_FALSE(p.reliable);
  EXPECT_DOUBLE_EQ(p.value, 0.0);
  EXPECT_EQ(p.count, 0);
}

TEST(InsertTest, FirstInsertEnablesPrediction) {
  // The quadtree partitions the whole space, so it predicts immediately
  // after one data point (Section 1 of the paper).
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0),
                             BigBudgetConfig(InsertionStrategy::kEager));
  tree.Insert(Point{10.0, 10.0}, 42.0);
  // Same region: exact value.
  EXPECT_DOUBLE_EQ(tree.Predict(Point{10.0, 10.0}).value, 42.0);
  // Far corner: falls back to the root average, still 42.
  const Prediction far = tree.Predict(Point{99.0, 99.0});
  EXPECT_TRUE(far.reliable);
  EXPECT_DOUBLE_EQ(far.value, 42.0);
  EXPECT_EQ(far.depth, 0);
}

TEST(InsertTest, EagerPartitionsToMaxDepth) {
  MemoryLimitedQuadtree tree(
      Box::Cube(2, 0.0, 100.0),
      BigBudgetConfig(InsertionStrategy::kEager, /*max_depth=*/5));
  tree.Insert(Point{10.0, 10.0}, 7.0);
  // Every insert materializes the full path: depth 0..5 -> 6 nodes.
  EXPECT_EQ(tree.num_nodes(), 6);
  const Prediction p = tree.Predict(Point{10.0, 10.0});
  EXPECT_EQ(p.depth, 5);
}

TEST(InsertTest, LazyBeforeFirstCompressionBehavesEagerly) {
  // th_SSE is defined relative to SSE(root) only after the first
  // compression; before that, lazy partitions like eager (Section 5.1
  // protocol: "after the first compression").
  MemoryLimitedQuadtree lazy(Box::Cube(2, 0.0, 100.0),
                             BigBudgetConfig(InsertionStrategy::kLazy));
  MemoryLimitedQuadtree eager(Box::Cube(2, 0.0, 100.0),
                              BigBudgetConfig(InsertionStrategy::kEager));
  EXPECT_DOUBLE_EQ(lazy.CurrentSseThreshold(), 0.0);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Point p{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    const double v = rng.Uniform(0.0, 10.0);
    lazy.Insert(p, v);
    eager.Insert(p, v);
  }
  EXPECT_EQ(lazy.num_nodes(), eager.num_nodes());
}

TEST(InsertTest, LazyThresholdActivatesAfterCompression) {
  MlqConfig config = BigBudgetConfig(InsertionStrategy::kLazy);
  config.alpha = 0.05;
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), config);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    tree.Insert(Point{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)},
                rng.Uniform(0.0, 100.0));
  }
  tree.Compress();
  const double threshold = tree.CurrentSseThreshold();
  EXPECT_GT(threshold, 0.0);
  EXPECT_DOUBLE_EQ(threshold, 0.05 * tree.root().summary().Sse());
}

TEST(InsertTest, EagerThresholdAlwaysZero) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0),
                             BigBudgetConfig(InsertionStrategy::kEager));
  tree.Insert(Point{1.0, 1.0}, 5.0);
  tree.Compress();
  EXPECT_DOUBLE_EQ(tree.CurrentSseThreshold(), 0.0);
}

TEST(InsertTest, SummariesAccumulateAlongPath) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 8.0),
                             BigBudgetConfig(InsertionStrategy::kEager, 2));
  tree.Insert(Point{1.0, 1.0}, 10.0);  // Child 0 everywhere.
  tree.Insert(Point{7.0, 7.0}, 20.0);  // Child 3 at the top.
  const NodeView root = tree.root();
  EXPECT_EQ(root.summary().count, 2);
  EXPECT_DOUBLE_EQ(root.summary().sum, 30.0);
  const NodeView lower_left = root.Child(0);
  ASSERT_TRUE(lower_left.valid());
  EXPECT_EQ(lower_left.summary().count, 1);
  EXPECT_DOUBLE_EQ(lower_left.summary().sum, 10.0);
  const NodeView upper_right = root.Child(3);
  ASSERT_TRUE(upper_right.valid());
  EXPECT_DOUBLE_EQ(upper_right.summary().sum, 20.0);
}

TEST(InsertTest, PredictionIsBlockAverage) {
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 8.0),
                             BigBudgetConfig(InsertionStrategy::kEager, 1));
  // Depth limited to 1: left block [0,4), right block [4,8].
  tree.Insert(Point{1.0}, 10.0);
  tree.Insert(Point{2.0}, 20.0);
  tree.Insert(Point{6.0}, 100.0);
  EXPECT_DOUBLE_EQ(tree.Predict(Point{0.5}).value, 15.0);
  EXPECT_DOUBLE_EQ(tree.Predict(Point{7.0}).value, 100.0);
}

TEST(InsertTest, BetaRequiresEnoughPoints) {
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 8.0),
                             BigBudgetConfig(InsertionStrategy::kEager, 1));
  tree.Insert(Point{1.0}, 10.0);
  tree.Insert(Point{2.0}, 20.0);
  tree.Insert(Point{6.0}, 100.0);
  // beta = 1: deepest node (left leaf, count 2) answers.
  EXPECT_DOUBLE_EQ(tree.PredictWithBeta(Point{1.0}, 1).value, 15.0);
  // beta = 2: left leaf still qualifies.
  EXPECT_DOUBLE_EQ(tree.PredictWithBeta(Point{1.0}, 2).value, 15.0);
  // beta = 3: only the root qualifies -> average of all three points.
  const Prediction root_pred = tree.PredictWithBeta(Point{1.0}, 3);
  EXPECT_TRUE(root_pred.reliable);
  EXPECT_EQ(root_pred.depth, 0);
  EXPECT_NEAR(root_pred.value, 130.0 / 3.0, 1e-12);
  // beta = 4: nothing qualifies; unreliable root average.
  const Prediction none = tree.PredictWithBeta(Point{1.0}, 4);
  EXPECT_FALSE(none.reliable);
  EXPECT_NEAR(none.value, 130.0 / 3.0, 1e-12);
}

TEST(InsertTest, PredictionStddevReflectsBlockSpread) {
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 8.0),
                             BigBudgetConfig(InsertionStrategy::kEager, 1));
  tree.Insert(Point{1.0}, 10.0);
  tree.Insert(Point{2.0}, 20.0);
  // Left leaf: values {10, 20} -> stddev sqrt(SSE/C) = sqrt(50/2) = 5.
  const Prediction left = tree.Predict(Point{1.5});
  EXPECT_DOUBLE_EQ(left.stddev, 5.0);
  // Single-point block: stddev 0.
  tree.Insert(Point{7.0}, 99.0);
  EXPECT_DOUBLE_EQ(tree.Predict(Point{7.0}).stddev, 0.0);
  // beta above everything: unreliable root fallback still reports spread.
  const Prediction root = tree.PredictWithBeta(Point{1.0}, 100);
  EXPECT_FALSE(root.reliable);
  EXPECT_GT(root.stddev, 0.0);
}

TEST(InsertTest, NonFiniteObservationsAreDropped) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0),
                             BigBudgetConfig(InsertionStrategy::kEager));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  tree.Insert(Point{10.0, 10.0}, nan);
  tree.Insert(Point{10.0, 10.0}, inf);
  tree.Insert(Point{nan, 10.0}, 5.0);
  tree.Insert(Point{10.0, -inf}, 5.0);
  EXPECT_EQ(tree.root().summary().count, 0)
      << "garbled measurements must not poison the model";
  tree.Insert(Point{10.0, 10.0}, 5.0);
  EXPECT_EQ(tree.root().summary().count, 1);
  EXPECT_DOUBLE_EQ(tree.Predict(Point{10.0, 10.0}).value, 5.0);
}

TEST(InsertTest, OutOfSpacePointsAreClamped) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0),
                             BigBudgetConfig(InsertionStrategy::kEager));
  tree.Insert(Point{-50.0, 500.0}, 9.0);  // Clamps to (0, 100).
  EXPECT_EQ(tree.root().summary().count, 1);
  EXPECT_DOUBLE_EQ(tree.Predict(Point{0.0, 100.0}).value, 9.0);
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

TEST(InsertTest, UpperBoundaryPointIsOwned) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0),
                             BigBudgetConfig(InsertionStrategy::kEager));
  tree.Insert(Point{100.0, 100.0}, 3.0);
  EXPECT_DOUBLE_EQ(tree.Predict(Point{100.0, 100.0}).value, 3.0);
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

TEST(InsertTest, CountersTrackInsertions) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0),
                             BigBudgetConfig(InsertionStrategy::kEager));
  for (int i = 0; i < 10; ++i) {
    tree.Insert(Point{static_cast<double>(i * 10), 5.0}, 1.0);
  }
  EXPECT_EQ(tree.counters().insertions, 10);
  EXPECT_GT(tree.counters().nodes_created, 0);
  EXPECT_EQ(tree.counters().compressions, 0);
}

// Property test: after arbitrary workloads the structural invariants hold
// and the root summarizes every inserted point, for all dimensionalities
// and both strategies.
class InsertPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, InsertionStrategy>> {};

TEST_P(InsertPropertyTest, InvariantsAfterRandomWorkload) {
  const auto [dims, strategy] = GetParam();
  MemoryLimitedQuadtree tree(Box::Cube(dims, 0.0, 1000.0),
                             BigBudgetConfig(strategy));
  Rng rng(1234 + static_cast<uint64_t>(dims));
  double total = 0.0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    Point p(dims);
    for (int d = 0; d < dims; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    const double v = rng.Uniform(0.0, 10000.0);
    tree.Insert(p, v);
    total += v;
  }
  EXPECT_EQ(tree.root().summary().count, n);
  EXPECT_NEAR(tree.root().summary().sum, total, 1e-6 * total);
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

TEST_P(InsertPropertyTest, PredictionsAreWithinObservedValueRange) {
  const auto [dims, strategy] = GetParam();
  MemoryLimitedQuadtree tree(Box::Cube(dims, 0.0, 1000.0),
                             BigBudgetConfig(strategy));
  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    Point p(dims);
    for (int d = 0; d < dims; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    tree.Insert(p, rng.Uniform(100.0, 200.0));
  }
  // Averages of values in [100, 200] must stay in [100, 200].
  for (int i = 0; i < 100; ++i) {
    Point q(dims);
    for (int d = 0; d < dims; ++d) q[d] = rng.Uniform(0.0, 1000.0);
    const Prediction pred = tree.Predict(q);
    EXPECT_GE(pred.value, 100.0);
    EXPECT_LE(pred.value, 200.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndStrategies, InsertPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(InsertionStrategy::kEager,
                                         InsertionStrategy::kLazy)));

TEST(InsertTest, ArenaGrowsAcrossBudgetBoundaryUnderCompressionChurn) {
  // A tight budget forces the tree to oscillate: partition to the limit,
  // compress, repartition elsewhere. The pool must keep recycling blocks
  // (bounded arena) while the logical accounting never crosses the budget.
  MlqConfig config;
  config.strategy = InsertionStrategy::kEager;
  config.max_depth = 6;
  config.memory_limit_bytes = 1800;
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 1000.0), config);
  Rng rng(99);
  size_t max_slots = 0;
  for (int i = 0; i < 5000; ++i) {
    // Shift the hot region every 500 inserts so old structure gets evicted
    // and new blocks are demanded at full budget.
    const double center = 100.0 + 800.0 * ((i / 500) % 2);
    Point p{rng.Gaussian(center, 50.0), rng.Gaussian(center, 50.0)};
    tree.Insert(p, rng.Uniform(0.0, 10000.0));
    ASSERT_LE(tree.memory_used(), config.memory_limit_bytes);
    max_slots = std::max(max_slots, tree.pool().slot_count());
  }
  EXPECT_GT(tree.counters().compressions, 0);
  EXPECT_GT(tree.counters().nodes_freed, 0);
  // The arena's physical slot count stays within a small factor of the
  // budget's node ceiling: recycling works, growth is bounded.
  const int64_t max_nodes =
      1 + (config.memory_limit_bytes - kNodeBaseBytes) / kNonRootNodeBytes;
  const int fanout = tree.pool().fanout();
  EXPECT_LE(max_slots, static_cast<size_t>(max_nodes * fanout));
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

TEST(PredictBatchTest, MatchesPerPointPredictions) {
  // The batched entry point must be element-wise identical to the scalar
  // path: same descent, same summaries, same reliability flags.
  for (const int dims : {1, 3}) {
    MlqConfig config = BigBudgetConfig(InsertionStrategy::kEager);
    MemoryLimitedQuadtree tree(Box::Cube(dims, 0.0, 1000.0), config);
    Rng rng(1234);
    for (int i = 0; i < 2000; ++i) {
      Point p(dims);
      for (int d = 0; d < dims; ++d) p[d] = rng.Uniform(0.0, 1000.0);
      tree.Insert(p, rng.Uniform(0.0, 10000.0));
    }
    std::vector<Point> queries;
    for (int i = 0; i < 300; ++i) {
      Point q(dims);
      // Include out-of-space points: clamping must match too.
      for (int d = 0; d < dims; ++d) q[d] = rng.Uniform(-200.0, 1200.0);
      queries.push_back(q);
    }
    std::vector<Prediction> batch(queries.size());
    tree.PredictBatch(queries, batch);
    for (size_t i = 0; i < queries.size(); ++i) {
      const Prediction scalar = tree.Predict(queries[i]);
      ASSERT_DOUBLE_EQ(batch[i].value, scalar.value) << "dims " << dims;
      ASSERT_DOUBLE_EQ(batch[i].stddev, scalar.stddev);
      ASSERT_EQ(batch[i].depth, scalar.depth);
      ASSERT_EQ(batch[i].count, scalar.count);
      ASSERT_EQ(batch[i].reliable, scalar.reliable);
    }
  }
}

TEST(PredictBatchTest, ExplicitBetaVariant) {
  MlqConfig config = BigBudgetConfig(InsertionStrategy::kEager);
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 1000.0), config);
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    tree.Insert(p, rng.Uniform(0.0, 100.0));
  }
  std::vector<Point> queries;
  for (int i = 0; i < 50; ++i) {
    queries.push_back(Point{rng.Uniform(0.0, 1000.0),
                            rng.Uniform(0.0, 1000.0)});
  }
  std::vector<Prediction> batch(queries.size());
  tree.PredictBatchWithBeta(queries, batch, /*beta=*/10);
  for (size_t i = 0; i < queries.size(); ++i) {
    const Prediction scalar = tree.PredictWithBeta(queries[i], 10);
    ASSERT_DOUBLE_EQ(batch[i].value, scalar.value);
    ASSERT_GE(batch[i].count, 10);
  }
}

TEST(PredictBatchTest, EmptyBatchIsANoOp) {
  MlqConfig config = BigBudgetConfig(InsertionStrategy::kEager);
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 1000.0), config);
  tree.PredictBatch({}, {});
}

}  // namespace
}  // namespace mlq
