// Property/fuzz test for windowed (exponential-decay) summaries: random
// insert / predict / epoch-advance / compress interleavings across random
// configurations must keep every summary triple non-negative and finite,
// keep predictions inside the observed value range (decay is
// average-preserving), and leave CheckInvariants clean — including when
// several decayed trees share one arena and incremental CompactStep runs
// between (and inside) decay epochs. Fixed master seed: failures
// reproduce exactly.

#include "quadtree/memory_limited_quadtree.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "quadtree/shared_node_arena.h"

namespace mlq {
namespace {

constexpr double kMaxValue = 10000.0;

MlqConfig RandomDecayConfig(Rng& rng) {
  MlqConfig config;
  config.strategy = rng.NextBool(0.5) ? InsertionStrategy::kEager
                                      : InsertionStrategy::kLazy;
  config.max_depth = static_cast<int>(rng.UniformInt(2, 7));
  config.alpha = rng.Uniform(0.01, 0.2);
  config.gamma = rng.Uniform(0.001, 0.05);
  config.beta = rng.UniformInt(1, 10);
  config.memory_limit_bytes = rng.UniformInt(150, 4000);
  // Short half-lives age summaries aggressively (counts collapse to zero),
  // long ones decay by sub-unit amounts that round away — both ends have
  // bitten during development, so the fuzz covers the whole range.
  config.decay_half_life = rng.Uniform(0.5, 64.0);
  config.recency_half_life =
      rng.NextBool(0.3) ? rng.Uniform(50.0, 2000.0) : 0.0;
  return config;
}

// Every node summary must stay a plausible aggregate: non-negative count
// and variance accumulator, finite everything, and — because all inserted
// values are in [0, kMaxValue] and decay preserves averages — node
// averages inside that range.
void CheckSummaries(const MemoryLimitedQuadtree& tree) {
  tree.ForEachNode([&](const NodeView& node, const Box&) {
    const SummaryTriple& s = node.summary();
    ASSERT_GE(s.count, 0);
    ASSERT_TRUE(std::isfinite(s.sum));
    ASSERT_TRUE(std::isfinite(s.sum_squares));
    ASSERT_GE(s.sum_squares, 0.0);
    if (s.count > 0) {
      ASSERT_GE(s.Avg(), 0.0);
      ASSERT_LE(s.Avg(), kMaxValue * (1.0 + 1e-9));
    } else {
      ASSERT_EQ(s.sum, 0.0);
    }
  });
}

TEST(DecayPropertyTest, RandomDecayInterleavingsKeepTreeConsistent) {
  Rng master(0xDECA1);
  constexpr int kConfigs = 40;
  constexpr int kOpsPerConfig = 600;
  int64_t total_compressions = 0;
  int64_t total_epochs = 0;

  for (int round = 0; round < kConfigs; ++round) {
    Rng rng(master.Next64());
    const int dims = static_cast<int>(rng.UniformInt(1, 3));
    const MlqConfig config = RandomDecayConfig(rng);
    SCOPED_TRACE("round " + std::to_string(round) +
                 " half_life=" + std::to_string(config.decay_half_life));

    const Box space = Box::Cube(dims, 0.0, 1000.0);
    MemoryLimitedQuadtree tree(space, config);
    std::string error;
    int64_t compressions_seen = 0;

    for (int op = 0; op < kOpsPerConfig; ++op) {
      const double dice = rng.NextDouble();
      Point p(dims);
      for (int d = 0; d < dims; ++d) p[d] = rng.Uniform(0.0, 1000.0);

      if (dice < 0.70) {
        tree.Insert(p, rng.Uniform(0.0, kMaxValue));
      } else if (dice < 0.85) {
        const Prediction prediction = tree.Predict(p);
        ASSERT_TRUE(std::isfinite(prediction.value));
        ASSERT_GE(prediction.value, 0.0);
        ASSERT_LE(prediction.value, kMaxValue * (1.0 + 1e-9));
      } else if (dice < 0.95) {
        // Bursty clock: single ticks and multi-epoch jumps (several
        // half-lives at once, as after an abrupt-drift burst).
        tree.AdvanceDecayEpoch(rng.UniformInt(1, 12));
        ++total_epochs;
      } else {
        tree.Compress();
      }

      const int64_t compressions = tree.counters().compressions;
      if (compressions != compressions_seen) {
        compressions_seen = compressions;
        ASSERT_TRUE(tree.CheckInvariants(&error))
            << "after compression #" << compressions << " (op " << op
            << "): " << error;
      }
      ASSERT_LE(tree.memory_used(), tree.memory_limit());
    }

    ASSERT_TRUE(tree.CheckInvariants(&error)) << "final: " << error;
    CheckSummaries(tree);
    total_compressions += compressions_seen;
  }

  // Vacuity guards: the sequences must actually have compressed and aged.
  EXPECT_GT(total_compressions, 50);
  EXPECT_GT(total_epochs, 100);
}

// Several decayed trees on one shared arena, with incremental CompactStep
// interleaved between inserts and epoch advances: relocation must move the
// per-node decay epochs with the blocks (a block whose epoch were lost
// would decay twice or never).
TEST(DecayPropertyTest, SharedArenaCompactStepInterleavesWithDecay) {
  Rng rng(0xDECA2);
  auto arena = std::make_shared<SharedNodeArena>(/*fanout=*/4);

  MlqConfig config;
  config.strategy = InsertionStrategy::kLazy;
  config.max_depth = 6;
  config.beta = 1;
  config.memory_limit_bytes = 1800;
  config.decay_half_life = 4.0;

  const Box space = Box::Cube(2, 0.0, 1000.0);
  std::vector<std::unique_ptr<MemoryLimitedQuadtree>> trees;
  for (int i = 0; i < 3; ++i) {
    trees.push_back(std::make_unique<MemoryLimitedQuadtree>(space, config,
                                                            arena));
  }

  std::string error;
  for (int op = 0; op < 6000; ++op) {
    auto& tree = *trees[static_cast<size_t>(rng.UniformInt(0, 2))];
    const double dice = rng.NextDouble();
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    if (dice < 0.80) {
      tree.Insert(p, rng.Uniform(0.0, kMaxValue));
    } else if (dice < 0.90) {
      tree.AdvanceDecayEpoch(rng.UniformInt(1, 6));
    } else {
      // Tiny budgets maximize the number of partial relocation passes a
      // node block can live through.
      arena->CompactStep(rng.UniformInt(1, 64));
    }
    if (op % 500 == 499) {
      for (auto& t : trees) {
        ASSERT_TRUE(t->CheckInvariants(&error)) << "op " << op << ": "
                                                << error;
      }
    }
  }
  // Converge the compaction, then re-validate everything end to end.
  while (!arena->CompactStep(4096).done) {
  }
  for (auto& t : trees) {
    ASSERT_TRUE(t->CheckInvariants(&error)) << error;
    CheckSummaries(*t);
    for (int i = 0; i < 50; ++i) {
      Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
      const Prediction prediction = t->Predict(p);
      ASSERT_TRUE(std::isfinite(prediction.value));
      ASSERT_GE(prediction.value, 0.0);
    }
  }
}

}  // namespace
}  // namespace mlq
