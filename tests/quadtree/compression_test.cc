#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "quadtree/memory_limited_quadtree.h"

namespace mlq {
namespace {

MlqConfig Config(InsertionStrategy strategy, int64_t memory_bytes,
                 double gamma = 0.001, int max_depth = 6) {
  MlqConfig config;
  config.strategy = strategy;
  config.max_depth = max_depth;
  config.memory_limit_bytes = memory_bytes;
  config.gamma = gamma;
  return config;
}

TEST(CompressionTest, MemoryNeverExceedsLimit) {
  const int64_t limit = 1800;
  MemoryLimitedQuadtree tree(Box::Cube(4, 0.0, 1000.0),
                             Config(InsertionStrategy::kEager, limit));
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    Point p(4);
    for (int d = 0; d < 4; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    tree.Insert(p, rng.Uniform(0.0, 10000.0));
    ASSERT_LE(tree.memory_used(), limit) << "exceeded at insert " << i;
  }
  EXPECT_GT(tree.counters().compressions, 0);
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

TEST(CompressionTest, CompressionFreesAtLeastGammaFraction) {
  MlqConfig config = Config(InsertionStrategy::kEager, 1 << 20, /*gamma=*/0.01);
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), config);
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    tree.Insert(Point{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)},
                rng.Uniform(0.0, 100.0));
  }
  const int64_t before = tree.memory_used();
  tree.Compress();
  const int64_t freed = before - tree.memory_used();
  EXPECT_GE(freed, static_cast<int64_t>(0.01 * config.memory_limit_bytes));
}

TEST(CompressionTest, RemovesSmallestSsegLeafFirst) {
  // Build a depth-1 tree over [0,8) x [0,8) with three leaves of different
  // SSEG and compress with a tiny gamma (removes exactly one leaf).
  MlqConfig config = Config(InsertionStrategy::kEager, 1 << 20,
                            /*gamma=*/1e-9, /*max_depth=*/1);
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 8.0), config);
  // Leaf 0 (lower-left): values near the overall average -> small SSEG.
  tree.Insert(Point{1.0, 1.0}, 50.0);
  // Leaf 1 (lower-right): far from average, 2 points -> large SSEG.
  tree.Insert(Point{6.0, 1.0}, 100.0);
  tree.Insert(Point{6.5, 1.5}, 100.0);
  // Leaf 2 (upper-left): far from average -> large SSEG.
  tree.Insert(Point{1.0, 6.0}, 0.0);

  // Averages: root = 62.5. SSEG(leaf0) = 1 * 12.5^2; SSEG(leaf1) =
  // 2 * 37.5^2; SSEG(leaf2) = 1 * 62.5^2. Leaf0 must go first.
  tree.Compress();
  const NodeView root = tree.root();
  EXPECT_FALSE(root.Child(0).valid()) << "smallest-SSEG leaf should be removed";
  EXPECT_TRUE(root.Child(1).valid());
  EXPECT_TRUE(root.Child(2).valid());
}

TEST(CompressionTest, ParentBecomesLeafAndIsReconsidered) {
  // Force removal of an entire subtree: deep chain with a generous gamma.
  MlqConfig config = Config(InsertionStrategy::kEager, 1 << 20,
                            /*gamma=*/1.0, /*max_depth=*/4);
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 16.0), config);
  tree.Insert(Point{1.0}, 5.0);
  EXPECT_EQ(tree.num_nodes(), 5);  // Root + chain of 4.
  tree.Compress();
  // gamma = 100% can never be met, but the queue drains: everything except
  // the root goes.
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_TRUE(tree.root().IsLeaf());
  EXPECT_EQ(tree.root().summary().count, 1);  // Summary survives.
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

TEST(CompressionTest, RootIsNeverRemoved) {
  MlqConfig config = Config(InsertionStrategy::kEager, 1 << 20, 1.0);
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), config);
  tree.Compress();  // Compressing an empty tree must be safe.
  EXPECT_EQ(tree.num_nodes(), 1);
  tree.Insert(Point{1.0, 1.0}, 2.0);
  tree.Compress();
  tree.Compress();
  EXPECT_EQ(tree.num_nodes(), 1);
}

TEST(CompressionTest, PredictionsFallBackToParentAfterCompression) {
  MlqConfig config = Config(InsertionStrategy::kEager, 1 << 20, 1.0,
                            /*max_depth=*/3);
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 8.0), config);
  tree.Insert(Point{1.0}, 10.0);
  tree.Insert(Point{7.0}, 50.0);
  tree.Compress();  // Removes everything below the root.
  const Prediction p = tree.Predict(Point{1.0});
  EXPECT_EQ(p.depth, 0);
  EXPECT_DOUBLE_EQ(p.value, 30.0);
}

// SSENC(b) from the stored summaries: SSE(b) minus every existing child's
// (SSE + SSEG) contribution — the quantity TotalSsenc sums over non-full
// blocks.
double NodeSsenc(const NodeView& node) {
  double ssenc = node.summary().Sse();
  for (const NodeView child : node.children()) {
    ssenc -= child.summary().Sse() + child.Sseg();
  }
  return std::max(0.0, ssenc);
}

TEST(CompressionTest, SsegEqualsTssencIncrease) {
  // Equivalence of Eq. 8 and Eq. 9: removing leaf b increases TSSENC by
  // exactly SSEG(b) when b's parent was already a non-full block, and by
  // SSEG(b) + SSENC(parent) when the parent was full (it then joins the
  // non-full set of Eq. 6).
  MlqConfig config = Config(InsertionStrategy::kEager, 1 << 20,
                            /*gamma=*/1e-9, /*max_depth=*/2);
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 8.0), config);
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    tree.Insert(Point{rng.Uniform(0.0, 8.0), rng.Uniform(0.0, 8.0)},
                rng.Uniform(0.0, 100.0));
  }
  const int full_children = 1 << 2;
  for (int round = 0; round < 8; ++round) {
    const double tssenc_before = tree.TotalSsenc();
    // Find the minimum-SSEG leaf (what compression will remove next).
    NodeView victim;
    tree.ForEachNode([&](const NodeView& node, const Box&) {
      if (node.IsLeaf() && node.has_parent()) {
        if (!victim.valid() || node.Sseg() < victim.Sseg()) victim = node;
      }
    });
    if (!victim.valid()) break;  // Only the root remains.
    const double sseg = victim.Sseg();
    const bool parent_was_full =
        victim.parent().num_children() == full_children;
    // Expected delta: SSEG(b), plus — if the parent was full — the parent's
    // previously hidden SSENC (it joins the non-full set of Eq. 6).
    const double expected_delta =
        parent_was_full ? NodeSsenc(victim.parent()) + sseg : sseg;
    tree.Compress();  // gamma ~ 0: removes exactly one leaf.
    const double tssenc_after = tree.TotalSsenc();
    EXPECT_NEAR(tssenc_after - tssenc_before, expected_delta,
                1e-6 * std::max(1.0, expected_delta))
        << "round " << round;
  }
}

TEST(CompressionTest, PaperFigureSevenSequence) {
  // Reproduces Fig. 7: B141 and B144 (SSEG 1 each) go before B11 (SSEG 2),
  // and removing both raises TSSENC by 2.
  MlqConfig config = Config(InsertionStrategy::kEager, 1 << 20,
                            /*gamma=*/1e-9, /*max_depth=*/2);
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 16.0), config);
  // Root block [0,16)^2; B11 = child 0 of root; B14 = child 3 of B1... the
  // paper's 1-level numbering maps here to: B11 -> root child 0, B14 ->
  // root child 3 with two sub-blocks B141 -> child 0, B144 -> child 3.
  // Values chosen to reproduce the figure's summaries:
  //   B11: 1 point value 8, root avg 10 -> SSEG(B11) = (10-8)^2 = 4.
  //   Actually the figure has SSEG(B11) = 2; we only need the *ordering*.
  tree.Insert(Point{1.0, 1.0}, 9.0);     // B11-ish leaf.
  tree.Insert(Point{9.0, 9.0}, 9.0);     // B141: low SSEG.
  tree.Insert(Point{15.0, 15.0}, 11.0);  // B144: low SSEG.
  // Root avg now 29/3.
  const double tssenc0 = tree.TotalSsenc();
  tree.Compress();  // Removes one of the two SSEG-minimal deep leaves.
  tree.Compress();
  const double tssenc1 = tree.TotalSsenc();
  // The two cheapest removals happened; the increase equals the sum of the
  // two smallest SSEGs at the time of removal.
  EXPECT_GT(tssenc1, tssenc0);
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

TEST(CompressionTest, BudgetTooSmallForAnyChildStillWorks) {
  // A budget that only fits the root: every insert accumulates there and
  // predictions are the global average — degraded, never broken.
  MlqConfig config = Config(InsertionStrategy::kEager, kNodeBaseBytes);
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), config);
  tree.Insert(Point{10.0, 10.0}, 10.0);
  tree.Insert(Point{90.0, 90.0}, 30.0);
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_DOUBLE_EQ(tree.Predict(Point{50.0, 50.0}).value, 20.0);
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

TEST(CompressionTest, SingleChildBudgetRecyclesTheChild) {
  // Room for the root plus exactly one child: inserts into different
  // quadrants must evict the previous child (it is not on the new path) and
  // the tree keeps answering from the best information it has.
  MlqConfig config =
      Config(InsertionStrategy::kEager, kNodeBaseBytes + kNonRootNodeBytes,
             /*gamma=*/0.001, /*max_depth=*/1);
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 8.0), config);
  tree.Insert(Point{1.0}, 10.0);
  EXPECT_EQ(tree.num_nodes(), 2);
  tree.Insert(Point{7.0}, 90.0);  // Evicts the left child, creates the right.
  EXPECT_EQ(tree.num_nodes(), 2);
  EXPECT_FALSE(tree.root().Child(0).valid());
  ASSERT_TRUE(tree.root().Child(1).valid());
  EXPECT_DOUBLE_EQ(tree.Predict(Point{7.0}).value, 90.0);
  // The left region falls back to the root, which remembers both points.
  EXPECT_DOUBLE_EQ(tree.Predict(Point{1.0}).value, 50.0);
  EXPECT_EQ(tree.counters().compressions, 1);
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

TEST(CompressionTest, CountersTrackCompressions) {
  MemoryLimitedQuadtree tree(Box::Cube(4, 0.0, 1000.0),
                             Config(InsertionStrategy::kEager, 1800));
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    Point p(4);
    for (int d = 0; d < 4; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    tree.Insert(p, rng.Uniform(0.0, 10000.0));
  }
  EXPECT_GT(tree.counters().compressions, 0);
  EXPECT_GT(tree.counters().nodes_freed, 0);
  EXPECT_EQ(tree.counters().nodes_created - tree.counters().nodes_freed + 1,
            tree.num_nodes());
}

TEST(CompressionTest, LazyCompressesLessOftenThanEager) {
  // The paper's core trade-off (Experiment 2): lazy insertion delays
  // reaching the memory limit and compresses less frequently.
  const Box space = Box::Cube(4, 0.0, 1000.0);
  MemoryLimitedQuadtree eager(space, Config(InsertionStrategy::kEager, 1800));
  MemoryLimitedQuadtree lazy(space, Config(InsertionStrategy::kLazy, 1800));
  Rng rng(9);
  for (int i = 0; i < 3000; ++i) {
    Point p(4);
    for (int d = 0; d < 4; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    const double v = rng.Uniform(0.0, 10000.0);
    eager.Insert(p, v);
    lazy.Insert(p, v);
  }
  EXPECT_LT(lazy.counters().compressions, eager.counters().compressions);
}

// Property sweep: budget limits are honored for many (dims, budget, gamma)
// combinations and the tree stays structurally sound.
class CompressionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int64_t, double>> {};

TEST_P(CompressionPropertyTest, BudgetHonoredAndInvariantsHold) {
  const auto [dims, budget, gamma] = GetParam();
  MlqConfig config = Config(InsertionStrategy::kEager, budget, gamma);
  MemoryLimitedQuadtree tree(Box::Cube(dims, 0.0, 1000.0), config);
  Rng rng(1000 + static_cast<uint64_t>(dims) + static_cast<uint64_t>(budget));
  for (int i = 0; i < 800; ++i) {
    Point p(dims);
    for (int d = 0; d < dims; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    tree.Insert(p, rng.Uniform(0.0, 10000.0));
    ASSERT_LE(tree.memory_used(), budget);
  }
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
  // The tree must still answer every prediction.
  for (int i = 0; i < 50; ++i) {
    Point q(dims);
    for (int d = 0; d < dims; ++d) q[d] = rng.Uniform(0.0, 1000.0);
    const Prediction p = tree.Predict(q);
    EXPECT_GE(p.value, 0.0);
    EXPECT_LE(p.value, 10000.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompressionPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values<int64_t>(500, 1800, 8192),
                       ::testing::Values(0.001, 0.05, 0.25)));

}  // namespace
}  // namespace mlq
