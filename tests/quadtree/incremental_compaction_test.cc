// Incremental arena compaction (SharedNodeArena::CompactStep).
//
// The contract under test: a sequence of bounded CompactStep calls (1)
// never moves more than its per-step budget, (2) keeps the arena and every
// resident tree consistent after every step, (3) converges to the same
// dense physical footprint — and byte-identical serialized trees — as a
// single stop-the-world Compact(), and (4) patches registered root handles
// when a root block relocates. The pause-bound property (each step an order
// of magnitude below a full compaction on a 100k-slot arena) is asserted
// here and tracked over time by bench/micro_ops.cc.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/timer.h"
#include "model/serialization.h"
#include "quadtree/memory_limited_quadtree.h"
#include "quadtree/shared_node_arena.h"

namespace mlq {
namespace {

double Surface(const Point& p, double phase) {
  const double x = p[0] / 1000.0;
  const double y = p[1] / 1000.0;
  return 1000.0 * (1.0 + std::sin(3.0 * x + phase) * std::cos(2.0 * y)) +
         500.0 * x * y;
}

MlqConfig ChurnConfig(int64_t budget) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kLazy;
  config.max_depth = 6;
  config.beta = 1;
  config.memory_limit_bytes = budget;
  return config;
}

std::vector<Observation> MakeWorkload(int n, uint64_t seed, double phase) {
  Rng rng(seed);
  std::vector<Observation> workload;
  workload.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    workload.push_back({p, Surface(p, phase) + rng.Gaussian(0.0, 25.0)});
  }
  return workload;
}

// Builds a fragmented arena: `keeper` interleaved with a hog that then
// departs, leaving its blocks as holes scattered through keeper's.
std::shared_ptr<SharedNodeArena> FragmentedArena(
    std::unique_ptr<MemoryLimitedQuadtree>* keeper, int64_t keeper_budget,
    uint64_t seed) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  auto arena = std::make_shared<SharedNodeArena>(4);
  *keeper = std::make_unique<MemoryLimitedQuadtree>(
      space, ChurnConfig(keeper_budget), arena);
  auto hog = std::make_unique<MemoryLimitedQuadtree>(
      space, ChurnConfig(256 * 1024), arena);
  const std::vector<Observation> keep = MakeWorkload(4000, seed, 0.0);
  const std::vector<Observation> churn = MakeWorkload(8000, seed + 1, 1.5);
  for (size_t i = 0; i < keep.size(); ++i) {
    (*keeper)->Insert(keep[i].point, keep[i].value);
    hog->Insert(churn[2 * i].point, churn[2 * i].value);
    hog->Insert(churn[2 * i + 1].point, churn[2 * i + 1].value);
  }
  hog.reset();  // Holes everywhere keeper's blocks are not.
  return arena;
}

TEST(IncrementalCompactionTest, StepsAreBoundedAndKeepConsistency) {
  std::unique_ptr<MemoryLimitedQuadtree> keeper;
  std::shared_ptr<SharedNodeArena> arena =
      FragmentedArena(&keeper, 64 * 1024, 21);
  ASSERT_GT(arena->free_count(), 0);

  const std::vector<uint8_t> bytes_before = SerializeQuadtree(*keeper);
  const int64_t budget_slots = 64;  // 16 block moves per step (fanout 4).
  std::string error;
  int steps = 0;
  SharedNodeArena::CompactStepStats step;
  do {
    step = arena->CompactStep(budget_slots);
    ASSERT_LE(step.blocks_moved, budget_slots / 4);
    ASSERT_TRUE(arena->CheckConsistency(&error)) << error;
    ASSERT_TRUE(keeper->CheckInvariants(&error)) << error;
    ASSERT_LT(++steps, 10000) << "incremental compaction failed to converge";
  } while (!step.done);

  // Converged: dense (no free slots), trees untouched byte for byte.
  EXPECT_EQ(arena->free_count(), 0);
  EXPECT_GT(steps, 1);  // The budget actually split the work.
  EXPECT_EQ(SerializeQuadtree(*keeper), bytes_before);
  EXPECT_EQ(arena->compactions(), 1);  // The finished pass counts once.
}

TEST(IncrementalCompactionTest, ConvergesToSameStateAsStopTheWorld) {
  // Twin arenas with identical histories; one compacts stop-the-world, the
  // other in bounded steps.
  std::unique_ptr<MemoryLimitedQuadtree> keeper_full;
  std::unique_ptr<MemoryLimitedQuadtree> keeper_step;
  std::shared_ptr<SharedNodeArena> full =
      FragmentedArena(&keeper_full, 1800, 33);
  std::shared_ptr<SharedNodeArena> step =
      FragmentedArena(&keeper_step, 1800, 33);
  ASSERT_EQ(full->slot_count(), step->slot_count());

  full->Compact();
  while (!step->CompactStep(128).done) {
  }

  // Same dense footprint; block order may differ, but serialization v2
  // renumbers to visit order, so the byte images must agree exactly.
  EXPECT_EQ(full->PhysicalCapacityBytes(), step->PhysicalCapacityBytes());
  EXPECT_EQ(full->free_count(), 0);
  EXPECT_EQ(step->free_count(), 0);
  EXPECT_EQ(SerializeQuadtree(*keeper_step), SerializeQuadtree(*keeper_full));
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    const Prediction a = keeper_full->Predict(p);
    const Prediction b = keeper_step->Predict(p);
    ASSERT_EQ(a.value, b.value);
    ASSERT_EQ(a.count, b.count);
  }
}

// Serialization v2 must be layout-independent: an MLQ-L tree that lived
// through incremental compaction of its shared arena serializes to the
// exact bytes of a never-compacted twin, and round-trips through a fresh
// shared arena.
TEST(IncrementalCompactionTest, SerializationV2UnchangedByIncrementalSteps) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  const MlqConfig config = ChurnConfig(1800);  // kLazy — an MLQ-L tree.
  MemoryLimitedQuadtree pristine(space, config);

  auto arena = std::make_shared<SharedNodeArena>(4);
  MemoryLimitedQuadtree shared_tree(space, config, arena);
  {
    MemoryLimitedQuadtree neighbour(space, ChurnConfig(64 * 1024), arena);
    const std::vector<Observation> workload = MakeWorkload(4000, 55, 0.0);
    const std::vector<Observation> noise = MakeWorkload(4000, 56, 2.0);
    for (size_t i = 0; i < workload.size(); ++i) {
      pristine.Insert(workload[i].point, workload[i].value);
      shared_tree.Insert(workload[i].point, workload[i].value);
      neighbour.Insert(noise[i].point, noise[i].value);
    }
  }
  ASSERT_GT(arena->free_count(), 0);  // The neighbour left holes behind.

  while (!arena->CompactStep(64).done) {
  }

  const std::vector<uint8_t> bytes = SerializeQuadtree(shared_tree);
  EXPECT_EQ(bytes, SerializeQuadtree(pristine));

  std::string error;
  auto fresh = std::make_shared<SharedNodeArena>(4);
  std::unique_ptr<MemoryLimitedQuadtree> restored =
      DeserializeQuadtree(bytes, fresh, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(SerializeQuadtree(*restored), bytes);
  ASSERT_TRUE(restored->CheckInvariants(&error)) << error;
}

// Root blocks relocate like any other block; the registered &root_ handles
// must be patched or every later tree operation dereferences a stale index.
TEST(IncrementalCompactionTest, RootBlocksArePatched) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  auto arena = std::make_shared<SharedNodeArena>(4);
  // The hog allocates first, so the late trees' root blocks land near the
  // top of the extent — exactly the blocks CompactStep relocates downward.
  auto hog = std::make_unique<MemoryLimitedQuadtree>(
      space, ChurnConfig(256 * 1024), arena);
  for (const Observation& o : MakeWorkload(8000, 61, 1.0)) {
    hog->Insert(o.point, o.value);
  }
  std::vector<std::unique_ptr<MemoryLimitedQuadtree>> late;
  for (int t = 0; t < 4; ++t) {
    late.push_back(std::make_unique<MemoryLimitedQuadtree>(
        space, ChurnConfig(1800), arena));
    for (const Observation& o :
         MakeWorkload(1500, 70 + static_cast<uint64_t>(t),
                      0.4 * static_cast<double>(t))) {
      late.back()->Insert(o.point, o.value);
    }
  }
  hog.reset();

  std::vector<std::vector<uint8_t>> bytes_before;
  for (const auto& tree : late) bytes_before.push_back(SerializeQuadtree(*tree));

  SharedNodeArena::CompactStepStats step;
  do {
    step = arena->CompactStep(64);
  } while (!step.done);

  std::string error;
  ASSERT_TRUE(arena->CheckConsistency(&error)) << error;
  for (size_t t = 0; t < late.size(); ++t) {
    ASSERT_TRUE(late[t]->CheckInvariants(&error)) << error;
    EXPECT_EQ(SerializeQuadtree(*late[t]), bytes_before[t]);
    // The tree keeps working on its relocated blocks.
    for (const Observation& o : MakeWorkload(500, 90 + t, 0.9)) {
      late[t]->Insert(o.point, o.value);
    }
    ASSERT_TRUE(late[t]->CheckInvariants(&error)) << error;
  }
}

// The reason CompactStep exists: on a >= 100k-slot arena, one bounded step
// must pause the world an order of magnitude less than a full Compact().
TEST(IncrementalCompactionTest, StepPauseTenfoldBelowFullCompaction) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  // Twin arenas, identically fragmented: ~25 tenants with interleaved
  // allocation, every other one destroyed.
  auto build = [&space]() {
    auto arena = std::make_shared<SharedNodeArena>(4);
    std::vector<std::unique_ptr<MemoryLimitedQuadtree>> trees;
    for (int t = 0; t < 26; ++t) {
      trees.push_back(std::make_unique<MemoryLimitedQuadtree>(
          space, ChurnConfig(128 * 1024), arena));
    }
    std::vector<std::vector<Observation>> workloads;
    for (size_t t = 0; t < trees.size(); ++t) {
      workloads.push_back(MakeWorkload(5200, 77 + t, 0.1 * static_cast<double>(t)));
    }
    // Round-robin keeps each tree's blocks interleaved with every other's.
    for (size_t i = 0; i < workloads[0].size(); ++i) {
      for (size_t t = 0; t < trees.size(); ++t) {
        trees[t]->Insert(workloads[t][i].point, workloads[t][i].value);
      }
    }
    for (size_t t = 0; t < trees.size(); t += 2) trees[t].reset();
    return std::pair(arena, std::move(trees));
  };
  // Wall-clock maxima are vulnerable to one unlucky preemption, so the
  // timing comparison gets a few attempts on fresh twin arenas; the layout
  // equivalence must hold on every attempt.
  double max_step_micros = 0.0;
  double full_micros = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto [arena_full, trees_full] = build();
    auto [arena_step, trees_step] = build();
    ASSERT_GE(arena_full->slot_count(), 100000u);
    ASSERT_EQ(arena_full->slot_count(), arena_step->slot_count());

    WallTimer full_timer;
    arena_full->Compact();
    full_micros = full_timer.ElapsedMicros();

    max_step_micros = 0.0;
    SharedNodeArena::CompactStepStats step;
    do {
      WallTimer step_timer;
      step = arena_step->CompactStep(512);
      max_step_micros = std::max(max_step_micros, step_timer.ElapsedMicros());
    } while (!step.done);

    ASSERT_EQ(arena_full->PhysicalCapacityBytes(),
              arena_step->PhysicalCapacityBytes());
    if (max_step_micros * 10.0 <= full_micros) break;
  }
  EXPECT_LE(max_step_micros * 10.0, full_micros)
      << "max step pause " << max_step_micros << "us vs full compaction "
      << full_micros << "us";
}

}  // namespace
}  // namespace mlq
