// SharedNodeArena: many trees on one slab pool.
//
// Covers the properties the catalog depends on: (1) trees sharing an arena
// behave exactly like trees on private arenas (same bytes, same
// predictions); (2) compression churn in one tree recycles blocks for its
// neighbours, and budget-boundary churn never corrupts the free-list;
// (3) Compact() reclaims physical slab memory without changing any tree;
// (4) the whole thing survives adversarial thread interleavings (the TSan
// suite runs this file).

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/serialization.h"
#include "quadtree/memory_limited_quadtree.h"
#include "quadtree/shared_node_arena.h"

namespace mlq {
namespace {

double Surface(const Point& p, double phase) {
  const double x = p[0] / 1000.0;
  const double y = p[1] / 1000.0;
  return 1000.0 * (1.0 + std::sin(3.0 * x + phase) * std::cos(2.0 * y)) +
         500.0 * x * y;
}

MlqConfig ChurnConfig(int64_t budget) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kLazy;
  config.max_depth = 6;
  config.beta = 1;
  config.memory_limit_bytes = budget;
  return config;
}

std::vector<Observation> MakeWorkload(int n, uint64_t seed, double phase) {
  Rng rng(seed);
  std::vector<Observation> workload;
  workload.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    workload.push_back({p, Surface(p, phase) + rng.Gaussian(0.0, 25.0)});
  }
  return workload;
}

// A tree on a shared arena must be indistinguishable — bytes and
// predictions — from the same workload on a private arena, even when the
// arena is interleaved with other trees' allocation and free traffic.
TEST(SharedArenaTest, SharedTreeMatchesPrivateTree) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  const MlqConfig config = ChurnConfig(1800);
  auto arena = std::make_shared<SharedNodeArena>(4);

  MemoryLimitedQuadtree private_tree(space, config);
  MemoryLimitedQuadtree shared_a(space, config, arena);
  MemoryLimitedQuadtree shared_b(space, config, arena);

  const std::vector<Observation> workload = MakeWorkload(4000, 17, 0.0);
  const std::vector<Observation> noise = MakeWorkload(4000, 18, 1.5);
  for (size_t i = 0; i < workload.size(); ++i) {
    private_tree.Insert(workload[i].point, workload[i].value);
    shared_a.Insert(workload[i].point, workload[i].value);
    // Interleave a second tree's traffic so shared_a's slot indices are
    // scattered across the arena, unlike the private tree's.
    shared_b.Insert(noise[i].point, noise[i].value);
  }
  ASSERT_GT(private_tree.counters().compressions, 0);

  EXPECT_EQ(SerializeQuadtree(shared_a), SerializeQuadtree(private_tree));
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    const Prediction a = private_tree.Predict(p);
    const Prediction b = shared_a.Predict(p);
    ASSERT_EQ(a.value, b.value);
    ASSERT_EQ(a.count, b.count);
  }

  std::string error;
  EXPECT_TRUE(arena->CheckConsistency(&error)) << error;
  EXPECT_TRUE(shared_a.CheckInvariants(&error)) << error;
  EXPECT_TRUE(shared_b.CheckInvariants(&error)) << error;
}

// Tight budgets force constant compress/grow cycling right at the block
// boundary; with three trees doing it on one arena the free-list is churned
// from all sides.
TEST(SharedArenaTest, BudgetBoundaryChurn) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  auto arena = std::make_shared<SharedNodeArena>(4);
  // The smallest budgets that admit a root plus a handful of children.
  std::vector<std::unique_ptr<MemoryLimitedQuadtree>> trees;
  for (int64_t budget : {kNodeBaseBytes + 4 * kNonRootNodeBytes,
                         kNodeBaseBytes + 7 * kNonRootNodeBytes,
                         kNodeBaseBytes + 11 * kNonRootNodeBytes}) {
    trees.push_back(std::make_unique<MemoryLimitedQuadtree>(
        space, ChurnConfig(budget), arena));
  }
  Rng rng(4242);
  for (int i = 0; i < 6000; ++i) {
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    trees[static_cast<size_t>(i) % trees.size()]->Insert(p, Surface(p, 0.3));
  }
  std::string error;
  ASSERT_TRUE(arena->CheckConsistency(&error)) << error;
  int64_t live = 0;
  for (const auto& tree : trees) {
    ASSERT_TRUE(tree->CheckInvariants(&error)) << error;
    ASSERT_LE(tree->memory_used(), tree->config().memory_limit_bytes);
    live += tree->num_nodes();
  }
  EXPECT_EQ(live, arena->live_count());
}

// Destroying a shared-arena tree must hand every one of its blocks back.
TEST(SharedArenaTest, TreeDestructionReturnsBlocks) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  auto arena = std::make_shared<SharedNodeArena>(4);
  MemoryLimitedQuadtree survivor(space, ChurnConfig(8 * 1024), arena);
  for (const Observation& o : MakeWorkload(1000, 5, 0.0)) {
    survivor.Insert(o.point, o.value);
  }
  const int64_t survivor_nodes = survivor.num_nodes();
  {
    MemoryLimitedQuadtree doomed(space, ChurnConfig(8 * 1024), arena);
    for (const Observation& o : MakeWorkload(1000, 6, 2.0)) {
      doomed.Insert(o.point, o.value);
    }
    EXPECT_GT(arena->live_count(), survivor_nodes);
  }
  EXPECT_EQ(arena->live_count(), survivor_nodes);
  std::string error;
  EXPECT_TRUE(arena->CheckConsistency(&error)) << error;
  // The freed blocks are immediately reusable by a new tenant.
  const int64_t slots_before = static_cast<int64_t>(arena->slot_count());
  MemoryLimitedQuadtree tenant(space, ChurnConfig(8 * 1024), arena);
  for (const Observation& o : MakeWorkload(1000, 6, 2.0)) {
    tenant.Insert(o.point, o.value);
  }
  EXPECT_EQ(static_cast<int64_t>(arena->slot_count()), slots_before);
}

// Compact() must reclaim the high-water slab memory left behind by a
// departed tenant and by compression churn — without moving any tree's
// observable state.
TEST(SharedArenaTest, CompactReclaimsWithoutChangingPredictions) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  auto arena = std::make_shared<SharedNodeArena>(4);
  MemoryLimitedQuadtree keeper(space, ChurnConfig(1800), arena);
  for (const Observation& o : MakeWorkload(3000, 8, 0.0)) {
    keeper.Insert(o.point, o.value);
  }
  // A hog inflates the arena past one slab, then leaves.
  {
    MemoryLimitedQuadtree hog(space, ChurnConfig(256 * 1024), arena);
    for (const Observation& o : MakeWorkload(20000, 9, 1.0)) {
      hog.Insert(o.point, o.value);
    }
    ASSERT_GT(arena->PhysicalCapacityBytes(),
              static_cast<int64_t>(SharedNodeArena::kSlabSlots *
                                   sizeof(PooledNode)));
  }

  const std::vector<uint8_t> bytes_before = SerializeQuadtree(keeper);
  std::vector<Prediction> before;
  Rng rng(1);
  std::vector<Point> probes;
  for (int i = 0; i < 400; ++i) {
    probes.push_back(Point{rng.Uniform(0.0, 1000.0),
                           rng.Uniform(0.0, 1000.0)});
    before.push_back(keeper.Predict(probes.back()));
  }

  const int64_t physical_before = arena->PhysicalCapacityBytes();
  const SharedNodeArena::CompactionStats stats = arena->Compact();
  EXPECT_EQ(stats.physical_bytes_before, physical_before);
  EXPECT_GT(stats.bytes_reclaimed, 0);
  EXPECT_LT(arena->PhysicalCapacityBytes(), physical_before);
  EXPECT_EQ(arena->compactions(), 1);

  std::string error;
  ASSERT_TRUE(arena->CheckConsistency(&error)) << error;
  ASSERT_TRUE(keeper.CheckInvariants(&error)) << error;
  EXPECT_EQ(SerializeQuadtree(keeper), bytes_before);
  for (size_t i = 0; i < probes.size(); ++i) {
    const Prediction after = keeper.Predict(probes[i]);
    ASSERT_EQ(after.value, before[i].value);
    ASSERT_EQ(after.count, before[i].count);
  }
  // The tree keeps working (inserting, compressing) on the compacted slabs.
  for (const Observation& o : MakeWorkload(2000, 10, 0.5)) {
    keeper.Insert(o.point, o.value);
  }
  ASSERT_TRUE(keeper.CheckInvariants(&error)) << error;
}

// Deserializing straight into a shared arena round-trips.
TEST(SharedArenaTest, DeserializeIntoSharedArena) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  MemoryLimitedQuadtree original(space, ChurnConfig(1800));
  for (const Observation& o : MakeWorkload(3000, 12, 0.0)) {
    original.Insert(o.point, o.value);
  }
  const std::vector<uint8_t> bytes = SerializeQuadtree(original);

  auto arena = std::make_shared<SharedNodeArena>(4);
  // Pre-populate the arena so the restored tree lands on scattered slots.
  MemoryLimitedQuadtree other(space, ChurnConfig(4096), arena);
  for (const Observation& o : MakeWorkload(500, 13, 2.0)) {
    other.Insert(o.point, o.value);
  }

  std::string error;
  std::unique_ptr<MemoryLimitedQuadtree> restored =
      DeserializeQuadtree(bytes, arena, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(SerializeQuadtree(*restored), bytes);
  ASSERT_TRUE(restored->CheckInvariants(&error)) << error;

  // Fanout mismatch is rejected, not mangled.
  auto wrong = std::make_shared<SharedNodeArena>(8);
  EXPECT_EQ(DeserializeQuadtree(bytes, wrong, &error), nullptr);
}

// Adversarial interleaving (the TSan target): two trees compressing under
// tight budgets while a third inserts, all hammering the one arena. Each
// tree is owned by one thread — the arena's own mutex is the only shared
// synchronization, exactly the catalog's access pattern.
TEST(SharedArenaTest, ConcurrentChurnThreeTrees) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  auto arena = std::make_shared<SharedNodeArena>(4);
  MemoryLimitedQuadtree churn_a(space, ChurnConfig(1800), arena);
  MemoryLimitedQuadtree churn_b(
      space, ChurnConfig(kNodeBaseBytes + 6 * kNonRootNodeBytes), arena);
  MemoryLimitedQuadtree grower(space, ChurnConfig(512 * 1024), arena);

  std::atomic<bool> failed{false};
  auto drive = [&failed](MemoryLimitedQuadtree* tree, uint64_t seed,
                         double phase, int n) {
    Rng rng(seed);
    for (int i = 0; i < n && !failed.load(std::memory_order_relaxed); ++i) {
      Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
      tree->Insert(p, Surface(p, phase));
      if ((i & 63) == 0) {
        const Prediction pred = tree->Predict(p);
        if (!std::isfinite(pred.value)) {
          failed.store(true, std::memory_order_relaxed);
        }
      }
    }
  };
  std::thread ta(drive, &churn_a, 101, 0.0, 8000);
  std::thread tb(drive, &churn_b, 102, 1.0, 8000);
  std::thread tc(drive, &grower, 103, 2.0, 8000);
  ta.join();
  tb.join();
  tc.join();
  ASSERT_FALSE(failed.load());

  std::string error;
  ASSERT_TRUE(arena->CheckConsistency(&error)) << error;
  for (MemoryLimitedQuadtree* tree : {&churn_a, &churn_b, &grower}) {
    ASSERT_TRUE(tree->CheckInvariants(&error)) << error;
  }
  EXPECT_EQ(churn_a.num_nodes() + churn_b.num_nodes() + grower.num_nodes(),
            arena->live_count());
}

}  // namespace
}  // namespace mlq
