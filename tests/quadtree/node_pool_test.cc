#include "quadtree/node_pool.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace mlq {
namespace {

// Most tests use a d=4 pool (fanout 16), the highest dimensionality the
// paper's experiments run.
constexpr int kFanout = 16;

TEST(NodePoolTest, FreshPoolAllocatesEmptyLeafRoot) {
  NodePool pool(kFanout);
  const NodeIndex root = pool.AllocateRoot();
  const NodeView node(&pool, root);
  EXPECT_TRUE(node.IsLeaf());
  EXPECT_EQ(node.num_children(), 0);
  EXPECT_FALSE(node.has_parent());
  EXPECT_EQ(node.depth(), 0);
  EXPECT_TRUE(node.summary().Empty());
  EXPECT_EQ(pool.live_count(), 1);
  EXPECT_EQ(pool.free_count(), 0);
  // The root occupies slot 0 of a full block.
  EXPECT_EQ(pool.slot_count(), static_cast<size_t>(kFanout));
}

TEST(NodePoolTest, CreateChildSetsBackLinks) {
  NodePool pool(kFanout);
  const NodeIndex root = pool.AllocateRoot();
  const NodeIndex child = pool.CreateChild(root, 5);
  ASSERT_NE(child, kInvalidNodeIndex);
  EXPECT_EQ(pool.node(child).parent, root);
  EXPECT_EQ(pool.node(child).index_in_parent, 5);
  EXPECT_EQ(pool.node(child).depth, 1);
  EXPECT_FALSE(pool.node(root).IsLeaf());
  EXPECT_EQ(pool.Child(root, 5), child);
  EXPECT_EQ(pool.Child(root, 4), kInvalidNodeIndex);
  // Block layout: the child sits exactly at first_child + quadrant.
  EXPECT_EQ(child, pool.node(root).first_child + 5);
}

TEST(NodePoolTest, SiblingsShareOneContiguousBlock) {
  NodePool pool(kFanout);
  const NodeIndex root = pool.AllocateRoot();
  const NodeIndex c9 = pool.CreateChild(root, 9);
  const NodeIndex c2 = pool.CreateChild(root, 2);
  const NodeIndex base = pool.node(root).first_child;
  EXPECT_EQ(c9, base + 9);
  EXPECT_EQ(c2, base + 2);
  EXPECT_EQ(base % kFanout, 0u) << "child blocks are fanout-aligned";
}

TEST(NodePoolTest, ChildrenIterateInQuadrantOrder) {
  NodePool pool(kFanout);
  const NodeIndex root = pool.AllocateRoot();
  pool.CreateChild(root, 9);
  pool.CreateChild(root, 2);
  pool.CreateChild(root, 15);
  pool.CreateChild(root, 0);
  int previous = -1;
  int seen = 0;
  for (const NodeView child : NodeView(&pool, root).children()) {
    EXPECT_GT(child.index_in_parent(), previous);
    previous = child.index_in_parent();
    ++seen;
  }
  EXPECT_EQ(seen, 4);
  EXPECT_EQ(pool.node(root).num_children, 4);
}

TEST(NodePoolTest, RemoveLeafChildVacatesSlotAndRecyclesEmptyBlocks) {
  NodePool pool(kFanout);
  const NodeIndex root = pool.AllocateRoot();
  pool.CreateChild(root, 1);
  pool.CreateChild(root, 3);
  EXPECT_EQ(pool.live_count(), 3);
  pool.RemoveLeafChild(root, 1);
  EXPECT_EQ(pool.Child(root, 1), kInvalidNodeIndex);
  EXPECT_NE(pool.Child(root, 3), kInvalidNodeIndex);
  EXPECT_EQ(pool.node(root).num_children, 1);
  EXPECT_EQ(pool.live_count(), 2);
  // The block still holds a live sibling, so it is not free-listed yet.
  EXPECT_EQ(pool.free_count(), 0);
  pool.RemoveLeafChild(root, 3);
  EXPECT_TRUE(pool.node(root).IsLeaf());
  EXPECT_EQ(pool.node(root).first_child, kInvalidNodeIndex);
  EXPECT_EQ(pool.free_count(), kFanout);
  std::string error;
  EXPECT_TRUE(pool.CheckConsistency(&error)) << error;
}

TEST(NodePoolTest, FreeListReusesBlocksLifoWithoutGrowingTheArena) {
  NodePool pool(kFanout);
  const NodeIndex root = pool.AllocateRoot();
  const NodeIndex a = pool.CreateChild(root, 0);
  const NodeIndex b = pool.CreateChild(a, 1);
  const size_t slots_before = pool.slot_count();
  const NodeIndex a_block = pool.node(root).first_child;
  const NodeIndex b_block = pool.node(a).first_child;
  pool.RemoveLeafChild(a, 1);   // Frees b's block.
  pool.RemoveLeafChild(root, 0);  // Frees a's block.
  EXPECT_EQ(pool.free_count(), 2 * kFanout);
  // LIFO: the most recently freed block (a's) comes back first.
  const NodeIndex r1 = pool.CreateChild(root, 6);
  EXPECT_EQ(r1 - 6, a_block);
  const NodeIndex r2 = pool.CreateChild(r1, 7);
  EXPECT_EQ(r2 - 7, b_block);
  EXPECT_EQ(pool.slot_count(), slots_before);
  EXPECT_EQ(pool.free_count(), 0);
  // Recycled slots come back clean.
  EXPECT_TRUE(pool.node(r2).summary.Empty());
  EXPECT_TRUE(pool.node(r2).IsLeaf());
  std::string error;
  EXPECT_TRUE(pool.CheckConsistency(&error)) << error;
  EXPECT_EQ(b, b_block + 1);  // Indices were block offsets all along.
}

TEST(NodePoolTest, IndicesSurviveArenaGrowth) {
  NodePool pool(kFanout);
  const NodeIndex root = pool.AllocateRoot();
  pool.node(root).summary.Add(42.0);
  // Force many reallocations of the backing vector.
  NodeIndex parent = root;
  std::vector<NodeIndex> chain;
  for (int i = 0; i < 1000; ++i) {
    parent = pool.CreateChild(parent, 0);
    chain.push_back(parent);
  }
  EXPECT_DOUBLE_EQ(pool.node(root).summary.sum, 42.0);
  for (size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(pool.node(chain[i]).depth, static_cast<int>(i) + 1);
  }
  std::string error;
  EXPECT_TRUE(pool.CheckConsistency(&error)) << error;
}

TEST(NodePoolTest, AdoptChildRelocatesSubtreeRootAndReparentsChildren) {
  // Mirrors model-space expansion: the root is demoted into a fresh root's
  // child block; its children must follow it and its old block must recycle.
  NodePool pool(4);
  const NodeIndex old_root = pool.AllocateRoot();
  const NodeIndex kid = pool.CreateChild(old_root, 2);
  pool.node(old_root).summary.Add(7.0);
  pool.node(kid).summary.Add(7.0);
  const NodeIndex new_root = pool.AllocateRoot();
  const int64_t live_before = pool.live_count();
  const NodeIndex moved = pool.AdoptChild(new_root, 3, old_root);
  EXPECT_EQ(pool.live_count(), live_before);  // A move, not an allocation.
  EXPECT_EQ(pool.Child(new_root, 3), moved);
  EXPECT_EQ(pool.node(moved).parent, new_root);
  EXPECT_DOUBLE_EQ(pool.node(moved).summary.sum, 7.0);
  // The grandchild's parent link follows the relocation.
  const NodeIndex kid_now = pool.Child(moved, 2);
  ASSERT_NE(kid_now, kInvalidNodeIndex);
  EXPECT_EQ(pool.node(kid_now).parent, moved);
  // The old root's block went back to the free-list.
  EXPECT_EQ(pool.free_count(), 4);
  // AdoptChild leaves depths to the caller (the tree shifts the demoted
  // subtree); do that here so the structural check sees consistent depths.
  ++pool.node(moved).depth;
  ++pool.node(kid_now).depth;
  std::string error;
  EXPECT_TRUE(pool.CheckConsistency(&error)) << error;
}

TEST(NodePoolTest, SsegMatchesEquationNine) {
  // SSEG(b) = C(b) * (AVG(parent) - AVG(b))^2.
  NodePool pool(kFanout);
  const NodeIndex root = pool.AllocateRoot();
  const NodeIndex child = pool.CreateChild(root, 0);
  // Parent holds {2, 4, 12}; child holds {2, 4}.
  for (double v : {2.0, 4.0, 12.0}) pool.node(root).summary.Add(v);
  for (double v : {2.0, 4.0}) pool.node(child).summary.Add(v);
  const double parent_avg = 18.0 / 3.0;  // 6
  const double child_avg = 3.0;
  EXPECT_DOUBLE_EQ(NodeView(&pool, child).Sseg(),
                   2.0 * (parent_avg - child_avg) * (parent_avg - child_avg));
}

TEST(NodePoolTest, SsegZeroWhenAveragesMatch) {
  NodePool pool(kFanout);
  const NodeIndex root = pool.AllocateRoot();
  const NodeIndex child = pool.CreateChild(root, 2);
  for (double v : {5.0, 5.0}) pool.node(root).summary.Add(v);
  pool.node(child).summary.Add(5.0);
  EXPECT_DOUBLE_EQ(NodeView(&pool, child).Sseg(), 0.0);
}

TEST(NodePoolTest, PaperCompressionExampleSsegValues) {
  // Fig. 7(a): node B14 has avg 10 (s=30, c=3); children B141 (s=9, c=1)
  // and B144 (s=11, c=1) have SSEG = 1 each.
  NodePool pool(4);
  const NodeIndex b14 = pool.AllocateRoot();
  pool.node(b14).summary.sum = 30;
  pool.node(b14).summary.count = 3;
  const NodeIndex b141 = pool.CreateChild(b14, 0);
  pool.node(b141).summary.sum = 9;
  pool.node(b141).summary.count = 1;
  const NodeIndex b144 = pool.CreateChild(b14, 3);
  pool.node(b144).summary.sum = 11;
  pool.node(b144).summary.count = 1;
  EXPECT_DOUBLE_EQ(NodeView(&pool, b141).Sseg(), 1.0);
  EXPECT_DOUBLE_EQ(NodeView(&pool, b144).Sseg(), 1.0);
}

TEST(NodePoolTest, CheckConsistencyCountsFreeSlots) {
  NodePool pool(4);
  const NodeIndex root = pool.AllocateRoot();
  // Two generations so two blocks exist, then strip everything.
  const NodeIndex mid = pool.CreateChild(root, 1);
  pool.CreateChild(mid, 0);
  pool.CreateChild(mid, 3);
  pool.RemoveLeafChild(mid, 0);
  pool.RemoveLeafChild(mid, 3);
  pool.RemoveLeafChild(root, 1);
  EXPECT_EQ(pool.live_count(), 1);
  EXPECT_EQ(pool.free_count(), 8);
  EXPECT_EQ(pool.slot_count(), 12u);  // Root block + two recycled blocks.
  std::string error;
  EXPECT_TRUE(pool.CheckConsistency(&error)) << error;
}

}  // namespace
}  // namespace mlq
