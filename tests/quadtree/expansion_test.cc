// Tests for model-space expansion (the unknown-argument-ranges extension)
// and recency-aware compression.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "quadtree/memory_limited_quadtree.h"

namespace mlq {
namespace {

MlqConfig ExpandingConfig(int64_t budget = 1 << 20) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kEager;
  config.max_depth = 4;
  config.memory_limit_bytes = budget;
  config.auto_expand = true;
  return config;
}

TEST(ExpansionTest, CoveredPointIsNoOp) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), ExpandingConfig());
  tree.ExpandToInclude(Point{50.0, 50.0});
  EXPECT_EQ(tree.space(), Box::Cube(2, 0.0, 100.0));
  EXPECT_EQ(tree.num_nodes(), 1);
}

TEST(ExpansionTest, DoublesTowardThePoint) {
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 100.0), ExpandingConfig());
  tree.ExpandToInclude(Point{150.0});  // Above: extend upward once.
  EXPECT_EQ(tree.space(), Box::Cube(1, 0.0, 200.0));
  tree.ExpandToInclude(Point{-50.0});  // Below: extend downward once.
  EXPECT_EQ(tree.space(), Box::Cube(1, -200.0, 200.0));
}

TEST(ExpansionTest, OldRootBecomesCorrectChild) {
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 100.0), ExpandingConfig());
  tree.Insert(Point{10.0}, 5.0);
  const int64_t nodes_before = tree.num_nodes();
  tree.ExpandToInclude(Point{-1.0});
  // Space is now [-100, 100]; the old [0, 100] block is the upper child.
  EXPECT_EQ(tree.space(), Box::Cube(1, -100.0, 100.0));
  EXPECT_EQ(tree.num_nodes(), nodes_before + 1);
  const NodeView root = tree.root();
  ASSERT_TRUE(root.Child(1).valid());
  EXPECT_FALSE(root.Child(0).valid());
  EXPECT_EQ(root.Child(1).summary().count, 1);
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
}

TEST(ExpansionTest, RootSummaryIsPreserved) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), ExpandingConfig());
  tree.Insert(Point{10.0, 10.0}, 100.0);
  tree.Insert(Point{90.0, 90.0}, 300.0);
  tree.ExpandToInclude(Point{500.0, 500.0});
  EXPECT_EQ(tree.root().summary().count, 2);
  EXPECT_DOUBLE_EQ(tree.root().summary().sum, 400.0);
}

TEST(ExpansionTest, PredictionsSurviveExpansion) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), ExpandingConfig());
  tree.Insert(Point{10.0, 10.0}, 42.0);
  tree.ExpandToInclude(Point{900.0, 900.0});
  EXPECT_DOUBLE_EQ(tree.Predict(Point{10.0, 10.0}).value, 42.0);
  // The prediction still comes from a deep node, not the new coarse root.
  EXPECT_GT(tree.Predict(Point{10.0, 10.0}).depth, 0);
}

TEST(ExpansionTest, MaxDepthGrowsToPreserveResolution) {
  MlqConfig config = ExpandingConfig();
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 128.0), config);
  EXPECT_EQ(tree.config().max_depth, 4);  // Finest block: 8 units.
  tree.ExpandToInclude(Point{1000.0});    // Three doublings: 128 -> 1024.
  EXPECT_EQ(tree.space(), Box::Cube(1, 0.0, 1024.0));
  EXPECT_EQ(tree.config().max_depth, 7);  // Finest block still 8 units.
}

TEST(ExpansionTest, AutoExpandInsertLearnsOutOfRangePoints) {
  MlqConfig config = ExpandingConfig();
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 100.0), config);
  tree.Insert(Point{50.0}, 10.0);
  tree.Insert(Point{350.0}, 900.0);  // Out of range: space must grow.
  EXPECT_TRUE(tree.space().ContainsClosed(Point{350.0}));
  // Without expansion this point would be clamped onto 100 and pollute the
  // right edge; with expansion both regions predict their own values.
  EXPECT_DOUBLE_EQ(tree.Predict(Point{50.0}).value, 10.0);
  EXPECT_DOUBLE_EQ(tree.Predict(Point{350.0}).value, 900.0);
}

TEST(ExpansionTest, ClampingModeStillDefault) {
  MlqConfig config;
  config.memory_limit_bytes = 1 << 20;
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 100.0), config);
  tree.Insert(Point{350.0}, 900.0);
  EXPECT_EQ(tree.space(), Box::Cube(1, 0.0, 100.0));  // Unchanged.
}

TEST(ExpansionTest, RandomWorkloadWithGrowingRangeStaysConsistent) {
  MlqConfig config = ExpandingConfig(/*budget=*/8192);
  MemoryLimitedQuadtree tree(Box::Cube(3, 0.0, 10.0), config);
  Rng rng(55);
  double max_coordinate = 10.0;
  for (int i = 0; i < 1500; ++i) {
    max_coordinate *= 1.01;  // The observed range keeps creeping up.
    Point p(3);
    for (int d = 0; d < 3; ++d) p[d] = rng.Uniform(0.0, max_coordinate);
    tree.Insert(p, rng.Uniform(0.0, 100.0));
    ASSERT_LE(tree.memory_used(), config.memory_limit_bytes);
  }
  EXPECT_TRUE(tree.space().ContainsClosed(Point{0.0, 0.0, 0.0}));
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
  EXPECT_EQ(tree.root().summary().count, 1500);
}

TEST(RecencyCompressionTest, DecayEvictsStaleStructure) {
  // Two trees at a tight budget see a workload that abandons region A for
  // region B. With recency decay, region B ends up with more resolution.
  auto run = [](double half_life) {
    MlqConfig config;
    config.strategy = InsertionStrategy::kEager;
    config.max_depth = 6;
    config.memory_limit_bytes = 1800;
    config.recency_half_life = half_life;
    MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 1000.0), config);
    Rng rng(77);
    // Phase A: high-variance cluster near (100, 100) -> big SSEG nodes.
    for (int i = 0; i < 1500; ++i) {
      Point p{rng.Gaussian(100.0, 30.0), rng.Gaussian(100.0, 30.0)};
      tree.Insert(p, rng.Uniform(0.0, 10000.0));
    }
    // Phase B: cluster near (800, 800) with moderate values.
    for (int i = 0; i < 1500; ++i) {
      Point p{rng.Gaussian(800.0, 30.0), rng.Gaussian(800.0, 30.0)};
      tree.Insert(p, rng.Uniform(400.0, 600.0));
    }
    // Resolution available in region B.
    return tree.Predict(Point{800.0, 800.0}).depth;
  };
  const int paper_depth = run(0.0);
  const int recency_depth = run(500.0);
  EXPECT_GE(recency_depth, paper_depth)
      << "recency decay must not reduce resolution in the active region";
}

TEST(RecencyCompressionTest, DisabledByDefaultMatchesPaperBehaviour) {
  MlqConfig config;
  EXPECT_DOUBLE_EQ(config.recency_half_life, 0.0);
  EXPECT_FALSE(config.auto_expand);
}

}  // namespace
}  // namespace mlq
