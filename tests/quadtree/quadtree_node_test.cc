#include "quadtree/quadtree_node.h"

#include <gtest/gtest.h>

namespace mlq {
namespace {

TEST(QuadtreeNodeTest, FreshNodeIsEmptyLeaf) {
  QuadtreeNode node(nullptr, 0, 0);
  EXPECT_TRUE(node.IsLeaf());
  EXPECT_EQ(node.num_children(), 0);
  EXPECT_EQ(node.parent(), nullptr);
  EXPECT_EQ(node.depth(), 0);
  EXPECT_TRUE(node.summary().Empty());
}

TEST(QuadtreeNodeTest, CreateChildSetsBackPointers) {
  QuadtreeNode root(nullptr, 0, 0);
  QuadtreeNode* child = root.CreateChild(5);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->parent(), &root);
  EXPECT_EQ(child->index_in_parent(), 5);
  EXPECT_EQ(child->depth(), 1);
  EXPECT_FALSE(root.IsLeaf());
  EXPECT_EQ(root.Child(5), child);
  EXPECT_EQ(root.Child(4), nullptr);
}

TEST(QuadtreeNodeTest, ChildrenKeptSortedByIndex) {
  QuadtreeNode root(nullptr, 0, 0);
  root.CreateChild(9);
  root.CreateChild(2);
  root.CreateChild(15);
  root.CreateChild(0);
  int previous = -1;
  for (const auto& entry : root.children()) {
    EXPECT_GT(static_cast<int>(entry.index), previous);
    previous = entry.index;
  }
  EXPECT_EQ(root.num_children(), 4);
}

TEST(QuadtreeNodeTest, RemoveChild) {
  QuadtreeNode root(nullptr, 0, 0);
  root.CreateChild(1);
  root.CreateChild(3);
  root.RemoveChild(1);
  EXPECT_EQ(root.Child(1), nullptr);
  EXPECT_NE(root.Child(3), nullptr);
  EXPECT_EQ(root.num_children(), 1);
  root.RemoveChild(3);
  EXPECT_TRUE(root.IsLeaf());
}

TEST(QuadtreeNodeTest, SsegMatchesEquationNine) {
  // SSEG(b) = C(b) * (AVG(parent) - AVG(b))^2.
  QuadtreeNode root(nullptr, 0, 0);
  QuadtreeNode* child = root.CreateChild(0);
  // Parent holds {2, 4, 12}; child holds {2, 4}.
  for (double v : {2.0, 4.0, 12.0}) root.mutable_summary().Add(v);
  for (double v : {2.0, 4.0}) child->mutable_summary().Add(v);
  const double parent_avg = 18.0 / 3.0;  // 6
  const double child_avg = 3.0;
  EXPECT_DOUBLE_EQ(child->Sseg(),
                   2.0 * (parent_avg - child_avg) * (parent_avg - child_avg));
}

TEST(QuadtreeNodeTest, SsegZeroWhenAveragesMatch) {
  QuadtreeNode root(nullptr, 0, 0);
  QuadtreeNode* child = root.CreateChild(2);
  for (double v : {5.0, 5.0}) root.mutable_summary().Add(v);
  child->mutable_summary().Add(5.0);
  EXPECT_DOUBLE_EQ(child->Sseg(), 0.0);
}

TEST(QuadtreeNodeTest, PaperCompressionExampleSsegValues) {
  // Fig. 7(a): node B14 has avg 10 (s=30, c=3); children B141 (s=9, c=1)
  // and B144 (s=11, c=1) have SSEG = 1 each.
  QuadtreeNode b14(nullptr, 0, 0);
  b14.mutable_summary().sum = 30;
  b14.mutable_summary().count = 3;
  QuadtreeNode* b141 = b14.CreateChild(0);
  b141->mutable_summary().sum = 9;
  b141->mutable_summary().count = 1;
  QuadtreeNode* b144 = b14.CreateChild(3);
  b144->mutable_summary().sum = 11;
  b144->mutable_summary().count = 1;
  EXPECT_DOUBLE_EQ(b141->Sseg(), 1.0);
  EXPECT_DOUBLE_EQ(b144->Sseg(), 1.0);
}

}  // namespace
}  // namespace mlq
