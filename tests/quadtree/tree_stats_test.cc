// Tests for tree introspection and the eviction-policy ablation knob.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "quadtree/memory_limited_quadtree.h"
#include "quadtree/tree_stats.h"

namespace mlq {
namespace {

MlqConfig BigConfig(int max_depth = 4) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kEager;
  config.max_depth = max_depth;
  config.memory_limit_bytes = 1 << 20;
  return config;
}

TEST(TreeStatsTest, EmptyTree) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), BigConfig());
  const TreeStats stats = ComputeTreeStats(tree);
  EXPECT_EQ(stats.num_nodes, 1);
  EXPECT_EQ(stats.num_leaves, 1);
  EXPECT_EQ(stats.max_depth_present, 0);
  EXPECT_DOUBLE_EQ(stats.mean_leaf_depth, 0.0);
  ASSERT_EQ(stats.nodes_per_depth.size(), 1u);
  EXPECT_EQ(stats.nodes_per_depth[0], 1);
}

TEST(TreeStatsTest, SingleInsertChain) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), BigConfig(3));
  tree.Insert(Point{10.0, 10.0}, 5.0);
  const TreeStats stats = ComputeTreeStats(tree);
  EXPECT_EQ(stats.num_nodes, 4);  // Root + chain of 3.
  EXPECT_EQ(stats.num_leaves, 1);
  EXPECT_EQ(stats.max_depth_present, 3);
  EXPECT_DOUBLE_EQ(stats.mean_leaf_depth, 3.0);
  // Every node in a single-value chain has the same average: all redundant.
  EXPECT_DOUBLE_EQ(stats.redundant_node_fraction, 1.0);
  for (int depth = 0; depth <= 3; ++depth) {
    EXPECT_EQ(stats.nodes_per_depth[static_cast<size_t>(depth)], 1);
    EXPECT_EQ(stats.points_per_depth[static_cast<size_t>(depth)], 1);
  }
}

TEST(TreeStatsTest, CountsMatchTreeAccounting) {
  MemoryLimitedQuadtree tree(Box::Cube(3, 0.0, 100.0), BigConfig());
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    tree.Insert(Point{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0),
                      rng.Uniform(0.0, 100.0)},
                rng.Uniform(0.0, 100.0));
  }
  const TreeStats stats = ComputeTreeStats(tree);
  EXPECT_EQ(stats.num_nodes, tree.num_nodes());
  EXPECT_EQ(stats.points_per_depth[0], 300);  // Root summarizes everything.
  int64_t leaves = 0;
  tree.ForEachNode([&](const NodeView& n, const Box&) {
    if (n.IsLeaf()) ++leaves;
  });
  EXPECT_EQ(stats.num_leaves, leaves);
}

TEST(TreeStatsTest, ToStringMentionsEveryDepth) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), BigConfig(2));
  tree.Insert(Point{1.0, 1.0}, 5.0);
  const std::string text = TreeStatsToString(ComputeTreeStats(tree));
  EXPECT_NE(text.find("depth 0"), std::string::npos);
  EXPECT_NE(text.find("depth 2"), std::string::npos);
  EXPECT_NE(text.find("nodes=3"), std::string::npos);  // Root + chain of 2.
}

TEST(TreeStatsTest, DumpTreeShowsBlocksAndTruncates) {
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 8.0), BigConfig(2));
  tree.Insert(Point{1.0}, 5.0);
  const std::string dump = DumpTree(tree);
  EXPECT_NE(dump.find("[leaf]"), std::string::npos);
  EXPECT_NE(dump.find("n=1"), std::string::npos);
  // Truncation path.
  Rng rng(2);
  MemoryLimitedQuadtree big(Box::Cube(2, 0.0, 100.0), BigConfig(5));
  for (int i = 0; i < 500; ++i) {
    big.Insert(Point{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)}, 1.0);
  }
  EXPECT_NE(DumpTree(big, 10).find("truncated"), std::string::npos);
}

// --- Eviction policies ------------------------------------------------------

TEST(EvictionPolicyTest, CountOnlyEvictsLowestCountLeaf) {
  MlqConfig config = BigConfig(1);
  config.eviction_policy = EvictionPolicy::kCountOnly;
  config.gamma = 1e-9;  // One eviction per compression.
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 8.0), config);
  // Left leaf: 3 points whose average equals the root's (SSEG would be 0).
  tree.Insert(Point{1.0}, 50.0);
  tree.Insert(Point{1.5}, 50.0);
  tree.Insert(Point{2.0}, 50.0);
  // Right leaf: 1 point far from the root average (huge SSEG, tiny count).
  tree.Insert(Point{6.0}, 50.0);
  tree.Compress();
  // SSEG policy would evict the left leaf; count policy evicts the right.
  EXPECT_TRUE(tree.root().Child(0).valid());
  EXPECT_FALSE(tree.root().Child(1).valid());
}

TEST(EvictionPolicyTest, SsegIsTheDefaultAndPrefersRedundantLeaves) {
  MlqConfig config = BigConfig(1);
  config.gamma = 1e-9;
  EXPECT_EQ(config.eviction_policy, EvictionPolicy::kSseg);
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 8.0), config);
  tree.Insert(Point{1.0}, 50.0);
  tree.Insert(Point{1.5}, 50.0);
  tree.Insert(Point{2.0}, 50.0);
  tree.Insert(Point{6.0}, 500.0);
  tree.Compress();
  // Left leaf's average (50) is closer to the root's (162.5): its SSEG
  // (3 * 112.5^2 ~ 38k) is below the right's ((162.5-500)^2 ~ 114k).
  EXPECT_FALSE(tree.root().Child(0).valid());
  EXPECT_TRUE(tree.root().Child(1).valid());
}

TEST(EvictionPolicyTest, RandomRespectsBudgetAndInvariants) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kEager;
  config.memory_limit_bytes = 1800;
  config.eviction_policy = EvictionPolicy::kRandom;
  MemoryLimitedQuadtree tree(Box::Cube(4, 0.0, 1000.0), config);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    Point p(4);
    for (int d = 0; d < 4; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    tree.Insert(p, rng.Uniform(0.0, 10000.0));
    ASSERT_LE(tree.memory_used(), 1800);
  }
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
  EXPECT_GT(tree.counters().compressions, 0);
}

TEST(EvictionPolicyTest, SsegBeatsRandomOnAccuracy) {
  // The paper's policy must out-predict the degenerate control on a
  // structured surface under a clustered workload.
  auto run = [](EvictionPolicy policy) {
    MlqConfig config;
    config.strategy = InsertionStrategy::kEager;
    config.memory_limit_bytes = 1800;
    config.eviction_policy = policy;
    MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 1000.0), config);
    Rng rng(4);
    double err = 0.0;
    for (int i = 0; i < 4000; ++i) {
      // Two clusters with very different cost levels plus within-cluster
      // gradients, so finite resolution leaves real prediction error.
      const bool left = rng.NextBool(0.5);
      Point p{rng.Gaussian(left ? 200.0 : 800.0, 50.0),
              rng.Gaussian(left ? 200.0 : 800.0, 50.0)};
      const double actual = left ? 100.0 + p[0] : 8000.0 + 4.0 * p[1];
      if (i > 500) err += std::abs(tree.Predict(p).value - actual);
      tree.Insert(p, actual);
    }
    return err;
  };
  EXPECT_LT(run(EvictionPolicy::kSseg), run(EvictionPolicy::kRandom));
}

TEST(MergeTreeStatsTest, EmptyInputIsIdentity) {
  const TreeStats merged = MergeTreeStats({});
  EXPECT_EQ(merged.num_nodes, 0);
  EXPECT_EQ(merged.num_leaves, 0);
  EXPECT_EQ(merged.max_depth_present, 0);
  EXPECT_TRUE(merged.nodes_per_depth.empty());
  EXPECT_TRUE(merged.points_per_depth.empty());
  EXPECT_DOUBLE_EQ(merged.mean_leaf_depth, 0.0);
  EXPECT_DOUBLE_EQ(merged.redundant_node_fraction, 0.0);
}

TEST(MergeTreeStatsTest, SingleTreeIsUnchanged) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), BigConfig(3));
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    Point p{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    tree.Insert(p, rng.Uniform(0.0, 50.0));
  }
  const TreeStats single = ComputeTreeStats(tree);
  const TreeStats merged = MergeTreeStats({single});
  EXPECT_EQ(merged.num_nodes, single.num_nodes);
  EXPECT_EQ(merged.num_leaves, single.num_leaves);
  EXPECT_EQ(merged.max_depth_present, single.max_depth_present);
  EXPECT_EQ(merged.nodes_per_depth, single.nodes_per_depth);
  EXPECT_EQ(merged.points_per_depth, single.points_per_depth);
  EXPECT_DOUBLE_EQ(merged.mean_leaf_depth, single.mean_leaf_depth);
  EXPECT_DOUBLE_EQ(merged.redundant_node_fraction,
                   single.redundant_node_fraction);
}

TEST(MergeTreeStatsTest, UnequalDepthVectorLengths) {
  // Hand-assembled parts whose two depth vectors disagree in length (a
  // shape ComputeTreeStats never produces, but snapshot/import paths can):
  // each vector must be merged by its own length, not the other's.
  TreeStats a;
  a.num_nodes = 3;
  a.num_leaves = 2;
  a.max_depth_present = 1;
  a.nodes_per_depth = {1, 2};
  a.points_per_depth = {10};  // Shorter than nodes_per_depth.
  a.mean_leaf_depth = 1.0;
  a.redundant_node_fraction = 0.5;

  TreeStats b;
  b.num_nodes = 5;
  b.num_leaves = 3;
  b.max_depth_present = 2;
  b.nodes_per_depth = {1, 1};
  b.points_per_depth = {20, 15, 7};  // Longer than nodes_per_depth.
  b.mean_leaf_depth = 2.0;
  b.redundant_node_fraction = 0.25;

  const TreeStats merged = MergeTreeStats({a, b});
  EXPECT_EQ(merged.num_nodes, 8);
  EXPECT_EQ(merged.num_leaves, 5);
  EXPECT_EQ(merged.max_depth_present, 2);
  ASSERT_EQ(merged.nodes_per_depth.size(), 2u);
  EXPECT_EQ(merged.nodes_per_depth[0], 2);
  EXPECT_EQ(merged.nodes_per_depth[1], 3);
  ASSERT_EQ(merged.points_per_depth.size(), 3u);
  EXPECT_EQ(merged.points_per_depth[0], 30);
  EXPECT_EQ(merged.points_per_depth[1], 15);
  EXPECT_EQ(merged.points_per_depth[2], 7);
  // Leaf-weighted: (1.0*2 + 2.0*3) / 5.
  EXPECT_DOUBLE_EQ(merged.mean_leaf_depth, 1.6);
  // Node-weighted over non-root nodes: (0.5*2 + 0.25*4) / 6.
  EXPECT_DOUBLE_EQ(merged.redundant_node_fraction, 2.0 / 6.0);
}

TEST(MergeTreeStatsTest, EmptyAndRootOnlyPartsDoNotSkewRedundancy) {
  TreeStats empty;  // All defaults: num_nodes == 0.
  TreeStats root_only;
  root_only.num_nodes = 1;
  root_only.num_leaves = 1;
  root_only.nodes_per_depth = {1};
  root_only.points_per_depth = {0};
  TreeStats real;
  real.num_nodes = 4;
  real.num_leaves = 3;
  real.nodes_per_depth = {1, 3};
  real.points_per_depth = {9, 9};
  real.mean_leaf_depth = 1.0;
  real.redundant_node_fraction = 1.0;

  const TreeStats merged = MergeTreeStats({empty, root_only, real});
  EXPECT_EQ(merged.num_nodes, 5);
  // Only `real` carries non-root nodes; the zero-node and root-only parts
  // must contribute zero weight (not -1 and 0 node counts).
  EXPECT_DOUBLE_EQ(merged.redundant_node_fraction, 1.0);
}

}  // namespace
}  // namespace mlq
