// Tests for tree introspection and the eviction-policy ablation knob.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "quadtree/memory_limited_quadtree.h"
#include "quadtree/tree_stats.h"

namespace mlq {
namespace {

MlqConfig BigConfig(int max_depth = 4) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kEager;
  config.max_depth = max_depth;
  config.memory_limit_bytes = 1 << 20;
  return config;
}

TEST(TreeStatsTest, EmptyTree) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), BigConfig());
  const TreeStats stats = ComputeTreeStats(tree);
  EXPECT_EQ(stats.num_nodes, 1);
  EXPECT_EQ(stats.num_leaves, 1);
  EXPECT_EQ(stats.max_depth_present, 0);
  EXPECT_DOUBLE_EQ(stats.mean_leaf_depth, 0.0);
  ASSERT_EQ(stats.nodes_per_depth.size(), 1u);
  EXPECT_EQ(stats.nodes_per_depth[0], 1);
}

TEST(TreeStatsTest, SingleInsertChain) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), BigConfig(3));
  tree.Insert(Point{10.0, 10.0}, 5.0);
  const TreeStats stats = ComputeTreeStats(tree);
  EXPECT_EQ(stats.num_nodes, 4);  // Root + chain of 3.
  EXPECT_EQ(stats.num_leaves, 1);
  EXPECT_EQ(stats.max_depth_present, 3);
  EXPECT_DOUBLE_EQ(stats.mean_leaf_depth, 3.0);
  // Every node in a single-value chain has the same average: all redundant.
  EXPECT_DOUBLE_EQ(stats.redundant_node_fraction, 1.0);
  for (int depth = 0; depth <= 3; ++depth) {
    EXPECT_EQ(stats.nodes_per_depth[static_cast<size_t>(depth)], 1);
    EXPECT_EQ(stats.points_per_depth[static_cast<size_t>(depth)], 1);
  }
}

TEST(TreeStatsTest, CountsMatchTreeAccounting) {
  MemoryLimitedQuadtree tree(Box::Cube(3, 0.0, 100.0), BigConfig());
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    tree.Insert(Point{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0),
                      rng.Uniform(0.0, 100.0)},
                rng.Uniform(0.0, 100.0));
  }
  const TreeStats stats = ComputeTreeStats(tree);
  EXPECT_EQ(stats.num_nodes, tree.num_nodes());
  EXPECT_EQ(stats.points_per_depth[0], 300);  // Root summarizes everything.
  int64_t leaves = 0;
  tree.ForEachNode([&](const QuadtreeNode& n, const Box&) {
    if (n.IsLeaf()) ++leaves;
  });
  EXPECT_EQ(stats.num_leaves, leaves);
}

TEST(TreeStatsTest, ToStringMentionsEveryDepth) {
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 100.0), BigConfig(2));
  tree.Insert(Point{1.0, 1.0}, 5.0);
  const std::string text = TreeStatsToString(ComputeTreeStats(tree));
  EXPECT_NE(text.find("depth 0"), std::string::npos);
  EXPECT_NE(text.find("depth 2"), std::string::npos);
  EXPECT_NE(text.find("nodes=3"), std::string::npos);  // Root + chain of 2.
}

TEST(TreeStatsTest, DumpTreeShowsBlocksAndTruncates) {
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 8.0), BigConfig(2));
  tree.Insert(Point{1.0}, 5.0);
  const std::string dump = DumpTree(tree);
  EXPECT_NE(dump.find("[leaf]"), std::string::npos);
  EXPECT_NE(dump.find("n=1"), std::string::npos);
  // Truncation path.
  Rng rng(2);
  MemoryLimitedQuadtree big(Box::Cube(2, 0.0, 100.0), BigConfig(5));
  for (int i = 0; i < 500; ++i) {
    big.Insert(Point{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)}, 1.0);
  }
  EXPECT_NE(DumpTree(big, 10).find("truncated"), std::string::npos);
}

// --- Eviction policies ------------------------------------------------------

TEST(EvictionPolicyTest, CountOnlyEvictsLowestCountLeaf) {
  MlqConfig config = BigConfig(1);
  config.eviction_policy = EvictionPolicy::kCountOnly;
  config.gamma = 1e-9;  // One eviction per compression.
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 8.0), config);
  // Left leaf: 3 points whose average equals the root's (SSEG would be 0).
  tree.Insert(Point{1.0}, 50.0);
  tree.Insert(Point{1.5}, 50.0);
  tree.Insert(Point{2.0}, 50.0);
  // Right leaf: 1 point far from the root average (huge SSEG, tiny count).
  tree.Insert(Point{6.0}, 50.0);
  tree.Compress();
  // SSEG policy would evict the left leaf; count policy evicts the right.
  EXPECT_NE(tree.root().Child(0), nullptr);
  EXPECT_EQ(tree.root().Child(1), nullptr);
}

TEST(EvictionPolicyTest, SsegIsTheDefaultAndPrefersRedundantLeaves) {
  MlqConfig config = BigConfig(1);
  config.gamma = 1e-9;
  EXPECT_EQ(config.eviction_policy, EvictionPolicy::kSseg);
  MemoryLimitedQuadtree tree(Box::Cube(1, 0.0, 8.0), config);
  tree.Insert(Point{1.0}, 50.0);
  tree.Insert(Point{1.5}, 50.0);
  tree.Insert(Point{2.0}, 50.0);
  tree.Insert(Point{6.0}, 500.0);
  tree.Compress();
  // Left leaf's average (50) is closer to the root's (162.5): its SSEG
  // (3 * 112.5^2 ~ 38k) is below the right's ((162.5-500)^2 ~ 114k).
  EXPECT_EQ(tree.root().Child(0), nullptr);
  EXPECT_NE(tree.root().Child(1), nullptr);
}

TEST(EvictionPolicyTest, RandomRespectsBudgetAndInvariants) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kEager;
  config.memory_limit_bytes = 1800;
  config.eviction_policy = EvictionPolicy::kRandom;
  MemoryLimitedQuadtree tree(Box::Cube(4, 0.0, 1000.0), config);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    Point p(4);
    for (int d = 0; d < 4; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    tree.Insert(p, rng.Uniform(0.0, 10000.0));
    ASSERT_LE(tree.memory_used(), 1800);
  }
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
  EXPECT_GT(tree.counters().compressions, 0);
}

TEST(EvictionPolicyTest, SsegBeatsRandomOnAccuracy) {
  // The paper's policy must out-predict the degenerate control on a
  // structured surface under a clustered workload.
  auto run = [](EvictionPolicy policy) {
    MlqConfig config;
    config.strategy = InsertionStrategy::kEager;
    config.memory_limit_bytes = 1800;
    config.eviction_policy = policy;
    MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 1000.0), config);
    Rng rng(4);
    double err = 0.0;
    for (int i = 0; i < 4000; ++i) {
      // Two clusters with very different cost levels plus within-cluster
      // gradients, so finite resolution leaves real prediction error.
      const bool left = rng.NextBool(0.5);
      Point p{rng.Gaussian(left ? 200.0 : 800.0, 50.0),
              rng.Gaussian(left ? 200.0 : 800.0, 50.0)};
      const double actual = left ? 100.0 + p[0] : 8000.0 + 4.0 * p[1];
      if (i > 500) err += std::abs(tree.Predict(p).value - actual);
      tree.Insert(p, actual);
    }
    return err;
  };
  EXPECT_LT(run(EvictionPolicy::kSseg), run(EvictionPolicy::kRandom));
}

}  // namespace
}  // namespace mlq
