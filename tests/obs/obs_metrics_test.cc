// Unit tests for the metrics layer: instruments, histogram bucketing and
// quantiles, registry rendering, and the runtime toggle.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace mlq {
namespace obs {
namespace {

TEST(ObsCounterTest, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(ObsCounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c]() {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(c.Value(), static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(ObsGaugeTest, SetOverwrites) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), -1.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(ObsHistogramTest, BucketBoundsArePowersOfTwo) {
  // Bucket 0 = [0,2), bucket i = [2^i, 2^(i+1)).
  EXPECT_EQ(LatencyHistogram::BucketUpperNs(0), 2);
  EXPECT_EQ(LatencyHistogram::BucketUpperNs(1), 4);
  EXPECT_EQ(LatencyHistogram::BucketUpperNs(10), 2048);

  LatencyHistogram h;
  h.Record(0);
  h.Record(1);
  EXPECT_EQ(h.bucket(0), 2u);
  h.Record(2);
  h.Record(3);
  EXPECT_EQ(h.bucket(1), 2u);
  h.Record(1024);
  h.Record(2047);
  EXPECT_EQ(h.bucket(10), 2u);
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.sum_ns(), 0 + 1 + 2 + 3 + 1024 + 2047);
  EXPECT_EQ(h.max_ns(), 2047);
}

TEST(ObsHistogramTest, NegativeDurationsClampToBucketZero) {
  // A clock hiccup must not index out of bounds.
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(ObsHistogramTest, HugeDurationsClampToLastBucket) {
  LatencyHistogram h;
  h.Record(std::numeric_limits<int64_t>::max());
  EXPECT_EQ(h.bucket(LatencyHistogram::kNumBuckets - 1), 1u);
}

TEST(ObsHistogramTest, QuantilesAreOrderedAndBracketed) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // Empty.
  for (int i = 0; i < 1000; ++i) h.Record(100);   // All in [64,128).
  for (int i = 0; i < 10; ++i) h.Record(100000);  // Tail in [65536,131072).
  const double p50 = h.Quantile(0.50);
  const double p99 = h.Quantile(0.99);
  const double p999 = h.Quantile(0.999);
  EXPECT_GE(p50, 64.0);
  EXPECT_LT(p50, 128.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  // The 0.999 quantile must land in the tail bucket.
  EXPECT_GE(p999, 65536.0);
  EXPECT_LE(p999, 131072.0);
}

TEST(ObsHistogramTest, ConcurrentRecordsKeepCountsConsistent) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&h, t]() {
      for (int i = 0; i < kPerThread; ++i) h.Record(100 + t);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(h.count(), static_cast<int64_t>(kThreads) * kPerThread);
  uint64_t bucket_sum = 0;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    bucket_sum += h.bucket(i);
  }
  EXPECT_EQ(bucket_sum, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistryTest, GetReturnsStableReferences) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& a = reg.GetCounter("obs_test_stable_counter");
  a.Inc(7);
  Counter& b = reg.GetCounter("obs_test_stable_counter");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.Value(), 7);
  a.Reset();
}

TEST(ObsRegistryTest, PrometheusRenderContainsRegisteredMetrics) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test_prom_counter", "a test counter").Inc(3);
  reg.GetGauge("obs_test_prom_gauge", "a test gauge").Set(1.5);
  reg.GetHistogram("obs_test_prom_hist", "a test histogram").Record(100);

  std::ostringstream os;
  reg.RenderPrometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE obs_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_counter 3"), std::string::npos);
  EXPECT_NE(text.find("# HELP obs_test_prom_counter a test counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"128\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_count 1"), std::string::npos);
}

TEST(ObsRegistryTest, JsonRenderIsWellFormedEnough) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test_json_counter").Inc(5);
  reg.GetHistogram("obs_test_json_hist").Record(1000);
  std::ostringstream os;
  reg.RenderJson(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_json_counter\":5"), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  // Braces balance (no nested strings with braces in metric names).
  int depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ObsRegistryTest, ResetAllZeroesInstruments) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("obs_test_reset_counter");
  LatencyHistogram& h = reg.GetHistogram("obs_test_reset_hist");
  c.Inc(9);
  h.Record(50);
  reg.ResetAll();
  EXPECT_EQ(c.Value(), 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(ObsToggleTest, DefaultIsDisabled) {
  // The whole layer must be off unless something turns it on; tests that
  // enable it are responsible for restoring the default.
  EXPECT_FALSE(Enabled());
}

TEST(ObsCoreTest, CoreMetricsResolveOnce) {
  CoreMetrics& a = Core();
  CoreMetrics& b = Core();
  EXPECT_EQ(&a.predicts, &b.predicts);
  EXPECT_EQ(&a.predict_ns, &b.predict_ns);
  // And they are registry-backed under their public names.
  EXPECT_EQ(&a.predicts,
            &MetricsRegistry::Global().GetCounter("mlq_predicts_total"));
  EXPECT_EQ(&a.predict_ns, &MetricsRegistry::Global().GetHistogram(
                               "mlq_predict_latency_ns"));
}

TEST(ObsTimeTest, NowNsIsMonotonic) {
  const int64_t t0 = NowNs();
  const int64_t t1 = NowNs();
  EXPECT_GE(t1, t0);
  EXPECT_GE(t0, 0);
}

TEST(ObsTimeTest, ThreadIdsAreSmallAndStable) {
  const int id_here = CurrentThreadId();
  EXPECT_EQ(CurrentThreadId(), id_here);
  int id_there = -1;
  std::thread([&id_there]() { id_there = CurrentThreadId(); }).join();
  EXPECT_NE(id_there, id_here);
  EXPECT_GE(id_there, 0);
}

}  // namespace
}  // namespace obs
}  // namespace mlq
