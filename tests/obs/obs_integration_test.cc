// End-to-end test of the observability hooks: drive a real MLQ model with
// metrics and tracing enabled and check that the core instruments and the
// global trace ring reflect the work that was done.
//
// gtest runs every suite in one process, so these tests are careful to
// leave the layer exactly as they found it (toggles off, registry and ring
// clean) — other suites assert on the disabled default.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"
#include "obs/obs.h"

namespace mlq {
namespace {

// Enables metrics + tracing for one test body and restores the pristine
// disabled/empty state on the way out.
class ObsSession {
 public:
  ObsSession() {
    obs::MetricsRegistry::Global().ResetAll();
    obs::GlobalTraceRing().Clear();
    obs::SetEnabled(true);
    obs::SetTraceEnabled(true);
  }
  ~ObsSession() {
    obs::SetEnabled(false);
    obs::SetTraceEnabled(false);
    obs::MetricsRegistry::Global().ResetAll();
    obs::GlobalTraceRing().Clear();
  }
};

int CountEvents(const std::vector<obs::TraceEvent>& events,
                obs::TraceEventType type) {
  int n = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.type == type) ++n;
  }
  return n;
}

TEST(ObsIntegrationTest, ModelWorkloadPopulatesCoreMetrics) {
  ObsSession session;
  const Box space = Box::Cube(2, 0.0, 100.0);
  MlqModel model(space,
                 MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));

  constexpr int kOps = 1500;
  Rng rng(7);
  for (int i = 0; i < kOps; ++i) {
    const Point p{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    model.Observe(p, rng.Uniform(0.0, 500.0));
    model.Predict(p);
  }

  obs::CoreMetrics& core = obs::Core();
  EXPECT_EQ(core.inserts.Value(), kOps);
  EXPECT_EQ(core.predicts.Value(), kOps);
  EXPECT_EQ(core.insert_ns.count(), kOps);
  EXPECT_EQ(core.predict_ns.count(), kOps);
  EXPECT_GT(core.insert_ns.Quantile(0.99), 0.0);
  // The paper budget (1.8 KB) is far below what 1500 eager inserts want,
  // so compression must have run — and published its threshold gauge.
  EXPECT_GT(core.compressions.Value(), 0);
  EXPECT_GT(core.compress_bytes_freed.Value(), 0);
  EXPECT_GT(core.partitions.Value(), 0);
  EXPECT_GE(core.sse_threshold.Value(), 0.0);

  const std::vector<obs::TraceEvent> events =
      obs::GlobalTraceRing().Snapshot();
  EXPECT_GT(CountEvents(events, obs::TraceEventType::kPredict), 0);
  EXPECT_GT(CountEvents(events, obs::TraceEventType::kInsert), 0);
  EXPECT_GT(CountEvents(events, obs::TraceEventType::kCompress), 0);
  // Compress spans carry (bytes freed, th_SSE) and a real duration.
  for (const obs::TraceEvent& e : events) {
    if (e.type == obs::TraceEventType::kCompress) {
      EXPECT_GT(e.a, 0.0);
      EXPECT_GE(e.dur_ns, 0);
    }
  }
}

TEST(ObsIntegrationTest, DisabledLayerRecordsNothing) {
  {
    ObsSession session;  // Reset + enable...
    obs::SetEnabled(false);
    obs::SetTraceEnabled(false);  // ...then switch off for the workload.

    const Box space = Box::Cube(2, 0.0, 100.0);
    MlqModel model(
        space, MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
      const Point p{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
      model.Observe(p, rng.Uniform(0.0, 500.0));
      model.Predict(p);
    }

    EXPECT_EQ(obs::Core().inserts.Value(), 0);
    EXPECT_EQ(obs::Core().predicts.Value(), 0);
    EXPECT_EQ(obs::Core().compressions.Value(), 0);
    EXPECT_TRUE(obs::GlobalTraceRing().Snapshot().empty());
  }
  EXPECT_FALSE(obs::Enabled());
  EXPECT_FALSE(obs::TraceEnabled());
}

TEST(ObsIntegrationTest, MetricsOnTracingOffKeepsRingEmpty) {
  ObsSession session;
  obs::SetTraceEnabled(false);

  const Box space = Box::Cube(2, 0.0, 100.0);
  MlqModel model(space,
                 MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    model.Observe(p, rng.Uniform(0.0, 500.0));
    model.Predict(p);
  }

  EXPECT_EQ(obs::Core().inserts.Value(), 500);
  EXPECT_EQ(obs::Core().predicts.Value(), 500);
  EXPECT_TRUE(obs::GlobalTraceRing().Snapshot().empty());
}

TEST(ObsIntegrationTest, MidRunToggleStopsNewRecordings) {
  ObsSession session;
  const Box space = Box::Cube(2, 0.0, 100.0);
  MlqModel model(space,
                 MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));
  Rng rng(17);
  const Point p{50.0, 50.0};
  model.Observe(p, 10.0);
  ASSERT_EQ(obs::Core().inserts.Value(), 1);

  obs::SetEnabled(false);
  obs::SetTraceEnabled(false);
  model.Observe(p, 12.0);
  model.Predict(p);
  EXPECT_EQ(obs::Core().inserts.Value(), 1);
  EXPECT_EQ(obs::Core().predicts.Value(), 0);
}

}  // namespace
}  // namespace mlq
