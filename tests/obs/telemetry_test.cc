// Tests for the continuous telemetry pipeline: the SnapshotAndReset scrape
// primitive (no negative deltas under a concurrent ResetAll — the
// regression this PR fixes), exporter delta/rate/cumulative arithmetic and
// lifecycle, Prometheus line-format validity, per-model health, and the
// end-to-end drift scenario journaling drift-fired and maintenance-epoch
// events with the documented payloads.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/cost_catalog.h"
#include "eval/experiment_setup.h"
#include "obs/obs.h"

namespace mlq {
namespace obs {
namespace {

// The registry and journal are process-wide singletons; start every test
// from a clean, enabled slate and leave obs off afterwards.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    MetricsRegistry::Global().ResetAll();
    GlobalEventLog().Clear();
  }
  void TearDown() override {
    MetricsRegistry::Global().ResetAll();
    GlobalEventLog().Clear();
    SetEnabled(false);
  }
};

TEST_F(TelemetryTest, CounterDrainIsExactUnderConcurrentIncrements) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> drained{0};

  std::thread drainer([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      drained.fetch_add(c.Drain(), std::memory_order_relaxed);
    }
  });
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c]() {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (std::thread& t : pool) t.join();
  stop.store(true, std::memory_order_release);
  drainer.join();
  drained.fetch_add(c.Drain(), std::memory_order_relaxed);

  // Every increment lands in exactly one drain: nothing lost, nothing
  // double-counted.
  EXPECT_EQ(drained.load(), static_cast<int64_t>(kThreads) * kPerThread);
}

// The satellite regression: a scrape loop running concurrently with
// ResetAll must never observe a negative interval delta. SnapshotAndReset
// holds the registry mutex, so the reset lands entirely before or entirely
// after any scrape; the scrape output IS the delta.
TEST_F(TelemetryTest, SnapshotAndResetDeltasNeverNegativeUnderResetAll) {
  auto& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("test_srar_total");
  LatencyHistogram& hist = registry.GetHistogram("test_srar_latency_ns");

  std::atomic<bool> stop{false};
  std::thread incrementer([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      counter.Inc();
      hist.Record(100);
    }
  });
  std::thread resetter([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      registry.ResetAll();
    }
  });

  for (int i = 0; i < 2000; ++i) {
    const MetricsSnapshot delta = registry.SnapshotAndReset();
    const auto c = delta.counters.find("test_srar_total");
    ASSERT_NE(c, delta.counters.end());
    ASSERT_GE(c->second, 0) << "negative counter delta at scrape " << i;
    const auto h = delta.histograms.find("test_srar_latency_ns");
    ASSERT_NE(h, delta.histograms.end());
    ASSERT_GE(h->second.count, 0) << "negative histogram delta at " << i;
    ASSERT_GE(h->second.sum_ns, 0);
    for (uint64_t bucket : h->second.buckets) {
      ASSERT_LE(bucket, uint64_t{1} << 62);  // No unsigned underflow.
    }
  }
  stop.store(true, std::memory_order_release);
  incrementer.join();
  resetter.join();
}

TEST_F(TelemetryTest, HistogramSnapshotDeltaSinceClampsRegressions) {
  HistogramSnapshot older;
  older.count = 10;
  older.sum_ns = 1000;
  older.buckets.fill(0);
  older.buckets[3] = 10;

  HistogramSnapshot newer = older;
  newer.count = 4;  // A reset landed in between: cumulative went backwards.
  newer.buckets[3] = 4;

  const HistogramSnapshot delta = newer.DeltaSince(older);
  EXPECT_EQ(delta.count, 0);
  EXPECT_EQ(delta.buckets[3], 0u);
}

TEST_F(TelemetryTest, ScrapeOnceComputesDeltasRatesAndCumulative) {
  auto& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("test_scrape_total");
  LatencyHistogram& hist = registry.GetHistogram("test_scrape_latency_ns");

  TelemetryExporter exporter;
  counter.Inc(5);
  for (int i = 0; i < 100; ++i) hist.Record(1000);

  const TelemetryFrame f1 = exporter.ScrapeOnce();
  EXPECT_EQ(f1.sequence, 1);
  EXPECT_GT(f1.interval_s, 0.0);
  EXPECT_EQ(f1.counter_deltas.at("test_scrape_total"), 5);
  EXPECT_GT(f1.counter_rates.at("test_scrape_total"), 0.0);
  EXPECT_EQ(f1.histograms.at("test_scrape_latency_ns").count, 100);
  EXPECT_GT(f1.histograms.at("test_scrape_latency_ns").p50_ns, 0.0);
  EXPECT_EQ(f1.cumulative.counters.at("test_scrape_total"), 5);

  counter.Inc(3);
  const TelemetryFrame f2 = exporter.ScrapeOnce();
  EXPECT_EQ(f2.sequence, 2);
  // Interval delta is the new increments only; the cumulative view keeps
  // the lifetime total even though each scrape drained the registry.
  EXPECT_EQ(f2.counter_deltas.at("test_scrape_total"), 3);
  EXPECT_EQ(f2.cumulative.counters.at("test_scrape_total"), 8);
  EXPECT_EQ(f2.cumulative.histograms.at("test_scrape_latency_ns").count, 100);
  EXPECT_EQ(exporter.scrapes(), 2);
  EXPECT_EQ(exporter.latest_frame().sequence, 2);
}

TEST_F(TelemetryTest, ScrapeAttachesJournalEventsExactlyOnce) {
  TelemetryExporter exporter;
  GlobalEventLog().Append(EventKind::kModelLoad, "udf-a", 1800.0);
  GlobalEventLog().Append(EventKind::kModelFlush, "catalog", 1.0);
  const TelemetryFrame f1 = exporter.ScrapeOnce();
  ASSERT_EQ(f1.events.size(), 2u);
  EXPECT_EQ(f1.events[0].kind, EventKind::kModelLoad);

  // Already-delivered events do not repeat; the journal itself still holds
  // them (the exporter tails, it does not consume).
  const TelemetryFrame f2 = exporter.ScrapeOnce();
  EXPECT_TRUE(f2.events.empty());
  EXPECT_EQ(GlobalEventLog().Snapshot().size(), 2u);
}

TEST_F(TelemetryTest, ExporterLifecycleStartStopRestart) {
  TelemetryExporterOptions opts;
  opts.interval_ms = 5;
  TelemetryExporter exporter(opts);
  EXPECT_FALSE(exporter.running());

  ASSERT_TRUE(exporter.Start());
  EXPECT_TRUE(exporter.running());
  EXPECT_FALSE(exporter.Start());  // Already running.

  Counter& counter =
      MetricsRegistry::Global().GetCounter("test_lifecycle_total");
  counter.Inc(7);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  // The background loop scraped, and Stop's final flush folded the tail:
  // nothing is stranded in the registry.
  EXPECT_GE(exporter.scrapes(), 1);
  EXPECT_EQ(exporter.latest_frame().cumulative.counters.at(
                "test_lifecycle_total"),
            7);
  exporter.Stop();  // Idempotent.

  counter.Inc(2);
  ASSERT_TRUE(exporter.Start());
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  exporter.Stop();
  EXPECT_EQ(exporter.latest_frame().cumulative.counters.at(
                "test_lifecycle_total"),
            9);
}

TEST_F(TelemetryTest, RejectsNonPositiveInterval) {
  TelemetryExporterOptions opts;
  opts.interval_ms = 0;
  TelemetryExporter exporter(opts);
  EXPECT_FALSE(exporter.Start());
  EXPECT_FALSE(exporter.running());
}

TEST_F(TelemetryTest, CallbackSinkSeesEveryScrape) {
  TelemetryExporter exporter;
  int64_t frames = 0;
  exporter.AddSink(std::make_unique<CallbackSink>(
      [&frames](const TelemetryFrame& frame) {
        ++frames;
        EXPECT_EQ(frame.sequence, frames);
      }));
  exporter.ScrapeOnce();
  exporter.ScrapeOnce();
  EXPECT_EQ(frames, 2);
}

// Every exposition line must be a comment (# HELP / # TYPE) or a
// `name{labels} value` sample — the format Prometheus' text parser
// accepts.
TEST_F(TelemetryTest, PrometheusExpositionLineFormatParses) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test_prom_total", "A test counter").Inc(3);
  registry.GetHistogram("test_prom_latency_ns", "A test histogram")
      .Record(512);

  TelemetryExporter exporter;
  exporter.ScrapeOnce();
  const TelemetryFrame frame = exporter.latest_frame();

  std::vector<ModelHealth> health(1);
  health[0].model = "udf-a";
  health[0].bytes = 1792;
  health[0].nodes = 64;
  health[0].observations = 1000;
  health[0].windowed_nae = 0.02;
  health[0].staleness = 1.01;
  health[0].accuracy_per_byte = 1.0 / (1.02 * 1792.0);

  std::ostringstream os;
  RenderPrometheusExposition(os, frame.cumulative, &frame, health);
  const std::string text = os.str();
  ASSERT_FALSE(text.empty());

  const std::regex comment(R"(^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*.*$)");
  const std::regex sample(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? )"
      R"(-?([0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|[0-9.]+e[-+][0-9]+|\+Inf|inf|nan)$)");
  std::istringstream lines(text);
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const bool ok = std::regex_match(line, comment) ||
                    std::regex_match(line, sample);
    EXPECT_TRUE(ok) << "unparseable exposition line: " << line;
    if (line[0] != '#') ++samples;
  }
  EXPECT_GT(samples, 10);

  // Spot-check the families the pipeline promises.
  EXPECT_NE(text.find("# TYPE test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP test_prom_total A test counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_total_rate_per_s"), std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_ns_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_ns_interval{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(text.find("mlq_model_health_bytes{model=\"udf-a\"} 1792"),
            std::string::npos);
  EXPECT_NE(text.find("mlq_telemetry_scrapes_total"), std::string::npos);
}

TEST_F(TelemetryTest, JsonlFrameHasSchemaKeysOnOneLine) {
  MetricsRegistry::Global().GetCounter("test_jsonl_total").Inc();
  TelemetryExporter exporter;
  const TelemetryFrame frame = exporter.ScrapeOnce();
  std::ostringstream os;
  RenderTelemetryFrameJsonl(os, frame);
  const std::string line = os.str();
  // One object, one line.
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
  for (const char* key :
       {"\"ts_ns\"", "\"seq\"", "\"interval_s\"", "\"counters\"",
        "\"gauges\"", "\"histograms\"", "\"health\"", "\"events\"",
        "\"delta\"", "\"rate_per_s\"", "\"total\"", "\"p999_ns\""}) {
    EXPECT_NE(line.find(key), std::string::npos) << "missing " << key;
  }
}

TEST_F(TelemetryTest, RegistryJsonAndSummaryExposeP999) {
  auto& registry = MetricsRegistry::Global();
  LatencyHistogram& hist = registry.GetHistogram("test_p999_latency_ns");
  for (int i = 0; i < 999; ++i) hist.Record(100);
  hist.Record(1 << 20);  // The 0.1% tail.

  std::ostringstream json;
  registry.RenderJson(json);
  EXPECT_NE(json.str().find("\"p999_ns\""), std::string::npos);

  std::ostringstream summary;
  registry.RenderLatencySummary(summary);
  EXPECT_NE(summary.str().find("p999"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: a drift scenario on a real catalog journals the documented
// events and publishes sane health.

TEST_F(TelemetryTest, DriftScenarioJournalsEventsWithCorrectPayloads) {
  CostCatalog catalog(/*memory_limit_bytes=*/1800);
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/5, /*noise_probability=*/0.0,
                                   /*seed=*/9);
  const Point point = udf->model_space().Center();

  // Stable era: cost ~100 with bounded jitter, long enough for the
  // windowed detector baselines to settle.
  for (int i = 0; i < 4000; ++i) {
    UdfCost cost;
    cost.cpu_work = 100.0 * (1.0 + 0.05 * std::sin(0.37 * i));
    catalog.RecordExecution(udf.get(), point, cost, (i % 3) == 0);
  }
  // Abrupt 4x step.
  for (int i = 0; i < 2000; ++i) {
    UdfCost cost;
    cost.cpu_work = 400.0 * (1.0 + 0.05 * std::sin(0.37 * i));
    catalog.RecordExecution(udf.get(), point, cost, (i % 3) == 0);
  }
  catalog.CompactArenas();

  const auto events = GlobalEventLog().Snapshot();
  const StructuredEvent* load = nullptr;
  const StructuredEvent* drift = nullptr;
  const StructuredEvent* maintenance = nullptr;
  for (const StructuredEvent& e : events) {
    if (e.kind == EventKind::kModelLoad && !load) load = &e;
    if (e.kind == EventKind::kDriftFired && !drift) drift = &e;
    if (e.kind == EventKind::kMaintenanceEpoch && !maintenance)
      maintenance = &e;
  }

  ASSERT_NE(load, nullptr);
  EXPECT_EQ(load->label_view(), udf->name());
  EXPECT_DOUBLE_EQ(load->a, 1800.0);

  ASSERT_NE(drift, nullptr) << "4x step did not journal a drift firing";
  EXPECT_EQ(drift->label_view(), udf->name());
  EXPECT_DOUBLE_EQ(drift->a, 2.0);  // DriftKind::kAbrupt.
  EXPECT_GE(drift->b, 3.0);         // Fast/slow ratio at the firing.
  EXPECT_GE(drift->c, 4000.0);      // Fired at/after the stable era's end.

  ASSERT_NE(maintenance, nullptr);
  EXPECT_EQ(maintenance->label_view(), "full");
  EXPECT_GE(maintenance->b, 0.0);  // Pause micros.
  EXPECT_GE(maintenance->c, 0.0);  // Bytes reclaimed.

  // Health after the run: one entry with real footprint and a fast window
  // above the slow one (the step is still draining through the horizons).
  const std::vector<ModelHealth> health = catalog.ReadModelHealth();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].model, udf->name());
  EXPECT_GT(health[0].bytes, 0);
  EXPECT_GT(health[0].nodes, 0);
  EXPECT_EQ(health[0].observations, 6000);
  EXPECT_GE(health[0].windowed_nae, 0.0);
  EXPECT_GE(health[0].staleness, 1.0);
  EXPECT_GT(health[0].accuracy_per_byte, 0.0);
  EXPECT_NEAR(health[0].accuracy_per_byte,
              1.0 / ((1.0 + health[0].windowed_nae) *
                     static_cast<double>(health[0].bytes)),
              1e-12);
}

TEST_F(TelemetryTest, HealthProviderFlowsIntoFramesAndSinks) {
  CostCatalog catalog(/*memory_limit_bytes=*/1800);
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/3, /*noise_probability=*/0.0,
                                   /*seed=*/4);
  const Point point = udf->model_space().Center();
  UdfCost cost;
  cost.cpu_work = 50.0;
  catalog.RecordExecution(udf.get(), point, cost, true);

  TelemetryExporter exporter;
  exporter.SetHealthProvider([&] { return catalog.ReadModelHealth(); });
  const TelemetryFrame frame = exporter.ScrapeOnce();
  ASSERT_EQ(frame.health.size(), 1u);
  EXPECT_EQ(frame.health[0].model, udf->name());

  std::ostringstream os;
  RenderPrometheusExposition(os, frame.cumulative, &frame, frame.health);
  EXPECT_NE(os.str().find("mlq_model_health_bytes{model=\""),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace mlq
