// Unit and concurrency tests for the structured event journal: ring
// semantics (newest survive, drops counted), the exporter's SnapshotSince
// cursor protocol, JSONL export shape, and multi-thread append while
// readers snapshot/drain (run under TSan by tools/run_sanitized_tests.sh).

#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/event_log.h"
#include "obs/obs.h"

namespace mlq {
namespace obs {
namespace {

// Every append is gated on the global toggle; flip it per fixture so the
// suite is order-independent.
class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override { SetEnabled(true); }
  void TearDown() override {
    GlobalEventLog().Clear();
    SetEnabled(false);
  }
};

TEST_F(EventLogTest, AppendRecordsPayloadAndTimestamp) {
  EventLog log(16);
  log.Append(EventKind::kDriftFired, "synth-udf", 2.0, 3.5, 1000.0);
  const auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kDriftFired);
  EXPECT_EQ(events[0].label_view(), "synth-udf");
  EXPECT_DOUBLE_EQ(events[0].a, 2.0);
  EXPECT_DOUBLE_EQ(events[0].b, 3.5);
  EXPECT_DOUBLE_EQ(events[0].c, 1000.0);
  EXPECT_GT(events[0].ts_ns, 0);
  EXPECT_EQ(log.total_appended(), 1);
  EXPECT_EQ(log.dropped(), 0);
}

TEST_F(EventLogTest, DisabledAppendIsDropped) {
  EventLog log(16);
  SetEnabled(false);
  log.Append(EventKind::kModelLoad, "ignored");
  EXPECT_EQ(log.total_appended(), 0);
  EXPECT_TRUE(log.Snapshot().empty());
  SetEnabled(true);
}

TEST_F(EventLogTest, LongLabelIsTruncatedNotOverrun) {
  EventLog log(4);
  const std::string longname(100, 'x');
  log.Append(EventKind::kModelLoad, longname);
  const auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LE(events[0].label_view().size(), StructuredEvent::kLabelCapacity);
  EXPECT_EQ(events[0].label_view(),
            longname.substr(0, events[0].label_view().size()));
}

TEST_F(EventLogTest, WraparoundKeepsNewestAndCountsDrops) {
  EventLog log(8);
  for (int i = 0; i < 20; ++i) {
    log.Append(EventKind::kCompressionEpoch, "t", /*a=*/i);
  }
  EXPECT_EQ(log.total_appended(), 20);
  EXPECT_EQ(log.dropped(), 12);
  const auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first snapshot of the newest 8 appends: a = 12..19.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].a, 12.0 + static_cast<double>(i));
  }
}

TEST_F(EventLogTest, DrainEmptiesInOneCriticalSection) {
  EventLog log(8);
  log.Append(EventKind::kDecayEpochs, "c", 3.0);
  log.Append(EventKind::kDecayEpochs, "c", 4.0);
  const auto drained = log.Drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_TRUE(log.Snapshot().empty());
  // The append total is history, not residency: it survives the drain.
  EXPECT_EQ(log.total_appended(), 2);
}

TEST_F(EventLogTest, SnapshotSinceDeliversEachEventExactlyOnce) {
  EventLog log(8);
  int64_t cursor = 0;
  log.Append(EventKind::kModelLoad, "a", 1.0);
  log.Append(EventKind::kModelLoad, "b", 2.0);
  auto first = log.SnapshotSince(&cursor);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(cursor, 2);

  // No new appends: nothing re-delivered.
  EXPECT_TRUE(log.SnapshotSince(&cursor).empty());

  log.Append(EventKind::kModelFlush, "c", 3.0);
  auto second = log.SnapshotSince(&cursor);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_DOUBLE_EQ(second[0].a, 3.0);
  EXPECT_EQ(cursor, 3);
}

TEST_F(EventLogTest, SnapshotSinceSkipsWrappedEntries) {
  EventLog log(4);
  int64_t cursor = 0;
  // 10 appends through a 4-slot ring: entries 0..5 are gone.
  for (int i = 0; i < 10; ++i) {
    log.Append(EventKind::kCompressionEpoch, "t", /*a=*/i);
  }
  const auto events = log.SnapshotSince(&cursor);
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].a, 6.0 + static_cast<double>(i));
  }
  EXPECT_EQ(cursor, 10);
}

TEST_F(EventLogTest, JsonlExportOneObjectPerLine) {
  EventLog log(8);
  log.Append(EventKind::kDriftFired, "udf-x", 2.0, 3.25, 500.0);
  log.Append(EventKind::kMaintenanceEpoch, "incremental", 1.0, 42.0, 4096.0);
  std::ostringstream os;
  ExportEventsJsonl(os, log.Snapshot());
  const std::string text = os.str();

  std::istringstream lines(text);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(n, 2);
  EXPECT_NE(text.find("\"kind\":\"drift_fired\""), std::string::npos);
  EXPECT_NE(text.find("\"label\":\"udf-x\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"maintenance_epoch\""), std::string::npos);
  EXPECT_NE(text.find("\"b\":42"), std::string::npos);
}

TEST_F(EventLogTest, ClearResetsResidencyTotalsAndDrops) {
  EventLog log(4);
  for (int i = 0; i < 9; ++i) log.Append(EventKind::kDecayEpochs, "c");
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.total_appended(), 0);
  EXPECT_EQ(log.dropped(), 0);
}

// Writers hammer a small ring while readers snapshot, drain, and tail with
// a cursor. Correctness here is (a) no data race — TSan's job — and (b)
// conservation: every append is either delivered to exactly one reader
// path or accounted as dropped/resident.
TEST_F(EventLogTest, ConcurrentAppendWhileExporting) {
  EventLog log(64);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> tailed{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, w]() {
      for (int i = 0; i < kPerWriter; ++i) {
        log.Append(EventKind::kCompressionEpoch, "w", /*a=*/w, /*b=*/i);
      }
    });
  }
  std::thread tailer([&log, &stop, &tailed]() {
    int64_t cursor = 0;
    while (!stop.load(std::memory_order_acquire)) {
      tailed.fetch_add(
          static_cast<int64_t>(log.SnapshotSince(&cursor).size()),
          std::memory_order_relaxed);
    }
    int64_t ignored = cursor;  // Final catch-up.
    tailed.fetch_add(static_cast<int64_t>(log.SnapshotSince(&ignored).size()),
                     std::memory_order_relaxed);
  });
  std::thread snapshotter([&log, &stop]() {
    while (!stop.load(std::memory_order_acquire)) {
      const auto events = log.Snapshot();
      ASSERT_LE(events.size(), log.capacity());
    }
  });

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  tailer.join();
  snapshotter.join();

  EXPECT_EQ(log.total_appended(),
            static_cast<int64_t>(kWriters) * kPerWriter);
  // The cursor never re-delivers, and skips only what wrap-around already
  // discarded — so the tailed count is bounded by the append total and
  // can miss at most what was dropped before the tailer's next visit.
  EXPECT_LE(tailed.load(), log.total_appended());
  EXPECT_GE(tailed.load() + log.dropped(),
            log.total_appended() - static_cast<int64_t>(log.capacity()));
  // Residency is full (writers overran 64 slots many times over).
  EXPECT_EQ(log.Snapshot().size(), log.capacity());
}

TEST_F(EventLogTest, ConcurrentDrainsPartitionTheStream) {
  EventLog log(1 << 14);  // Big enough that nothing wraps.
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> drained{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log]() {
      for (int i = 0; i < kPerWriter; ++i) {
        log.Append(EventKind::kDecayEpochs, "d");
      }
    });
  }
  std::vector<std::thread> drainers;
  for (int d = 0; d < 2; ++d) {
    drainers.emplace_back([&log, &stop, &drained]() {
      while (!stop.load(std::memory_order_acquire)) {
        drained.fetch_add(static_cast<int64_t>(log.Drain().size()),
                          std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : drainers) t.join();
  drained.fetch_add(static_cast<int64_t>(log.Drain().size()),
                    std::memory_order_relaxed);

  // Nothing wrapped, so the concurrent drains must partition the appends
  // exactly: each event delivered to exactly one drain.
  EXPECT_EQ(log.dropped(), 0);
  EXPECT_EQ(drained.load(), static_cast<int64_t>(kWriters) * kPerWriter);
}

}  // namespace
}  // namespace obs
}  // namespace mlq
