// Unit tests for the lock-free trace ring and the Chrome trace exporter.

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace_ring.h"

namespace mlq {
namespace obs {
namespace {

TEST(TraceRingTest, RecordsAndSnapshotsInOrder) {
  TraceRing ring(8);
  ring.Record(TraceEventType::kPredict, 100, 10, 1.0, 2.0);
  ring.Record(TraceEventType::kInsert, 200, 20, 3.0, 4.0);
  ring.Record(TraceEventType::kCompress, 300, 30, 5.0, 6.0);

  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, TraceEventType::kPredict);
  EXPECT_EQ(events[0].ts_ns, 100);
  EXPECT_EQ(events[0].dur_ns, 10);
  EXPECT_DOUBLE_EQ(events[0].a, 1.0);
  EXPECT_DOUBLE_EQ(events[0].b, 2.0);
  EXPECT_EQ(events[1].type, TraceEventType::kInsert);
  EXPECT_EQ(events[2].type, TraceEventType::kCompress);
  EXPECT_EQ(ring.total_recorded(), 3);
  EXPECT_EQ(ring.overwritten(), 0);
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(10);
  EXPECT_EQ(ring.capacity(), 16u);
  TraceRing exact(32);
  EXPECT_EQ(exact.capacity(), 32u);
  TraceRing tiny(0);
  EXPECT_GE(tiny.capacity(), 2u);
}

TEST(TraceRingTest, WrapsKeepingNewestEvents) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.Record(TraceEventType::kInsert, 1000 + i, 0, static_cast<double>(i),
                0.0);
  }
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first snapshot of the newest `capacity` events: 6, 7, 8, 9.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].a, static_cast<double>(6 + i));
  }
  EXPECT_EQ(ring.total_recorded(), 10);
  EXPECT_EQ(ring.overwritten(), 6);
}

TEST(TraceRingTest, ClearEmptiesTheRing) {
  TraceRing ring(8);
  ring.Record(TraceEventType::kPlan, 1, 1, 0.0, 0.0);
  ring.Clear();
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.total_recorded(), 0);
}

TEST(TraceRingTest, ConcurrentWritersLoseNothingWhenRingIsLargeEnough) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  TraceRing ring(16384);  // > kThreads * kPerThread: nothing overwritten.
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&ring, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        ring.Record(TraceEventType::kPredict, i, 0,
                    static_cast<double>(t * kPerThread + i), 0.0);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(ring.total_recorded(), kThreads * kPerThread);
  EXPECT_EQ(ring.overwritten(), 0);
  const std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  // Every event id arrives exactly once: ticketed slots never collide.
  std::set<double> ids;
  for (const TraceEvent& e : events) ids.insert(e.a);
  EXPECT_EQ(ids.size(), static_cast<size_t>(kThreads) * kPerThread);
}

TEST(TraceRingTest, SnapshotDuringConcurrentWritesYieldsWholeEvents) {
  // Writers hammer a tiny ring while a reader snapshots; every event the
  // snapshot returns must be internally consistent (the payload encodes a
  // checkable invariant: b == a + 1).
  TraceRing ring(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&ring, &stop]() {
      double v = 0.0;
      while (!stop.load(std::memory_order_relaxed)) {
        ring.Record(TraceEventType::kInsert, 1, 1, v, v + 1.0);
        v += 1.0;
      }
    });
  }
  for (int iter = 0; iter < 200; ++iter) {
    const std::vector<TraceEvent> events = ring.Snapshot();
    for (const TraceEvent& e : events) {
      EXPECT_DOUBLE_EQ(e.b, e.a + 1.0);
    }
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
}

TEST(TraceEventTypeTest, NamesAreStable) {
  EXPECT_EQ(TraceEventTypeName(TraceEventType::kPredict), "predict");
  EXPECT_EQ(TraceEventTypeName(TraceEventType::kInsert), "insert");
  EXPECT_EQ(TraceEventTypeName(TraceEventType::kCompress), "compress");
  EXPECT_EQ(TraceEventTypeName(TraceEventType::kFeedbackDrop),
            "feedback_drop");
  EXPECT_EQ(TraceEventTypeName(TraceEventType::kQueryExec), "query_exec");
}

TEST(ChromeTraceExportTest, EmitsLoadableTraceEventJson) {
  std::vector<TraceEvent> events;
  TraceEvent span;
  span.type = TraceEventType::kPredict;
  span.tid = 3;
  span.ts_ns = 2500;
  span.dur_ns = 1500;
  span.a = 42.0;
  span.b = 2.0;
  events.push_back(span);
  TraceEvent instant;
  instant.type = TraceEventType::kFeedbackDrop;
  instant.tid = 1;
  instant.ts_ns = 9000;
  instant.dur_ns = 0;
  instant.a = 17.0;
  events.push_back(instant);

  std::ostringstream os;
  ExportChromeTrace(os, events);
  const std::string json = os.str();

  // Top-level object with the traceEvents array.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // The span comes out as a complete ("X") event with us timestamps.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"predict\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  // The zero-duration event is an instant ("i").
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"feedback_drop\""), std::string::npos);
  // Structural sanity: brackets and braces balance.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(ChromeTraceExportTest, EmptyEventListIsStillValidJson) {
  std::ostringstream os;
  ExportChromeTrace(os, {});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace mlq
