#include "workload/query_distribution.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mlq {
namespace {

// Per-dimension sample variance of a point set.
double DimensionVariance(const std::vector<Point>& points, int dim) {
  double mean = 0.0;
  for (const Point& p : points) mean += p[dim];
  mean /= static_cast<double>(points.size());
  double var = 0.0;
  for (const Point& p : points) var += (p[dim] - mean) * (p[dim] - mean);
  return var / static_cast<double>(points.size());
}

WorkloadConfig Config(QueryDistributionKind kind, int n, uint64_t seed = 1) {
  WorkloadConfig config;
  config.kind = kind;
  config.num_points = n;
  config.seed = seed;
  return config;
}

TEST(QueryDistributionTest, GeneratesRequestedCount) {
  const Box space = Box::Cube(3, 0.0, 100.0);
  for (QueryDistributionKind kind : {QueryDistributionKind::kUniform,
                                     QueryDistributionKind::kGaussianRandom,
                                     QueryDistributionKind::kGaussianSequential}) {
    EXPECT_EQ(GenerateQueryPoints(space, Config(kind, 777)).size(), 777u);
    EXPECT_EQ(GenerateQueryPoints(space, Config(kind, 0)).size(), 0u);
  }
}

TEST(QueryDistributionTest, PointsStayInSpace) {
  const Box space = Box::Cube(4, -50.0, 50.0);
  for (QueryDistributionKind kind : {QueryDistributionKind::kUniform,
                                     QueryDistributionKind::kGaussianRandom,
                                     QueryDistributionKind::kGaussianSequential}) {
    for (const Point& p : GenerateQueryPoints(space, Config(kind, 2000))) {
      ASSERT_TRUE(space.ContainsClosed(p)) << p.ToString();
    }
  }
}

TEST(QueryDistributionTest, DeterministicBySeed) {
  const Box space = Box::Cube(2, 0.0, 10.0);
  const auto a = GenerateQueryPoints(
      space, Config(QueryDistributionKind::kGaussianRandom, 100, 5));
  const auto b = GenerateQueryPoints(
      space, Config(QueryDistributionKind::kGaussianRandom, 100, 5));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(QueryDistributionTest, UniformCoversTheSpace) {
  const Box space = Box::Cube(2, 0.0, 100.0);
  const auto points =
      GenerateQueryPoints(space, Config(QueryDistributionKind::kUniform, 5000));
  // Mean near the center and variance near extent^2/12 per dimension.
  for (int d = 0; d < 2; ++d) {
    double mean = 0.0;
    for (const Point& p : points) mean += p[d];
    mean /= static_cast<double>(points.size());
    EXPECT_NEAR(mean, 50.0, 2.0);
    EXPECT_NEAR(DimensionVariance(points, d), 100.0 * 100.0 / 12.0, 60.0);
  }
}

TEST(QueryDistributionTest, GaussianIsMoreConcentratedThanUniform) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  const auto uniform =
      GenerateQueryPoints(space, Config(QueryDistributionKind::kUniform, 3000));
  const auto gaussian = GenerateQueryPoints(
      space, Config(QueryDistributionKind::kGaussianRandom, 3000));
  // Three sigma-50 clusters occupy far less of the space than uniform does;
  // compare dispersion via mean nearest-centroid-free proxy: variance.
  EXPECT_LT(DimensionVariance(gaussian, 0) + DimensionVariance(gaussian, 1),
            DimensionVariance(uniform, 0) + DimensionVariance(uniform, 1));
}

TEST(QueryDistributionTest, GaussianSequentialVisitsCentroidsInPhases) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  WorkloadConfig config = Config(QueryDistributionKind::kGaussianSequential, 3000);
  config.num_centroids = 3;
  const auto points = GenerateQueryPoints(space, config);
  ASSERT_EQ(points.size(), 3000u);
  // Within each phase of 1000 points the spread is one cluster (sigma = 50);
  // across consecutive phases the cluster centers jump. Compare phase means.
  std::vector<Point> phase_mean(3, Point(2));
  for (int phase = 0; phase < 3; ++phase) {
    double mx = 0.0;
    double my = 0.0;
    for (int i = 0; i < 1000; ++i) {
      mx += points[static_cast<size_t>(phase * 1000 + i)][0];
      my += points[static_cast<size_t>(phase * 1000 + i)][1];
    }
    phase_mean[static_cast<size_t>(phase)] = Point{mx / 1000.0, my / 1000.0};
  }
  // At least one pair of phase means must be far apart (distinct centroids,
  // uniform placement makes collisions vanishingly unlikely).
  double max_gap = 0.0;
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) {
      max_gap = std::max(max_gap,
                         phase_mean[static_cast<size_t>(a)].DistanceTo(
                             phase_mean[static_cast<size_t>(b)]));
    }
  }
  EXPECT_GT(max_gap, 100.0);
}

TEST(QueryDistributionTest, SequentialRemainderGoesToLastCentroid) {
  const Box space = Box::Cube(1, 0.0, 10.0);
  WorkloadConfig config = Config(QueryDistributionKind::kGaussianSequential, 100);
  config.num_centroids = 3;  // 33 + 33 + 34.
  EXPECT_EQ(GenerateQueryPoints(space, config).size(), 100u);
}

TEST(QueryDistributionTest, KindNames) {
  EXPECT_EQ(QueryDistributionKindName(QueryDistributionKind::kUniform),
            "uniform");
  EXPECT_EQ(QueryDistributionKindName(QueryDistributionKind::kGaussianRandom),
            "gauss-random");
  EXPECT_EQ(
      QueryDistributionKindName(QueryDistributionKind::kGaussianSequential),
      "gauss-sequential");
}

TEST(TrainTestWorkloadTest, SharesCentroidsButNotSamples) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  WorkloadConfig config = Config(QueryDistributionKind::kGaussianRandom, 0, 7);
  config.num_centroids = 1;  // Single cluster: means must nearly coincide.
  const TrainTestWorkload w = GenerateTrainTestWorkloads(space, config, 2000, 2000);
  ASSERT_EQ(w.training.size(), 2000u);
  ASSERT_EQ(w.test.size(), 2000u);
  // Same centroid: the two sample means are within a few sigma/sqrt(n).
  double train_mean = 0.0;
  double test_mean = 0.0;
  for (const Point& p : w.training) train_mean += p[0];
  for (const Point& p : w.test) test_mean += p[0];
  train_mean /= 2000.0;
  test_mean /= 2000.0;
  EXPECT_NEAR(train_mean, test_mean, 10.0);
  // But the draws themselves are independent.
  int identical = 0;
  for (size_t i = 0; i < 2000; ++i) {
    if (w.training[i] == w.test[i]) ++identical;
  }
  EXPECT_EQ(identical, 0);
}

TEST(TrainTestWorkloadTest, SequentialPreservesPhaseStructure) {
  const Box space = Box::Cube(1, 0.0, 1000.0);
  WorkloadConfig config =
      Config(QueryDistributionKind::kGaussianSequential, 0, 8);
  config.num_centroids = 2;
  const TrainTestWorkload w = GenerateTrainTestWorkloads(space, config, 1000, 1000);
  // Phase means of training and test must pair up (same centroid order).
  auto phase_mean = [](const std::vector<Point>& pts, int phase) {
    double m = 0.0;
    for (int i = 0; i < 500; ++i) m += pts[static_cast<size_t>(phase * 500 + i)][0];
    return m / 500.0;
  };
  EXPECT_NEAR(phase_mean(w.training, 0), phase_mean(w.test, 0), 15.0);
  EXPECT_NEAR(phase_mean(w.training, 1), phase_mean(w.test, 1), 15.0);
}

TEST(DriftingWorkloadTest, CountAndContainment) {
  const Box space = Box::Cube(3, 0.0, 100.0);
  const auto points = GenerateDriftingWorkload(space, 999, 4, 2, 0.05, 3);
  EXPECT_EQ(points.size(), 999u);
  for (const Point& p : points) ASSERT_TRUE(space.ContainsClosed(p));
}

TEST(DriftingWorkloadTest, PhasesOccupyDifferentRegions) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  const auto points = GenerateDriftingWorkload(space, 2000, 2, 1, 0.02, 9);
  // Single centroid per phase: phase means differ.
  double m0 = 0.0;
  double m1 = 0.0;
  for (int i = 0; i < 1000; ++i) {
    m0 += points[static_cast<size_t>(i)][0] + points[static_cast<size_t>(i)][1];
    m1 += points[static_cast<size_t>(1000 + i)][0] +
          points[static_cast<size_t>(1000 + i)][1];
  }
  EXPECT_GT(std::abs(m0 - m1) / 1000.0, 50.0);
}

}  // namespace
}  // namespace mlq
