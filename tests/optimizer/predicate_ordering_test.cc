#include "optimizer/predicate_ordering.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace mlq {
namespace {

std::vector<PredicateEstimate> ThreePredicates() {
  return {
      {"cheap_selective", 1.0, 0.1},
      {"expensive_selective", 100.0, 0.1},
      {"cheap_permissive", 1.0, 0.9},
  };
}

TEST(PredicateOrderingTest, RankFormula) {
  PredicateEstimate p{"p", 10.0, 0.2};
  EXPECT_DOUBLE_EQ(p.Rank(), (0.2 - 1.0) / 10.0);
}

TEST(PredicateOrderingTest, ZeroCostPredicateRanksFirst) {
  PredicateEstimate free_p{"free", 0.0, 0.99};
  PredicateEstimate cheap{"cheap", 0.001, 0.01};
  EXPECT_LT(free_p.Rank(), cheap.Rank());
}

TEST(PredicateOrderingTest, SequenceCostShortCircuits) {
  const auto predicates = ThreePredicates();
  const std::vector<int> order = {0, 1, 2};
  // cost = 1 + 0.1*100 + 0.1*0.1*1 = 11.01
  EXPECT_DOUBLE_EQ(SequenceCostPerTuple(predicates, order), 11.01);
}

TEST(PredicateOrderingTest, EmptyChainCostsNothing) {
  EXPECT_DOUBLE_EQ(SequenceCostPerTuple({}, {}), 0.0);
}

TEST(PredicateOrderingTest, OrderingIsOptimalOverAllPermutations) {
  const auto predicates = ThreePredicates();
  const OrderingResult best = OrderPredicates(predicates);
  std::vector<int> order(predicates.size());
  std::iota(order.begin(), order.end(), 0);
  double brute_best = 1e300;
  do {
    brute_best = std::min(brute_best, SequenceCostPerTuple(predicates, order));
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_DOUBLE_EQ(best.expected_cost_per_tuple, brute_best);
}

TEST(PredicateOrderingTest, OptimalOnRandomizedInstances) {
  // Rank ordering must match exhaustive search on many random 4-predicate
  // instances (optimality of the rank metric for independent predicates).
  uint64_t state = 12345;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  };
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<PredicateEstimate> predicates;
    for (int i = 0; i < 4; ++i) {
      predicates.push_back(PredicateEstimate{
          "p" + std::to_string(i), 0.5 + 100.0 * next_unit(), next_unit()});
    }
    const OrderingResult best = OrderPredicates(predicates);
    std::vector<int> order(predicates.size());
    std::iota(order.begin(), order.end(), 0);
    double brute_best = 1e300;
    do {
      brute_best = std::min(brute_best, SequenceCostPerTuple(predicates, order));
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_NEAR(best.expected_cost_per_tuple, brute_best,
                1e-9 * brute_best)
        << "trial " << trial;
  }
}

TEST(PredicateOrderingTest, WorstIsAtLeastBest) {
  const auto predicates = ThreePredicates();
  const OrderingResult best = OrderPredicates(predicates);
  EXPECT_GE(WorstSequenceCostPerTuple(predicates),
            best.expected_cost_per_tuple);
}

TEST(PredicateOrderingTest, SelectivePredicateGoesBeforePermissiveAtEqualCost) {
  std::vector<PredicateEstimate> predicates = {
      {"permissive", 10.0, 0.9},
      {"selective", 10.0, 0.1},
  };
  const OrderingResult result = OrderPredicates(predicates);
  EXPECT_EQ(result.order.front(), 1);
}

TEST(PredicateOrderingTest, SingletonOrder) {
  std::vector<PredicateEstimate> predicates = {{"only", 5.0, 0.5}};
  const OrderingResult result = OrderPredicates(predicates);
  ASSERT_EQ(result.order.size(), 1u);
  EXPECT_EQ(result.order[0], 0);
  EXPECT_DOUBLE_EQ(result.expected_cost_per_tuple, 5.0);
}

}  // namespace
}  // namespace mlq
