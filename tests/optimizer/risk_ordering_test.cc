// Tests for risk-aware predicate ordering: the k = 0 exact-reduction
// contract, the RiskAdjustedCost arithmetic, beam-search optimality on
// small instances, and the motivating scenario — a high-variance and a
// low-variance predicate set where the classical and risk-adjusted ranks
// DISAGREE, and the risk order wins on realized cost.

#include "optimizer/predicate_ordering.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace mlq {
namespace {

TEST(RiskOrderingTest, RiskAdjustedCostMath) {
  PredicateEstimate p{"p", 10.0, 0.2, /*cost_stddev=*/2.0, /*support=*/4};
  // mean + k * stddev / sqrt(support) = 10 + 1 * 2 / 2.
  EXPECT_DOUBLE_EQ(p.RiskAdjustedCost(1.0), 11.0);
  EXPECT_DOUBLE_EQ(p.RiskAdjustedCost(2.0), 12.0);
  // k = 0 and zero stddev are exactly the point estimate.
  EXPECT_EQ(p.RiskAdjustedCost(0.0), 10.0);
  PredicateEstimate certain{"c", 10.0, 0.2, 0.0, 4};
  EXPECT_EQ(certain.RiskAdjustedCost(5.0), 10.0);
  // Unsupported estimates (support 0) pay the full k * stddev.
  PredicateEstimate unsupported{"u", 10.0, 0.2, 2.0, 0};
  EXPECT_DOUBLE_EQ(unsupported.RiskAdjustedCost(1.0), 12.0);
}

TEST(RiskOrderingTest, RiskRankMatchesRankAtZeroK) {
  PredicateEstimate p{"p", 10.0, 0.2, 3.0, 7};
  EXPECT_EQ(p.RiskRank(0.0), p.Rank());
}

TEST(RiskOrderingTest, RiskSequenceCostReducesToSequenceCostAtZeroK) {
  const std::vector<PredicateEstimate> predicates = {
      {"a", 1.0, 0.1, 5.0, 2},
      {"b", 100.0, 0.1, 50.0, 1},
      {"c", 1.0, 0.9, 0.5, 9},
  };
  const std::vector<int> order = {0, 1, 2};
  EXPECT_EQ(RiskSequenceCostPerTuple(predicates, order, 0.0),
            SequenceCostPerTuple(predicates, order));
}

TEST(RiskOrderingTest, ZeroKReducesExactlyToClassical) {
  // OrderPredicatesRisk(k = 0) must return OrderPredicates' result bit for
  // bit on arbitrary instances — the risk knob's default is a no-op.
  uint64_t state = 99;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  };
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<PredicateEstimate> predicates;
    for (int i = 0; i < 5; ++i) {
      predicates.push_back(PredicateEstimate{
          "p" + std::to_string(i), 0.5 + 100.0 * next_unit(), next_unit(),
          50.0 * next_unit(), static_cast<int64_t>(1 + 10 * next_unit())});
    }
    const OrderingResult classical = OrderPredicates(predicates);
    RiskPolicy policy;  // k = 0.
    const OrderingResult risk = OrderPredicatesRisk(predicates, policy);
    EXPECT_EQ(risk.order, classical.order) << "trial " << trial;
    EXPECT_EQ(risk.expected_cost_per_tuple, classical.expected_cost_per_tuple)
        << "trial " << trial;
    EXPECT_EQ(risk.risk_cost_per_tuple, classical.risk_cost_per_tuple)
        << "trial " << trial;
  }
}

TEST(RiskOrderingTest, BeamFindsOptimalRiskOrderOnSmallInstances) {
  // With a beam wide enough, the search must match brute force over all
  // permutations scored by risk-adjusted sequence cost.
  uint64_t state = 4242;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  };
  constexpr double kRiskK = 2.0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<PredicateEstimate> predicates;
    for (int i = 0; i < 4; ++i) {
      predicates.push_back(PredicateEstimate{
          "p" + std::to_string(i), 0.5 + 100.0 * next_unit(), next_unit(),
          80.0 * next_unit(), static_cast<int64_t>(1 + 5 * next_unit())});
    }
    RiskPolicy policy;
    policy.k = kRiskK;
    policy.beam_width = 24;  // >= 4! prefixes alive: exhaustive.
    const OrderingResult beam = OrderPredicatesRisk(predicates, policy);

    std::vector<int> order(predicates.size());
    std::iota(order.begin(), order.end(), 0);
    double brute_best = 1e300;
    do {
      brute_best = std::min(
          brute_best, RiskSequenceCostPerTuple(predicates, order, kRiskK));
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_NEAR(beam.risk_cost_per_tuple, brute_best, 1e-9 * brute_best)
        << "trial " << trial;
    // The reported costs must be consistent with the reported order.
    EXPECT_DOUBLE_EQ(
        beam.risk_cost_per_tuple,
        RiskSequenceCostPerTuple(predicates, beam.order, kRiskK));
    EXPECT_DOUBLE_EQ(beam.expected_cost_per_tuple,
                     SequenceCostPerTuple(predicates, beam.order));
  }
}

TEST(RiskOrderingTest, HighVarianceDisagreementRiskWinsOnRealizedCost) {
  // The motivating scenario. Predicate A is well-observed: cost 10 with
  // zero spread. Predicate B LOOKS cheaper (estimate 9) but rests on a
  // single wildly noisy observation (stddev 30, support 1); its true cost
  // is 40 — ~1 standard error above the estimate, entirely plausible.
  //
  // Classical rank ordering trusts the point estimates and runs B first.
  // Risk-adjusted ordering (k = 1) pads B to 9 + 30 = 39 and runs A first.
  const std::vector<PredicateEstimate> estimated = {
      {"well_observed", 10.0, 0.5, 0.0, 100},   // index 0: A
      {"noisy_cheap", 9.0, 0.5, 30.0, 1},       // index 1: B
  };
  const OrderingResult classical = OrderPredicates(estimated);
  RiskPolicy policy;
  policy.k = 1.0;
  const OrderingResult risk = OrderPredicatesRisk(estimated, policy);

  // The ranks disagree: classical runs the noisy predicate first, risk
  // runs the well-observed one first.
  ASSERT_EQ(classical.order.front(), 1);
  ASSERT_EQ(risk.order.front(), 0);

  // Realize the true costs (A was exact; B's truth is 40) and price both
  // orders on reality: the risk order must win.
  const std::vector<PredicateEstimate> realized = {
      {"well_observed", 10.0, 0.5},
      {"noisy_cheap", 40.0, 0.5},
  };
  const double classical_realized =
      SequenceCostPerTuple(realized, classical.order);
  const double risk_realized = SequenceCostPerTuple(realized, risk.order);
  EXPECT_DOUBLE_EQ(classical_realized, 40.0 + 0.5 * 10.0);  // 45.
  EXPECT_DOUBLE_EQ(risk_realized, 10.0 + 0.5 * 40.0);       // 30.
  EXPECT_LT(risk_realized, classical_realized);
}

TEST(RiskOrderingTest, LargeInstanceGreedyFallbackIsValidPermutation) {
  // Beyond 64 predicates the beam's prefix bitmask would overflow; the
  // implementation falls back to a greedy RiskRank sort. The result must
  // still be a permutation with self-consistent reported costs.
  std::vector<PredicateEstimate> predicates;
  uint64_t state = 7;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  };
  for (int i = 0; i < 70; ++i) {
    predicates.push_back(PredicateEstimate{
        "p" + std::to_string(i), 0.5 + 20.0 * next_unit(), next_unit(),
        10.0 * next_unit(), static_cast<int64_t>(1 + 3 * next_unit())});
  }
  RiskPolicy policy;
  policy.k = 1.5;
  const OrderingResult result = OrderPredicatesRisk(predicates, policy);
  ASSERT_EQ(result.order.size(), predicates.size());
  std::vector<int> sorted = result.order;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 70; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
  EXPECT_DOUBLE_EQ(
      result.risk_cost_per_tuple,
      RiskSequenceCostPerTuple(predicates, result.order, policy.k));
  EXPECT_DOUBLE_EQ(result.expected_cost_per_tuple,
                   SequenceCostPerTuple(predicates, result.order));
}

TEST(RiskOrderingTest, EmptyAndSingletonInstances) {
  RiskPolicy policy;
  policy.k = 2.0;
  const OrderingResult empty = OrderPredicatesRisk({}, policy);
  EXPECT_TRUE(empty.order.empty());
  EXPECT_DOUBLE_EQ(empty.risk_cost_per_tuple, 0.0);

  const std::vector<PredicateEstimate> one = {{"only", 5.0, 0.5, 2.0, 4}};
  const OrderingResult single = OrderPredicatesRisk(one, policy);
  ASSERT_EQ(single.order.size(), 1u);
  EXPECT_EQ(single.order.front(), 0);
  EXPECT_DOUBLE_EQ(single.expected_cost_per_tuple, 5.0);
  EXPECT_DOUBLE_EQ(single.risk_cost_per_tuple, 5.0 + 2.0 * 2.0 / 2.0);
}

}  // namespace
}  // namespace mlq
