// Tests for the spatial dataset, grid index, and spatial UDFs. The UDF
// results are validated against brute-force scans of the raw rectangles.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "spatial/dataset.h"
#include "spatial/grid_index.h"
#include "spatial/spatial_udfs.h"

namespace mlq {
namespace {

SpatialDatasetConfig SmallDataset() {
  SpatialDatasetConfig config;
  config.num_rects = 2000;
  config.num_clusters = 8;
  config.seed = 11;
  return config;
}

TEST(RectTest, DistanceToPoint) {
  Rect r{10.0, 10.0, 20.0, 20.0};
  EXPECT_DOUBLE_EQ(r.DistanceTo(15.0, 15.0), 0.0);  // Inside.
  EXPECT_DOUBLE_EQ(r.DistanceTo(25.0, 15.0), 5.0);  // Right of.
  EXPECT_DOUBLE_EQ(r.DistanceTo(15.0, 4.0), 6.0);   // Below.
  EXPECT_DOUBLE_EQ(r.DistanceTo(25.0, 32.0), 13.0);  // Corner: 5-12-13.
}

TEST(RectTest, WindowIntersection) {
  Rect r{10.0, 10.0, 20.0, 20.0};
  EXPECT_TRUE(r.IntersectsWindow(15.0, 15.0, 25.0, 25.0));
  EXPECT_TRUE(r.IntersectsWindow(20.0, 20.0, 30.0, 30.0));  // Touching corner.
  EXPECT_FALSE(r.IntersectsWindow(21.0, 21.0, 30.0, 30.0));
  EXPECT_TRUE(r.IntersectsWindow(0.0, 0.0, 100.0, 100.0));  // Covers.
}

TEST(SpatialDatasetTest, GeneratesRequestedCount) {
  SpatialDataset dataset(SmallDataset());
  EXPECT_EQ(dataset.size(), 2000);
}

TEST(SpatialDatasetTest, RectanglesWithinSpace) {
  SpatialDataset dataset(SmallDataset());
  for (const Rect& r : dataset.rects()) {
    ASSERT_GE(r.lo_x, 0.0);
    ASSERT_LE(r.hi_x, 1000.0);
    ASSERT_GE(r.lo_y, 0.0);
    ASSERT_LE(r.hi_y, 1000.0);
    ASSERT_LE(r.lo_x, r.hi_x);
    ASSERT_LE(r.lo_y, r.hi_y);
  }
}

TEST(SpatialDatasetTest, DataIsClustered) {
  // Clustered data: the densest 10% of grid cells must hold far more than
  // 10% of the rectangles.
  SpatialDataset dataset(SmallDataset());
  constexpr int kGrid = 20;
  std::vector<int> counts(kGrid * kGrid, 0);
  for (const Rect& r : dataset.rects()) {
    const int gx = std::min(kGrid - 1, static_cast<int>(r.CenterX() / 50.0));
    const int gy = std::min(kGrid - 1, static_cast<int>(r.CenterY() / 50.0));
    ++counts[static_cast<size_t>(gy * kGrid + gx)];
  }
  std::sort(counts.begin(), counts.end(), std::greater<>());
  int top_decile = 0;
  for (size_t i = 0; i < counts.size() / 10; ++i) top_decile += counts[i];
  EXPECT_GT(top_decile, dataset.size() / 2);
}

TEST(GridIndexTest, EveryRectangleIndexedInItsCells) {
  SpatialDataset dataset(SmallDataset());
  GridIndex grid(&dataset, 16);
  const auto& rects = dataset.rects();
  for (int32_t id = 0; id < dataset.size(); id += 97) {
    const Rect& r = rects[static_cast<size_t>(id)];
    const int gx = grid.CellOf(r.CenterX());
    const int gy = grid.CellOf(r.CenterY());
    const auto entries = grid.CellEntries(gx, gy);
    EXPECT_NE(std::find(entries.begin(), entries.end(), id), entries.end())
        << "rect " << id << " missing from its center cell";
  }
}

TEST(GridIndexTest, CellOfClampsAndPartitions) {
  SpatialDataset dataset(SmallDataset());
  GridIndex grid(&dataset, 10);
  EXPECT_EQ(grid.CellOf(-5.0), 0);
  EXPECT_EQ(grid.CellOf(0.0), 0);
  EXPECT_EQ(grid.CellOf(99.9), 0);
  EXPECT_EQ(grid.CellOf(100.0), 1);
  EXPECT_EQ(grid.CellOf(999.9), 9);
  EXPECT_EQ(grid.CellOf(1000.0), 9);
  EXPECT_EQ(grid.CellOf(2000.0), 9);
  EXPECT_DOUBLE_EQ(grid.cell_extent(), 100.0);
  EXPECT_DOUBLE_EQ(grid.CellLowerEdge(3), 300.0);
}

TEST(GridIndexTest, PageLayoutCoversEntries) {
  SpatialDataset dataset(SmallDataset());
  GridIndex grid(&dataset, 16);
  int64_t total_pages = 0;
  for (int gy = 0; gy < 16; ++gy) {
    for (int gx = 0; gx < 16; ++gx) {
      const auto entries = grid.CellEntries(gx, gy);
      const int64_t pages = grid.CellNumPages(gx, gy);
      ASSERT_EQ(pages, PagesForBytes(static_cast<int64_t>(entries.size()) *
                                     GridIndex::kEntryBytes));
      total_pages += pages;
    }
  }
  EXPECT_EQ(grid.index_file()->num_pages(), total_pages);
  EXPECT_EQ(grid.object_file()->num_pages(),
            (dataset.size() + GridIndex::kRectsPerPage - 1) /
                GridIndex::kRectsPerPage);
}

class SpatialUdfTest : public ::testing::Test {
 protected:
  SpatialUdfTest()
      : engine_(std::make_shared<SpatialEngine>(SmallDataset(),
                                                /*grid_size=*/16,
                                                /*buffer_pool_pages=*/64)) {}

  // Brute-force window count over the raw data.
  int64_t BruteForceWindow(double x, double y, double w, double h) const {
    int64_t count = 0;
    for (const Rect& r : engine_->dataset().rects()) {
      if (r.IntersectsWindow(x - w / 2, y - h / 2, x + w / 2, y + h / 2)) {
        ++count;
      }
    }
    return count;
  }

  int64_t BruteForceRange(double x, double y, double radius) const {
    int64_t count = 0;
    for (const Rect& r : engine_->dataset().rects()) {
      if (r.DistanceTo(x, y) <= radius) ++count;
    }
    return count;
  }

  // Distance of the k-th nearest rectangle.
  double BruteForceKthDistance(double x, double y, int64_t k) const {
    std::vector<double> distances;
    distances.reserve(static_cast<size_t>(engine_->dataset().size()));
    for (const Rect& r : engine_->dataset().rects()) {
      distances.push_back(r.DistanceTo(x, y));
    }
    std::sort(distances.begin(), distances.end());
    return distances[static_cast<size_t>(k - 1)];
  }

  std::shared_ptr<SpatialEngine> engine_;
};

TEST_F(SpatialUdfTest, WindowMatchesBruteForce) {
  WindowUdf udf(engine_);
  for (const auto& [x, y, w, h] :
       std::vector<std::tuple<double, double, double, double>>{
           {500.0, 500.0, 100.0, 100.0},
           {100.0, 900.0, 200.0, 50.0},
           {0.0, 0.0, 150.0, 150.0},
           {999.0, 999.0, 10.0, 10.0}}) {
    udf.Execute(Point{x, y, w, h});
    EXPECT_EQ(udf.last_result_count(), BruteForceWindow(x, y, w, h))
        << "window at (" << x << ", " << y << ")";
  }
}

TEST_F(SpatialUdfTest, RangeMatchesBruteForce) {
  RangeSearchUdf udf(engine_);
  for (const auto& [x, y, r] : std::vector<std::tuple<double, double, double>>{
           {500.0, 500.0, 80.0}, {250.0, 750.0, 150.0}, {10.0, 10.0, 30.0}}) {
    udf.Execute(Point{x, y, r});
    EXPECT_EQ(udf.last_result_count(), BruteForceRange(x, y, r))
        << "range at (" << x << ", " << y << ") r=" << r;
  }
}

TEST_F(SpatialUdfTest, KnnReturnsExactlyK) {
  KnnUdf udf(engine_);
  for (double k : {1.0, 10.0, 50.0, 100.0}) {
    udf.Execute(Point{500.0, 500.0, k});
    EXPECT_EQ(udf.last_result_count(), static_cast<int64_t>(k));
  }
}

TEST_F(SpatialUdfTest, KnnAgreesWithBruteForceOnResultRadius) {
  // All rectangles within the brute-force k-th distance must be found: the
  // number of results at distance <= kth is >= k and matches brute force.
  KnnUdf udf(engine_);
  RangeSearchUdf range(engine_);
  const double x = 333.0;
  const double y = 666.0;
  const int64_t k = 25;
  const double kth = BruteForceKthDistance(x, y, k);
  udf.Execute(Point{x, y, static_cast<double>(k)});
  EXPECT_EQ(udf.last_result_count(), k);
  // A range query at the kth distance returns at least k results.
  range.Execute(Point{x, y, kth + 1e-9});
  EXPECT_GE(range.last_result_count(), k);
}

TEST_F(SpatialUdfTest, WindowCostGrowsWithArea) {
  WindowUdf udf(engine_);
  engine_->ResetCaches();
  const UdfCost small = udf.Execute(Point{500.0, 500.0, 20.0, 20.0});
  engine_->ResetCaches();
  const UdfCost large = udf.Execute(Point{500.0, 500.0, 200.0, 200.0});
  EXPECT_GT(large.cpu_work, small.cpu_work);
  EXPECT_GE(large.io_pages, small.io_pages);
}

TEST_F(SpatialUdfTest, CostDependsOnLocationDensity) {
  // Find a dense cell and an empty region; the same window must cost more
  // over the dense region. This location dependence is what makes spatial
  // UDF cost surfaces interesting to model.
  WindowUdf udf(engine_);
  const auto& rects = engine_->dataset().rects();
  // Densest rectangle neighborhood: use the first cluster's center
  // approximated by the densest 100x100 block found by sampling rects.
  double dense_x = rects[0].CenterX();
  double dense_y = rects[0].CenterY();
  int64_t best = -1;
  for (size_t i = 0; i < rects.size(); i += 50) {
    const int64_t c = BruteForceWindow(rects[i].CenterX(), rects[i].CenterY(),
                                       100.0, 100.0);
    if (c > best) {
      best = c;
      dense_x = rects[i].CenterX();
      dense_y = rects[i].CenterY();
    }
  }
  // Sparsest corner probe.
  double sparse_x = 0.0;
  double sparse_y = 0.0;
  int64_t fewest = INT64_MAX;
  for (double x : {50.0, 500.0, 950.0}) {
    for (double y : {50.0, 500.0, 950.0}) {
      const int64_t c = BruteForceWindow(x, y, 100.0, 100.0);
      if (c < fewest) {
        fewest = c;
        sparse_x = x;
        sparse_y = y;
      }
    }
  }
  engine_->ResetCaches();
  const UdfCost dense = udf.Execute(Point{dense_x, dense_y, 100.0, 100.0});
  engine_->ResetCaches();
  const UdfCost sparse = udf.Execute(Point{sparse_x, sparse_y, 100.0, 100.0});
  EXPECT_GT(dense.cpu_work, sparse.cpu_work);
}

TEST_F(SpatialUdfTest, ModelSpaces) {
  WindowUdf win(engine_);
  RangeSearchUdf range(engine_);
  KnnUdf knn(engine_);
  EXPECT_EQ(win.model_space().dims(), 4);
  EXPECT_EQ(range.model_space().dims(), 3);
  EXPECT_EQ(knn.model_space().dims(), 3);
  EXPECT_DOUBLE_EQ(knn.model_space().hi()[2], 100.0);
}

TEST_F(SpatialUdfTest, WarmCacheLowersIoNotCpu) {
  WindowUdf udf(engine_);
  engine_->ResetCaches();
  const UdfCost cold = udf.Execute(Point{500.0, 500.0, 150.0, 150.0});
  const UdfCost warm = udf.Execute(Point{500.0, 500.0, 150.0, 150.0});
  EXPECT_LE(warm.io_pages, cold.io_pages);
  EXPECT_DOUBLE_EQ(warm.cpu_work, cold.cpu_work);
}

}  // namespace
}  // namespace mlq
