// Parameterized correctness sweeps for the spatial UDFs against brute-force
// evaluation over the raw rectangle set. These complement spatial_test.cc's
// targeted cases with broad randomized coverage.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "spatial/spatial_udfs.h"

namespace mlq {
namespace {

std::shared_ptr<SpatialEngine> SharedEngine() {
  static std::shared_ptr<SpatialEngine>* engine = [] {
    SpatialDatasetConfig config;
    config.num_rects = 2500;
    config.num_clusters = 12;
    config.seed = 2024;
    return new std::shared_ptr<SpatialEngine>(
        std::make_shared<SpatialEngine>(config, /*grid_size=*/24,
                                        /*buffer_pool_pages=*/64));
  }();
  return *engine;
}

class WindowSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(WindowSweepTest, MatchesBruteForceEverywhere) {
  auto engine = SharedEngine();
  WindowUdf udf(engine);
  const auto& rects = engine->dataset().rects();
  Rng rng(100 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 25; ++trial) {
    const double x = rng.Uniform(0.0, 1000.0);
    const double y = rng.Uniform(0.0, 1000.0);
    const double w = rng.Uniform(1.0, 200.0);
    const double h = rng.Uniform(1.0, 200.0);
    udf.Execute(Point{x, y, w, h});
    int64_t expected = 0;
    for (const Rect& r : rects) {
      if (r.IntersectsWindow(x - w / 2, y - h / 2, x + w / 2, y + h / 2)) {
        ++expected;
      }
    }
    ASSERT_EQ(udf.last_result_count(), expected)
        << "window (" << x << "," << y << "," << w << "," << h << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowSweepTest, ::testing::Range(0, 6));

class RangeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(RangeSweepTest, MatchesBruteForceEverywhere) {
  auto engine = SharedEngine();
  RangeSearchUdf udf(engine);
  const auto& rects = engine->dataset().rects();
  Rng rng(200 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 25; ++trial) {
    const double x = rng.Uniform(0.0, 1000.0);
    const double y = rng.Uniform(0.0, 1000.0);
    const double radius = rng.Uniform(1.0, 150.0);
    udf.Execute(Point{x, y, radius});
    int64_t expected = 0;
    for (const Rect& r : rects) {
      if (r.DistanceTo(x, y) <= radius) ++expected;
    }
    ASSERT_EQ(udf.last_result_count(), expected)
        << "range (" << x << "," << y << ") r=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeSweepTest, ::testing::Range(0, 6));

class KnnSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(KnnSweepTest, KthDistanceMatchesBruteForce) {
  // KNN must return exactly k rectangles, and the set it fetched must be
  // consistent with the true k-th nearest distance: a RANGE query at that
  // distance finds at least k rectangles, one at just below finds < k...
  // here we verify via the distances directly.
  auto engine = SharedEngine();
  KnnUdf udf(engine);
  const auto& rects = engine->dataset().rects();
  Rng rng(300 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 12; ++trial) {
    const double x = rng.Uniform(0.0, 1000.0);
    const double y = rng.Uniform(0.0, 1000.0);
    const auto k = static_cast<int64_t>(rng.UniformInt(1, 100));
    udf.Execute(Point{x, y, static_cast<double>(k)});
    ASSERT_EQ(udf.last_result_count(), k);

    std::vector<double> distances;
    distances.reserve(rects.size());
    for (const Rect& r : rects) distances.push_back(r.DistanceTo(x, y));
    std::nth_element(distances.begin(),
                     distances.begin() + static_cast<long>(k - 1),
                     distances.end());
    const double kth = distances[static_cast<size_t>(k - 1)];
    // Count how many rects lie strictly inside the kth distance: the KNN
    // result must cover at least those (any correct k-set does).
    int64_t strictly_inside = 0;
    for (const Rect& r : rects) {
      if (r.DistanceTo(x, y) < kth) ++strictly_inside;
    }
    ASSERT_LE(strictly_inside, k)
        << "(" << x << "," << y << ") k=" << k << " kth=" << kth;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnnSweepTest, ::testing::Range(0, 4));

TEST(SpatialCostMonotonicityTest, RangeCostGrowsWithRadius) {
  auto engine = SharedEngine();
  RangeSearchUdf udf(engine);
  // A dense spot: the first cluster's first rectangle.
  const Rect& seed = engine->dataset().rects().front();
  double previous = -1.0;
  for (double radius : {10.0, 40.0, 80.0, 150.0}) {
    engine->ResetCaches();
    const UdfCost cost =
        udf.Execute(Point{seed.CenterX(), seed.CenterY(), radius});
    ASSERT_GE(cost.cpu_work, previous) << "radius " << radius;
    previous = cost.cpu_work;
  }
}

TEST(SpatialCostMonotonicityTest, KnnCostGrowsWithK) {
  auto engine = SharedEngine();
  KnnUdf udf(engine);
  const Rect& seed = engine->dataset().rects().front();
  double previous = -1.0;
  for (double k : {1.0, 10.0, 50.0, 100.0}) {
    engine->ResetCaches();
    const UdfCost cost = udf.Execute(Point{seed.CenterX(), seed.CenterY(), k});
    ASSERT_GE(cost.cpu_work, previous) << "k " << k;
    previous = cost.cpu_work;
  }
}

}  // namespace
}  // namespace mlq
