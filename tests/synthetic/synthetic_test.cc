// Tests for decay functions, peak surfaces, and the synthetic UDF.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "synthetic/decay.h"
#include "synthetic/peak_surface.h"
#include "synthetic/synthetic_udf.h"

namespace mlq {
namespace {

class DecayKindTest : public ::testing::TestWithParam<DecayKind> {};

TEST_P(DecayKindTest, OneAtPeakForAllKinds) {
  // Every decay function is normalized: value 1 at the peak itself.
  EXPECT_DOUBLE_EQ(DecayValue(GetParam(), 0.0, 100.0), 1.0);
}

TEST_P(DecayKindTest, ZeroAtAndBeyondRadius) {
  EXPECT_DOUBLE_EQ(DecayValue(GetParam(), 100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(DecayValue(GetParam(), 150.0, 100.0), 0.0);
}

TEST_P(DecayKindTest, NonIncreasingWithDistance) {
  const DecayKind kind = GetParam();
  double previous = DecayValue(kind, 0.0, 100.0);
  for (double d = 1.0; d <= 110.0; d += 1.0) {
    const double v = DecayValue(kind, d, 100.0);
    ASSERT_LE(v, previous + 1e-12) << "at distance " << d;
    previous = v;
  }
}

TEST_P(DecayKindTest, BoundedToUnitInterval) {
  const DecayKind kind = GetParam();
  for (double d = 0.0; d <= 200.0; d += 0.5) {
    const double v = DecayValue(kind, d, 100.0);
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
}

TEST_P(DecayKindTest, NegativeDistanceTreatedAsZero) {
  EXPECT_DOUBLE_EQ(DecayValue(GetParam(), -5.0, 100.0), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DecayKindTest,
                         ::testing::Values(DecayKind::kUniform,
                                           DecayKind::kLinear,
                                           DecayKind::kGaussian,
                                           DecayKind::kLog2,
                                           DecayKind::kQuadratic),
                         [](const auto& info) {
                           return std::string(DecayKindName(info.param));
                         });

TEST(DecayTest, UniformIsFlatInsideRadius) {
  EXPECT_DOUBLE_EQ(DecayValue(DecayKind::kUniform, 99.9, 100.0), 1.0);
}

TEST(DecayTest, LinearHalfwayIsHalf) {
  EXPECT_DOUBLE_EQ(DecayValue(DecayKind::kLinear, 50.0, 100.0), 0.5);
}

TEST(DecayTest, Log2HalfwayMatchesFormula) {
  EXPECT_NEAR(DecayValue(DecayKind::kLog2, 50.0, 100.0), 1.0 - std::log2(1.5),
              1e-12);
}

TEST(DecayTest, QuadraticHalfwayMatchesFormula) {
  EXPECT_DOUBLE_EQ(DecayValue(DecayKind::kQuadratic, 50.0, 100.0), 0.75);
}

TEST(DecayTest, KindNamesAndIndexRoundTrip) {
  for (int i = 0; i < kNumDecayKinds; ++i) {
    EXPECT_FALSE(std::string(DecayKindName(DecayKindAt(i))).empty());
  }
}

TEST(PeakSurfaceTest, GeneratesRequestedPeaks) {
  PeakSurfaceConfig config;
  config.num_peaks = 25;
  PeakSurface surface(config);
  EXPECT_EQ(surface.peaks().size(), 25u);
  EXPECT_EQ(surface.space(), Box::Cube(4, 0.0, 1000.0));
}

TEST(PeakSurfaceTest, TallestPeakReachesMaxHeight) {
  PeakSurfaceConfig config;
  config.num_peaks = 10;
  config.max_height = 10000.0;
  PeakSurface surface(config);
  EXPECT_DOUBLE_EQ(surface.MaxCost(), 10000.0);
  double tallest = 0.0;
  for (const auto& peak : surface.peaks()) {
    tallest = std::max(tallest, peak.height);
  }
  EXPECT_DOUBLE_EQ(tallest, 10000.0);
}

TEST(PeakSurfaceTest, HeightsFollowZipfWeights) {
  PeakSurfaceConfig config;
  config.num_peaks = 8;
  config.zipf_z = 1.0;
  PeakSurface surface(config);
  // Peak i (0-based) has height max_height / (i+1).
  for (size_t i = 0; i < surface.peaks().size(); ++i) {
    EXPECT_NEAR(surface.peaks()[i].height,
                config.max_height / static_cast<double>(i + 1), 1e-9);
  }
}

TEST(PeakSurfaceTest, CostAtPeakCenterAtLeastItsPlateau) {
  PeakSurfaceConfig config;
  config.num_peaks = 20;
  config.seed = 5;
  PeakSurface surface(config);
  for (const auto& peak : surface.peaks()) {
    // The max-combination rule guarantees >= this peak's own height.
    EXPECT_GE(surface.Cost(peak.center), peak.height - 1e-9);
  }
}

TEST(PeakSurfaceTest, ZeroFarFromAllPeaks) {
  PeakSurfaceConfig config;
  config.dims = 2;
  config.num_peaks = 1;
  config.decay_radius_frac = 0.01;
  config.seed = 6;
  PeakSurface surface(config);
  const Point& center = surface.peaks()[0].center;
  // A point mirrored to the far corner is well outside the decay radius.
  Point far(2);
  for (int d = 0; d < 2; ++d) far[d] = center[d] < 500.0 ? 990.0 : 10.0;
  EXPECT_DOUBLE_EQ(surface.Cost(far), 0.0);
}

TEST(PeakSurfaceTest, DeterministicForSeed) {
  PeakSurfaceConfig config;
  config.seed = 123;
  PeakSurface a(config);
  PeakSurface b(config);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    Point p(4);
    for (int d = 0; d < 4; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    EXPECT_DOUBLE_EQ(a.Cost(p), b.Cost(p));
  }
}

TEST(PeakSurfaceTest, DifferentSeedsDifferentSurfaces) {
  PeakSurfaceConfig config;
  config.seed = 1;
  PeakSurface a(config);
  config.seed = 2;
  PeakSurface b(config);
  bool any_difference = false;
  for (size_t i = 0; i < a.peaks().size(); ++i) {
    if (!(a.peaks()[i].center == b.peaks()[i].center)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(PeakSurfaceTest, DecayRadiusIsFractionOfDiagonal) {
  PeakSurfaceConfig config;
  config.dims = 4;
  config.decay_radius_frac = 0.10;
  PeakSurface surface(config);
  EXPECT_NEAR(surface.decay_radius(), 0.10 * 1000.0 * 2.0, 1e-9);
}

TEST(SyntheticUdfTest, NoiseFreeExecutionMatchesSurface) {
  PeakSurfaceConfig config;
  config.num_peaks = 5;
  SyntheticUdf udf(config, /*noise_probability=*/0.0);
  Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    Point p(4);
    for (int d = 0; d < 4; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    const UdfCost cost = udf.Execute(p);
    EXPECT_DOUBLE_EQ(cost.cpu_work, udf.TrueCost(p));
    EXPECT_DOUBLE_EQ(cost.io_pages, udf.TrueCost(p) * SyntheticUdf::kIoCostScale);
  }
}

TEST(SyntheticUdfTest, FullNoiseIsBoundedRandom) {
  PeakSurfaceConfig config;
  config.num_peaks = 5;
  SyntheticUdf udf(config, /*noise_probability=*/1.0);
  const Point p{500.0, 500.0, 500.0, 500.0};
  double min_v = 1e18;
  double max_v = -1e18;
  for (int i = 0; i < 200; ++i) {
    const double v = udf.Execute(p).cpu_work;
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, udf.surface().MaxCost());
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  EXPECT_GT(max_v - min_v, 1000.0) << "noise should spread widely";
}

TEST(SyntheticUdfTest, PartialNoiseFrequency) {
  PeakSurfaceConfig config;
  config.num_peaks = 1;
  config.decay_radius_frac = 0.001;  // Surface ~ 0 nearly everywhere.
  SyntheticUdf udf(config, /*noise_probability=*/0.25);
  Point far{1.0, 1.0, 1.0, 1.0};
  int noisy = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (udf.Execute(far).cpu_work != udf.TrueCost(far)) ++noisy;
  }
  EXPECT_NEAR(static_cast<double>(noisy) / n, 0.25, 0.03);
}

TEST(SyntheticUdfTest, ResetStateReproducesNoiseStream) {
  PeakSurfaceConfig config;
  config.num_peaks = 3;
  SyntheticUdf udf(config, /*noise_probability=*/0.5);
  const Point p{100.0, 200.0, 300.0, 400.0};
  std::vector<double> first;
  for (int i = 0; i < 50; ++i) first.push_back(udf.Execute(p).cpu_work);
  udf.ResetState();
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(udf.Execute(p).cpu_work, first[static_cast<size_t>(i)]);
  }
}

TEST(SyntheticUdfTest, NameEncodesPeakCount) {
  PeakSurfaceConfig config;
  config.num_peaks = 42;
  SyntheticUdf udf(config, 0.0);
  EXPECT_EQ(udf.name(), "SYNTH-42p");
}

}  // namespace
}  // namespace mlq
