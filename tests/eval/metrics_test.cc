#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace mlq {
namespace {

TEST(NaeTest, EmptyIsZero) {
  NaeAccumulator nae;
  EXPECT_DOUBLE_EQ(nae.Nae(), 0.0);
  EXPECT_EQ(nae.count(), 0);
}

TEST(NaeTest, PerfectPredictionsGiveZero) {
  NaeAccumulator nae;
  nae.Add(10.0, 10.0);
  nae.Add(55.0, 55.0);
  EXPECT_DOUBLE_EQ(nae.Nae(), 0.0);
}

TEST(NaeTest, MatchesEquationTen) {
  NaeAccumulator nae;
  nae.Add(8.0, 10.0);   // |diff| = 2
  nae.Add(25.0, 20.0);  // |diff| = 5
  nae.Add(0.0, 10.0);   // |diff| = 10
  EXPECT_DOUBLE_EQ(nae.Nae(), 17.0 / 40.0);
  EXPECT_DOUBLE_EQ(nae.abs_error_sum(), 17.0);
  EXPECT_DOUBLE_EQ(nae.actual_sum(), 40.0);
  EXPECT_EQ(nae.count(), 3);
}

TEST(NaeTest, SymmetricInErrorSign) {
  NaeAccumulator over;
  NaeAccumulator under;
  over.Add(15.0, 10.0);
  under.Add(5.0, 10.0);
  EXPECT_DOUBLE_EQ(over.Nae(), under.Nae());
}

TEST(NaeTest, ZeroActualSumFallsBackToMeanAbsoluteError) {
  NaeAccumulator nae;
  nae.Add(3.0, 0.0);
  nae.Add(1.0, 0.0);
  EXPECT_DOUBLE_EQ(nae.Nae(), 2.0);
}

TEST(NaeTest, ResetClearsState) {
  NaeAccumulator nae;
  nae.Add(5.0, 10.0);
  nae.Reset();
  EXPECT_EQ(nae.count(), 0);
  EXPECT_DOUBLE_EQ(nae.Nae(), 0.0);
}

TEST(LearningCurveTest, FlushesFullWindows) {
  LearningCurve curve(2);
  curve.Add(8.0, 10.0);   // Window 1: err 2 / act 10
  curve.Add(10.0, 10.0);  // Window 1: err 0 -> NAE 2/20 = 0.1
  curve.Add(0.0, 10.0);   // Window 2.
  curve.Add(10.0, 10.0);  // Window 2 -> NAE 10/20 = 0.5
  ASSERT_EQ(curve.series().size(), 2u);
  EXPECT_DOUBLE_EQ(curve.series()[0], 0.1);
  EXPECT_DOUBLE_EQ(curve.series()[1], 0.5);
}

TEST(LearningCurveTest, FinishFlushesPartialWindow) {
  LearningCurve curve(10);
  curve.Add(5.0, 10.0);
  EXPECT_TRUE(curve.series().empty());
  curve.Finish();
  ASSERT_EQ(curve.series().size(), 1u);
  EXPECT_DOUBLE_EQ(curve.series()[0], 0.5);
  curve.Finish();  // Idempotent on empty window.
  EXPECT_EQ(curve.series().size(), 1u);
}

TEST(LearningCurveTest, WindowSizeAccessor) {
  LearningCurve curve(250);
  EXPECT_EQ(curve.window_size(), 250);
}

}  // namespace
}  // namespace mlq
