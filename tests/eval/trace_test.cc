#include "eval/trace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "eval/experiment_setup.h"
#include "model/mlq_model.h"

namespace mlq {
namespace {

std::vector<TraceRecord> SampleRecords() {
  return {
      {Point{1.0, 2.0}, 100.0, 3.0},
      {Point{4.5, -6.0}, 250.5, 0.0},
      {Point{0.0, 0.0}, 0.0, 0.0},
  };
}

TEST(TraceTest, WriteReadRoundTrip) {
  std::stringstream stream;
  const auto records = SampleRecords();
  WriteTrace(stream, records, 2);

  std::vector<TraceRecord> loaded;
  std::string error;
  ASSERT_TRUE(ReadTrace(stream, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].point, records[i].point);
    EXPECT_DOUBLE_EQ(loaded[i].cpu_cost, records[i].cpu_cost);
    EXPECT_DOUBLE_EQ(loaded[i].io_cost, records[i].io_cost);
  }
}

TEST(TraceTest, RoundTripPreservesFullDoublePrecision) {
  std::stringstream stream;
  std::vector<TraceRecord> records = {
      {Point{1.0 / 3.0}, 1e300 * (1.0 / 7.0), 1e-300}};
  WriteTrace(stream, records, 1);
  std::vector<TraceRecord> loaded;
  std::string error;
  ASSERT_TRUE(ReadTrace(stream, &loaded, &error)) << error;
  EXPECT_DOUBLE_EQ(loaded[0].point[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(loaded[0].cpu_cost, 1e300 * (1.0 / 7.0));
  EXPECT_DOUBLE_EQ(loaded[0].io_cost, 1e-300);
}

TEST(TraceTest, CommentsAndBlankLinesIgnored) {
  std::stringstream stream;
  stream << "# mlq-trace v1 dims=1\n"
         << "# a comment\n"
         << "\n"
         << "5.0,10.0,1.0\n";
  std::vector<TraceRecord> loaded;
  std::string error;
  ASSERT_TRUE(ReadTrace(stream, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].point[0], 5.0);
}

TEST(TraceTest, RejectsMalformedInput) {
  const char* bad_inputs[] = {
      "",                                  // Empty.
      "not a header\n1,2,3\n",             // Bad header.
      "# mlq-trace v1 dims=0\n",           // Bad dims.
      "# mlq-trace v1 dims=2\n1.0,2.0\n",  // Too few fields.
      "# mlq-trace v1 dims=1\n1.0,2.0,3.0,4.0\n",  // Too many fields.
      "# mlq-trace v1 dims=1\nx,2.0,3.0\n",        // Not a number.
  };
  for (const char* input : bad_inputs) {
    std::istringstream stream{std::string(input)};
    std::vector<TraceRecord> loaded;
    std::string error;
    EXPECT_FALSE(ReadTrace(stream, &loaded, &error)) << "input: " << input;
    EXPECT_FALSE(error.empty());
  }
}

TEST(TraceTest, CaptureRecordsUdfCosts) {
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/10, 0.0, /*seed=*/1);
  const auto points = MakePaperWorkload(
      udf->model_space(), QueryDistributionKind::kUniform, 50, 2);
  const auto records = CaptureTrace(*udf, points);
  ASSERT_EQ(records.size(), 50u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].point, points[i]);
    EXPECT_DOUBLE_EQ(records[i].cpu_cost, udf->TrueCost(points[i]));
  }
}

TEST(TraceTest, ReplayEqualsLiveEvaluation) {
  // Replaying a captured trace into a fresh model must produce the exact
  // same NAE as the live predict-execute-observe loop (the UDF is
  // deterministic here).
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/20, 0.0, /*seed=*/3);
  const auto points = MakePaperWorkload(
      udf->model_space(), QueryDistributionKind::kGaussianRandom, 800, 4);
  const auto records = CaptureTrace(*udf, points);

  MlqModel live(udf->model_space(),
                MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));
  double live_err = 0.0;
  double live_act = 0.0;
  for (const Point& p : points) {
    const double actual = udf->Execute(p).cpu_work;
    live_err += std::abs(live.Predict(p) - actual);
    live_act += actual;
    live.Observe(p, actual);
  }

  MlqModel replayed(udf->model_space(),
                    MakePaperMlqConfig(InsertionStrategy::kEager,
                                       CostKind::kCpu));
  const double replay_nae = ReplayTrace(replayed, records, CostKind::kCpu);
  EXPECT_NEAR(replay_nae, live_err / live_act, 1e-12);
}

TEST(TraceTest, FileStyleRoundTripThroughStrings) {
  // Capture -> serialize -> parse -> replay, end to end.
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/15, 0.0, /*seed=*/5);
  const auto points = MakePaperWorkload(
      udf->model_space(), QueryDistributionKind::kUniform, 200, 6);
  const auto records = CaptureTrace(*udf, points);

  std::stringstream stream;
  WriteTrace(stream, records, udf->model_space().dims());
  std::vector<TraceRecord> loaded;
  std::string error;
  ASSERT_TRUE(ReadTrace(stream, &loaded, &error)) << error;

  MlqModel model(udf->model_space(),
                 MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kIo));
  const double nae = ReplayTrace(model, loaded, CostKind::kIo);
  EXPECT_GE(nae, 0.0);
  EXPECT_EQ(model.update_breakdown().insertions, 200);
}

}  // namespace
}  // namespace mlq
