#include "eval/csv_export.h"

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

namespace mlq {
namespace {

EvalResult MakeResult() {
  EvalResult r;
  r.model_name = "MLQ-E";
  r.udf_name = "WIN";
  r.num_queries = 100;
  r.nae = 0.25;
  r.apc_micros = 0.5;
  r.ic_micros = 1.0;
  r.cc_micros = 2.0;
  r.auc_micros = 3.0;
  r.compressions = 7;
  r.total_udf_micros = 1e6;
  r.total_prediction_seconds = 5e-5;
  r.learning_curve = {0.5, 0.3, 0.25};
  return r;
}

TEST(CsvExportTest, ResultsHeaderAndRow) {
  std::vector<EvalResult> results = {MakeResult()};
  std::ostringstream os;
  WriteEvalResultsCsv(os, results);
  const std::string out = os.str();
  EXPECT_NE(out.find("model,udf,num_queries,nae"), std::string::npos);
  EXPECT_NE(out.find("MLQ-E,WIN,100,0.25,0.5,1,2,3,7,"), std::string::npos);
  // Header + one data row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(CsvExportTest, EmptyResults) {
  std::ostringstream os;
  WriteEvalResultsCsv(os, {});
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST(CsvExportTest, LearningCurves) {
  std::vector<EvalResult> results = {MakeResult()};
  std::ostringstream os;
  WriteLearningCurvesCsv(os, results, /*window_size=*/250);
  const std::string out = os.str();
  EXPECT_NE(out.find("MLQ-E,WIN,1,250,0.5"), std::string::npos);
  EXPECT_NE(out.find("MLQ-E,WIN,2,500,0.3"), std::string::npos);
  EXPECT_NE(out.find("MLQ-E,WIN,3,750,0.25"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(CsvExportTest, QuotesAwkwardNames) {
  EvalResult r = MakeResult();
  r.udf_name = "f(a,b) \"special\"";
  std::vector<EvalResult> results = {r};
  std::ostringstream os;
  WriteEvalResultsCsv(os, results);
  EXPECT_NE(os.str().find("\"f(a,b) \"\"special\"\"\""), std::string::npos);
}

}  // namespace
}  // namespace mlq
