#include "eval/evaluator.h"

#include <memory>

#include <gtest/gtest.h>

#include "eval/experiment_setup.h"
#include "model/global_average_model.h"
#include "model/mlq_model.h"
#include "model/static_histogram.h"

namespace mlq {
namespace {

std::unique_ptr<SyntheticUdf> EasyUdf() {
  // Low peak count and no noise: self-tuning models should learn quickly.
  return MakePaperSyntheticUdf(/*num_peaks=*/10, /*noise_probability=*/0.0,
                               /*seed=*/31);
}

TEST(EvaluatorTest, SelfTuningPopulatesAllFields) {
  auto udf = EasyUdf();
  MlqModel model(udf->model_space(),
                 MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));
  const auto queries =
      MakePaperWorkload(udf->model_space(), QueryDistributionKind::kUniform,
                        1000, /*seed=*/1);
  EvalOptions options;
  options.learning_curve_window = 100;
  const EvalResult result =
      RunSelfTuningEvaluation(model, *udf, queries, options);

  EXPECT_EQ(result.model_name, "MLQ-E");
  EXPECT_EQ(result.udf_name, "SYNTH-10p");
  EXPECT_EQ(result.num_queries, 1000);
  EXPECT_GT(result.nae, 0.0);
  EXPECT_GT(result.apc_micros, 0.0);
  EXPECT_GT(result.auc_micros, 0.0);
  EXPECT_DOUBLE_EQ(result.auc_micros, result.ic_micros + result.cc_micros);
  EXPECT_GT(result.total_udf_micros, 0.0);
  EXPECT_EQ(result.learning_curve.size(), 10u);
  EXPECT_GT(result.compressions, 0);
}

TEST(EvaluatorTest, LearningCurveImprovesOnEasySurface) {
  auto udf = EasyUdf();
  MlqModel model(udf->model_space(),
                 MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kCpu,
                                    /*memory=*/16384));
  // Clustered queries: repeated visits to the same region must get easier.
  const auto queries = MakePaperWorkload(udf->model_space(),
                                         QueryDistributionKind::kGaussianRandom,
                                         3000, /*seed=*/2);
  EvalOptions options;
  options.learning_curve_window = 500;
  const EvalResult result =
      RunSelfTuningEvaluation(model, *udf, queries, options);
  ASSERT_EQ(result.learning_curve.size(), 6u);
  EXPECT_LT(result.learning_curve.back(), result.learning_curve.front());
}

TEST(EvaluatorTest, StaticEvaluationTrainsThenPredicts) {
  auto udf = EasyUdf();
  EquiHeightHistogram model(udf->model_space(), kPaperMemoryBytes);
  const auto training =
      MakePaperWorkload(udf->model_space(), QueryDistributionKind::kUniform,
                        2000, /*seed=*/3);
  const auto test =
      MakePaperWorkload(udf->model_space(), QueryDistributionKind::kUniform,
                        1000, /*seed=*/4);
  const EvalResult result =
      RunStaticEvaluation(model, *udf, training, test, EvalOptions{});
  EXPECT_TRUE(model.trained());
  EXPECT_EQ(result.num_queries, 1000);
  EXPECT_GT(result.apc_micros, 0.0);
  // Static models do no updates.
  EXPECT_DOUBLE_EQ(result.auc_micros, 0.0);
  EXPECT_DOUBLE_EQ(result.ic_micros, 0.0);
  EXPECT_EQ(result.compressions, 0);
}

TEST(EvaluatorTest, ExecuteAllReturnsRequestedKind) {
  auto udf = EasyUdf();
  const auto points =
      MakePaperWorkload(udf->model_space(), QueryDistributionKind::kUniform,
                        50, /*seed=*/5);
  const auto cpu = ExecuteAll(*udf, points, CostKind::kCpu);
  const auto io = ExecuteAll(*udf, points, CostKind::kIo);
  ASSERT_EQ(cpu.size(), 50u);
  ASSERT_EQ(io.size(), 50u);
  for (size_t i = 0; i < cpu.size(); ++i) {
    EXPECT_DOUBLE_EQ(io[i], cpu[i] * SyntheticUdf::kIoCostScale);
  }
}

TEST(EvaluatorTest, OverheadRatiosAreSmall) {
  // The paper's headline operational claim: modeling overhead is a tiny
  // fraction of UDF execution cost (Fig. 10 reports fractions of a percent
  // for prediction and at most ~1% for updates).
  auto udf = EasyUdf();
  MlqModel model(udf->model_space(),
                 MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kCpu));
  const auto queries =
      MakePaperWorkload(udf->model_space(), QueryDistributionKind::kUniform,
                        2000, /*seed=*/6);
  const EvalResult result =
      RunSelfTuningEvaluation(model, *udf, queries, EvalOptions{});
  EXPECT_GT(result.PcOverUdf(), 0.0);
  EXPECT_LT(result.PcOverUdf(), 0.5);
  EXPECT_DOUBLE_EQ(result.MucOverUdf(),
                   result.IcOverUdf() + result.CcOverUdf());
}

TEST(ExperimentSetupTest, CompareAllMethodsReturnsFourInOrder) {
  auto udf = EasyUdf();
  const auto training =
      MakePaperWorkload(udf->model_space(), QueryDistributionKind::kUniform,
                        500, /*seed=*/7);
  const auto test =
      MakePaperWorkload(udf->model_space(), QueryDistributionKind::kUniform,
                        500, /*seed=*/8);
  const auto results = CompareAllMethods(*udf, training, test, CostKind::kCpu,
                                         kPaperMemoryBytes);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].model_name, "MLQ-E");
  EXPECT_EQ(results[1].model_name, "MLQ-L");
  EXPECT_EQ(results[2].model_name, "SH-H");
  EXPECT_EQ(results[3].model_name, "SH-W");
  for (const auto& r : results) {
    EXPECT_EQ(r.num_queries, 500);
    EXPECT_GE(r.nae, 0.0);
  }
}

TEST(ExperimentSetupTest, RealUdfSuiteHasSixUdfs) {
  const RealUdfSuite suite = MakeRealUdfSuite(SubstrateScale::kSmall);
  ASSERT_EQ(suite.udfs.size(), 6u);
  EXPECT_NE(suite.Find("SIMPLE"), nullptr);
  EXPECT_NE(suite.Find("THRESH"), nullptr);
  EXPECT_NE(suite.Find("PROX"), nullptr);
  EXPECT_NE(suite.Find("KNN"), nullptr);
  EXPECT_NE(suite.Find("WIN"), nullptr);
  EXPECT_NE(suite.Find("RANGE"), nullptr);
  EXPECT_EQ(suite.Find("NOPE"), nullptr);
}

TEST(ExperimentSetupTest, PaperConstantsMatchSection51) {
  EXPECT_EQ(kPaperMemoryBytes, 1800);
  EXPECT_EQ(kPaperSyntheticQueries, 5000);
  EXPECT_EQ(kPaperRealQueries, 2500);
  const MlqConfig config =
      MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kCpu);
  EXPECT_EQ(config.max_depth, 6);
  EXPECT_DOUBLE_EQ(config.alpha, 0.05);
  EXPECT_DOUBLE_EQ(config.gamma, 0.001);
}

}  // namespace
}  // namespace mlq
