// Engine-level tests for the concurrent serving modes: a catalog in
// kGlobalMutex or kSharded mode fed by the multi-threaded executor, and
// parallel planning against it, must reproduce the single-threaded
// engine's results.

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/cost_catalog.h"
#include "engine/executor.h"
#include "engine/query_optimizer.h"
#include "engine/table.h"
#include "engine/udf_predicate.h"
#include "eval/experiment_setup.h"

namespace mlq {
namespace {

class ConcurrentEngineTest : public ::testing::Test {
 protected:
  ConcurrentEngineTest()
      : suite_(MakeRealUdfSuite(SubstrateScale::kSmall)),
        table_("docs_and_places", {"kw1", "kw2", "x", "y"}) {
    Rng rng(7);
    const auto vocab =
        static_cast<double>(suite_.text_engine->index().vocab_size());
    for (int i = 0; i < 240; ++i) {
      table_.AddRow(std::vector<double>{
          std::floor(rng.Uniform(1.0, vocab)),
          std::floor(rng.Uniform(1.0, vocab)),
          rng.Uniform(0.0, 1000.0),
          rng.Uniform(0.0, 1000.0),
      });
    }
  }

  std::unique_ptr<UdfPredicate> MakeProxPredicate() {
    return std::make_unique<UdfPredicate>(
        "Contains", suite_.Find("PROX"),
        std::vector<int>{table_.ColumnIndex("kw1"), table_.ColumnIndex("kw2"),
                         -1},
        Point{0.0, 0.0, 30.0}, /*min_result_count=*/1);
  }

  std::unique_ptr<UdfPredicate> MakeWinPredicate() {
    return std::make_unique<UdfPredicate>(
        "InUrbanArea", suite_.Find("WIN"),
        std::vector<int>{table_.ColumnIndex("x"), table_.ColumnIndex("y"), -1,
                         -1},
        Point{0.0, 0.0, 120.0, 120.0}, /*min_result_count=*/5);
  }

  RealUdfSuite suite_;
  Table table_;
};

TEST_F(ConcurrentEngineTest, CatalogModesAnswerLikeSingleThreadMode) {
  // The same feedback fed through each concurrency mode must produce the
  // same predictions (sharded mode drains on predict, so single-threaded
  // use reads its own writes).
  for (const CatalogConcurrency mode :
       {CatalogConcurrency::kSingleThread, CatalogConcurrency::kGlobalMutex,
        CatalogConcurrency::kSharded}) {
    CostCatalog catalog(1800, mode, /*num_shards=*/1);
    CostedUdf* win = suite_.Find("WIN");
    const Point p{500.0, 500.0, 120.0, 120.0};
    UdfCost cost;
    cost.cpu_work = 1000.0;
    cost.io_pages = 2.0;
    catalog.RecordExecution(win, p, cost, true);
    catalog.RecordExecution(win, p, cost, false);
    catalog.FlushFeedback();
    EXPECT_NEAR(catalog.PredictCostMicros(win, p),
                1000.0 * kMicrosPerWorkUnit + 2.0 * kMicrosPerPageMiss, 1e-6)
        << "mode " << static_cast<int>(mode);
    EXPECT_NEAR(catalog.PredictSelectivity(win, p), 0.5, 1e-9)
        << "mode " << static_cast<int>(mode);
  }
}

TEST_F(ConcurrentEngineTest, ConcurrentExecutorMatchesSerialExecutor) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  Query query;
  query.table = &table_;
  query.predicates = {prox.get(), win.get()};

  // Fixed plan, no feedback: result sets and per-predicate evaluation
  // counts are fully determined by the rows.
  Plan plan;
  plan.order = {0, 1};
  plan.estimates.assign(2, PlannedPredicate{});
  const ExecutionStats serial = ExecuteQuery(query, plan, nullptr);

  for (int threads : {2, 4}) {
    suite_.text_engine->ResetCaches();
    suite_.spatial_engine->ResetCaches();
    const ExecutionStats concurrent =
        ExecuteQueryConcurrent(query, plan, nullptr, threads);
    EXPECT_EQ(concurrent.rows_in, serial.rows_in);
    EXPECT_EQ(concurrent.rows_out, serial.rows_out);
    EXPECT_EQ(concurrent.evaluations_per_predicate,
              serial.evaluations_per_predicate);
  }
}

TEST_F(ConcurrentEngineTest, ConcurrentExecutorFeedsShardedCatalog) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  Query query;
  query.table = &table_;
  query.predicates = {prox.get(), win.get()};

  Plan plan;
  plan.order = {1, 0};
  plan.estimates.assign(2, PlannedPredicate{});

  CostCatalog catalog(1800, CatalogConcurrency::kSharded, /*num_shards=*/4);
  const ExecutionStats stats =
      ExecuteQueryConcurrent(query, plan, &catalog, /*num_threads=*/4);

  // Every evaluation fed the catalog (ExecuteQueryConcurrent flushes).
  int64_t evaluations = 0;
  for (int64_t n : stats.evaluations_per_predicate) evaluations += n;
  EXPECT_GT(evaluations, 0);
  EXPECT_EQ(catalog.size(), 2);

  // The learned models answer plausible values afterwards.
  const Point sample = win->ModelPointFor(table_.Row(0));
  EXPECT_GT(catalog.PredictCostMicros(win->udf(), sample), 0.0);
  const double selectivity = catalog.PredictSelectivity(win->udf(), sample);
  EXPECT_GE(selectivity, 0.01);
  EXPECT_LE(selectivity, 1.0);
}

TEST_F(ConcurrentEngineTest, ParallelPlanningMatchesSerialPlanning) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  Query query;
  query.table = &table_;
  query.predicates = {prox.get(), win.get()};

  // Train a concurrent-mode catalog with one executed pass.
  CostCatalog catalog(1800, CatalogConcurrency::kGlobalMutex);
  Plan warmup;
  warmup.order = {0, 1};
  warmup.estimates.assign(2, PlannedPredicate{});
  ExecuteQuery(query, warmup, &catalog);

  const Plan serial = PlanQuery(query, catalog, /*sample_rows=*/32,
                                /*planner_threads=*/1);
  const Plan parallel = PlanQuery(query, catalog, /*sample_rows=*/32,
                                  /*planner_threads=*/4);
  ASSERT_EQ(serial.order, parallel.order);
  ASSERT_EQ(serial.estimates.size(), parallel.estimates.size());
  for (size_t i = 0; i < serial.estimates.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.estimates[i].estimated_cost_micros,
                     parallel.estimates[i].estimated_cost_micros);
    EXPECT_DOUBLE_EQ(serial.estimates[i].estimated_selectivity,
                     parallel.estimates[i].estimated_selectivity);
  }
  EXPECT_DOUBLE_EQ(serial.expected_cost_per_row_micros,
                   parallel.expected_cost_per_row_micros);
}

}  // namespace
}  // namespace mlq
