// Drift detection + re-convergence: the end-to-end story of the windowed
// summary extension. A memory-limited quadtree accumulates lifetime
// evidence; when the cost surface moves (abrupt step or gradual ramp), a
// decay-off model drags its history and stays biased, while a decayed
// model — aged by the stream-driven clock plus the detector's burst —
// returns to its pre-drift accuracy. Also pins the regression the windowed
// catalog EWMAs fix: after an arbitrarily long stable run, the lifetime
// audit goes blind to fresh drift but the windowed actuals see it.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "engine/cost_catalog.h"
#include "engine/drift_detector.h"
#include "engine/estimate_audit.h"
#include "engine/maintenance_scheduler.h"
#include "eval/drift_scenario.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"

namespace mlq {
namespace {

// ---------------------------------------------------------------------------
// DriftDetector unit behavior.

TEST(DriftDetectorTest, ClassifiesAbruptStepWithinBoundedObservations) {
  DriftDetector detector;
  // Steady phase: ~5% relative error.
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(detector.ObserveError(0.05), DriftKind::kNone);
  }
  EXPECT_NEAR(detector.staleness(), 1.0, 0.05);
  // The surface steps 3x: every observation is now ~67% off.
  DriftKind fired = DriftKind::kNone;
  int observations_to_fire = 0;
  for (int i = 0; i < 100 && fired == DriftKind::kNone; ++i) {
    fired = detector.ObserveError(0.67);
    ++observations_to_fire;
  }
  EXPECT_EQ(fired, DriftKind::kAbrupt);
  EXPECT_LE(observations_to_fire, 32);
  EXPECT_EQ(detector.drift_count(), 1);
  // The reset baseline + cooldown keep one event from firing repeatedly.
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(detector.ObserveError(0.67), DriftKind::kNone);
  }
}

TEST(DriftDetectorTest, ClassifiesSlowErrorRampAsGradual) {
  DriftDetector detector;
  for (int i = 0; i < 500; ++i) detector.ObserveError(0.05);
  // The error level climbs steadily — never a single anomalous sample, and
  // the fast/slow ratio stays well under the abrupt threshold — but the
  // fast horizon leads the slow one for longer than the gradual patience.
  // (A constant moderate step would NOT fire: the slow horizon catches up
  // within ~40 observations, under the 48-sample patience — gradual is
  // specifically a sustained-ramp classifier.)
  DriftKind fired = DriftKind::kNone;
  int fired_at = -1;
  for (int i = 0; i < 400 && fired == DriftKind::kNone; ++i) {
    fired = detector.ObserveError(0.05 + 0.004 * i);
    fired_at = i;
  }
  EXPECT_EQ(fired, DriftKind::kGradual);
  EXPECT_LE(fired_at, 200);
}

TEST(DriftDetectorTest, StationaryNoiseNeverFires) {
  DriftDetector detector;
  // Deterministic bounded jitter around a stable error level.
  for (int i = 0; i < 5000; ++i) {
    const double jitter = 0.02 * std::sin(0.37 * i);
    EXPECT_EQ(detector.ObserveError(0.10 + jitter), DriftKind::kNone) << i;
  }
  EXPECT_EQ(detector.drift_count(), 0);
}

TEST(DriftDetectorTest, ColdStartAndGarbageInputsAreIgnored) {
  DriftDetector detector;
  // Below min_observations nothing fires, however wild the errors.
  for (int i = 0; i < 63; ++i) {
    EXPECT_EQ(detector.ObserveError(i % 2 == 0 ? 0.01 : 5.0),
              DriftKind::kNone);
  }
  const int64_t before = detector.observations();
  EXPECT_EQ(detector.ObserveError(std::nan("")), DriftKind::kNone);
  EXPECT_EQ(detector.ObserveError(-1.0), DriftKind::kNone);
  EXPECT_EQ(detector.observations(), before);
}

// ---------------------------------------------------------------------------
// End-to-end re-convergence over the eval drift scenario.

MlqConfig ScenarioConfig(double decay_half_life) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kLazy;
  config.max_depth = 7;
  config.beta = 1;
  // Generous budget: the detector compares the post-drift error level
  // against the steady-state one, so the steady state must be good enough
  // (relative error ~0.1, not ~0.16) that a 3x surface step dominates the
  // discretization noise floor. At the paper's 1.8 KB the same step stays
  // under the abrupt ratio — a coarser model hides drift behind its own
  // error, which is itself worth knowing but not what this test pins.
  config.memory_limit_bytes = 7168;
  config.decay_half_life = decay_half_life;
  return config;
}

DriftScenarioOptions ScenarioOptions(DriftShape shape) {
  DriftScenarioOptions options;
  options.shape = shape;
  options.pre_drift_queries = 4000;
  options.post_drift_queries = 4000;
  // Short relative to the detector's slow horizon: a multi-thousand-query
  // ramp lets the slow baseline track the rising error level and nothing
  // ever looks anomalous. (That blind spot is inherent to ratio detectors;
  // the steady decay clock still re-converges the model through it — the
  // gradual scenario asserts both halves.)
  options.ramp_queries = 150;
  options.cost_scale_after = 3.0;
  options.queries_per_decay_epoch = 250;
  options.abrupt_drift_epochs = 12;
  options.gradual_drift_epochs = 2;
  return options;
}

TEST(DriftReconvergenceTest, AbruptStepRecoversWithDecayStaysBiasedWithout) {
  const DriftScenarioOptions options = ScenarioOptions(DriftShape::kAbruptStep);

  MlqModel stale(DriftSurfaceSpace(), ScenarioConfig(0.0));
  const DriftScenarioResult without = RunDriftScenario(stale, options);

  MlqModel decayed(DriftSurfaceSpace(), ScenarioConfig(2.0));
  const DriftScenarioResult with = RunDriftScenario(decayed, options);

  // Identical stream: same steady-state accuracy before the drift.
  ASSERT_GT(without.pre_drift_nae, 0.0);
  ASSERT_GT(with.pre_drift_nae, 0.0);

  // The detector classified the step as abrupt within a bounded number of
  // post-drift observations.
  EXPECT_GE(with.detector_firings, 1);
  ASSERT_GE(with.first_fire_query, options.pre_drift_queries);
  EXPECT_LE(with.first_fire_query, options.pre_drift_queries + 256);
  EXPECT_EQ(with.first_fire_kind, DriftKind::kAbrupt);

  // Re-convergence: the decayed model's tail error is back within 1.2x of
  // its own pre-drift steady state; the decay-off model is still dragging
  // thousands of pre-drift observations through its averages.
  EXPECT_LE(with.final_nae, 1.2 * with.pre_drift_nae)
      << "pre " << with.pre_drift_nae << " final " << with.final_nae;
  EXPECT_GT(without.final_nae, 1.5 * without.pre_drift_nae)
      << "pre " << without.pre_drift_nae << " final " << without.final_nae;
  EXPECT_LT(with.final_nae, without.final_nae);
  // And the transient existed at all (the drift actually hurt).
  EXPECT_GT(with.worst_post_drift_nae, with.pre_drift_nae);
}

TEST(DriftReconvergenceTest, GradualRampRecoversWithDecay) {
  const DriftScenarioOptions options =
      ScenarioOptions(DriftShape::kGradualRamp);

  MlqModel stale(DriftSurfaceSpace(), ScenarioConfig(0.0));
  const DriftScenarioResult without = RunDriftScenario(stale, options);

  MlqModel decayed(DriftSurfaceSpace(), ScenarioConfig(2.0));
  const DriftScenarioResult with = RunDriftScenario(decayed, options);

  // No single query is anomalous on a ramp, yet the sustained divergence
  // must still be noticed before the ramp completes + one window.
  EXPECT_GE(with.detector_firings, 1);
  ASSERT_GE(with.first_fire_query, options.pre_drift_queries);
  EXPECT_LE(with.first_fire_query,
            options.pre_drift_queries + options.ramp_queries + 500);
  EXPECT_EQ(with.first_fire_kind, DriftKind::kGradual);

  EXPECT_LE(with.final_nae, 1.2 * with.pre_drift_nae)
      << "pre " << with.pre_drift_nae << " final " << with.final_nae;
  EXPECT_GT(without.final_nae, 1.5 * without.pre_drift_nae);
  EXPECT_LT(with.final_nae, without.final_nae);
}

// ---------------------------------------------------------------------------
// The audit-blindness regression: windowed actuals vs lifetime re-estimate.

TEST(WindowedAuditTest, DriftStaysVisibleAfterLongStableHistory) {
  CostCatalog catalog(/*memory_limit_bytes=*/1800);
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/5, /*noise_probability=*/0.0,
                                   /*seed=*/9);
  const Box space = udf->model_space();
  const Point point = space.Center();

  // A long, perfectly stable history: the models converge onto it.
  UdfCost stable;
  stable.cpu_work = 100.0;
  stable.io_pages = 0.0;
  const CostCatalog::ExecutionRecord stable_record{point, stable,
                                                   /*passed=*/true};
  std::vector<CostCatalog::ExecutionRecord> batch(1000, stable_record);
  for (int i = 0; i < 200; ++i) {
    catalog.RecordExecutionBatch(udf.get(), batch);
  }
  const double planned = catalog.PredictCostMicros(udf.get(), point);

  // The workload drifts 3x. A few hundred fresh observations are a drop
  // in the 200k-observation lifetime bucket...
  UdfCost drifted;
  drifted.cpu_work = 300.0;
  drifted.io_pages = 0.0;
  const CostCatalog::ExecutionRecord drift_record{point, drifted,
                                                  /*passed=*/true};
  std::vector<CostCatalog::ExecutionRecord> drift_batch(300, drift_record);
  catalog.RecordExecutionBatch(udf.get(), drift_batch);

  PredicateAudit audit;
  audit.estimated_cost_micros = planned;
  audit.estimated_selectivity = 1.0;
  audit.post_cost_micros = catalog.PredictCostMicros(udf.get(), point);
  const CostCatalog::WindowedActuals windowed =
      catalog.ReadWindowedActuals(udf.get());
  audit.windowed_cost_micros = windowed.fast_cost_micros;
  audit.windowed_selectivity = windowed.fast_selectivity;
  audit.windowed_observations = windowed.observations;

  // ...so the lifetime re-estimate barely moves: the old gauge is blind.
  EXPECT_LT(audit.CostDrift(), 1.2);
  // The windowed actuals converged onto the new regime and expose it.
  EXPECT_GT(audit.WindowedCostDrift(), 2.0);
  EXPECT_EQ(audit.EffectiveCostDrift(), audit.WindowedCostDrift());
  EXPECT_GT(windowed.observations, 0);
  // The fast horizon sits essentially at the drifted cost; the slow
  // horizon still remembers the stable era.
  EXPECT_NEAR(windowed.fast_cost_micros, 300.0 * kMicrosPerWorkUnit,
              0.05 * 300.0 * kMicrosPerWorkUnit);
  EXPECT_LT(windowed.slow_cost_micros, windowed.fast_cost_micros);
}

// ---------------------------------------------------------------------------
// Scheduler wiring: drift notifications and the steady decay clock age the
// catalog's models.

TEST(SchedulerDecayClockTest, NotifyDriftAndTicksAdvanceModelEpochs) {
  CostCatalog catalog(/*memory_limit_bytes=*/1800);
  catalog.SetModelDecayHalfLife(4.0);
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/3, /*noise_probability=*/0.0,
                                   /*seed=*/4);
  const Point point = udf->model_space().Center();
  UdfCost cost;
  cost.cpu_work = 10.0;
  catalog.RecordExecution(udf.get(), point, cost, true);

  MaintenancePolicy policy;
  policy.ticks_per_decay_epoch = 2;
  policy.abrupt_drift_epochs = 8;
  policy.gradual_drift_epochs = 1;
  MaintenanceScheduler scheduler(&catalog, policy);

  const auto* entry = catalog.Find(udf.get());
  ASSERT_NE(entry, nullptr);
  const auto& cpu_tree =
      static_cast<const MlqModel&>(*entry->cpu_model).tree();
  ASSERT_TRUE(cpu_tree.decay_enabled());
  EXPECT_EQ(cpu_tree.decay_epoch(), 0u);

  // Four ticks at 2 ticks/epoch: clock advances twice.
  for (int i = 0; i < 4; ++i) catalog.MaintenanceTick();
  EXPECT_EQ(cpu_tree.decay_epoch(), 2u);

  scheduler.NotifyDrift(DriftKind::kAbrupt);
  EXPECT_EQ(cpu_tree.decay_epoch(), 10u);
  scheduler.NotifyDrift(DriftKind::kGradual);
  EXPECT_EQ(cpu_tree.decay_epoch(), 11u);
  scheduler.NotifyDrift(DriftKind::kNone);
  EXPECT_EQ(cpu_tree.decay_epoch(), 11u);

  const MaintenanceSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.decay_epochs, 2 + 8 + 1);
  EXPECT_EQ(stats.drift_notifications, 2);
}

}  // namespace
}  // namespace mlq
