// Tests for UDF predicate placement around a join.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/join_query.h"
#include "eval/experiment_setup.h"

namespace mlq {
namespace {

class JoinQueryTest : public ::testing::Test {
 protected:
  JoinQueryTest()
      : suite_(MakeRealUdfSuite(SubstrateScale::kSmall)),
        docs_("docs", {"doc_key", "kw1", "kw2"}),
        places_("places", {"place_key", "x", "y"}) {
    Rng rng(11);
    const auto vocab =
        static_cast<double>(suite_.text_engine->index().vocab_size());
    // Keys 0..19; each docs key appears ~10x, each places key ~5x.
    for (int i = 0; i < 200; ++i) {
      docs_.AddRow(std::vector<double>{static_cast<double>(i % 20),
                                       std::floor(rng.Uniform(1.0, vocab)),
                                       std::floor(rng.Uniform(1.0, vocab))});
    }
    for (int i = 0; i < 100; ++i) {
      places_.AddRow(std::vector<double>{static_cast<double>(i % 20),
                                         rng.Uniform(0.0, 1000.0),
                                         rng.Uniform(0.0, 1000.0)});
    }
  }

  std::unique_ptr<UdfPredicate> MakeProxPredicate() {
    return std::make_unique<UdfPredicate>(
        "Contains", suite_.Find("PROX"), std::vector<int>{1, 2, -1},
        Point{0.0, 0.0, 30.0}, 1);
  }

  std::unique_ptr<UdfPredicate> MakeWinPredicate() {
    return std::make_unique<UdfPredicate>(
        "InUrbanArea", suite_.Find("WIN"), std::vector<int>{1, 2, -1, -1},
        Point{0.0, 0.0, 120.0, 120.0}, 5);
  }

  JoinQuery MakeQuery(const UdfPredicate* left, const UdfPredicate* right) {
    JoinQuery query;
    query.left = &docs_;
    query.right = &places_;
    query.left_join_column = 0;
    query.right_join_column = 0;
    if (left != nullptr) query.left_predicates = {left};
    if (right != nullptr) query.right_predicates = {right};
    return query;
  }

  RealUdfSuite suite_;
  Table docs_;
  Table places_;
};

TEST_F(JoinQueryTest, ExpectedJoinRowsIsExact) {
  const JoinQuery query = MakeQuery(nullptr, nullptr);
  // Every key k in 0..19: 10 docs x 5 places = 50 pairs; 20 keys -> 1000.
  EXPECT_DOUBLE_EQ(ExpectedJoinRows(query), 1000.0);
}

TEST_F(JoinQueryTest, JoinWithoutPredicatesProducesCartesianPerKey) {
  const JoinQuery query = MakeQuery(nullptr, nullptr);
  CostCatalog catalog(1800);
  const JoinPlan plan = PlanJoinQuery(query, catalog);
  const ExecutionStats stats = ExecuteJoinQuery(query, plan, &catalog);
  EXPECT_EQ(stats.rows_out, 1000);
  EXPECT_DOUBLE_EQ(stats.actual_cost_micros, 0.0);
}

TEST_F(JoinQueryTest, ResultSetIndependentOfPlacement) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  const JoinQuery query = MakeQuery(prox.get(), win.get());
  CostCatalog catalog(1800);

  // Force all four placement combinations; row counts must agree.
  int64_t expected = -1;
  for (bool left_before : {false, true}) {
    for (bool right_before : {false, true}) {
      JoinPlan plan;
      plan.left_before = {left_before};
      plan.right_before = {right_before};
      const ExecutionStats stats = ExecuteJoinQuery(query, plan, nullptr);
      if (expected < 0) expected = stats.rows_out;
      EXPECT_EQ(stats.rows_out, expected)
          << "placement (" << left_before << ", " << right_before << ")";
    }
  }
  EXPECT_GE(expected, 0);
}

TEST_F(JoinQueryTest, BelowJoinEvaluatesOncePerBaseRow) {
  auto prox = MakeProxPredicate();
  const JoinQuery query = MakeQuery(prox.get(), nullptr);
  JoinPlan plan;
  plan.left_before = {true};
  const ExecutionStats stats = ExecuteJoinQuery(query, plan, nullptr);
  EXPECT_EQ(stats.evaluations_per_predicate[0], docs_.num_rows());
}

TEST_F(JoinQueryTest, AboveJoinEvaluatesPerJoinedPair) {
  auto prox = MakeProxPredicate();
  const JoinQuery query = MakeQuery(prox.get(), nullptr);
  JoinPlan plan;
  plan.left_before = {false};
  const ExecutionStats stats = ExecuteJoinQuery(query, plan, nullptr);
  // 1000 joined pairs, short-circuiting only within a pair: every pair
  // evaluates the single predicate once.
  EXPECT_EQ(stats.evaluations_per_predicate[0], 1000);
}

TEST_F(JoinQueryTest, PlannerPullsExpensivePredicateAboveSelectiveJoin) {
  // Make the join highly selective: give the right table keys that almost
  // never match (only key 0 joins). An expensive left predicate should
  // then be evaluated above the join (few joined rows) once the catalog
  // knows its cost.
  Table rare("rare", {"place_key", "x", "y"});
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    rare.AddRow(std::vector<double>{i == 0 ? 0.0 : 1e6 + i,
                                    rng.Uniform(0.0, 1000.0),
                                    rng.Uniform(0.0, 1000.0)});
  }
  auto prox = MakeProxPredicate();
  JoinQuery query;
  query.left = &docs_;
  query.right = &rare;
  query.left_join_column = 0;
  query.right_join_column = 0;
  query.left_predicates = {prox.get()};

  // Join rows: docs with key 0 (10 rows) x 1 = 10 << 200 left rows.
  EXPECT_DOUBLE_EQ(ExpectedJoinRows(query), 10.0);

  CostCatalog catalog(1800);
  // Warm the catalog so PROX's real cost is known.
  {
    const JoinPlan warmup = PlanJoinQuery(query, catalog);
    ExecuteJoinQuery(query, warmup, &catalog);
  }
  const JoinPlan plan = PlanJoinQuery(query, catalog);
  ASSERT_EQ(plan.left_before.size(), 1u);
  EXPECT_FALSE(plan.left_before[0])
      << "10 post-join evaluations beat 200 pre-join ones\n"
      << plan.Explain(query);
}

TEST_F(JoinQueryTest, PlannerPushesPredicateBelowExplodingJoin) {
  // Fan-out join: every pair matches (all keys equal), so 200 x 100 =
  // 20000 joined rows >> 200 base rows. Predicates must be pushed below.
  Table all_same("all_same", {"place_key", "x", "y"});
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    all_same.AddRow(std::vector<double>{0.0, rng.Uniform(0.0, 1000.0),
                                        rng.Uniform(0.0, 1000.0)});
  }
  Table docs_same("docs_same", {"doc_key", "kw1", "kw2"});
  const auto vocab =
      static_cast<double>(suite_.text_engine->index().vocab_size());
  for (int i = 0; i < 200; ++i) {
    docs_same.AddRow(std::vector<double>{0.0,
                                         std::floor(rng.Uniform(1.0, vocab)),
                                         std::floor(rng.Uniform(1.0, vocab))});
  }
  auto prox = MakeProxPredicate();
  JoinQuery query;
  query.left = &docs_same;
  query.right = &all_same;
  query.left_join_column = 0;
  query.right_join_column = 0;
  query.left_predicates = {prox.get()};

  CostCatalog catalog(1800);
  {
    const JoinPlan warmup = PlanJoinQuery(query, catalog);
    ExecuteJoinQuery(query, warmup, &catalog);
  }
  const JoinPlan plan = PlanJoinQuery(query, catalog);
  EXPECT_TRUE(plan.left_before[0]) << plan.Explain(query);
}

TEST_F(JoinQueryTest, ChosenPlacementCostsNoMoreThanTheOpposite) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  const JoinQuery query = MakeQuery(prox.get(), win.get());
  CostCatalog catalog(1800);
  // Warm the models.
  ExecuteJoinQuery(query, PlanJoinQuery(query, catalog), &catalog);

  const JoinPlan chosen = PlanJoinQuery(query, catalog);
  JoinPlan opposite = chosen;
  opposite.left_before[0] = !opposite.left_before[0];
  opposite.right_before[0] = !opposite.right_before[0];

  const ExecutionStats chosen_stats = ExecuteJoinQuery(query, chosen, nullptr);
  const ExecutionStats opposite_stats =
      ExecuteJoinQuery(query, opposite, nullptr);
  EXPECT_LE(chosen_stats.actual_cost_micros,
            opposite_stats.actual_cost_micros * 1.15)
      << chosen.Explain(query);
}

TEST_F(JoinQueryTest, ExplainNamesEveryPredicateAndSide) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  const JoinQuery query = MakeQuery(prox.get(), win.get());
  CostCatalog catalog(1800);
  const JoinPlan plan = PlanJoinQuery(query, catalog);
  const std::string text = plan.Explain(query);
  EXPECT_NE(text.find("Contains"), std::string::npos);
  EXPECT_NE(text.find("InUrbanArea"), std::string::npos);
  EXPECT_NE(text.find("[left]"), std::string::npos);
  EXPECT_NE(text.find("[right]"), std::string::npos);
}

}  // namespace
}  // namespace mlq
