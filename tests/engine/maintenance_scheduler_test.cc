// MaintenanceScheduler tests: the serving stack must trigger compaction
// epochs autonomously (executor block boundaries and the sharded drain
// hook both reach Tick()), policy triggers must fire and hold back as
// configured, incremental epochs must land on the stop-the-world layout,
// and the whole arrangement must stay clean under concurrent serving
// traffic (this binary is a TSan tier-2 target).

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/cost_catalog.h"
#include "engine/executor.h"
#include "engine/maintenance_scheduler.h"
#include "engine/table.h"
#include "engine/udf_predicate.h"
#include "eval/experiment_setup.h"
#include "quadtree/shared_node_arena.h"

namespace mlq {
namespace {

class MaintenanceSchedulerTest : public ::testing::Test {
 protected:
  MaintenanceSchedulerTest() : suite_(MakeRealUdfSuite(SubstrateScale::kSmall)) {}

  static Point UniformIn(const Box& box, Rng& rng) {
    Point p(box.dims());
    for (int d = 0; d < box.dims(); ++d) {
      p[d] = rng.Uniform(box.lo()[d], box.hi()[d]);
    }
    return p;
  }

  std::vector<CostCatalog::ExecutionRecord> MakeRecords(const CostedUdf* udf,
                                                        int n, uint64_t seed) {
    Rng rng(seed);
    const Box space = udf->model_space();
    std::vector<CostCatalog::ExecutionRecord> records;
    records.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      CostCatalog::ExecutionRecord r;
      r.model_point = UniformIn(space, rng);
      r.cost.cpu_work = 100.0 + r.model_point[0] * r.model_point[1] / 40.0;
      r.cost.io_pages = std::floor(r.model_point[0] / 50.0);
      r.passed = rng.NextDouble() < 0.3;
      records.push_back(r);
    }
    return records;
  }

  std::vector<Point> ProbePoints(const CostedUdf* udf, int n, uint64_t seed) {
    Rng rng(seed);
    const Box space = udf->model_space();
    std::vector<Point> probes;
    for (int i = 0; i < n; ++i) probes.push_back(UniformIn(space, rng));
    return probes;
  }

  // Feeds `n` records to WIN in `batch`-sized RecordExecutionBatch calls.
  void Churn(CostCatalog& catalog, CostedUdf* udf, int n, uint64_t seed,
             size_t batch = 128) {
    const std::vector<CostCatalog::ExecutionRecord> records =
        MakeRecords(udf, n, seed);
    for (size_t begin = 0; begin < records.size(); begin += batch) {
      const size_t end = std::min(records.size(), begin + batch);
      catalog.RecordExecutionBatch(
          udf, std::span<const CostCatalog::ExecutionRecord>(
                   records.data() + begin, end - begin));
    }
  }

  RealUdfSuite suite_;
};

// The acceptance test for the tentpole wiring: drive the batched adaptive
// executor against a catalog with a registered scheduler and NO explicit
// CompactArenas call anywhere. Once the models compress past the policy
// threshold, a block-boundary MaintenanceTick must run an epoch on its own.
TEST_F(MaintenanceSchedulerTest, ExecutorTriggersEpochAutonomously) {
  Table table("places", {"x", "y"});
  Rng rng(9);
  for (int i = 0; i < 180; ++i) {
    table.AddRow(std::vector<double>{rng.Uniform(0.0, 1000.0),
                                     rng.Uniform(0.0, 1000.0)});
  }
  std::vector<std::unique_ptr<UdfPredicate>> keep;
  keep.push_back(std::make_unique<UdfPredicate>(
      "InUrbanArea", suite_.Find("WIN"),
      std::vector<int>{table.ColumnIndex("x"), table.ColumnIndex("y"), -1, -1},
      Point{0.0, 0.0, 120.0, 120.0}, /*min_result_count=*/5));
  keep.push_back(std::make_unique<UdfPredicate>(
      "NearSomething", suite_.Find("RANGE"),
      std::vector<int>{table.ColumnIndex("x"), table.ColumnIndex("y"), -1},
      Point{0.0, 0.0, 150.0}, /*min_result_count=*/3));
  Query query;
  query.table = &table;
  query.predicates = {keep[0].get(), keep[1].get()};

  CostCatalog catalog(1800);
  MaintenancePolicy policy;
  policy.compression_trigger = 1;
  policy.fragmentation_trigger = 0.0;
  policy.min_ticks_between_epochs = 1;
  policy.step_budget_slots = 1024;
  MaintenanceScheduler scheduler(&catalog, policy);

  // Each run ticks once per 16-row block; rerun until the trees have
  // compressed at least once past the trigger.
  for (int run = 0; run < 20 && scheduler.stats().epochs == 0; ++run) {
    ExecuteQueryAdaptiveBatched(query, catalog, /*block_rows=*/16);
  }
  const MaintenanceSchedulerStats stats = scheduler.stats();
  EXPECT_GT(stats.ticks, 0);
  EXPECT_GE(stats.epochs, 1);
  EXPECT_GE(stats.steps, stats.epochs);
  // The epoch actually compacted: nothing reclaimable is left behind.
  EXPECT_EQ(catalog.ReadArenaSignals().max_fragmentation, 0.0);
}

// Pure feedback traffic in kSharded mode: the sharded model's post-drain
// hook is the only Tick() source, and it must be enough to run an epoch
// (and must not deadlock against the catalog locks it fires under).
TEST_F(MaintenanceSchedulerTest, ShardedDrainHookTriggersEpoch) {
  CostCatalog catalog(1800, CatalogConcurrency::kSharded, /*num_shards=*/2);
  CostedUdf* win = suite_.Find("WIN");
  MaintenancePolicy policy;
  policy.compression_trigger = 1;
  policy.fragmentation_trigger = 0.0;
  policy.min_ticks_between_epochs = 1;
  MaintenanceScheduler scheduler(&catalog, policy);

  for (int round = 0; round < 10 && scheduler.stats().epochs == 0; ++round) {
    Churn(catalog, win, 2000, 100 + static_cast<uint64_t>(round));
  }
  EXPECT_GE(scheduler.stats().epochs, 1);
  // Serving still works after hook-driven epochs.
  for (const Point& p : ProbePoints(win, 50, 4)) {
    const double cost = catalog.PredictCostMicros(win, p);
    EXPECT_TRUE(std::isfinite(cost));
  }
}

// Policy knobs: a quiet catalog with reclaimable space compacts via the
// idle trigger; unreachable thresholds never fire an epoch at all.
TEST_F(MaintenanceSchedulerTest, PolicyTriggersFireAndHoldBack) {
  {
    CostCatalog catalog(1800);
    CostedUdf* win = suite_.Find("WIN");
    Churn(catalog, win, 6000, 21);
    catalog.FlushFeedback();
    ASSERT_GT(catalog.ReadArenaSignals().max_fragmentation, 0.0)
        << "fixture must leave reclaimable blocks for the idle trigger";

    MaintenancePolicy idle_policy;
    idle_policy.compression_trigger = 0;
    idle_policy.fragmentation_trigger = 0.0;
    idle_policy.idle_tick_trigger = 3;
    idle_policy.min_ticks_between_epochs = 1;
    MaintenanceScheduler scheduler(&catalog, idle_policy);
    for (int i = 0; i < 10; ++i) catalog.MaintenanceTick();
    EXPECT_GE(scheduler.stats().epochs, 1);
    EXPECT_EQ(catalog.ReadArenaSignals().max_fragmentation, 0.0);
    // With nothing left to reclaim, further idle ticks stay no-ops.
    const int64_t epochs = scheduler.stats().epochs;
    for (int i = 0; i < 10; ++i) catalog.MaintenanceTick();
    EXPECT_EQ(scheduler.stats().epochs, epochs);
  }
  {
    CostCatalog catalog(1800);
    CostedUdf* win = suite_.Find("WIN");
    MaintenancePolicy never;
    never.compression_trigger = 1'000'000'000;
    never.fragmentation_trigger = 0.0;
    never.idle_tick_trigger = 0;
    never.min_ticks_between_epochs = 1;
    MaintenanceScheduler scheduler(&catalog, never);
    Churn(catalog, win, 4000, 22);
    for (int i = 0; i < 50; ++i) catalog.MaintenanceTick();
    EXPECT_GT(scheduler.stats().ticks, 0);
    EXPECT_EQ(scheduler.stats().epochs, 0);
  }
}

// An incremental scheduler epoch must land the catalog on exactly the
// layout (physical bytes) and predictions of a stop-the-world epoch run
// on an identically fed twin.
TEST_F(MaintenanceSchedulerTest, IncrementalEpochMatchesStopTheWorld) {
  CostCatalog incremental_catalog(1800);
  CostCatalog full_catalog(1800);
  CostedUdf* win = suite_.Find("WIN");
  for (CostCatalog* catalog : {&incremental_catalog, &full_catalog}) {
    Churn(*catalog, win, 5000, 55);
    catalog->FlushFeedback();
  }

  MaintenancePolicy incremental_policy;
  incremental_policy.incremental = true;
  incremental_policy.step_budget_slots = 64;
  MaintenanceScheduler incremental_scheduler(&incremental_catalog,
                                             incremental_policy);
  MaintenancePolicy full_policy;
  full_policy.incremental = false;
  MaintenanceScheduler full_scheduler(&full_catalog, full_policy);

  const CostCatalog::ArenaMaintenanceStats inc = incremental_scheduler.RunEpochNow();
  const CostCatalog::ArenaMaintenanceStats full = full_scheduler.RunEpochNow();
  EXPECT_GT(inc.steps, 1);
  EXPECT_EQ(full.steps, 1);
  EXPECT_EQ(inc.physical_bytes_after, full.physical_bytes_after);
  EXPECT_EQ(incremental_catalog.ArenaPhysicalBytes(),
            full_catalog.ArenaPhysicalBytes());
  for (const Point& p : ProbePoints(win, 300, 8)) {
    ASSERT_EQ(incremental_catalog.PredictCostMicros(win, p),
              full_catalog.PredictCostMicros(win, p));
    ASSERT_EQ(incremental_catalog.PredictSelectivity(win, p),
              full_catalog.PredictSelectivity(win, p));
  }
}

// Concurrent serving with a live scheduler: four threads predict and
// observe while hook-driven epochs relocate blocks under them. The arena
// must come out consistent and predictions finite. (TSan tier-2 target.)
TEST_F(MaintenanceSchedulerTest, ConcurrentServingUnderScheduler) {
  CostCatalog catalog(1800, CatalogConcurrency::kSharded, /*num_shards=*/4);
  CostedUdf* win = suite_.Find("WIN");
  CostedUdf* range = suite_.Find("RANGE");
  // Touch both entries up front so worker threads never race the lazy
  // model construction against each other in interesting ways.
  catalog.PredictCostMicros(win, ProbePoints(win, 1, 1)[0]);
  catalog.PredictCostMicros(range, ProbePoints(range, 1, 2)[0]);

  MaintenancePolicy policy;
  policy.compression_trigger = 8;
  policy.fragmentation_trigger = 0.2;
  policy.min_ticks_between_epochs = 2;
  policy.step_budget_slots = 512;
  MaintenanceScheduler scheduler(&catalog, policy);

  constexpr int kThreads = 4;
  std::atomic<int> finite_failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      CostedUdf* udf = (t % 2 == 0) ? win : range;
      const std::vector<CostCatalog::ExecutionRecord> records =
          MakeRecords(udf, 3000, 1000 + static_cast<uint64_t>(t));
      const std::vector<Point> probes = ProbePoints(udf, 100, 40 + t);
      for (size_t begin = 0; begin < records.size(); begin += 64) {
        const size_t end = std::min(records.size(), begin + 64);
        catalog.RecordExecutionBatch(
            udf, std::span<const CostCatalog::ExecutionRecord>(
                     records.data() + begin, end - begin));
        const Point& p = probes[(begin / 64) % probes.size()];
        if (!std::isfinite(catalog.PredictCostMicros(udf, p))) {
          finite_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(finite_failures.load(), 0);
  EXPECT_GT(scheduler.stats().ticks, 0);

  catalog.FlushFeedback();
  std::string error;
  for (const CostedUdf* udf : {static_cast<const CostedUdf*>(win),
                               static_cast<const CostedUdf*>(range)}) {
    std::shared_ptr<SharedNodeArena> arena =
        catalog.ArenaForDims(udf->model_space().dims());
    ASSERT_TRUE(arena->CheckConsistency(&error)) << error;
  }
  // A final forced epoch on the quiesced catalog leaves zero fragmentation.
  scheduler.RunEpochNow();
  EXPECT_EQ(catalog.ReadArenaSignals().max_fragmentation, 0.0);
}

}  // namespace
}  // namespace mlq
