// Engine-layer tests for variance-aware planning: confidence fields on
// Plan/PlannedPredicate, the k = 0 exact-reduction contract at the plan
// level, the catalog's stats/scalar value identity, EXPLAIN's confidence
// output, audit confidence coverage, and the risk-aware join planner.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/cost_catalog.h"
#include "engine/estimate_audit.h"
#include "engine/executor.h"
#include "engine/join_query.h"
#include "engine/query_optimizer.h"
#include "engine/table.h"
#include "engine/udf_predicate.h"
#include "eval/experiment_setup.h"

namespace mlq {
namespace {

class RiskPlanTest : public ::testing::Test {
 protected:
  RiskPlanTest()
      : suite_(MakeRealUdfSuite(SubstrateScale::kSmall)),
        table_("docs_and_places", {"kw1", "kw2", "x", "y"}) {
    Rng rng(7);
    const auto vocab =
        static_cast<double>(suite_.text_engine->index().vocab_size());
    for (int i = 0; i < 300; ++i) {
      table_.AddRow(std::vector<double>{
          std::floor(rng.Uniform(1.0, vocab)),
          std::floor(rng.Uniform(1.0, vocab)),
          rng.Uniform(0.0, 1000.0),
          rng.Uniform(0.0, 1000.0),
      });
    }
  }

  std::unique_ptr<UdfPredicate> MakeProxPredicate() {
    return std::make_unique<UdfPredicate>(
        "Contains", suite_.Find("PROX"),
        std::vector<int>{table_.ColumnIndex("kw1"), table_.ColumnIndex("kw2"),
                         -1},
        Point{0.0, 0.0, 30.0}, /*min_result_count=*/1);
  }

  std::unique_ptr<UdfPredicate> MakeWinPredicate() {
    return std::make_unique<UdfPredicate>(
        "InUrbanArea", suite_.Find("WIN"),
        std::vector<int>{table_.ColumnIndex("x"), table_.ColumnIndex("y"), -1,
                         -1},
        Point{0.0, 0.0, 120.0, 120.0}, /*min_result_count=*/5);
  }

  Query MakeQuery(const UdfPredicate* a, const UdfPredicate* b) {
    Query query;
    query.table = &table_;
    query.predicates = {a, b};
    return query;
  }

  // Trains the catalog's models with real execution feedback.
  void Warm(const Query& query, CostCatalog& catalog, int rounds = 2) {
    for (int i = 0; i < rounds; ++i) {
      const Plan plan = PlanQuery(query, catalog);
      ExecuteQuery(query, plan, &catalog);
      catalog.FlushFeedback();
    }
  }

  RealUdfSuite suite_;
  Table table_;
};

TEST_F(RiskPlanTest, ZeroKPlanIsIdenticalToClassical) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  const Query query = MakeQuery(prox.get(), win.get());
  CostCatalog catalog(1800);
  Warm(query, catalog);

  const Plan classical = PlanQuery(query, catalog);
  const Plan zero_k = PlanQuery(query, catalog, /*sample_rows=*/32,
                                /*planner_threads=*/1, /*risk_k=*/0.0);
  EXPECT_EQ(zero_k.order, classical.order);
  EXPECT_EQ(zero_k.expected_cost_per_row_micros,
            classical.expected_cost_per_row_micros);
  EXPECT_DOUBLE_EQ(zero_k.risk_k, 0.0);
  ASSERT_EQ(zero_k.estimates.size(), classical.estimates.size());
  for (size_t i = 0; i < zero_k.estimates.size(); ++i) {
    EXPECT_EQ(zero_k.estimates[i].estimated_cost_micros,
              classical.estimates[i].estimated_cost_micros);
    EXPECT_EQ(zero_k.estimates[i].estimated_selectivity,
              classical.estimates[i].estimated_selectivity);
  }
}

TEST_F(RiskPlanTest, WarmRiskPlanPopulatesConfidenceFields) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  const Query query = MakeQuery(prox.get(), win.get());
  CostCatalog catalog(1800);
  Warm(query, catalog);

  const Plan plan = PlanQuery(query, catalog, /*sample_rows=*/32,
                              /*planner_threads=*/1, /*risk_k=*/1.5);
  EXPECT_DOUBLE_EQ(plan.risk_k, 1.5);
  ASSERT_EQ(plan.estimates.size(), 2u);
  for (const PlannedPredicate& e : plan.estimates) {
    EXPECT_FALSE(std::isnan(e.estimated_cost_stddev));
    EXPECT_GE(e.estimated_cost_stddev, 0.0);
    EXPECT_FALSE(std::isnan(e.estimated_selectivity_stddev));
    EXPECT_GE(e.estimated_selectivity_stddev, 0.0);
    // The models have absorbed execution feedback, so the estimates must
    // be supported by observations.
    EXPECT_GT(e.support, 0);
    EXPECT_DOUBLE_EQ(e.CostConfidenceHalfWidthMicros(),
                     1.96 * e.estimated_cost_stddev);
  }
  // Risk-adjusted costs pad every predicate's mean upward (or not at
  // all), so the risk total can never undercut the expected total of the
  // same order.
  EXPECT_GE(plan.risk_cost_per_row_micros,
            plan.expected_cost_per_row_micros);
}

TEST_F(RiskPlanTest, ExplainReportsConfidenceAndRisk) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  const Query query = MakeQuery(prox.get(), win.get());
  CostCatalog catalog(1800);
  Warm(query, catalog);

  const Plan risk = PlanQuery(query, catalog, 32, 1, /*risk_k=*/2.0);
  const std::string risk_text = risk.Explain();
  EXPECT_NE(risk_text.find("risk(k=2.00)"), std::string::npos) << risk_text;
  EXPECT_NE(risk_text.find("+/-"), std::string::npos) << risk_text;

  const Plan classical = PlanQuery(query, catalog);
  const std::string classical_text = classical.Explain();
  EXPECT_EQ(classical_text.find("risk(k="), std::string::npos)
      << classical_text;
  // Per-predicate confidence intervals print regardless of the knob.
  EXPECT_NE(classical_text.find("+/-"), std::string::npos) << classical_text;
}

TEST_F(RiskPlanTest, CatalogStatsValueMatchesScalarBitwise) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  const Query query = MakeQuery(prox.get(), win.get());
  CostCatalog catalog(1800);
  Warm(query, catalog);

  for (const UdfPredicate* predicate : {prox.get(), win.get()}) {
    std::vector<Point> points;
    for (int64_t row = 0; row < table_.num_rows(); row += 10) {
      points.push_back(predicate->ModelPointFor(table_.Row(row)));
    }
    // Scalar/stats identity, point at a time. (Stddev may fold in the
    // windowed-actuals cross-check; the VALUE must never move.)
    for (const Point& p : points) {
      const double scalar_cost =
          catalog.PredictCostMicros(predicate->udf(), p);
      EXPECT_EQ(catalog.PredictCostStats(predicate->udf(), p).value,
                scalar_cost);
      const double scalar_sel =
          catalog.PredictSelectivity(predicate->udf(), p);
      EXPECT_EQ(catalog.PredictSelectivityStats(predicate->udf(), p).value,
                scalar_sel);
    }
    // Batched stats against batched scalar.
    std::vector<double> cost_scalar(points.size());
    std::vector<CostEstimate> cost_stats(points.size());
    catalog.PredictCostMicrosBatch(predicate->udf(), points, cost_scalar);
    catalog.PredictCostStatsBatch(predicate->udf(), points, cost_stats);
    for (size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(cost_stats[i].value, cost_scalar[i]) << "point " << i;
      EXPECT_FALSE(std::isnan(cost_stats[i].stddev));
      EXPECT_GE(cost_stats[i].stddev, 0.0);
    }
  }
}

TEST_F(RiskPlanTest, AuditReportsConfidenceCoverage) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  const Query query = MakeQuery(prox.get(), win.get());
  CostCatalog catalog(1800);
  Warm(query, catalog, /*rounds=*/3);

  const Plan plan = PlanQuery(query, catalog, 32, 1, /*risk_k=*/1.0);
  ExecuteQuery(query, plan, &catalog);
  catalog.FlushFeedback();

  const PlanAudit audit = AuditPlan(query, plan, catalog, /*sample_rows=*/32);
  // Execution feedback populated the windowed actuals, so coverage is
  // defined and must be a valid fraction.
  ASSERT_GE(audit.confidence_coverage, 0.0);
  EXPECT_LE(audit.confidence_coverage, 1.0);
  EXPECT_NE(audit.ToString().find("confidence coverage"), std::string::npos);
  for (const PredicateAudit& p : audit.predicates) {
    EXPECT_GE(p.estimated_cost_stddev, 0.0);
    EXPECT_FALSE(std::isnan(p.estimated_cost_stddev));
  }
}

TEST_F(RiskPlanTest, WindowedWithinConfidenceEdgeCases) {
  PredicateAudit audit;
  audit.estimated_cost_micros = 100.0;
  audit.windowed_cost_micros = 100.0;
  audit.estimated_cost_stddev = 0.0;
  // No windowed observations: coverage is undefined for this predicate.
  audit.windowed_observations = 0;
  EXPECT_FALSE(audit.WindowedWithinConfidence());
  // Exact agreement sits inside even a degenerate (zero-width) interval.
  audit.windowed_observations = 5;
  EXPECT_TRUE(audit.WindowedWithinConfidence());
  // One stddev off with a ~2-stddev half-width: inside.
  audit.estimated_cost_stddev = 10.0;
  audit.windowed_cost_micros = 110.0;
  EXPECT_TRUE(audit.WindowedWithinConfidence());
  // Three stddev off: outside.
  audit.windowed_cost_micros = 130.0;
  EXPECT_FALSE(audit.WindowedWithinConfidence());
}

TEST_F(RiskPlanTest, RiskAwareAdaptiveExecutionMatchesResults) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  const Query query = MakeQuery(prox.get(), win.get());

  CostCatalog classical_catalog(1800);
  const ExecutionStats classical = ExecuteQueryAdaptiveBatched(
      query, classical_catalog, /*block_rows=*/64);
  CostCatalog risk_catalog(1800);
  const ExecutionStats risk = ExecuteQueryAdaptiveBatched(
      query, risk_catalog, /*block_rows=*/64, /*risk_k=*/1.5);
  // Risk awareness reorders work; it must never change the result set.
  EXPECT_EQ(risk.rows_out, classical.rows_out);
}

// ---------------------------------------------------------------------------
// Join planner.

class RiskJoinTest : public ::testing::Test {
 protected:
  RiskJoinTest()
      : suite_(MakeRealUdfSuite(SubstrateScale::kSmall)),
        docs_("docs", {"doc_key", "kw1", "kw2"}),
        places_("places", {"place_key", "x", "y"}) {
    Rng rng(11);
    const auto vocab =
        static_cast<double>(suite_.text_engine->index().vocab_size());
    for (int i = 0; i < 200; ++i) {
      docs_.AddRow(std::vector<double>{static_cast<double>(i % 20),
                                       std::floor(rng.Uniform(1.0, vocab)),
                                       std::floor(rng.Uniform(1.0, vocab))});
    }
    for (int i = 0; i < 100; ++i) {
      places_.AddRow(std::vector<double>{static_cast<double>(i % 20),
                                         rng.Uniform(0.0, 1000.0),
                                         rng.Uniform(0.0, 1000.0)});
    }
  }

  RealUdfSuite suite_;
  Table docs_;
  Table places_;
};

TEST_F(RiskJoinTest, ZeroKJoinPlanIsIdenticalToClassical) {
  UdfPredicate prox("Contains", suite_.Find("PROX"), std::vector<int>{1, 2, -1},
                    Point{0.0, 0.0, 30.0}, 1);
  UdfPredicate win("InUrbanArea", suite_.Find("WIN"),
                   std::vector<int>{1, 2, -1, -1}, Point{0.0, 0.0, 120.0, 120.0},
                   5);
  JoinQuery query;
  query.left = &docs_;
  query.right = &places_;
  query.left_join_column = 0;
  query.right_join_column = 0;
  query.left_predicates = {&prox};
  query.right_predicates = {&win};

  CostCatalog catalog(1800);
  const JoinPlan classical = PlanJoinQuery(query, catalog);
  const JoinPlan zero_k =
      PlanJoinQuery(query, catalog, /*sample_rows=*/32, /*risk_k=*/0.0);
  EXPECT_EQ(zero_k.left_before, classical.left_before);
  EXPECT_EQ(zero_k.right_before, classical.right_before);
  EXPECT_DOUBLE_EQ(zero_k.risk_k, 0.0);
}

TEST_F(RiskJoinTest, RiskJoinPlanExecutesAndPreservesResults) {
  UdfPredicate prox("Contains", suite_.Find("PROX"), std::vector<int>{1, 2, -1},
                    Point{0.0, 0.0, 30.0}, 1);
  UdfPredicate win("InUrbanArea", suite_.Find("WIN"),
                   std::vector<int>{1, 2, -1, -1}, Point{0.0, 0.0, 120.0, 120.0},
                   5);
  JoinQuery query;
  query.left = &docs_;
  query.right = &places_;
  query.left_join_column = 0;
  query.right_join_column = 0;
  query.left_predicates = {&prox};
  query.right_predicates = {&win};

  CostCatalog catalog(1800);
  const JoinPlan classical = PlanJoinQuery(query, catalog);
  const ExecutionStats classical_stats =
      ExecuteJoinQuery(query, classical, &catalog);
  catalog.FlushFeedback();

  const JoinPlan risk =
      PlanJoinQuery(query, catalog, /*sample_rows=*/32, /*risk_k=*/2.0);
  EXPECT_DOUBLE_EQ(risk.risk_k, 2.0);
  ASSERT_EQ(risk.left_before.size(), 1u);
  ASSERT_EQ(risk.right_before.size(), 1u);
  const ExecutionStats risk_stats = ExecuteJoinQuery(query, risk, &catalog);
  // Placement is a performance decision, never a correctness one.
  EXPECT_EQ(risk_stats.rows_out, classical_stats.rows_out);
  EXPECT_NE(risk.Explain(query).find("risk k=2.00"), std::string::npos);
}

}  // namespace
}  // namespace mlq
