// Tests for the mini relational engine that integrates the cost models
// into an optimizer/executor feedback loop.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/cost_catalog.h"
#include "engine/estimate_audit.h"
#include "engine/executor.h"
#include "engine/query_optimizer.h"
#include "engine/table.h"
#include "engine/udf_predicate.h"
#include "eval/experiment_setup.h"

namespace mlq {
namespace {

// ---------------------------------------------------------------------------
// Table

TEST(TableTest, SchemaAndRows) {
  Table t("docs", {"kw1", "kw2", "x"});
  EXPECT_EQ(t.name(), "docs");
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_EQ(t.num_rows(), 0);
  EXPECT_EQ(t.ColumnIndex("kw2"), 1);
  EXPECT_EQ(t.ColumnIndex("nope"), -1);

  t.AddRow(std::vector<double>{1.0, 2.0, 3.0});
  t.AddRow(std::vector<double>{4.0, 5.0, 6.0});
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_DOUBLE_EQ(t.Row(0)[2], 3.0);
  EXPECT_DOUBLE_EQ(t.Row(1)[0], 4.0);
}

// ---------------------------------------------------------------------------
// Fixture with real UDFs and a table of plausible argument rows.

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : suite_(MakeRealUdfSuite(SubstrateScale::kSmall)),
        table_("docs_and_places", {"kw1", "kw2", "x", "y"}) {
    Rng rng(7);
    const auto vocab =
        static_cast<double>(suite_.text_engine->index().vocab_size());
    for (int i = 0; i < 300; ++i) {
      table_.AddRow(std::vector<double>{
          std::floor(rng.Uniform(1.0, vocab)),
          std::floor(rng.Uniform(1.0, vocab)),
          rng.Uniform(0.0, 1000.0),
          rng.Uniform(0.0, 1000.0),
      });
    }
  }

  // PROX(kw1, kw2, window=30) finds >= 1 co-occurrence.
  std::unique_ptr<UdfPredicate> MakeProxPredicate() {
    return std::make_unique<UdfPredicate>(
        "Contains", suite_.Find("PROX"),
        std::vector<int>{table_.ColumnIndex("kw1"), table_.ColumnIndex("kw2"),
                         -1},
        Point{0.0, 0.0, 30.0}, /*min_result_count=*/1);
  }

  // WIN(x, y, 120x120) finds >= 5 urban rectangles.
  std::unique_ptr<UdfPredicate> MakeWinPredicate() {
    return std::make_unique<UdfPredicate>(
        "InUrbanArea", suite_.Find("WIN"),
        std::vector<int>{table_.ColumnIndex("x"), table_.ColumnIndex("y"), -1,
                         -1},
        Point{0.0, 0.0, 120.0, 120.0}, /*min_result_count=*/5);
  }

  // KNN(x, y, k=10): always exactly 10 results -> always passes with
  // min_result_count 1; useful as an expensive always-true predicate.
  std::unique_ptr<UdfPredicate> MakeKnnPredicate() {
    return std::make_unique<UdfPredicate>(
        "NearSomething", suite_.Find("KNN"),
        std::vector<int>{table_.ColumnIndex("x"), table_.ColumnIndex("y"), -1},
        Point{0.0, 0.0, 10.0}, /*min_result_count=*/1);
  }

  RealUdfSuite suite_;
  Table table_;
};

TEST_F(EngineTest, PredicateBindingBuildsModelPoints) {
  auto prox = MakeProxPredicate();
  const auto row = table_.Row(0);
  const Point p = prox->ModelPointFor(row);
  ASSERT_EQ(p.dims(), 3);
  EXPECT_DOUBLE_EQ(p[0], row[0]);
  EXPECT_DOUBLE_EQ(p[1], row[1]);
  EXPECT_DOUBLE_EQ(p[2], 30.0);  // Constant.
}

TEST_F(EngineTest, PredicateEvaluationMatchesUdfDirectly) {
  auto win = MakeWinPredicate();
  const auto row = table_.Row(3);
  const UdfPredicate::Outcome outcome = win->Evaluate(row);
  // Re-run the UDF directly at the same point.
  CostedUdf* udf = suite_.Find("WIN");
  udf->Execute(win->ModelPointFor(row));
  EXPECT_EQ(outcome.passed, udf->last_result_count() >= 5);
}

TEST_F(EngineTest, CatalogCreatesThreeModelsPerUdf) {
  CostCatalog catalog(1800);
  CostedUdf* win = suite_.Find("WIN");
  CostCatalog::Entry& entry = catalog.For(win);
  EXPECT_EQ(entry.udf, win);
  EXPECT_EQ(catalog.size(), 1);
  catalog.For(win);  // Idempotent.
  EXPECT_EQ(catalog.size(), 1);
  EXPECT_EQ(catalog.Find(suite_.Find("KNN")), nullptr);
}

TEST_F(EngineTest, CatalogSelectivityDefaultsToHalf) {
  CostCatalog catalog(1800);
  CostedUdf* win = suite_.Find("WIN");
  EXPECT_DOUBLE_EQ(catalog.PredictSelectivity(win, Point{1, 1, 10, 10}), 0.5);
}

TEST_F(EngineTest, CatalogLearnsSelectivity) {
  CostCatalog catalog(1800);
  CostedUdf* win = suite_.Find("WIN");
  // 3 of 4 executions in this region pass.
  const Point p{500.0, 500.0, 120.0, 120.0};
  UdfCost cost;
  cost.cpu_work = 100;
  catalog.RecordExecution(win, p, cost, true);
  catalog.RecordExecution(win, p, cost, true);
  catalog.RecordExecution(win, p, cost, true);
  catalog.RecordExecution(win, p, cost, false);
  EXPECT_NEAR(catalog.PredictSelectivity(win, p), 0.75, 1e-9);
}

TEST_F(EngineTest, CatalogCostCombinesCpuAndIo) {
  CostCatalog catalog(1800);
  CostedUdf* win = suite_.Find("WIN");
  const Point p{500.0, 500.0, 120.0, 120.0};
  UdfCost cost;
  cost.cpu_work = 1000.0;
  cost.io_pages = 2.0;
  catalog.RecordExecution(win, p, cost, true);
  EXPECT_NEAR(catalog.PredictCostMicros(win, p),
              1000.0 * kMicrosPerWorkUnit + 2.0 * kMicrosPerPageMiss, 1e-6);
}

TEST_F(EngineTest, ExecutorMatchesBruteForceSemantics) {
  // Whatever order the plan picks, the result set must equal evaluating
  // every predicate on every row.
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  Query query;
  query.table = &table_;
  query.predicates = {prox.get(), win.get()};

  CostCatalog catalog(1800);
  const PlannedExecution first = PlanAndExecute(query, catalog);

  // Brute force (no short-circuit, fixed order).
  int64_t expected_out = 0;
  for (int64_t row = 0; row < table_.num_rows(); ++row) {
    const bool a = prox->Evaluate(table_.Row(row)).passed;
    const bool b = win->Evaluate(table_.Row(row)).passed;
    if (a && b) ++expected_out;
  }
  EXPECT_EQ(first.stats.rows_out, expected_out);
  EXPECT_EQ(first.stats.rows_in, table_.num_rows());
}

TEST_F(EngineTest, ShortCircuitSkipsLaterPredicates) {
  auto win = MakeWinPredicate();    // Selective on clustered data.
  auto knn = MakeKnnPredicate();    // Always true, expensive.
  Query query;
  query.table = &table_;
  query.predicates = {win.get(), knn.get()};

  Plan plan;
  plan.order = {0, 1};  // WIN first.
  plan.estimates.resize(2);
  const ExecutionStats stats = ExecuteQuery(query, plan, nullptr);
  // WIN evaluated on every row; KNN only on rows WIN passed.
  EXPECT_EQ(stats.evaluations_per_predicate[0], table_.num_rows());
  EXPECT_EQ(stats.evaluations_per_predicate[1], stats.rows_out);
  EXPECT_LT(stats.rows_out, table_.num_rows());
}

TEST_F(EngineTest, FeedbackImprovesPlans) {
  // Episode loop: the same query shape over fresh rows. After feedback,
  // the optimizer should put the selective-and-cheap predicate before the
  // always-true expensive one, and actual execution cost should not grow.
  auto win = MakeWinPredicate();
  auto knn = MakeKnnPredicate();
  Query query;
  query.table = &table_;
  query.predicates = {knn.get(), win.get()};  // Listed worst-first.

  CostCatalog catalog(1800);
  ExecutionStats first;
  ExecutionStats last;
  Plan last_plan;
  for (int episode = 0; episode < 4; ++episode) {
    const PlannedExecution run = PlanAndExecute(query, catalog);
    if (episode == 0) first = run.stats;
    last = run.stats;
    last_plan = run.plan;
  }
  // Learned plan: WIN (selective) before KNN (always passes).
  ASSERT_EQ(last_plan.order.size(), 2u);
  EXPECT_EQ(last_plan.order[0], 1) << last_plan.Explain();
  // The learned selectivity of KNN is ~1, of WIN well below 1.
  EXPECT_GT(last_plan.estimates[0].estimated_selectivity, 0.9);
  EXPECT_LT(last_plan.estimates[1].estimated_selectivity, 0.8);
  // And the learned plan is no more expensive than the first one.
  EXPECT_LE(last.actual_cost_micros, first.actual_cost_micros * 1.05);
}

TEST_F(EngineTest, PlanExplainListsPredicatesInOrder) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  Query query;
  query.table = &table_;
  query.predicates = {prox.get(), win.get()};
  CostCatalog catalog(1800);
  const Plan plan = PlanQuery(query, catalog);
  const std::string text = plan.Explain();
  EXPECT_NE(text.find("Contains"), std::string::npos);
  EXPECT_NE(text.find("InUrbanArea"), std::string::npos);
  EXPECT_NE(text.find("cost"), std::string::npos);
}

TEST_F(EngineTest, EmptyTableExecutesCleanly) {
  Table empty("empty", {"kw1", "kw2", "x", "y"});
  auto prox = MakeProxPredicate();
  Query query;
  query.table = &empty;
  query.predicates = {prox.get()};
  CostCatalog catalog(1800);
  const PlannedExecution run = PlanAndExecute(query, catalog);
  EXPECT_EQ(run.stats.rows_in, 0);
  EXPECT_EQ(run.stats.rows_out, 0);
  EXPECT_DOUBLE_EQ(run.stats.actual_cost_micros, 0.0);
}

TEST_F(EngineTest, AdaptiveExecutionMatchesResultSet) {
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  Query query;
  query.table = &table_;
  query.predicates = {prox.get(), win.get()};

  // Warm the catalog, then compare adaptive execution's result set against
  // the brute-force semantics.
  CostCatalog catalog(1800);
  PlanAndExecute(query, catalog);
  const ExecutionStats adaptive = ExecuteQueryAdaptive(query, catalog);

  int64_t expected_out = 0;
  for (int64_t row = 0; row < table_.num_rows(); ++row) {
    const bool a = prox->Evaluate(table_.Row(row)).passed;
    const bool b = win->Evaluate(table_.Row(row)).passed;
    if (a && b) ++expected_out;
  }
  EXPECT_EQ(adaptive.rows_out, expected_out);
  EXPECT_EQ(adaptive.rows_in, table_.num_rows());
}

TEST_F(EngineTest, BatchedAdaptiveExecutionMatchesAdaptiveResultSet) {
  // The block-batched adaptive executor must produce the same result set as
  // the per-row adaptive executor: pass/fail depends only on the row, so
  // rows_in/rows_out are invariant to how the model probes are batched.
  auto prox = MakeProxPredicate();
  auto win = MakeWinPredicate();
  Query query;
  query.table = &table_;
  query.predicates = {prox.get(), win.get()};

  // Separate catalogs so each executor trains from the same blank state.
  CostCatalog catalog_a(1800);
  PlanAndExecute(query, catalog_a);
  const ExecutionStats adaptive = ExecuteQueryAdaptive(query, catalog_a);

  CostCatalog catalog_b(1800);
  PlanAndExecute(query, catalog_b);
  const ExecutionStats batched =
      ExecuteQueryAdaptiveBatched(query, catalog_b, /*block_rows=*/64);

  EXPECT_EQ(batched.rows_in, adaptive.rows_in);
  EXPECT_EQ(batched.rows_out, adaptive.rows_out);
  // Every row must be evaluated by at least one predicate in both modes.
  int64_t adaptive_evals = 0;
  int64_t batched_evals = 0;
  for (size_t i = 0; i < query.predicates.size(); ++i) {
    adaptive_evals += adaptive.evaluations_per_predicate[i];
    batched_evals += batched.evaluations_per_predicate[i];
  }
  EXPECT_GE(adaptive_evals, adaptive.rows_in);
  EXPECT_GE(batched_evals, batched.rows_in);
}

TEST_F(EngineTest, BatchedAdaptiveHandlesOddBlockSizes) {
  // 300 rows with block_rows=7 exercises the final partial block.
  auto win = MakeWinPredicate();
  Query query;
  query.table = &table_;
  query.predicates = {win.get()};
  CostCatalog catalog(1800);
  const ExecutionStats batched =
      ExecuteQueryAdaptiveBatched(query, catalog, /*block_rows=*/7);
  int64_t expected_out = 0;
  for (int64_t row = 0; row < table_.num_rows(); ++row) {
    if (win->Evaluate(table_.Row(row)).passed) ++expected_out;
  }
  EXPECT_EQ(batched.rows_out, expected_out);
  EXPECT_EQ(batched.evaluations_per_predicate[0], table_.num_rows());
}

TEST_F(EngineTest, CatalogBatchPredictionsMatchScalarCalls) {
  // The batched catalog predictors must be element-wise identical to the
  // scalar entry points on a trained catalog.
  auto win = MakeWinPredicate();
  Query query;
  query.table = &table_;
  query.predicates = {win.get()};
  CostCatalog catalog(1800);
  PlanAndExecute(query, catalog);

  std::vector<Point> points;
  for (int64_t row = 0; row < 50; ++row) {
    points.push_back(win->ModelPointFor(table_.Row(row)));
  }
  std::vector<double> batch_cost(points.size());
  std::vector<double> batch_sel(points.size());
  catalog.PredictCostMicrosBatch(win->udf(), points, batch_cost);
  catalog.PredictSelectivityBatch(win->udf(), points, batch_sel);
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch_cost[i],
                     catalog.PredictCostMicros(win->udf(), points[i]))
        << "row " << i;
    EXPECT_DOUBLE_EQ(batch_sel[i],
                     catalog.PredictSelectivity(win->udf(), points[i]))
        << "row " << i;
  }
}

TEST_F(EngineTest, AdaptiveExecutionNoWorseThanStaticOnTrainedCatalog) {
  // Per-row ordering uses per-row predictions; on a workload where PROX's
  // cost varies by orders of magnitude across rows (Zipf term ranks) it
  // should not lose to the single static order, once models are warm.
  auto prox = MakeProxPredicate();
  auto knn = MakeKnnPredicate();
  Query query;
  query.table = &table_;
  query.predicates = {prox.get(), knn.get()};

  CostCatalog catalog(1800);
  for (int warmup = 0; warmup < 2; ++warmup) PlanAndExecute(query, catalog);

  const PlannedExecution fixed = PlanAndExecute(query, catalog);
  const ExecutionStats adaptive = ExecuteQueryAdaptive(query, catalog);
  EXPECT_LE(adaptive.actual_cost_micros, fixed.stats.actual_cost_micros * 1.10);
  EXPECT_EQ(adaptive.rows_out, fixed.stats.rows_out);
}

TEST_F(EngineTest, AuditShowsBlindFirstPlanAndConvergedSecond) {
  // LEO-style audit: the first (blind) plan's estimates drift enormously
  // once execution feedback lands; a replanned query's estimates are
  // nearly self-consistent.
  auto win = MakeWinPredicate();
  auto prox = MakeProxPredicate();
  Query query;
  query.table = &table_;
  query.predicates = {win.get(), prox.get()};

  CostCatalog catalog(1800);
  const Plan blind_plan = PlanQuery(query, catalog);
  ExecuteQuery(query, blind_plan, &catalog);
  const PlanAudit blind_audit = AuditPlan(query, blind_plan, catalog);
  // Blind estimates were 0 cost / 0.5 selectivity: cost drift is infinite.
  EXPECT_TRUE(std::isinf(blind_audit.max_cost_drift))
      << blind_audit.ToString();

  const Plan warm_plan = PlanQuery(query, catalog);
  ExecuteQuery(query, warm_plan, &catalog);
  const PlanAudit warm_audit = AuditPlan(query, warm_plan, catalog);
  EXPECT_LT(warm_audit.max_cost_drift, 3.0) << warm_audit.ToString();
  ASSERT_EQ(warm_audit.predicates.size(), 2u);
  for (const PredicateAudit& p : warm_audit.predicates) {
    EXPECT_GE(p.CostDrift(), 1.0);
    EXPECT_GE(p.SelectivityDrift(), 1.0);
  }
  const std::string text = warm_audit.ToString();
  EXPECT_NE(text.find("InUrbanArea"), std::string::npos);
  EXPECT_NE(text.find("max cost drift"), std::string::npos);
}

TEST_F(EngineTest, AuditDriftOfIdenticalEstimatesIsOne) {
  PredicateAudit audit;
  audit.estimated_cost_micros = 5.0;
  audit.post_cost_micros = 5.0;
  audit.estimated_selectivity = 0.0;
  audit.post_selectivity = 0.0;
  EXPECT_DOUBLE_EQ(audit.CostDrift(), 1.0);
  EXPECT_DOUBLE_EQ(audit.SelectivityDrift(), 1.0);
  audit.post_cost_micros = 10.0;
  EXPECT_DOUBLE_EQ(audit.CostDrift(), 2.0);
  audit.post_cost_micros = 2.5;
  EXPECT_DOUBLE_EQ(audit.CostDrift(), 2.0);
}

TEST_F(EngineTest, QueryWithNoPredicatesPassesEverything) {
  Query query;
  query.table = &table_;
  CostCatalog catalog(1800);
  const PlannedExecution run = PlanAndExecute(query, catalog);
  EXPECT_EQ(run.stats.rows_out, table_.num_rows());
}

}  // namespace
}  // namespace mlq
