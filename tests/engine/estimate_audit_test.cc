// Unit tests for the LEO-style drift measures on PredicateAudit — in
// particular the degenerate cases: agreeing zero estimates are perfect
// agreement (drift 1.0), never an infinite blow-up or a NaN.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "engine/estimate_audit.h"

namespace mlq {
namespace {

PredicateAudit MakeCostAudit(double estimated, double post) {
  PredicateAudit audit;
  audit.estimated_cost_micros = estimated;
  audit.post_cost_micros = post;
  return audit;
}

PredicateAudit MakeSelectivityAudit(double estimated, double post) {
  PredicateAudit audit;
  audit.estimated_selectivity = estimated;
  audit.post_selectivity = post;
  return audit;
}

TEST(EstimateAuditDriftTest, PerfectAgreementIsOne) {
  EXPECT_DOUBLE_EQ(MakeCostAudit(12.5, 12.5).CostDrift(), 1.0);
  EXPECT_DOUBLE_EQ(MakeSelectivityAudit(0.3, 0.3).SelectivityDrift(), 1.0);
}

TEST(EstimateAuditDriftTest, RatioIsSymmetric) {
  EXPECT_DOUBLE_EQ(MakeCostAudit(10.0, 40.0).CostDrift(), 4.0);
  EXPECT_DOUBLE_EQ(MakeCostAudit(40.0, 10.0).CostDrift(), 4.0);
}

TEST(EstimateAuditDriftTest, BothZeroIsPerfectAgreement) {
  // A predicate whose model has seen no feedback legitimately estimates
  // zero cost; when the post-execution re-estimate is also zero the
  // estimates agree, so the drift must read 1.0 — not infinity and not
  // the NaN of 0/0.
  const PredicateAudit cost = MakeCostAudit(0.0, 0.0);
  EXPECT_DOUBLE_EQ(cost.CostDrift(), 1.0);
  const PredicateAudit sel = MakeSelectivityAudit(0.0, 0.0);
  EXPECT_DOUBLE_EQ(sel.SelectivityDrift(), 1.0);
}

TEST(EstimateAuditDriftTest, NearZeroBothSidesIsPerfectAgreement) {
  // Sub-epsilon magnitudes (denormal noise from averaging samples) count
  // as zero on both sides.
  EXPECT_DOUBLE_EQ(MakeCostAudit(1e-12, -1e-15).CostDrift(), 1.0);
  EXPECT_DOUBLE_EQ(MakeSelectivityAudit(5e-10, 0.0).SelectivityDrift(), 1.0);
}

TEST(EstimateAuditDriftTest, ZeroAgainstNonzeroIsInfinite) {
  EXPECT_TRUE(std::isinf(MakeCostAudit(0.0, 25.0).CostDrift()));
  EXPECT_TRUE(std::isinf(MakeCostAudit(25.0, 0.0).CostDrift()));
  EXPECT_TRUE(std::isinf(MakeSelectivityAudit(0.0, 0.5).SelectivityDrift()));
}

TEST(EstimateAuditDriftTest, NanInputNeverProducesNanDrift) {
  // NaN on either side means a garbled measurement. The drift must never
  // itself be NaN: NaN compares false against everything, so it would
  // silently vanish from max-aggregation (PlanAudit::max_cost_drift) and
  // the model-health gauges. Infinity propagates correctly instead.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double d1 = MakeCostAudit(nan, 10.0).CostDrift();
  const double d2 = MakeCostAudit(10.0, nan).CostDrift();
  const double d3 = MakeCostAudit(nan, nan).CostDrift();
  EXPECT_FALSE(std::isnan(d1));
  EXPECT_FALSE(std::isnan(d2));
  EXPECT_FALSE(std::isnan(d3));
  EXPECT_TRUE(std::isinf(d1));
  EXPECT_TRUE(std::isinf(d2));
  EXPECT_TRUE(std::isinf(d3));
  const double s = MakeSelectivityAudit(nan, 0.4).SelectivityDrift();
  EXPECT_FALSE(std::isnan(s));
}

TEST(EstimateAuditDriftTest, NegativeCostIsInfinite) {
  // Negative costs are nonsense measurements; surfacing them as infinite
  // drift (matching the pre-existing <= 0 contract) keeps them visible.
  EXPECT_TRUE(std::isinf(MakeCostAudit(-5.0, 5.0).CostDrift()));
}

}  // namespace
}  // namespace mlq
