// CatalogGovernor tests: the fleet-level budget controller must conserve
// the global byte pool, shrink cold models monotonically to the floor,
// keep tenants inside their quotas under skewed traffic, round-trip
// evicted models bit-exactly through the snapshot store, and stay clean
// while serving threads hammer a catalog it is re-budgeting (this binary
// is a TSan tier-2 target).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/catalog_governor.h"
#include "engine/cost_catalog.h"
#include "engine/maintenance_scheduler.h"
#include "eval/experiment_setup.h"
#include "obs/telemetry.h"

namespace mlq {
namespace {

std::vector<std::unique_ptr<RenamedUdf>> MakeFleet(int n, uint64_t seed) {
  std::vector<std::unique_ptr<RenamedUdf>> udfs;
  udfs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    udfs.push_back(std::make_unique<RenamedUdf>(
        "gov-" + std::to_string(i),
        MakePaperSyntheticUdf(/*num_peaks=*/10, /*noise_probability=*/0.0,
                              seed + static_cast<uint64_t>(i))));
  }
  return udfs;
}

// `ops` predicts (plus an execution feedback every 4th) against one model.
void Drive(CostCatalog& catalog, CostedUdf* udf,
           const std::vector<Point>& points, int ops) {
  for (int i = 0; i < ops; ++i) {
    const Point& p = points[static_cast<size_t>(i) % points.size()];
    catalog.PredictCostMicros(udf, p);
    if (i % 4 == 0) {
      catalog.RecordExecution(udf, p, udf->Execute(p), (i % 3) == 0);
    }
  }
}

int64_t BudgetOf(const std::vector<obs::ModelHealth>& health,
                 const std::string& model) {
  for (const obs::ModelHealth& h : health) {
    if (h.model == model) return h.budget_bytes;
  }
  return -1;
}

int64_t TotalBudget(const std::vector<obs::ModelHealth>& health) {
  int64_t total = 0;
  for (const obs::ModelHealth& h : health) total += h.budget_bytes;
  return total;
}

TEST(CatalogGovernorTest, ConservesGlobalBudgetUnderSkew) {
  auto udfs = MakeFleet(8, 11);
  CostCatalog catalog(1800);
  for (auto& u : udfs) catalog.For(u.get());
  const auto points = MakePaperWorkload(
      udfs[0]->model_space(), QueryDistributionKind::kUniform, 128, 7);

  // Entries start at 3 * 1800 = 5400 bytes each — 43200 in total, more
  // than double the governed pool, so the first rebalance must shrink.
  GovernorPolicy policy;
  policy.global_budget_bytes = 20000;
  policy.min_change_bytes = 1;
  CatalogGovernor governor(&catalog, policy);

  for (int round = 0; round < 6; ++round) {
    for (size_t i = 0; i < udfs.size(); ++i) {
      Drive(catalog, udfs[i].get(), points, 512 >> i);
    }
    governor.RebalanceNow();
    const auto health = catalog.ReadModelHealth();
    EXPECT_LE(TotalBudget(health), policy.global_budget_bytes)
        << "round " << round;
  }

  // Skew must show up in the allocation: the hottest model out-budgets the
  // coldest.
  const auto health = catalog.ReadModelHealth();
  EXPECT_GT(BudgetOf(health, "gov-0"), BudgetOf(health, "gov-7"));
  EXPECT_GE(governor.stats().rebalances, 6);
}

TEST(CatalogGovernorTest, ShrinksZeroTrafficModelsMonotonicallyToFloor) {
  auto udfs = MakeFleet(4, 23);
  CostCatalog catalog(1800);
  for (auto& u : udfs) catalog.For(u.get());
  const auto points = MakePaperWorkload(
      udfs[0]->model_space(), QueryDistributionKind::kUniform, 128, 9);

  GovernorPolicy policy;
  policy.global_budget_bytes = 12000;
  policy.min_change_bytes = 1;
  CatalogGovernor governor(&catalog, policy);

  int64_t prev = catalog.ReadModelHealth()[0].budget_bytes;
  ASSERT_GT(prev, policy.min_entry_bytes);
  int64_t cold = -1;
  for (int round = 0; round < 8; ++round) {
    Drive(catalog, udfs[0].get(), points, 512);  // Only gov-0 sees traffic.
    governor.RebalanceNow();
    cold = BudgetOf(catalog.ReadModelHealth(), "gov-3");
    ASSERT_GE(cold, 0);
    EXPECT_LE(cold, prev) << "round " << round;
    EXPECT_GE(cold, policy.min_entry_bytes);
    prev = cold;
  }
  // Fully converged: a zero-traffic model sits exactly on the floor.
  EXPECT_EQ(cold, policy.min_entry_bytes);
}

TEST(CatalogGovernorTest, EnforcesTenantQuotaUnderSkew) {
  auto udfs = MakeFleet(6, 37);
  CostCatalog catalog(1800);
  for (size_t i = 0; i < udfs.size(); ++i) {
    catalog.For(udfs[i].get(), i < 3 ? "alpha" : "beta");
  }
  const auto points = MakePaperWorkload(
      udfs[0]->model_space(), QueryDistributionKind::kUniform, 128, 13);

  // All the traffic lands on alpha, whose quota is far below its demand-
  // proportional share of the pool.
  GovernorPolicy policy;
  policy.global_budget_bytes = 30000;
  policy.tenant_quota_bytes["alpha"] = 6000;
  policy.min_change_bytes = 1;
  policy.max_step_fraction = 1.0;
  CatalogGovernor governor(&catalog, policy);

  for (int round = 0; round < 4; ++round) {
    for (size_t i = 0; i < 3; ++i) Drive(catalog, udfs[i].get(), points, 400);
    governor.RebalanceNow();
    int64_t alpha = 0;
    for (const obs::ModelHealth& h : catalog.ReadModelHealth()) {
      if (h.tenant == "alpha") alpha += h.budget_bytes;
    }
    EXPECT_LE(alpha, policy.tenant_quota_bytes["alpha"]) << "round " << round;
  }
  EXPECT_LE(TotalBudget(catalog.ReadModelHealth()),
            policy.global_budget_bytes);
}

TEST(CatalogGovernorTest, EvictReloadRoundTripsPredictionsBitExactly) {
  auto udfs = MakeFleet(1, 53);
  CostedUdf* udf = udfs[0].get();
  CostCatalog catalog(1800);
  catalog.For(udf, "solo");
  const auto points = MakePaperWorkload(
      udf->model_space(), QueryDistributionKind::kUniform, 256, 17);
  Drive(catalog, udf, points, 2000);

  std::vector<double> cost_before;
  std::vector<double> sel_before;
  for (const Point& p : points) {
    cost_before.push_back(catalog.PredictCostMicros(udf, p));
    sel_before.push_back(catalog.PredictSelectivity(udf, p));
  }
  const int64_t traffic_before = catalog.ReadModelHealth()[0].traffic;

  ASSERT_TRUE(catalog.EvictEntry(udf));
  EXPECT_EQ(catalog.evicted_count(), 1);
  EXPECT_GT(catalog.evicted_snapshot_bytes(), 0);
  EXPECT_EQ(catalog.Find(udf), nullptr);
  EXPECT_FALSE(catalog.EvictEntry(udf));  // Already gone.

  // The next predict lazily reloads the snapshot; every prediction — cost
  // and selectivity, across the whole probe set — must come back bit-
  // identical, and the entry's identity (tenant, traffic) must survive.
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(catalog.PredictCostMicros(udf, points[i]), cost_before[i]);
    EXPECT_EQ(catalog.PredictSelectivity(udf, points[i]), sel_before[i]);
  }
  EXPECT_EQ(catalog.evicted_count(), 0);
  const auto health = catalog.ReadModelHealth();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].tenant, "solo");
  EXPECT_GT(health[0].traffic, traffic_before);
}

TEST(CatalogGovernorTest, AdmissionControlEvictsColdestAndReloadsOnDemand) {
  auto udfs = MakeFleet(6, 71);
  CostCatalog catalog(1800);
  for (auto& u : udfs) catalog.For(u.get());
  const auto points = MakePaperWorkload(
      udfs[0]->model_space(), QueryDistributionKind::kUniform, 128, 19);
  for (size_t i = 0; i < udfs.size(); ++i) {
    Drive(catalog, udfs[i].get(), points, 600 >> i);
  }

  GovernorPolicy policy;
  policy.global_budget_bytes = 20000;
  policy.max_resident_models = 3;
  CatalogGovernor governor(&catalog, policy);
  governor.RebalanceNow();

  EXPECT_EQ(catalog.evicted_count(), 3);
  const auto health = catalog.ReadModelHealth();
  ASSERT_EQ(health.size(), 3u);
  // LRU-by-traffic: the hot half stays, the cold half went to the store.
  for (const obs::ModelHealth& h : health) {
    EXPECT_TRUE(h.model == "gov-0" || h.model == "gov-1" ||
                h.model == "gov-2")
        << h.model;
  }
  // Touching an evicted model brings it straight back.
  catalog.PredictCostMicros(udfs[5].get(), points[0]);
  EXPECT_EQ(catalog.evicted_count(), 2);
  EXPECT_EQ(catalog.ReadModelHealth().size(), 4u);
}

TEST(CatalogGovernorTest, GovernedServingChurnIsThreadSafe) {
  auto udfs = MakeFleet(8, 97);
  CostCatalog catalog(1800, CatalogConcurrency::kGlobalMutex);
  for (auto& u : udfs) catalog.For(u.get());
  const auto points = MakePaperWorkload(
      udfs[0]->model_space(), QueryDistributionKind::kUniform, 128, 29);

  GovernorPolicy policy;
  policy.global_budget_bytes = 24000;
  policy.min_change_bytes = 1;
  // Rebalance every few serving ticks so re-budgeting genuinely overlaps
  // the predict/observe traffic. Eviction stays off: serving threads hold
  // no quiesce guarantee (see CostCatalog::EvictEntry's contract).
  policy.ticks_per_rebalance = 2;
  CatalogGovernor governor(&catalog, policy);
  MaintenanceScheduler scheduler(&catalog, MaintenancePolicy{});
  scheduler.SetGovernor(&governor);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const size_t m = static_cast<size_t>(i * 7 + t) % udfs.size();
        const Point& p = points[static_cast<size_t>(i + t) % points.size()];
        catalog.PredictCostMicros(udfs[m].get(), p);
        if (i % 4 == t) {
          catalog.RecordExecution(udfs[m].get(), p, udfs[m]->Execute(p),
                                  (i % 3) == 0);
        }
        if (i % 64 == 0) catalog.MaintenanceTick();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  scheduler.SetGovernor(nullptr);

  EXPECT_GT(governor.stats().rebalances, 0);
  EXPECT_LE(TotalBudget(catalog.ReadModelHealth()),
            policy.global_budget_bytes);
  // The catalog still serves sanely after the churn.
  for (auto& u : udfs) {
    const double pred = catalog.PredictCostMicros(u.get(), points[0]);
    EXPECT_GE(pred, 0.0);
    EXPECT_TRUE(std::isfinite(pred));
  }
}

}  // namespace
}  // namespace mlq
