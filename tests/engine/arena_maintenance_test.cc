// Catalog-level tests for the shared arena and the batched feedback path:
// RecordExecutionBatch must be indistinguishable from a RecordExecution
// loop, CompactArenas must reclaim physical slab memory in every
// concurrency mode without moving a single prediction, and
// PartitionedCostModel sub-models built through MakeSharedArenaMlqFactory
// must reuse the catalog slab instead of growing private arenas.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/cost_catalog.h"
#include "engine/executor.h"
#include "engine/table.h"
#include "engine/udf_predicate.h"
#include "eval/experiment_setup.h"
#include "model/partitioned_model.h"

namespace mlq {
namespace {

class ArenaMaintenanceTest : public ::testing::Test {
 protected:
  ArenaMaintenanceTest() : suite_(MakeRealUdfSuite(SubstrateScale::kSmall)) {}

  // A deterministic uniform point inside `box`.
  static Point UniformIn(const Box& box, Rng& rng) {
    Point p(box.dims());
    for (int d = 0; d < box.dims(); ++d) {
      p[d] = rng.Uniform(box.lo()[d], box.hi()[d]);
    }
    return p;
  }

  // A deterministic stream of execution records over `udf`'s model space.
  std::vector<CostCatalog::ExecutionRecord> MakeRecords(const CostedUdf* udf,
                                                        int n, uint64_t seed) {
    Rng rng(seed);
    const Box space = udf->model_space();
    std::vector<CostCatalog::ExecutionRecord> records;
    records.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      CostCatalog::ExecutionRecord r;
      r.model_point = UniformIn(space, rng);
      r.cost.cpu_work = 100.0 + r.model_point[0] * r.model_point[1] / 40.0;
      r.cost.io_pages = std::floor(r.model_point[0] / 50.0);
      r.passed = rng.NextDouble() < 0.3;
      records.push_back(r);
    }
    return records;
  }

  std::vector<Point> ProbePoints(const CostedUdf* udf, int n, uint64_t seed) {
    Rng rng(seed);
    const Box space = udf->model_space();
    std::vector<Point> probes;
    for (int i = 0; i < n; ++i) probes.push_back(UniformIn(space, rng));
    return probes;
  }

  RealUdfSuite suite_;
};

// Batch ≡ loop, in every concurrency mode: same cost and selectivity
// predictions at every probe.
TEST_F(ArenaMaintenanceTest, RecordExecutionBatchMatchesLoop) {
  CostedUdf* const win_udf = suite_.Find("WIN");
  const std::vector<CostCatalog::ExecutionRecord> records =
      MakeRecords(win_udf, 3000, 77);
  const std::vector<Point> probes = ProbePoints(win_udf, 300, 5);
  for (const CatalogConcurrency mode :
       {CatalogConcurrency::kSingleThread, CatalogConcurrency::kGlobalMutex,
        CatalogConcurrency::kSharded}) {
    CostCatalog scalar_catalog(1800, mode, /*num_shards=*/1);
    CostCatalog batched_catalog(1800, mode, /*num_shards=*/1);
    CostedUdf* win = suite_.Find("WIN");
    for (const CostCatalog::ExecutionRecord& r : records) {
      scalar_catalog.RecordExecution(win, r.model_point, r.cost, r.passed);
    }
    // Deliver the same stream in uneven chunks.
    for (size_t begin = 0; begin < records.size(); begin += 97) {
      const size_t end = std::min(records.size(), begin + 97);
      batched_catalog.RecordExecutionBatch(
          win, std::span<const CostCatalog::ExecutionRecord>(
                   records.data() + begin, end - begin));
    }
    scalar_catalog.FlushFeedback();
    batched_catalog.FlushFeedback();
    for (const Point& p : probes) {
      ASSERT_EQ(scalar_catalog.PredictCostMicros(win, p),
                batched_catalog.PredictCostMicros(win, p))
          << "mode " << static_cast<int>(mode);
      ASSERT_EQ(scalar_catalog.PredictSelectivity(win, p),
                batched_catalog.PredictSelectivity(win, p))
          << "mode " << static_cast<int>(mode);
    }
  }
}

// The maintenance epoch: churn several UDFs' models (their trees compress
// constantly at the paper's 1.8 KB budget), then CompactArenas. Physical
// slab bytes must drop to the live forest's footprint and every prediction
// must survive the move bit-for-bit.
TEST_F(ArenaMaintenanceTest, CompactArenasReclaimsAndPreservesPredictions) {
  for (const CatalogConcurrency mode :
       {CatalogConcurrency::kSingleThread, CatalogConcurrency::kGlobalMutex,
        CatalogConcurrency::kSharded}) {
    CostCatalog catalog(1800, mode, /*num_shards=*/2);
    CostedUdf* win = suite_.Find("WIN");
    CostedUdf* range = suite_.Find("RANGE");
    for (const CostCatalog::ExecutionRecord& r : MakeRecords(win, 4000, 11)) {
      catalog.RecordExecution(win, r.model_point, r.cost, r.passed);
    }
    for (const CostCatalog::ExecutionRecord& r :
         MakeRecords(range, 4000, 12)) {
      catalog.RecordExecution(range, r.model_point, r.cost, r.passed);
    }
    catalog.FlushFeedback();

    const std::vector<Point> win_probes = ProbePoints(win, 300, 6);
    const std::vector<Point> range_probes = ProbePoints(range, 300, 7);
    std::vector<double> cost_before;
    std::vector<double> sel_before;
    for (const Point& p : win_probes) {
      cost_before.push_back(catalog.PredictCostMicros(win, p));
    }
    for (const Point& p : range_probes) {
      sel_before.push_back(catalog.PredictSelectivity(range, p));
    }

    const int64_t physical_before = catalog.ArenaPhysicalBytes();
    const CostCatalog::ArenaMaintenanceStats stats = catalog.CompactArenas();
    // WIN and RANGE have different dimensionalities, so the catalog holds
    // (and compacts) one arena per fanout.
    EXPECT_EQ(stats.arenas_compacted, 2) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(stats.physical_bytes_before, physical_before);
    EXPECT_EQ(stats.physical_bytes_after, catalog.ArenaPhysicalBytes());
    EXPECT_GE(stats.bytes_reclaimed, 0);
    EXPECT_GT(stats.blocks_moved, 0);
    EXPECT_LE(catalog.ArenaPhysicalBytes(), physical_before);

    for (size_t i = 0; i < win_probes.size(); ++i) {
      ASSERT_EQ(catalog.PredictCostMicros(win, win_probes[i]), cost_before[i])
          << "mode " << static_cast<int>(mode);
    }
    for (size_t i = 0; i < range_probes.size(); ++i) {
      ASSERT_EQ(catalog.PredictSelectivity(range, range_probes[i]),
                sel_before[i])
          << "mode " << static_cast<int>(mode);
    }
    // The catalog keeps learning after the epoch.
    for (const CostCatalog::ExecutionRecord& r : MakeRecords(win, 500, 13)) {
      catalog.RecordExecution(win, r.model_point, r.cost, r.passed);
    }
    catalog.FlushFeedback();
  }
}

// Compaction reclaims measurable memory after a real inflate-then-shrink
// cycle: models from a big partitioned family are dropped, the slab
// high-water stays, Compact returns it.
TEST_F(ArenaMaintenanceTest, PartitionedSubModelsReuseCatalogSlab) {
  CostCatalog catalog(1800);
  const Box space = Box::Cube(2, 0.0, 1000.0);
  std::shared_ptr<SharedNodeArena> arena = catalog.ArenaForDims(2);

  MlqConfig base;
  base.strategy = InsertionStrategy::kLazy;
  base.max_depth = 6;
  base.beta = 1;

  Rng rng(31);
  auto feed = [&rng](PartitionedCostModel& model, int keys, int per_key) {
    for (int k = 0; k < keys; ++k) {
      for (int i = 0; i < per_key; ++i) {
        Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
        model.Observe(k, p, 100.0 + p[0] + p[1]);
      }
    }
  };

  // Inflate: a wide partitioned family on the catalog arena.
  {
    PartitionedCostModel wide(
        MakeSharedArenaMlqFactory(space, base, arena),
        /*max_partitions=*/63, /*total_budget_bytes=*/64 * 1800);
    feed(wide, 64, 200);
    EXPECT_EQ(wide.num_partitions(), 63);
    EXPECT_GT(arena->live_count(), 0);
  }
  // The family is gone but its slab high-water is not.
  EXPECT_EQ(arena->live_count(), 0);
  const int64_t inflated = arena->PhysicalCapacityBytes();
  ASSERT_GT(inflated, 0);

  const SharedNodeArena::CompactionStats stats = arena->Compact();
  EXPECT_EQ(stats.bytes_reclaimed, inflated);
  EXPECT_EQ(arena->PhysicalCapacityBytes(), 0);

  // Physical-slab reuse: a fresh family the same size must not exceed the
  // first one's footprint — every sub-model draws from the shared slabs,
  // none spins up a private arena.
  PartitionedCostModel second(
      MakeSharedArenaMlqFactory(space, base, arena),
      /*max_partitions=*/63, /*total_budget_bytes=*/64 * 1800);
  feed(second, 64, 200);
  EXPECT_LE(arena->PhysicalCapacityBytes(), inflated);
  EXPECT_GT(arena->live_count(), 0);
}

// End-to-end: the batched adaptive executor (probe blocks + block-flushed
// RecordExecutionBatch) must return exactly the per-row adaptive
// executor's results row-for-row when driven on identical fresh catalogs.
TEST_F(ArenaMaintenanceTest, BatchedAdaptiveExecutorMatchesPerRow) {
  Table table("places", {"x", "y"});
  Rng rng(9);
  for (int i = 0; i < 180; ++i) {
    table.AddRow(std::vector<double>{rng.Uniform(0.0, 1000.0),
                                     rng.Uniform(0.0, 1000.0)});
  }
  auto make_query = [&table](RealUdfSuite& suite,
                             std::vector<std::unique_ptr<UdfPredicate>>* keep)
      -> Query {
    keep->push_back(std::make_unique<UdfPredicate>(
        "InUrbanArea", suite.Find("WIN"),
        std::vector<int>{table.ColumnIndex("x"), table.ColumnIndex("y"), -1,
                         -1},
        Point{0.0, 0.0, 120.0, 120.0}, /*min_result_count=*/5));
    keep->push_back(std::make_unique<UdfPredicate>(
        "NearSomething", suite.Find("RANGE"),
        std::vector<int>{table.ColumnIndex("x"), table.ColumnIndex("y"), -1},
        Point{0.0, 0.0, 150.0}, /*min_result_count=*/3));
    Query query;
    query.table = &table;
    query.predicates = {(*keep)[0].get(), (*keep)[1].get()};
    return query;
  };

  std::vector<std::unique_ptr<UdfPredicate>> keep_a;
  RealUdfSuite suite_a = MakeRealUdfSuite(SubstrateScale::kSmall);
  Query query_a = make_query(suite_a, &keep_a);
  CostCatalog catalog_a(1800);
  const ExecutionStats per_row = ExecuteQueryAdaptive(query_a, catalog_a);

  std::vector<std::unique_ptr<UdfPredicate>> keep_b;
  RealUdfSuite suite_b = MakeRealUdfSuite(SubstrateScale::kSmall);
  Query query_b = make_query(suite_b, &keep_b);
  CostCatalog catalog_b(1800);
  const ExecutionStats batched =
      ExecuteQueryAdaptiveBatched(query_b, catalog_b, /*block_rows=*/32);

  EXPECT_EQ(batched.rows_in, per_row.rows_in);
  EXPECT_EQ(batched.rows_out, per_row.rows_out);
}

}  // namespace
}  // namespace mlq
