// Differential validation of the sharded serving layer against the
// single-threaded reference model.
//
// (1) With one shard, ShardedCostModel is the same tree fed the same
//     insert sequence, so every prediction must be bit-identical to the
//     bare MlqModel's under any single-threaded interleaving of
//     Observe/Predict/Flush.
// (2) With N shards, each shard is an independent tree under budget/N, so
//     equality cannot be expected — prediction quality is validated
//     instead: aggregate MAE on a held-out probe set must stay within a
//     fixed factor of the single-tree model's.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/mlq_model.h"
#include "model/sharded_model.h"

namespace mlq {
namespace {

// A smooth deterministic 2-d cost surface: cheap to evaluate, non-trivial
// structure for the trees to learn.
double Surface(const Point& p) {
  const double x = p[0] / 1000.0;
  const double y = p[1] / 1000.0;
  return 1000.0 * (1.0 + std::sin(3.0 * x) * std::cos(2.0 * y)) +
         500.0 * x * y;
}

MlqConfig DiffConfig(int64_t budget) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kLazy;
  config.max_depth = 6;
  config.beta = 1;
  config.memory_limit_bytes = budget;
  return config;
}

TEST(ShardedDifferentialTest, OneShardIsBitIdenticalToBareModel) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  const MlqConfig config = DiffConfig(/*budget=*/1800);

  MlqModel reference(space, config);
  ShardedModelOptions options;
  options.num_shards = 1;
  options.drain_on_predict = true;
  // Ample queue: no observation may be dropped, or the trees diverge.
  options.queue_capacity = 4096;
  ShardedCostModel sharded(space, config, options);

  Rng rng(1234);
  int64_t checked = 0;
  for (int i = 0; i < 3000; ++i) {
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    const double dice = rng.NextDouble();
    if (dice < 0.55) {
      const double value = Surface(p) + rng.Gaussian(0.0, 25.0);
      reference.Observe(p, value);
      sharded.Observe(p, value);
    } else if (dice < 0.95) {
      const Prediction a = reference.PredictDetailed(p);
      const Prediction b = sharded.PredictDetailed(p);
      // Bit-identical: same tree, same insert order, same arithmetic.
      ASSERT_EQ(a.value, b.value) << "at op " << i << " point " << p.ToString();
      ASSERT_EQ(a.stddev, b.stddev);
      ASSERT_EQ(a.depth, b.depth);
      ASSERT_EQ(a.count, b.count);
      ASSERT_EQ(a.reliable, b.reliable);
      ++checked;
    } else {
      sharded.Flush();  // No-op for the reference; must not perturb.
    }
  }
  sharded.Flush();
  EXPECT_GT(checked, 500);
  EXPECT_EQ(sharded.stats().observations_dropped, 0);
  // Final tree shapes agree too.
  EXPECT_EQ(sharded.shard_model(0).tree().num_nodes(),
            reference.tree().num_nodes());
  EXPECT_EQ(sharded.MemoryBytes(), reference.MemoryBytes());
}

TEST(ShardedDifferentialTest, MultiShardMaeStaysWithinFactorOfSingleTree) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  // Generous budget so each of the 4 shards still gets a paper-sized tree.
  const int64_t budget = 8192;

  MlqModel reference(space, DiffConfig(budget));
  ShardedModelOptions options;
  options.num_shards = 4;
  options.queue_capacity = 8192;
  ShardedCostModel sharded(space, DiffConfig(budget), options);

  // Same fixed-seed training workload into both.
  Rng rng(777);
  for (int i = 0; i < 6000; ++i) {
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    const double value = Surface(p);
    reference.Observe(p, value);
    sharded.Observe(p, value);
  }
  sharded.Flush();
  ASSERT_EQ(sharded.stats().observations_dropped, 0);

  // Held-out probe set from an independent stream.
  Rng probe_rng(778);
  double mae_reference = 0.0;
  double mae_sharded = 0.0;
  constexpr int kProbes = 2000;
  for (int i = 0; i < kProbes; ++i) {
    Point p{probe_rng.Uniform(0.0, 1000.0), probe_rng.Uniform(0.0, 1000.0)};
    const double truth = Surface(p);
    mae_reference += std::abs(reference.Predict(p) - truth);
    mae_sharded += std::abs(sharded.Predict(p) - truth);
  }
  mae_reference /= kProbes;
  mae_sharded /= kProbes;

  // The sharded model must have actually learned the surface (mean value
  // is ~1000, so MAE far below that), and must stay within a fixed factor
  // of the single tree despite the budget split.
  EXPECT_LT(mae_sharded, 500.0);
  EXPECT_LT(mae_sharded, 3.0 * mae_reference + 1e-9)
      << "reference MAE " << mae_reference << ", sharded MAE " << mae_sharded;
}

}  // namespace
}  // namespace mlq
