// Differential validation of the batched feedback pipeline.
//
// The contract of ObserveBatch (CostModel through ShardedCostModel down to
// MemoryLimitedQuadtree::InsertBatch) is that batching amortizes overhead
// WITHOUT changing semantics: feeding a model one batch must leave it in
// exactly the state of a scalar Observe loop over the same sequence. For
// MLQ models "exactly" means bit-identical — same serialized tree bytes,
// same predictions — for both insertion strategies and any chunking.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/trace.h"
#include "model/concurrent_model.h"
#include "model/global_average_model.h"
#include "model/mlq_model.h"
#include "model/online_grid_model.h"
#include "model/serialization.h"
#include "model/sharded_model.h"

namespace mlq {
namespace {

double Surface(const Point& p) {
  const double x = p[0] / 1000.0;
  const double y = p[1] / 1000.0;
  return 1000.0 * (1.0 + std::sin(3.0 * x) * std::cos(2.0 * y)) +
         500.0 * x * y;
}

MlqConfig DiffConfig(InsertionStrategy strategy) {
  MlqConfig config;
  config.strategy = strategy;
  config.max_depth = 6;
  config.beta = 1;
  // Small enough that the 4000-observation workload forces many
  // compression passes: the differential covers eviction, not just growth.
  config.memory_limit_bytes = 1800;
  return config;
}

std::vector<Observation> MakeWorkload(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Observation> workload;
  workload.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    workload.push_back({p, Surface(p) + rng.Gaussian(0.0, 25.0)});
  }
  return workload;
}

std::vector<Point> ProbeGrid() {
  std::vector<Point> probes;
  for (int i = 0; i <= 20; ++i) {
    for (int j = 0; j <= 20; ++j) {
      probes.push_back(Point{i * 50.0, j * 50.0});
    }
  }
  return probes;
}

// Feeds `workload` to `model` in chunks of `chunk` via ObserveBatch.
void FeedBatched(CostModel& model, const std::vector<Observation>& workload,
                 size_t chunk) {
  for (size_t begin = 0; begin < workload.size(); begin += chunk) {
    const size_t end = std::min(workload.size(), begin + chunk);
    model.ObserveBatch(
        std::span<const Observation>(workload.data() + begin, end - begin));
  }
}

void ExpectIdenticalPredictions(const CostModel& a, const CostModel& b) {
  for (const Point& p : ProbeGrid()) {
    const Prediction pa = a.PredictDetailed(p);
    const Prediction pb = b.PredictDetailed(p);
    ASSERT_EQ(pa.value, pb.value) << "at " << p.ToString();
    ASSERT_EQ(pa.stddev, pb.stddev);
    ASSERT_EQ(pa.depth, pb.depth);
    ASSERT_EQ(pa.count, pb.count);
    ASSERT_EQ(pa.reliable, pb.reliable);
  }
}

class ObserveBatchDifferentialTest
    : public ::testing::TestWithParam<InsertionStrategy> {};

// The core tentpole guarantee: for MLQ-E and MLQ-L, batch ≡ scalar down to
// the serialized tree bytes, at every chunking.
TEST_P(ObserveBatchDifferentialTest, BatchEqualsScalarBitIdentical) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  const MlqConfig config = DiffConfig(GetParam());
  const std::vector<Observation> workload = MakeWorkload(4000, 99);

  MlqModel reference(space, config);
  for (const Observation& o : workload) reference.Observe(o.point, o.value);
  ASSERT_GT(reference.tree().counters().compressions, 0);
  const std::vector<uint8_t> reference_bytes =
      SerializeQuadtree(reference.tree());

  for (const size_t chunk : {size_t{1}, size_t{7}, size_t{64},
                             workload.size()}) {
    MlqModel batched(space, config);
    FeedBatched(batched, workload, chunk);
    EXPECT_EQ(SerializeQuadtree(batched.tree()), reference_bytes)
        << "chunk=" << chunk;
    ExpectIdenticalPredictions(reference, batched);
    std::string invariant_error;
    EXPECT_TRUE(batched.tree().CheckInvariants(&invariant_error))
        << invariant_error;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, ObserveBatchDifferentialTest,
                         ::testing::Values(InsertionStrategy::kEager,
                                           InsertionStrategy::kLazy));

// Non-MLQ models never override ObserveBatch; the CostModel default loop
// must make batch and scalar feedback indistinguishable for them too.
TEST(ObserveBatchDefaultLoop, NonMlqModelsUnmodified) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  const std::vector<Observation> workload = MakeWorkload(1500, 7);

  GlobalAverageModel avg_scalar;
  GlobalAverageModel avg_batched;
  OnlineGridModel grid_scalar(space, 4096);
  OnlineGridModel grid_batched(space, 4096);

  for (const Observation& o : workload) {
    avg_scalar.Observe(o.point, o.value);
    grid_scalar.Observe(o.point, o.value);
  }
  FeedBatched(avg_batched, workload, 64);
  FeedBatched(grid_batched, workload, 64);

  ExpectIdenticalPredictions(avg_scalar, avg_batched);
  ExpectIdenticalPredictions(grid_scalar, grid_batched);
}

// The mutex decorator forwards a batch under one lock acquisition; state
// must match the bare model's exactly.
TEST(ObserveBatchDecorators, ConcurrentCostModelForwards) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  const MlqConfig config = DiffConfig(InsertionStrategy::kLazy);
  const std::vector<Observation> workload = MakeWorkload(3000, 21);

  MlqModel reference(space, config);
  for (const Observation& o : workload) reference.Observe(o.point, o.value);

  ConcurrentCostModel locked(std::make_unique<MlqModel>(space, config));
  FeedBatched(locked, workload, 64);

  ExpectIdenticalPredictions(reference, locked);
}

// One-shard sharded model: ObserveBatch goes through the per-shard queue's
// PushBatch and the drain path's tree InsertBatch, yet the single-threaded
// insert sequence — and so the tree — is unchanged.
TEST(ObserveBatchDecorators, OneShardShardedMatchesBareModel) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  const MlqConfig config = DiffConfig(InsertionStrategy::kLazy);
  const std::vector<Observation> workload = MakeWorkload(3000, 35);

  MlqModel reference(space, config);
  for (const Observation& o : workload) reference.Observe(o.point, o.value);

  ShardedModelOptions options;
  options.num_shards = 1;
  options.queue_capacity = 8192;  // No drops, or the trees diverge.
  ShardedCostModel sharded(space, config, options);
  FeedBatched(sharded, workload, 64);
  sharded.Flush();

  EXPECT_EQ(sharded.stats().observations_dropped, 0);
  ExpectIdenticalPredictions(reference, sharded);
  EXPECT_EQ(SerializeQuadtree(sharded.shard_model(0).tree()),
            SerializeQuadtree(reference.tree()));
}

// The eval drivers ride the same pipeline: a batched replay must build the
// same tree as the scalar replay, and IngestTrace the same tree as an
// Observe loop.
TEST(ObserveBatchEvalDrivers, ReplayAndIngestBuildTheSameTree) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  const MlqConfig config = DiffConfig(InsertionStrategy::kLazy);
  const std::vector<Observation> workload = MakeWorkload(2500, 11);

  std::vector<TraceRecord> records;
  records.reserve(workload.size());
  for (const Observation& o : workload) {
    records.push_back(TraceRecord{o.point, o.value, /*io_cost=*/0.0});
  }

  MlqModel scalar_replayed(space, config);
  const double scalar_nae =
      ReplayTrace(scalar_replayed, records, CostKind::kCpu);
  MlqModel batch_replayed(space, config);
  const double batched_nae =
      ReplayTraceBatched(batch_replayed, records, CostKind::kCpu, 64);
  EXPECT_EQ(SerializeQuadtree(batch_replayed.tree()),
            SerializeQuadtree(scalar_replayed.tree()));
  // NAEs differ (within-block predictions precede the block's feedback)
  // but both replays must have learned the surface.
  EXPECT_LT(scalar_nae, 1.0);
  EXPECT_LT(batched_nae, 1.0);

  MlqModel ingested(space, config);
  IngestTrace(ingested, records, CostKind::kCpu, /*chunk_size=*/128);
  EXPECT_EQ(SerializeQuadtree(ingested.tree()),
            SerializeQuadtree(scalar_replayed.tree()));
}

}  // namespace
}  // namespace mlq
