#include "model/concurrent_model.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"

namespace mlq {
namespace {

TEST(ConcurrentModelTest, DelegatesEverything) {
  const Box space = Box::Cube(2, 0.0, 100.0);
  ConcurrentCostModel model(std::make_unique<MlqModel>(
      space, MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu)));
  EXPECT_EQ(model.name(), "MLQ-E");
  EXPECT_TRUE(model.IsSelfTuning());
  model.Observe(Point{10.0, 10.0}, 42.0);
  EXPECT_DOUBLE_EQ(model.Predict(Point{10.0, 10.0}), 42.0);
  EXPECT_GT(model.MemoryBytes(), 0);
  EXPECT_EQ(model.update_breakdown().insertions, 1);
}

TEST(ConcurrentModelTest, ParallelFeedbackKeepsInvariants) {
  // Hammer one model from several threads; afterwards the tree must be
  // structurally sound and must have absorbed every observation.
  const Box space = Box::Cube(3, 0.0, 1000.0);
  auto inner = std::make_unique<MlqModel>(
      space, MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));
  MlqModel* raw = inner.get();
  ConcurrentCostModel model(std::move(inner));

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::atomic<int64_t> predictions{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&model, &predictions, t]() {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0),
                rng.Uniform(0.0, 1000.0)};
        if (i % 3 == 0) {
          const double v = model.Predict(p);
          if (v >= 0.0) predictions.fetch_add(1, std::memory_order_relaxed);
        } else {
          model.Observe(p, rng.Uniform(0.0, 10000.0));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // i % 3 == 0 hits ceil(kOpsPerThread / 3) = 667 of 2000 iterations.
  const int kPredictionsPerThread = (kOpsPerThread + 2) / 3;
  EXPECT_EQ(raw->update_breakdown().insertions,
            kThreads * (kOpsPerThread - kPredictionsPerThread));
  EXPECT_EQ(predictions.load(), kThreads * kPredictionsPerThread);
  std::string error;
  EXPECT_TRUE(raw->tree().CheckInvariants(&error)) << error;
  EXPECT_LE(model.MemoryBytes(), kPaperMemoryBytes);
}

}  // namespace
}  // namespace mlq
