// Tests for the extension models: PartitionedCostModel (nominal variables)
// and NeuralCostModel (the online curve-fitting baseline).

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"
#include "model/neural_model.h"
#include "model/partitioned_model.h"

namespace mlq {
namespace {

PartitionedCostModel::ModelFactory MlqFactory(const Box& space) {
  return [space](int64_t budget) {
    MlqConfig config = MakePaperMlqConfig(InsertionStrategy::kEager,
                                          CostKind::kCpu, budget);
    return std::make_unique<MlqModel>(space, config);
  };
}

TEST(PartitionedModelTest, SplitsBudgetEvenly) {
  const Box space = Box::Cube(2, 0.0, 100.0);
  PartitionedCostModel model(MlqFactory(space), /*max_partitions=*/3,
                             /*total_budget=*/4000);
  EXPECT_EQ(model.partition_budget_bytes(), 1000);
}

TEST(PartitionedModelTest, DistinctKeysLearnIndependently) {
  const Box space = Box::Cube(1, 0.0, 100.0);
  PartitionedCostModel model(MlqFactory(space), 4, 8000);
  // Key 1: cheap everywhere. Key 2: expensive everywhere.
  for (int i = 0; i < 50; ++i) {
    model.Observe(1, Point{static_cast<double>(i)}, 10.0);
    model.Observe(2, Point{static_cast<double>(i)}, 1000.0);
  }
  EXPECT_NEAR(model.Predict(1, Point{25.0}), 10.0, 1e-9);
  EXPECT_NEAR(model.Predict(2, Point{25.0}), 1000.0, 1e-9);
  EXPECT_EQ(model.num_partitions(), 2);
}

TEST(PartitionedModelTest, UnseenKeyPredictsZeroBeforeAnyOverflow) {
  const Box space = Box::Cube(1, 0.0, 100.0);
  PartitionedCostModel model(MlqFactory(space), 2, 4000);
  EXPECT_DOUBLE_EQ(model.Predict(42, Point{1.0}), 0.0);
  EXPECT_EQ(model.ModelForKey(42), nullptr);
}

TEST(PartitionedModelTest, OverflowKeysShareOneModel) {
  const Box space = Box::Cube(1, 0.0, 100.0);
  PartitionedCostModel model(MlqFactory(space), 2, 6000);
  model.Observe(1, Point{10.0}, 100.0);
  model.Observe(2, Point{10.0}, 200.0);
  // Keys 3 and 4 exceed max_partitions: they share the overflow model.
  model.Observe(3, Point{10.0}, 1000.0);
  model.Observe(4, Point{10.0}, 3000.0);
  EXPECT_EQ(model.num_partitions(), 2);
  EXPECT_EQ(model.ModelForKey(3), model.ModelForKey(4));
  // Overflow predictions mix both keys' observations.
  EXPECT_NEAR(model.Predict(3, Point{10.0}), 2000.0, 1e-9);
  // Unseen key 99 also routes to the overflow model once it exists.
  EXPECT_NEAR(model.Predict(99, Point{10.0}), 2000.0, 1e-9);
}

TEST(PartitionedModelTest, MemoryIsSumOfSubModels) {
  const Box space = Box::Cube(2, 0.0, 100.0);
  PartitionedCostModel model(MlqFactory(space), 3, 8000);
  EXPECT_EQ(model.MemoryBytes(), 0);
  model.Observe(7, Point{1.0, 1.0}, 5.0);
  EXPECT_GT(model.MemoryBytes(), 0);
  EXPECT_LE(model.MemoryBytes(), 8000);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    model.Observe(rng.UniformInt(0, 9),
                  Point{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)},
                  rng.Uniform(0.0, 100.0));
  }
  EXPECT_LE(model.MemoryBytes(), 8000) << "total budget must hold";
}

TEST(NeuralModelTest, SizesHiddenLayerToBudget) {
  const Box space = Box::Cube(4, 0.0, 1000.0);
  NeuralCostModel model(space, kPaperMemoryBytes);
  // params = h*(4 + 2) + 1 <= 225 at 1800 bytes -> h = 37.
  EXPECT_EQ(model.hidden_units(), 37);
  EXPECT_LE(model.MemoryBytes(), kPaperMemoryBytes);
}

TEST(NeuralModelTest, UntrainedPredictsZero) {
  NeuralCostModel model(Box::Cube(2, 0.0, 1.0), 1800);
  EXPECT_DOUBLE_EQ(model.Predict(Point{0.5, 0.5}), 0.0);
  EXPECT_TRUE(model.IsSelfTuning());
  EXPECT_EQ(model.name(), "NN");
}

TEST(NeuralModelTest, LearnsAConstantFunction) {
  NeuralCostModel model(Box::Cube(2, 0.0, 100.0), 1800);
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    model.Observe(Point{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)},
                  500.0);
  }
  EXPECT_NEAR(model.Predict(Point{50.0, 50.0}), 500.0, 25.0);
}

TEST(NeuralModelTest, LearnsALinearRamp) {
  NeuralCostModel::Options options;
  options.steps_per_observation = 2;
  NeuralCostModel model(Box::Cube(1, 0.0, 100.0), 1800, options);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Uniform(0.0, 100.0);
    model.Observe(Point{x}, 10.0 * x);
  }
  // Interior fit should be decent; tolerate 15% of the range.
  for (double x : {20.0, 50.0, 80.0}) {
    EXPECT_NEAR(model.Predict(Point{x}), 10.0 * x, 150.0) << "x = " << x;
  }
}

TEST(NeuralModelTest, PredictionsNeverNegative) {
  NeuralCostModel model(Box::Cube(2, 0.0, 100.0), 1800);
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    model.Observe(Point{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)},
                  rng.Uniform(0.0, 10.0));
  }
  for (int i = 0; i < 200; ++i) {
    const double predicted =
        model.Predict(Point{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)});
    ASSERT_GE(predicted, 0.0);
  }
}

TEST(NeuralModelTest, BreakdownCountsObservations) {
  NeuralCostModel model(Box::Cube(1, 0.0, 1.0), 1800);
  for (int i = 0; i < 10; ++i) model.Observe(Point{0.5}, 1.0);
  EXPECT_EQ(model.update_breakdown().insertions, 10);
  EXPECT_EQ(model.observations(), 10);
  EXPECT_GE(model.update_breakdown().insert_seconds, 0.0);
}

TEST(NeuralModelTest, MlqBeatsNeuralOnSpikySurfaceAtEqualMemory) {
  // The reason the paper's authors chose structure over curve fitting:
  // spiky, discontinuous cost surfaces are hard for a tiny MLP but easy
  // for a space-partitioning summary.
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/50, 0.0, /*seed=*/5);
  const Box space = udf->model_space();
  const auto queries = MakePaperWorkload(
      space, QueryDistributionKind::kGaussianRandom, 3000, /*seed=*/6);

  MlqModel mlq(space, MakePaperMlqConfig(InsertionStrategy::kEager,
                                         CostKind::kCpu));
  NeuralCostModel nn(space, kPaperMemoryBytes);
  double mlq_err = 0.0;
  double nn_err = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const Point& q = queries[i];
    const double actual = udf->Execute(q).cpu_work;
    if (i > 500) {
      mlq_err += std::abs(mlq.Predict(q) - actual);
      nn_err += std::abs(nn.Predict(q) - actual);
    }
    mlq.Observe(q, actual);
    nn.Observe(q, actual);
  }
  EXPECT_LT(mlq_err, nn_err);
}

}  // namespace
}  // namespace mlq
