// Concurrency stress for the batched prediction path over the pooled
// arena tree. Built to run clean under TSan (it is part of the curated
// thread-sanitizer suite): reader threads hammer PredictBatch while writer
// threads feed observations, against both concurrency decorators.
//
// The point is the data-race surface, not prediction quality: batched
// descent walks pool-internal arrays (node vector, child blocks) that
// inserts grow and compression recycles, so any missing synchronization in
// the serving layer shows up here first.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/concurrent_model.h"
#include "model/mlq_model.h"
#include "model/sharded_model.h"

namespace mlq {
namespace {

constexpr int kReaders = 3;
constexpr int kWriters = 2;
constexpr size_t kBatch = 64;
constexpr int kRoundsPerReader = 150;
constexpr int kObservationsPerWriter = 3000;

MlqConfig StressConfig() {
  MlqConfig config;
  config.strategy = InsertionStrategy::kEager;
  config.max_depth = 6;
  config.beta = 2;
  // Small budget: compression (and so block recycling through the pool
  // free-list) triggers many times during the run.
  config.memory_limit_bytes = 4096;
  return config;
}

// A deterministic per-thread workload point in [0, 1000)^2.
Point WorkloadPoint(Rng& rng) {
  return Point{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
}

double WorkloadCost(const Point& p) { return 10.0 + p[0] * 0.5 + p[1] * 0.25; }

// Runs readers and writers concurrently against `model`, which must be a
// thread-safe CostModel. Returns the number of reliable predictions seen,
// as a cheap liveness signal that batches actually hit warmed regions.
int64_t RunStress(CostModel& model) {
  std::atomic<int64_t> reliable{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaders + kWriters);

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&model, w]() {
      Rng rng(1000 + w);
      for (int i = 0; i < kObservationsPerWriter; ++i) {
        const Point p = WorkloadPoint(rng);
        model.Observe(p, WorkloadCost(p));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&model, &reliable, r]() {
      Rng rng(2000 + r);
      std::vector<Point> points(kBatch);
      std::vector<Prediction> out(kBatch);
      int64_t local_reliable = 0;
      for (int round = 0; round < kRoundsPerReader; ++round) {
        for (Point& p : points) p = WorkloadPoint(rng);
        model.PredictBatch(points, out);
        for (const Prediction& p : out) {
          // Every slot must be written: value finite-or-zero and count
          // non-negative are cheap structural checks on each element.
          EXPECT_GE(p.count, 0);
          EXPECT_GE(p.depth, 0);
          if (p.reliable) ++local_reliable;
        }
      }
      reliable.fetch_add(local_reliable, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : threads) t.join();
  model.Flush();
  return reliable.load();
}

TEST(ConcurrentBatchStressTest, MutexModelSurvivesBatchPredictInsertRace) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  ConcurrentCostModel model(
      std::make_unique<MlqModel>(space, StressConfig()));

  const int64_t reliable = RunStress(model);
  // With kEager inserts racing ahead of the readers, the later rounds must
  // see warmed cells; an all-unreliable run means feedback never landed.
  EXPECT_GT(reliable, 0);

  // The tree underneath must come out structurally intact.
  auto& mlq = static_cast<MlqModel&>(model.inner());
  std::string error;
  EXPECT_TRUE(mlq.tree().CheckInvariants(&error)) << error;
}

TEST(ConcurrentBatchStressTest, ShardedModelSurvivesBatchPredictInsertRace) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  ShardedModelOptions options;
  options.num_shards = 4;
  options.drain_on_predict = true;
  ShardedCostModel model(space, StressConfig(), options);

  const int64_t reliable = RunStress(model);
  EXPECT_GT(reliable, 0);

  // After Flush with no live producers, every shard tree is quiescent and
  // must satisfy the tree invariants.
  for (int s = 0; s < model.num_shards(); ++s) {
    std::string error;
    EXPECT_TRUE(model.shard_model(s).tree().CheckInvariants(&error))
        << "shard " << s << ": " << error;
  }
  const ShardedModelStats stats = model.stats();
  EXPECT_EQ(stats.pending, 0);
}

TEST(ConcurrentBatchStressTest, BatchResultsMatchScalarUnderQuiescence) {
  // Sanity anchor for the two racing tests above: once writers stop, a
  // batch must be element-wise identical to the scalar path.
  const Box space = Box::Cube(2, 0.0, 1000.0);
  ConcurrentCostModel model(
      std::make_unique<MlqModel>(space, StressConfig()));
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const Point p = WorkloadPoint(rng);
    model.Observe(p, WorkloadCost(p));
  }
  std::vector<Point> points(kBatch);
  for (Point& p : points) p = WorkloadPoint(rng);
  std::vector<Prediction> batch(kBatch);
  model.PredictBatch(points, batch);
  for (size_t i = 0; i < kBatch; ++i) {
    const Prediction scalar = model.PredictDetailed(points[i]);
    EXPECT_DOUBLE_EQ(batch[i].value, scalar.value);
    EXPECT_EQ(batch[i].count, scalar.count);
    EXPECT_EQ(batch[i].depth, scalar.depth);
  }
}

}  // namespace
}  // namespace mlq
