// Differential validation of the windowed-summary (decay) extension.
//
// The contract is strict backwards compatibility: with decay disabled
// (MlqConfig::decay_half_life == 0, the default) the feature must be
// invisible — same serialized bytes (version 2, the pre-decay format),
// same predictions, AdvanceDecayEpoch a strict no-op — across MLQ-E and
// MLQ-L, scalar and batched feedback, and all three catalog concurrency
// shapes. With decay enabled but the clock never advanced, predictions
// must also match a decay-off model exactly: decay only acts through
// epoch age.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/concurrent_model.h"
#include "model/mlq_model.h"
#include "model/serialization.h"
#include "model/sharded_model.h"

namespace mlq {
namespace {

double Surface(const Point& p) {
  const double x = p[0] / 1000.0;
  const double y = p[1] / 1000.0;
  return 400.0 * (1.0 + 0.5 * x - 0.3 * y) + 150.0 * x * y;
}

Box Space() { return Box(Point{0.0, 0.0}, Point{1000.0, 1000.0}); }

MlqConfig Config(InsertionStrategy strategy, double half_life) {
  MlqConfig config;
  config.strategy = strategy;
  config.max_depth = 6;
  config.beta = 1;
  // Tight enough that the workload forces compressions, so the decay-off
  // differential also covers the eviction key's decay branch.
  config.memory_limit_bytes = 1800;
  config.decay_half_life = half_life;
  return config;
}

std::vector<Observation> MakeWorkload(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Observation> workload;
  workload.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    workload.push_back({p, Surface(p) + rng.Gaussian(0.0, 10.0)});
  }
  return workload;
}

std::vector<Point> ProbeGrid() {
  std::vector<Point> probes;
  for (int i = 0; i <= 20; ++i) {
    for (int j = 0; j <= 20; ++j) {
      probes.push_back(Point{i * 50.0, j * 50.0});
    }
  }
  return probes;
}

void ExpectIdenticalPredictions(const CostModel& a, const CostModel& b) {
  for (const Point& p : ProbeGrid()) {
    const Prediction pa = a.PredictDetailed(p);
    const Prediction pb = b.PredictDetailed(p);
    ASSERT_EQ(pa.value, pb.value) << "at " << p.ToString();
    ASSERT_EQ(pa.stddev, pb.stddev);
    ASSERT_EQ(pa.depth, pb.depth);
    ASSERT_EQ(pa.count, pb.count);
    ASSERT_EQ(pa.reliable, pb.reliable);
  }
}

uint16_t FormatVersion(const std::vector<uint8_t>& bytes) {
  // Layout: [magic u32][version u16] ... (little-endian).
  EXPECT_GE(bytes.size(), 6u);
  return static_cast<uint16_t>(bytes[4]) |
         static_cast<uint16_t>(static_cast<uint16_t>(bytes[5]) << 8);
}

class DecayDifferentialTest
    : public ::testing::TestWithParam<InsertionStrategy> {};

// Decay off: the serialized format is exactly the pre-decay version 2, and
// AdvanceDecayEpoch between inserts changes nothing — bytes or predictions.
TEST_P(DecayDifferentialTest, DisabledDecayIsByteIdenticalAndInert) {
  const auto workload = MakeWorkload(4000, 7);
  MlqModel plain(Space(), Config(GetParam(), 0.0));
  MlqModel poked(Space(), Config(GetParam(), 0.0));
  for (size_t i = 0; i < workload.size(); ++i) {
    plain.Observe(workload[i].point, workload[i].value);
    poked.Observe(workload[i].point, workload[i].value);
    if (i % 97 == 0) poked.AdvanceDecayEpoch(3);  // Must be a no-op.
  }
  const auto plain_bytes = SerializeQuadtree(plain.tree());
  const auto poked_bytes = SerializeQuadtree(poked.tree());
  EXPECT_EQ(FormatVersion(plain_bytes), 2u);
  ASSERT_EQ(plain_bytes, poked_bytes);
  ExpectIdenticalPredictions(plain, poked);
  EXPECT_EQ(poked.tree().decay_epoch(), 0u);
}

// Decay configured but the clock never advanced: every summary is at age
// zero, so predictions match a decay-off model bit for bit.
TEST_P(DecayDifferentialTest, EnabledButUnadvancedMatchesDisabled) {
  const auto workload = MakeWorkload(4000, 11);
  MlqModel off(Space(), Config(GetParam(), 0.0));
  MlqModel on(Space(), Config(GetParam(), 16.0));
  for (const Observation& o : workload) {
    off.Observe(o.point, o.value);
    on.Observe(o.point, o.value);
  }
  ExpectIdenticalPredictions(off, on);
  // The on-disk formats differ deliberately (v2 vs v3)...
  EXPECT_EQ(FormatVersion(SerializeQuadtree(off.tree())), 2u);
  EXPECT_EQ(FormatVersion(SerializeQuadtree(on.tree())), 3u);
  // ...but the decayed tree round-trips to identical predictions.
  std::string error;
  auto reloaded = DeserializeQuadtree(SerializeQuadtree(on.tree()), &error);
  ASSERT_NE(reloaded, nullptr) << error;
  for (const Point& p : ProbeGrid()) {
    const Prediction a = on.tree().Predict(p);
    const Prediction b = reloaded->Predict(p);
    ASSERT_EQ(a.value, b.value);
    ASSERT_EQ(a.count, b.count);
  }
}

// Scalar Observe loop vs chunked ObserveBatch with identically interleaved
// epoch advances: the batch path must hit the same materialization points.
TEST_P(DecayDifferentialTest, LoopVsBatchIdenticalUnderDecay) {
  const auto workload = MakeWorkload(4000, 13);
  MlqModel loop(Space(), Config(GetParam(), 8.0));
  MlqModel batch(Space(), Config(GetParam(), 8.0));
  const size_t chunk = 64;
  for (size_t begin = 0; begin < workload.size(); begin += chunk) {
    const size_t end = std::min(workload.size(), begin + chunk);
    for (size_t i = begin; i < end; ++i) {
      loop.Observe(workload[i].point, workload[i].value);
    }
    batch.ObserveBatch(
        std::span<const Observation>(workload.data() + begin, end - begin));
    loop.AdvanceDecayEpoch(1);
    batch.AdvanceDecayEpoch(1);
  }
  ASSERT_EQ(SerializeQuadtree(loop.tree()), SerializeQuadtree(batch.tree()));
  ExpectIdenticalPredictions(loop, batch);
}

// All three catalog concurrency shapes over the same sequence (single
// caller, one shard) stay bit-identical to the bare model, decay on & off.
TEST_P(DecayDifferentialTest, ConcurrencyModesIdenticalWithAndWithoutDecay) {
  for (const double half_life : {0.0, 8.0}) {
    SCOPED_TRACE(half_life);
    const auto workload = MakeWorkload(3000, 17);
    const MlqConfig config = Config(GetParam(), half_life);

    MlqModel bare(Space(), config);
    ConcurrentCostModel mutexed(std::make_unique<MlqModel>(Space(), config));
    ShardedModelOptions options;
    options.num_shards = 1;
    options.drain_on_predict = true;
    ShardedCostModel sharded(Space(), config, options);

    for (size_t i = 0; i < workload.size(); ++i) {
      bare.Observe(workload[i].point, workload[i].value);
      mutexed.Observe(workload[i].point, workload[i].value);
      sharded.Observe(workload[i].point, workload[i].value);
      if (i % 250 == 249) {
        bare.AdvanceDecayEpoch(1);
        sharded.Flush();  // Queued feedback must land before the clock ticks.
        mutexed.AdvanceDecayEpoch(1);
        sharded.AdvanceDecayEpoch(1);
      }
    }
    sharded.Flush();
    ExpectIdenticalPredictions(bare, mutexed);
    ExpectIdenticalPredictions(bare, sharded);
    ASSERT_EQ(SerializeQuadtree(bare.tree()),
              SerializeQuadtree(sharded.shard_model(0).tree()));
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, DecayDifferentialTest,
                         ::testing::Values(InsertionStrategy::kEager,
                                           InsertionStrategy::kLazy));

}  // namespace
}  // namespace mlq
