// Tests for the CostModel adapters: MlqModel and GlobalAverageModel.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/experiment_setup.h"
#include "model/global_average_model.h"
#include "model/mlq_model.h"

namespace mlq {
namespace {

TEST(MlqModelTest, NamesFollowStrategy) {
  const Box space = Box::Cube(2, 0.0, 100.0);
  MlqModel eager(space, MakePaperMlqConfig(InsertionStrategy::kEager,
                                           CostKind::kCpu));
  MlqModel lazy(space, MakePaperMlqConfig(InsertionStrategy::kLazy,
                                          CostKind::kCpu));
  EXPECT_EQ(eager.name(), "MLQ-E");
  EXPECT_EQ(lazy.name(), "MLQ-L");
  EXPECT_TRUE(eager.IsSelfTuning());
}

TEST(MlqModelTest, ObserveUpdatesPredictions) {
  const Box space = Box::Cube(2, 0.0, 100.0);
  MlqModel model(space,
                 MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));
  EXPECT_DOUBLE_EQ(model.Predict(Point{10.0, 10.0}), 0.0);
  model.Observe(Point{10.0, 10.0}, 500.0);
  EXPECT_DOUBLE_EQ(model.Predict(Point{10.0, 10.0}), 500.0);
}

TEST(MlqModelTest, PaperBetaDependsOnCostKind) {
  EXPECT_EQ(MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu).beta,
            1);
  EXPECT_EQ(MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kIo).beta,
            10);
}

TEST(MlqModelTest, MemoryStaysWithinPaperBudget) {
  const Box space = Box::Cube(4, 0.0, 1000.0);
  MlqModel model(space,
                 MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    Point p(4);
    for (int d = 0; d < 4; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    model.Observe(p, rng.Uniform(0.0, 10000.0));
    ASSERT_LE(model.MemoryBytes(), kPaperMemoryBytes);
  }
}

TEST(MlqModelTest, BreakdownAccumulates) {
  const Box space = Box::Cube(4, 0.0, 1000.0);
  MlqModel model(space,
                 MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    Point p(4);
    for (int d = 0; d < 4; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    model.Observe(p, rng.Uniform(0.0, 10000.0));
  }
  const ModelUpdateBreakdown breakdown = model.update_breakdown();
  EXPECT_EQ(breakdown.insertions, 500);
  EXPECT_GT(breakdown.compressions, 0);
  EXPECT_GT(breakdown.insert_seconds, 0.0);
  EXPECT_GT(breakdown.compress_seconds, 0.0);
  EXPECT_DOUBLE_EQ(breakdown.UpdateSeconds(),
                   breakdown.insert_seconds + breakdown.compress_seconds);
}

TEST(MlqModelTest, PredictDetailedExposesDepthAndCount) {
  const Box space = Box::Cube(2, 0.0, 100.0);
  MlqModel model(space,
                 MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));
  model.Observe(Point{10.0, 10.0}, 5.0);
  const Prediction p = model.PredictDetailed(Point{10.0, 10.0});
  EXPECT_TRUE(p.reliable);
  EXPECT_EQ(p.depth, 6);  // Paper lambda.
  EXPECT_EQ(p.count, 1);
}

TEST(GlobalAverageModelTest, PredictsRunningMean) {
  GlobalAverageModel model;
  EXPECT_DOUBLE_EQ(model.Predict(Point{1.0}), 0.0);
  model.Observe(Point{1.0}, 10.0);
  model.Observe(Point{500.0}, 20.0);
  EXPECT_DOUBLE_EQ(model.Predict(Point{250.0}), 15.0);
  EXPECT_TRUE(model.IsSelfTuning());
  EXPECT_EQ(model.MemoryBytes(), 24);
  EXPECT_EQ(model.update_breakdown().insertions, 2);
}

TEST(GlobalAverageModelTest, PredictionIgnoresLocation) {
  GlobalAverageModel model;
  model.Observe(Point{0.0, 0.0}, 100.0);
  EXPECT_DOUBLE_EQ(model.Predict(Point{0.0, 0.0}),
                   model.Predict(Point{999.0, 999.0}));
}

// On a spatially structured surface, MLQ must beat the global average — the
// sanity floor that justifies the structure.
TEST(ModelComparisonTest, MlqBeatsGlobalAverageOnStructuredSurface) {
  const Box space = Box::Cube(2, 0.0, 100.0);
  MlqConfig config = MakePaperMlqConfig(InsertionStrategy::kEager,
                                        CostKind::kCpu, /*memory=*/8192);
  MlqModel mlq(space, config);
  GlobalAverageModel global;

  // Surface: high plateau left, low plateau right.
  auto surface = [](const Point& p) { return p[0] < 50.0 ? 1000.0 : 10.0; };

  Rng rng(5);
  double mlq_err = 0.0;
  double global_err = 0.0;
  for (int i = 0; i < 2000; ++i) {
    Point p{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    const double actual = surface(p);
    if (i > 200) {  // Skip the cold start for both.
      mlq_err += std::abs(mlq.Predict(p) - actual);
      global_err += std::abs(global.Predict(p) - actual);
    }
    mlq.Observe(p, actual);
    global.Observe(p, actual);
  }
  EXPECT_LT(mlq_err, 0.25 * global_err);
}

}  // namespace
}  // namespace mlq
