#include "model/serialization.h"

#include <cstdio>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/experiment_setup.h"

namespace mlq {
namespace {

std::unique_ptr<MemoryLimitedQuadtree> MakeTrainedTree(
    InsertionStrategy strategy, int dims, int64_t budget, int n,
    uint64_t seed) {
  MlqConfig config = MakePaperMlqConfig(strategy, CostKind::kCpu, budget);
  auto tree = std::make_unique<MemoryLimitedQuadtree>(
      Box::Cube(dims, 0.0, 1000.0), config);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Point p(dims);
    for (int d = 0; d < dims; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    tree->Insert(p, rng.Uniform(0.0, 10000.0));
  }
  return tree;
}

void ExpectTreesPredictIdentically(const MemoryLimitedQuadtree& a,
                                   const MemoryLimitedQuadtree& b,
                                   uint64_t seed) {
  ASSERT_EQ(a.space(), b.space());
  Rng rng(seed);
  for (int i = 0; i < 500; ++i) {
    Point q(a.space().dims());
    for (int d = 0; d < q.dims(); ++d) q[d] = rng.Uniform(0.0, 1000.0);
    const Prediction pa = a.Predict(q);
    const Prediction pb = b.Predict(q);
    ASSERT_DOUBLE_EQ(pa.value, pb.value) << q.ToString();
    ASSERT_EQ(pa.depth, pb.depth);
    ASSERT_EQ(pa.count, pb.count);
  }
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  auto tree = MakeTrainedTree(InsertionStrategy::kEager, 4, 1800, 1000, 1);
  const auto bytes = SerializeQuadtree(*tree);
  std::string error;
  auto loaded = DeserializeQuadtree(bytes, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->num_nodes(), tree->num_nodes());
  EXPECT_EQ(loaded->memory_used(), tree->memory_used());
  EXPECT_EQ(loaded->config().max_depth, tree->config().max_depth);
  EXPECT_EQ(loaded->config().beta, tree->config().beta);
  EXPECT_EQ(loaded->compressed_once(), tree->compressed_once());
  ExpectTreesPredictIdentically(*tree, *loaded, 2);
}

TEST(SerializationTest, RoundTripEmptyTree) {
  MemoryLimitedQuadtree tree(
      Box::Cube(2, -5.0, 5.0),
      MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kIo));
  std::string error;
  auto loaded = DeserializeQuadtree(SerializeQuadtree(tree), &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->num_nodes(), 1);
  EXPECT_EQ(loaded->config().strategy, InsertionStrategy::kLazy);
  EXPECT_EQ(loaded->config().beta, kPaperBetaIo);
}

TEST(SerializationTest, LoadedTreeKeepsLearning) {
  // The whole point of catalog persistence: resume self-tuning after a
  // restart. Insert into the loaded tree and check it stays consistent.
  auto tree = MakeTrainedTree(InsertionStrategy::kLazy, 3, 1800, 500, 3);
  std::string error;
  auto loaded = DeserializeQuadtree(SerializeQuadtree(*tree), &error);
  ASSERT_NE(loaded, nullptr) << error;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0),
            rng.Uniform(0.0, 1000.0)};
    loaded->Insert(p, rng.Uniform(0.0, 10000.0));
    ASSERT_LE(loaded->memory_used(), loaded->memory_limit());
  }
  EXPECT_TRUE(loaded->CheckInvariants(&error)) << error;
}

TEST(SerializationTest, BytesAreCompact) {
  // The serialized size should be in the same ballpark as the logical
  // memory charge (it stores the same information).
  auto tree = MakeTrainedTree(InsertionStrategy::kEager, 4, 1800, 2000, 5);
  const auto bytes = SerializeQuadtree(*tree);
  EXPECT_LT(static_cast<int64_t>(bytes.size()), 3 * tree->memory_used());
}

TEST(SerializationTest, RejectsBadMagic) {
  auto tree = MakeTrainedTree(InsertionStrategy::kEager, 2, 1800, 10, 6);
  auto bytes = SerializeQuadtree(*tree);
  bytes[0] ^= 0xff;
  std::string error;
  EXPECT_EQ(DeserializeQuadtree(bytes, &error), nullptr);
  EXPECT_EQ(error, "bad magic");
}

TEST(SerializationTest, RejectsTruncation) {
  auto tree = MakeTrainedTree(InsertionStrategy::kEager, 2, 1800, 100, 7);
  auto bytes = SerializeQuadtree(*tree);
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{5}}) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    std::string error;
    EXPECT_EQ(DeserializeQuadtree(truncated, &error), nullptr)
        << "cut at " << cut;
    EXPECT_FALSE(error.empty());
  }
}

TEST(SerializationTest, RejectsTrailingGarbage) {
  auto tree = MakeTrainedTree(InsertionStrategy::kEager, 2, 1800, 10, 8);
  auto bytes = SerializeQuadtree(*tree);
  bytes.push_back(0x42);
  std::string error;
  EXPECT_EQ(DeserializeQuadtree(bytes, &error), nullptr);
  EXPECT_EQ(error, "trailing bytes");
}

TEST(SerializationTest, RejectsEmptyInput) {
  std::string error;
  EXPECT_EQ(DeserializeQuadtree({}, &error), nullptr);
}

// Byte-level builder mirroring the v1 wire format, so the v1 read-compat
// path is exercised against a blob the current writer can no longer emit.
class BlobBuilder {
 public:
  template <typename T>
  BlobBuilder& Put(T value) {
    const size_t offset = bytes_.size();
    bytes_.resize(offset + sizeof(T));
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
    return *this;
  }
  std::vector<uint8_t>& bytes() { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

BlobBuilder V1Header(uint16_t version = 1) {
  BlobBuilder b;
  b.Put<uint32_t>(0x4d4c5154)  // "MLQT"
      .Put<uint16_t>(version)
      .Put<uint8_t>(1)   // dims
      .Put<uint8_t>(0)   // strategy = eager
      .Put<int32_t>(4)   // max_depth
      .Put<double>(0.1)  // alpha
      .Put<double>(0.01)  // gamma
      .Put<int64_t>(1)    // beta
      .Put<int64_t>(1800)  // memory_limit_bytes
      .Put<double>(0.0)    // lo
      .Put<double>(100.0)  // hi
      .Put<uint8_t>(0);    // compressed_once
  return b;
}

TEST(SerializationTest, ReadsVersionOneBlobs) {
  // v1 body: recursive pre-order, each node is
  // [sum f64][count i64][sum_squares f64][num_children u8]
  // followed by ([quadrant u8][child record])* in ascending quadrant order.
  BlobBuilder b = V1Header();
  // Root: {sum 30, count 3, ssq 350}, two children.
  b.Put<double>(30.0).Put<int64_t>(3).Put<double>(350.0).Put<uint8_t>(2);
  // Child quadrant 0 (leaf): one point, value 9.
  b.Put<uint8_t>(0);
  b.Put<double>(9.0).Put<int64_t>(1).Put<double>(81.0).Put<uint8_t>(0);
  // Child quadrant 1 (leaf): two points summing to 21.
  b.Put<uint8_t>(1);
  b.Put<double>(21.0).Put<int64_t>(2).Put<double>(269.0).Put<uint8_t>(0);

  std::string error;
  auto tree = DeserializeQuadtree(b.bytes(), &error);
  ASSERT_NE(tree, nullptr) << error;
  EXPECT_EQ(tree->num_nodes(), 3);
  EXPECT_EQ(tree->root().summary().count, 3);
  // Lower half [0, 50): value 9; upper half [50, 100]: average 10.5.
  EXPECT_DOUBLE_EQ(tree->Predict(Point{10.0}).value, 9.0);
  EXPECT_DOUBLE_EQ(tree->Predict(Point{90.0}).value, 10.5);
  EXPECT_TRUE(tree->CheckInvariants(&error)) << error;
  // Re-serializing writes the current (v2) format, which round-trips.
  auto reloaded = DeserializeQuadtree(SerializeQuadtree(*tree), &error);
  ASSERT_NE(reloaded, nullptr) << error;
  EXPECT_EQ(reloaded->num_nodes(), 3);
}

TEST(SerializationTest, RejectsUnknownFutureVersion) {
  BlobBuilder b = V1Header(/*version=*/99);
  b.Put<double>(0.0).Put<int64_t>(0).Put<double>(0.0).Put<uint8_t>(0);
  std::string error;
  EXPECT_EQ(DeserializeQuadtree(b.bytes(), &error), nullptr);
  EXPECT_EQ(error, "unsupported version");
}

TEST(SerializationTest, CurrentFormatIsVersionTwo) {
  // Pin the on-disk version so a format change is a conscious decision.
  auto tree = MakeTrainedTree(InsertionStrategy::kEager, 2, 1800, 10, 11);
  const auto bytes = SerializeQuadtree(*tree);
  ASSERT_GE(bytes.size(), 6u);
  uint16_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  EXPECT_EQ(version, 2);
}

TEST(SerializationTest, FileRoundTrip) {
  auto tree = MakeTrainedTree(InsertionStrategy::kEager, 3, 1800, 300, 9);
  const std::string path = ::testing::TempDir() + "/mlq_model.bin";
  ASSERT_TRUE(SaveQuadtreeToFile(*tree, path));
  std::string error;
  auto loaded = LoadQuadtreeFromFile(path, &error);
  ASSERT_NE(loaded, nullptr) << error;
  ExpectTreesPredictIdentically(*tree, *loaded, 10);
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadMissingFileFails) {
  std::string error;
  EXPECT_EQ(LoadQuadtreeFromFile("/nonexistent/path/model.bin", &error),
            nullptr);
  EXPECT_EQ(error, "cannot open file");
}

TEST(SerializationTest, FuzzedCorruptionNeverCrashes) {
  // Randomized robustness check: arbitrary single-byte corruptions and
  // truncations must either round-trip to a valid tree (benign mutations,
  // e.g. in a summary value) or fail cleanly with an error — never crash
  // or produce a tree violating its invariants.
  auto tree = MakeTrainedTree(InsertionStrategy::kEager, 3, 1800, 400, 21);
  const auto pristine = SerializeQuadtree(*tree);
  Rng rng(12345);
  int clean_failures = 0;
  int survivors = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<uint8_t> mutated = pristine;
    // 1-3 random byte mutations, sometimes a truncation.
    const int edits = static_cast<int>(rng.UniformInt(1, 3));
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    if (rng.NextBool(0.3)) {
      mutated.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()))));
    }
    std::string error;
    auto loaded = DeserializeQuadtree(mutated, &error);
    if (loaded == nullptr) {
      ++clean_failures;
      EXPECT_FALSE(error.empty());
    } else {
      ++survivors;
      std::string invariant_error;
      EXPECT_TRUE(loaded->CheckInvariants(&invariant_error)) << invariant_error;
    }
  }
  // Most corruptions must be caught; some (value-only) legitimately load.
  EXPECT_GT(clean_failures, 200);
  EXPECT_EQ(clean_failures + survivors, 1000);
}

// --- Histogram persistence ---------------------------------------------

template <typename H>
std::unique_ptr<H> MakeTrainedHistogram(const Box& space, int64_t budget,
                                        int n, uint64_t seed) {
  auto histogram = std::make_unique<H>(space, budget);
  Rng rng(seed);
  std::vector<Point> points;
  std::vector<double> costs;
  for (int i = 0; i < n; ++i) {
    Point p(space.dims());
    for (int d = 0; d < space.dims(); ++d) {
      p[d] = rng.Uniform(space.lo()[d], space.hi()[d]);
    }
    points.push_back(p);
    costs.push_back(rng.Uniform(0.0, 5000.0));
  }
  histogram->Train(points, costs);
  return histogram;
}

TEST(HistogramSerializationTest, EquiWidthRoundTrip) {
  const Box space = Box::Cube(3, 0.0, 100.0);
  auto original =
      MakeTrainedHistogram<EquiWidthHistogram>(space, 1800, 500, 31);
  std::string error;
  auto loaded = DeserializeHistogram(SerializeHistogram(*original), &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->name(), "SH-W");
  EXPECT_EQ(loaded->intervals_per_dim(), original->intervals_per_dim());
  EXPECT_EQ(loaded->MemoryBytes(), original->MemoryBytes());
  Rng rng(32);
  for (int i = 0; i < 300; ++i) {
    Point q{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0),
            rng.Uniform(0.0, 100.0)};
    ASSERT_DOUBLE_EQ(loaded->Predict(q), original->Predict(q));
  }
}

TEST(HistogramSerializationTest, EquiHeightRoundTrip) {
  const Box space = Box::Cube(2, -10.0, 10.0);
  auto original =
      MakeTrainedHistogram<EquiHeightHistogram>(space, 1800, 800, 33);
  std::string error;
  auto loaded = DeserializeHistogram(SerializeHistogram(*original), &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->name(), "SH-H");
  Rng rng(34);
  for (int i = 0; i < 300; ++i) {
    Point q{rng.Uniform(-10.0, 10.0), rng.Uniform(-10.0, 10.0)};
    ASSERT_DOUBLE_EQ(loaded->Predict(q), original->Predict(q));
  }
}

TEST(HistogramSerializationTest, UntrainedRoundTrip) {
  EquiWidthHistogram original(Box::Cube(2, 0.0, 1.0), 800);
  std::string error;
  auto loaded = DeserializeHistogram(SerializeHistogram(original), &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_FALSE(loaded->trained());
  EXPECT_DOUBLE_EQ(loaded->Predict(Point{0.5, 0.5}), 0.0);
}

TEST(HistogramSerializationTest, RejectsCorruption) {
  const Box space = Box::Cube(2, 0.0, 100.0);
  auto original =
      MakeTrainedHistogram<EquiHeightHistogram>(space, 1800, 100, 35);
  auto bytes = SerializeHistogram(*original);
  // Bad magic.
  {
    auto corrupted = bytes;
    corrupted[0] ^= 0xff;
    std::string error;
    EXPECT_EQ(DeserializeHistogram(corrupted, &error), nullptr);
  }
  // Truncations at assorted cut points.
  for (size_t cut : {size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    std::string error;
    EXPECT_EQ(DeserializeHistogram(truncated, &error), nullptr)
        << "cut " << cut;
  }
  // A quadtree blob is not a histogram blob.
  {
    auto tree = MakeTrainedTree(InsertionStrategy::kEager, 2, 1800, 10, 36);
    std::string error;
    EXPECT_EQ(DeserializeHistogram(SerializeQuadtree(*tree), &error), nullptr);
    EXPECT_EQ(DeserializeQuadtree(SerializeHistogram(*original), &error),
              nullptr);
  }
}

// Round-trip must hold across dimensions and strategies.
class SerializationSweepTest
    : public ::testing::TestWithParam<std::tuple<int, InsertionStrategy>> {};

TEST_P(SerializationSweepTest, RoundTrip) {
  const auto [dims, strategy] = GetParam();
  auto tree = MakeTrainedTree(strategy, dims, 4096, 800,
                              100 + static_cast<uint64_t>(dims));
  std::string error;
  auto loaded = DeserializeQuadtree(SerializeQuadtree(*tree), &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_TRUE(loaded->CheckInvariants(&error)) << error;
  ExpectTreesPredictIdentically(*tree, *loaded, 11);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerializationSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(InsertionStrategy::kEager,
                                         InsertionStrategy::kLazy)));

}  // namespace
}  // namespace mlq
