#include "model/static_histogram.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mlq {
namespace {

// Helper: trains a histogram on parallel arrays.
template <typename H>
void TrainOn(H& histogram, const std::vector<Point>& points,
             const std::vector<double>& costs) {
  histogram.Train(std::span<const Point>(points),
                  std::span<const double>(costs));
}

TEST(StaticHistogramTest, UntrainedPredictsZero) {
  EquiWidthHistogram h(Box::Cube(2, 0.0, 10.0), 1800);
  EXPECT_FALSE(h.trained());
  EXPECT_DOUBLE_EQ(h.Predict(Point{5.0, 5.0}), 0.0);
}

TEST(StaticHistogramTest, IntervalCountRespectsBudget) {
  // d = 4 at 1800 bytes: 3^4 * 8 = 648 fits, 4^4 * 8 = 2048 does not.
  EquiWidthHistogram w4(Box::Cube(4, 0.0, 1.0), 1800);
  TrainOn(w4, {Point{0.5, 0.5, 0.5, 0.5}}, {1.0});
  EXPECT_EQ(w4.intervals_per_dim(), 3);
  EXPECT_EQ(w4.num_buckets(), 81);
  EXPECT_LE(w4.MemoryBytes(), 1800);

  // d = 2 at 1800 bytes: 15^2 * 8 = 1800 fits exactly, 16^2 * 8 doesn't.
  EquiWidthHistogram w2(Box::Cube(2, 0.0, 1.0), 1800);
  TrainOn(w2, {Point{0.5, 0.5}}, {1.0});
  EXPECT_EQ(w2.intervals_per_dim(), 15);
}

TEST(StaticHistogramTest, EquiHeightChargesBoundaries) {
  // SH-H additionally pays 8 bytes per inner boundary per dimension, so at
  // a tight budget it can afford fewer intervals than SH-W.
  EquiHeightHistogram h(Box::Cube(2, 0.0, 1.0), 1800);
  std::vector<Point> points;
  std::vector<double> costs;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    points.push_back(Point{rng.NextDouble(), rng.NextDouble()});
    costs.push_back(1.0);
  }
  TrainOn(h, points, costs);
  const int n = h.intervals_per_dim();
  EXPECT_LE(n * n * 8 + 2 * (n - 1) * 8, 1800);
  EXPECT_GT(((n + 1) * (n + 1)) * 8 + 2 * n * 8, 1800);
  EXPECT_LE(h.MemoryBytes(), 1800);
}

TEST(StaticHistogramTest, EquiWidthPredictsBucketAverage) {
  EquiWidthHistogram h(Box::Cube(1, 0.0, 10.0), 80);  // 10 buckets of width 1.
  TrainOn(h,
          {Point{0.5}, Point{0.7}, Point{5.5}},
          {10.0, 20.0, 99.0});
  EXPECT_EQ(h.intervals_per_dim(), 10);
  EXPECT_DOUBLE_EQ(h.Predict(Point{0.2}), 15.0);  // Bucket [0,1): avg(10,20).
  EXPECT_DOUBLE_EQ(h.Predict(Point{5.9}), 99.0);
}

TEST(StaticHistogramTest, EmptyBucketFallsBackToGlobalAverage) {
  EquiWidthHistogram h(Box::Cube(1, 0.0, 10.0), 80);
  TrainOn(h, {Point{0.5}, Point{1.5}}, {10.0, 30.0});
  // Bucket [9,10) saw no training point.
  EXPECT_DOUBLE_EQ(h.Predict(Point{9.5}), 20.0);
}

TEST(StaticHistogramTest, OutOfRangeQueryIsClamped) {
  EquiWidthHistogram h(Box::Cube(1, 0.0, 10.0), 80);
  TrainOn(h, {Point{9.5}}, {77.0});
  EXPECT_DOUBLE_EQ(h.Predict(Point{50.0}), 77.0);
  EXPECT_DOUBLE_EQ(h.Predict(Point{10.0}), 77.0);  // Upper edge -> last bucket.
}

TEST(StaticHistogramTest, ObserveIsIgnored) {
  EquiWidthHistogram h(Box::Cube(1, 0.0, 10.0), 80);
  TrainOn(h, {Point{0.5}}, {10.0});
  const double before = h.Predict(Point{0.5});
  h.Observe(Point{0.5}, 1e9);
  EXPECT_DOUBLE_EQ(h.Predict(Point{0.5}), before);
  EXPECT_FALSE(h.IsSelfTuning());
}

TEST(StaticHistogramTest, RetrainReplacesModel) {
  EquiWidthHistogram h(Box::Cube(1, 0.0, 10.0), 80);
  TrainOn(h, {Point{0.5}}, {10.0});
  TrainOn(h, {Point{0.5}}, {50.0});
  EXPECT_DOUBLE_EQ(h.Predict(Point{0.5}), 50.0);
}

TEST(StaticHistogramTest, EquiHeightBoundariesAreQuantiles) {
  // Skewed 1-d training data: most mass near 0. Equi-height boundaries must
  // land where the data is, not at equal widths.
  EquiHeightHistogram h(Box::Cube(1, 0.0, 100.0), 80 + 9 * 8);  // 10 intervals.
  std::vector<Point> points;
  std::vector<double> costs;
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    // 90% of points in [0, 10), 10% spread over [10, 100).
    const double x = rng.NextDouble() < 0.9 ? rng.Uniform(0.0, 10.0)
                                            : rng.Uniform(10.0, 100.0);
    points.push_back(Point{x});
    costs.push_back(x);
  }
  TrainOn(h, points, costs);
  ASSERT_EQ(h.intervals_per_dim(), 10);
  // With ~90% of data below 10, at least 8 of the 9 boundaries sit below 15.
  // Verify indirectly: two nearby small coordinates in dense territory land
  // in different buckets (fine resolution), while the sparse tail is coarse.
  EXPECT_NE(h.Predict(Point{1.0}), h.Predict(Point{9.0}));
}

TEST(StaticHistogramTest, EquiHeightHandlesConstantMarginal) {
  // All training points share one coordinate: quantile boundaries collapse;
  // the histogram must stay usable.
  EquiHeightHistogram h(Box::Cube(2, 0.0, 10.0), 1800);
  std::vector<Point> points;
  std::vector<double> costs;
  for (int i = 0; i < 50; ++i) {
    points.push_back(Point{5.0, static_cast<double>(i % 10)});
    costs.push_back(static_cast<double>(i));
  }
  TrainOn(h, points, costs);
  const double p = h.Predict(Point{5.0, 3.0});
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 49.0);
}

TEST(StaticHistogramTest, TrainingOnEmptyWorkload) {
  EquiHeightHistogram h(Box::Cube(2, 0.0, 10.0), 1800);
  TrainOn(h, {}, {});
  EXPECT_TRUE(h.trained());
  EXPECT_DOUBLE_EQ(h.Predict(Point{1.0, 1.0}), 0.0);
}

TEST(StaticHistogramTest, Names) {
  EquiWidthHistogram w(Box::Cube(1, 0.0, 1.0), 100);
  EquiHeightHistogram h(Box::Cube(1, 0.0, 1.0), 100);
  EXPECT_EQ(w.name(), "SH-W");
  EXPECT_EQ(h.name(), "SH-H");
}

// Property: on uniformly distributed data, predictions of both variants are
// convex combinations of training costs (within the observed range).
class HistogramPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramPropertyTest, PredictionsWithinTrainingRange) {
  const int dims = GetParam();
  const Box space = Box::Cube(dims, 0.0, 1000.0);
  std::vector<Point> points;
  std::vector<double> costs;
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    Point p(dims);
    for (int d = 0; d < dims; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    points.push_back(p);
    costs.push_back(rng.Uniform(500.0, 600.0));
  }
  EquiWidthHistogram w(space, 1800);
  EquiHeightHistogram h(space, 1800);
  TrainOn(w, points, costs);
  TrainOn(h, points, costs);
  for (int i = 0; i < 200; ++i) {
    Point q(dims);
    for (int d = 0; d < dims; ++d) q[d] = rng.Uniform(0.0, 1000.0);
    for (double predicted : {w.Predict(q), h.Predict(q)}) {
      EXPECT_GE(predicted, 500.0);
      EXPECT_LE(predicted, 600.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HistogramPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mlq
