// Differential validation of the variance-aware prediction currency
// (CostEstimate / PredictStats): the stats API must be a pure superset of
// the scalar API. For every model and every concurrency decoration,
// PredictStats(p).value must equal Predict(p) BIT FOR BIT — the refactor's
// contract is that variance-blind callers observe no change whatsoever.
//
// Also regression-tests the stddev NaN fix: sqrt(SSE/C) on an empty
// summary used to be sqrt(0/0) = NaN, and cancellation residue in SSE
// could produce sqrt(negative). SummaryTriple::Stddev() is the single
// robust spelling; these tests pin its edge cases.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "model/concurrent_model.h"
#include "model/global_average_model.h"
#include "model/mlq_model.h"
#include "model/online_grid_model.h"
#include "model/sharded_model.h"
#include "model/static_histogram.h"

namespace mlq {
namespace {

// A smooth deterministic 2-d cost surface with enough structure that node
// summaries carry non-trivial variance.
double Surface(const Point& p) {
  const double x = p[0] / 1000.0;
  const double y = p[1] / 1000.0;
  return 1000.0 * (1.0 + std::sin(3.0 * x) * std::cos(2.0 * y)) +
         500.0 * x * y;
}

MlqConfig DiffConfig(InsertionStrategy strategy, int64_t budget) {
  MlqConfig config;
  config.strategy = strategy;
  config.max_depth = 6;
  config.beta = 1;
  config.memory_limit_bytes = budget;
  return config;
}

std::vector<Point> TrainingPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    points.push_back(Point{rng.Uniform(0.0, 1000.0),
                           rng.Uniform(0.0, 1000.0)});
  }
  return points;
}

// Checks the scalar/stats identity on a trained model over a probe set:
// value bit-identical, stddev finite and non-negative, count/reliable
// consistent with PredictDetailed.
void CheckStatsIdentity(const CostModel& model,
                        const std::vector<Point>& probes) {
  for (const Point& p : probes) {
    const double scalar = model.Predict(p);
    const CostEstimate stats = model.PredictStats(p);
    EXPECT_EQ(scalar, stats.value);  // Bitwise: == on identical doubles.
    EXPECT_FALSE(std::isnan(stats.stddev));
    EXPECT_GE(stats.stddev, 0.0);
    EXPECT_GE(stats.count, 0);
    const Prediction detailed = model.PredictDetailed(p);
    EXPECT_EQ(detailed.value, stats.value);
    EXPECT_EQ(detailed.stddev, stats.stddev);
    EXPECT_EQ(detailed.count, stats.count);
    EXPECT_EQ(detailed.reliable, stats.reliable);
  }
}

// Checks that the batched stats path is element-wise identical to the
// batched scalar path.
void CheckBatchIdentity(const CostModel& model,
                        const std::vector<Point>& probes) {
  std::vector<Prediction> scalar(probes.size());
  std::vector<CostEstimate> stats(probes.size());
  model.PredictBatch(probes, scalar);
  model.PredictStatsBatch(probes, stats);
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(scalar[i].value, stats[i].value) << "probe " << i;
    EXPECT_EQ(scalar[i].stddev, stats[i].stddev) << "probe " << i;
    EXPECT_EQ(scalar[i].count, stats[i].count) << "probe " << i;
    EXPECT_EQ(scalar[i].reliable, stats[i].reliable) << "probe " << i;
  }
}

TEST(VarianceStatsTest, BareMlqScalarAndStatsAgreeBitwise) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  const auto train = TrainingPoints(2000, 42);
  const auto probes = TrainingPoints(500, 777);
  for (const InsertionStrategy strategy :
       {InsertionStrategy::kEager, InsertionStrategy::kLazy}) {
    MlqModel model(space, DiffConfig(strategy, 1800));
    for (const Point& p : train) model.Observe(p, Surface(p));
    CheckStatsIdentity(model, probes);
    CheckBatchIdentity(model, probes);
  }
}

TEST(VarianceStatsTest, ConcurrentDecorationPreservesIdentity) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  ConcurrentCostModel model(std::make_unique<MlqModel>(
      space, DiffConfig(InsertionStrategy::kEager, 1800)));
  for (const Point& p : TrainingPoints(2000, 42)) {
    model.Observe(p, Surface(p));
  }
  const auto probes = TrainingPoints(500, 777);
  CheckStatsIdentity(model, probes);
  CheckBatchIdentity(model, probes);
}

TEST(VarianceStatsTest, ShardedDecorationPreservesIdentity) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  ShardedModelOptions options;
  options.num_shards = 4;
  options.drain_on_predict = true;
  options.queue_capacity = 4096;
  ShardedCostModel model(space, DiffConfig(InsertionStrategy::kLazy, 7200),
                         options);
  for (const Point& p : TrainingPoints(2000, 42)) {
    model.Observe(p, Surface(p));
  }
  model.Flush();
  const auto probes = TrainingPoints(500, 777);
  CheckStatsIdentity(model, probes);
  CheckBatchIdentity(model, probes);
}

TEST(VarianceStatsTest, StatsValueTracksScalarUnderInterleaving) {
  // Mirrors the sharded differential harness: a mixed Observe/Predict
  // stream, checking the identity continuously as the tree reshapes
  // (splits, compressions) rather than only at the end.
  const Box space = Box::Cube(2, 0.0, 1000.0);
  MlqModel model(space, DiffConfig(InsertionStrategy::kEager, 1800));
  Rng rng(1234);
  for (int i = 0; i < 3000; ++i) {
    const Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)};
    if (rng.NextDouble() < 0.6) {
      model.Observe(p, Surface(p));
    } else {
      EXPECT_EQ(model.Predict(p), model.PredictStats(p).value);
    }
  }
}

// ---------------------------------------------------------------------------
// NaN regression: the centralized SummaryTriple::Stddev().

TEST(VarianceStatsTest, EmptySummaryStddevIsZeroNotNan) {
  SummaryTriple t;
  EXPECT_EQ(t.count, 0);
  EXPECT_DOUBLE_EQ(t.Stddev(), 0.0);  // Was sqrt(0/0) = NaN before the fix.
  EXPECT_FALSE(std::isnan(t.Stddev()));
}

TEST(VarianceStatsTest, ConstantValuesHaveExactlyZeroStddev) {
  SummaryTriple t;
  for (int i = 0; i < 3; ++i) t.Add(5.0);
  EXPECT_DOUBLE_EQ(t.Stddev(), 0.0);
}

TEST(VarianceStatsTest, CancellationResidueNeverGoesNegative) {
  // Large near-constant values: SS - C*AVG^2 can land epsilon below zero
  // in floating point. The Sse() clamp must keep Stddev() at 0, never
  // sqrt(negative) = NaN.
  SummaryTriple t;
  t.sum = 3e8;
  t.count = 3;
  t.sum_squares = 3e16 - 3.0;  // Exact SSE would be -3: pure residue.
  EXPECT_DOUBLE_EQ(t.Sse(), 0.0);
  EXPECT_DOUBLE_EQ(t.Stddev(), 0.0);
  EXPECT_FALSE(std::isnan(t.Stddev()));

  SummaryTriple big;
  for (int i = 0; i < 1000; ++i) big.Add(1e8 + (i % 2 == 0 ? 1e-4 : -1e-4));
  EXPECT_FALSE(std::isnan(big.Stddev()));
  EXPECT_GE(big.Stddev(), 0.0);
}

TEST(VarianceStatsTest, EmptyTreePredictionHasZeroStddev) {
  // beta <= 0 admits the empty root as an answer; its summary has count
  // 0, which used to surface NaN stddev through the prediction path.
  const Box space = Box::Cube(2, 0.0, 1000.0);
  MlqConfig config = DiffConfig(InsertionStrategy::kEager, 1800);
  config.beta = 0;
  MlqModel model(space, config);
  const Prediction p = model.PredictDetailed(Point{500.0, 500.0});
  EXPECT_FALSE(std::isnan(p.stddev));
  EXPECT_DOUBLE_EQ(p.stddev, 0.0);
  const CostEstimate e = model.PredictStats(Point{500.0, 500.0});
  EXPECT_FALSE(std::isnan(e.stddev));
  EXPECT_DOUBLE_EQ(e.stddev, 0.0);
}

// ---------------------------------------------------------------------------
// Baseline models: the stats currency is honest where native, a safe
// default elsewhere.

TEST(VarianceStatsTest, GlobalAverageReportsNativeStats) {
  GlobalAverageModel model;
  const Point p{1.0, 2.0};
  const CostEstimate empty = model.PredictStats(p);
  EXPECT_DOUBLE_EQ(empty.value, 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev, 0.0);
  EXPECT_EQ(empty.count, 0);
  EXPECT_FALSE(empty.reliable);

  model.Observe(p, 10.0);
  model.Observe(p, 20.0);
  const CostEstimate stats = model.PredictStats(p);
  EXPECT_EQ(stats.value, model.Predict(p));
  EXPECT_DOUBLE_EQ(stats.value, 15.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 5.0);  // Population stddev of {10, 20}.
  EXPECT_EQ(stats.count, 2);
  EXPECT_TRUE(stats.reliable);
}

TEST(VarianceStatsTest, TrainedBaselinesKeepValueIdentity) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  const auto train = TrainingPoints(500, 9);
  std::vector<double> costs;
  costs.reserve(train.size());
  for (const Point& p : train) costs.push_back(Surface(p));

  EquiWidthHistogram histogram(space, 1800);
  histogram.Train(train, costs);
  OnlineGridModel grid(space, 1800);
  for (size_t i = 0; i < train.size(); ++i) grid.Observe(train[i], costs[i]);

  const auto probes = TrainingPoints(200, 321);
  for (const Point& p : probes) {
    const CostEstimate h = histogram.PredictStats(p);
    EXPECT_EQ(h.value, histogram.Predict(p));
    EXPECT_FALSE(std::isnan(h.stddev));
    EXPECT_GE(h.stddev, 0.0);
    const CostEstimate g = grid.PredictStats(p);
    EXPECT_EQ(g.value, grid.Predict(p));
    EXPECT_FALSE(std::isnan(g.stddev));
    EXPECT_GE(g.stddev, 0.0);
  }
}

TEST(VarianceStatsTest, ConfidenceHalfWidthShrinksWithSupport) {
  CostEstimate none{10.0, 4.0, 0, false};
  EXPECT_DOUBLE_EQ(none.ConfidenceHalfWidth(), 0.0);
  CostEstimate one{10.0, 4.0, 1, true};
  EXPECT_DOUBLE_EQ(one.ConfidenceHalfWidth(), 1.96 * 4.0);
  CostEstimate four{10.0, 4.0, 4, true};
  EXPECT_DOUBLE_EQ(four.ConfidenceHalfWidth(), 1.96 * 2.0);
  EXPECT_LT(four.ConfidenceHalfWidth(), one.ConfidenceHalfWidth());
}

}  // namespace
}  // namespace mlq
