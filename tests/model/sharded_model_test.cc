// Deterministic stress tests for the sharded concurrent serving layer:
// fixed-seed worker threads interleave Predict/Observe/Flush, then a final
// drain must leave every shard tree structurally sound and account for
// every submitted observation (applied + dropped == submitted).

#include "model/sharded_model.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/feedback_queue.h"
#include "common/rng.h"
#include "eval/experiment_setup.h"
#include "quadtree/tree_stats.h"

namespace mlq {
namespace {

MlqConfig TestConfig(int64_t budget = 8192) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kLazy;
  config.max_depth = 6;
  config.beta = 1;
  config.memory_limit_bytes = budget;
  return config;
}

// ---------------------------------------------------------------------------
// Feedback queue

TEST(FeedbackQueueTest, FifoOrderAndCounts) {
  BoundedFeedbackQueue<int> queue(4);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.size(), 3u);
  std::vector<int> out;
  EXPECT_EQ(queue.PopBatch(&out, 2), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1}));
  EXPECT_EQ(queue.PopBatch(&out), 1u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.pushed(), 3);
  EXPECT_EQ(queue.dropped(), 0);
}

TEST(FeedbackQueueTest, DropsOldestOnOverflow) {
  BoundedFeedbackQueue<int> queue(3);
  for (int i = 0; i < 5; ++i) queue.Push(i);
  EXPECT_EQ(queue.dropped(), 2);
  EXPECT_EQ(queue.pushed(), 5);
  std::vector<int> out;
  queue.PopBatch(&out);
  // 0 and 1 were overwritten; the newest three survive in order.
  EXPECT_EQ(out, (std::vector<int>{2, 3, 4}));
}

// ---------------------------------------------------------------------------
// Sharded model basics (single-threaded semantics)

TEST(ShardedModelTest, ShardMappingIsDeterministicAndInRange) {
  const Box space = Box::Cube(3, 0.0, 1000.0);
  ShardedModelOptions options;
  options.num_shards = 8;
  ShardedCostModel model(space, TestConfig(), options);
  EXPECT_EQ(model.num_shards(), 8);
  EXPECT_EQ(model.name(), "MLQ-Sx8");

  Rng rng(11);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 2000; ++i) {
    Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0),
            rng.Uniform(0.0, 1000.0)};
    const int shard = model.ShardOf(p);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 8);
    EXPECT_EQ(model.ShardOf(p), shard);  // Deterministic.
    ++hits[static_cast<size_t>(shard)];
  }
  // The quantized-point hash must actually stripe a uniform workload: no
  // shard may be starved or hogging (expected 250 each).
  for (int count : hits) {
    EXPECT_GT(count, 100);
    EXPECT_LT(count, 500);
  }
}

TEST(ShardedModelTest, ObserveIsQueuedUntilDrained) {
  const Box space = Box::Cube(2, 0.0, 100.0);
  ShardedModelOptions options;
  options.num_shards = 2;
  options.drain_on_predict = false;
  options.drain_batch = 0;  // No opportunistic drain: queue until Flush.
  ShardedCostModel model(space, TestConfig(), options);

  model.Observe(Point{10.0, 10.0}, 42.0);
  ShardedModelStats stats = model.stats();
  EXPECT_EQ(stats.observations_submitted, 1);
  EXPECT_EQ(stats.observations_applied, 0);
  EXPECT_EQ(stats.pending, 1);
  EXPECT_EQ(model.update_breakdown().insertions, 0);

  model.Flush();
  stats = model.stats();
  EXPECT_EQ(stats.observations_applied, 1);
  EXPECT_EQ(stats.pending, 0);
  EXPECT_EQ(model.update_breakdown().insertions, 1);
  EXPECT_DOUBLE_EQ(model.Predict(Point{10.0, 10.0}), 42.0);
}

TEST(ShardedModelTest, PredictDrainsOwnShard) {
  const Box space = Box::Cube(2, 0.0, 100.0);
  ShardedModelOptions options;
  options.num_shards = 1;
  options.drain_on_predict = true;
  options.drain_batch = 0;
  ShardedCostModel model(space, TestConfig(), options);

  model.Observe(Point{10.0, 10.0}, 42.0);
  // Read-your-writes: the prediction path applies the pending feedback.
  EXPECT_DOUBLE_EQ(model.Predict(Point{10.0, 10.0}), 42.0);
  EXPECT_EQ(model.stats().observations_applied, 1);
}

TEST(ShardedModelTest, BoundedQueueDropsOldestAndCountsIt) {
  const Box space = Box::Cube(1, 0.0, 100.0);
  ShardedModelOptions options;
  options.num_shards = 1;
  options.queue_capacity = 8;
  options.drain_on_predict = false;
  options.drain_batch = 0;
  ShardedCostModel model(space, TestConfig(), options);

  for (int i = 0; i < 20; ++i) {
    model.Observe(Point{50.0}, static_cast<double>(i));
  }
  model.Flush();
  const ShardedModelStats stats = model.stats();
  EXPECT_EQ(stats.observations_submitted, 20);
  EXPECT_EQ(stats.observations_dropped, 12);
  EXPECT_EQ(stats.observations_applied, 8);
  EXPECT_EQ(stats.observations_applied + stats.observations_dropped,
            stats.observations_submitted);
}

TEST(ShardedModelTest, BudgetIsSplitAcrossShards) {
  const Box space = Box::Cube(2, 0.0, 1000.0);
  ShardedModelOptions options;
  options.num_shards = 4;
  const int64_t budget = 4096;
  ShardedCostModel model(space, TestConfig(budget), options);

  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    model.Observe(Point{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)},
                  rng.Uniform(0.0, 100.0));
  }
  model.Flush();
  // Every shard respects its slice, so the sum respects the total.
  for (int s = 0; s < model.num_shards(); ++s) {
    EXPECT_LE(model.shard_model(s).MemoryBytes(), budget / 4);
  }
  EXPECT_LE(model.MemoryBytes(), budget);
}

// ---------------------------------------------------------------------------
// Deterministic multithreaded stress

class ShardedStressTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedStressTest, InterleavedPredictObserveFlushKeepsInvariants) {
  const int num_shards = GetParam();
  const Box space = Box::Cube(3, 0.0, 1000.0);
  ShardedModelOptions options;
  options.num_shards = num_shards;
  options.queue_capacity = 256;
  options.drain_batch = 64;
  options.drain_on_predict = true;
  ShardedCostModel model(space, TestConfig(/*budget=*/6144), options);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  std::atomic<int64_t> predictions_seen{0};
  std::atomic<int64_t> observations_sent{0};
  std::atomic<bool> negative_prediction{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    // Fixed per-thread seed: the op sequence each worker runs is fully
    // deterministic; only the interleaving varies run to run. No gtest
    // assertions inside workers (gtest failures are main-thread-only);
    // anomalies are flagged and checked after the join.
    threads.emplace_back([&model, &predictions_seen, &observations_sent,
                          &negative_prediction, t]() {
      Rng rng(9000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        Point p{rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0),
                rng.Uniform(0.0, 1000.0)};
        const double dice = rng.NextDouble();
        if (dice < 0.60) {
          // Costs fed in are non-negative, so averages must be too.
          if (model.Predict(p) < 0.0) negative_prediction.store(true);
          predictions_seen.fetch_add(1, std::memory_order_relaxed);
        } else if (dice < 0.98) {
          model.Observe(p, rng.Uniform(0.0, 10000.0));
          observations_sent.fetch_add(1, std::memory_order_relaxed);
        } else {
          model.Flush();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(negative_prediction.load());

  // Final drain, then the books must balance exactly.
  model.Flush();
  const ShardedModelStats stats = model.stats();
  EXPECT_EQ(stats.observations_submitted, observations_sent.load());
  EXPECT_EQ(stats.pending, 0);
  EXPECT_EQ(stats.observations_applied + stats.observations_dropped,
            stats.observations_submitted);
  EXPECT_EQ(stats.predictions, predictions_seen.load());

  // The trees absorbed exactly the applied observations.
  const QuadtreeCounters counters = model.AggregateTreeCounters();
  EXPECT_EQ(counters.insertions, stats.observations_applied);

  // Every shard tree is structurally sound and within its budget.
  std::vector<TreeStats> per_shard;
  for (int s = 0; s < model.num_shards(); ++s) {
    std::string error;
    EXPECT_TRUE(model.shard_model(s).tree().CheckInvariants(&error))
        << "shard " << s << ": " << error;
    per_shard.push_back(ComputeTreeStats(model.shard_model(s).tree()));
  }
  EXPECT_LE(model.MemoryBytes(), 6144);

  // Aggregated introspection stays coherent: every shard root exists from
  // construction (not counted in nodes_created), the rest reconcile with
  // the create/free counters.
  const TreeStats merged = MergeTreeStats(per_shard);
  EXPECT_EQ(merged.num_nodes,
            counters.nodes_created - counters.nodes_freed + model.num_shards());
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedStressTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ShardedModelTest, BackgroundDrainerAppliesFeedbackWithoutFlush) {
  const Box space = Box::Cube(2, 0.0, 100.0);
  ShardedModelOptions options;
  options.num_shards = 2;
  options.drain_on_predict = false;
  options.drain_batch = 0;
  options.background_drain = true;
  options.drain_interval_micros = 200;
  ShardedCostModel model(space, TestConfig(), options);

  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    model.Observe(Point{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)},
                  rng.Uniform(0.0, 10.0));
  }
  // The drainer owns the application; wait (bounded) for it to catch up.
  for (int spins = 0; spins < 2000 && model.stats().pending > 0; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ShardedModelStats stats = model.stats();
  EXPECT_EQ(stats.pending, 0);
  EXPECT_EQ(stats.observations_applied + stats.observations_dropped, 200);
}

}  // namespace
}  // namespace mlq
