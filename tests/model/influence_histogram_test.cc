// Tests for the influence-weighted histogram (SH-V): the interval
// allocation the SH paper proposed but never specified.

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/experiment_setup.h"
#include "model/static_histogram.h"

namespace mlq {
namespace {

// Training data where only dimension `active_dim` matters.
void MakeSingleDimensionData(int dims, int active_dim, int n, uint64_t seed,
                             std::vector<Point>* points,
                             std::vector<double>* costs) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Point p(dims);
    for (int d = 0; d < dims; ++d) p[d] = rng.Uniform(0.0, 100.0);
    points->push_back(p);
    costs->push_back(10.0 * p[active_dim]);
  }
}

TEST(InfluenceHistogramTest, UntrainedPredictsZero) {
  InfluenceWeightedHistogram h(Box::Cube(3, 0.0, 100.0), 1800);
  EXPECT_FALSE(h.trained());
  EXPECT_DOUBLE_EQ(h.Predict(Point{1.0, 2.0, 3.0}), 0.0);
  EXPECT_FALSE(h.IsSelfTuning());
  EXPECT_EQ(h.name(), "SH-V");
}

TEST(InfluenceHistogramTest, AllIntervalsGoToTheInfluentialDimension) {
  const Box space = Box::Cube(4, 0.0, 100.0);
  std::vector<Point> points;
  std::vector<double> costs;
  MakeSingleDimensionData(4, /*active_dim=*/2, 3000, 1, &points, &costs);
  InfluenceWeightedHistogram h(space, 1800);
  h.Train(points, costs);

  ASSERT_EQ(h.intervals().size(), 4u);
  // Dimension 2 dominates the influence scores...
  for (int d = 0; d < 4; ++d) {
    if (d == 2) continue;
    EXPECT_GT(h.influence()[2], 10.0 * h.influence()[static_cast<size_t>(d)]);
  }
  // ...so it receives (nearly) all the intervals: with 1800 bytes a single
  // active dimension can afford >= 64 intervals, the rest stay at 1.
  EXPECT_GE(h.intervals()[2], 64);
  for (int d = 0; d < 4; ++d) {
    if (d == 2) continue;
    EXPECT_EQ(h.intervals()[static_cast<size_t>(d)], 1) << "dim " << d;
  }
  EXPECT_LE(h.MemoryBytes(), 1800);
}

TEST(InfluenceHistogramTest, BeatsPlainGridWhenOneDimensionMatters) {
  // The whole point of the feature: on a cost surface driven by one of four
  // variables, SH-V's focused grid out-predicts SH-W's uniform 3^4 grid at
  // equal memory.
  const Box space = Box::Cube(4, 0.0, 100.0);
  std::vector<Point> train_points;
  std::vector<double> train_costs;
  MakeSingleDimensionData(4, 1, 4000, 2, &train_points, &train_costs);

  InfluenceWeightedHistogram focused(space, 1800);
  focused.Train(train_points, train_costs);
  EquiWidthHistogram plain(space, 1800);
  plain.Train(std::span<const Point>(train_points),
              std::span<const double>(train_costs));

  Rng rng(3);
  double focused_err = 0.0;
  double plain_err = 0.0;
  for (int i = 0; i < 2000; ++i) {
    Point q(4);
    for (int d = 0; d < 4; ++d) q[d] = rng.Uniform(0.0, 100.0);
    const double actual = 10.0 * q[1];
    focused_err += std::abs(focused.Predict(q) - actual);
    plain_err += std::abs(plain.Predict(q) - actual);
  }
  EXPECT_LT(focused_err, 0.25 * plain_err);
}

TEST(InfluenceHistogramTest, SymmetricInfluenceGetsBalancedIntervals) {
  // Cost depends equally on both dimensions: intervals should split about
  // evenly (within the doubling granularity).
  const Box space = Box::Cube(2, 0.0, 100.0);
  std::vector<Point> points;
  std::vector<double> costs;
  Rng rng(4);
  for (int i = 0; i < 4000; ++i) {
    Point p{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    points.push_back(p);
    costs.push_back(p[0] + p[1]);
  }
  InfluenceWeightedHistogram h(space, 1800);
  h.Train(points, costs);
  const int a = h.intervals()[0];
  const int b = h.intervals()[1];
  EXPECT_LE(std::max(a, b), 2 * std::min(a, b));
  EXPECT_GE(a * b, 64) << "the budget affords a reasonably fine 2-d grid";
}

TEST(InfluenceHistogramTest, ConstantCostSurfaceDegeneratesGracefully) {
  const Box space = Box::Cube(3, 0.0, 10.0);
  std::vector<Point> points;
  std::vector<double> costs;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    points.push_back(
        Point{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)});
    costs.push_back(42.0);
  }
  InfluenceWeightedHistogram h(space, 1800);
  h.Train(points, costs);
  // No influence anywhere: a single bucket answering the global average.
  EXPECT_EQ(h.num_buckets(), 1);
  EXPECT_DOUBLE_EQ(h.Predict(Point{5.0, 5.0, 5.0}), 42.0);
}

TEST(InfluenceHistogramTest, EmptyTraining) {
  InfluenceWeightedHistogram h(Box::Cube(2, 0.0, 1.0), 1800);
  h.Train({}, {});
  EXPECT_TRUE(h.trained());
  EXPECT_DOUBLE_EQ(h.Predict(Point{0.5, 0.5}), 0.0);
}

TEST(InfluenceHistogramTest, CompetitiveOnPaperSurfaces) {
  // On the paper's synthetic surfaces (all four dimensions matter through
  // Euclidean distance) SH-V should roughly match SH-W, not collapse.
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/50, 0.0, /*seed=*/6);
  const Box space = udf->model_space();
  const TrainTestWorkload workloads = MakePaperTrainTestWorkloads(
      space, QueryDistributionKind::kUniform, 3000, 2000, 7);
  std::vector<double> train_costs;
  for (const Point& p : workloads.training) {
    train_costs.push_back(udf->Execute(p).cpu_work);
  }

  InfluenceWeightedHistogram v(space, kPaperMemoryBytes);
  v.Train(workloads.training, train_costs);
  EquiWidthHistogram w(space, kPaperMemoryBytes);
  w.Train(std::span<const Point>(workloads.training),
          std::span<const double>(train_costs));

  double v_err = 0.0;
  double w_err = 0.0;
  double act = 0.0;
  for (const Point& q : workloads.test) {
    const double actual = udf->Execute(q).cpu_work;
    v_err += std::abs(v.Predict(q) - actual);
    w_err += std::abs(w.Predict(q) - actual);
    act += actual;
  }
  EXPECT_LT(v_err / act, 1.3 * (w_err / act) + 0.02);
}

}  // namespace
}  // namespace mlq
