#include "model/online_grid_model.h"

#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"

namespace mlq {
namespace {

TEST(OnlineGridTest, SizesGridToBudget) {
  // 12 bytes per self-tuning bucket: 1800 / 12 = 150; for d = 4, 3^4 = 81
  // buckets fit, 4^4 = 256 do not.
  OnlineGridModel model(Box::Cube(4, 0.0, 1000.0), 1800);
  EXPECT_EQ(model.intervals_per_dim(), 3);
  EXPECT_EQ(model.num_buckets(), 81);
  EXPECT_LE(model.MemoryBytes(), 1800);
  EXPECT_TRUE(model.IsSelfTuning());
  EXPECT_EQ(model.name(), "ST-GRID");
}

TEST(OnlineGridTest, LearnsBucketAverages) {
  OnlineGridModel model(Box::Cube(1, 0.0, 100.0), 120);  // 10 buckets.
  EXPECT_EQ(model.intervals_per_dim(), 10);
  model.Observe(Point{5.0}, 10.0);
  model.Observe(Point{6.0}, 20.0);
  model.Observe(Point{95.0}, 500.0);
  EXPECT_DOUBLE_EQ(model.Predict(Point{3.0}), 15.0);
  EXPECT_DOUBLE_EQ(model.Predict(Point{99.0}), 500.0);
}

TEST(OnlineGridTest, EmptyBucketFallsBackToGlobalAverage) {
  OnlineGridModel model(Box::Cube(1, 0.0, 100.0), 120);
  EXPECT_DOUBLE_EQ(model.Predict(Point{50.0}), 0.0);  // Nothing at all yet.
  model.Observe(Point{5.0}, 100.0);
  EXPECT_DOUBLE_EQ(model.Predict(Point{55.0}), 100.0);  // Global fallback.
}

TEST(OnlineGridTest, OutOfRangeClamped) {
  OnlineGridModel model(Box::Cube(1, 0.0, 100.0), 120);
  model.Observe(Point{150.0}, 42.0);  // Clamps into the last bucket.
  EXPECT_DOUBLE_EQ(model.Predict(Point{99.0}), 42.0);
}

TEST(OnlineGridTest, IgnoresNonFiniteFeedback) {
  OnlineGridModel model(Box::Cube(1, 0.0, 100.0), 120);
  model.Observe(Point{5.0}, std::numeric_limits<double>::quiet_NaN());
  model.Observe(Point{5.0}, std::numeric_limits<double>::infinity());
  EXPECT_EQ(model.update_breakdown().insertions, 0);
  model.Observe(Point{5.0}, 7.0);
  EXPECT_DOUBLE_EQ(model.Predict(Point{5.0}), 7.0);
}

TEST(OnlineGridTest, MlqBeatsFlatGridOnSkewedWorkload) {
  // The hierarchy ablation: with clustered queries MLQ concentrates its
  // budget where the workload lives; the flat grid cannot.
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/100, 0.0, /*seed=*/11);
  const Box space = udf->model_space();
  const auto queries = MakePaperWorkload(
      space, QueryDistributionKind::kGaussianRandom, 4000, /*seed=*/12);

  MlqModel mlq(space, MakePaperMlqConfig(InsertionStrategy::kLazy,
                                         CostKind::kCpu));
  OnlineGridModel grid(space, kPaperMemoryBytes);
  double mlq_err = 0.0;
  double grid_err = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const Point& q = queries[i];
    const double actual = udf->Execute(q).cpu_work;
    if (i > 500) {
      mlq_err += std::abs(mlq.Predict(q) - actual);
      grid_err += std::abs(grid.Predict(q) - actual);
    }
    mlq.Observe(q, actual);
    grid.Observe(q, actual);
  }
  EXPECT_LT(mlq_err, grid_err);
}

}  // namespace
}  // namespace mlq
