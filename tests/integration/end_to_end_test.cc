// Integration tests that exercise the full stack: substrates -> UDFs ->
// workloads -> cost models -> evaluation, in small versions of the paper's
// experiments.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"

namespace mlq {
namespace {

TEST(EndToEndTest, SyntheticComparisonClusteredQueriesMlqWins) {
  // Fig. 8 shape on the skewed (Gaussian) workloads: self-tuning MLQ beats
  // the a-priori-trained histograms outright, because it spends its budget
  // where the queries actually are.
  auto udf =
      MakePaperSyntheticUdf(/*num_peaks=*/100, /*noise=*/0.0, /*seed=*/1100);
  const TrainTestWorkload workloads = MakePaperTrainTestWorkloads(
      udf->model_space(), QueryDistributionKind::kGaussianRandom, 2000, 2000,
      10);
  const auto results =
      CompareAllMethods(*udf, workloads.training, workloads.test,
                        CostKind::kCpu, kPaperMemoryBytes);
  const EvalResult& mlq_e = results[0];
  const EvalResult& sh_h = results[2];
  const EvalResult& sh_w = results[3];
  EXPECT_LT(mlq_e.nae, std::min(sh_h.nae, sh_w.nae) + 0.02)
      << "MLQ-E should beat a-priori-trained SH on clustered queries";
}

TEST(EndToEndTest, SyntheticComparisonUniformQueriesMlqCompetitive) {
  // On uniform queries there is no skew for MLQ to exploit, and the flat SH
  // grid is byte-for-byte denser; the paper reports parity, we accept a
  // bounded gap (see EXPERIMENTS.md for the discussion).
  auto udf =
      MakePaperSyntheticUdf(/*num_peaks=*/100, /*noise=*/0.0, /*seed=*/1100);
  const TrainTestWorkload workloads = MakePaperTrainTestWorkloads(
      udf->model_space(), QueryDistributionKind::kUniform, 2000, 2000, 12);
  const auto results =
      CompareAllMethods(*udf, workloads.training, workloads.test,
                        CostKind::kCpu, kPaperMemoryBytes);
  const EvalResult& mlq_l = results[1];
  const EvalResult& sh_h = results[2];
  EXPECT_LT(mlq_l.nae, 1.4 * sh_h.nae + 0.02)
      << "MLQ-L should stay within a modest factor of SH on uniform queries";
}

TEST(EndToEndTest, AllModelsRespectMemoryBudgetOnRealUdfs) {
  const RealUdfSuite suite = MakeRealUdfSuite(SubstrateScale::kSmall);
  for (const auto& udf : suite.udfs) {
    MlqModel model(udf->model_space(),
                   MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));
    const auto queries = MakePaperWorkload(
        udf->model_space(), QueryDistributionKind::kGaussianRandom, 300, 12);
    for (const Point& q : queries) {
      const double actual = udf->Execute(q).cpu_work;
      model.Observe(q, actual);
      ASSERT_LE(model.MemoryBytes(), kPaperMemoryBytes)
          << "over budget on " << udf->name();
    }
    std::string error;
    ASSERT_TRUE(model.tree().CheckInvariants(&error))
        << udf->name() << ": " << error;
  }
}

TEST(EndToEndTest, SelfTuningAdaptsToDriftStaticsDoNot) {
  // The motivating claim of the paper: feedback-driven models track a
  // drifting workload, a-priori-trained models go stale. SH is trained on a
  // phase-1 distribution that never visits the expensive region; the
  // workload then drifts onto the tallest peak, where the static model's
  // predictions are badly wrong while MLQ learns the new costs from
  // feedback. (Drift onto a *zero-cost* region is the algorithm's known
  // weak spot — the NAE denominator vanishes and stale high-SSE structure
  // is never evicted; see EXPERIMENTS.md.)
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/30, /*noise=*/0.0, /*seed=*/55);
  const Box space = udf->model_space();
  const Point hot = udf->surface().peaks()[0].center;  // Tallest peak.

  WorkloadConfig phase1;
  phase1.kind = QueryDistributionKind::kGaussianRandom;
  phase1.num_points = 2000;
  phase1.seed = 100;
  const auto training = GenerateQueryPoints(space, phase1);

  // Test stream: phase 1's distribution, then Gaussian around the peak.
  auto test = GenerateQueryPoints(space, phase1);
  Rng rng(321);
  for (int i = 0; i < 2000; ++i) {
    Point q(space.dims());
    for (int d = 0; d < space.dims(); ++d) {
      q[d] = std::clamp(rng.Gaussian(hot[d], 0.05 * space.Extent(d)),
                        space.lo()[d], space.hi()[d]);
    }
    test.push_back(q);
  }

  EvalOptions options;
  options.cost_kind = CostKind::kCpu;
  options.learning_curve_window = 500;

  udf->ResetState();
  MlqModel mlq(space, MakePaperMlqConfig(InsertionStrategy::kEager,
                                         CostKind::kCpu));
  const EvalResult mlq_result =
      RunSelfTuningEvaluation(mlq, *udf, test, options);

  udf->ResetState();
  EquiHeightHistogram sh(space, kPaperMemoryBytes);
  const EvalResult sh_result =
      RunStaticEvaluation(sh, *udf, training, test, options);

  // Compare on the drifted tail (the last window).
  ASSERT_GE(mlq_result.learning_curve.size(), 2u);
  const double mlq_tail = mlq_result.learning_curve.back();
  const double sh_tail = sh_result.learning_curve.back();
  EXPECT_LT(mlq_tail, sh_tail)
      << "self-tuning must beat the stale static model on the drifted "
         "high-cost region";
}

TEST(EndToEndTest, IoCostModelingWorksThroughBufferPool) {
  // Exercise the full IO path: real UDF (WIN), disk-IO cost, beta = 10.
  const RealUdfSuite suite = MakeRealUdfSuite(SubstrateScale::kSmall);
  CostedUdf* win = suite.Find("WIN");
  ASSERT_NE(win, nullptr);
  MlqModel model(win->model_space(),
                 MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kIo));
  const auto queries = MakePaperWorkload(
      win->model_space(), QueryDistributionKind::kGaussianRandom, 500, 13);
  const EvalResult result = RunSelfTuningEvaluation(
      model, *win, queries, EvalOptions{.cost_kind = CostKind::kIo});
  EXPECT_EQ(result.num_queries, 500);
  EXPECT_GT(result.total_udf_micros, 0.0);
  // Some queries hit cache (io = 0), some miss; predictions must be finite
  // and non-negative throughout, which nae being finite attests.
  EXPECT_GE(result.nae, 0.0);
  EXPECT_LT(result.nae, 100.0);
}

TEST(EndToEndTest, LazyUpdatesAreCheaperEagerPredictsBetterOnCpu) {
  // The paper's Experiment 2 trend: MLQ-L compresses far less than MLQ-E.
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/50, /*noise=*/0.0, /*seed=*/88);
  const auto test = MakePaperWorkload(
      udf->model_space(), QueryDistributionKind::kUniform, 3000, 14);

  udf->ResetState();
  MlqModel eager(udf->model_space(),
                 MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));
  const EvalResult eager_result =
      RunSelfTuningEvaluation(eager, *udf, test, EvalOptions{});

  udf->ResetState();
  MlqModel lazy(udf->model_space(),
                MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kCpu));
  const EvalResult lazy_result =
      RunSelfTuningEvaluation(lazy, *udf, test, EvalOptions{});

  EXPECT_LT(lazy_result.compressions, eager_result.compressions);
}

}  // namespace
}  // namespace mlq
