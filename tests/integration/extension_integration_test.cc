// Cross-extension integration: the paper-faithful core combined with the
// repository's extensions, exercised together the way a deployment would.

#include <cmath>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/experiment_setup.h"
#include "eval/trace.h"
#include "model/mlq_model.h"
#include "model/partitioned_model.h"
#include "model/serialization.h"
#include "udf/transformed_udf.h"

namespace mlq {
namespace {

TEST(ExtensionIntegrationTest, TransformedModelSurvivesCatalogRoundTrip) {
  // Transform -> train -> serialize -> load -> identical predictions on the
  // transformed space.
  const RealUdfSuite suite = MakeRealUdfSuite(SubstrateScale::kSmall);
  CostedUdf* win = suite.Find("WIN");
  std::vector<std::unique_ptr<VariableTransform>> vars;
  vars.push_back(Identity(0));
  vars.push_back(Identity(1));
  vars.push_back(Product(2, 3));
  auto transform = std::make_shared<const ArgumentTransform>(
      win->model_space(), std::move(vars));
  TransformedUdf transformed(win, transform);

  MlqModel model(transformed.model_space(),
                 MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kCpu));
  const auto queries = MakePaperWorkload(
      transformed.execution_space(), QueryDistributionKind::kGaussianRandom,
      1000, 5);
  for (const Point& q : queries) {
    model.Observe(transformed.ToModelPoint(q), transformed.Execute(q).cpu_work);
  }

  std::string error;
  auto restored = DeserializeQuadtree(SerializeQuadtree(model.tree()), &error);
  ASSERT_NE(restored, nullptr) << error;
  for (int i = 0; i < 200; ++i) {
    const Point& q = queries[static_cast<size_t>(i)];
    const Point mp = transformed.ToModelPoint(q);
    ASSERT_DOUBLE_EQ(model.Predict(mp), restored->Predict(mp).value);
  }
}

TEST(ExtensionIntegrationTest, TraceReplayIntoPartitionedModel) {
  // Nominal routing over traces: capture per-UDF traces, replay each into
  // its partition of one shared-budget PartitionedCostModel.
  const RealUdfSuite suite = MakeRealUdfSuite(SubstrateScale::kSmall);
  CostedUdf* knn = suite.Find("KNN");
  CostedUdf* range = suite.Find("RANGE");
  ASSERT_EQ(knn->model_space().dims(), range->model_space().dims());

  PartitionedCostModel model(
      [&](int64_t budget) {
        return std::make_unique<MlqModel>(
            knn->model_space(),
            MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu,
                               budget));
      },
      /*max_partitions=*/2, /*total_budget=*/5400);

  const auto points = MakePaperWorkload(
      knn->model_space(), QueryDistributionKind::kUniform, 400, 6);
  const auto knn_trace = CaptureTrace(*knn, points);
  const auto range_trace = CaptureTrace(*range, points);
  for (const TraceRecord& r : knn_trace) model.Observe(1, r.point, r.cpu_cost);
  for (const TraceRecord& r : range_trace) {
    model.Observe(2, r.point, r.cpu_cost);
  }

  // Each partition should reflect its own UDF's cost level at a dense
  // probe (KNN and RANGE have very different magnitudes).
  double knn_avg = 0.0;
  double range_avg = 0.0;
  for (const TraceRecord& r : knn_trace) knn_avg += r.cpu_cost;
  for (const TraceRecord& r : range_trace) range_avg += r.cpu_cost;
  knn_avg /= static_cast<double>(knn_trace.size());
  range_avg /= static_cast<double>(range_trace.size());

  double knn_pred = 0.0;
  double range_pred = 0.0;
  for (const Point& p : points) {
    knn_pred += model.Predict(1, p);
    range_pred += model.Predict(2, p);
  }
  knn_pred /= static_cast<double>(points.size());
  range_pred /= static_cast<double>(points.size());
  // At 1800 bytes per partition predictions are coarse; what must hold is
  // that each partition tracks its own UDF's cost level (within 40%) and
  // the budget is honored.
  EXPECT_NEAR(knn_pred, knn_avg, 0.40 * knn_avg);
  EXPECT_NEAR(range_pred, range_avg, 0.40 * range_avg);
  EXPECT_LE(model.MemoryBytes(), 5400);
}

TEST(ExtensionIntegrationTest, AutoExpandWithRecencyUnderGrowingDriftingLoad) {
  // Everything at once: a workload whose argument range grows over time
  // (auto_expand) while its locality drifts (recency decay), at a tight
  // budget, with noisy values. The model must remain bounded, consistent,
  // and usable throughout.
  MlqConfig config;
  config.strategy = InsertionStrategy::kLazy;
  config.memory_limit_bytes = 1800;
  config.auto_expand = true;
  config.recency_half_life = 500.0;
  MemoryLimitedQuadtree tree(Box::Cube(2, 0.0, 10.0), config);

  Rng rng(7);
  double center = 5.0;
  double scale = 10.0;
  for (int i = 0; i < 3000; ++i) {
    if (i % 500 == 499) {
      scale *= 2.0;             // Range grows.
      center = scale * rng.NextDouble();  // Locality jumps.
    }
    Point p{std::clamp(rng.Gaussian(center, scale * 0.05), 0.0, scale),
            std::clamp(rng.Gaussian(center, scale * 0.05), 0.0, scale)};
    tree.Insert(p, rng.Uniform(0.0, 100.0));
    ASSERT_LE(tree.memory_used(), 1800);
  }
  std::string error;
  EXPECT_TRUE(tree.CheckInvariants(&error)) << error;
  EXPECT_TRUE(tree.space().ContainsClosed(Point{0.0, 0.0}));
  EXPECT_GE(tree.space().hi()[0], 80.0);  // Expanded several times.
  const Prediction p = tree.Predict(Point{center, center});
  EXPECT_GE(p.value, 0.0);
  EXPECT_LE(p.value, 100.0);
}

TEST(ExtensionIntegrationTest, TraceTextFormatIsStableAcrossWriteRead) {
  // A trace written by one component and read by another (the CLI, a test,
  // a user script) must agree byte-for-byte on re-serialization.
  auto udf = MakePaperSyntheticUdf(10, 0.0, 8);
  const auto points = MakePaperWorkload(
      udf->model_space(), QueryDistributionKind::kUniform, 100, 9);
  const auto records = CaptureTrace(*udf, points);

  std::stringstream first;
  WriteTrace(first, records, 4);
  std::vector<TraceRecord> loaded;
  std::string error;
  std::stringstream reread(first.str());
  ASSERT_TRUE(ReadTrace(reread, &loaded, &error)) << error;
  std::stringstream second;
  WriteTrace(second, loaded, 4);
  EXPECT_EQ(first.str(), second.str());
}

}  // namespace
}  // namespace mlq
