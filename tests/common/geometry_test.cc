#include "common/geometry.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mlq {
namespace {

TEST(PointTest, ConstructionAndAccess) {
  Point p(3, 2.5);
  EXPECT_EQ(p.dims(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(p[i], 2.5);
  p[1] = -1.0;
  EXPECT_DOUBLE_EQ(p[1], -1.0);
}

TEST(PointTest, InitializerList) {
  Point p{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(p.dims(), 4);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[3], 4.0);
}

TEST(PointTest, DefaultIsZeroDimensional) {
  Point p;
  EXPECT_EQ(p.dims(), 0);
}

TEST(PointTest, Equality) {
  EXPECT_EQ((Point{1.0, 2.0}), (Point{1.0, 2.0}));
  EXPECT_FALSE((Point{1.0, 2.0}) == (Point{1.0, 2.1}));
  EXPECT_FALSE((Point{1.0, 2.0}) == (Point{1.0, 2.0, 0.0}));
}

TEST(PointTest, Distance) {
  Point a{0.0, 0.0};
  Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), 5.0);
  EXPECT_DOUBLE_EQ(b.DistanceTo(a), 5.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(a), 0.0);
}

TEST(PointTest, ToStringContainsCoordinates) {
  Point p{1.5, -2.0};
  EXPECT_EQ(p.ToString(), "(1.5, -2)");
}

TEST(BoxTest, CubeAndAccessors) {
  Box b = Box::Cube(4, 0.0, 1000.0);
  EXPECT_EQ(b.dims(), 4);
  EXPECT_DOUBLE_EQ(b.lo()[2], 0.0);
  EXPECT_DOUBLE_EQ(b.hi()[2], 1000.0);
  EXPECT_DOUBLE_EQ(b.Extent(0), 1000.0);
  EXPECT_DOUBLE_EQ(b.Volume(), 1e12);
  EXPECT_DOUBLE_EQ(b.DiagonalLength(), 1000.0 * 2.0);  // sqrt(4) * 1000
}

TEST(BoxTest, ContainsHalfOpen) {
  Box b = Box::Cube(2, 0.0, 10.0);
  EXPECT_TRUE(b.Contains(Point{0.0, 0.0}));
  EXPECT_TRUE(b.Contains(Point{9.999, 5.0}));
  EXPECT_FALSE(b.Contains(Point{10.0, 5.0}));
  EXPECT_FALSE(b.Contains(Point{-0.001, 5.0}));
}

TEST(BoxTest, ContainsClosedIncludesUpperEdge) {
  Box b = Box::Cube(2, 0.0, 10.0);
  EXPECT_TRUE(b.ContainsClosed(Point{10.0, 10.0}));
  EXPECT_FALSE(b.ContainsClosed(Point{10.0001, 10.0}));
}

TEST(BoxTest, Center) {
  Box b(Point{0.0, 10.0}, Point{4.0, 20.0});
  EXPECT_EQ(b.Center(), (Point{2.0, 15.0}));
}

TEST(BoxTest, ChildBoxesTwoDims) {
  Box b = Box::Cube(2, 0.0, 8.0);
  // Bit 0 -> dim 0 upper half, bit 1 -> dim 1 upper half.
  EXPECT_EQ(b.Child(0), Box(Point{0.0, 0.0}, Point{4.0, 4.0}));
  EXPECT_EQ(b.Child(1), Box(Point{4.0, 0.0}, Point{8.0, 4.0}));
  EXPECT_EQ(b.Child(2), Box(Point{0.0, 4.0}, Point{4.0, 8.0}));
  EXPECT_EQ(b.Child(3), Box(Point{4.0, 4.0}, Point{8.0, 8.0}));
}

TEST(BoxTest, ChildIndexMidpointGoesUp) {
  Box b = Box::Cube(1, 0.0, 8.0);
  EXPECT_EQ(b.ChildIndexOf(Point{3.999}), 0);
  EXPECT_EQ(b.ChildIndexOf(Point{4.0}), 1);
}

TEST(BoxTest, Intersects) {
  Box a(Point{0.0, 0.0}, Point{5.0, 5.0});
  Box b(Point{4.0, 4.0}, Point{9.0, 9.0});
  Box c(Point{6.0, 6.0}, Point{9.0, 9.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  // Touching edges count as intersecting (closed comparison).
  Box d(Point{5.0, 0.0}, Point{7.0, 5.0});
  EXPECT_TRUE(a.Intersects(d));
}

// Property sweep over dimensions: children partition the parent and
// ChildIndexOf agrees with Child().
class BoxDimsTest : public ::testing::TestWithParam<int> {};

TEST_P(BoxDimsTest, ChildrenTileParentVolume) {
  const int dims = GetParam();
  Box parent = Box::Cube(dims, -3.0, 5.0);
  double child_volume = 0.0;
  for (int c = 0; c < (1 << dims); ++c) {
    child_volume += parent.Child(c).Volume();
  }
  EXPECT_NEAR(child_volume, parent.Volume(), 1e-9 * parent.Volume());
}

TEST_P(BoxDimsTest, ChildIndexOfMatchesChildContainment) {
  const int dims = GetParam();
  Box parent = Box::Cube(dims, 0.0, 1024.0);
  Rng rng(99 + static_cast<uint64_t>(dims));
  for (int trial = 0; trial < 500; ++trial) {
    Point p(dims);
    for (int d = 0; d < dims; ++d) p[d] = rng.Uniform(0.0, 1024.0);
    const int index = parent.ChildIndexOf(p);
    const Box child = parent.Child(index);
    EXPECT_TRUE(child.ContainsClosed(p))
        << p.ToString() << " not in child " << index << " " << child.ToString();
    // No other child may contain it under half-open semantics.
    for (int c = 0; c < (1 << dims); ++c) {
      if (c == index) continue;
      EXPECT_FALSE(parent.Child(c).Contains(p));
    }
  }
}

TEST_P(BoxDimsTest, RecursiveChildDescentShrinksExtent) {
  const int dims = GetParam();
  Box box = Box::Cube(dims, 0.0, 1.0);
  for (int depth = 1; depth <= 6; ++depth) {
    box = box.Child(0);
    for (int d = 0; d < dims; ++d) {
      EXPECT_NEAR(box.Extent(d), std::pow(0.5, depth), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, BoxDimsTest, ::testing::Values(1, 2, 3, 4, 6));

}  // namespace
}  // namespace mlq
