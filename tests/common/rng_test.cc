#include "common/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace mlq {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next64(), b.Next64()) << "diverged at draw " << i;
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(123);
  Rng b(124);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() != b.Next64()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.Next64());
  rng.Reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Next64(), first[static_cast<size_t>(i)]);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Uniform(-5.0, 17.0);
    ASSERT_GE(v, -5.0);
    ASSERT_LT(v, 17.0);
  }
}

TEST(RngTest, UniformDegenerateRangeReturnsLo) {
  Rng rng(4);
  EXPECT_DOUBLE_EQ(rng.Uniform(3.0, 3.0), 3.0);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u) << "all 10 values should appear in 10k draws";
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-10, -1);
    ASSERT_GE(v, -10);
    ASSERT_LE(v, -1);
  }
}

TEST(RngTest, UniformIntApproximatelyUniform) {
  Rng rng(8);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(0, 9))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100) << "bin count far from uniform";
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(9);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(100.0, 15.0);
  EXPECT_NEAR(sum / n, 100.0, 0.3);
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
    EXPECT_FALSE(rng.NextBool(-0.5));
    EXPECT_TRUE(rng.NextBool(1.5));
  }
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.Split();
  // The child stream should not equal the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next64() == child.Next64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace mlq
