#include "common/zipf.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mlq {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.0);
  double total = 0.0;
  for (int64_t k = 1; k <= 100; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, PmfOutOfRangeIsZero) {
  ZipfDistribution zipf(10, 1.0);
  EXPECT_DOUBLE_EQ(zipf.Pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(zipf.Pmf(11), 0.0);
  EXPECT_DOUBLE_EQ(zipf.Pmf(-3), 0.0);
}

TEST(ZipfTest, PmfDecreasesWithRank) {
  ZipfDistribution zipf(50, 1.0);
  for (int64_t k = 1; k < 50; ++k) {
    EXPECT_GT(zipf.Pmf(k), zipf.Pmf(k + 1));
  }
}

TEST(ZipfTest, ZipfZeroIsUniform) {
  ZipfDistribution zipf(20, 0.0);
  for (int64_t k = 1; k <= 20; ++k) {
    EXPECT_NEAR(zipf.Pmf(k), 1.0 / 20.0, 1e-12);
  }
}

TEST(ZipfTest, SamplesWithinRange) {
  ZipfDistribution zipf(30, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    int64_t s = zipf.Sample(rng);
    ASSERT_GE(s, 1);
    ASSERT_LE(s, 30);
  }
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  ZipfDistribution zipf(10, 1.0);
  Rng rng(2);
  std::vector<int> counts(11, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(zipf.Sample(rng))];
  }
  for (int64_t k = 1; k <= 10; ++k) {
    const double observed = static_cast<double>(counts[static_cast<size_t>(k)]) / n;
    EXPECT_NEAR(observed, zipf.Pmf(k), 0.01) << "rank " << k;
  }
}

TEST(ZipfTest, RankOneDominatesWithZ1) {
  ZipfDistribution zipf(1000, 1.0);
  // With z = 1 and n = 1000, rank 1 holds about 1/H_1000 ~ 13.4% of mass.
  EXPECT_GT(zipf.Pmf(1), 0.10);
  EXPECT_GT(zipf.Pmf(1), 50 * zipf.Pmf(100));
}

TEST(ZipfTest, RelativeWeightNormalizedToRankOne) {
  ZipfDistribution zipf(100, 2.0);
  EXPECT_DOUBLE_EQ(zipf.RelativeWeight(1), 1.0);
  EXPECT_DOUBLE_EQ(zipf.RelativeWeight(2), 0.25);
  EXPECT_DOUBLE_EQ(zipf.RelativeWeight(0), 0.0);
}

TEST(ZipfTest, SingleRankAlwaysSamplesOne) {
  ZipfDistribution zipf(1, 1.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 1);
  EXPECT_DOUBLE_EQ(zipf.Pmf(1), 1.0);
}

// Property sweep: the CDF must be monotone and end at 1 for many (n, z).
class ZipfParamTest : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ZipfParamTest, PmfIsValidDistribution) {
  const auto [n, z] = GetParam();
  ZipfDistribution zipf(n, z);
  double total = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    const double p = zipf.Pmf(k);
    ASSERT_GT(p, 0.0);
    ASSERT_LE(p, 1.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(ZipfParamTest, SamplingStaysInRange) {
  const auto [n, z] = GetParam();
  ZipfDistribution zipf(n, z);
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const int64_t s = zipf.Sample(rng);
    ASSERT_GE(s, 1);
    ASSERT_LE(s, n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfParamTest,
    ::testing::Combine(::testing::Values(1, 2, 10, 100, 5000),
                       ::testing::Values(0.0, 0.5, 1.0, 2.0)));

}  // namespace
}  // namespace mlq
