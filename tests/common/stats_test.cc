#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mlq {
namespace {

// Direct (two-pass) SSE for cross-checking Eq. 4.
double DirectSse(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double sse = 0.0;
  for (double v : values) sse += (v - mean) * (v - mean);
  return sse;
}

TEST(SummaryTripleTest, EmptySummary) {
  SummaryTriple s;
  EXPECT_TRUE(s.Empty());
  EXPECT_DOUBLE_EQ(s.Avg(), 0.0);
  EXPECT_DOUBLE_EQ(s.Sse(), 0.0);
}

TEST(SummaryTripleTest, SingleValue) {
  SummaryTriple s;
  s.Add(5.0);
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.sum, 5.0);
  EXPECT_DOUBLE_EQ(s.sum_squares, 25.0);
  EXPECT_DOUBLE_EQ(s.Avg(), 5.0);
  EXPECT_DOUBLE_EQ(s.Sse(), 0.0);
}

TEST(SummaryTripleTest, PaperExampleFigure5) {
  // Fig. 5 of the paper: block B14 holds values 3 and 14 after P2 arrives;
  // its summary is (17, 2, 205) and SSE 60.5. (The figure's SSE of 67
  // includes a third point in a sub-block; this checks the two-point math.)
  SummaryTriple s;
  s.Add(3.0);
  s.Add(14.0);
  EXPECT_DOUBLE_EQ(s.sum, 17.0);
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.sum_squares, 205.0);
  EXPECT_DOUBLE_EQ(s.Avg(), 8.5);
  EXPECT_DOUBLE_EQ(s.Sse(), 205.0 - 2.0 * 8.5 * 8.5);
}

TEST(SummaryTripleTest, SseMatchesDirectComputation) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> values;
    SummaryTriple s;
    const int n = static_cast<int>(rng.UniformInt(1, 200));
    for (int i = 0; i < n; ++i) {
      const double v = rng.Uniform(0.0, 10000.0);
      values.push_back(v);
      s.Add(v);
    }
    const double expected = DirectSse(values);
    EXPECT_NEAR(s.Sse(), expected, 1e-6 * std::max(1.0, expected));
  }
}

TEST(SummaryTripleTest, SseNeverNegative) {
  // Many identical large values: catastrophic cancellation would go
  // negative without the clamp.
  SummaryTriple s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + 0.1);
  EXPECT_GE(s.Sse(), 0.0);
}

TEST(SummaryTripleTest, MergeEqualsSequentialAdds) {
  SummaryTriple a;
  SummaryTriple b;
  SummaryTriple all;
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.Uniform(-50.0, 50.0);
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count, all.count);
  EXPECT_NEAR(a.sum, all.sum, 1e-9);
  EXPECT_NEAR(a.sum_squares, all.sum_squares, 1e-6);
}

TEST(SummaryTripleTest, NegativeValues) {
  SummaryTriple s;
  s.Add(-4.0);
  s.Add(4.0);
  EXPECT_DOUBLE_EQ(s.Avg(), 0.0);
  EXPECT_DOUBLE_EQ(s.Sse(), 32.0);
}

TEST(RunningStatTest, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

TEST(RunningStatTest, KnownSequence) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);  // Population variance.
  EXPECT_DOUBLE_EQ(s.Stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MatchesDirectMoments) {
  Rng rng(7);
  RunningStat s;
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.Gaussian(10.0, 3.0);
    s.Add(v);
    values.push_back(v);
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.Variance(), DirectSse(values) / static_cast<double>(values.size()),
              1e-6);
}

}  // namespace
}  // namespace mlq
