// Tests for MemoryBudget, timers, the table printer, and argument parsing.

#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "common/args.h"
#include "common/memory_budget.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace mlq {
namespace {

TEST(MemoryBudgetTest, ChargeAndRelease) {
  MemoryBudget budget(100);
  EXPECT_EQ(budget.limit(), 100);
  EXPECT_EQ(budget.used(), 0);
  EXPECT_EQ(budget.available(), 100);

  budget.Charge(40);
  EXPECT_EQ(budget.used(), 40);
  EXPECT_EQ(budget.available(), 60);

  budget.Release(15);
  EXPECT_EQ(budget.used(), 25);
}

TEST(MemoryBudgetTest, CanCharge) {
  MemoryBudget budget(100);
  budget.Charge(90);
  EXPECT_TRUE(budget.CanCharge(10));
  EXPECT_FALSE(budget.CanCharge(11));
  EXPECT_TRUE(budget.CanCharge(0));
}

TEST(MemoryBudgetTest, PeakTracksHighWaterMark) {
  MemoryBudget budget(1000);
  budget.Charge(300);
  budget.Charge(200);
  budget.Release(400);
  budget.Charge(50);
  EXPECT_EQ(budget.used(), 150);
  EXPECT_EQ(budget.peak(), 500);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.009);
  EXPECT_LT(elapsed, 1.0);
  EXPECT_NEAR(timer.ElapsedMicros(), timer.ElapsedSeconds() * 1e6,
              timer.ElapsedSeconds() * 1e5);
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.004);
}

TEST(AccumulatingTimerTest, AccumulatesIntervals) {
  AccumulatingTimer timer;
  timer.Add(0.5);
  timer.Add(0.25);
  EXPECT_DOUBLE_EQ(timer.total_seconds(), 0.75);
  EXPECT_EQ(timer.intervals(), 2);
  timer.Reset();
  EXPECT_DOUBLE_EQ(timer.total_seconds(), 0.0);
  EXPECT_EQ(timer.intervals(), 0);
}

TEST(AccumulatingTimerTest, StartStop) {
  AccumulatingTimer timer;
  timer.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Stop();
  EXPECT_GE(timer.total_seconds(), 0.004);
  EXPECT_EQ(timer.intervals(), 1);
}

TEST(WorkCounterTest, CountsAndConverts) {
  WorkCounter counter;
  counter.Add(100);
  counter.Add(50);
  EXPECT_EQ(counter.units(), 150);
  EXPECT_DOUBLE_EQ(counter.NominalMicros(), 150 * kMicrosPerWorkUnit);
  counter.Reset();
  EXPECT_EQ(counter.units(), 0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "10000"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("b      10000"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream os;
  t.Print(os);  // Must not crash; missing cells become empty.
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Num(1.0, 4), "1.0000");
  EXPECT_EQ(TablePrinter::Num(-0.5, 1), "-0.5");
}

TEST(ArgsTest, FindsNamedValues) {
  const char* argv[] = {"tool", "--csv=out.csv", "--n=50", "--flag"};
  char** args = const_cast<char**>(argv);
  EXPECT_EQ(ArgValue(4, args, "csv"), "out.csv");
  EXPECT_EQ(ArgValue(4, args, "n"), "50");
  EXPECT_EQ(ArgValue(4, args, "missing"), "");
  EXPECT_EQ(ArgValue(4, args, "missing", "default"), "default");
  // A bare flag is not a value argument.
  EXPECT_EQ(ArgValue(4, args, "flag"), "");
}

TEST(ArgsTest, EmptyValueAndPrefixCollisions) {
  const char* argv[] = {"tool", "--csv=", "--csvx=nope"};
  char** args = const_cast<char**>(argv);
  EXPECT_EQ(ArgValue(3, args, "csv"), "");
  EXPECT_EQ(ArgValue(3, args, "csvx"), "nope");
}

TEST(ArgsTest, HasFlag) {
  const char* argv[] = {"tool", "--verbose", "--out=x"};
  char** args = const_cast<char**>(argv);
  EXPECT_TRUE(HasFlag(3, args, "verbose"));
  EXPECT_FALSE(HasFlag(3, args, "out"));  // Has a value, not a bare flag.
  EXPECT_FALSE(HasFlag(3, args, "quiet"));
}

}  // namespace
}  // namespace mlq
