#include "udf/udf_registry.h"

#include <gtest/gtest.h>

#include "eval/experiment_setup.h"
#include "udf/costed_udf.h"

namespace mlq {
namespace {

TEST(UdfCostTest, GetByKind) {
  UdfCost cost;
  cost.cpu_work = 100.0;
  cost.io_pages = 7.0;
  EXPECT_DOUBLE_EQ(cost.Get(CostKind::kCpu), 100.0);
  EXPECT_DOUBLE_EQ(cost.Get(CostKind::kIo), 7.0);
}

TEST(UdfCostTest, NominalMicrosCombinesBothCosts) {
  UdfCost cost;
  cost.cpu_work = 1000.0;
  cost.io_pages = 2.0;
  EXPECT_DOUBLE_EQ(cost.NominalMicros(),
                   1000.0 * kMicrosPerWorkUnit + 2.0 * kMicrosPerPageMiss);
}

TEST(UdfRegistryTest, RegisterAndFind) {
  UdfRegistry registry;
  CostedUdf* udf = registry.Register(
      MakePaperSyntheticUdf(/*num_peaks=*/5, /*noise=*/0.0, /*seed=*/1));
  EXPECT_EQ(registry.size(), 1);
  EXPECT_EQ(registry.Find("SYNTH-5p"), udf);
  EXPECT_EQ(registry.Find("missing"), nullptr);
}

TEST(UdfRegistryTest, AllPreservesRegistrationOrder) {
  UdfRegistry registry;
  CostedUdf* a = registry.Register(MakePaperSyntheticUdf(5, 0.0, 1));
  CostedUdf* b = registry.Register(MakePaperSyntheticUdf(7, 0.0, 2));
  const auto all = registry.All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], a);
  EXPECT_EQ(all[1], b);
}

TEST(UdfRegistryTest, ExecuteThroughRegistry) {
  UdfRegistry registry;
  registry.Register(MakePaperSyntheticUdf(5, 0.0, 1));
  CostedUdf* udf = registry.Find("SYNTH-5p");
  ASSERT_NE(udf, nullptr);
  const Point center = udf->model_space().Center();
  const UdfCost cost = udf->Execute(center);
  EXPECT_GE(cost.cpu_work, 0.0);
}

}  // namespace
}  // namespace mlq
