#include "udf/transform.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/evaluator.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"
#include "udf/transformed_udf.h"

namespace mlq {
namespace {

TEST(TransformTest, IdentityPassesThrough) {
  auto t = Identity(1);
  EXPECT_DOUBLE_EQ(t->Apply(Point{3.0, 7.0}), 7.0);
  double lo = 0.0;
  double hi = 0.0;
  t->Range(Box(Point{0.0, 10.0}, Point{1.0, 20.0}), &lo, &hi);
  EXPECT_DOUBLE_EQ(lo, 10.0);
  EXPECT_DOUBLE_EQ(hi, 20.0);
  EXPECT_EQ(t->Describe(), "a1");
}

TEST(TransformTest, DifferenceElapsedTimeExample) {
  // The paper's example: elapsed_time = end_time - start_time.
  auto t = Difference(/*minuend=*/1, /*subtrahend=*/0);
  EXPECT_DOUBLE_EQ(t->Apply(Point{100.0, 130.0}), 30.0);
  double lo = 0.0;
  double hi = 0.0;
  // start in [0, 50], end in [0, 200] -> elapsed in [-50, 200].
  t->Range(Box(Point{0.0, 0.0}, Point{50.0, 200.0}), &lo, &hi);
  EXPECT_DOUBLE_EQ(lo, -50.0);
  EXPECT_DOUBLE_EQ(hi, 200.0);
}

TEST(TransformTest, Log2CompressesHeavyTails) {
  auto t = Log2Scale(0);
  EXPECT_DOUBLE_EQ(t->Apply(Point{0.0}), 0.0);
  EXPECT_DOUBLE_EQ(t->Apply(Point{1.0}), 1.0);
  EXPECT_DOUBLE_EQ(t->Apply(Point{1023.0}), 10.0);
  EXPECT_DOUBLE_EQ(t->Apply(Point{-5.0}), 0.0);  // Clamped at zero.
  double lo = 0.0;
  double hi = 0.0;
  t->Range(Box::Cube(1, 0.0, 1023.0), &lo, &hi);
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 10.0);
}

TEST(TransformTest, ProductCoversSignCombinations) {
  auto t = Product(0, 1);
  EXPECT_DOUBLE_EQ(t->Apply(Point{3.0, 4.0}), 12.0);
  double lo = 0.0;
  double hi = 0.0;
  // [-2, 3] x [-5, 7]: extremes at corner products.
  t->Range(Box(Point{-2.0, -5.0}, Point{3.0, 7.0}), &lo, &hi);
  EXPECT_DOUBLE_EQ(lo, -15.0);  // 3 * -5.
  EXPECT_DOUBLE_EQ(hi, 21.0);   // 3 * 7.
}

TEST(ArgumentTransformTest, MapsArgsToModelPoints) {
  // WIN-style: (x, y, w, h) -> (x, y, area).
  const Box arg_space(Point{0.0, 0.0, 1.0, 1.0},
                      Point{1000.0, 1000.0, 200.0, 200.0});
  std::vector<std::unique_ptr<VariableTransform>> vars;
  vars.push_back(Identity(0));
  vars.push_back(Identity(1));
  vars.push_back(Product(2, 3));
  ArgumentTransform transform(arg_space, std::move(vars));

  EXPECT_EQ(transform.num_args(), 4);
  EXPECT_EQ(transform.num_model_vars(), 3);
  const Point model = transform.Apply(Point{500.0, 250.0, 10.0, 20.0});
  EXPECT_EQ(model, (Point{500.0, 250.0, 200.0}));
  EXPECT_DOUBLE_EQ(transform.model_space().lo()[2], 1.0);
  EXPECT_DOUBLE_EQ(transform.model_space().hi()[2], 40000.0);
  EXPECT_EQ(transform.Describe(), "T(a0..a3) -> (a0, a1, a2*a3)");
}

TEST(ArgumentTransformTest, ModelSpaceContainsAllTransformedPoints) {
  const Box arg_space(Point{-10.0, 0.0, 5.0}, Point{10.0, 100.0, 50.0});
  std::vector<std::unique_ptr<VariableTransform>> vars;
  vars.push_back(Difference(1, 0));
  vars.push_back(Log2Scale(2));
  ArgumentTransform transform(arg_space, std::move(vars));

  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    Point args{rng.Uniform(-10.0, 10.0), rng.Uniform(0.0, 100.0),
               rng.Uniform(5.0, 50.0)};
    const Point model = transform.Apply(args);
    ASSERT_TRUE(transform.model_space().ContainsClosed(model))
        << args.ToString() << " -> " << model.ToString();
  }
}

TEST(TransformedUdfTest, ExposesTransformedModelSpace) {
  const RealUdfSuite suite = MakeRealUdfSuite(SubstrateScale::kSmall);
  CostedUdf* win = suite.Find("WIN");

  std::vector<std::unique_ptr<VariableTransform>> vars;
  vars.push_back(Identity(0));
  vars.push_back(Identity(1));
  vars.push_back(Product(2, 3));  // Area replaces (w, h).
  auto transform = std::make_shared<const ArgumentTransform>(
      win->model_space(), std::move(vars));
  TransformedUdf transformed(win, transform);

  EXPECT_EQ(transformed.name(), "WIN+T");
  EXPECT_EQ(transformed.model_space().dims(), 3);
  EXPECT_EQ(transformed.execution_space().dims(), 4);
  const Point exec{500.0, 500.0, 10.0, 20.0};
  EXPECT_EQ(transformed.ToModelPoint(exec), (Point{500.0, 500.0, 200.0}));
  // Execution is delegated unchanged.
  win->ResetState();
  const UdfCost direct = win->Execute(exec);
  transformed.ResetState();
  const UdfCost wrapped = transformed.Execute(exec);
  EXPECT_DOUBLE_EQ(wrapped.cpu_work, direct.cpu_work);
  EXPECT_EQ(transformed.last_result_count(), win->last_result_count());
}

TEST(TransformedUdfTest, DefaultTransformIsIdentity) {
  auto udf = MakePaperSyntheticUdf(5, 0.0, 1);
  const Point p{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(udf->ToModelPoint(p), p);
  EXPECT_EQ(udf->execution_space(), udf->model_space());
}

TEST(TransformedUdfTest, DimensionReductionHelpsAtTinyBudgets) {
  // The point of T (Section 3): encoding "only the area matters" shrinks
  // the model space from 4-d to 3-d, buying resolution at a fixed budget.
  // WIN's cost genuinely depends mostly on (x, y, area), so the transformed
  // model should predict at least as well.
  const RealUdfSuite suite = MakeRealUdfSuite(SubstrateScale::kSmall);
  CostedUdf* win = suite.Find("WIN");

  std::vector<std::unique_ptr<VariableTransform>> vars;
  vars.push_back(Identity(0));
  vars.push_back(Identity(1));
  vars.push_back(Product(2, 3));
  auto transform = std::make_shared<const ArgumentTransform>(
      win->model_space(), std::move(vars));
  TransformedUdf transformed(win, transform);

  const auto queries =
      MakePaperWorkload(win->model_space(),
                        QueryDistributionKind::kGaussianRandom, 2500, 77);

  win->ResetState();
  MlqModel raw_model(win->model_space(),
                     MakePaperMlqConfig(InsertionStrategy::kEager,
                                        CostKind::kCpu));
  const EvalResult raw =
      RunSelfTuningEvaluation(raw_model, *win, queries, EvalOptions{});

  transformed.ResetState();
  MlqModel transformed_model(transformed.model_space(),
                             MakePaperMlqConfig(InsertionStrategy::kEager,
                                                CostKind::kCpu));
  const EvalResult with_t = RunSelfTuningEvaluation(transformed_model,
                                                    transformed, queries,
                                                    EvalOptions{});

  EXPECT_LT(with_t.nae, raw.nae * 1.1)
      << "the transform must not meaningfully hurt, and usually helps";
}

TEST(ArgumentTransformTest, DegenerateRangeIsWidened) {
  // A constant argument yields a zero-width cost-variable range; the model
  // space must still be a valid (non-degenerate) box.
  const Box arg_space(Point{5.0}, Point{5.0 + 1e-12});
  std::vector<std::unique_ptr<VariableTransform>> vars;
  vars.push_back(Difference(0, 0));  // Always 0.
  ArgumentTransform transform(arg_space, std::move(vars));
  EXPECT_GT(transform.model_space().Extent(0), 0.0);
}

}  // namespace
}  // namespace mlq
