// Parameterized correctness and monotonicity sweeps for the text-search
// UDFs, validated against direct scans of the raw posting lists.

#include <algorithm>
#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/text_udfs.h"

namespace mlq {
namespace {

std::shared_ptr<TextSearchEngine> SharedEngine() {
  static std::shared_ptr<TextSearchEngine>* engine = [] {
    CorpusConfig config;
    config.num_docs = 1500;
    config.vocab_size = 800;
    config.mean_doc_length = 80.0;
    config.seed = 4242;
    return new std::shared_ptr<TextSearchEngine>(
        std::make_shared<TextSearchEngine>(config, /*buffer_pool_pages=*/64));
  }();
  return *engine;
}

class SimpleSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SimpleSweepTest, ResultCountMatchesPostingScan) {
  auto engine = SharedEngine();
  SimpleSearchUdf udf(engine);
  const InvertedIndex& index = engine->index();
  Rng rng(500 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const auto rank = rng.UniformInt(1, index.vocab_size());
    const double frac = rng.Uniform(0.01, 1.0);
    udf.Execute(Point{static_cast<double>(rank), frac});
    // Brute force: distinct docs below the prefix limit.
    const auto limit =
        static_cast<int32_t>(frac * static_cast<double>(index.num_docs()));
    int64_t expected = 0;
    int32_t previous_doc = -1;
    for (const Posting& p : index.PostingsOf(static_cast<int32_t>(rank - 1))) {
      if (p.doc_id >= limit) break;
      if (p.doc_id != previous_doc) {
        ++expected;
        previous_doc = p.doc_id;
      }
    }
    ASSERT_EQ(udf.last_result_count(), expected)
        << "rank " << rank << " frac " << frac;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimpleSweepTest, ::testing::Range(0, 5));

class ThresholdSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdSweepTest, ResultCountMatchesTfScan) {
  auto engine = SharedEngine();
  ThresholdSearchUdf udf(engine);
  const InvertedIndex& index = engine->index();
  Rng rng(600 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 15; ++trial) {
    const auto rank = rng.UniformInt(1, 100);  // Frequent-ish terms.
    const double threshold = rng.Uniform(0.0, 1.0);
    udf.Execute(Point{static_cast<double>(rank), threshold});

    std::map<int32_t, int32_t> tf;
    for (const Posting& p : index.PostingsOf(static_cast<int32_t>(rank - 1))) {
      ++tf[p.doc_id];
    }
    int32_t max_tf = 0;
    for (const auto& [doc, count] : tf) max_tf = std::max(max_tf, count);
    int64_t expected = 0;
    for (const auto& [doc, count] : tf) {
      const double score =
          max_tf > 0 ? static_cast<double>(count) / max_tf : 0.0;
      if (score >= threshold) ++expected;
    }
    ASSERT_EQ(udf.last_result_count(), expected)
        << "rank " << rank << " threshold " << threshold;
  }
}

TEST_P(ThresholdSweepTest, ResultCountMonotoneInThreshold) {
  auto engine = SharedEngine();
  ThresholdSearchUdf udf(engine);
  const auto rank = static_cast<double>(10 + GetParam());
  int64_t previous = INT64_MAX;
  for (double threshold : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    udf.Execute(Point{rank, threshold});
    ASSERT_LE(udf.last_result_count(), previous) << "threshold " << threshold;
    previous = udf.last_result_count();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdSweepTest, ::testing::Range(0, 5));

class ProximitySweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ProximitySweepTest, MatchesBruteForcePositionJoin) {
  auto engine = SharedEngine();
  ProximitySearchUdf udf(engine);
  const InvertedIndex& index = engine->index();
  Rng rng(700 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 10; ++trial) {
    const auto rank1 = rng.UniformInt(1, 50);
    const auto rank2 = rng.UniformInt(1, 50);
    const auto window = rng.UniformInt(1, 50);
    udf.Execute(Point{static_cast<double>(rank1), static_cast<double>(rank2),
                      static_cast<double>(window)});

    // Brute force: docs with positions of both terms within the window.
    std::map<int32_t, std::vector<int32_t>> pos1;
    std::map<int32_t, std::vector<int32_t>> pos2;
    for (const Posting& p : index.PostingsOf(static_cast<int32_t>(rank1 - 1))) {
      pos1[p.doc_id].push_back(p.position);
    }
    for (const Posting& p : index.PostingsOf(static_cast<int32_t>(rank2 - 1))) {
      pos2[p.doc_id].push_back(p.position);
    }
    int64_t expected = 0;
    for (const auto& [doc, positions1] : pos1) {
      auto it = pos2.find(doc);
      if (it == pos2.end()) continue;
      bool matched = false;
      for (int32_t a : positions1) {
        for (int32_t b : it->second) {
          if (std::abs(a - b) <= window) {
            matched = true;
            break;
          }
        }
        if (matched) break;
      }
      if (matched) ++expected;
    }
    ASSERT_EQ(udf.last_result_count(), expected)
        << "ranks " << rank1 << "," << rank2 << " window " << window;
  }
}

TEST_P(ProximitySweepTest, ResultCountMonotoneInWindow) {
  auto engine = SharedEngine();
  ProximitySearchUdf udf(engine);
  const auto rank1 = static_cast<double>(1 + GetParam());
  const auto rank2 = static_cast<double>(2 + GetParam());
  int64_t previous = -1;
  for (double window : {1.0, 5.0, 15.0, 50.0}) {
    udf.Execute(Point{rank1, rank2, window});
    ASSERT_GE(udf.last_result_count(), previous) << "window " << window;
    previous = udf.last_result_count();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProximitySweepTest, ::testing::Range(0, 4));

TEST(TextCostShapeTest, CpuCostTracksPostingLength) {
  // Across many terms, SIMPLE's CPU cost must correlate tightly with the
  // posting-list length it scans — the property the cost model learns.
  auto engine = SharedEngine();
  SimpleSearchUdf udf(engine);
  const InvertedIndex& index = engine->index();
  for (int32_t rank : {1, 5, 20, 100, 400}) {
    udf.Execute(Point{static_cast<double>(rank), 1.0});
    const double cost = udf.Execute(Point{static_cast<double>(rank), 1.0}).cpu_work;
    const auto postings = static_cast<double>(index.PostingCount(rank - 1));
    // cost = base + postings + 4 * result docs: within [postings, 6x].
    ASSERT_GE(cost, postings);
    ASSERT_LE(cost, 16.0 + 6.0 * postings + 1.0);
  }
}

}  // namespace
}  // namespace mlq
