// Tests for the corpus/inverted-index substrate and the text-search UDFs.

#include <memory>

#include <gtest/gtest.h>

#include "text/inverted_index.h"
#include "text/text_search_engine.h"
#include "text/text_udfs.h"

namespace mlq {
namespace {

CorpusConfig SmallCorpus() {
  CorpusConfig config;
  config.num_docs = 1000;
  config.vocab_size = 500;
  config.mean_doc_length = 60.0;
  config.seed = 7;
  return config;
}

class InvertedIndexTest : public ::testing::Test {
 protected:
  InvertedIndexTest() : index_(SmallCorpus()) {}
  InvertedIndex index_;
};

TEST_F(InvertedIndexTest, TotalPostingsEqualsSumOfDocLengths) {
  int64_t doc_total = 0;
  for (int32_t d = 0; d < index_.num_docs(); ++d) {
    doc_total += index_.DocLength(d);
  }
  int64_t posting_total = 0;
  for (int32_t t = 0; t < index_.vocab_size(); ++t) {
    posting_total += index_.PostingCount(t);
  }
  EXPECT_EQ(doc_total, posting_total);
  EXPECT_EQ(index_.total_postings(), posting_total);
}

TEST_F(InvertedIndexTest, PostingsSortedByDocThenPosition) {
  for (int32_t t = 0; t < index_.vocab_size(); t += 37) {
    const auto postings = index_.PostingsOf(t);
    for (size_t i = 1; i < postings.size(); ++i) {
      const bool ordered =
          postings[i - 1].doc_id < postings[i].doc_id ||
          (postings[i - 1].doc_id == postings[i].doc_id &&
           postings[i - 1].position < postings[i].position);
      ASSERT_TRUE(ordered) << "term " << t << " entry " << i;
    }
  }
}

TEST_F(InvertedIndexTest, FrequentTermsHaveLongerPostings) {
  // Zipf: rank 1 must dwarf rank 400.
  EXPECT_GT(index_.PostingCount(0), 10 * index_.PostingCount(399));
}

TEST_F(InvertedIndexTest, PageRunsAreDisjointAndSized) {
  PageId next_expected = 0;
  for (int32_t t = 0; t < index_.vocab_size(); ++t) {
    const int64_t pages = index_.PostingNumPages(t);
    const int64_t expected_pages =
        PagesForBytes(index_.PostingCount(t) * InvertedIndex::kPostingBytes);
    ASSERT_EQ(pages, expected_pages) << "term " << t;
    if (pages == 0) {
      ASSERT_EQ(index_.PostingFirstPage(t), kInvalidPageId);
      continue;
    }
    ASSERT_EQ(index_.PostingFirstPage(t), next_expected)
        << "runs must be laid out consecutively";
    next_expected += pages;
  }
  EXPECT_EQ(index_.index_file()->num_pages(), next_expected);
}

TEST_F(InvertedIndexTest, DocPagesPackDocsPerPage) {
  EXPECT_EQ(index_.DocPage(0), 0);
  EXPECT_EQ(index_.DocPage(InvertedIndex::kDocsPerPage - 1), 0);
  EXPECT_EQ(index_.DocPage(InvertedIndex::kDocsPerPage), 1);
  const int64_t expected_pages =
      (index_.num_docs() + InvertedIndex::kDocsPerPage - 1) /
      InvertedIndex::kDocsPerPage;
  EXPECT_EQ(index_.doc_file()->num_pages(), expected_pages);
}

TEST_F(InvertedIndexTest, DeterministicForSeed) {
  InvertedIndex other(SmallCorpus());
  for (int32_t t = 0; t < index_.vocab_size(); t += 101) {
    EXPECT_EQ(index_.PostingCount(t), other.PostingCount(t));
  }
}

class TextUdfTest : public ::testing::Test {
 protected:
  TextUdfTest()
      : engine_(std::make_shared<TextSearchEngine>(SmallCorpus(),
                                                   /*buffer_pool_pages=*/64)) {}
  std::shared_ptr<TextSearchEngine> engine_;
};

TEST_F(TextUdfTest, SimpleSearchCostGrowsWithDocFraction) {
  SimpleSearchUdf udf(engine_);
  const UdfCost small = udf.Execute(Point{1.0, 0.1});
  engine_->ResetCaches();
  const UdfCost large = udf.Execute(Point{1.0, 1.0});
  EXPECT_GT(large.cpu_work, small.cpu_work);
}

TEST_F(TextUdfTest, SimpleSearchRareTermIsCheaperThanFrequent) {
  SimpleSearchUdf udf(engine_);
  const UdfCost frequent = udf.Execute(Point{1.0, 1.0});
  engine_->ResetCaches();
  const UdfCost rare = udf.Execute(Point{450.0, 1.0});
  EXPECT_GT(frequent.cpu_work, rare.cpu_work);
  EXPECT_GE(frequent.io_pages, rare.io_pages);
}

TEST_F(TextUdfTest, SimpleSearchWarmCacheCostsLessIo) {
  SimpleSearchUdf udf(engine_);
  const UdfCost cold = udf.Execute(Point{5.0, 1.0});
  const UdfCost warm = udf.Execute(Point{5.0, 1.0});
  EXPECT_GT(cold.io_pages, 0.0);
  EXPECT_LT(warm.io_pages, cold.io_pages);
  // CPU cost is deterministic: identical across runs.
  EXPECT_DOUBLE_EQ(cold.cpu_work, warm.cpu_work);
}

TEST_F(TextUdfTest, SimpleSearchResultsWithinCorpus) {
  SimpleSearchUdf udf(engine_);
  udf.Execute(Point{1.0, 1.0});
  EXPECT_GT(udf.last_result_count(), 0);
  EXPECT_LE(udf.last_result_count(), 1000);
}

TEST_F(TextUdfTest, ThresholdZeroReturnsAllMatchingDocs) {
  ThresholdSearchUdf udf(engine_);
  udf.Execute(Point{3.0, 0.0});
  const int64_t all = udf.last_result_count();
  engine_->ResetCaches();
  udf.Execute(Point{3.0, 0.95});
  const int64_t top = udf.last_result_count();
  EXPECT_GT(all, 0);
  EXPECT_LT(top, all) << "a high threshold must filter documents";
  EXPECT_GE(top, 1) << "the max-tf document always passes";
}

TEST_F(TextUdfTest, ThresholdIoGrowsWithResultCount) {
  ThresholdSearchUdf udf(engine_);
  engine_->ResetCaches();
  const UdfCost strict = udf.Execute(Point{2.0, 0.95});
  engine_->ResetCaches();
  const UdfCost loose = udf.Execute(Point{2.0, 0.0});
  EXPECT_GT(loose.io_pages, strict.io_pages);
}

TEST_F(TextUdfTest, ProximityFindsCooccurrences) {
  ProximitySearchUdf udf(engine_);
  // The two most frequent terms co-occur in many documents of a
  // Zipf-generated corpus.
  udf.Execute(Point{1.0, 2.0, 50.0});
  EXPECT_GT(udf.last_result_count(), 0);
}

TEST_F(TextUdfTest, ProximityWiderWindowFindsAtLeastAsMuch) {
  ProximitySearchUdf udf(engine_);
  udf.Execute(Point{1.0, 2.0, 1.0});
  const int64_t narrow = udf.last_result_count();
  engine_->ResetCaches();
  udf.Execute(Point{1.0, 2.0, 50.0});
  const int64_t wide = udf.last_result_count();
  EXPECT_GE(wide, narrow);
}

TEST_F(TextUdfTest, ProximityCostDominatedByLongerLists) {
  ProximitySearchUdf udf(engine_);
  engine_->ResetCaches();
  const UdfCost heavy = udf.Execute(Point{1.0, 2.0, 10.0});
  engine_->ResetCaches();
  const UdfCost light = udf.Execute(Point{400.0, 450.0, 10.0});
  EXPECT_GT(heavy.cpu_work, light.cpu_work);
}

TEST_F(TextUdfTest, ModelSpacesMatchDeclaredDimensions) {
  SimpleSearchUdf simple(engine_);
  ThresholdSearchUdf threshold(engine_);
  ProximitySearchUdf proximity(engine_);
  EXPECT_EQ(simple.model_space().dims(), 2);
  EXPECT_EQ(threshold.model_space().dims(), 2);
  EXPECT_EQ(proximity.model_space().dims(), 3);
  EXPECT_DOUBLE_EQ(simple.model_space().hi()[0], 500.0);  // Vocab size.
}

TEST_F(TextUdfTest, OutOfRangeRankIsClamped) {
  SimpleSearchUdf udf(engine_);
  const UdfCost a = udf.Execute(Point{-100.0, 1.0});
  engine_->ResetCaches();
  const UdfCost b = udf.Execute(Point{1.0, 1.0});
  EXPECT_DOUBLE_EQ(a.cpu_work, b.cpu_work);
}

TEST_F(TextUdfTest, ResetStateColdsTheCache) {
  SimpleSearchUdf udf(engine_);
  udf.Execute(Point{5.0, 1.0});
  udf.ResetState();
  const UdfCost after_reset = udf.Execute(Point{5.0, 1.0});
  EXPECT_GT(after_reset.io_pages, 0.0);
}

}  // namespace
}  // namespace mlq
