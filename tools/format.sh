#!/usr/bin/env bash
# Formats (or, with --check, verifies) every C++ source in the repo with
# clang-format, using the .clang-format at the repo root.
#
#   tools/format.sh            # rewrite files in place
#   tools/format.sh --check    # exit 1 and list files that need formatting
#
# The CI lint job runs the --check form; run the in-place form locally
# before pushing.

set -euo pipefail

cd "$(dirname "$0")/.."

# Prefer a bare clang-format, fall back to versioned binaries (newest
# first) so the script works across distro packagings.
find_clang_format() {
  if command -v clang-format >/dev/null 2>&1; then
    echo clang-format
    return
  fi
  local version
  for version in 20 19 18 17 16 15 14; do
    if command -v "clang-format-${version}" >/dev/null 2>&1; then
      echo "clang-format-${version}"
      return
    fi
  done
  echo "error: clang-format not found on PATH" >&2
  exit 2
}

CLANG_FORMAT="$(find_clang_format)"

mapfile -t FILES < <(find src tests bench examples tools \
  \( -name '*.cc' -o -name '*.h' \) -type f | sort)

if [[ "${1:-}" == "--check" ]]; then
  STATUS=0
  for file in "${FILES[@]}"; do
    if ! "${CLANG_FORMAT}" --dry-run -Werror "${file}" >/dev/null 2>&1; then
      echo "needs formatting: ${file}"
      STATUS=1
    fi
  done
  if [[ "${STATUS}" -ne 0 ]]; then
    echo "run tools/format.sh to fix" >&2
  fi
  exit "${STATUS}"
fi

"${CLANG_FORMAT}" -i "${FILES[@]}"
echo "formatted ${#FILES[@]} files with ${CLANG_FORMAT}"
