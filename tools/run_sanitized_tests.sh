#!/usr/bin/env bash
# Tier-2 gate: build and run the test suite under ThreadSanitizer and/or
# AddressSanitizer (see README "Sanitized builds").
#
#   tools/run_sanitized_tests.sh [thread|address|both] [ctest -R regex]
#
# Default: both sanitizers. Under TSan the run is restricted to the suites
# that exercise concurrency (plus the quadtree core they stress) to keep
# the 5-15x TSan slowdown affordable; override with an explicit regex
# (use '.' for everything). ASan runs the full suite.
#
# Exit status is non-zero when any build or any test (including a reported
# race / memory error, which fails the test binary) fails.

set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-both}"
REGEX="${2:-}"

TSAN_DEFAULT_REGEX='sharded|telemetry|event_log|concurrent|invariant_fuzz|insert_predict|compression|mlq_tool|obs_|shared_arena|maintenance|observe_batch|decay|drift|catalog|variance|risk'

run_one() {
  local sanitizer="$1"
  local regex="$2"
  local build_dir="build-${sanitizer}san"

  echo "=== ${sanitizer} sanitizer: configure + build (${build_dir}) ==="
  cmake -B "${build_dir}" -S . -DMLQ_SANITIZE="${sanitizer}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${build_dir}" -j "$(nproc)"

  echo "=== ${sanitizer} sanitizer: ctest -R '${regex}' ==="
  # halt_on_error makes any report fail the offending test immediately.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
    ctest --test-dir "${build_dir}" --output-on-failure -R "${regex}"
}

case "${MODE}" in
  thread)
    run_one thread "${REGEX:-${TSAN_DEFAULT_REGEX}}"
    ;;
  address)
    run_one address "${REGEX:-.}"
    ;;
  both)
    run_one thread "${REGEX:-${TSAN_DEFAULT_REGEX}}"
    run_one address "${REGEX:-.}"
    ;;
  *)
    echo "usage: $0 [thread|address|both] [ctest-regex]" >&2
    exit 2
    ;;
esac

echo "sanitized test run(s) passed"
