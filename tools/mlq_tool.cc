// mlq_tool — command-line front end for the library's trace/model plumbing.
//
//   mlq_tool capture  --udf=NAME --out=trace.txt [--n=2000] [--dist=uniform]
//                     [--seed=42] [--scale=small] [--peaks=50]
//   mlq_tool replay   --trace=trace.txt [--strategy=lazy] [--budget=1800]
//                     [--beta=1] [--cost=cpu] [--model-out=model.bin]
//                     [--threads=1] [--shards=1] [--batch=1] [--metrics]
//                     [--decay-half-life=0] [--decay-epoch-every=0]
//                     [--trace-out=events.json]
//   mlq_tool metrics  [--trace=trace.txt] [--json] [--n=2000] [--seed=42]
//                     [--strategy=lazy] [--budget=1800] [--beta=1]
//                     [--cost=cpu] [--decay-half-life=0] [--interval=0]
//                     [--trace-out=events.json]
//   mlq_tool telemetry [--trace=trace.txt] [--n=20000] [--seed=42]
//                     [--budget=1800] [--shards=4] [--interval=100]
//                     [--prom-out=FILE] [--series-out=FILE]
//                     [--events-out=FILE] [--json]
//   mlq_tool inspect  --model=model.bin
//   mlq_tool predict  --model=model.bin --point=x0,x1,...
//   mlq_tool plan     [--rows=300] [--seed=7] [--train-queries=2]
//                     [--risk-k=0] [--sample-rows=32] [--budget=1800]
//                     [--scale=small] [--json]
//   mlq_tool maintenance [--udf=synth] [--n=20000] [--seed=42]
//                     [--budget=1800] [--shards=4]
//                     [--maintenance-policy=incremental|full]
//                     [--step-slots=4096] [--json]
//   mlq_tool govern   [--models=48] [--tenants=3] [--n=30000] [--seed=42]
//                     [--budget=1800] [--global-budget=BYTES] [--zipf=1.1]
//                     [--max-resident=0] [--quota=tenant0=BYTES,...]
//                     [--json]
//   mlq_tool selftest
//
// UDF names: synth (synthetic surface; --peaks) or one of
// SIMPLE THRESH PROX KNN WIN RANGE (the real-UDF suite; --scale=small|full).
//
// `metrics` replays a trace (or a synthetic workload when --trace is
// absent) with observability switched on, then prints the Prometheus-style
// metric exposition plus a latency/quantile summary; --json emits one JSON
// snapshot object instead. `--interval=N` switches to incremental mode:
// a delta snapshot (the telemetry exporter's scrape logic) every N
// replayed records, one line (or, with --json, one JSONL frame) each.
// `--trace-out` (on replay or metrics) writes the recorded events as
// Chrome trace JSON, loadable in chrome://tracing.
//
// `plan` runs the optimizer end to end on the real-UDF demo query (PROX +
// WIN + KNN predicates over a generated table): a few training queries warm
// the catalog's models through execution feedback, then the final plan is
// printed with a ~95% confidence interval on every estimate. `--risk-k=K`
// plans with risk-adjusted costs (mean + K standard errors), the
// variance-aware ordering; --json emits the plan as one JSON object with
// per-predicate CI fields.
//
// `govern` builds a multi-tenant catalog of uniquely named synthetic UDFs,
// serves Zipf-skewed traffic through it with a CatalogGovernor wired into
// the maintenance tick stream, and prints the resulting budget allocation
// (per-tenant aggregates plus the hottest entries). `--global-budget`
// defaults to half the fleet's unconstrained footprint so the governor has
// real scarcity to arbitrate; `--quota` caps named tenants; a nonzero
// `--max-resident` turns on whole-model eviction.
//
// `telemetry` runs a drifting catalog workload (or a trace replay) under
// the continuous TelemetryExporter: scrapes every --interval ms onto the
// configured sinks (--prom-out Prometheus text file, --series-out JSONL
// frame series), then dumps the structured event journal (--events-out)
// and a run summary (--json for machine-readable).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "engine/catalog_governor.h"
#include "engine/cost_catalog.h"
#include "engine/executor.h"
#include "engine/maintenance_scheduler.h"
#include "engine/query_optimizer.h"
#include "engine/table.h"
#include "engine/udf_predicate.h"
#include "eval/experiment_setup.h"
#include "eval/metrics.h"
#include "eval/trace.h"
#include "model/mlq_model.h"
#include "model/serialization.h"
#include "model/sharded_model.h"
#include "obs/obs.h"
#include "quadtree/tree_stats.h"

namespace mlq {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: mlq_tool <capture|replay|metrics|telemetry|inspect|"
               "predict|plan|maintenance|govern|selftest> [--flags]\n"
               "  capture  --udf=NAME --out=FILE [--n=2000] [--dist=uniform|"
               "gauss-random|gauss-sequential] [--seed=42] [--scale=small|full]"
               " [--peaks=50]\n"
               "  replay   --trace=FILE [--strategy=eager|lazy] "
               "[--budget=1800] [--beta=1] [--cost=cpu|io] [--model-out=FILE]"
               " [--threads=1] [--shards=1] [--batch=1] [--metrics] "
               "[--decay-half-life=0] [--decay-epoch-every=0] "
               "[--trace-out=FILE]\n"
               "  metrics  [--trace=FILE] [--json] [--n=2000] [--seed=42] "
               "[--strategy=eager|lazy] [--budget=1800] [--beta=1] "
               "[--cost=cpu|io] [--decay-half-life=0] [--interval=0] "
               "[--trace-out=FILE]\n"
               "  telemetry [--trace=FILE] [--n=20000] [--seed=42] "
               "[--budget=1800] [--shards=4] [--interval=100] "
               "[--prom-out=FILE] [--series-out=FILE] [--events-out=FILE] "
               "[--json]\n"
               "  inspect  --model=FILE\n"
               "  predict  --model=FILE --point=x0,x1,...\n"
               "  plan     [--rows=300] [--seed=7] [--train-queries=2] "
               "[--risk-k=0] [--sample-rows=32] [--budget=1800] "
               "[--scale=small|full] [--json]\n"
               "  maintenance [--udf=synth] [--n=20000] [--seed=42] "
               "[--budget=1800] [--shards=4] "
               "[--maintenance-policy=incremental|full] [--step-slots=4096] "
               "[--json]\n"
               "  govern   [--models=48] [--tenants=3] [--n=30000] "
               "[--seed=42] [--budget=1800] [--global-budget=BYTES] "
               "[--zipf=1.1] [--max-resident=0] "
               "[--quota=tenant0=BYTES,...] [--json]\n"
               "  selftest\n");
  return 1;
}

// Shared by replay and metrics: the model space is the padded bounding box
// of the trace's points.
Box TraceBoundingBox(const std::vector<TraceRecord>& records) {
  const int dims = records[0].point.dims();
  Point lo = records[0].point;
  Point hi = records[0].point;
  for (const TraceRecord& r : records) {
    for (int d = 0; d < dims; ++d) {
      lo[d] = std::min(lo[d], r.point[d]);
      hi[d] = std::max(hi[d], r.point[d]);
    }
  }
  for (int d = 0; d < dims; ++d) {
    if (lo[d] == hi[d]) hi[d] = lo[d] + 1.0;
  }
  return Box(lo, hi);
}

// Dumps the global trace ring as Chrome trace JSON (chrome://tracing /
// Perfetto "Open trace file").
bool WriteChromeTrace(const std::string& path) {
  const std::vector<obs::TraceEvent> events =
      obs::GlobalTraceRing().Snapshot();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  obs::ExportChromeTrace(out, events);
  std::printf("wrote %zu trace events to %s\n", events.size(), path.c_str());
  return true;
}

QueryDistributionKind ParseDistribution(const std::string& name) {
  if (name == "gauss-random") return QueryDistributionKind::kGaussianRandom;
  if (name == "gauss-sequential") {
    return QueryDistributionKind::kGaussianSequential;
  }
  return QueryDistributionKind::kUniform;
}

// Builds the requested UDF; `suite` keeps the real-UDF substrates alive.
CostedUdf* ResolveUdf(const std::string& name, int peaks, uint64_t seed,
                      SubstrateScale scale,
                      std::unique_ptr<SyntheticUdf>* synthetic,
                      std::unique_ptr<RealUdfSuite>* suite) {
  if (name == "synth") {
    *synthetic = MakePaperSyntheticUdf(peaks, /*noise_probability=*/0.0, seed);
    return synthetic->get();
  }
  *suite = std::make_unique<RealUdfSuite>(MakeRealUdfSuite(scale, seed));
  return (*suite)->Find(name);
}

int RunCapture(int argc, char** argv) {
  const std::string udf_name = ArgValue(argc, argv, "udf", "synth");
  const std::string out_path = ArgValue(argc, argv, "out");
  const int n = std::atoi(ArgValue(argc, argv, "n", "2000").c_str());
  const auto seed = static_cast<uint64_t>(
      std::atoll(ArgValue(argc, argv, "seed", "42").c_str()));
  const int peaks = std::atoi(ArgValue(argc, argv, "peaks", "50").c_str());
  const SubstrateScale scale = ArgValue(argc, argv, "scale", "small") == "full"
                                   ? SubstrateScale::kFull
                                   : SubstrateScale::kSmall;
  if (out_path.empty() || n <= 0) return Usage();

  std::unique_ptr<SyntheticUdf> synthetic;
  std::unique_ptr<RealUdfSuite> suite;
  CostedUdf* udf = ResolveUdf(udf_name, peaks, seed, scale, &synthetic, &suite);
  if (udf == nullptr) {
    std::fprintf(stderr, "unknown UDF '%s'\n", udf_name.c_str());
    return 1;
  }

  const auto points = MakePaperWorkload(
      udf->execution_space(),
      ParseDistribution(ArgValue(argc, argv, "dist", "uniform")), n, seed);
  const auto records = CaptureTrace(*udf, points);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  WriteTrace(out, records, udf->execution_space().dims());
  std::printf("captured %zu executions of %s into %s\n", records.size(),
              std::string(udf->name()).c_str(), out_path.c_str());
  return 0;
}

int RunReplay(int argc, char** argv) {
  const std::string trace_path = ArgValue(argc, argv, "trace");
  if (trace_path.empty()) return Usage();
  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", trace_path.c_str());
    return 1;
  }
  std::vector<TraceRecord> records;
  std::string error;
  if (!ReadTrace(in, &records, &error)) {
    std::fprintf(stderr, "bad trace: %s\n", error.c_str());
    return 1;
  }
  if (records.empty()) {
    std::fprintf(stderr, "trace is empty\n");
    return 1;
  }

  // Observability: --metrics prints the metric exposition after the replay;
  // --trace-out additionally records events for a Chrome trace dump.
  const bool print_metrics = HasFlag(argc, argv, "metrics");
  const std::string trace_out = ArgValue(argc, argv, "trace-out");
  if (print_metrics || !trace_out.empty()) obs::SetEnabled(true);
  if (!trace_out.empty()) obs::SetTraceEnabled(true);
  const auto finish_observability = [&print_metrics, &trace_out]() {
    if (print_metrics) {
      std::printf("\n");
      obs::MetricsRegistry::Global().RenderPrometheus(std::cout);
      std::printf("\nlatency summary:\n");
      obs::MetricsRegistry::Global().RenderLatencySummary(std::cout);
    }
    if (!trace_out.empty() && !WriteChromeTrace(trace_out)) return 1;
    return 0;
  };

  const Box space = TraceBoundingBox(records);

  MlqConfig config;
  config.strategy = ArgValue(argc, argv, "strategy", "lazy") == "eager"
                        ? InsertionStrategy::kEager
                        : InsertionStrategy::kLazy;
  config.memory_limit_bytes =
      std::atoll(ArgValue(argc, argv, "budget", "1800").c_str());
  config.beta = std::atoll(ArgValue(argc, argv, "beta", "1").c_str());
  // --decay-half-life=H enables windowed summaries (H epochs halve a
  // summary's weight); --decay-epoch-every=N advances the epoch clock every
  // N replayed records, standing in for the serving-side scheduler tick.
  config.decay_half_life =
      std::atof(ArgValue(argc, argv, "decay-half-life", "0").c_str());
  const int64_t decay_epoch_every = std::atoll(
      ArgValue(argc, argv, "decay-epoch-every", "0").c_str());
  const CostKind kind =
      ArgValue(argc, argv, "cost", "cpu") == "io" ? CostKind::kIo
                                                  : CostKind::kCpu;

  const int threads = std::atoi(ArgValue(argc, argv, "threads", "1").c_str());
  const int shards = std::atoi(ArgValue(argc, argv, "shards", "1").c_str());

  if (threads > 1 || shards > 1) {
    if (!ArgValue(argc, argv, "model-out").empty()) {
      std::fprintf(stderr,
                   "--model-out is unsupported with --threads/--shards "
                   "(sharded models are N trees, not one)\n");
      return 1;
    }
    if (decay_epoch_every > 0) {
      std::fprintf(stderr,
                   "--decay-epoch-every is unsupported with "
                   "--threads/--shards (the serving clock belongs to the "
                   "maintenance scheduler there); --decay-half-life alone "
                   "is honored\n");
      return 1;
    }
    // Concurrent serving replay: the trace is striped across worker
    // threads, each doing predict-then-observe against one shared
    // ShardedCostModel; per-thread NAE partials merge exactly.
    ShardedModelOptions options;
    options.num_shards = shards > 0 ? shards : 1;
    ShardedCostModel model(space, config, options);
    const int workers = threads > 0 ? threads : 1;
    std::vector<NaeAccumulator> partials(static_cast<size_t>(workers));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int t = 0; t < workers; ++t) {
      pool.emplace_back([&records, &model, &partials, t, workers, kind]() {
        NaeAccumulator& nae = partials[static_cast<size_t>(t)];
        for (size_t i = static_cast<size_t>(t); i < records.size();
             i += static_cast<size_t>(workers)) {
          const TraceRecord& record = records[i];
          const double actual =
              kind == CostKind::kCpu ? record.cpu_cost : record.io_cost;
          nae.Add(model.Predict(record.point), actual);
          model.Observe(record.point, actual);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
    model.Flush();

    // Merge the sums that define Eq. 10 across the per-thread partials.
    double abs_error_sum = 0.0, actual_sum = 0.0;
    int64_t count = 0;
    for (const NaeAccumulator& partial : partials) {
      abs_error_sum += partial.abs_error_sum();
      actual_sum += partial.actual_sum();
      count += partial.count();
    }
    const double nae =
        count == 0 ? 0.0
        : actual_sum <= 0.0 ? abs_error_sum / static_cast<double>(count)
                            : abs_error_sum / actual_sum;

    const ShardedModelStats stats = model.stats();
    std::vector<TreeStats> per_shard;
    for (int s = 0; s < model.num_shards(); ++s) {
      per_shard.push_back(ComputeTreeStats(model.shard_model(s).tree()));
    }
    const TreeStats tree_stats = MergeTreeStats(per_shard);
    std::printf(
        "replayed %zu records on %d threads / %d shards: NAE=%.4f, "
        "%lld nodes, %lld bytes, %lld compressions\n"
        "feedback: %lld submitted, %lld applied, %lld dropped\n",
        records.size(), workers, model.num_shards(), nae,
        static_cast<long long>(tree_stats.num_nodes),
        static_cast<long long>(model.MemoryBytes()),
        static_cast<long long>(stats.compressions),
        static_cast<long long>(stats.observations_submitted),
        static_cast<long long>(stats.observations_applied),
        static_cast<long long>(stats.observations_dropped));
    return finish_observability();
  }

  MlqModel model(space, config);
  // --batch=N replays through the batched pipeline (one PredictBatch +
  // one ObserveBatch per block of N records); the resulting tree is
  // identical to the scalar replay, only the driving path differs.
  const int batch = std::atoi(ArgValue(argc, argv, "batch", "1").c_str());
  if (batch > 1 && decay_epoch_every > 0) {
    std::fprintf(stderr,
                 "--batch and --decay-epoch-every are mutually exclusive "
                 "(the epoch clock interleaves with scalar replay only)\n");
    return 1;
  }
  double nae;
  if (decay_epoch_every > 0) {
    // Scalar replay with the epoch clock ticking inline, so drifted traces
    // can be replayed the way a serving deployment would see them.
    NaeAccumulator accumulator;
    int64_t since_tick = 0;
    for (const TraceRecord& record : records) {
      const double actual =
          kind == CostKind::kCpu ? record.cpu_cost : record.io_cost;
      accumulator.Add(model.Predict(record.point), actual);
      model.Observe(record.point, actual);
      if (++since_tick == decay_epoch_every) {
        model.AdvanceDecayEpoch(1);
        since_tick = 0;
      }
    }
    nae = accumulator.Nae();
  } else {
    nae = batch > 1 ? ReplayTraceBatched(model, records, kind, batch)
                    : ReplayTrace(model, records, kind);
  }
  std::printf("replayed %zu records: NAE=%.4f, %lld nodes, %lld bytes, "
              "%lld compressions\n",
              records.size(), nae,
              static_cast<long long>(model.tree().num_nodes()),
              static_cast<long long>(model.MemoryBytes()),
              static_cast<long long>(model.tree().counters().compressions));
  if (config.decay_half_life > 0.0) {
    std::printf("decay: half-life %g, epoch clock at %u\n",
                config.decay_half_life, model.tree().decay_epoch());
  }

  const std::string model_out = ArgValue(argc, argv, "model-out");
  if (!model_out.empty()) {
    if (!SaveQuadtreeToFile(model.tree(), model_out)) {
      std::fprintf(stderr, "cannot write %s\n", model_out.c_str());
      return 1;
    }
    std::printf("saved model to %s\n", model_out.c_str());
  }
  return finish_observability();
}

// `metrics`: run a replay with the observability layer on and print what it
// collected. With --trace the workload is a captured trace file; without,
// a deterministic synthetic workload (paper's surface, --n/--seed) so the
// command works standalone.
int RunMetrics(int argc, char** argv) {
  obs::SetEnabled(true);
  obs::SetTraceEnabled(true);

  const std::string trace_path = ArgValue(argc, argv, "trace");
  std::vector<TraceRecord> records;
  if (!trace_path.empty()) {
    std::ifstream in(trace_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", trace_path.c_str());
      return 1;
    }
    std::string error;
    if (!ReadTrace(in, &records, &error)) {
      std::fprintf(stderr, "bad trace: %s\n", error.c_str());
      return 1;
    }
  } else {
    const int n = std::atoi(ArgValue(argc, argv, "n", "2000").c_str());
    const auto seed = static_cast<uint64_t>(
        std::atoll(ArgValue(argc, argv, "seed", "42").c_str()));
    if (n <= 0) return Usage();
    auto udf = MakePaperSyntheticUdf(50, /*noise_probability=*/0.0, seed);
    const auto points = MakePaperWorkload(
        udf->model_space(), QueryDistributionKind::kUniform, n, seed);
    records = CaptureTrace(*udf, points);
  }
  if (records.empty()) {
    std::fprintf(stderr, "trace is empty\n");
    return 1;
  }

  MlqConfig config;
  config.strategy = ArgValue(argc, argv, "strategy", "lazy") == "eager"
                        ? InsertionStrategy::kEager
                        : InsertionStrategy::kLazy;
  config.memory_limit_bytes =
      std::atoll(ArgValue(argc, argv, "budget", "1800").c_str());
  config.beta = std::atoll(ArgValue(argc, argv, "beta", "1").c_str());
  config.decay_half_life =
      std::atof(ArgValue(argc, argv, "decay-half-life", "0").c_str());
  const CostKind kind =
      ArgValue(argc, argv, "cost", "cpu") == "io" ? CostKind::kIo
                                                  : CostKind::kCpu;

  MlqModel model(TraceBoundingBox(records), config);

  // --interval=N: incremental mode. Every N replayed records one scrape
  // (the TelemetryExporter's delta logic on this thread, no background
  // thread) prints the window's deltas; the final exposition then comes
  // from the exporter's cumulative view, since scrapes drain the registry.
  const int64_t interval_records =
      std::atoll(ArgValue(argc, argv, "interval", "0").c_str());
  const bool json = HasFlag(argc, argv, "json");
  double nae;
  if (interval_records > 0) {
    obs::TelemetryExporter exporter;
    if (!json) {
      exporter.AddSink(std::make_unique<obs::CallbackSink>(
          [](const obs::TelemetryFrame& f) {
            int64_t inserts = 0, compressions = 0;
            if (const auto it = f.counter_deltas.find("mlq_inserts_total");
                it != f.counter_deltas.end()) {
              inserts = it->second;
            }
            if (const auto it = f.counter_deltas.find("mlq_compressions_total");
                it != f.counter_deltas.end()) {
              compressions = it->second;
            }
            double insert_p99 = 0.0;
            if (const auto it = f.histograms.find("mlq_insert_latency_ns");
                it != f.histograms.end()) {
              insert_p99 = it->second.p99_ns;
            }
            std::printf(
                "window %lld: +%lld inserts (%.0f/s), +%lld compressions, "
                "insert p99 %.0f ns\n",
                static_cast<long long>(f.sequence),
                static_cast<long long>(inserts),
                f.counter_rates.count("mlq_inserts_total")
                    ? f.counter_rates.at("mlq_inserts_total")
                    : 0.0,
                static_cast<long long>(compressions), insert_p99);
          }));
    } else {
      exporter.AddSink(std::make_unique<obs::CallbackSink>(
          [](const obs::TelemetryFrame& f) {
            obs::RenderTelemetryFrameJsonl(std::cout, f);
          }));
    }
    NaeAccumulator accumulator;
    int64_t since_scrape = 0;
    for (const TraceRecord& record : records) {
      const double actual =
          kind == CostKind::kCpu ? record.cpu_cost : record.io_cost;
      accumulator.Add(model.Predict(record.point), actual);
      model.Observe(record.point, actual);
      if (++since_scrape == interval_records) {
        exporter.ScrapeOnce();
        since_scrape = 0;
      }
    }
    if (since_scrape > 0) exporter.ScrapeOnce();
    nae = accumulator.Nae();
    if (!json) {
      std::printf("\n# replayed %zu records in %lld-record windows "
                  "(NAE=%.4f)\n\n",
                  records.size(),
                  static_cast<long long>(interval_records), nae);
      const obs::TelemetryFrame last = exporter.latest_frame();
      obs::RenderPrometheusExposition(std::cout, last.cumulative, &last,
                                      last.health);
    }
    const std::string interval_trace_out = ArgValue(argc, argv, "trace-out");
    if (!interval_trace_out.empty() && !WriteChromeTrace(interval_trace_out)) {
      return 1;
    }
    return 0;
  }

  nae = ReplayTrace(model, records, kind);

  const std::vector<obs::TraceEvent> events =
      obs::GlobalTraceRing().Snapshot();
  size_t compress_events = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.type == obs::TraceEventType::kCompress) ++compress_events;
  }

  if (json) {
    obs::MetricsRegistry::Global().RenderJson(std::cout);
    std::cout << "\n";
  } else {
    std::printf("# replayed %zu records with observability on (NAE=%.4f)\n\n",
                records.size(), nae);
    obs::MetricsRegistry::Global().RenderPrometheus(std::cout);
    std::printf("\nlatency summary:\n");
    obs::MetricsRegistry::Global().RenderLatencySummary(std::cout);
    std::printf(
        "\ntrace ring: %zu events recorded (%zu compression passes)\n",
        events.size(), compress_events);
  }

  const std::string trace_out = ArgValue(argc, argv, "trace-out");
  if (!trace_out.empty() && !WriteChromeTrace(trace_out)) return 1;
  return 0;
}

// `telemetry`: drive a sharded catalog through a drifting workload with
// the continuous exporter attached — the full observability pipeline in
// one command. The workload is a trace replay (--trace) or the synthetic
// surface (--n/--seed); either way the second half's costs are scaled 4x,
// an abrupt step the drift detector classifies and journals. A maintenance
// epoch runs at the end so the journal also shows the maintenance side.
int RunTelemetry(int argc, char** argv) {
  obs::SetEnabled(true);

  const auto seed = static_cast<uint64_t>(
      std::atoll(ArgValue(argc, argv, "seed", "42").c_str()));
  const int64_t budget =
      std::atoll(ArgValue(argc, argv, "budget", "1800").c_str());
  const int shards = std::atoi(ArgValue(argc, argv, "shards", "4").c_str());
  const int64_t interval_ms =
      std::atoll(ArgValue(argc, argv, "interval", "100").c_str());
  const std::string prom_out = ArgValue(argc, argv, "prom-out");
  const std::string series_out = ArgValue(argc, argv, "series-out");
  const std::string events_out = ArgValue(argc, argv, "events-out");
  const bool json = HasFlag(argc, argv, "json");
  if (interval_ms <= 0) return Usage();

  const std::string trace_path = ArgValue(argc, argv, "trace");
  std::vector<TraceRecord> records;
  std::unique_ptr<SyntheticUdf> udf;
  if (!trace_path.empty()) {
    std::ifstream in(trace_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", trace_path.c_str());
      return 1;
    }
    std::string error;
    if (!ReadTrace(in, &records, &error)) {
      std::fprintf(stderr, "bad trace: %s\n", error.c_str());
      return 1;
    }
  }
  // The catalog needs a CostedUdf; the synthetic one also generates the
  // default workload. With --trace its surface is ignored — only the
  // trace's points and costs matter.
  udf = MakePaperSyntheticUdf(50, /*noise_probability=*/0.0, seed);
  if (records.empty()) {
    const int n = std::atoi(ArgValue(argc, argv, "n", "20000").c_str());
    if (n <= 0) return Usage();
    const auto points = MakePaperWorkload(
        udf->model_space(), QueryDistributionKind::kUniform, n, seed);
    records = CaptureTrace(*udf, points);
  }

  CostCatalog catalog(budget, CatalogConcurrency::kSharded, shards);
  MaintenancePolicy policy;
  policy.incremental = true;
  MaintenanceScheduler scheduler(&catalog, policy);

  obs::TelemetryExporterOptions options;
  options.interval_ms = interval_ms;
  obs::TelemetryExporter exporter(options);
  if (!prom_out.empty()) {
    exporter.AddSink(std::make_unique<obs::PrometheusFileSink>(prom_out));
  }
  if (!series_out.empty()) {
    exporter.AddSink(std::make_unique<obs::JsonlFileSink>(series_out));
  }
  exporter.SetHealthProvider([&catalog] { return catalog.ReadModelHealth(); });
  exporter.Start();

  // Feed the workload through the catalog's batched feedback path with a
  // 4x cost step at the halfway point. The synthetic load uses a stable
  // per-call cost (5% deterministic jitter) so the windowed detector sees
  // a clean abrupt step and journals it; a replayed trace keeps its own
  // costs, scaled — whether that fires depends on the trace's variance.
  const bool synthetic = trace_path.empty();
  const size_t half = records.size() / 2;
  std::vector<CostCatalog::ExecutionRecord> batch;
  batch.reserve(256);
  size_t row = 0;
  for (const TraceRecord& r : records) {
    const double scale = row >= half ? 4.0 : 1.0;
    UdfCost cost;
    if (synthetic) {
      const double jitter =
          1.0 + 0.05 * std::sin(0.37 * static_cast<double>(row));
      cost.cpu_work = 100.0 * scale * jitter;
      cost.io_pages = 0.0;
    } else {
      cost.cpu_work = r.cpu_cost * scale;
      cost.io_pages = r.io_cost * scale;
    }
    batch.push_back({udf->ToModelPoint(r.point), cost, (row++ % 3) == 0});
    if (batch.size() == 256) {
      catalog.RecordExecutionBatch(udf.get(), batch);
      batch.clear();
    }
  }
  if (!batch.empty()) catalog.RecordExecutionBatch(udf.get(), batch);
  catalog.FlushFeedback();
  scheduler.RunEpochNow();
  exporter.Stop();  // Final scrape flushes the tail interval to the sinks.

  const std::vector<obs::StructuredEvent> events =
      obs::GlobalEventLog().Snapshot();
  if (!events_out.empty()) {
    std::ofstream out(events_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", events_out.c_str());
      return 1;
    }
    obs::ExportEventsJsonl(out, events);
  }

  std::map<std::string, int64_t> by_kind;
  for (const obs::StructuredEvent& e : events) {
    ++by_kind[std::string(obs::EventKindName(e.kind))];
  }
  const obs::TelemetryFrame last = exporter.latest_frame();

  if (json) {
    std::cout << "{\"records\":" << records.size()
              << ",\"scrapes\":" << exporter.scrapes()
              << ",\"interval_ms\":" << interval_ms << ",\"events\":{";
    bool first = true;
    for (const auto& [kind, count] : by_kind) {
      if (!first) std::cout << ",";
      first = false;
      std::cout << "\"" << kind << "\":" << count;
    }
    std::cout << "},\"journal_dropped\":" << obs::GlobalEventLog().dropped()
              << ",\"models\":" << last.health.size() << "}\n";
    return 0;
  }

  std::printf("telemetry run: %zu records, %lld scrapes at %lld ms\n",
              records.size(), static_cast<long long>(exporter.scrapes()),
              static_cast<long long>(interval_ms));
  std::printf("journal: %zu events (%lld dropped to wrap-around)\n",
              events.size(),
              static_cast<long long>(obs::GlobalEventLog().dropped()));
  for (const auto& [kind, count] : by_kind) {
    std::printf("  %-18s %lld\n", kind.c_str(),
                static_cast<long long>(count));
  }
  std::printf("model health:\n");
  for (const obs::ModelHealth& h : last.health) {
    std::printf(
        "  %-10s %6lld bytes, %4lld nodes, %7lld obs, nae %.3f, "
        "staleness %.2f, frag %.2f, acc/byte %.3g\n",
        h.model.c_str(), static_cast<long long>(h.bytes),
        static_cast<long long>(h.nodes),
        static_cast<long long>(h.observations), h.windowed_nae, h.staleness,
        h.fragmentation, h.accuracy_per_byte);
  }
  if (!prom_out.empty()) {
    std::printf("wrote Prometheus exposition to %s\n", prom_out.c_str());
  }
  if (!series_out.empty()) {
    std::printf("wrote frame series to %s\n", series_out.c_str());
  }
  if (!events_out.empty()) {
    std::printf("wrote event journal to %s\n", events_out.c_str());
  }
  return 0;
}

int RunInspect(int argc, char** argv) {
  const std::string model_path = ArgValue(argc, argv, "model");
  if (model_path.empty()) return Usage();
  std::string error;
  auto tree = LoadQuadtreeFromFile(model_path, &error);
  if (tree == nullptr) {
    std::fprintf(stderr, "cannot load %s: %s\n", model_path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("model space: %s\n", tree->space().ToString().c_str());
  std::printf("strategy: %s, lambda=%d, alpha=%g, gamma=%g, beta=%lld, "
              "budget=%lld bytes\n",
              tree->config().strategy == InsertionStrategy::kEager ? "eager"
                                                                   : "lazy",
              tree->config().max_depth, tree->config().alpha,
              tree->config().gamma,
              static_cast<long long>(tree->config().beta),
              static_cast<long long>(tree->config().memory_limit_bytes));
  if (tree->config().decay_half_life > 0.0) {
    std::printf("decay: half-life %g, epoch clock at %u\n",
                tree->config().decay_half_life, tree->decay_epoch());
  }
  std::printf("%s", TreeStatsToString(ComputeTreeStats(*tree)).c_str());
  return 0;
}

int RunPredict(int argc, char** argv) {
  const std::string model_path = ArgValue(argc, argv, "model");
  const std::string point_text = ArgValue(argc, argv, "point");
  if (model_path.empty() || point_text.empty()) return Usage();
  std::string error;
  auto tree = LoadQuadtreeFromFile(model_path, &error);
  if (tree == nullptr) {
    std::fprintf(stderr, "cannot load %s: %s\n", model_path.c_str(),
                 error.c_str());
    return 1;
  }
  Point p(tree->space().dims());
  std::istringstream fields(point_text);
  std::string field;
  for (int d = 0; d < p.dims(); ++d) {
    if (!std::getline(fields, field, ',')) {
      std::fprintf(stderr, "--point needs %d coordinates\n", p.dims());
      return 1;
    }
    p[d] = std::atof(field.c_str());
  }
  const Prediction prediction = tree->Predict(p);
  std::printf(
      "predict%s = %.6g +/- %.6g  (depth %d, %lld supporting points%s)\n",
      p.ToString().c_str(), prediction.value, prediction.stddev,
      prediction.depth, static_cast<long long>(prediction.count),
      prediction.reliable ? "" : "; UNRELIABLE — fewer than beta");
  return 0;
}

// `plan`: the optimizer demo loop — build the real-UDF query, warm the
// catalog's models with a few executed training queries, then print the
// final plan with confidence intervals (optionally risk-aware).
int RunPlan(int argc, char** argv) {
  const int rows = std::atoi(ArgValue(argc, argv, "rows", "300").c_str());
  const auto seed = static_cast<uint64_t>(
      std::atoll(ArgValue(argc, argv, "seed", "7").c_str()));
  const int train_queries =
      std::atoi(ArgValue(argc, argv, "train-queries", "2").c_str());
  const double risk_k =
      std::atof(ArgValue(argc, argv, "risk-k", "0").c_str());
  const int sample_rows =
      std::atoi(ArgValue(argc, argv, "sample-rows", "32").c_str());
  const int64_t budget =
      std::atoll(ArgValue(argc, argv, "budget", "1800").c_str());
  const SubstrateScale scale = ArgValue(argc, argv, "scale", "small") == "full"
                                   ? SubstrateScale::kFull
                                   : SubstrateScale::kSmall;
  const bool json = HasFlag(argc, argv, "json");
  if (rows <= 0 || train_queries < 0 || sample_rows <= 0) return Usage();

  RealUdfSuite suite = MakeRealUdfSuite(scale, seed);
  Table table("docs_and_places", {"kw1", "kw2", "x", "y"});
  Rng rng(seed);
  const auto vocab =
      static_cast<double>(suite.text_engine->index().vocab_size());
  for (int i = 0; i < rows; ++i) {
    table.AddRow(std::vector<double>{
        std::floor(rng.Uniform(1.0, vocab)),
        std::floor(rng.Uniform(1.0, vocab)),
        rng.Uniform(0.0, 1000.0),
        rng.Uniform(0.0, 1000.0),
    });
  }

  // The demo conjunction: text proximity, spatial window, kNN.
  UdfPredicate contains(
      "Contains", suite.Find("PROX"),
      {table.ColumnIndex("kw1"), table.ColumnIndex("kw2"), -1},
      Point{0.0, 0.0, 30.0}, /*min_result_count=*/1);
  UdfPredicate in_urban_area(
      "InUrbanArea", suite.Find("WIN"),
      {table.ColumnIndex("x"), table.ColumnIndex("y"), -1, -1},
      Point{0.0, 0.0, 120.0, 120.0}, /*min_result_count=*/5);
  UdfPredicate near10("Near10", suite.Find("KNN"),
                      {table.ColumnIndex("x"), table.ColumnIndex("y"), -1},
                      Point{0.0, 0.0, 10.0}, /*min_result_count=*/1);
  Query query;
  query.table = &table;
  query.predicates = {&contains, &in_urban_area, &near10};

  CostCatalog catalog(budget);
  for (int t = 0; t < train_queries; ++t) {
    const Plan training_plan = PlanQuery(query, catalog, sample_rows);
    ExecuteQuery(query, training_plan, &catalog);
    catalog.FlushFeedback();
  }

  const Plan plan =
      PlanQuery(query, catalog, sample_rows, /*planner_threads=*/1, risk_k);

  if (json) {
    std::printf("{\"risk_k\": %g, \"expected_cost_per_row_micros\": %g, "
                "\"risk_cost_per_row_micros\": %g, \"order\": [",
                plan.risk_k, plan.expected_cost_per_row_micros,
                plan.risk_cost_per_row_micros);
    for (size_t i = 0; i < plan.order.size(); ++i) {
      const PlannedPredicate& p =
          plan.estimates[static_cast<size_t>(plan.order[i])];
      std::printf("%s\"%s\"", i == 0 ? "" : ", ",
                  p.predicate->name().c_str());
    }
    std::printf("], \"predicates\": [");
    for (size_t i = 0; i < plan.estimates.size(); ++i) {
      const PlannedPredicate& p = plan.estimates[i];
      std::printf(
          "%s{\"name\": \"%s\", \"cost_micros\": %g, "
          "\"cost_ci_half_width_micros\": %g, \"selectivity\": %g, "
          "\"selectivity_ci_half_width\": %g, \"support\": %lld}",
          i == 0 ? "" : ", ", p.predicate->name().c_str(),
          p.estimated_cost_micros, p.CostConfidenceHalfWidthMicros(),
          p.estimated_selectivity, 1.96 * p.estimated_selectivity_stddev,
          static_cast<long long>(p.support));
    }
    std::printf("]}\n");
    return 0;
  }
  std::printf("%d training queries executed with feedback; final plan:\n",
              train_queries);
  std::printf("%s", plan.Explain().c_str());
  return 0;
}

// Drives a sharded catalog to fragmentation with a captured workload, runs
// one maintenance epoch (incremental by default), and reports what it did.
int RunMaintenance(int argc, char** argv) {
  const std::string udf_name = ArgValue(argc, argv, "udf", "synth");
  const int n = std::atoi(ArgValue(argc, argv, "n", "20000").c_str());
  const auto seed = static_cast<uint64_t>(
      std::atoll(ArgValue(argc, argv, "seed", "42").c_str()));
  const int peaks = std::atoi(ArgValue(argc, argv, "peaks", "50").c_str());
  const int64_t budget =
      std::atoll(ArgValue(argc, argv, "budget", "1800").c_str());
  const int shards = std::atoi(ArgValue(argc, argv, "shards", "4").c_str());
  const std::string mode =
      ArgValue(argc, argv, "maintenance-policy", "incremental");
  const int64_t step_slots =
      std::atoll(ArgValue(argc, argv, "step-slots", "4096").c_str());
  const bool json = HasFlag(argc, argv, "json");
  const SubstrateScale scale = ArgValue(argc, argv, "scale", "small") == "full"
                                   ? SubstrateScale::kFull
                                   : SubstrateScale::kSmall;
  if (n <= 0 || step_slots <= 0 ||
      (mode != "incremental" && mode != "full")) {
    return Usage();
  }

  std::unique_ptr<SyntheticUdf> synthetic;
  std::unique_ptr<RealUdfSuite> suite;
  CostedUdf* udf = ResolveUdf(udf_name, peaks, seed, scale, &synthetic, &suite);
  if (udf == nullptr) {
    std::fprintf(stderr, "unknown UDF '%s'\n", udf_name.c_str());
    return 1;
  }

  // Feed the whole workload through the catalog's batched feedback path;
  // the per-model compressions this provokes are what fragment the arena.
  CostCatalog catalog(budget, CatalogConcurrency::kSharded, shards);
  const auto points = MakePaperWorkload(
      udf->execution_space(), QueryDistributionKind::kUniform, n, seed);
  const auto records = CaptureTrace(*udf, points);
  std::vector<CostCatalog::ExecutionRecord> batch;
  batch.reserve(256);
  size_t row = 0;
  for (const TraceRecord& r : records) {
    UdfCost cost;
    cost.cpu_work = r.cpu_cost;
    cost.io_pages = r.io_cost;
    batch.push_back({udf->ToModelPoint(r.point), cost, (row++ % 3) == 0});
    if (batch.size() == 256) {
      catalog.RecordExecutionBatch(udf, batch);
      batch.clear();
    }
  }
  if (!batch.empty()) catalog.RecordExecutionBatch(udf, batch);
  catalog.FlushFeedback();

  const CostCatalog::ArenaSignals before = catalog.ReadArenaSignals();
  MaintenancePolicy policy;
  policy.incremental = mode == "incremental";
  policy.step_budget_slots = step_slots;
  MaintenanceScheduler scheduler(&catalog, policy);
  const CostCatalog::ArenaMaintenanceStats stats = scheduler.RunEpochNow();
  const CostCatalog::ArenaSignals after = catalog.ReadArenaSignals();

  if (json) {
    std::printf(
        "{\"mode\": \"%s\", \"records\": %zu, \"tree_compressions\": %lld, "
        "\"fragmentation_before\": %.4f, \"fragmentation_after\": %.4f, "
        "\"physical_bytes_before\": %lld, \"physical_bytes_after\": %lld, "
        "\"bytes_reclaimed\": %lld, \"blocks_moved\": %lld, \"arenas\": %d, "
        "\"steps\": %d, \"max_pause_us\": %lld, \"total_pause_us\": %lld}\n",
        mode.c_str(), records.size(),
        static_cast<long long>(before.tree_compressions),
        before.max_fragmentation, after.max_fragmentation,
        static_cast<long long>(stats.physical_bytes_before),
        static_cast<long long>(stats.physical_bytes_after),
        static_cast<long long>(stats.bytes_reclaimed),
        static_cast<long long>(stats.blocks_moved), stats.arenas_compacted,
        stats.steps, static_cast<long long>(stats.max_pause_us),
        static_cast<long long>(stats.total_pause_us));
    return 0;
  }
  std::printf("maintenance epoch (%s) over %zu records of %s:\n", mode.c_str(),
              records.size(), std::string(udf->name()).c_str());
  std::printf("  tree compressions observed: %lld\n",
              static_cast<long long>(before.tree_compressions));
  std::printf("  fragmentation: %.1f%% -> %.1f%%\n",
              before.max_fragmentation * 100.0,
              after.max_fragmentation * 100.0);
  std::printf("  physical bytes: %lld -> %lld (%lld reclaimed)\n",
              static_cast<long long>(stats.physical_bytes_before),
              static_cast<long long>(stats.physical_bytes_after),
              static_cast<long long>(stats.bytes_reclaimed));
  std::printf("  blocks moved: %lld across %d arena(s)\n",
              static_cast<long long>(stats.blocks_moved),
              stats.arenas_compacted);
  std::printf("  quiesce windows: %d (max pause %lld us, total %lld us)\n",
              stats.steps, static_cast<long long>(stats.max_pause_us),
              static_cast<long long>(stats.total_pause_us));
  return 0;
}

int RunGovern(int argc, char** argv) {
  const int models = std::atoi(ArgValue(argc, argv, "models", "48").c_str());
  const int tenants = std::atoi(ArgValue(argc, argv, "tenants", "3").c_str());
  const int n = std::atoi(ArgValue(argc, argv, "n", "30000").c_str());
  const auto seed = static_cast<uint64_t>(
      std::atoll(ArgValue(argc, argv, "seed", "42").c_str()));
  const int64_t budget =
      std::atoll(ArgValue(argc, argv, "budget", "1800").c_str());
  const double zipf_z = std::atof(ArgValue(argc, argv, "zipf", "1.1").c_str());
  const int max_resident =
      std::atoi(ArgValue(argc, argv, "max-resident", "0").c_str());
  const std::string quota_spec = ArgValue(argc, argv, "quota");
  const bool json = HasFlag(argc, argv, "json");
  if (models <= 0 || tenants <= 0 || n <= 0 || budget <= 0) return Usage();
  // Default global budget: half of what the fleet would hold unconstrained
  // (three models of `budget` bytes per entry), so the governor actually
  // has scarcity to arbitrate.
  const int64_t global = std::atoll(
      ArgValue(argc, argv, "global-budget",
               std::to_string(models * 3 * budget / 2))
          .c_str());

  // The fleet: uniquely named instances of the paper's synthetic surface
  // (distinct peak layouts via the seed), round-robined across tenants.
  std::vector<std::unique_ptr<RenamedUdf>> udfs;
  udfs.reserve(static_cast<size_t>(models));
  for (int i = 0; i < models; ++i) {
    udfs.push_back(std::make_unique<RenamedUdf>(
        "synth-" + std::to_string(i),
        MakePaperSyntheticUdf(/*num_peaks=*/20, /*noise_probability=*/0.0,
                              seed + static_cast<uint64_t>(i))));
  }

  CostCatalog catalog(budget);
  for (int i = 0; i < models; ++i) {
    catalog.For(udfs[static_cast<size_t>(i)].get(),
                "tenant" + std::to_string(i % tenants));
  }

  GovernorPolicy policy;
  policy.global_budget_bytes = global;
  policy.max_resident_models = max_resident;
  if (!quota_spec.empty()) {
    std::stringstream ss(quota_spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) return Usage();
      policy.tenant_quota_bytes[item.substr(0, eq)] =
          std::atoll(item.c_str() + eq + 1);
    }
  }
  CatalogGovernor governor(&catalog, policy);
  MaintenanceScheduler scheduler(&catalog, MaintenancePolicy{});
  scheduler.SetGovernor(&governor);

  // Zipf-skewed serving: model i serves rank i+1, so low indices are hot.
  // One shared point pool keeps the surface sampling uniform per model.
  const auto points =
      MakePaperWorkload(udfs[0]->model_space(),
                        QueryDistributionKind::kUniform, 512, seed);
  ZipfDistribution zipf(models, zipf_z);
  Rng rng(seed ^ 0x90BE12ULL);
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<size_t>(zipf.Sample(rng) - 1);
    CostedUdf* udf = udfs[idx].get();
    const Point& p = points[static_cast<size_t>(i) % points.size()];
    catalog.PredictCostMicros(udf, p);
    if (i % 4 == 0) {
      const UdfCost cost = udf->Execute(p);
      catalog.RecordExecution(udf, p, cost, (i % 3) == 0);
    }
    // The serving stack normally ticks at executor block boundaries; the
    // tool stands in for it every 64 ops (default governor cadence then
    // rebalances every 16 ticks = 1024 ops).
    if (i % 64 == 0) catalog.MaintenanceTick();
  }
  catalog.FlushFeedback();
  // Final settle so the printed allocation reflects the full run.
  governor.RebalanceNow();

  std::vector<obs::ModelHealth> health = catalog.ReadModelHealth();
  std::sort(health.begin(), health.end(),
            [](const obs::ModelHealth& a, const obs::ModelHealth& b) {
              return a.budget_bytes > b.budget_bytes;
            });
  struct TenantAgg {
    int entries = 0;
    int64_t traffic = 0;
    int64_t budget = 0;
    int64_t bytes = 0;
  };
  std::map<std::string, TenantAgg> by_tenant;
  int64_t allocated = 0;
  for (const obs::ModelHealth& h : health) {
    TenantAgg& agg = by_tenant[h.tenant];
    ++agg.entries;
    agg.traffic += h.traffic;
    agg.budget += h.budget_bytes;
    agg.bytes += h.bytes;
    allocated += h.budget_bytes;
  }
  const GovernorStats stats = governor.stats();

  if (json) {
    std::printf(
        "{\"models\": %d, \"tenants\": %d, \"ops\": %d, "
        "\"global_budget_bytes\": %lld, \"allocated_bytes\": %lld, "
        "\"rebalances\": %lld, \"bytes_granted\": %lld, "
        "\"bytes_reclaimed\": %lld, \"entries_rebalanced\": %lld, "
        "\"evictions\": %lld, \"resident_models\": %zu, "
        "\"evicted_models\": %d, \"tenant\": {",
        models, tenants, n, static_cast<long long>(global),
        static_cast<long long>(allocated),
        static_cast<long long>(stats.rebalances),
        static_cast<long long>(stats.bytes_granted),
        static_cast<long long>(stats.bytes_reclaimed),
        static_cast<long long>(stats.entries_rebalanced),
        static_cast<long long>(stats.evictions), health.size(),
        catalog.evicted_count());
    bool first = true;
    for (const auto& [tenant, agg] : by_tenant) {
      std::printf("%s\"%s\": {\"entries\": %d, \"traffic\": %lld, "
                  "\"budget_bytes\": %lld, \"logical_bytes\": %lld}",
                  first ? "" : ", ", tenant.c_str(), agg.entries,
                  static_cast<long long>(agg.traffic),
                  static_cast<long long>(agg.budget),
                  static_cast<long long>(agg.bytes));
      first = false;
    }
    std::printf("}}\n");
    return 0;
  }

  std::printf("governed catalog: %d models, %d tenants, %d ops, "
              "global budget %lld bytes\n",
              models, tenants, n, static_cast<long long>(global));
  std::printf("  rebalances=%lld granted=%lld reclaimed=%lld "
              "changed=%lld evictions=%lld resident=%zu evicted=%d\n",
              static_cast<long long>(stats.rebalances),
              static_cast<long long>(stats.bytes_granted),
              static_cast<long long>(stats.bytes_reclaimed),
              static_cast<long long>(stats.entries_rebalanced),
              static_cast<long long>(stats.evictions), health.size(),
              catalog.evicted_count());
  std::printf("  allocated %lld / %lld bytes (%.1f%%)\n",
              static_cast<long long>(allocated),
              static_cast<long long>(global),
              global > 0 ? 100.0 * static_cast<double>(allocated) /
                               static_cast<double>(global)
                         : 0.0);
  std::printf("  %-10s %8s %12s %14s %14s\n", "tenant", "entries", "traffic",
              "budget_bytes", "logical_bytes");
  for (const auto& [tenant, agg] : by_tenant) {
    const auto quota = policy.tenant_quota_bytes.find(tenant);
    std::printf("  %-10s %8d %12lld %14lld %14lld%s\n", tenant.c_str(),
                agg.entries, static_cast<long long>(agg.traffic),
                static_cast<long long>(agg.budget),
                static_cast<long long>(agg.bytes),
                quota != policy.tenant_quota_bytes.end()
                    ? ("  (quota " + std::to_string(quota->second) + ")")
                          .c_str()
                    : "");
  }
  std::printf("  hottest entries by granted budget:\n");
  std::printf("  %-12s %-8s %10s %12s %12s %8s %9s\n", "model", "tenant",
              "traffic", "budget", "bytes", "nae", "staleness");
  const size_t top = std::min<size_t>(health.size(), 10);
  for (size_t i = 0; i < top; ++i) {
    const obs::ModelHealth& h = health[i];
    std::printf("  %-12s %-8s %10lld %12lld %12lld %8.3f %9.2f\n",
                h.model.c_str(), h.tenant.c_str(),
                static_cast<long long>(h.traffic),
                static_cast<long long>(h.budget_bytes),
                static_cast<long long>(h.bytes), h.windowed_nae, h.staleness);
  }
  return 0;
}

int RunSelfTest() {
  // capture -> replay -> save -> inspect -> predict, via temp files.
  const std::string trace_path = "/tmp/mlq_tool_selftest_trace.txt";
  const std::string model_path = "/tmp/mlq_tool_selftest_model.bin";
  {
    auto udf = MakePaperSyntheticUdf(20, 0.0, 99);
    const auto points = MakePaperWorkload(
        udf->model_space(), QueryDistributionKind::kUniform, 500, 7);
    const auto records = CaptureTrace(*udf, points);
    std::ofstream out(trace_path);
    WriteTrace(out, records, udf->model_space().dims());
  }
  {
    std::ifstream in(trace_path);
    std::vector<TraceRecord> records;
    std::string error;
    if (!ReadTrace(in, &records, &error) || records.size() != 500) {
      std::fprintf(stderr, "selftest: trace round-trip failed: %s\n",
                   error.c_str());
      return 1;
    }
    MlqConfig config;
    MlqModel model(Box::Cube(4, 0.0, 1000.0), config);
    ReplayTrace(model, records, CostKind::kCpu);
    if (!SaveQuadtreeToFile(model.tree(), model_path)) {
      std::fprintf(stderr, "selftest: model save failed\n");
      return 1;
    }
  }
  {
    std::string error;
    auto tree = LoadQuadtreeFromFile(model_path, &error);
    if (tree == nullptr || !tree->CheckInvariants(&error)) {
      std::fprintf(stderr, "selftest: model load failed: %s\n", error.c_str());
      return 1;
    }
    const Prediction p = tree->Predict(Point{500.0, 500.0, 500.0, 500.0});
    if (p.value < 0.0) {
      std::fprintf(stderr, "selftest: nonsense prediction\n");
      return 1;
    }
  }
  {
    // Concurrent serving leg: replay the same trace into a sharded model
    // from two threads and verify the shards stay sound and accounted.
    std::ifstream in(trace_path);
    std::vector<TraceRecord> records;
    std::string error;
    if (!ReadTrace(in, &records, &error)) {
      std::fprintf(stderr, "selftest: sharded trace re-read failed\n");
      return 1;
    }
    MlqConfig config;
    ShardedModelOptions options;
    options.num_shards = 4;
    ShardedCostModel model(Box::Cube(4, 0.0, 1000.0), config, options);
    std::vector<std::thread> pool;
    for (int t = 0; t < 2; ++t) {
      pool.emplace_back([&records, &model, t]() {
        for (size_t i = static_cast<size_t>(t); i < records.size(); i += 2) {
          model.Predict(records[i].point);
          model.Observe(records[i].point, records[i].cpu_cost);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
    model.Flush();
    const ShardedModelStats stats = model.stats();
    if (stats.observations_applied + stats.observations_dropped !=
        stats.observations_submitted) {
      std::fprintf(stderr, "selftest: sharded feedback accounting broken\n");
      return 1;
    }
    for (int s = 0; s < model.num_shards(); ++s) {
      if (!model.shard_model(s).tree().CheckInvariants(&error)) {
        std::fprintf(stderr, "selftest: shard %d inconsistent: %s\n", s,
                     error.c_str());
        return 1;
      }
    }
  }
  std::remove(trace_path.c_str());
  std::remove(model_path.c_str());
  std::printf(
      "selftest OK (capture -> replay -> save -> load -> predict -> "
      "sharded concurrent replay)\n");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "capture") return RunCapture(argc, argv);
  if (command == "replay") return RunReplay(argc, argv);
  if (command == "metrics") return RunMetrics(argc, argv);
  if (command == "telemetry") return RunTelemetry(argc, argv);
  if (command == "inspect") return RunInspect(argc, argv);
  if (command == "predict") return RunPredict(argc, argv);
  if (command == "plan") return RunPlan(argc, argv);
  if (command == "maintenance") return RunMaintenance(argc, argv);
  if (command == "govern") return RunGovern(argc, argv);
  if (command == "selftest") return RunSelfTest();
  return Usage();
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) { return mlq::Main(argc, argv); }
