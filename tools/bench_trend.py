#!/usr/bin/env python3
"""Bench trend page generator for the CI bench workflow.

Appends one history record per invocation (the per-metric MEDIAN across the
given run files, same reduction as the regression gate) to a JSONL file and
regenerates a dependency-free static HTML page with an inline SVG sparkline
per metric. The CI bench job runs this on main-branch pushes against a
gh-pages checkout, so the page accumulates one point per landed commit:

  tools/bench_trend.py --out-dir gh-pages/bench --sha "$GITHUB_SHA" \
      bench-results/*.json

Stdlib only. History lives in <out-dir>/history.jsonl (one JSON object per
line: sha, utc timestamp, {metric: value}); the page is <out-dir>/index.html.
Records are idempotent per sha: re-running for an already-recorded sha
replaces that sha's record instead of duplicating it.
"""

import argparse
import datetime
import html
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench_regression as gate  # noqa: E402  (sibling tool)

_MAX_POINTS = 200  # Sparkline window; history.jsonl keeps everything.


def load_history(path):
    records = []
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    return records


def append_record(history_path, sha, metrics):
    records = [r for r in load_history(history_path) if r.get("sha") != sha]
    records.append({
        "sha": sha,
        "time": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"),
        "metrics": {key: value for key, (value, _) in sorted(metrics.items())},
    })
    with open(history_path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return records


def _sparkline(values, width=420, height=48, pad=4):
    """An SVG polyline over `values`, scaled to the series' own range."""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    points = []
    for i, v in enumerate(values):
        x = pad + (width - 2 * pad) * (i / max(1, n - 1))
        y = height - pad - (height - 2 * pad) * ((v - lo) / span)
        points.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<polyline fill="none" stroke="#2b6cb0" stroke-width="1.5" '
        f'points="{" ".join(points)}"/></svg>'
    )


def render_page(records):
    series = {}  # metric -> [value per record that has it]
    for record in records[-_MAX_POINTS:]:
        for key, value in record.get("metrics", {}).items():
            series.setdefault(key, []).append(float(value))
    latest = records[-1] if records else {}
    # One section per bench binary (the `bench/...` key prefix), so a newly
    # baselined bench gets its own table instead of interleaving with the
    # rest of the alphabet.
    groups = {}  # bench name -> [(key, values)]
    for key in sorted(series):
        bench = key.split("/", 1)[0]
        groups.setdefault(bench, []).append((key, series[key]))
    window = min(len(records), _MAX_POINTS)
    sections = []
    for bench in sorted(groups):
        rows = []
        for key, values in groups[bench]:
            first, last = values[0], values[-1]
            change = (last - first) / first if first else 0.0
            rows.append(
                "<tr><td><code>{key}</code></td><td>{spark}</td>"
                "<td>{last:.4g}</td><td>{change:+.1%}</td></tr>".format(
                    key=html.escape(key), spark=_sparkline(values),
                    last=last, change=change))
        sections.append(
            "<h2><code>{bench}</code></h2>\n<table>\n"
            "<tr><th>metric</th><th>trend (last {window})</th>"
            "<th>latest</th><th>change over window</th></tr>\n"
            "{rows}\n</table>".format(bench=html.escape(bench),
                                      window=window, rows="\n".join(rows)))
    return """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>Bench trend</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem; }}
table {{ border-collapse: collapse; margin-bottom: 1.5rem; }}
td, th {{ padding: 0.3rem 0.8rem; border-bottom: 1px solid #ddd; }}
code {{ font-size: 12px; }}
h2 {{ margin-top: 1.5rem; }}
</style></head><body>
<h1>Bench trend</h1>
<p>{count} runs recorded; latest {sha} at {time}. One point per main-branch
push; each value is the median across that push's bench rounds.</p>
{sections}
</body></html>
""".format(count=len(records), sha=html.escape(str(latest.get("sha", "?"))[:12]),
           time=html.escape(str(latest.get("time", "?"))),
           sections="\n".join(sections))


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", required=True,
                        help="directory for history.jsonl and index.html")
    parser.add_argument("--sha", default=os.environ.get("GITHUB_SHA", "local"),
                        help="commit sha to record (default: $GITHUB_SHA)")
    parser.add_argument("runs", nargs="+", help="bench --json run files")
    args = parser.parse_args(argv)

    metrics = gate.load_runs(args.runs)
    if not metrics:
        print("error: no metrics found in the given run files",
              file=sys.stderr)
        return 1
    os.makedirs(args.out_dir, exist_ok=True)
    history_path = os.path.join(args.out_dir, "history.jsonl")
    records = append_record(history_path, args.sha, metrics)
    page_path = os.path.join(args.out_dir, "index.html")
    with open(page_path, "w", encoding="utf-8") as handle:
        handle.write(render_page(records))
    print(f"recorded {len(metrics)} metrics for {args.sha}; "
          f"{len(records)} total runs -> {page_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
