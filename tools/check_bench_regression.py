#!/usr/bin/env python3
"""Benchmark regression gate for the CI bench workflow.

Consumes the JSON emitted by the bench binaries' `--json <path>` switch and
compares throughput metrics against an in-repo baseline:

  # Record a baseline from one or more runs (median across runs per metric):
  tools/check_bench_regression.py seed --out BENCH_BASELINE.json run1.json run2.json ...

  # Gate: exit 1 when any metric's median regresses by more than --threshold:
  tools/check_bench_regression.py check --baseline BENCH_BASELINE.json \
      --threshold 0.15 run1.json run2.json ...

Two input shapes are understood:

  * google-benchmark output (micro_ops): every entry with an
    `items_per_second` field becomes a higher-is-better metric.
  * the repo's TablePrinter dump ({"bench", "tables": [{columns, rows}]}):
    columns matching `ops/s` are higher-is-better throughputs, columns
    matching `ns/op` are lower-is-better latencies; other columns (deltas,
    ratios, counters) are ignored. Rows are keyed by their first column.

Run files for the SAME bench are grouped and reduced to a per-metric median
before comparison, so the recommended CI setup is three interleaved runs of
each bench — the median shrugs off one noisy neighbor. Metrics present in
the baseline but missing from the runs fail the gate (a silently vanished
benchmark must not pass); new metrics are reported and skipped (seed the
baseline again to start tracking them).
"""

import argparse
import json
import re
import statistics
import sys

# Metric direction by name: throughputs regress downward, latencies upward.
_HIGHER_IS_BETTER = re.compile(r"(ops/s|items_per_second)", re.IGNORECASE)
_LOWER_IS_BETTER = re.compile(r"ns/op", re.IGNORECASE)


def _slug(text):
    return re.sub(r"[^A-Za-z0-9_./-]+", "_", str(text).strip())


def extract_metrics(doc):
    """Returns {metric_key: (value, direction)} for one bench run document.

    direction is +1 for higher-is-better, -1 for lower-is-better.
    """
    metrics = {}
    if "benchmarks" in doc:  # google-benchmark format.
        bench = doc.get("context", {}).get("executable", "micro_ops")
        bench = _slug(bench.rsplit("/", 1)[-1])
        for entry in doc["benchmarks"]:
            if entry.get("run_type") == "aggregate":
                continue
            value = entry.get("items_per_second")
            if value is None:
                continue
            metrics[f"{bench}/{_slug(entry['name'])}"] = (float(value), +1)
        return metrics

    bench = _slug(doc.get("bench", "unknown"))
    for t_index, table in enumerate(doc.get("tables", [])):
        columns = table.get("columns", [])
        for row in table.get("rows", []):
            if not row:
                continue
            row_key = _slug(row[0])
            for column, cell in zip(columns[1:], row[1:]):
                if _HIGHER_IS_BETTER.search(column):
                    direction = +1
                elif _LOWER_IS_BETTER.search(column):
                    direction = -1
                else:
                    continue
                try:
                    value = float(cell)
                except (TypeError, ValueError):
                    continue
                key = f"{bench}/t{t_index}/{row_key}/{_slug(column)}"
                metrics[key] = (value, direction)
    return metrics


def load_runs(paths):
    """Loads run files and reduces same-key metrics to their median."""
    samples = {}  # key -> (direction, [values])
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        for key, (value, direction) in extract_metrics(doc).items():
            entry = samples.setdefault(key, (direction, []))
            entry[1].append(value)
    return {
        key: (statistics.median(values), direction)
        for key, (direction, values) in samples.items()
    }


def cmd_seed(args):
    metrics = load_runs(args.runs)
    if not metrics:
        print("error: no metrics found in the given run files", file=sys.stderr)
        return 1
    baseline = {
        "comment": "Bench baseline for tools/check_bench_regression.py. "
        "Reseed with: tools/check_bench_regression.py seed --out "
        "BENCH_BASELINE.json <runs...>",
        "metrics": {
            key: {"value": value, "direction": direction}
            for key, (value, direction) in sorted(metrics.items())
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(metrics)} baseline metrics to {args.out}")
    return 0


def cmd_check(args):
    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)["metrics"]
    current = load_runs(args.runs)

    failures = []
    checked = 0
    for key, spec in sorted(baseline.items()):
        base_value = float(spec["value"])
        direction = int(spec.get("direction", +1))
        if key not in current:
            failures.append(f"{key}: present in baseline but missing from runs")
            continue
        value, _ = current[key]
        checked += 1
        if base_value == 0:
            continue
        if direction > 0:
            change = (value - base_value) / base_value
            regressed = change < -args.threshold
        else:
            change = (base_value - value) / base_value  # Positive = faster.
            regressed = change < -args.threshold
        status = "FAIL" if regressed else "ok"
        print(f"{status:4} {key}: baseline {base_value:.4g} -> {value:.4g} "
              f"({change:+.1%})")
        if regressed:
            failures.append(
                f"{key}: {change:+.1%} vs baseline {base_value:.4g} "
                f"(threshold -{args.threshold:.0%})")

    for key in sorted(set(current) - set(baseline)):
        print(f"new  {key}: {current[key][0]:.4g} (not in baseline, skipped)")

    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {checked} baseline metrics within {args.threshold:.0%}")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    seed = sub.add_parser("seed", help="record a baseline from run files")
    seed.add_argument("--out", required=True)
    seed.add_argument("runs", nargs="+")
    seed.set_defaults(func=cmd_seed)

    check = sub.add_parser("check", help="gate run files against a baseline")
    check.add_argument("--baseline", required=True)
    check.add_argument("--threshold", type=float, default=0.15,
                       help="max allowed fractional regression (default 0.15)")
    check.add_argument("runs", nargs="+")
    check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
