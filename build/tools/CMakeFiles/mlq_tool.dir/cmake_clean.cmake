file(REMOVE_RECURSE
  "CMakeFiles/mlq_tool.dir/mlq_tool.cc.o"
  "CMakeFiles/mlq_tool.dir/mlq_tool.cc.o.d"
  "mlq_tool"
  "mlq_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlq_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
