# Empty dependencies file for mlq_tool.
# This may be replaced when dependencies are built.
