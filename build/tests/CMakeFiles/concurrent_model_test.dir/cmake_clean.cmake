file(REMOVE_RECURSE
  "CMakeFiles/concurrent_model_test.dir/model/concurrent_model_test.cc.o"
  "CMakeFiles/concurrent_model_test.dir/model/concurrent_model_test.cc.o.d"
  "concurrent_model_test"
  "concurrent_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
