file(REMOVE_RECURSE
  "CMakeFiles/join_query_test.dir/engine/join_query_test.cc.o"
  "CMakeFiles/join_query_test.dir/engine/join_query_test.cc.o.d"
  "join_query_test"
  "join_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
