# Empty dependencies file for query_distribution_test.
# This may be replaced when dependencies are built.
