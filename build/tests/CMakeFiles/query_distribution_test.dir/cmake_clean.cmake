file(REMOVE_RECURSE
  "CMakeFiles/query_distribution_test.dir/workload/query_distribution_test.cc.o"
  "CMakeFiles/query_distribution_test.dir/workload/query_distribution_test.cc.o.d"
  "query_distribution_test"
  "query_distribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
