
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/serialization_test.cc" "tests/CMakeFiles/serialization_test.dir/model/serialization_test.cc.o" "gcc" "tests/CMakeFiles/serialization_test.dir/model/serialization_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/mlq_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mlq_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/mlq_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mlq_model.dir/DependInfo.cmake"
  "/root/repo/build/src/quadtree/CMakeFiles/mlq_quadtree.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/mlq_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/synthetic/CMakeFiles/mlq_synthetic.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/mlq_text.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/mlq_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mlq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mlq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
