file(REMOVE_RECURSE
  "CMakeFiles/predicate_ordering_test.dir/optimizer/predicate_ordering_test.cc.o"
  "CMakeFiles/predicate_ordering_test.dir/optimizer/predicate_ordering_test.cc.o.d"
  "predicate_ordering_test"
  "predicate_ordering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_ordering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
