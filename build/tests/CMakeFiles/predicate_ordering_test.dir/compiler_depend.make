# Empty compiler generated dependencies file for predicate_ordering_test.
# This may be replaced when dependencies are built.
