file(REMOVE_RECURSE
  "CMakeFiles/memory_and_misc_test.dir/common/memory_and_misc_test.cc.o"
  "CMakeFiles/memory_and_misc_test.dir/common/memory_and_misc_test.cc.o.d"
  "memory_and_misc_test"
  "memory_and_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_and_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
