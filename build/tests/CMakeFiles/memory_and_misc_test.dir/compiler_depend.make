# Empty compiler generated dependencies file for memory_and_misc_test.
# This may be replaced when dependencies are built.
