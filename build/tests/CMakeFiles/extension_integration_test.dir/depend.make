# Empty dependencies file for extension_integration_test.
# This may be replaced when dependencies are built.
