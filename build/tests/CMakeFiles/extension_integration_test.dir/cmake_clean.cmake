file(REMOVE_RECURSE
  "CMakeFiles/extension_integration_test.dir/integration/extension_integration_test.cc.o"
  "CMakeFiles/extension_integration_test.dir/integration/extension_integration_test.cc.o.d"
  "extension_integration_test"
  "extension_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
