file(REMOVE_RECURSE
  "CMakeFiles/influence_histogram_test.dir/model/influence_histogram_test.cc.o"
  "CMakeFiles/influence_histogram_test.dir/model/influence_histogram_test.cc.o.d"
  "influence_histogram_test"
  "influence_histogram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/influence_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
