# Empty dependencies file for influence_histogram_test.
# This may be replaced when dependencies are built.
