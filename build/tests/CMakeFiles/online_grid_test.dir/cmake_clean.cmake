file(REMOVE_RECURSE
  "CMakeFiles/online_grid_test.dir/model/online_grid_test.cc.o"
  "CMakeFiles/online_grid_test.dir/model/online_grid_test.cc.o.d"
  "online_grid_test"
  "online_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
