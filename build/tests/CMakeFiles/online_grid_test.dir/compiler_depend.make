# Empty compiler generated dependencies file for online_grid_test.
# This may be replaced when dependencies are built.
