# Empty compiler generated dependencies file for extension_models_test.
# This may be replaced when dependencies are built.
