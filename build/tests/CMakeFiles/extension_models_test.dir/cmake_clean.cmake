file(REMOVE_RECURSE
  "CMakeFiles/extension_models_test.dir/model/extension_models_test.cc.o"
  "CMakeFiles/extension_models_test.dir/model/extension_models_test.cc.o.d"
  "extension_models_test"
  "extension_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
