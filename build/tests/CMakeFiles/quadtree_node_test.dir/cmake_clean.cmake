file(REMOVE_RECURSE
  "CMakeFiles/quadtree_node_test.dir/quadtree/quadtree_node_test.cc.o"
  "CMakeFiles/quadtree_node_test.dir/quadtree/quadtree_node_test.cc.o.d"
  "quadtree_node_test"
  "quadtree_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadtree_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
