file(REMOVE_RECURSE
  "CMakeFiles/insert_predict_test.dir/quadtree/insert_predict_test.cc.o"
  "CMakeFiles/insert_predict_test.dir/quadtree/insert_predict_test.cc.o.d"
  "insert_predict_test"
  "insert_predict_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insert_predict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
