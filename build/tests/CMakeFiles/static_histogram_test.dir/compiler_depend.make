# Empty compiler generated dependencies file for static_histogram_test.
# This may be replaced when dependencies are built.
