file(REMOVE_RECURSE
  "CMakeFiles/static_histogram_test.dir/model/static_histogram_test.cc.o"
  "CMakeFiles/static_histogram_test.dir/model/static_histogram_test.cc.o.d"
  "static_histogram_test"
  "static_histogram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
