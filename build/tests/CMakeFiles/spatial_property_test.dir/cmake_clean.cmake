file(REMOVE_RECURSE
  "CMakeFiles/spatial_property_test.dir/spatial/spatial_property_test.cc.o"
  "CMakeFiles/spatial_property_test.dir/spatial/spatial_property_test.cc.o.d"
  "spatial_property_test"
  "spatial_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
