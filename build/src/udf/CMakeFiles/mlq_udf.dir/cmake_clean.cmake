file(REMOVE_RECURSE
  "CMakeFiles/mlq_udf.dir/transform.cc.o"
  "CMakeFiles/mlq_udf.dir/transform.cc.o.d"
  "CMakeFiles/mlq_udf.dir/transformed_udf.cc.o"
  "CMakeFiles/mlq_udf.dir/transformed_udf.cc.o.d"
  "CMakeFiles/mlq_udf.dir/udf_registry.cc.o"
  "CMakeFiles/mlq_udf.dir/udf_registry.cc.o.d"
  "libmlq_udf.a"
  "libmlq_udf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlq_udf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
