# Empty dependencies file for mlq_udf.
# This may be replaced when dependencies are built.
