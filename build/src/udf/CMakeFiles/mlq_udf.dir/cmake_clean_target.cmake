file(REMOVE_RECURSE
  "libmlq_udf.a"
)
