
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cost_catalog.cc" "src/engine/CMakeFiles/mlq_engine.dir/cost_catalog.cc.o" "gcc" "src/engine/CMakeFiles/mlq_engine.dir/cost_catalog.cc.o.d"
  "/root/repo/src/engine/estimate_audit.cc" "src/engine/CMakeFiles/mlq_engine.dir/estimate_audit.cc.o" "gcc" "src/engine/CMakeFiles/mlq_engine.dir/estimate_audit.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/mlq_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/mlq_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/join_query.cc" "src/engine/CMakeFiles/mlq_engine.dir/join_query.cc.o" "gcc" "src/engine/CMakeFiles/mlq_engine.dir/join_query.cc.o.d"
  "/root/repo/src/engine/query_optimizer.cc" "src/engine/CMakeFiles/mlq_engine.dir/query_optimizer.cc.o" "gcc" "src/engine/CMakeFiles/mlq_engine.dir/query_optimizer.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/engine/CMakeFiles/mlq_engine.dir/table.cc.o" "gcc" "src/engine/CMakeFiles/mlq_engine.dir/table.cc.o.d"
  "/root/repo/src/engine/udf_predicate.cc" "src/engine/CMakeFiles/mlq_engine.dir/udf_predicate.cc.o" "gcc" "src/engine/CMakeFiles/mlq_engine.dir/udf_predicate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mlq_model.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/mlq_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/mlq_udf.dir/DependInfo.cmake"
  "/root/repo/build/src/quadtree/CMakeFiles/mlq_quadtree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
