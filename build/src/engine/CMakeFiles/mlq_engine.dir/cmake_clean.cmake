file(REMOVE_RECURSE
  "CMakeFiles/mlq_engine.dir/cost_catalog.cc.o"
  "CMakeFiles/mlq_engine.dir/cost_catalog.cc.o.d"
  "CMakeFiles/mlq_engine.dir/estimate_audit.cc.o"
  "CMakeFiles/mlq_engine.dir/estimate_audit.cc.o.d"
  "CMakeFiles/mlq_engine.dir/executor.cc.o"
  "CMakeFiles/mlq_engine.dir/executor.cc.o.d"
  "CMakeFiles/mlq_engine.dir/join_query.cc.o"
  "CMakeFiles/mlq_engine.dir/join_query.cc.o.d"
  "CMakeFiles/mlq_engine.dir/query_optimizer.cc.o"
  "CMakeFiles/mlq_engine.dir/query_optimizer.cc.o.d"
  "CMakeFiles/mlq_engine.dir/table.cc.o"
  "CMakeFiles/mlq_engine.dir/table.cc.o.d"
  "CMakeFiles/mlq_engine.dir/udf_predicate.cc.o"
  "CMakeFiles/mlq_engine.dir/udf_predicate.cc.o.d"
  "libmlq_engine.a"
  "libmlq_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlq_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
