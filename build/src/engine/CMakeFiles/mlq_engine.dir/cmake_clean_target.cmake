file(REMOVE_RECURSE
  "libmlq_engine.a"
)
