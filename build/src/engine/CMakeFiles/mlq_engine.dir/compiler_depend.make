# Empty compiler generated dependencies file for mlq_engine.
# This may be replaced when dependencies are built.
