file(REMOVE_RECURSE
  "libmlq_eval.a"
)
