# Empty dependencies file for mlq_eval.
# This may be replaced when dependencies are built.
