file(REMOVE_RECURSE
  "CMakeFiles/mlq_eval.dir/csv_export.cc.o"
  "CMakeFiles/mlq_eval.dir/csv_export.cc.o.d"
  "CMakeFiles/mlq_eval.dir/evaluator.cc.o"
  "CMakeFiles/mlq_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/mlq_eval.dir/experiment_setup.cc.o"
  "CMakeFiles/mlq_eval.dir/experiment_setup.cc.o.d"
  "CMakeFiles/mlq_eval.dir/trace.cc.o"
  "CMakeFiles/mlq_eval.dir/trace.cc.o.d"
  "libmlq_eval.a"
  "libmlq_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlq_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
