file(REMOVE_RECURSE
  "libmlq_workload.a"
)
