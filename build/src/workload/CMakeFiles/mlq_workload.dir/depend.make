# Empty dependencies file for mlq_workload.
# This may be replaced when dependencies are built.
