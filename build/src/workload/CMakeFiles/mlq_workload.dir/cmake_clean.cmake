file(REMOVE_RECURSE
  "CMakeFiles/mlq_workload.dir/query_distribution.cc.o"
  "CMakeFiles/mlq_workload.dir/query_distribution.cc.o.d"
  "libmlq_workload.a"
  "libmlq_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlq_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
