file(REMOVE_RECURSE
  "libmlq_common.a"
)
