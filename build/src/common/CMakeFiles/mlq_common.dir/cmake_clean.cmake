file(REMOVE_RECURSE
  "CMakeFiles/mlq_common.dir/geometry.cc.o"
  "CMakeFiles/mlq_common.dir/geometry.cc.o.d"
  "CMakeFiles/mlq_common.dir/rng.cc.o"
  "CMakeFiles/mlq_common.dir/rng.cc.o.d"
  "CMakeFiles/mlq_common.dir/stats.cc.o"
  "CMakeFiles/mlq_common.dir/stats.cc.o.d"
  "CMakeFiles/mlq_common.dir/table_printer.cc.o"
  "CMakeFiles/mlq_common.dir/table_printer.cc.o.d"
  "CMakeFiles/mlq_common.dir/zipf.cc.o"
  "CMakeFiles/mlq_common.dir/zipf.cc.o.d"
  "libmlq_common.a"
  "libmlq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
