# Empty compiler generated dependencies file for mlq_common.
# This may be replaced when dependencies are built.
