
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synthetic/decay.cc" "src/synthetic/CMakeFiles/mlq_synthetic.dir/decay.cc.o" "gcc" "src/synthetic/CMakeFiles/mlq_synthetic.dir/decay.cc.o.d"
  "/root/repo/src/synthetic/peak_surface.cc" "src/synthetic/CMakeFiles/mlq_synthetic.dir/peak_surface.cc.o" "gcc" "src/synthetic/CMakeFiles/mlq_synthetic.dir/peak_surface.cc.o.d"
  "/root/repo/src/synthetic/synthetic_udf.cc" "src/synthetic/CMakeFiles/mlq_synthetic.dir/synthetic_udf.cc.o" "gcc" "src/synthetic/CMakeFiles/mlq_synthetic.dir/synthetic_udf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/mlq_udf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
