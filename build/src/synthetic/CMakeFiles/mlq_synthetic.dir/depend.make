# Empty dependencies file for mlq_synthetic.
# This may be replaced when dependencies are built.
