file(REMOVE_RECURSE
  "libmlq_synthetic.a"
)
