file(REMOVE_RECURSE
  "CMakeFiles/mlq_synthetic.dir/decay.cc.o"
  "CMakeFiles/mlq_synthetic.dir/decay.cc.o.d"
  "CMakeFiles/mlq_synthetic.dir/peak_surface.cc.o"
  "CMakeFiles/mlq_synthetic.dir/peak_surface.cc.o.d"
  "CMakeFiles/mlq_synthetic.dir/synthetic_udf.cc.o"
  "CMakeFiles/mlq_synthetic.dir/synthetic_udf.cc.o.d"
  "libmlq_synthetic.a"
  "libmlq_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlq_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
