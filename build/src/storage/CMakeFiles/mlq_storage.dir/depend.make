# Empty dependencies file for mlq_storage.
# This may be replaced when dependencies are built.
