file(REMOVE_RECURSE
  "CMakeFiles/mlq_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/mlq_storage.dir/buffer_pool.cc.o.d"
  "libmlq_storage.a"
  "libmlq_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlq_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
