file(REMOVE_RECURSE
  "libmlq_storage.a"
)
