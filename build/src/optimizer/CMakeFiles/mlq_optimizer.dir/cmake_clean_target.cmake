file(REMOVE_RECURSE
  "libmlq_optimizer.a"
)
