file(REMOVE_RECURSE
  "CMakeFiles/mlq_optimizer.dir/predicate_ordering.cc.o"
  "CMakeFiles/mlq_optimizer.dir/predicate_ordering.cc.o.d"
  "libmlq_optimizer.a"
  "libmlq_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlq_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
