# Empty dependencies file for mlq_optimizer.
# This may be replaced when dependencies are built.
