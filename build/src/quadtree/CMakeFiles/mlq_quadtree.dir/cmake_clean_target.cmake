file(REMOVE_RECURSE
  "libmlq_quadtree.a"
)
