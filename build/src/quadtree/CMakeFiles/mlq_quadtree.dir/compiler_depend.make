# Empty compiler generated dependencies file for mlq_quadtree.
# This may be replaced when dependencies are built.
