file(REMOVE_RECURSE
  "CMakeFiles/mlq_quadtree.dir/memory_limited_quadtree.cc.o"
  "CMakeFiles/mlq_quadtree.dir/memory_limited_quadtree.cc.o.d"
  "CMakeFiles/mlq_quadtree.dir/quadtree_node.cc.o"
  "CMakeFiles/mlq_quadtree.dir/quadtree_node.cc.o.d"
  "CMakeFiles/mlq_quadtree.dir/tree_stats.cc.o"
  "CMakeFiles/mlq_quadtree.dir/tree_stats.cc.o.d"
  "libmlq_quadtree.a"
  "libmlq_quadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlq_quadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
