
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quadtree/memory_limited_quadtree.cc" "src/quadtree/CMakeFiles/mlq_quadtree.dir/memory_limited_quadtree.cc.o" "gcc" "src/quadtree/CMakeFiles/mlq_quadtree.dir/memory_limited_quadtree.cc.o.d"
  "/root/repo/src/quadtree/quadtree_node.cc" "src/quadtree/CMakeFiles/mlq_quadtree.dir/quadtree_node.cc.o" "gcc" "src/quadtree/CMakeFiles/mlq_quadtree.dir/quadtree_node.cc.o.d"
  "/root/repo/src/quadtree/tree_stats.cc" "src/quadtree/CMakeFiles/mlq_quadtree.dir/tree_stats.cc.o" "gcc" "src/quadtree/CMakeFiles/mlq_quadtree.dir/tree_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
