# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("quadtree")
subdirs("storage")
subdirs("synthetic")
subdirs("udf")
subdirs("model")
subdirs("text")
subdirs("spatial")
subdirs("workload")
subdirs("eval")
subdirs("optimizer")
subdirs("engine")
