file(REMOVE_RECURSE
  "libmlq_model.a"
)
