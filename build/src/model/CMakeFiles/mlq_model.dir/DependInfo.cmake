
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/mlq_model.cc" "src/model/CMakeFiles/mlq_model.dir/mlq_model.cc.o" "gcc" "src/model/CMakeFiles/mlq_model.dir/mlq_model.cc.o.d"
  "/root/repo/src/model/neural_model.cc" "src/model/CMakeFiles/mlq_model.dir/neural_model.cc.o" "gcc" "src/model/CMakeFiles/mlq_model.dir/neural_model.cc.o.d"
  "/root/repo/src/model/online_grid_model.cc" "src/model/CMakeFiles/mlq_model.dir/online_grid_model.cc.o" "gcc" "src/model/CMakeFiles/mlq_model.dir/online_grid_model.cc.o.d"
  "/root/repo/src/model/partitioned_model.cc" "src/model/CMakeFiles/mlq_model.dir/partitioned_model.cc.o" "gcc" "src/model/CMakeFiles/mlq_model.dir/partitioned_model.cc.o.d"
  "/root/repo/src/model/serialization.cc" "src/model/CMakeFiles/mlq_model.dir/serialization.cc.o" "gcc" "src/model/CMakeFiles/mlq_model.dir/serialization.cc.o.d"
  "/root/repo/src/model/static_histogram.cc" "src/model/CMakeFiles/mlq_model.dir/static_histogram.cc.o" "gcc" "src/model/CMakeFiles/mlq_model.dir/static_histogram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/quadtree/CMakeFiles/mlq_quadtree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
