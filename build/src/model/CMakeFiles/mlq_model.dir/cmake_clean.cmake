file(REMOVE_RECURSE
  "CMakeFiles/mlq_model.dir/mlq_model.cc.o"
  "CMakeFiles/mlq_model.dir/mlq_model.cc.o.d"
  "CMakeFiles/mlq_model.dir/neural_model.cc.o"
  "CMakeFiles/mlq_model.dir/neural_model.cc.o.d"
  "CMakeFiles/mlq_model.dir/online_grid_model.cc.o"
  "CMakeFiles/mlq_model.dir/online_grid_model.cc.o.d"
  "CMakeFiles/mlq_model.dir/partitioned_model.cc.o"
  "CMakeFiles/mlq_model.dir/partitioned_model.cc.o.d"
  "CMakeFiles/mlq_model.dir/serialization.cc.o"
  "CMakeFiles/mlq_model.dir/serialization.cc.o.d"
  "CMakeFiles/mlq_model.dir/static_histogram.cc.o"
  "CMakeFiles/mlq_model.dir/static_histogram.cc.o.d"
  "libmlq_model.a"
  "libmlq_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlq_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
