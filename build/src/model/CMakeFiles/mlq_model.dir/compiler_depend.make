# Empty compiler generated dependencies file for mlq_model.
# This may be replaced when dependencies are built.
