
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/dataset.cc" "src/spatial/CMakeFiles/mlq_spatial.dir/dataset.cc.o" "gcc" "src/spatial/CMakeFiles/mlq_spatial.dir/dataset.cc.o.d"
  "/root/repo/src/spatial/grid_index.cc" "src/spatial/CMakeFiles/mlq_spatial.dir/grid_index.cc.o" "gcc" "src/spatial/CMakeFiles/mlq_spatial.dir/grid_index.cc.o.d"
  "/root/repo/src/spatial/spatial_udfs.cc" "src/spatial/CMakeFiles/mlq_spatial.dir/spatial_udfs.cc.o" "gcc" "src/spatial/CMakeFiles/mlq_spatial.dir/spatial_udfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mlq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/udf/CMakeFiles/mlq_udf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
