file(REMOVE_RECURSE
  "CMakeFiles/mlq_spatial.dir/dataset.cc.o"
  "CMakeFiles/mlq_spatial.dir/dataset.cc.o.d"
  "CMakeFiles/mlq_spatial.dir/grid_index.cc.o"
  "CMakeFiles/mlq_spatial.dir/grid_index.cc.o.d"
  "CMakeFiles/mlq_spatial.dir/spatial_udfs.cc.o"
  "CMakeFiles/mlq_spatial.dir/spatial_udfs.cc.o.d"
  "libmlq_spatial.a"
  "libmlq_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlq_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
