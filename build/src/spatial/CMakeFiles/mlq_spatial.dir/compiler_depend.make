# Empty compiler generated dependencies file for mlq_spatial.
# This may be replaced when dependencies are built.
