file(REMOVE_RECURSE
  "libmlq_spatial.a"
)
