file(REMOVE_RECURSE
  "CMakeFiles/mlq_text.dir/inverted_index.cc.o"
  "CMakeFiles/mlq_text.dir/inverted_index.cc.o.d"
  "CMakeFiles/mlq_text.dir/text_search_engine.cc.o"
  "CMakeFiles/mlq_text.dir/text_search_engine.cc.o.d"
  "CMakeFiles/mlq_text.dir/text_udfs.cc.o"
  "CMakeFiles/mlq_text.dir/text_udfs.cc.o.d"
  "libmlq_text.a"
  "libmlq_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlq_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
