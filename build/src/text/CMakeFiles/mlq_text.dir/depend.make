# Empty dependencies file for mlq_text.
# This may be replaced when dependencies are built.
