file(REMOVE_RECURSE
  "libmlq_text.a"
)
