file(REMOVE_RECURSE
  "CMakeFiles/fig09_real_accuracy.dir/fig09_real_accuracy.cc.o"
  "CMakeFiles/fig09_real_accuracy.dir/fig09_real_accuracy.cc.o.d"
  "fig09_real_accuracy"
  "fig09_real_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_real_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
