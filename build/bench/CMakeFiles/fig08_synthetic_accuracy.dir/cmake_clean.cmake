file(REMOVE_RECURSE
  "CMakeFiles/fig08_synthetic_accuracy.dir/fig08_synthetic_accuracy.cc.o"
  "CMakeFiles/fig08_synthetic_accuracy.dir/fig08_synthetic_accuracy.cc.o.d"
  "fig08_synthetic_accuracy"
  "fig08_synthetic_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_synthetic_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
