file(REMOVE_RECURSE
  "CMakeFiles/fig12_learning_curve.dir/fig12_learning_curve.cc.o"
  "CMakeFiles/fig12_learning_curve.dir/fig12_learning_curve.cc.o.d"
  "fig12_learning_curve"
  "fig12_learning_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_learning_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
