# Empty dependencies file for fig12_learning_curve.
# This may be replaced when dependencies are built.
