file(REMOVE_RECURSE
  "CMakeFiles/fig10_modeling_costs.dir/fig10_modeling_costs.cc.o"
  "CMakeFiles/fig10_modeling_costs.dir/fig10_modeling_costs.cc.o.d"
  "fig10_modeling_costs"
  "fig10_modeling_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_modeling_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
