# Empty compiler generated dependencies file for fig10_modeling_costs.
# This may be replaced when dependencies are built.
