# Empty compiler generated dependencies file for ablation_transforms.
# This may be replaced when dependencies are built.
