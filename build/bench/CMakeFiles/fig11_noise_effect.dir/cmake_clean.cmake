file(REMOVE_RECURSE
  "CMakeFiles/fig11_noise_effect.dir/fig11_noise_effect.cc.o"
  "CMakeFiles/fig11_noise_effect.dir/fig11_noise_effect.cc.o.d"
  "fig11_noise_effect"
  "fig11_noise_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_noise_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
