# Empty compiler generated dependencies file for fig11_noise_effect.
# This may be replaced when dependencies are built.
