# Empty dependencies file for mini_ordbms.
# This may be replaced when dependencies are built.
