file(REMOVE_RECURSE
  "CMakeFiles/mini_ordbms.dir/mini_ordbms.cpp.o"
  "CMakeFiles/mini_ordbms.dir/mini_ordbms.cpp.o.d"
  "mini_ordbms"
  "mini_ordbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mini_ordbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
