# Empty compiler generated dependencies file for predicate_ordering.
# This may be replaced when dependencies are built.
