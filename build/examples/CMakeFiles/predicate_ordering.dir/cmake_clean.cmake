file(REMOVE_RECURSE
  "CMakeFiles/predicate_ordering.dir/predicate_ordering.cpp.o"
  "CMakeFiles/predicate_ordering.dir/predicate_ordering.cpp.o.d"
  "predicate_ordering"
  "predicate_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
