# Empty compiler generated dependencies file for io_noise_tour.
# This may be replaced when dependencies are built.
