file(REMOVE_RECURSE
  "CMakeFiles/io_noise_tour.dir/io_noise_tour.cpp.o"
  "CMakeFiles/io_noise_tour.dir/io_noise_tour.cpp.o.d"
  "io_noise_tour"
  "io_noise_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_noise_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
