// Ablation A5: what each factor of the paper's eviction key buys.
//
// Eq. 9's SSEG(b) = C(b) * (AVG(parent) - AVG(b))^2 combines an access-
// frequency proxy (the count) with a value-information term (the squared
// average difference). This bench runs the same workloads with
//   SSEG (paper)  |  count-only  |  random
// eviction, reporting NAE and the tree shape each policy converges to.

#include <cstdio>
#include <iostream>

#include "common/bench_report.h"
#include "common/table_printer.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"
#include "quadtree/tree_stats.h"

namespace mlq {
namespace {

const char* PolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kSseg:
      return "SSEG (paper)";
    case EvictionPolicy::kCountOnly:
      return "count-only";
    case EvictionPolicy::kRandom:
      return "random";
  }
  return "?";
}

void RunCase(const char* label, int num_peaks, QueryDistributionKind kind) {
  std::printf("\nEviction policies on SYNTH-%dp, %s queries (CPU, NAE)\n",
              num_peaks, std::string(QueryDistributionKindName(kind)).c_str());
  TablePrinter table(
      {"policy", "NAE", "mean leaf depth", "redundant nodes"});
  for (EvictionPolicy policy :
       {EvictionPolicy::kSseg, EvictionPolicy::kCountOnly,
        EvictionPolicy::kRandom}) {
    auto udf = MakePaperSyntheticUdf(num_peaks, 0.0, /*seed=*/3100);
    const auto test = MakePaperWorkload(udf->model_space(), kind,
                                        kPaperSyntheticQueries, /*seed=*/3200);
    MlqConfig config =
        MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu);
    config.eviction_policy = policy;
    MlqModel model(udf->model_space(), config);
    const EvalResult result =
        RunSelfTuningEvaluation(model, *udf, test, EvalOptions{});
    const TreeStats stats = ComputeTreeStats(model.tree());
    table.AddRow({PolicyName(policy), TablePrinter::Num(result.nae),
                  TablePrinter::Num(stats.mean_leaf_depth, 2),
                  TablePrinter::Num(100.0 * stats.redundant_node_fraction, 1) +
                      "%"});
  }
  table.Print(std::cout);
  (void)label;
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) {
  std::printf("== Ablation A5: compression eviction policies ==\n");
  mlq::RunCase("clustered", 50, mlq::QueryDistributionKind::kGaussianRandom);
  mlq::RunCase("uniform", 50, mlq::QueryDistributionKind::kUniform);
  return mlq::MaybeWriteBenchJson(argc, argv, "ablation_eviction");
}
