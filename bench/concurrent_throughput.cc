// Concurrent model-serving throughput: the single-mutex ConcurrentCostModel
// baseline vs the sharded serving layer (ShardedCostModel) on a mixed
// predict/observe workload at 1..16 threads.
//
//   concurrent_throughput [--ops=200000] [--shards=8] [--observe-pct=10]
//                         [--threads=1,2,4,8,16] [--budget=14400]
//
// Every thread runs a fixed-seed stream of operations against the shared
// model (default 90% Predict / 10% Observe — a planner-heavy serving mix);
// the table reports aggregate ops/sec per configuration plus the sharded
// model's feedback accounting. On a multi-core host the sharded column
// should scale with threads while the mutex column stays flat (or sags
// from contention); on one core the win reduces to cheaper queuing on the
// Observe path.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/bench_report.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "model/concurrent_model.h"
#include "model/mlq_model.h"
#include "model/sharded_model.h"

namespace mlq {
namespace {

constexpr int kDims = 3;
constexpr double kSpaceLo = 0.0;
constexpr double kSpaceHi = 1000.0;

// Deterministic synthetic cost surface (cheap: the bench measures the
// models, not a UDF).
double Surface(const Point& p) {
  return p[0] * 0.7 + p[1] * 0.2 + p[2] * 0.1;
}

MlqConfig BenchConfig(int64_t budget) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kLazy;
  config.max_depth = 6;
  config.beta = 1;
  config.memory_limit_bytes = budget;
  return config;
}

struct RunResult {
  double ops_per_sec = 0.0;
  int64_t observations_dropped = 0;
};

// Runs `threads` workers, each doing `ops_per_thread` fixed-seed mixed
// operations against `model`; returns aggregate throughput.
RunResult RunWorkload(CostModel& model, int threads, int64_t ops_per_thread,
                      double observe_fraction) {
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  WallTimer timer;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&model, observe_fraction, ops_per_thread, t]() {
      Rng rng(0xBE7C4 + static_cast<uint64_t>(t));
      volatile double sink = 0.0;  // Keep Predict from being optimized out.
      for (int64_t i = 0; i < ops_per_thread; ++i) {
        Point p{rng.Uniform(kSpaceLo, kSpaceHi), rng.Uniform(kSpaceLo, kSpaceHi),
                rng.Uniform(kSpaceLo, kSpaceHi)};
        if (rng.NextDouble() < observe_fraction) {
          model.Observe(p, Surface(p));
        } else {
          sink = sink + model.Predict(p);
        }
      }
      (void)sink;
    });
  }
  for (std::thread& worker : workers) worker.join();
  model.Flush();
  const double seconds = timer.ElapsedSeconds();

  RunResult result;
  const double total_ops =
      static_cast<double>(ops_per_thread) * static_cast<double>(threads);
  result.ops_per_sec = seconds > 0.0 ? total_ops / seconds : 0.0;
  return result;
}

// Batched variant of RunWorkload: each worker buffers a block of points
// and serves it with ONE PredictBatch call (observations still go one at a
// time, as execution feedback does). Under the mutex decorator this turns
// `batch` lock acquisitions into one; under the sharded model it becomes
// one bucketed descent pass per shard touched.
RunResult RunBatchWorkload(CostModel& model, int threads,
                           int64_t ops_per_thread, double observe_fraction,
                           int batch) {
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  WallTimer timer;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&model, observe_fraction, ops_per_thread, batch,
                          t]() {
      Rng rng(0xBA7C4 + static_cast<uint64_t>(t));
      std::vector<Point> points;
      points.reserve(static_cast<size_t>(batch));
      std::vector<Prediction> out(static_cast<size_t>(batch));
      volatile double sink = 0.0;
      for (int64_t i = 0; i < ops_per_thread;) {
        points.clear();
        while (static_cast<int>(points.size()) < batch &&
               i < ops_per_thread) {
          Point p{rng.Uniform(kSpaceLo, kSpaceHi),
                  rng.Uniform(kSpaceLo, kSpaceHi),
                  rng.Uniform(kSpaceLo, kSpaceHi)};
          if (rng.NextDouble() < observe_fraction) {
            model.Observe(p, Surface(p));
          } else {
            points.push_back(p);
          }
          ++i;
        }
        if (points.empty()) continue;
        model.PredictBatch(points,
                           std::span<Prediction>(out.data(), points.size()));
        sink = sink + out[0].value;
      }
      (void)sink;
    });
  }
  for (std::thread& worker : workers) worker.join();
  model.Flush();
  const double seconds = timer.ElapsedSeconds();

  RunResult result;
  const double total_ops =
      static_cast<double>(ops_per_thread) * static_cast<double>(threads);
  result.ops_per_sec = seconds > 0.0 ? total_ops / seconds : 0.0;
  return result;
}

// Pure-feedback workload: each worker delivers `ops_per_thread`
// observations, in blocks of `batch` through ObserveBatch (batch == 1 is
// the scalar Observe baseline). Under the mutex decorator a block costs
// one lock acquisition instead of `batch`; under the sharded model it is
// one queue-lock per shard touched plus batched drains; and the tree
// underneath pays its per-call timer/scratch setup once per block.
// Paired single-producer comparison of scalar Observe vs ObserveBatch on
// ONE model: the stream is delivered in alternating chunks (even chunks
// item-wise, odd chunks in `batch`-sized blocks), timing each mode
// separately. Because batched delivery is bit-identical to scalar delivery,
// the tree evolves the same way regardless of which mode a chunk uses —
// the two timers measure identical work, milliseconds apart, so scheduler
// noise on a shared box cancels out of the ratio almost entirely.
struct PairedObserveResult {
  double scalar_ops_per_sec = 0.0;
  double batch_ops_per_sec = 0.0;
  double speedup = 1.0;
};

PairedObserveResult RunObservePaired(CostModel& model, int64_t total_ops,
                                     int batch) {
  Rng rng(0xFEED5);
  std::vector<Observation> stream;
  stream.reserve(static_cast<size_t>(total_ops));
  for (int64_t i = 0; i < total_ops; ++i) {
    Point p{rng.Uniform(kSpaceLo, kSpaceHi), rng.Uniform(kSpaceLo, kSpaceHi),
            rng.Uniform(kSpaceLo, kSpaceHi)};
    stream.push_back({p, Surface(p)});
  }
  // Chunks must hold a whole number of blocks so the batched chunks never
  // deliver a runt block.
  const size_t chunk =
      static_cast<size_t>(std::max(batch, 1)) *
      std::max<size_t>(1, 8192 / static_cast<size_t>(std::max(batch, 1)));
  double scalar_seconds = 0.0;
  double batch_seconds = 0.0;
  int64_t scalar_ops = 0;
  int64_t batch_ops = 0;
  bool scalar_turn = true;
  const size_t n = stream.size();
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    WallTimer timer;
    if (scalar_turn) {
      for (size_t i = begin; i < end; ++i) {
        model.Observe(stream[i].point, stream[i].value);
      }
      scalar_seconds += timer.ElapsedSeconds();
      scalar_ops += static_cast<int64_t>(end - begin);
    } else {
      for (size_t i = begin; i < end;) {
        const size_t block = std::min(end, i + static_cast<size_t>(batch));
        model.ObserveBatch(
            std::span<const Observation>(stream.data() + i, block - i));
        i = block;
      }
      batch_seconds += timer.ElapsedSeconds();
      batch_ops += static_cast<int64_t>(end - begin);
    }
    scalar_turn = !scalar_turn;
  }
  model.Flush();

  PairedObserveResult result;
  if (scalar_seconds > 0.0) {
    result.scalar_ops_per_sec =
        static_cast<double>(scalar_ops) / scalar_seconds;
  }
  if (batch_seconds > 0.0) {
    result.batch_ops_per_sec = static_cast<double>(batch_ops) / batch_seconds;
  }
  if (result.scalar_ops_per_sec > 0.0 && result.batch_ops_per_sec > 0.0) {
    result.speedup = result.batch_ops_per_sec / result.scalar_ops_per_sec;
  }
  return result;
}

std::vector<int> ParseThreadList(const std::string& text) {
  std::vector<int> threads;
  std::istringstream stream(text);
  std::string field;
  while (std::getline(stream, field, ',')) {
    const int value = std::atoi(field.c_str());
    if (value > 0) threads.push_back(value);
  }
  if (threads.empty()) threads = {1, 2, 4, 8, 16};
  return threads;
}

int Main(int argc, char** argv) {
  const auto total_ops = static_cast<int64_t>(
      std::atoll(ArgValue(argc, argv, "ops", "200000").c_str()));
  const int num_shards =
      std::atoi(ArgValue(argc, argv, "shards", "8").c_str());
  const double observe_fraction =
      std::atoi(ArgValue(argc, argv, "observe-pct", "10").c_str()) / 100.0;
  const auto budget = static_cast<int64_t>(
      std::atoll(ArgValue(argc, argv, "budget", "14400").c_str()));
  const std::vector<int> thread_counts =
      ParseThreadList(ArgValue(argc, argv, "threads", "1,2,4,8,16"));

  std::printf(
      "Concurrent serving throughput: %lld total ops/config, %.0f%% observe, "
      "budget %lld B, %d shards, %u hardware threads\n\n",
      static_cast<long long>(total_ops), observe_fraction * 100.0,
      static_cast<long long>(budget), num_shards,
      std::thread::hardware_concurrency());

  const Box space = Box::Cube(kDims, kSpaceLo, kSpaceHi);
  TablePrinter table({"threads", "mutex Mops/s", "sharded Mops/s", "speedup",
                      "sharded applied", "sharded dropped"});

  for (const int threads : thread_counts) {
    const int64_t ops_per_thread = total_ops / threads;

    ConcurrentCostModel mutex_model(
        std::make_unique<MlqModel>(space, BenchConfig(budget)));
    const RunResult mutex_result =
        RunWorkload(mutex_model, threads, ops_per_thread, observe_fraction);

    ShardedModelOptions options;
    options.num_shards = num_shards;
    options.queue_capacity = 4096;
    options.drain_batch = 256;
    ShardedCostModel sharded_model(space, BenchConfig(budget), options);
    const RunResult sharded_result =
        RunWorkload(sharded_model, threads, ops_per_thread, observe_fraction);
    const ShardedModelStats stats = sharded_model.stats();

    table.AddRow({std::to_string(threads),
                  TablePrinter::Num(mutex_result.ops_per_sec / 1e6, 3),
                  TablePrinter::Num(sharded_result.ops_per_sec / 1e6, 3),
                  TablePrinter::Num(
                      sharded_result.ops_per_sec /
                          (mutex_result.ops_per_sec > 0.0
                               ? mutex_result.ops_per_sec
                               : 1.0),
                      2),
                  std::to_string(stats.observations_applied),
                  std::to_string(stats.observations_dropped)});
  }
  table.Print(std::cout);

  constexpr int kBatch = 64;
  std::printf("\nBatched serving (PredictBatch, block of %d points):\n",
              kBatch);
  TablePrinter batch_table(
      {"threads", "mutex batched Mops/s", "sharded batched Mops/s",
       "speedup"});
  for (const int threads : thread_counts) {
    const int64_t ops_per_thread = total_ops / threads;

    ConcurrentCostModel mutex_model(
        std::make_unique<MlqModel>(space, BenchConfig(budget)));
    const RunResult mutex_result = RunBatchWorkload(
        mutex_model, threads, ops_per_thread, observe_fraction, kBatch);

    ShardedModelOptions options;
    options.num_shards = num_shards;
    options.queue_capacity = 4096;
    options.drain_batch = 256;
    ShardedCostModel sharded_model(space, BenchConfig(budget), options);
    const RunResult sharded_result = RunBatchWorkload(
        sharded_model, threads, ops_per_thread, observe_fraction, kBatch);

    batch_table.AddRow(
        {std::to_string(threads),
         TablePrinter::Num(mutex_result.ops_per_sec / 1e6, 3),
         TablePrinter::Num(sharded_result.ops_per_sec / 1e6, 3),
         TablePrinter::Num(sharded_result.ops_per_sec /
                               (mutex_result.ops_per_sec > 0.0
                                    ? mutex_result.ops_per_sec
                                    : 1.0),
                           2)});
  }
  batch_table.Print(std::cout);

  // Feedback-side batching: scalar Observe vs ObserveBatch at growing
  // block sizes, single-threaded so the delta is pure per-point overhead
  // amortization (lock round-trips, dispatch, the tree's per-call setup),
  // not contention relief. The batch=1 row IS the scalar baseline.
  std::printf("\nBatched feedback (ObserveBatch, single producer):\n");
  TablePrinter observe_table({"batch", "mutex observe Mops/s",
                              "sharded observe Mops/s", "mutex speedup",
                              "sharded speedup"});
  // Each cell interleaves scalar and batched delivery chunks against ONE
  // model (see RunObservePaired), takes the median speedup over
  // kObservePairs independent runs, and reports the best observed batched
  // rate (interference on a shared box only ever slows a run down, so the
  // max estimates the machine's actual rate).
  constexpr int kObservePairs = 3;
  // Feedback delivery is fast enough that `total_ops` alone makes a
  // millisecond-scale run; stretch it so each measurement outlives a
  // scheduler quantum.
  const int64_t observe_ops = total_ops * 4;
  const auto make_mutex = [&]() {
    return std::make_unique<ConcurrentCostModel>(
        std::make_unique<MlqModel>(space, BenchConfig(budget)));
  };
  const auto make_sharded = [&]() {
    ShardedModelOptions options;
    options.num_shards = num_shards;
    options.queue_capacity = 4096;
    options.drain_batch = 256;
    return std::make_unique<ShardedCostModel>(space, BenchConfig(budget),
                                              options);
  };
  struct ObserveCell {
    double best_mops = 0.0;
    double speedup = 1.0;
  };
  const auto measure = [&](const auto& make_model, int batch) {
    ObserveCell cell;
    std::vector<double> ratios;
    for (int r = 0; r < kObservePairs; ++r) {
      auto model = make_model();
      const PairedObserveResult paired =
          RunObservePaired(*model, observe_ops, batch);
      cell.best_mops = std::max(cell.best_mops, batch == 1
                                                    ? paired.scalar_ops_per_sec
                                                    : paired.batch_ops_per_sec);
      ratios.push_back(batch == 1 ? 1.0 : paired.speedup);
    }
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    cell.speedup = ratios[ratios.size() / 2];
    return cell;
  };
  for (const int batch : {1, 8, 64, 512}) {
    const ObserveCell mutex_cell = measure(make_mutex, batch);
    const ObserveCell sharded_cell = measure(make_sharded, batch);
    observe_table.AddRow({std::to_string(batch),
                          TablePrinter::Num(mutex_cell.best_mops / 1e6, 3),
                          TablePrinter::Num(sharded_cell.best_mops / 1e6, 3),
                          TablePrinter::Num(mutex_cell.speedup, 2),
                          TablePrinter::Num(sharded_cell.speedup, 2)});
  }
  observe_table.Print(std::cout);

  // Drift-adaptive serving: the same mixed workload against the sharded
  // model while the summary-decay clock ticks from a maintenance thread
  // (AdvanceDecayEpoch takes each shard's model lock in turn — the same
  // interleaving a MaintenanceScheduler drift burst produces under load).
  // Read the decay column against the off column: the gap is what
  // drift-adaptive serving costs at full serving concurrency.
  std::printf("\nDrift-adaptive serving (decay clock ticking under load):\n");
  TablePrinter drift_table({"threads", "decay off Mops/s",
                            "decay on Mops/s", "ratio", "epochs"});
  for (const int threads : thread_counts) {
    const int64_t ops_per_thread = total_ops / threads;

    const auto run_with_decay = [&](double half_life) {
      ShardedModelOptions options;
      options.num_shards = num_shards;
      options.queue_capacity = 4096;
      options.drain_batch = 256;
      MlqConfig config = BenchConfig(budget);
      config.decay_half_life = half_life;
      ShardedCostModel model(space, config, options);
      std::atomic<bool> done{false};
      int64_t epochs = 0;
      // One steady clock tick per ~2ms of serving; a real scheduler ticks
      // with traffic, but a fixed cadence keeps the table comparable
      // across thread counts.
      std::thread clock_thread([&]() {
        while (!done.load(std::memory_order_relaxed)) {
          if (half_life > 0.0) {
            model.AdvanceDecayEpoch(1);
            ++epochs;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
      const RunResult result =
          RunWorkload(model, threads, ops_per_thread, observe_fraction);
      done.store(true, std::memory_order_relaxed);
      clock_thread.join();
      return std::pair<RunResult, int64_t>(result, epochs);
    };

    const auto [off_result, off_epochs] = run_with_decay(0.0);
    const auto [on_result, on_epochs] = run_with_decay(8.0);
    drift_table.AddRow(
        {std::to_string(threads),
         TablePrinter::Num(off_result.ops_per_sec / 1e6, 3),
         TablePrinter::Num(on_result.ops_per_sec / 1e6, 3),
         TablePrinter::Num(on_result.ops_per_sec /
                               (off_result.ops_per_sec > 0.0
                                    ? off_result.ops_per_sec
                                    : 1.0),
                           2),
         std::to_string(on_epochs)});
  }
  drift_table.Print(std::cout);

  std::printf(
      "\nspeedup = sharded / mutex at the same thread count. The sharded\n"
      "model stripes the space across %d independently locked trees and\n"
      "queues feedback, so predictions only contend within one stripe.\n",
      num_shards);
  return mlq::MaybeWriteBenchJson(argc, argv, "concurrent_throughput");
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) { return mlq::Main(argc, argv); }
