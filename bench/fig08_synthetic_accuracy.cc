// Reproduces Figure 8 of the paper: prediction accuracy (NAE) of MLQ-E,
// MLQ-L, SH-H, SH-W on synthetic UDFs as the number of peaks varies, for
// the three query distributions. CPU cost, beta = 1, 1.8 KB budget,
// n = 5000 queries (SH additionally trains on 5000 points of the same
// distribution).

// Pass --csv=PATH to additionally dump every EvalResult row as CSV.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/args.h"
#include "common/bench_report.h"
#include "common/table_printer.h"
#include "eval/csv_export.h"
#include "eval/experiment_setup.h"

namespace mlq {
namespace {

std::vector<EvalResult> g_all_results;

void RunDistribution(QueryDistributionKind kind) {
  std::printf("\nFig. 8 — synthetic prediction accuracy, %s queries\n",
              std::string(QueryDistributionKindName(kind)).c_str());
  TablePrinter table({"peaks", "MLQ-E", "MLQ-L", "SH-H", "SH-W"});
  for (int peaks : {10, 50, 100, 200}) {
    auto udf = MakePaperSyntheticUdf(peaks, /*noise_probability=*/0.0,
                                     /*seed=*/1000 + static_cast<uint64_t>(peaks));
    const Box space = udf->model_space();
    const TrainTestWorkload workloads = MakePaperTrainTestWorkloads(
        space, kind, kPaperSyntheticQueries, kPaperSyntheticQueries,
        /*seed=*/3300 + static_cast<uint64_t>(peaks));
    const auto results =
        CompareAllMethods(*udf, workloads.training, workloads.test,
                          CostKind::kCpu, kPaperMemoryBytes);
    table.AddRow({std::to_string(peaks), TablePrinter::Num(results[0].nae),
                  TablePrinter::Num(results[1].nae),
                  TablePrinter::Num(results[2].nae),
                  TablePrinter::Num(results[3].nae)});
    for (EvalResult r : results) {
      r.udf_name += "/" + std::string(QueryDistributionKindName(kind));
      g_all_results.push_back(std::move(r));
    }
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) {
  std::printf("== Experiment 1 (Fig. 8): synthetic UDFs, CPU cost, NAE ==\n");
  std::printf("memory budget: %lld bytes, d = 4, n = %d\n",
              static_cast<long long>(mlq::kPaperMemoryBytes),
              mlq::kPaperSyntheticQueries);
  mlq::RunDistribution(mlq::QueryDistributionKind::kUniform);
  mlq::RunDistribution(mlq::QueryDistributionKind::kGaussianRandom);
  mlq::RunDistribution(mlq::QueryDistributionKind::kGaussianSequential);

  const std::string csv_path = mlq::ArgValue(argc, argv, "csv");
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    mlq::WriteEvalResultsCsv(csv, mlq::g_all_results);
    std::printf("\nwrote %zu rows to %s\n", mlq::g_all_results.size(),
                csv_path.c_str());
  }
  return mlq::MaybeWriteBenchJson(argc, argv, "fig08_synthetic_accuracy");
}
