// Reproduces Figure 11 of the paper: prediction accuracy for the *disk IO*
// cost under noise, uniform queries, beta = 10.
// (a) the six real UDFs, where the buffer pool makes IO costs fluctuate at
//     identical coordinates (the paper's "database buffer caching" noise);
// (b) synthetic UDFs with explicit noise probability 0 .. 0.3, where an
//     execution returns a random cost instead of the true one.

#include <cstdio>
#include <iostream>

#include "common/bench_report.h"
#include "common/table_printer.h"
#include "eval/experiment_setup.h"

namespace mlq {
namespace {

void RealUdfPart(const RealUdfSuite& suite) {
  std::printf("\nFig. 11(a) — real UDFs, disk-IO cost, uniform queries, "
              "beta = %lld\n",
              static_cast<long long>(kPaperBetaIo));
  TablePrinter table({"UDF", "MLQ-E", "MLQ-L", "SH-H", "SH-W"});
  uint64_t seed = 600;
  for (const auto& udf : suite.udfs) {
    const Box space = udf->model_space();
    const TrainTestWorkload workloads = MakePaperTrainTestWorkloads(
        space, QueryDistributionKind::kUniform, kPaperRealQueries,
        kPaperRealQueries, seed);
    seed += 10;
    const auto results =
        CompareAllMethods(*udf, workloads.training, workloads.test,
                          CostKind::kIo, kPaperMemoryBytes);
    table.AddRow({std::string(udf->name()), TablePrinter::Num(results[0].nae),
                  TablePrinter::Num(results[1].nae),
                  TablePrinter::Num(results[2].nae),
                  TablePrinter::Num(results[3].nae)});
  }
  table.Print(std::cout);
  std::printf("paper reference: MLQ-E outperforms MLQ-L; MLQ-E within ~0.1 "
              "NAE of SH-H in 5 of 6 cases\n");
}

void SyntheticPart() {
  std::printf("\nFig. 11(b) — synthetic UDFs, disk-IO cost, uniform queries, "
              "noise probability sweep\n");
  TablePrinter table({"noise_p", "MLQ-E", "MLQ-L", "SH-H", "SH-W"});
  for (double noise : {0.0, 0.1, 0.2, 0.3}) {
    auto udf = MakePaperSyntheticUdf(/*num_peaks=*/50, noise,
                                     /*seed=*/700);
    const Box space = udf->model_space();
    const TrainTestWorkload workloads = MakePaperTrainTestWorkloads(
        space, QueryDistributionKind::kUniform, kPaperSyntheticQueries,
        kPaperSyntheticQueries, /*seed=*/701);
    const auto results =
        CompareAllMethods(*udf, workloads.training, workloads.test,
                          CostKind::kIo, kPaperMemoryBytes);
    table.AddRow({TablePrinter::Num(noise, 1),
                  TablePrinter::Num(results[0].nae),
                  TablePrinter::Num(results[1].nae),
                  TablePrinter::Num(results[2].nae),
                  TablePrinter::Num(results[3].nae)});
  }
  table.Print(std::cout);
  std::printf("paper reference: SH-H ahead of MLQ irrespective of the noise "
              "level (it averages over more data and trains a-priori)\n");
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) {
  std::printf("== Experiment 3 (Fig. 11): noise effect on disk-IO prediction "
              "accuracy ==\n");
  const mlq::RealUdfSuite suite =
      mlq::MakeRealUdfSuite(mlq::SubstrateScale::kFull);
  mlq::RealUdfPart(suite);
  mlq::SyntheticPart();
  return mlq::MaybeWriteBenchJson(argc, argv, "fig11_noise_effect");
}
