// Ablation A6: encoding domain knowledge into the model space.
//
// Two mechanisms for spending a fixed memory budget more wisely:
//   * the transformation function T (Section 3 of the paper): collapse
//     arguments the cost depends on only jointly (window width x height
//     -> area), shrinking the model space's dimensionality;
//   * influence-weighted interval allocation (SH-V — the improvement the
//     SH paper proposes but leaves unspecified): give more histogram
//     resolution to the variables that explain more cost variance.

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/bench_report.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"
#include "model/static_histogram.h"
#include "udf/transformed_udf.h"

namespace mlq {
namespace {

void TransformSection(const RealUdfSuite& suite) {
  std::printf("\nTransformation T on WIN: raw (x, y, w, h) vs transformed "
              "(x, y, w*h) at %lld bytes\n",
              static_cast<long long>(kPaperMemoryBytes));
  CostedUdf* win = suite.Find("WIN");

  std::vector<std::unique_ptr<VariableTransform>> vars;
  vars.push_back(Identity(0));
  vars.push_back(Identity(1));
  vars.push_back(Product(2, 3));
  auto transform = std::make_shared<const ArgumentTransform>(
      win->model_space(), std::move(vars));
  TransformedUdf transformed(win, transform);
  std::printf("  %s\n", transform->Describe().c_str());

  TablePrinter table({"model space", "MLQ-E NAE", "MLQ-L NAE"});
  for (int use_transform = 0; use_transform <= 1; ++use_transform) {
    CostedUdf& udf = use_transform ? static_cast<CostedUdf&>(transformed)
                                   : static_cast<CostedUdf&>(*win);
    const auto queries =
        MakePaperWorkload(udf.execution_space(),
                          QueryDistributionKind::kGaussianRandom,
                          kPaperRealQueries, /*seed=*/6100);
    std::string row[2];
    int m = 0;
    for (InsertionStrategy strategy :
         {InsertionStrategy::kEager, InsertionStrategy::kLazy}) {
      udf.ResetState();
      MlqModel model(udf.model_space(),
                     MakePaperMlqConfig(strategy, CostKind::kCpu));
      const EvalResult r =
          RunSelfTuningEvaluation(model, udf, queries, EvalOptions{});
      row[m++] = TablePrinter::Num(r.nae);
    }
    table.AddRow({use_transform ? "(x, y, area)  [3-d]" : "(x, y, w, h) [4-d]",
                  row[0], row[1]});
  }
  table.Print(std::cout);
}

void InfluenceSection() {
  std::printf("\nInfluence-weighted intervals (SH-V) vs uniform grids, on "
              "surfaces with a varying number of *relevant* dimensions\n");
  TablePrinter table({"relevant dims", "SH-V NAE", "SH-W NAE", "SH-H NAE",
                      "SH-V intervals"});
  for (int relevant = 1; relevant <= 4; ++relevant) {
    const Box space = Box::Cube(4, 0.0, 1000.0);
    // Cost = product of ridge functions over the first `relevant` dims.
    auto cost_at = [relevant](const Point& p) {
      double value = 1.0;
      for (int d = 0; d < relevant; ++d) value *= 1.0 + p[d] / 1000.0;
      return 1000.0 * value;
    };
    Rng rng(6200 + static_cast<uint64_t>(relevant));
    std::vector<Point> train;
    std::vector<double> train_costs;
    for (int i = 0; i < 5000; ++i) {
      Point p(4);
      for (int d = 0; d < 4; ++d) p[d] = rng.Uniform(0.0, 1000.0);
      train.push_back(p);
      train_costs.push_back(cost_at(p));
    }

    InfluenceWeightedHistogram v(space, kPaperMemoryBytes);
    v.Train(train, train_costs);
    EquiWidthHistogram w(space, kPaperMemoryBytes);
    w.Train(std::span<const Point>(train), std::span<const double>(train_costs));
    EquiHeightHistogram h(space, kPaperMemoryBytes);
    h.Train(std::span<const Point>(train), std::span<const double>(train_costs));

    double v_err = 0.0;
    double w_err = 0.0;
    double h_err = 0.0;
    double act = 0.0;
    for (int i = 0; i < 3000; ++i) {
      Point q(4);
      for (int d = 0; d < 4; ++d) q[d] = rng.Uniform(0.0, 1000.0);
      const double actual = cost_at(q);
      v_err += std::abs(v.Predict(q) - actual);
      w_err += std::abs(w.Predict(q) - actual);
      h_err += std::abs(h.Predict(q) - actual);
      act += actual;
    }
    std::string intervals = "(";
    for (int d = 0; d < 4; ++d) {
      intervals += (d ? "," : "") + std::to_string(v.intervals()[static_cast<size_t>(d)]);
    }
    intervals += ")";
    table.AddRow({std::to_string(relevant), TablePrinter::Num(v_err / act),
                  TablePrinter::Num(w_err / act), TablePrinter::Num(h_err / act),
                  intervals});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) {
  std::printf("== Ablation A6: model-space engineering (transformation T "
              "and influence-weighted intervals) ==\n");
  const mlq::RealUdfSuite suite =
      mlq::MakeRealUdfSuite(mlq::SubstrateScale::kFull);
  mlq::TransformSection(suite);
  mlq::InfluenceSection();
  return mlq::MaybeWriteBenchJson(argc, argv, "ablation_transforms");
}
