// Ablation A3: workload drift. The motivation for *self-tuning* cost models
// (Section 1 of the paper): a statically trained model goes stale when the
// UDF execution pattern changes; a feedback-driven model follows it.
//
// Two drift directions are measured, because they behave very differently:
//   "onto-peak"  — the workload moves onto the most expensive region. The
//                  static model badly under-predicts; MLQ adapts. This is
//                  the paper's motivating scenario.
//   "off-peak"   — the workload moves onto a near-zero-cost region. The NAE
//                  denominator collapses and MLQ's compression never evicts
//                  the stale high-SSE structure (Eq. 9 keeps it), so the
//                  quadtree adapts only its coarse averages. A documented
//                  limitation of the algorithm (see EXPERIMENTS.md).

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/bench_report.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"

namespace mlq {
namespace {

std::vector<Point> GaussianAround(const Box& space, const Point& center,
                                  int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Point q(space.dims());
    for (int d = 0; d < space.dims(); ++d) {
      q[d] = std::clamp(rng.Gaussian(center[d], 0.05 * space.Extent(d)),
                        space.lo()[d], space.hi()[d]);
    }
    points.push_back(q);
  }
  return points;
}

void RunScenario(const char* label, const Point& phase2_center,
                 SyntheticUdf& udf) {
  const Box space = udf.model_space();

  WorkloadConfig phase1;
  phase1.kind = QueryDistributionKind::kGaussianRandom;
  phase1.num_points = 2500;
  phase1.seed = 100;
  const auto training = GenerateQueryPoints(space, phase1);

  auto stream = GenerateQueryPoints(space, phase1);
  const auto drifted = GaussianAround(space, phase2_center, 2500, 321);
  stream.insert(stream.end(), drifted.begin(), drifted.end());

  EvalOptions options;
  options.learning_curve_window = 500;

  udf.ResetState();
  MlqModel mlq(space,
               MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu));
  const EvalResult mlq_result =
      RunSelfTuningEvaluation(mlq, udf, stream, options);

  // Recency-aware MLQ (our extension): Eq. 9's eviction key decays with
  // idle age, letting the tree re-allocate structure after a drift.
  udf.ResetState();
  MlqConfig recency_config =
      MakePaperMlqConfig(InsertionStrategy::kEager, CostKind::kCpu);
  recency_config.recency_half_life = 1000.0;
  MlqModel recency_mlq(space, recency_config);
  const EvalResult recency_result =
      RunSelfTuningEvaluation(recency_mlq, udf, stream, options);

  udf.ResetState();
  EquiHeightHistogram sh(space, kPaperMemoryBytes);
  const EvalResult sh_result =
      RunStaticEvaluation(sh, udf, training, stream, options);

  std::printf("\nDrift scenario: %s (drift at query 2500, window = 500)\n",
              label);
  TablePrinter table({"window end", "MLQ-E NAE", "MLQ-E+recency NAE",
                      "SH-H NAE (static)"});
  for (size_t w = 0; w < mlq_result.learning_curve.size(); ++w) {
    table.AddRow({std::to_string((w + 1) * 500),
                  TablePrinter::Num(mlq_result.learning_curve[w]),
                  TablePrinter::Num(recency_result.learning_curve[w]),
                  TablePrinter::Num(sh_result.learning_curve[w])});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) {
  std::printf("== Ablation A3: adaptation to workload drift ==\n");
  auto udf = mlq::MakePaperSyntheticUdf(/*num_peaks=*/30,
                                        /*noise_probability=*/0.0,
                                        /*seed=*/55);
  // Onto-peak: the center of the tallest peak.
  mlq::RunScenario("onto-peak (workload moves to the expensive region)",
                   udf->surface().peaks()[0].center, *udf);
  // Off-peak: the corner farthest from the tallest peak, clamped inside.
  const mlq::Box space = udf->model_space();
  mlq::Point cold(space.dims());
  const mlq::Point& hot = udf->surface().peaks()[0].center;
  for (int d = 0; d < space.dims(); ++d) {
    cold[d] = hot[d] < 500.0 ? 950.0 : 50.0;
  }
  mlq::RunScenario("off-peak (workload moves to a near-zero-cost region)",
                   cold, *udf);
  return mlq::MaybeWriteBenchJson(argc, argv, "ablation_drift");
}
