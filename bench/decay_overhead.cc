// decay_overhead — proves windowed-summary decay is free when disabled.
//
// The contract (docs/drift.md): with decay disabled — the default,
// MlqConfig::decay_half_life == 0 — the quadtree hot paths are the
// pre-decay code plus, per call, one double comparison (decay_enabled())
// and, per touched node, one branch on the resulting register-held bool.
// That must stay under 2% of the hot-loop budget. An undecayed baseline
// cannot exist inside this binary (the branches are compiled into
// libmlq_quadtree), so — like bench/obs_overhead — the bench bounds the
// disabled path from two directions:
//
//  1. It times the guard primitive itself (a double load + compare +
//     untaken branch) and converts that to a percentage of the measured
//     predict / insert cost given the number of guards each op executes.
//     This is the gating number: the guards are the *only* thing the
//     disabled path adds, so guard_ns x guards_per_op / op_ns is a sound
//     upper bound.
//  2. It times the same hot loops with decay off, with decay configured
//     but the clock idle, and with decay plus a ticking epoch clock, which
//     reports what enabling the feature actually costs (not gated;
//     enabled-path cost is a feature).
//
// Exit status is 0 only when the disabled-path bound passes, so the CI
// smoke test enforces the <2% promise.
//
//   decay_overhead [--ops=400000] [--json=FILE]

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/args.h"
#include "common/bench_report.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"

namespace mlq {
namespace {

// Keeps `value` live without a memory round-trip.
template <typename T>
inline void KeepAlive(T& value) {
  asm volatile("" : "+r"(value));
}

struct HotLoopCost {
  double predict_ns = 0.0;
  double insert_ns = 0.0;
};

// Times the two hot loops on a fresh model with a fixed-seed workload.
// `epoch_interval` > 0 ticks AdvanceDecayEpoch(1) every that many inserts
// during the insert loop — the steady-state clock rate a maintenance
// scheduler produces — so the "decay+clock" mode pays lazy
// re-materialization at a realistic frequency.
HotLoopCost MeasureHotLoops(int64_t ops, double half_life,
                            int64_t epoch_interval) {
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/50,
                                   /*noise_probability=*/0.0, /*seed=*/33);
  MlqConfig config =
      MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kCpu);
  config.decay_half_life = half_life;
  MlqModel model(udf->model_space(), config);

  constexpr size_t kPoints = 4096;
  const auto points = MakePaperWorkload(
      udf->model_space(), QueryDistributionKind::kUniform, kPoints, 77);
  std::vector<double> costs;
  costs.reserve(kPoints);
  for (const Point& p : points) costs.push_back(udf->Execute(p).cpu_work);

  for (size_t i = 0; i < kPoints; ++i) model.Observe(points[i], costs[i]);

  HotLoopCost result;
  {
    WallTimer timer;
    for (int64_t i = 0; i < ops; ++i) {
      const size_t j = static_cast<size_t>(i) & (kPoints - 1);
      model.Observe(points[j], costs[j]);
      if (epoch_interval > 0 && (i + 1) % epoch_interval == 0) {
        model.AdvanceDecayEpoch(1);
      }
    }
    result.insert_ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(ops);
  }
  {
    WallTimer timer;
    double sink = 0.0;
    for (int64_t i = 0; i < ops; ++i) {
      sink += model.Predict(points[static_cast<size_t>(i) & (kPoints - 1)]);
    }
    KeepAlive(sink);
    result.predict_ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(ops);
  }
  return result;
}

// Per-call cost of the disabled-path guard: one double load, a compare
// against zero, and a branch that is never taken — the same work
// decay_enabled() does per call (the per-node repeats test a register-held
// bool, which is cheaper, so charging every guard at this rate
// over-counts). Best-of-N chunks: preemption only ever inflates a chunk.
double MeasureGuardNs(int64_t calls) {
  constexpr int kChunks = 10;
  const int64_t per_chunk = calls / kChunks > 0 ? calls / kChunks : 1;
  volatile double half_life = 0.0;  // The disabled configuration.
  double best_ns = 0.0;
  int64_t hits = 0;
  for (int chunk = 0; chunk < kChunks; ++chunk) {
    WallTimer timer;
    for (int64_t i = 0; i < per_chunk; ++i) {
      if (half_life > 0.0) ++hits;
      KeepAlive(hits);
    }
    const double ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(per_chunk);
    if (chunk == 0 || ns < best_ns) best_ns = ns;
  }
  return best_ns;
}

int Main(int argc, char** argv) {
  const int64_t ops =
      std::atoll(ArgValue(argc, argv, "ops", "400000").c_str());
  if (ops <= 0) {
    std::fprintf(stderr, "--ops must be positive\n");
    return 1;
  }

  std::printf("== Summary-decay overhead (%lld ops per loop) ==\n\n",
              static_cast<long long>(ops));

  const double guard_ns = MeasureGuardNs(ops * 8);
  const HotLoopCost off = MeasureHotLoops(ops, /*half_life=*/0.0,
                                          /*epoch_interval=*/0);
  const HotLoopCost idle = MeasureHotLoops(ops, /*half_life=*/8.0,
                                           /*epoch_interval=*/0);
  const HotLoopCost clocked = MeasureHotLoops(ops, /*half_life=*/8.0,
                                              /*epoch_interval=*/256);

  const auto delta_pct = [](double base, double with) {
    return base > 0.0 ? (with - base) / base * 100.0 : 0.0;
  };

  TablePrinter modes({"mode", "predict ns/op", "insert ns/op",
                      "predict delta %", "insert delta %"});
  modes.AddRow({"decay off (default)", TablePrinter::Num(off.predict_ns, 1),
                TablePrinter::Num(off.insert_ns, 1), "0.0", "0.0"});
  modes.AddRow({"decay idle", TablePrinter::Num(idle.predict_ns, 1),
                TablePrinter::Num(idle.insert_ns, 1),
                TablePrinter::Num(delta_pct(off.predict_ns, idle.predict_ns),
                                  1),
                TablePrinter::Num(delta_pct(off.insert_ns, idle.insert_ns),
                                  1)});
  modes.AddRow({"decay+clock/256", TablePrinter::Num(clocked.predict_ns, 1),
                TablePrinter::Num(clocked.insert_ns, 1),
                TablePrinter::Num(
                    delta_pct(off.predict_ns, clocked.predict_ns), 1),
                TablePrinter::Num(delta_pct(off.insert_ns, clocked.insert_ns),
                                  1)});
  modes.Print(std::cout);

  // The disabled-path bound. Predict hoists decay_enabled() into a bool
  // and every per-node use branches on that register value, so at -O3 the
  // compiled function loads and compares config_.decay_half_life exactly
  // once per call and specializes the per-node beta test down to the
  // pre-decay integer compare (verified against the PredictInternal
  // disassembly: one load of the half-life field on the disabled path;
  // the only other reference is a divide inside the enabled arm). One
  // full-rate guard per predict call is therefore the honest charge.
  // Insert touches at most max_depth + 1 = 7 nodes and also hoists the
  // bool, but its guards sit next to stores, so charge all 7 per-node
  // branches plus the per-call evaluation at the full load+compare rate —
  // a deliberate over-count.
  constexpr double kPredictGuards = 1.0;
  constexpr double kInsertGuards = 8.0;
  constexpr double kBudgetPct = 2.0;
  const double predict_bound_pct =
      guard_ns * kPredictGuards / off.predict_ns * 100.0;
  const double insert_bound_pct =
      guard_ns * kInsertGuards / off.insert_ns * 100.0;
  const bool pass =
      predict_bound_pct < kBudgetPct && insert_bound_pct < kBudgetPct;

  std::printf("\n");
  TablePrinter bound({"hot loop", "guards/op", "guard ns/call", "bound %",
                      "budget %", "verdict"});
  bound.AddRow({"predict", TablePrinter::Num(kPredictGuards, 0),
                TablePrinter::Num(guard_ns, 2),
                TablePrinter::Num(predict_bound_pct, 3),
                TablePrinter::Num(kBudgetPct, 1),
                predict_bound_pct < kBudgetPct ? "PASS" : "FAIL"});
  bound.AddRow({"insert", TablePrinter::Num(kInsertGuards, 0),
                TablePrinter::Num(guard_ns, 2),
                TablePrinter::Num(insert_bound_pct, 3),
                TablePrinter::Num(kBudgetPct, 1),
                insert_bound_pct < kBudgetPct ? "PASS" : "FAIL"});
  bound.Print(std::cout);

  std::printf(
      "\n%s: disabled-path overhead bound %s %.1f%% of the hot-loop cost\n"
      "(bound = guard ns/call x guards per op / op ns; one double compare\n"
      "per call plus an untaken per-node branch is all the disabled path\n"
      "adds over the pre-decay build)\n",
      pass ? "PASS" : "FAIL", pass ? "<" : ">=", kBudgetPct);

  const int json_status = MaybeWriteBenchJson(argc, argv, "decay_overhead");
  return pass ? json_status : 1;
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) { return mlq::Main(argc, argv); }
