// Micro-benchmarks (google-benchmark) of the model operations on the hot
// path of query optimization: prediction, insertion, compression, and the
// SH histogram probe. APC/AUC in the paper are averages of exactly these.

#include <benchmark/benchmark.h>

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/args.h"
#include "common/rng.h"
#include "common/timer.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"
#include "model/static_histogram.h"
#include "quadtree/memory_limited_quadtree.h"
#include "quadtree/shared_node_arena.h"

namespace mlq {
namespace {

constexpr int kDims = 4;

std::vector<Point> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Point p(kDims);
    for (int d = 0; d < kDims; ++d) p[d] = rng.Uniform(0.0, 1000.0);
    points.push_back(p);
  }
  return points;
}

MlqConfig ConfigWithBudget(int64_t budget, InsertionStrategy strategy) {
  MlqConfig config = MakePaperMlqConfig(strategy, CostKind::kCpu, budget);
  return config;
}

// Builds a tree filled to its budget.
std::unique_ptr<MemoryLimitedQuadtree> FilledTree(int64_t budget,
                                                  InsertionStrategy strategy) {
  auto tree = std::make_unique<MemoryLimitedQuadtree>(
      Box::Cube(kDims, 0.0, 1000.0), ConfigWithBudget(budget, strategy));
  Rng rng(1);
  const auto points = RandomPoints(4000, 2);
  for (const Point& p : points) tree->Insert(p, rng.Uniform(0.0, 10000.0));
  return tree;
}

void BM_QuadtreePredict(benchmark::State& state) {
  auto tree = FilledTree(state.range(0), InsertionStrategy::kEager);
  const auto queries = RandomPoints(1024, 3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Predict(queries[i++ & 1023]).value);
  }
  state.SetLabel(std::to_string(tree->num_nodes()) + " nodes");
}
BENCHMARK(BM_QuadtreePredict)->Arg(1800)->Arg(16384)->Arg(262144);

void BM_QuadtreePredictBatch(benchmark::State& state) {
  // The batched entry point: one call costs 256 descents with the
  // per-call observability and dispatch overhead paid once. Reported
  // per-point via SetItemsProcessed for comparison with BM_QuadtreePredict.
  constexpr size_t kBatch = 256;
  auto tree = FilledTree(state.range(0), InsertionStrategy::kEager);
  const auto queries = RandomPoints(1024, 3);
  std::vector<Prediction> out(kBatch);
  size_t offset = 0;
  for (auto _ : state) {
    const std::span<const Point> batch(&queries[offset], kBatch);
    tree->PredictBatch(batch, out);
    benchmark::DoNotOptimize(out.data());
    offset = (offset + kBatch) & 1023;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
  state.SetLabel(std::to_string(tree->num_nodes()) + " nodes");
}
BENCHMARK(BM_QuadtreePredictBatch)->Arg(1800)->Arg(16384)->Arg(262144);

void BM_QuadtreePredictStatsBatch(benchmark::State& state) {
  // The variance-aware batched entry point: same descents as
  // BM_QuadtreePredictBatch plus one Prediction -> CostEstimate conversion
  // per point. Read next to that row: the per-point gap is the whole cost
  // of the stats currency on the opt-in path (the scalar path's bound
  // lives in bench/variance_overhead.cc).
  constexpr size_t kBatch = 256;
  MlqModel model(Box::Cube(kDims, 0.0, 1000.0),
                 ConfigWithBudget(state.range(0), InsertionStrategy::kEager));
  Rng rng(1);
  for (const Point& p : RandomPoints(4000, 2)) {
    model.Observe(p, rng.Uniform(0.0, 10000.0));
  }
  const auto queries = RandomPoints(1024, 3);
  std::vector<CostEstimate> out(kBatch);
  size_t offset = 0;
  for (auto _ : state) {
    const std::span<const Point> batch(&queries[offset], kBatch);
    model.PredictStatsBatch(batch, out);
    benchmark::DoNotOptimize(out.data());
    offset = (offset + kBatch) & 1023;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
  state.SetLabel(std::to_string(model.tree().num_nodes()) + " nodes");
}
BENCHMARK(BM_QuadtreePredictStatsBatch)->Arg(1800)->Arg(16384)->Arg(262144);

void BM_QuadtreeInsertEager(benchmark::State& state) {
  auto tree = FilledTree(state.range(0), InsertionStrategy::kEager);
  const auto points = RandomPoints(1024, 4);
  Rng rng(5);
  size_t i = 0;
  for (auto _ : state) {
    tree->Insert(points[i++ & 1023], rng.Uniform(0.0, 10000.0));
  }
}
BENCHMARK(BM_QuadtreeInsertEager)->Arg(1800)->Arg(16384)->Arg(262144);

void BM_QuadtreeInsertLazy(benchmark::State& state) {
  auto tree = FilledTree(state.range(0), InsertionStrategy::kLazy);
  const auto points = RandomPoints(1024, 6);
  Rng rng(7);
  size_t i = 0;
  for (auto _ : state) {
    tree->Insert(points[i++ & 1023], rng.Uniform(0.0, 10000.0));
  }
}
BENCHMARK(BM_QuadtreeInsertLazy)->Arg(1800)->Arg(16384)->Arg(262144);

void BM_QuadtreeInsertDecay(benchmark::State& state) {
  // The insert hot path with windowed summaries live: decay enabled and the
  // epoch clock ticking every 256 inserts, so the loop pays the lazy
  // materialization (re-scaling a node's stale summary on first touch after
  // an epoch) at the steady-state rate the maintenance scheduler produces.
  // Compare against BM_QuadtreeInsertLazy at the same budget: the gap is
  // the full decay feature cost, not just the disabled-path guard (that
  // bound lives in bench/decay_overhead.cc).
  MlqConfig config = ConfigWithBudget(state.range(0), InsertionStrategy::kLazy);
  config.decay_half_life = 8.0;
  auto tree = std::make_unique<MemoryLimitedQuadtree>(
      Box::Cube(kDims, 0.0, 1000.0), config);
  Rng warm_rng(1);
  for (const Point& p : RandomPoints(4000, 2)) {
    tree->Insert(p, warm_rng.Uniform(0.0, 10000.0));
  }
  const auto points = RandomPoints(1024, 6);
  Rng rng(7);
  size_t i = 0;
  for (auto _ : state) {
    tree->Insert(points[i++ & 1023], rng.Uniform(0.0, 10000.0));
    if ((i & 255) == 0) tree->AdvanceDecayEpoch(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuadtreeInsertDecay)->Arg(1800)->Arg(16384)->Arg(262144);

void BM_QuadtreeInsertBatch(benchmark::State& state) {
  // The batched feedback entry point at block sizes 1..512 on a
  // budget-filled lazy tree (constant compression churn, the serving
  // steady state). Reported per-point via SetItemsProcessed so the rows
  // are comparable with each other and with BM_QuadtreeInsertLazy: the
  // spread across rows is the per-call overhead InsertBatch amortizes.
  const auto batch = static_cast<size_t>(state.range(0));
  auto tree = FilledTree(16384, InsertionStrategy::kLazy);
  const auto points = RandomPoints(1024, 6);
  Rng rng(7);
  std::vector<Observation> feed;
  feed.reserve(points.size() + 512);
  for (const Point& p : points) {
    feed.push_back({p, rng.Uniform(0.0, 10000.0)});
  }
  // Pad with the head so a block starting anywhere in [0, 1024) fits.
  for (size_t k = 0; k < 512; ++k) feed.push_back(feed[k]);
  size_t offset = 0;
  for (auto _ : state) {
    tree->InsertBatch(std::span<const Observation>(&feed[offset], batch));
    offset = (offset + batch) & 1023;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_QuadtreeInsertBatch)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_QuadtreeCompress(benchmark::State& state) {
  // Measures one full compression pass (PQ build + gamma eviction) on a
  // freshly refilled tree each iteration. The rebuild dominates wall time,
  // so the iteration count is pinned rather than letting the harness loop
  // until the (tiny) measured time accumulates.
  const auto points = RandomPoints(4000, 8);
  Rng rng(9);
  for (auto _ : state) {
    state.PauseTiming();
    MemoryLimitedQuadtree tree(
        Box::Cube(kDims, 0.0, 1000.0),
        ConfigWithBudget(state.range(0), InsertionStrategy::kEager));
    for (const Point& p : points) tree.Insert(p, rng.Uniform(0.0, 10000.0));
    state.ResumeTiming();
    tree.Compress();
  }
}
BENCHMARK(BM_QuadtreeCompress)
    ->Arg(1800)
    ->Arg(16384)
    ->Iterations(100)
    ->Unit(benchmark::kMicrosecond);

// A shared arena left fragmented the way serving traffic leaves it: eight
// lazy tenants allocated round-robin (blocks interleaved), then every
// other tenant dropped. Returns the arena plus the survivors that keep
// their blocks pinned.
struct FragmentedArena {
  std::shared_ptr<SharedNodeArena> arena;
  std::vector<std::unique_ptr<MemoryLimitedQuadtree>> trees;
};

FragmentedArena MakeFragmentedArena() {
  FragmentedArena f;
  f.arena = std::make_shared<SharedNodeArena>(1 << kDims);
  MlqConfig config = ConfigWithBudget(32 * 1024, InsertionStrategy::kLazy);
  const Box space = Box::Cube(kDims, 0.0, 1000.0);
  for (int t = 0; t < 8; ++t) {
    f.trees.push_back(
        std::make_unique<MemoryLimitedQuadtree>(space, config, f.arena));
  }
  Rng rng(17);
  for (int t = 0; t < 8; ++t) {
    const auto points = RandomPoints(2000, 18 + static_cast<uint64_t>(t));
    for (size_t i = 0; i < points.size(); ++i) {
      f.trees[static_cast<size_t>(t)]->Insert(points[i],
                                              rng.Uniform(0.0, 10000.0));
    }
  }
  for (size_t t = 0; t < f.trees.size(); t += 2) f.trees[t].reset();
  return f;
}

void BM_ArenaCompactStep(benchmark::State& state) {
  // One bounded incremental step: the (manual) time column IS the
  // serving-visible pause the scheduler pays per step. Arg is the slot
  // budget; items/sec counts relocated slots so the regression gate tracks
  // relocation throughput, not just wall time. Manual timing keeps the
  // fragmented-arena rebuild (re-run whenever a step converges) out of the
  // measurement.
  FragmentedArena f = MakeFragmentedArena();
  int64_t slots_moved = 0;
  for (auto _ : state) {
    WallTimer timer;
    const SharedNodeArena::CompactStepStats step =
        f.arena->CompactStep(state.range(0));
    state.SetIterationTime(timer.ElapsedMicros() * 1e-6);
    slots_moved += step.blocks_moved * (1 << kDims);
    if (step.done) f = MakeFragmentedArena();
  }
  state.SetItemsProcessed(slots_moved);
}
BENCHMARK(BM_ArenaCompactStep)
    ->Arg(512)
    ->Arg(4096)
    ->Iterations(60)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ArenaCompactFull(benchmark::State& state) {
  // The stop-the-world baseline on the identical fragmented layout. Read
  // next to BM_ArenaCompactStep: the time-per-iteration ratio between the
  // two rows is the pause reduction incremental compaction buys.
  int64_t slots_moved = 0;
  for (auto _ : state) {
    FragmentedArena f = MakeFragmentedArena();
    WallTimer timer;
    const SharedNodeArena::CompactionStats stats = f.arena->Compact();
    state.SetIterationTime(timer.ElapsedMicros() * 1e-6);
    slots_moved += stats.blocks_moved * (1 << kDims);
  }
  state.SetItemsProcessed(slots_moved);
}
BENCHMARK(BM_ArenaCompactFull)
    ->Iterations(40)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ArenaFragmentationRecovery(benchmark::State& state) {
  // End-to-end incremental epoch: bounded steps to convergence. Items/sec
  // counts reclaimed bytes — the rate at which incremental maintenance
  // returns fragmented slab memory to the OS.
  int64_t bytes_reclaimed = 0;
  for (auto _ : state) {
    FragmentedArena f = MakeFragmentedArena();
    const int64_t before = f.arena->PhysicalCapacityBytes();
    WallTimer timer;
    SharedNodeArena::CompactStepStats step;
    do {
      step = f.arena->CompactStep(4096);
    } while (!step.done);
    state.SetIterationTime(timer.ElapsedMicros() * 1e-6);
    bytes_reclaimed += before - f.arena->PhysicalCapacityBytes();
  }
  state.SetItemsProcessed(bytes_reclaimed);
}
BENCHMARK(BM_ArenaFragmentationRecovery)
    ->Iterations(40)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ShHistogramPredict(benchmark::State& state) {
  const Box space = Box::Cube(kDims, 0.0, 1000.0);
  EquiHeightHistogram histogram(space, state.range(0));
  const auto training = RandomPoints(5000, 10);
  std::vector<double> costs(training.size());
  Rng rng(11);
  for (double& c : costs) c = rng.Uniform(0.0, 10000.0);
  histogram.Train(training, costs);
  const auto queries = RandomPoints(1024, 12);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.Predict(queries[i++ & 1023]));
  }
  state.SetLabel(std::to_string(histogram.num_buckets()) + " buckets");
}
BENCHMARK(BM_ShHistogramPredict)->Arg(1800)->Arg(262144);

void BM_ShHistogramTrain(benchmark::State& state) {
  const Box space = Box::Cube(kDims, 0.0, 1000.0);
  const auto training = RandomPoints(static_cast<int>(state.range(0)), 13);
  std::vector<double> costs(training.size());
  Rng rng(14);
  for (double& c : costs) c = rng.Uniform(0.0, 10000.0);
  for (auto _ : state) {
    EquiHeightHistogram histogram(space, 1800);
    histogram.Train(training, costs);
    benchmark::DoNotOptimize(histogram.num_buckets());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ShHistogramTrain)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_EndToEndSelfTuningStep(benchmark::State& state) {
  // One full optimizer-loop step: predict + synthetic-UDF execute + observe.
  auto udf = MakePaperSyntheticUdf(50, 0.0, 15);
  MlqModel model(udf->model_space(),
                 MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kCpu));
  const auto queries = RandomPoints(1024, 16);
  size_t i = 0;
  for (auto _ : state) {
    const Point& q = queries[i++ & 1023];
    benchmark::DoNotOptimize(model.Predict(q));
    const double actual = udf->Execute(q).cpu_work;
    model.Observe(q, actual);
  }
}
BENCHMARK(BM_EndToEndSelfTuningStep);

}  // namespace
}  // namespace mlq

// Custom main instead of BENCHMARK_MAIN(): translates the repo-wide
// `--json <path>` convention into google-benchmark's JSON reporter flags,
// so every bench binary exposes the same machine-readable switch.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  const std::string json_path = mlq::ArgValue(argc, argv, "json");
  if (!json_path.empty()) {
    // Drop the --json tokens and inject the benchmark_out equivalents.
    std::vector<char*> kept;
    for (int i = 0; i < argc; ++i) {
      const std::string_view arg = args[static_cast<size_t>(i)];
      if (arg.rfind("--json=", 0) == 0) continue;
      if (arg == "--json") {
        ++i;  // Skip the value token as well.
        continue;
      }
      kept.push_back(args[static_cast<size_t>(i)]);
    }
    out_flag = "--benchmark_out=" + json_path;
    kept.push_back(out_flag.data());
    kept.push_back(format_flag.data());
    args = std::move(kept);
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
