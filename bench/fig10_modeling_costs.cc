// Reproduces Figure 10 of the paper: the modeling-cost breakdown of the
// self-tuning methods — prediction cost (PC), insertion cost (IC),
// compression cost (CC) and model update cost (MUC = IC + CC) — normalized
// against the total UDF execution cost, using uniform queries.
// (a) the WIN real UDF; (b) a synthetic UDF. SH is static, so the
// experiment applies to the MLQ variants only, as in the paper.

#include <cstdio>
#include <iostream>

#include "common/bench_report.h"
#include "common/table_printer.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"

namespace mlq {
namespace {

void Report(const char* label, CostedUdf& udf, int num_queries) {
  std::printf("\nFig. 10 — modeling costs over %s (uniform queries, %% of "
              "total UDF execution cost)\n",
              label);
  TablePrinter table({"method", "PC%", "IC%", "CC%", "MUC%", "APC(us)",
                      "AUC(us)", "compressions"});
  const auto test = MakePaperWorkload(udf.model_space(),
                                      QueryDistributionKind::kUniform,
                                      num_queries, /*seed=*/500);
  for (InsertionStrategy strategy :
       {InsertionStrategy::kEager, InsertionStrategy::kLazy}) {
    udf.ResetState();
    MlqModel model(udf.model_space(),
                   MakePaperMlqConfig(strategy, CostKind::kCpu));
    const EvalResult r =
        RunSelfTuningEvaluation(model, udf, test, EvalOptions{});
    table.AddRow({std::string(model.name()),
                  TablePrinter::Num(100.0 * r.PcOverUdf(), 4),
                  TablePrinter::Num(100.0 * r.IcOverUdf(), 4),
                  TablePrinter::Num(100.0 * r.CcOverUdf(), 4),
                  TablePrinter::Num(100.0 * r.MucOverUdf(), 4),
                  TablePrinter::Num(r.apc_micros, 3),
                  TablePrinter::Num(r.auc_micros, 3),
                  std::to_string(r.compressions)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) {
  std::printf("== Experiment 2 (Fig. 10): modeling costs ==\n");
  std::printf("paper reference: PC ~ 0.02%%, MUC between 0.04%% and 1.2%%; "
              "MLQ-L updates cheaper than MLQ-E\n");

  const mlq::RealUdfSuite suite =
      mlq::MakeRealUdfSuite(mlq::SubstrateScale::kFull);
  mlq::CostedUdf* win = suite.Find("WIN");
  mlq::Report("WIN (real spatial UDF)", *win, mlq::kPaperRealQueries);

  auto synthetic = mlq::MakePaperSyntheticUdf(/*num_peaks=*/50,
                                              /*noise_probability=*/0.0,
                                              /*seed=*/501);
  mlq::Report("SYNTH-50p (synthetic UDF)", *synthetic,
              mlq::kPaperSyntheticQueries);
  return mlq::MaybeWriteBenchJson(argc, argv, "fig10_modeling_costs");
}
