// Ablation A4: the full baseline field at equal memory.
//
// Beyond the paper's SH comparison this pits MLQ against:
//   * NN          — the online curve-fitting (neural network) approach the
//                   paper cites [Boulos et al.] but declines to implement;
//   * GLOBAL-AVG  — the structureless sanity floor;
// on both a smooth and a spiky synthetic surface, plus one real UDF. All
// self-tuning models run the same feedback loop at the same 1.8 KB budget;
// SH-H is trained a-priori as usual.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "common/bench_report.h"
#include "common/table_printer.h"
#include "eval/experiment_setup.h"
#include "model/global_average_model.h"
#include "model/mlq_model.h"
#include "model/neural_model.h"
#include "model/online_grid_model.h"

namespace mlq {
namespace {

void RunCase(const char* label, CostedUdf& udf, QueryDistributionKind kind,
             int n, uint64_t seed) {
  const Box space = udf.model_space();
  const TrainTestWorkload workloads =
      MakePaperTrainTestWorkloads(space, kind, n, n, seed);

  std::vector<EvalResult> rows;
  auto run_self_tuning = [&](CostModel& model) {
    udf.ResetState();
    rows.push_back(
        RunSelfTuningEvaluation(model, udf, workloads.test, EvalOptions{}));
  };

  MlqModel mlq_e(space, MakePaperMlqConfig(InsertionStrategy::kEager,
                                           CostKind::kCpu));
  run_self_tuning(mlq_e);
  MlqModel mlq_l(space, MakePaperMlqConfig(InsertionStrategy::kLazy,
                                           CostKind::kCpu));
  run_self_tuning(mlq_l);
  NeuralCostModel nn(space, kPaperMemoryBytes);
  run_self_tuning(nn);
  OnlineGridModel grid(space, kPaperMemoryBytes);
  run_self_tuning(grid);
  GlobalAverageModel global;
  run_self_tuning(global);
  {
    udf.ResetState();
    EquiHeightHistogram sh(space, kPaperMemoryBytes);
    rows.push_back(RunStaticEvaluation(sh, udf, workloads.training,
                                       workloads.test, EvalOptions{}));
  }

  std::printf("\nBaselines on %s (%s queries, CPU cost, NAE; all models "
              "%lld bytes)\n",
              label, std::string(QueryDistributionKindName(kind)).c_str(),
              static_cast<long long>(kPaperMemoryBytes));
  TablePrinter table({"model", "NAE", "APC(us)", "AUC(us)", "self-tuning"});
  for (const EvalResult& r : rows) {
    table.AddRow({r.model_name, TablePrinter::Num(r.nae),
                  TablePrinter::Num(r.apc_micros, 3),
                  TablePrinter::Num(r.auc_micros, 3),
                  r.model_name == "SH-H" ? "no (a-priori)" : "yes"});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) {
  std::printf("== Ablation A4: MLQ vs curve fitting vs histograms ==\n");

  // Smooth surface: few peaks with *wide* decay regions (half the space
  // diagonal) — gentle slopes everywhere, curve fitting's best case.
  mlq::PeakSurfaceConfig smooth_config;
  smooth_config.num_peaks = 5;
  smooth_config.decay_radius_frac = 0.5;
  smooth_config.seed = 11;
  mlq::SyntheticUdf smooth(smooth_config, /*noise_probability=*/0.0);
  mlq::RunCase("SYNTH-5p-wide (smooth)", smooth,
               mlq::QueryDistributionKind::kGaussianRandom, 5000, 21);

  // Spiky surface: many narrow peaks — structure's best case.
  auto spiky = mlq::MakePaperSyntheticUdf(/*num_peaks=*/200, 0.0, /*seed=*/12);
  mlq::RunCase("SYNTH-200p (spiky)", *spiky,
               mlq::QueryDistributionKind::kGaussianRandom, 5000, 22);

  // One real UDF.
  const mlq::RealUdfSuite suite =
      mlq::MakeRealUdfSuite(mlq::SubstrateScale::kFull);
  mlq::RunCase("WIN (real spatial UDF)", *suite.Find("WIN"),
               mlq::QueryDistributionKind::kGaussianRandom,
               mlq::kPaperRealQueries, 23);
  return mlq::MaybeWriteBenchJson(argc, argv, "ablation_baselines");
}
