// Reproduces Figure 9 of the paper: prediction accuracy (NAE) of MLQ-E,
// MLQ-L, SH-H, SH-W for the CPU cost of the six "real" UDFs (three text
// searches, three spatial searches) under the two skewed query
// distributions — the paper's 12 test cases. n = 2500 queries, 1.8 KB.

#include <cstdio>
#include <iostream>

#include "common/bench_report.h"
#include "common/table_printer.h"
#include "eval/experiment_setup.h"

namespace mlq {
namespace {

void RunDistribution(const RealUdfSuite& suite, QueryDistributionKind kind,
                     int wins_counter[2]) {
  std::printf("\nFig. 9 — real UDFs, CPU cost, %s queries\n",
              std::string(QueryDistributionKindName(kind)).c_str());
  TablePrinter table({"UDF", "MLQ-E", "MLQ-L", "SH-H", "SH-W", "MLQ-E vs SH-H"});
  uint64_t seed = 40;
  for (const auto& udf : suite.udfs) {
    const Box space = udf->model_space();
    const TrainTestWorkload workloads = MakePaperTrainTestWorkloads(
        space, kind, kPaperRealQueries, kPaperRealQueries, seed);
    seed += 10;
    const auto results =
        CompareAllMethods(*udf, workloads.training, workloads.test,
                          CostKind::kCpu, kPaperMemoryBytes);
    // The paper's Fig. 9 criterion: MLQ lower, or within 0.02 absolute NAE.
    const bool mlq_ok = results[0].nae <= results[2].nae + 0.02 ||
                        results[1].nae <= results[2].nae + 0.02;
    ++wins_counter[mlq_ok ? 0 : 1];
    table.AddRow({std::string(udf->name()), TablePrinter::Num(results[0].nae),
                  TablePrinter::Num(results[1].nae),
                  TablePrinter::Num(results[2].nae),
                  TablePrinter::Num(results[3].nae),
                  mlq_ok ? "MLQ ok (within 0.02 or better)" : "SH-H better"});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) {
  std::printf("== Experiment 1 (Fig. 9): real UDFs, CPU cost, NAE ==\n");
  std::printf(
      "building substrates (synthetic Reuters-scale corpus + urban-area "
      "maps)...\n");
  const mlq::RealUdfSuite suite =
      mlq::MakeRealUdfSuite(mlq::SubstrateScale::kFull);
  std::printf("corpus: %d docs, vocab %d; spatial: %d rects\n",
              suite.text_engine->index().num_docs(),
              suite.text_engine->index().vocab_size(),
              suite.spatial_engine->dataset().size());

  int wins_counter[2] = {0, 0};
  mlq::RunDistribution(suite, mlq::QueryDistributionKind::kGaussianRandom,
                  wins_counter);
  mlq::RunDistribution(suite, mlq::QueryDistributionKind::kGaussianSequential,
                  wins_counter);
  std::printf(
      "\nsummary: MLQ better-or-within-0.02 in %d of %d cases "
      "(paper: 10 of 12)\n",
      wins_counter[0], wins_counter[0] + wins_counter[1]);
  return mlq::MaybeWriteBenchJson(argc, argv, "fig09_real_accuracy");
}
