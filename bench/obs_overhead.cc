// obs_overhead — proves the observability layer is affordable.
//
// The contract (docs/observability.md): with observability disabled —
// the default — every instrumentation site costs one relaxed atomic load
// plus a predicted branch, and that must stay under 2% of the hot-loop
// budget. An uninstrumented baseline cannot exist inside this binary (the
// hooks are compiled into libmlq_quadtree), so the bench bounds the
// disabled path from two directions:
//
//  1. It times the guard primitive itself (obs::Enabled() in a tight
//     loop) and converts that to a percentage of the measured predict /
//     insert cost given the number of guards each op executes. This is
//     the gating number: guards are the *only* thing the disabled path
//     adds, so guard_ns x guards_per_op / op_ns is a sound upper bound.
//  2. It times the same hot loops with observability off, with metrics
//     on, and with metrics + tracing on, which reports what enabling the
//     layer actually costs (not gated; enabled-path cost is a feature).
//
// Exit status is 0 only when the disabled-path bound passes, so the CI
// smoke test enforces the <2% promise.
//
//   obs_overhead [--ops=400000] [--json=FILE]

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/args.h"
#include "common/bench_report.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"
#include "obs/obs.h"

namespace mlq {
namespace {

// Keeps `value` live without a memory round-trip (benchmark::DoNotOptimize
// without the google-benchmark dependency).
template <typename T>
inline void KeepAlive(T& value) {
  asm volatile("" : "+r"(value));
}

struct HotLoopCost {
  double predict_ns = 0.0;
  double insert_ns = 0.0;
};

// Times the two serving-path hot loops on a fresh model with a fixed-seed
// workload, so every mode (obs off / metrics / metrics+trace) measures an
// identical instruction stream apart from the observability state.
HotLoopCost MeasureHotLoops(int64_t ops) {
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/50,
                                   /*noise_probability=*/0.0, /*seed=*/33);
  MlqModel model(udf->model_space(),
                 MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kCpu));

  constexpr size_t kPoints = 4096;
  const auto points = MakePaperWorkload(
      udf->model_space(), QueryDistributionKind::kUniform, kPoints, 77);
  std::vector<double> costs;
  costs.reserve(kPoints);
  for (const Point& p : points) costs.push_back(udf->Execute(p).cpu_work);

  // Warm the tree to its steady state (budget-limited, so further inserts
  // keep it there) before any timing.
  for (size_t i = 0; i < kPoints; ++i) model.Observe(points[i], costs[i]);

  HotLoopCost result;
  {
    WallTimer timer;
    for (int64_t i = 0; i < ops; ++i) {
      const size_t j = static_cast<size_t>(i) & (kPoints - 1);
      model.Observe(points[j], costs[j]);
    }
    result.insert_ns = timer.ElapsedSeconds() * 1e9 /
                       static_cast<double>(ops);
  }
  {
    WallTimer timer;
    double sink = 0.0;
    for (int64_t i = 0; i < ops; ++i) {
      sink += model.Predict(points[static_cast<size_t>(i) & (kPoints - 1)]);
    }
    KeepAlive(sink);
    result.predict_ns = timer.ElapsedSeconds() * 1e9 /
                        static_cast<double>(ops);
  }
  return result;
}

// Per-call cost of the disabled-path guard: one relaxed atomic load plus a
// branch that is never taken. Best-of-N chunks: scheduler preemption can
// only inflate a chunk, never deflate it, so the minimum is both the
// noise-robust estimate and still an upper bound on the true guard cost.
double MeasureGuardNs(int64_t calls) {
  constexpr int kChunks = 10;
  const int64_t per_chunk = calls / kChunks > 0 ? calls / kChunks : 1;
  double best_ns = 0.0;
  int64_t hits = 0;
  for (int chunk = 0; chunk < kChunks; ++chunk) {
    WallTimer timer;
    for (int64_t i = 0; i < per_chunk; ++i) {
      if (obs::Enabled()) ++hits;
      KeepAlive(hits);
    }
    const double ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(per_chunk);
    if (chunk == 0 || ns < best_ns) best_ns = ns;
  }
  return best_ns;
}

int Main(int argc, char** argv) {
  const int64_t ops =
      std::atoll(ArgValue(argc, argv, "ops", "400000").c_str());
  if (ops <= 0) {
    std::fprintf(stderr, "--ops must be positive\n");
    return 1;
  }

  std::printf("== Observability overhead (%lld ops per loop) ==\n\n",
              static_cast<long long>(ops));

  obs::SetEnabled(false);
  obs::SetTraceEnabled(false);
  const double guard_ns = MeasureGuardNs(ops * 8);
  const HotLoopCost off = MeasureHotLoops(ops);

  obs::SetEnabled(true);
  const HotLoopCost metrics = MeasureHotLoops(ops);

  obs::SetTraceEnabled(true);
  const HotLoopCost traced = MeasureHotLoops(ops);

  obs::SetEnabled(false);
  obs::SetTraceEnabled(false);

  const auto delta_pct = [](double base, double with) {
    return base > 0.0 ? (with - base) / base * 100.0 : 0.0;
  };

  TablePrinter modes({"mode", "predict ns/op", "insert ns/op",
                      "predict delta %", "insert delta %"});
  modes.AddRow({"off (default)", TablePrinter::Num(off.predict_ns, 1),
                TablePrinter::Num(off.insert_ns, 1), "0.0", "0.0"});
  modes.AddRow({"metrics", TablePrinter::Num(metrics.predict_ns, 1),
                TablePrinter::Num(metrics.insert_ns, 1),
                TablePrinter::Num(delta_pct(off.predict_ns,
                                            metrics.predict_ns), 1),
                TablePrinter::Num(delta_pct(off.insert_ns,
                                            metrics.insert_ns), 1)});
  modes.AddRow({"metrics+trace", TablePrinter::Num(traced.predict_ns, 1),
                TablePrinter::Num(traced.insert_ns, 1),
                TablePrinter::Num(delta_pct(off.predict_ns,
                                            traced.predict_ns), 1),
                TablePrinter::Num(delta_pct(off.insert_ns,
                                            traced.insert_ns), 1)});
  modes.Print(std::cout);

  // The disabled-path bound. Guards per op: Predict runs exactly one
  // (ScopedLatency's constructor); Insert runs the ScopedLatency guard
  // plus at most the TryCreateChild and CompressInternal guards — and
  // those two only fire on ops that already do a node allocation or a
  // whole compression pass, so 3 over-counts the common op.
  constexpr double kPredictGuards = 1.0;
  constexpr double kInsertGuards = 3.0;
  constexpr double kBudgetPct = 2.0;
  const double predict_bound_pct =
      guard_ns * kPredictGuards / off.predict_ns * 100.0;
  const double insert_bound_pct =
      guard_ns * kInsertGuards / off.insert_ns * 100.0;
  const bool pass =
      predict_bound_pct < kBudgetPct && insert_bound_pct < kBudgetPct;

  std::printf("\n");
  TablePrinter bound({"hot loop", "guards/op", "guard ns/call",
                      "bound %", "budget %", "verdict"});
  bound.AddRow({"predict", TablePrinter::Num(kPredictGuards, 0),
                TablePrinter::Num(guard_ns, 2),
                TablePrinter::Num(predict_bound_pct, 3),
                TablePrinter::Num(kBudgetPct, 1),
                predict_bound_pct < kBudgetPct ? "PASS" : "FAIL"});
  bound.AddRow({"insert", TablePrinter::Num(kInsertGuards, 0),
                TablePrinter::Num(guard_ns, 2),
                TablePrinter::Num(insert_bound_pct, 3),
                TablePrinter::Num(kBudgetPct, 1),
                insert_bound_pct < kBudgetPct ? "PASS" : "FAIL"});
  bound.Print(std::cout);

  std::printf(
      "\n%s: disabled-path overhead bound %s %.1f%% of the hot-loop cost\n"
      "(bound = guard ns/call x guards per op / op ns; the guard — one\n"
      "relaxed atomic load and an untaken branch — is all the disabled\n"
      "path adds over an uninstrumented build)\n",
      pass ? "PASS" : "FAIL", pass ? "<" : ">=", kBudgetPct);

  const int json_status = MaybeWriteBenchJson(argc, argv, "obs_overhead");
  return pass ? json_status : 1;
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) { return mlq::Main(argc, argv); }
