// Reproduces Figure 12 of the paper: prediction error (windowed NAE) of
// MLQ-E and MLQ-L as the number of query points processed increases, with
// uniform queries — the learning curves. SH is static and therefore not
// applicable, as in the paper.

// Pass --csv=PATH to additionally dump the curves as CSV.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/args.h"
#include "common/bench_report.h"
#include "common/table_printer.h"
#include "eval/csv_export.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"

namespace mlq {
namespace {

std::vector<EvalResult> g_curve_results;
int g_csv_window = 250;

// Index (1-based window number) of the first window whose NAE is within 5%
// of the series' eventual minimum — "when the curve flattens".
size_t ConvergenceWindow(const std::vector<double>& series) {
  double best = series.empty() ? 0.0 : series[0];
  for (double v : series) best = std::min(best, v);
  for (size_t i = 0; i < series.size(); ++i) {
    if (series[i] <= best * 1.05 + 1e-9) return i + 1;
  }
  return series.size();
}

void Report(const char* label, CostedUdf& udf, int num_queries, int window) {
  std::printf("\nFig. 12 — learning curves over %s (uniform queries, "
              "windowed NAE, window = %d)\n",
              label, window);

  std::vector<double> curves[2];
  size_t convergence[2] = {0, 0};
  const auto test =
      MakePaperWorkload(udf.model_space(), QueryDistributionKind::kUniform,
                        num_queries, /*seed=*/800);
  int m = 0;
  for (InsertionStrategy strategy :
       {InsertionStrategy::kEager, InsertionStrategy::kLazy}) {
    udf.ResetState();
    MlqModel model(udf.model_space(),
                   MakePaperMlqConfig(strategy, CostKind::kCpu));
    EvalOptions options;
    options.learning_curve_window = window;
    const EvalResult r =
        RunSelfTuningEvaluation(model, udf, test, options);
    curves[m] = r.learning_curve;
    convergence[m] = ConvergenceWindow(r.learning_curve);
    g_curve_results.push_back(r);
    g_csv_window = window;
    ++m;
  }

  TablePrinter table({"queries", "MLQ-E", "MLQ-L"});
  for (size_t w = 0; w < curves[0].size(); ++w) {
    table.AddRow({std::to_string((w + 1) * static_cast<size_t>(window)),
                  TablePrinter::Num(curves[0][w]),
                  w < curves[1].size() ? TablePrinter::Num(curves[1][w]) : ""});
  }
  table.Print(std::cout);
  std::printf("convergence (first window within 5%% of minimum): MLQ-E at "
              "window %zu, MLQ-L at window %zu\n",
              convergence[0], convergence[1]);
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) {
  std::printf("== Experiment 4 (Fig. 12): prediction error vs number of "
              "query points processed ==\n");
  std::printf("paper reference: MLQ-L reaches its minimum error much earlier "
              "than MLQ-E\n");

  const mlq::RealUdfSuite suite =
      mlq::MakeRealUdfSuite(mlq::SubstrateScale::kFull);
  mlq::CostedUdf* win = suite.Find("WIN");
  mlq::Report("WIN (real spatial UDF)", *win, mlq::kPaperRealQueries, 250);

  auto synthetic = mlq::MakePaperSyntheticUdf(/*num_peaks=*/50,
                                              /*noise_probability=*/0.0,
                                              /*seed=*/801);
  mlq::Report("SYNTH-50p (synthetic UDF)", *synthetic,
              mlq::kPaperSyntheticQueries, 500);

  const std::string csv_path = mlq::ArgValue(argc, argv, "csv");
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    mlq::WriteLearningCurvesCsv(csv, mlq::g_curve_results, mlq::g_csv_window);
    std::printf("\nwrote learning curves to %s\n", csv_path.c_str());
  }
  return mlq::MaybeWriteBenchJson(argc, argv, "fig12_learning_curve");
}
