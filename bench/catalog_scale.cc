// catalog_scale — the fleet-level bench: one global byte pool, thousands
// of models, Zipf-skewed traffic.
//
// Two catalogs serve the identical op sequence from identical starting
// budgets (global_budget / models per entry):
//
//   equal_split — budgets never move. This is the baseline the paper's
//     single-model tuning implies when scaled naively: every UDF gets the
//     same slice regardless of traffic.
//   governed — a CatalogGovernor redistributes the same global pool by
//     observed accuracy-per-byte demand (traffic share x error boost x
//     staleness) on the maintenance tick stream.
//
// Three exit-enforced gates:
//
//  1. Accuracy: the governed catalog's aggregate windowed NAE (traffic-
//     weighted, measured over the serving phase) must beat equal_split.
//     Skewed traffic is the whole argument for a governor — hot models
//     deserve the bytes cold models waste — so losing this comparison
//     means the subsystem does not pay for itself.
//  2. Tick overhead: registering a governor adds one atomic load + counter
//     to every maintenance tick on the serving path. Measured as
//     back-to-back (detached, attached) pairs; the minimum pairwise delta
//     must stay under 2% (noise only ever inflates a pair's delta).
//  3. Rebalance amortization: a full rebalance (health scan + allocation +
//     budget application) costs real microseconds. At the production
//     cadence modeled here — one rebalance per 512*models serving ops,
//     i.e. ticks_per_rebalance scaled with fleet size — the amortized
//     per-op share must stay under 2%. Both sides of the ratio scale
//     linearly with the fleet, so the verdict holds from 256 models to
//     10k.
//
// The accuracy phase itself runs an intentionally aggressive cadence (one
// rebalance per 256 ops) so the allocation converges within the bench's op
// budget; gate 3 is what licenses the slower production cadence.
//
//   catalog_scale [--models=256] [--tenants=4] [--warm-ops=150000]
//                 [--measure-ops=120000] [--overhead-ops=60000]
//                 [--repeats=3] [--zipf=1.1] [--budget-per-model=400]
//                 [--json=FILE]
//
// CI runs the default (CI-sized) shape; the nightly workflow runs
// --models=10000 for the full catalog-scale stress.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/bench_report.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "common/zipf.h"
#include "engine/catalog_governor.h"
#include "engine/cost_catalog.h"
#include "engine/maintenance_scheduler.h"
#include "eval/experiment_setup.h"

namespace mlq {
namespace {

template <typename T>
inline void KeepAlive(T& value) {
  asm volatile("" : "+r"(value));
}

constexpr size_t kPointMask = 1024 - 1;
constexpr int kOpsPerTick = 64;

// One catalog plus its fleet of uniquely named synthetic UDFs (distinct
// peak layouts via the seed) and the scheduler that drives maintenance.
struct Fleet {
  std::vector<std::unique_ptr<RenamedUdf>> udfs;
  std::unique_ptr<CostCatalog> catalog;
  std::unique_ptr<MaintenanceScheduler> scheduler;
};

Fleet MakeFleet(int models, int tenants, int64_t per_model_budget,
                uint64_t seed) {
  Fleet f;
  f.udfs.reserve(static_cast<size_t>(models));
  for (int i = 0; i < models; ++i) {
    f.udfs.push_back(std::make_unique<RenamedUdf>(
        "m" + std::to_string(i),
        MakePaperSyntheticUdf(/*num_peaks=*/20, /*noise_probability=*/0.0,
                              seed + static_cast<uint64_t>(i))));
  }
  f.catalog = std::make_unique<CostCatalog>(per_model_budget);
  for (int i = 0; i < models; ++i) {
    f.catalog->For(f.udfs[static_cast<size_t>(i)].get(),
                   "tenant" + std::to_string(i % tenants));
  }
  f.scheduler =
      std::make_unique<MaintenanceScheduler>(f.catalog.get(),
                                             MaintenancePolicy{});
  return f;
}

// The op sequence both scenarios replay: Zipf-ranked model indices (model
// i serves rank i+1, so low indices are hot).
std::vector<uint32_t> MakeSequence(int models, double z, size_t ops,
                                   uint64_t seed) {
  ZipfDistribution zipf(models, z);
  Rng rng(seed);
  std::vector<uint32_t> seq(ops);
  for (uint32_t& s : seq) s = static_cast<uint32_t>(zipf.Sample(rng) - 1);
  return seq;
}

// Serving loop: every op predicts; every 2nd op executes the UDF and feeds
// the outcome back. Accumulates the traffic-weighted aggregate NAE
// (sum |pred - actual| / sum actual over the executed ops) when `nae_out`
// is non-null.
void Serve(Fleet& f, const std::vector<uint32_t>& seq,
           const std::vector<Point>& points, double* nae_out) {
  double err = 0.0;
  double denom = 0.0;
  double sink = 0.0;
  for (size_t i = 0; i < seq.size(); ++i) {
    CostedUdf* udf = f.udfs[seq[i]].get();
    const Point& p = points[i & kPointMask];
    const double pred = f.catalog->PredictCostMicros(udf, p);
    sink += pred;
    if ((i & 1) == 0) {
      const UdfCost cost = udf->Execute(p);
      const double actual = cost.NominalMicros();
      err += std::abs(pred - actual);
      denom += actual;
      f.catalog->RecordExecution(udf, p, cost, (i % 3) == 0);
    }
    if (i % kOpsPerTick == 0) f.catalog->MaintenanceTick();
  }
  KeepAlive(sink);
  if (nae_out != nullptr) *nae_out = denom > 0.0 ? err / denom : 0.0;
}

// Individually timed predicts over the Zipf sequence; returns the p99 in
// ns. Identical instruction stream across scenarios, so the (constant)
// timer overhead cancels out of the comparison.
double PredictP99Ns(Fleet& f, const std::vector<uint32_t>& seq,
                    const std::vector<Point>& points, size_t samples) {
  std::vector<double> ns;
  ns.reserve(samples);
  double sink = 0.0;
  for (size_t i = 0; i < samples; ++i) {
    CostedUdf* udf = f.udfs[seq[i % seq.size()]].get();
    const Point& p = points[i & kPointMask];
    WallTimer timer;
    sink += f.catalog->PredictCostMicros(udf, p);
    ns.push_back(timer.ElapsedSeconds() * 1e9);
  }
  KeepAlive(sink);
  std::sort(ns.begin(), ns.end());
  return ns[std::min(ns.size() - 1,
                     static_cast<size_t>(static_cast<double>(ns.size()) *
                                         0.99))];
}

// Timed predict-only pass with the maintenance tick stream running (the
// overhead gate's unit of work). Returns ns per op.
double PredictLoopOnce(Fleet& f, const std::vector<uint32_t>& seq,
                       const std::vector<Point>& points, size_t ops) {
  WallTimer timer;
  double sink = 0.0;
  for (size_t i = 0; i < ops; ++i) {
    CostedUdf* udf = f.udfs[seq[i % seq.size()]].get();
    sink += f.catalog->PredictCostMicros(udf, points[i & kPointMask]);
    if (i % kOpsPerTick == 0) f.catalog->MaintenanceTick();
  }
  KeepAlive(sink);
  return timer.ElapsedSeconds() * 1e9 / static_cast<double>(ops);
}

int Main(int argc, char** argv) {
  const int models = std::atoi(ArgValue(argc, argv, "models", "256").c_str());
  const int tenants =
      std::atoi(ArgValue(argc, argv, "tenants", "4").c_str());
  const auto warm_ops = static_cast<size_t>(
      std::atoll(ArgValue(argc, argv, "warm-ops", "150000").c_str()));
  const auto measure_ops = static_cast<size_t>(
      std::atoll(ArgValue(argc, argv, "measure-ops", "120000").c_str()));
  const auto overhead_ops = static_cast<size_t>(
      std::atoll(ArgValue(argc, argv, "overhead-ops", "60000").c_str()));
  const int repeats =
      std::atoi(ArgValue(argc, argv, "repeats", "3").c_str());
  const double zipf_z =
      std::atof(ArgValue(argc, argv, "zipf", "1.1").c_str());
  const int64_t per_model_budget =
      std::atoll(ArgValue(argc, argv, "budget-per-model", "400").c_str());
  if (models <= 1 || tenants <= 0 || warm_ops == 0 || measure_ops == 0 ||
      overhead_ops == 0 || repeats <= 0 || per_model_budget <= 0) {
    std::fprintf(stderr, "invalid flag value\n");
    return 1;
  }
  // The scarcity the governor arbitrates: both scenarios start from (and
  // the governed one must stay within) this pool.
  const int64_t global_budget = 3 * per_model_budget * models;
  constexpr double kBudgetPct = 2.0;
  constexpr uint64_t kSeed = 42;

  std::printf("== Catalog scale: %d models, %d tenants, zipf %.2f, "
              "global budget %lld bytes ==\n\n",
              models, tenants, zipf_z,
              static_cast<long long>(global_budget));

  const std::vector<uint32_t> warm_seq =
      MakeSequence(models, zipf_z, warm_ops, kSeed ^ 0xA11CE);
  const std::vector<uint32_t> measure_seq =
      MakeSequence(models, zipf_z, measure_ops, kSeed ^ 0xB0B);
  // Every synthetic surface shares the paper's model space, so one point
  // pool serves the whole fleet.
  const std::vector<Point> points = MakePaperWorkload(
      MakePaperSyntheticUdf(20, 0.0, kSeed)->model_space(),
      QueryDistributionKind::kUniform, kPointMask + 1, kSeed ^ 0xF00D);

  // --- equal_split: budgets never move. ---
  Fleet equal = MakeFleet(models, tenants, per_model_budget, kSeed);
  Serve(equal, warm_seq, points, nullptr);
  double equal_nae = 0.0;
  Serve(equal, measure_seq, points, &equal_nae);
  const double equal_p99 = PredictP99Ns(equal, measure_seq, points, 20000);

  // --- governed: same pool, governor redistributes. ---
  Fleet governed = MakeFleet(models, tenants, per_model_budget, kSeed);
  GovernorPolicy policy;
  policy.global_budget_bytes = global_budget;
  // Aggressive convergence cadence for the accuracy phase (see header
  // comment): one rebalance per 4 ticks = 256 ops.
  policy.ticks_per_rebalance = 4;
  CatalogGovernor governor(governed.catalog.get(), policy);
  governed.scheduler->SetGovernor(&governor);
  Serve(governed, warm_seq, points, nullptr);
  double governed_nae = 0.0;
  Serve(governed, measure_seq, points, &governed_nae);
  const double governed_p99 =
      PredictP99Ns(governed, measure_seq, points, 20000);

  const GovernorStats gstats = governor.stats();
  const bool nae_pass = governed_nae < equal_nae;

  // --- Gate 2: tick forwarding on the serving path. The attached
  // governor's cadence is effectively infinite, so the pairs isolate the
  // per-tick cost (atomic load + mutex + counter), not a rebalance. ---
  governed.scheduler->SetGovernor(nullptr);
  GovernorPolicy idle_policy;
  idle_policy.global_budget_bytes = global_budget;
  idle_policy.ticks_per_rebalance = int64_t{1} << 40;
  CatalogGovernor idle_governor(governed.catalog.get(), idle_policy);
  const auto delta_pct = [](double base, double with) {
    return base > 0.0 ? (with - base) / base * 100.0 : 0.0;
  };
  double detached_ns = 0.0;
  double attached_ns = 0.0;
  double tick_delta_pct = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    governed.scheduler->SetGovernor(nullptr);
    const double base = PredictLoopOnce(governed, measure_seq, points,
                                        overhead_ops);
    governed.scheduler->SetGovernor(&idle_governor);
    const double with = PredictLoopOnce(governed, measure_seq, points,
                                        overhead_ops);
    const double pair = delta_pct(base, with);
    if (rep == 0 || pair < tick_delta_pct) tick_delta_pct = pair;
    if (rep == 0 || base < detached_ns) detached_ns = base;
    if (rep == 0 || with < attached_ns) attached_ns = with;
  }
  governed.scheduler->SetGovernor(nullptr);
  const bool tick_pass = tick_delta_pct < kBudgetPct;

  // --- Gate 3: rebalance cost, amortized at the production cadence (one
  // rebalance per 512*models serving ops — ticks_per_rebalance scaled to
  // 8*models at 64 ops/tick). Best of `repeats` rebalances on the warm
  // catalog: the first may still apply budget deltas left over from the
  // overhead legs, the rest measure the health scan + demand computation —
  // the fixed recurring term every cadence window pays whether or not
  // traffic shifted. ---
  double rebalance_us = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    WallTimer timer;
    governor.RebalanceNow();
    const double us = timer.ElapsedSeconds() * 1e6;
    if (rep == 0 || us < rebalance_us) rebalance_us = us;
  }
  const double cadence_ops = 512.0 * static_cast<double>(models);
  const double amortized_pct =
      rebalance_us * 1000.0 / (cadence_ops * detached_ns) * 100.0;
  const bool amortized_pass = amortized_pct < kBudgetPct;

  TablePrinter scenarios(
      {"scenario", "agg_nae", "predict_p99_ns", "predict ops/s"});
  scenarios.AddRow({"equal_split", TablePrinter::Num(equal_nae, 4),
                    TablePrinter::Num(equal_p99, 0),
                    TablePrinter::Num(1e9 / detached_ns, 0)});
  scenarios.AddRow({"governed", TablePrinter::Num(governed_nae, 4),
                    TablePrinter::Num(governed_p99, 0),
                    TablePrinter::Num(1e9 / attached_ns, 0)});
  scenarios.Print(std::cout);

  std::printf("\n");
  TablePrinter activity({"governor", "rebalances", "granted_kb",
                         "reclaimed_kb", "evictions", "rebalance_us"});
  activity.AddRow(
      {"activity", TablePrinter::Num(gstats.rebalances, 0),
       TablePrinter::Num(static_cast<double>(gstats.bytes_granted) / 1024.0,
                         1),
       TablePrinter::Num(static_cast<double>(gstats.bytes_reclaimed) /
                             1024.0,
                         1),
       TablePrinter::Num(gstats.evictions, 0),
       TablePrinter::Num(rebalance_us, 1)});
  activity.Print(std::cout);

  std::printf("\n");
  TablePrinter gates({"gate", "measured", "budget", "verdict"});
  gates.AddRow({"governed_vs_equal_nae",
                TablePrinter::Num(equal_nae > 0.0
                                      ? governed_nae / equal_nae
                                      : 1.0,
                                  3),
                "<1", nae_pass ? "PASS" : "FAIL"});
  gates.AddRow({"tick_overhead_min_pair_pct",
                TablePrinter::Num(tick_delta_pct, 2),
                TablePrinter::Num(kBudgetPct, 1),
                tick_pass ? "PASS" : "FAIL"});
  gates.AddRow({"rebalance_amortized_pct",
                TablePrinter::Num(amortized_pct, 2),
                TablePrinter::Num(kBudgetPct, 1),
                amortized_pass ? "PASS" : "FAIL"});
  gates.Print(std::cout);

  const bool pass = nae_pass && tick_pass && amortized_pass;
  std::printf("\n%s: governed nae %.4f vs equal %.4f, tick %+.2f%%, "
              "rebalance %.1f us (%.2f%% amortized)\n",
              pass ? "PASS" : "FAIL", governed_nae, equal_nae,
              tick_delta_pct, rebalance_us, amortized_pct);

  const int json_status = MaybeWriteBenchJson(argc, argv, "catalog_scale");
  return pass ? json_status : 1;
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) { return mlq::Main(argc, argv); }
