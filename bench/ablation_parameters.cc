// Parameter ablation (the sweeps the paper defers to its technical report
// [18]): the effect of alpha, beta, gamma, lambda, and the memory budget on
// MLQ prediction accuracy and compression behaviour. Gaussian-random
// queries over a 50-peak synthetic surface, CPU cost.

#include <cstdio>
#include <iostream>

#include "common/bench_report.h"
#include "common/table_printer.h"
#include "eval/experiment_setup.h"
#include "model/mlq_model.h"

namespace mlq {
namespace {

struct RunOutput {
  double nae = 0.0;
  int64_t compressions = 0;
  double auc_micros = 0.0;
};

RunOutput RunOnce(const MlqConfig& config, InsertionStrategy strategy,
                  double noise = 0.0, CostKind kind = CostKind::kCpu) {
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/50, noise, /*seed=*/900);
  const Box space = udf->model_space();
  const auto test = MakePaperWorkload(
      space, QueryDistributionKind::kGaussianRandom, 5000, /*seed=*/901);
  MlqConfig c = config;
  c.strategy = strategy;
  MlqModel model(space, c);
  EvalOptions options;
  options.cost_kind = kind;
  const EvalResult r = RunSelfTuningEvaluation(model, *udf, test, options);
  return RunOutput{r.nae, r.compressions, r.auc_micros};
}

MlqConfig BaseConfig() {
  return MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kCpu);
}

void SweepAlpha() {
  std::printf("\nAblation: alpha (lazy partition threshold scale; paper "
              "default 0.05)\n");
  TablePrinter table({"alpha", "MLQ-L NAE", "compressions", "AUC(us)"});
  for (double alpha : {0.001, 0.01, 0.05, 0.2, 0.5}) {
    MlqConfig config = BaseConfig();
    config.alpha = alpha;
    const RunOutput out = RunOnce(config, InsertionStrategy::kLazy);
    table.AddRow({TablePrinter::Num(alpha, 3), TablePrinter::Num(out.nae),
                  std::to_string(out.compressions),
                  TablePrinter::Num(out.auc_micros, 3)});
  }
  table.Print(std::cout);
}

void SweepBeta() {
  std::printf("\nAblation: beta (min points for a prediction node; paper: 1 "
              "for CPU, 10 for IO) — evaluated under 20%% noise\n");
  TablePrinter table({"beta", "MLQ-E NAE (noisy)"});
  for (int64_t beta : {1, 2, 5, 10, 25, 100}) {
    MlqConfig config = BaseConfig();
    config.beta = beta;
    const RunOutput out =
        RunOnce(config, InsertionStrategy::kEager, /*noise=*/0.2);
    table.AddRow({std::to_string(beta), TablePrinter::Num(out.nae)});
  }
  table.Print(std::cout);
}

void SweepGamma() {
  std::printf("\nAblation: gamma (fraction of budget freed per compression; "
              "paper default 0.1%%)\n");
  TablePrinter table({"gamma", "MLQ-E NAE", "compressions", "AUC(us)"});
  for (double gamma : {0.001, 0.01, 0.05, 0.2, 0.5}) {
    MlqConfig config = BaseConfig();
    config.gamma = gamma;
    const RunOutput out = RunOnce(config, InsertionStrategy::kEager);
    table.AddRow({TablePrinter::Num(gamma, 3), TablePrinter::Num(out.nae),
                  std::to_string(out.compressions),
                  TablePrinter::Num(out.auc_micros, 3)});
  }
  table.Print(std::cout);
}

void SweepLambda() {
  std::printf("\nAblation: lambda (max depth; paper default 6)\n");
  TablePrinter table({"lambda", "MLQ-E NAE", "MLQ-L NAE"});
  for (int lambda : {1, 2, 3, 4, 6, 8}) {
    MlqConfig config = BaseConfig();
    config.max_depth = lambda;
    const RunOutput eager = RunOnce(config, InsertionStrategy::kEager);
    const RunOutput lazy = RunOnce(config, InsertionStrategy::kLazy);
    table.AddRow({std::to_string(lambda), TablePrinter::Num(eager.nae),
                  TablePrinter::Num(lazy.nae)});
  }
  table.Print(std::cout);
}

void SweepMemory() {
  std::printf("\nAblation: memory budget (paper default 1800 bytes)\n");
  TablePrinter table({"bytes", "MLQ-E NAE", "MLQ-L NAE", "MLQ-E compressions"});
  for (int64_t budget : {600, 1800, 4096, 16384, 65536}) {
    MlqConfig config = BaseConfig();
    config.memory_limit_bytes = budget;
    const RunOutput eager = RunOnce(config, InsertionStrategy::kEager);
    const RunOutput lazy = RunOnce(config, InsertionStrategy::kLazy);
    table.AddRow({std::to_string(budget), TablePrinter::Num(eager.nae),
                  TablePrinter::Num(lazy.nae),
                  std::to_string(eager.compressions)});
  }
  table.Print(std::cout);
}

void SweepTrainingSize() {
  std::printf("\nAblation: SH-H a-priori training size (how much training "
              "data the static baseline needs)\n");
  TablePrinter table({"training_n", "SH-H NAE"});
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/50, 0.0, /*seed=*/900);
  const Box space = udf->model_space();
  for (int n : {100, 500, 2000, 5000, 20000}) {
    const TrainTestWorkload workloads = MakePaperTrainTestWorkloads(
        space, QueryDistributionKind::kGaussianRandom, n, 5000, /*seed=*/901);
    udf->ResetState();
    EquiHeightHistogram model(space, kPaperMemoryBytes);
    const EvalResult r = RunStaticEvaluation(model, *udf, workloads.training,
                                             workloads.test, EvalOptions{});
    table.AddRow({std::to_string(n), TablePrinter::Num(r.nae)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) {
  std::printf("== Ablation A1: MLQ parameter sweeps (tech-report [18] "
              "territory) ==\n");
  mlq::SweepAlpha();
  mlq::SweepBeta();
  mlq::SweepGamma();
  mlq::SweepLambda();
  mlq::SweepMemory();
  mlq::SweepTrainingSize();
  return mlq::MaybeWriteBenchJson(argc, argv, "ablation_parameters");
}
