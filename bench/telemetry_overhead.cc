// telemetry_overhead — proves the continuous telemetry pipeline is
// affordable on the serving path.
//
// Two gates (docs/observability.md, "Continuous telemetry"):
//
//  1. Disabled path unchanged. The exporter adds no new per-op
//     instrumentation — the serving path still executes only the
//     obs::Enabled() guards obs_overhead already bounds — so the same
//     contract applies: guard ns/call x guards per op / op ns must stay
//     under 2% of the hot-loop cost. Re-proven here so the telemetry PR
//     carries its own exit-status gate.
//
//  2. Exporter-on serving cost. With metrics enabled, a running
//     TelemetryExporter at a 100 ms interval scrapes the registry with
//     SnapshotAndReset while worker code hammers a warm catalog with a
//     mixed predict/observe loop. The scrape holds the registry mutex for
//     microseconds per 100 ms, so mixed throughput must stay within 2% of
//     the same enabled-metrics loop with no exporter. Both runs have
//     metrics ON so the gate isolates the exporter itself, not the (known,
//     separately-gated) metrics cost. The legs run as back-to-back pairs
//     and the gate judges the minimum pairwise delta — noise only ever
//     inflates a delta, so one clean pair is a sound upper bound.
//
// Exit status is 0 only when both gates pass, so the CI smoke test
// enforces the promise.
//
//   telemetry_overhead [--ops=300000] [--repeats=3] [--json=FILE]

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "common/args.h"
#include "common/bench_report.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "engine/cost_catalog.h"
#include "eval/experiment_setup.h"
#include "obs/obs.h"

namespace mlq {
namespace {

// Keeps `value` live without a memory round-trip (benchmark::DoNotOptimize
// without the google-benchmark dependency).
template <typename T>
inline void KeepAlive(T& value) {
  asm volatile("" : "+r"(value));
}

// Per-call cost of the disabled-path guard: one relaxed atomic load plus a
// branch that is never taken. Best-of-N chunks: preemption can only
// inflate a chunk, so the minimum is both noise-robust and still an upper
// bound on the true guard cost.
double MeasureGuardNs(int64_t calls) {
  constexpr int kChunks = 10;
  const int64_t per_chunk = calls / kChunks > 0 ? calls / kChunks : 1;
  double best_ns = 0.0;
  int64_t hits = 0;
  for (int chunk = 0; chunk < kChunks; ++chunk) {
    WallTimer timer;
    for (int64_t i = 0; i < per_chunk; ++i) {
      if (obs::Enabled()) ++hits;
      KeepAlive(hits);
    }
    const double ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(per_chunk);
    if (chunk == 0 || ns < best_ns) best_ns = ns;
  }
  return best_ns;
}

// The serving-path fixture: a warm catalog entry plus a fixed-seed
// workload, reused across every timed run so each mode measures an
// identical instruction stream apart from the exporter state.
struct ServingFixture {
  std::unique_ptr<CostedUdf> udf;
  std::unique_ptr<CostCatalog> catalog;
  std::vector<Point> points;
  std::vector<UdfCost> costs;
};

ServingFixture MakeFixture() {
  ServingFixture fx;
  fx.udf = MakePaperSyntheticUdf(/*num_peaks=*/50,
                                 /*noise_probability=*/0.0, /*seed=*/33);
  fx.catalog = std::make_unique<CostCatalog>(
      /*memory_limit_bytes=*/1800, CatalogConcurrency::kGlobalMutex);

  constexpr size_t kPoints = 4096;
  fx.points = MakePaperWorkload(fx.udf->model_space(),
                                QueryDistributionKind::kUniform, kPoints, 77);
  fx.costs.reserve(kPoints);
  for (const Point& p : fx.points) fx.costs.push_back(fx.udf->Execute(p));

  // Warm the entry to its budget-limited steady state before any timing.
  for (size_t i = 0; i < kPoints; ++i) {
    fx.catalog->RecordExecution(fx.udf.get(), fx.points[i], fx.costs[i],
                                (i % 3) == 0);
  }
  return fx;
}

// One timed pass of the mixed serving loop: 3 predicts per observe (a
// plausible plan-then-run ratio). Returns ns per op over `ops` catalog
// calls.
double MixedLoopOnce(ServingFixture& fx, int64_t ops) {
  constexpr size_t kMask = 4096 - 1;
  WallTimer timer;
  double sink = 0.0;
  for (int64_t i = 0; i < ops; ++i) {
    const size_t j = static_cast<size_t>(i) & kMask;
    if ((i & 3) == 3) {
      fx.catalog->RecordExecution(fx.udf.get(), fx.points[j], fx.costs[j],
                                  (j % 3) == 0);
    } else {
      sink += fx.catalog->PredictCostMicros(fx.udf.get(), fx.points[j]);
    }
  }
  KeepAlive(sink);
  return timer.ElapsedSeconds() * 1e9 / static_cast<double>(ops);
}

// Best of `repeats` passes (preemption only ever inflates a pass).
double MeasureMixedNs(ServingFixture& fx, int64_t ops, int repeats) {
  double best_ns = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    const double ns = MixedLoopOnce(fx, ops);
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  return best_ns;
}

int Main(int argc, char** argv) {
  const int64_t ops =
      std::atoll(ArgValue(argc, argv, "ops", "300000").c_str());
  const int repeats =
      std::atoi(ArgValue(argc, argv, "repeats", "3").c_str());
  if (ops <= 0 || repeats <= 0) {
    std::fprintf(stderr, "--ops and --repeats must be positive\n");
    return 1;
  }

  std::printf("== Telemetry exporter overhead (%lld ops, best of %d) ==\n\n",
              static_cast<long long>(ops), repeats);

  constexpr double kBudgetPct = 2.0;

  // Gate 1: disabled path. The exporter thread is not even started; the
  // only possible cost is the guard every instrumentation site already
  // runs, bounded exactly as obs_overhead does.
  obs::SetEnabled(false);
  obs::SetTraceEnabled(false);
  const double guard_ns = MeasureGuardNs(ops * 8);
  ServingFixture off_fx = MakeFixture();
  const double off_ns = MeasureMixedNs(off_fx, ops, repeats);

  // Mixed op = 3 predicts + 1 observe over 4 ops. Predict runs 1 guard,
  // observe at most 3 (ScopedLatency + TryCreateChild + CompressInternal,
  // the latter two only on ops that already allocate or compress), and the
  // catalog's windowed-actuals update adds 1 more on the observe: average
  // (3*1 + 1*4) / 4 = 1.75 guards per mixed op.
  constexpr double kGuardsPerMixedOp = 1.75;
  const double disabled_bound_pct =
      guard_ns * kGuardsPerMixedOp / off_ns * 100.0;
  const bool disabled_pass = disabled_bound_pct < kBudgetPct;

  // Gate 2: exporter-on serving cost, metrics enabled on both sides. The
  // two legs alternate rep by rep (taking the best pass of each), so a
  // monotonic machine-wide slowdown — thermal throttling, a co-tenant
  // waking up — lands on both legs instead of biasing whichever ran last.
  obs::SetEnabled(true);
  obs::MetricsRegistry::Global().ResetAll();
  obs::GlobalEventLog().Clear();
  ServingFixture on_fx = MakeFixture();

  const auto delta_pct = [](double base, double with) {
    return base > 0.0 ? (with - base) / base * 100.0 : 0.0;
  };

  // Each rep is one back-to-back (plain, exporter-on) pair, so both
  // members see the same machine conditions; the pair's delta estimates
  // the exporter's added cost. Noise — preemption, a co-tenant, frequency
  // drift — only ever inflates a delta, so the MINIMUM pairwise delta is
  // the sound upper-bound estimate of the true cost, and that is what the
  // gate judges.
  double metrics_ns = 0.0;
  double exporter_ns = 0.0;
  double exporter_delta_pct = 0.0;
  obs::MetricsSnapshot cumulative;
  {
    obs::TelemetryExporterOptions opts;
    opts.interval_ms = 100;
    obs::TelemetryExporter exporter(opts);
    exporter.SetHealthProvider(
        [&] { return on_fx.catalog->ReadModelHealth(); });
    for (int rep = 0; rep < repeats; ++rep) {
      const double plain_ns = MixedLoopOnce(on_fx, ops);
      exporter.Start();
      const double with_ns = MixedLoopOnce(on_fx, ops);
      exporter.Stop();
      const double pair_delta = delta_pct(plain_ns, with_ns);
      if (rep == 0 || pair_delta < exporter_delta_pct) {
        exporter_delta_pct = pair_delta;
      }
      if (rep == 0 || plain_ns < metrics_ns) metrics_ns = plain_ns;
      if (rep == 0 || with_ns < exporter_ns) exporter_ns = with_ns;
    }
    std::printf("(exporter ran %lld scrapes across the timed reps)\n\n",
                static_cast<long long>(exporter.scrapes()));
    cumulative = exporter.latest_frame().cumulative;
  }
  obs::SetEnabled(false);

  const bool exporter_pass = exporter_delta_pct < kBudgetPct;

  TablePrinter modes({"mode", "mixed ns/op", "ops/s", "delta %"});
  modes.AddRow({"obs off", TablePrinter::Num(off_ns, 1),
                TablePrinter::Num(1e9 / off_ns, 0), "0.0"});
  modes.AddRow({"metrics, no exporter", TablePrinter::Num(metrics_ns, 1),
                TablePrinter::Num(1e9 / metrics_ns, 0),
                TablePrinter::Num(delta_pct(off_ns, metrics_ns), 1)});
  modes.AddRow({"metrics + exporter@100ms", TablePrinter::Num(exporter_ns, 1),
                TablePrinter::Num(1e9 / exporter_ns, 0),
                TablePrinter::Num(delta_pct(off_ns, exporter_ns), 1)});
  modes.Print(std::cout);

  std::printf("\n");
  TablePrinter gates({"gate", "measured %", "budget %", "verdict"});
  gates.AddRow({"disabled-path bound",
                TablePrinter::Num(disabled_bound_pct, 3),
                TablePrinter::Num(kBudgetPct, 1),
                disabled_pass ? "PASS" : "FAIL"});
  gates.AddRow({"exporter vs metrics-only (min pair)",
                TablePrinter::Num(exporter_delta_pct, 2),
                TablePrinter::Num(kBudgetPct, 1),
                exporter_pass ? "PASS" : "FAIL"});
  gates.Print(std::cout);

  // Serving-latency quantiles from the exporter's cumulative view (the
  // registry itself was drained by the scrapes) — p999 included, and
  // threaded into the --json report like every other table.
  std::printf("\n");
  TablePrinter latency(
      {"histogram", "count", "p50 ns", "p90 ns", "p99 ns", "p999 ns"});
  for (const char* name :
       {"mlq_predict_latency_ns", "mlq_insert_latency_ns"}) {
    const auto it = cumulative.histograms.find(name);
    if (it == cumulative.histograms.end() || it->second.count == 0) continue;
    const obs::HistogramSnapshot& h = it->second;
    latency.AddRow({name, TablePrinter::Num(h.count, 0),
                    TablePrinter::Num(h.Quantile(0.50), 0),
                    TablePrinter::Num(h.Quantile(0.90), 0),
                    TablePrinter::Num(h.Quantile(0.99), 0),
                    TablePrinter::Num(h.Quantile(0.999), 0)});
  }
  latency.Print(std::cout);

  const bool pass = disabled_pass && exporter_pass;
  std::printf(
      "\n%s: exporter-off path bounded at %.3f%%, exporter-on mixed "
      "serving delta %.2f%% (budget %.1f%%)\n",
      pass ? "PASS" : "FAIL", disabled_bound_pct, exporter_delta_pct,
      kBudgetPct);

  const int json_status =
      MaybeWriteBenchJson(argc, argv, "telemetry_overhead");
  return pass ? json_status : 1;
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) { return mlq::Main(argc, argv); }
