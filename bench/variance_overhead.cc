// variance_overhead — proves the variance-aware prediction currency
// (CostEstimate / PredictStats) is free on the scalar prediction path.
//
// The contract (docs/variance.md): callers who keep using Predict /
// PredictBatch pay nothing for the stats API existing. The refactor's only
// touches to the scalar path are inside SummaryTriple::Stddev(), which the
// quadtree's PredictInternal already computed inline — the centralized
// spelling adds one integer compare with an untaken branch (the count <= 0
// NaN guard) per stddev site. PredictStats itself is a separate virtual;
// no scalar call resolves to it. As with bench/obs_overhead and
// bench/decay_overhead, an unrefactored baseline cannot exist in this
// binary, so the bench bounds the scalar path analytically and measures
// the opt-in path directly:
//
//  1. It times the guard primitive (integer load + compare + untaken
//     branch) and converts it to a percentage of the measured scalar
//     predict cost. PredictInternal's two stddev sites are on mutually
//     exclusive branches, so one guard per prediction is the honest
//     charge. This is the gating number.
//  2. It times the Prediction -> CostEstimate conversion primitive (what
//     PredictStatsBatch adds per point over PredictBatch) and gates it the
//     same way: conversion must stay under 2% of a scalar predict, so the
//     stats batch stays within the same cost envelope as the scalar batch.
//  3. It reports the measured scalar vs stats path costs side by side
//     (not gated; the opt-in path's cost is a feature).
//
// Exit status is 0 only when both bounds pass, so the CI smoke test
// enforces the <2% promise.
//
//   variance_overhead [--ops=400000] [--json=FILE]

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <span>
#include <vector>

#include "common/args.h"
#include "common/bench_report.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "eval/experiment_setup.h"
#include "model/cost_model.h"
#include "model/mlq_model.h"

namespace mlq {
namespace {

// Keeps `value` live without a memory round-trip.
template <typename T>
inline void KeepAlive(T& value) {
  asm volatile("" : "+r"(value));
}

struct PathCost {
  double scalar_predict_ns = 0.0;
  double predict_stats_ns = 0.0;
  double scalar_batch_ns = 0.0;  // Per point, batch of 256.
  double stats_batch_ns = 0.0;   // Per point, batch of 256.
};

PathCost MeasurePaths(int64_t ops) {
  auto udf = MakePaperSyntheticUdf(/*num_peaks=*/50,
                                   /*noise_probability=*/0.0, /*seed=*/33);
  MlqModel model(udf->model_space(),
                 MakePaperMlqConfig(InsertionStrategy::kLazy, CostKind::kCpu));

  constexpr size_t kPoints = 4096;
  const auto points = MakePaperWorkload(
      udf->model_space(), QueryDistributionKind::kUniform, kPoints, 77);
  for (const Point& p : points) model.Observe(p, udf->Execute(p).cpu_work);

  PathCost result;
  {
    WallTimer timer;
    double sink = 0.0;
    for (int64_t i = 0; i < ops; ++i) {
      sink += model.Predict(points[static_cast<size_t>(i) & (kPoints - 1)]);
    }
    KeepAlive(sink);
    result.scalar_predict_ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(ops);
  }
  {
    WallTimer timer;
    double sink = 0.0;
    for (int64_t i = 0; i < ops; ++i) {
      sink += model.PredictStats(points[static_cast<size_t>(i) & (kPoints - 1)])
                  .stddev;
    }
    KeepAlive(sink);
    result.predict_stats_ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(ops);
  }
  constexpr size_t kBatch = 256;
  const int64_t batches = ops / static_cast<int64_t>(kBatch) + 1;
  {
    std::vector<Prediction> out(kBatch);
    WallTimer timer;
    size_t offset = 0;
    for (int64_t b = 0; b < batches; ++b) {
      model.PredictBatch(std::span<const Point>(&points[offset], kBatch), out);
      offset = (offset + kBatch) & (kPoints - 1);
    }
    result.scalar_batch_ns = timer.ElapsedSeconds() * 1e9 /
                             static_cast<double>(batches * kBatch);
  }
  {
    std::vector<CostEstimate> out(kBatch);
    WallTimer timer;
    size_t offset = 0;
    for (int64_t b = 0; b < batches; ++b) {
      model.PredictStatsBatch(std::span<const Point>(&points[offset], kBatch),
                              out);
      offset = (offset + kBatch) & (kPoints - 1);
    }
    result.stats_batch_ns = timer.ElapsedSeconds() * 1e9 /
                            static_cast<double>(batches * kBatch);
  }
  return result;
}

// Per-site cost of the Stddev() NaN guard: an integer load, a compare
// against zero, and a branch that is never taken on a populated node.
// Best-of-N chunks: preemption only ever inflates a chunk.
double MeasureGuardNs(int64_t calls) {
  constexpr int kChunks = 10;
  const int64_t per_chunk = calls / kChunks > 0 ? calls / kChunks : 1;
  volatile int64_t count = 4;  // A populated summary: guard never fires.
  double best_ns = 0.0;
  int64_t hits = 0;
  for (int chunk = 0; chunk < kChunks; ++chunk) {
    WallTimer timer;
    for (int64_t i = 0; i < per_chunk; ++i) {
      if (count <= 0) ++hits;
      KeepAlive(hits);
    }
    const double ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(per_chunk);
    if (chunk == 0 || ns < best_ns) best_ns = ns;
  }
  return best_ns;
}

// Per-point cost of Prediction -> CostEstimate conversion — the only work
// PredictStatsBatch adds over PredictBatch (the batch converts a scratch
// vector of Predictions after the shared descent loop).
double MeasureConversionNs(int64_t calls) {
  constexpr int kChunks = 10;
  const int64_t per_chunk = calls / kChunks > 0 ? calls / kChunks : 1;
  constexpr size_t kPool = 256;
  std::vector<Prediction> pool(kPool);
  for (size_t i = 0; i < kPool; ++i) {
    pool[i].value = static_cast<double>(i);
    pool[i].stddev = 1.0;
    pool[i].count = static_cast<int64_t>(i + 1);
    pool[i].reliable = true;
  }
  double best_ns = 0.0;
  double sink = 0.0;
  for (int chunk = 0; chunk < kChunks; ++chunk) {
    WallTimer timer;
    for (int64_t i = 0; i < per_chunk; ++i) {
      const CostEstimate e = CostEstimate::FromPrediction(
          pool[static_cast<size_t>(i) & (kPool - 1)]);
      sink += e.value + e.stddev;
    }
    KeepAlive(sink);
    const double ns =
        timer.ElapsedSeconds() * 1e9 / static_cast<double>(per_chunk);
    if (chunk == 0 || ns < best_ns) best_ns = ns;
  }
  return best_ns;
}

int Main(int argc, char** argv) {
  const int64_t ops =
      std::atoll(ArgValue(argc, argv, "ops", "400000").c_str());
  if (ops <= 0) {
    std::fprintf(stderr, "--ops must be positive\n");
    return 1;
  }

  std::printf(
      "== Variance-currency overhead (%lld ops per loop) ==\n\n",
      static_cast<long long>(ops));

  const double guard_ns = MeasureGuardNs(ops * 8);
  const double conversion_ns = MeasureConversionNs(ops * 8);
  const PathCost cost = MeasurePaths(ops);

  const auto delta_pct = [](double base, double with) {
    return base > 0.0 ? (with - base) / base * 100.0 : 0.0;
  };

  TablePrinter modes({"path", "predict ns/op", "delta %"});
  modes.AddRow({"scalar predict", TablePrinter::Num(cost.scalar_predict_ns, 1),
                "0.0"});
  modes.AddRow(
      {"predict stats", TablePrinter::Num(cost.predict_stats_ns, 1),
       TablePrinter::Num(
           delta_pct(cost.scalar_predict_ns, cost.predict_stats_ns), 1)});
  modes.AddRow({"scalar batch 256", TablePrinter::Num(cost.scalar_batch_ns, 1),
                "0.0"});
  modes.AddRow(
      {"stats batch 256", TablePrinter::Num(cost.stats_batch_ns, 1),
       TablePrinter::Num(delta_pct(cost.scalar_batch_ns, cost.stats_batch_ns),
                         1)});
  modes.Print(std::cout);

  // The scalar-path bound. PredictInternal has two stddev sites (the
  // reliable node and the root fallback), but they sit on mutually
  // exclusive branches: exactly ONE executes per descent, so one guard per
  // predict is the honest charge — each Stddev() call adds one count <= 0
  // compare over the inline sqrt it replaced. The conversion bound caps
  // what the stats BATCH adds per point over the scalar batch: one
  // Prediction -> CostEstimate field copy.
  constexpr double kGuardsPerPredict = 1.0;
  constexpr double kBudgetPct = 2.0;
  const double guard_bound_pct =
      guard_ns * kGuardsPerPredict / cost.scalar_predict_ns * 100.0;
  const double conversion_bound_pct =
      conversion_ns / cost.scalar_predict_ns * 100.0;
  const bool pass =
      guard_bound_pct < kBudgetPct && conversion_bound_pct < kBudgetPct;

  std::printf("\n");
  TablePrinter bound({"overhead source", "ns/call", "bound %", "budget %",
                      "verdict"});
  bound.AddRow({"stddev guard", TablePrinter::Num(guard_ns, 2),
                TablePrinter::Num(guard_bound_pct, 3),
                TablePrinter::Num(kBudgetPct, 1),
                guard_bound_pct < kBudgetPct ? "PASS" : "FAIL"});
  bound.AddRow({"stats conversion", TablePrinter::Num(conversion_ns, 2),
                TablePrinter::Num(conversion_bound_pct, 3),
                TablePrinter::Num(kBudgetPct, 1),
                conversion_bound_pct < kBudgetPct ? "PASS" : "FAIL"});
  bound.Print(std::cout);

  std::printf(
      "\n%s: scalar-path overhead bound %s %.1f%% of the predict cost\n"
      "(the NaN guard inside Stddev() is all the refactor adds to the\n"
      "scalar path; the conversion bound caps the stats batch's extra\n"
      "per-point work over the scalar batch)\n",
      pass ? "PASS" : "FAIL", pass ? "<" : ">=", kBudgetPct);

  const int json_status = MaybeWriteBenchJson(argc, argv, "variance_overhead");
  return pass ? json_status : 1;
}

}  // namespace
}  // namespace mlq

int main(int argc, char** argv) { return mlq::Main(argc, argv); }
