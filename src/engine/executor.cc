#include "engine/executor.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace mlq {

ExecutionStats ExecuteQuery(const Query& query, const Plan& plan,
                            CostCatalog* catalog) {
  assert(query.table != nullptr);
  assert(plan.order.size() == query.predicates.size());

  ExecutionStats stats;
  stats.rows_in = query.table->num_rows();
  stats.evaluations_per_predicate.assign(query.predicates.size(), 0);

  for (int64_t row = 0; row < stats.rows_in; ++row) {
    bool row_passes = true;
    for (int index : plan.order) {
      const UdfPredicate* predicate =
          query.predicates[static_cast<size_t>(index)];
      const UdfPredicate::Outcome outcome =
          predicate->Evaluate(query.table->Row(row));
      ++stats.evaluations_per_predicate[static_cast<size_t>(index)];
      stats.actual_cost_micros += outcome.cost.NominalMicros();
      if (catalog != nullptr) {
        catalog->RecordExecution(predicate->udf(), outcome.model_point,
                                 outcome.cost, outcome.passed);
      }
      if (!outcome.passed) {
        row_passes = false;
        break;  // Short-circuit AND: later predicates are never evaluated.
      }
    }
    if (row_passes) ++stats.rows_out;
  }
  return stats;
}

ExecutionStats ExecuteQueryAdaptive(const Query& query, CostCatalog& catalog) {
  assert(query.table != nullptr);
  ExecutionStats stats;
  stats.rows_in = query.table->num_rows();
  stats.evaluations_per_predicate.assign(query.predicates.size(), 0);

  const size_t n = query.predicates.size();
  std::vector<int> order(n);
  std::vector<double> rank(n);
  for (int64_t row = 0; row < stats.rows_in; ++row) {
    const auto row_values = query.table->Row(row);
    // Rank each predicate at this row's own model point.
    for (size_t i = 0; i < n; ++i) {
      const UdfPredicate* predicate = query.predicates[i];
      const Point point = predicate->ModelPointFor(row_values);
      const double cost = catalog.PredictCostMicros(predicate->udf(), point);
      const double selectivity =
          catalog.PredictSelectivity(predicate->udf(), point);
      rank[i] = cost > 0.0 ? (selectivity - 1.0) / cost
                           : -std::numeric_limits<double>::infinity();
    }
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&rank](int a, int b) {
      return rank[static_cast<size_t>(a)] < rank[static_cast<size_t>(b)];
    });

    bool row_passes = true;
    for (int index : order) {
      const UdfPredicate* predicate =
          query.predicates[static_cast<size_t>(index)];
      const UdfPredicate::Outcome outcome = predicate->Evaluate(row_values);
      ++stats.evaluations_per_predicate[static_cast<size_t>(index)];
      stats.actual_cost_micros += outcome.cost.NominalMicros();
      catalog.RecordExecution(predicate->udf(), outcome.model_point,
                              outcome.cost, outcome.passed);
      if (!outcome.passed) {
        row_passes = false;
        break;
      }
    }
    if (row_passes) ++stats.rows_out;
  }
  return stats;
}

PlannedExecution PlanAndExecute(const Query& query, CostCatalog& catalog,
                                int sample_rows) {
  PlannedExecution result;
  result.plan = PlanQuery(query, catalog, sample_rows);
  result.stats = ExecuteQuery(query, result.plan, &catalog);
  return result;
}

}  // namespace mlq
