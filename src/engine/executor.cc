#include "engine/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <mutex>
#include <numeric>
#include <thread>

#include "obs/obs.h"

namespace mlq {
namespace {

// Shared epilogue for the three execution strategies: one histogram sample
// and one kQueryExec span per query, tagged with input size and actual cost.
void RecordExecObs(const ExecutionStats& stats, int64_t t0_ns, bool enabled) {
  if (!enabled) return;
  obs::CoreMetrics& core = obs::Core();
  core.query_execs.Inc();
  const int64_t dur = obs::NowNs() - t0_ns;
  core.exec_ns.Record(dur);
  MLQ_TRACE_EVENT(obs::TraceEventType::kQueryExec, t0_ns, dur,
                  static_cast<double>(stats.rows_in),
                  stats.actual_cost_micros);
}

}  // namespace

ExecutionStats ExecuteQuery(const Query& query, const Plan& plan,
                            CostCatalog* catalog) {
  assert(query.table != nullptr);
  assert(plan.order.size() == query.predicates.size());
  const bool obs_on = obs::Enabled();
  const int64_t obs_t0 = obs_on ? obs::NowNs() : 0;

  ExecutionStats stats;
  stats.rows_in = query.table->num_rows();
  stats.evaluations_per_predicate.assign(query.predicates.size(), 0);

  for (int64_t row = 0; row < stats.rows_in; ++row) {
    bool row_passes = true;
    for (int index : plan.order) {
      const UdfPredicate* predicate =
          query.predicates[static_cast<size_t>(index)];
      const UdfPredicate::Outcome outcome =
          predicate->Evaluate(query.table->Row(row));
      ++stats.evaluations_per_predicate[static_cast<size_t>(index)];
      stats.actual_cost_micros += outcome.cost.NominalMicros();
      if (catalog != nullptr) {
        catalog->RecordExecution(predicate->udf(), outcome.model_point,
                                 outcome.cost, outcome.passed);
      }
      if (!outcome.passed) {
        row_passes = false;
        break;  // Short-circuit AND: later predicates are never evaluated.
      }
    }
    if (row_passes) ++stats.rows_out;
  }
  RecordExecObs(stats, obs_t0, obs_on);
  return stats;
}

ExecutionStats ExecuteQueryConcurrent(const Query& query, const Plan& plan,
                                      CostCatalog* catalog, int num_threads) {
  assert(query.table != nullptr);
  assert(plan.order.size() == query.predicates.size());
  assert(catalog == nullptr ||
         catalog->concurrency() != CatalogConcurrency::kSingleThread);
  if (num_threads <= 1) return ExecuteQuery(query, plan, catalog);
  const bool obs_on = obs::Enabled();
  const int64_t obs_t0 = obs_on ? obs::NowNs() : 0;

  const int64_t rows = query.table->num_rows();
  const size_t num_predicates = query.predicates.size();
  // The UDF substrates are thread-compatible, not thread-safe: one mutex
  // per predicate keeps each substrate single-threaded while distinct
  // predicates (and all model traffic) proceed in parallel.
  std::vector<std::mutex> predicate_mutexes(num_predicates);

  std::vector<ExecutionStats> per_thread(static_cast<size_t>(num_threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));
  const int64_t chunk = (rows + num_threads - 1) / num_threads;
  for (int t = 0; t < num_threads; ++t) {
    const int64_t begin = t * chunk;
    const int64_t end = std::min(rows, begin + chunk);
    ExecutionStats& local = per_thread[static_cast<size_t>(t)];
    local.evaluations_per_predicate.assign(num_predicates, 0);
    workers.emplace_back([&query, &plan, catalog, &predicate_mutexes, &local,
                          begin, end]() {
      for (int64_t row = begin; row < end; ++row) {
        bool row_passes = true;
        for (int index : plan.order) {
          const UdfPredicate* predicate =
              query.predicates[static_cast<size_t>(index)];
          UdfPredicate::Outcome outcome;
          {
            std::lock_guard<std::mutex> lock(
                predicate_mutexes[static_cast<size_t>(index)]);
            outcome = predicate->Evaluate(query.table->Row(row));
          }
          ++local.evaluations_per_predicate[static_cast<size_t>(index)];
          local.actual_cost_micros += outcome.cost.NominalMicros();
          if (catalog != nullptr) {
            catalog->RecordExecution(predicate->udf(), outcome.model_point,
                                     outcome.cost, outcome.passed);
          }
          if (!outcome.passed) {
            row_passes = false;
            break;
          }
        }
        if (row_passes) ++local.rows_out;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  ExecutionStats stats;
  stats.rows_in = rows;
  stats.evaluations_per_predicate.assign(num_predicates, 0);
  for (const ExecutionStats& local : per_thread) {
    stats.rows_out += local.rows_out;
    stats.actual_cost_micros += local.actual_cost_micros;
    for (size_t i = 0; i < num_predicates; ++i) {
      stats.evaluations_per_predicate[i] +=
          local.evaluations_per_predicate[i];
    }
  }
  if (catalog != nullptr) catalog->FlushFeedback();
  RecordExecObs(stats, obs_t0, obs_on);
  return stats;
}

ExecutionStats ExecuteQueryAdaptive(const Query& query, CostCatalog& catalog) {
  assert(query.table != nullptr);
  const bool obs_on = obs::Enabled();
  const int64_t obs_t0 = obs_on ? obs::NowNs() : 0;
  ExecutionStats stats;
  stats.rows_in = query.table->num_rows();
  stats.evaluations_per_predicate.assign(query.predicates.size(), 0);

  const size_t n = query.predicates.size();
  std::vector<int> order(n);
  std::vector<double> rank(n);
  for (int64_t row = 0; row < stats.rows_in; ++row) {
    const auto row_values = query.table->Row(row);
    // Rank each predicate at this row's own model point.
    for (size_t i = 0; i < n; ++i) {
      const UdfPredicate* predicate = query.predicates[i];
      const Point point = predicate->ModelPointFor(row_values);
      const double cost = catalog.PredictCostMicros(predicate->udf(), point);
      const double selectivity =
          catalog.PredictSelectivity(predicate->udf(), point);
      rank[i] = cost > 0.0 ? (selectivity - 1.0) / cost
                           : -std::numeric_limits<double>::infinity();
    }
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&rank](int a, int b) {
      return rank[static_cast<size_t>(a)] < rank[static_cast<size_t>(b)];
    });

    bool row_passes = true;
    for (int index : order) {
      const UdfPredicate* predicate =
          query.predicates[static_cast<size_t>(index)];
      const UdfPredicate::Outcome outcome = predicate->Evaluate(row_values);
      ++stats.evaluations_per_predicate[static_cast<size_t>(index)];
      stats.actual_cost_micros += outcome.cost.NominalMicros();
      catalog.RecordExecution(predicate->udf(), outcome.model_point,
                              outcome.cost, outcome.passed);
      if (!outcome.passed) {
        row_passes = false;
        break;
      }
    }
    if (row_passes) ++stats.rows_out;
  }
  RecordExecObs(stats, obs_t0, obs_on);
  return stats;
}

ExecutionStats ExecuteQueryAdaptiveBatched(const Query& query,
                                           CostCatalog& catalog,
                                           int block_rows, double risk_k) {
  assert(query.table != nullptr);
  assert(block_rows >= 1);
  const bool risk_aware = risk_k > 0.0;
  const bool obs_on = obs::Enabled();
  const int64_t obs_t0 = obs_on ? obs::NowNs() : 0;
  ExecutionStats stats;
  stats.rows_in = query.table->num_rows();
  stats.evaluations_per_predicate.assign(query.predicates.size(), 0);

  const size_t n = query.predicates.size();
  std::vector<int> order(n);
  std::vector<double> rank(n);
  // Per-predicate probe buffers, reused across blocks. In risk-aware mode
  // the stats batches fill `stats_scratch` and `costs` holds the
  // risk-ADJUSTED per-point cost, so the ranking loop below is shared.
  std::vector<std::vector<Point>> points(n);
  std::vector<std::vector<double>> costs(n);
  std::vector<std::vector<double>> selectivities(n);
  std::vector<CostEstimate> stats_scratch;
  // Per-predicate feedback buffers, flushed once per block through
  // RecordExecutionBatch. Deferring feedback to block end cannot change
  // any decision: the block's probes are precomputed above, and each
  // model's insert sequence is untouched (records stay in row order per
  // predicate, and a model only ever receives its own UDF's feedback).
  std::vector<std::vector<CostCatalog::ExecutionRecord>> feedback(n);

  for (int64_t block_begin = 0; block_begin < stats.rows_in;
       block_begin += block_rows) {
    const int64_t block_end =
        std::min<int64_t>(stats.rows_in, block_begin + block_rows);
    const size_t block_size = static_cast<size_t>(block_end - block_begin);
    // Probe phase: batch the whole block's model points per predicate.
    for (size_t i = 0; i < n; ++i) {
      points[i].clear();
      for (int64_t row = block_begin; row < block_end; ++row) {
        points[i].push_back(
            query.predicates[i]->ModelPointFor(query.table->Row(row)));
      }
      costs[i].resize(block_size);
      selectivities[i].resize(block_size);
      if (risk_aware) {
        stats_scratch.resize(block_size);
        catalog.PredictCostStatsBatch(query.predicates[i]->udf(), points[i],
                                      stats_scratch);
        for (size_t k = 0; k < block_size; ++k) {
          const CostEstimate& e = stats_scratch[k];
          const double denom = std::sqrt(
              static_cast<double>(e.count > 0 ? e.count : 1));
          costs[i][k] = e.value + risk_k * e.stddev / denom;
        }
        catalog.PredictSelectivityStatsBatch(query.predicates[i]->udf(),
                                             points[i], stats_scratch);
        for (size_t k = 0; k < block_size; ++k) {
          selectivities[i][k] = stats_scratch[k].value;
        }
      } else {
        catalog.PredictCostMicrosBatch(query.predicates[i]->udf(), points[i],
                                       costs[i]);
        catalog.PredictSelectivityBatch(query.predicates[i]->udf(), points[i],
                                        selectivities[i]);
      }
    }
    // Evaluation phase: same per-row ranking and short-circuiting as
    // ExecuteQueryAdaptive, reading the precomputed probes.
    for (int64_t row = block_begin; row < block_end; ++row) {
      const size_t k = static_cast<size_t>(row - block_begin);
      const auto row_values = query.table->Row(row);
      for (size_t i = 0; i < n; ++i) {
        const double cost = costs[i][k];
        rank[i] = cost > 0.0 ? (selectivities[i][k] - 1.0) / cost
                             : -std::numeric_limits<double>::infinity();
      }
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&rank](int a, int b) {
        return rank[static_cast<size_t>(a)] < rank[static_cast<size_t>(b)];
      });

      bool row_passes = true;
      for (int index : order) {
        const UdfPredicate* predicate =
            query.predicates[static_cast<size_t>(index)];
        const UdfPredicate::Outcome outcome = predicate->Evaluate(row_values);
        ++stats.evaluations_per_predicate[static_cast<size_t>(index)];
        stats.actual_cost_micros += outcome.cost.NominalMicros();
        feedback[static_cast<size_t>(index)].push_back(
            {outcome.model_point, outcome.cost, outcome.passed});
        if (!outcome.passed) {
          row_passes = false;
          break;
        }
      }
      if (row_passes) ++stats.rows_out;
    }
    // Feedback phase: one batched delivery per predicate for the block.
    for (size_t i = 0; i < n; ++i) {
      catalog.RecordExecutionBatch(query.predicates[i]->udf(), feedback[i]);
      feedback[i].clear();
    }
    // Block boundary: no model lock is held and this thread owns no
    // half-applied feedback, so it is a safe point for the catalog's
    // self-driving arena maintenance. No-op unless a scheduler is
    // registered and its policy fires.
    catalog.MaintenanceTick();
  }
  RecordExecObs(stats, obs_t0, obs_on);
  return stats;
}

PlannedExecution PlanAndExecute(const Query& query, CostCatalog& catalog,
                                int sample_rows) {
  PlannedExecution result;
  result.plan = PlanQuery(query, catalog, sample_rows);
  result.stats = ExecuteQuery(query, result.plan, &catalog);
  return result;
}

}  // namespace mlq
