#include "engine/drift_detector.h"

#include <cmath>

#include "obs/obs.h"

namespace mlq {
namespace {

// Floor added to both horizons before taking their ratio: keeps a
// deterministic workload (both error tracks ~0) reading as stable instead
// of amplifying denormal noise into spurious firings.
constexpr double kErrorFloor = 1e-6;

// Denominator guard for the relative error of near-zero actuals.
constexpr double kActualEps = 1e-9;

}  // namespace

DriftDetector::DriftDetector(const DriftDetectorOptions& options)
    : options_(options) {}

DriftKind DriftDetector::Observe(double predicted, double actual) {
  return ObserveError(std::abs(predicted - actual) /
                      (std::abs(actual) + kActualEps));
}

DriftKind DriftDetector::ObserveError(double relative_error) {
  if (!std::isfinite(relative_error) || relative_error < 0.0) return DriftKind::kNone;
  ++observations_;
  if (observations_ == 1) {
    // Warm start: both horizons adopt the first sample so the ratio begins
    // at 1 instead of climbing from an arbitrary zero.
    fast_error_ = slow_error_ = relative_error;
    return DriftKind::kNone;
  }
  fast_error_ += options_.fast_alpha * (relative_error - fast_error_);
  slow_error_ += options_.slow_alpha * (relative_error - slow_error_);

  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    return DriftKind::kNone;
  }
  if (observations_ < options_.min_observations) return DriftKind::kNone;

  const double ratio = staleness();
  DriftKind kind = DriftKind::kNone;
  if (ratio >= options_.abrupt_ratio) {
    kind = DriftKind::kAbrupt;
  } else if (ratio >= options_.gradual_ratio) {
    if (++gradual_streak_ >= options_.gradual_patience) {
      kind = DriftKind::kGradual;
    }
  } else {
    gradual_streak_ = 0;
  }
  if (kind != DriftKind::kNone) {
    last_fire_ratio_ = ratio;
    // The new error level becomes the baseline; without this reset the
    // ratio would stay elevated and re-fire every evaluation.
    slow_error_ = fast_error_;
    gradual_streak_ = 0;
    cooldown_remaining_ = options_.cooldown;
    ++drift_count_;
    if (obs::Enabled()) obs::Core().drift_events.Inc();
  }
  return kind;
}

double DriftDetector::staleness() const {
  if (observations_ == 0) return 1.0;
  return (fast_error_ + kErrorFloor) / (slow_error_ + kErrorFloor);
}

void DriftDetector::Reset() {
  fast_error_ = 0.0;
  slow_error_ = 0.0;
  observations_ = 0;
  cooldown_remaining_ = 0;
  gradual_streak_ = 0;
  drift_count_ = 0;
  last_fire_ratio_ = 0.0;
}

}  // namespace mlq
