#ifndef MLQ_ENGINE_MAINTENANCE_SCHEDULER_H_
#define MLQ_ENGINE_MAINTENANCE_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "engine/cost_catalog.h"

namespace mlq {

class CatalogGovernor;

// When and how MaintenanceScheduler runs a compaction epoch. All triggers
// are evaluated at Tick(); a value of 0 disables that trigger.
struct MaintenancePolicy {
  // Run an epoch once this many tree compressions have happened (across
  // all catalog arenas) since the last epoch. Compressions are the MLQ's
  // churn signal: every SSEG-guided compression releases node blocks back
  // to the arena, so compression count is a direct proxy for new
  // fragmentation.
  int64_t compression_trigger = 256;

  // Run an epoch once the worst arena's reclaimable slot fraction reaches
  // this value (0 < trigger <= 1 to enable).
  double fragmentation_trigger = 0.6;

  // Run an epoch after this many consecutive idle ticks (ticks where no
  // compression or live-node change was observed) IF there is anything to
  // reclaim. Lets a quiet system tidy up without waiting for churn.
  int idle_tick_trigger = 0;

  // Back-pressure: at least this many ticks must pass between epochs, no
  // matter what the triggers say. Keeps a pathological workload (e.g.
  // compressions every batch) from turning every tick into an epoch.
  int64_t min_ticks_between_epochs = 8;

  // Epoch mode: incremental (bounded CompactArenasStep pauses, traffic
  // interleaves) or stop-the-world CompactArenas().
  bool incremental = true;

  // Per-step relocation budget in node slots for incremental epochs.
  int64_t step_budget_slots = 4096;

  // Summary-decay clock: advance the catalog's decay epochs by 1 every
  // this many ticks (0 disables — the default; meaningful only when the
  // catalog's models were built with a decay half-life). The tick stream
  // comes from the serving loop itself (executor block boundaries, sharded
  // drains), so the clock advances with traffic, not wall time: an idle
  // model does not forget.
  int64_t ticks_per_decay_epoch = 0;

  // Decay-epoch burst applied when the drift detector fires (NotifyDrift):
  // a step change ages the stale summaries several half-lives at once so
  // re-learning dominates immediately; a gradual shift nudges the clock.
  int64_t abrupt_drift_epochs = 8;
  int64_t gradual_drift_epochs = 1;
};

// Cumulative scheduler activity (monotonic; read via stats()).
struct MaintenanceSchedulerStats {
  int64_t ticks = 0;
  int64_t epochs = 0;
  int64_t steps = 0;
  int64_t bytes_reclaimed = 0;
  int64_t max_pause_us = 0;
  // Summary-decay epochs advanced (steady-state ticks + drift bursts).
  int64_t decay_epochs = 0;
  // NotifyDrift calls that carried a non-kNone classification.
  int64_t drift_notifications = 0;
};

// Self-driving arena maintenance: decides *when* the catalog compacts from
// observable signals (compressions since the last epoch, arena
// fragmentation, idle ticks) instead of requiring callers to place
// CompactArenas() calls by hand.
//
// The scheduler registers itself with the catalog on construction; the
// serving stack then drives it through CostCatalog::MaintenanceTick() —
// called by the batched executor at block boundaries and by the sharded
// model's post-drain hook. Tick() is cheap when no trigger fires (one
// signal snapshot + one mutex); when one does, THE CALLING THREAD runs the
// epoch inline through the catalog's normal quiesce path
// (LockForMaintenance + Flush), so no extra thread exists and epochs can
// never overlap (a running_ flag makes concurrent ticks no-ops).
//
// Lifetime: destroy only after serving traffic has quiesced (workers
// joined); the destructor unregisters from the catalog, but ticks already
// past the registration check may still be running.
class MaintenanceScheduler {
 public:
  MaintenanceScheduler(CostCatalog* catalog, const MaintenancePolicy& policy);
  ~MaintenanceScheduler();

  MaintenanceScheduler(const MaintenanceScheduler&) = delete;
  MaintenanceScheduler& operator=(const MaintenanceScheduler&) = delete;

  // Evaluates the policy against the catalog's current signals and runs a
  // compaction epoch inline when one fires. Safe to call from any thread
  // at a point where the caller holds no model or catalog lock.
  void Tick();

  // Forces an epoch now (policy mode still applies). For tools.
  CostCatalog::ArenaMaintenanceStats RunEpochNow();

  // Drift-detector callback (via CostCatalog::NotifyDriftDetected): ages
  // the catalog's windowed summaries by the policy's burst for `kind`, so
  // stale pre-drift evidence stops dominating predictions and fresh
  // feedback re-converges the models. Call with no model or catalog lock
  // held (same contract as Tick). kNone is a no-op.
  void NotifyDrift(DriftKind kind);

  // Registers (or, with nullptr, unregisters) a catalog governor whose
  // OnTick() is forwarded every scheduler tick — after the compaction /
  // decay logic, with no scheduler or catalog lock held, so the governor
  // rides the same serving-driven tick stream as everything else. The
  // governor must outlive all ticks (same lifetime contract as the
  // scheduler's own catalog registration).
  void SetGovernor(CatalogGovernor* governor);

  MaintenanceSchedulerStats stats() const;
  const MaintenancePolicy& policy() const { return policy_; }

 private:
  // Runs one epoch, accumulating into stats_. Caller holds mutex_; the
  // lock is released for the epoch itself (running_ set) and retaken.
  CostCatalog::ArenaMaintenanceStats RunEpochLocked(
      std::unique_lock<std::mutex>& lock);

  CostCatalog* const catalog_;
  const MaintenancePolicy policy_;
  // Governor to forward ticks to; nullptr when none registered.
  std::atomic<CatalogGovernor*> governor_{nullptr};

  mutable std::mutex mutex_;
  // All below guarded by mutex_.
  bool running_ = false;
  int64_t ticks_ = 0;
  int64_t ticks_at_last_epoch_ = 0;
  int64_t compressions_at_last_epoch_ = 0;
  int idle_ticks_ = 0;
  int64_t last_compressions_ = 0;
  int64_t last_live_nodes_ = 0;
  MaintenanceSchedulerStats stats_;
};

}  // namespace mlq

#endif  // MLQ_ENGINE_MAINTENANCE_SCHEDULER_H_
