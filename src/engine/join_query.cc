#include "engine/join_query.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <vector>

namespace mlq {
namespace {

// Mean (cost, selectivity) estimates for a predicate over a stride sample
// of its table, with the stddev of each mean riding along for risk-aware
// placement.
struct PredicateEstimates {
  double cost_micros = 0.0;
  double selectivity = 0.5;
  double cost_stddev = 0.0;
  double selectivity_stddev = 0.0;
};

PredicateEstimates EstimateOver(const UdfPredicate& predicate,
                                const Table& table, CostCatalog& catalog,
                                int sample_rows) {
  PredicateEstimates out;
  const int64_t n = table.num_rows();
  if (n == 0) return out;
  const int64_t stride = n > sample_rows ? n / sample_rows : 1;
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(n / stride) + 1);
  for (int64_t row = 0; row < n; row += stride) {
    points.push_back(predicate.ModelPointFor(table.Row(row)));
  }
  // Stats batches: .value matches the scalar batch predictors bit-for-bit,
  // so the means below are unchanged; the stddevs are new information.
  std::vector<CostEstimate> costs(points.size());
  std::vector<CostEstimate> selectivities(points.size());
  catalog.PredictCostStatsBatch(predicate.udf(), points, costs);
  catalog.PredictSelectivityStatsBatch(predicate.udf(), points,
                                       selectivities);
  double cost = 0.0;
  double selectivity = 0.0;
  double cost_var = 0.0;
  double selectivity_var = 0.0;
  for (size_t s = 0; s < points.size(); ++s) {
    cost += costs[s].value;
    selectivity += selectivities[s].value;
    cost_var += costs[s].stddev * costs[s].stddev;
    selectivity_var += selectivities[s].stddev * selectivities[s].stddev;
  }
  const double samples = static_cast<double>(points.size());
  out.cost_micros = cost / samples;
  out.selectivity = selectivity / samples;
  out.cost_stddev = std::sqrt(cost_var) / samples;
  out.selectivity_stddev = std::sqrt(selectivity_var) / samples;
  return out;
}

// Combined selectivity uncertainty of one side's estimates (root sum of
// squares): > 0 means any selectivity product over that side is uncertain.
double SelectivityUncertainty(const std::vector<PredicateEstimates>& v) {
  double var = 0.0;
  for (const PredicateEstimates& e : v) {
    var += e.selectivity_stddev * e.selectivity_stddev;
  }
  return std::sqrt(var);
}

}  // namespace

double ExpectedJoinRows(const JoinQuery& query) {
  assert(query.left != nullptr && query.right != nullptr);
  std::unordered_map<double, int64_t> right_keys;
  for (int64_t row = 0; row < query.right->num_rows(); ++row) {
    ++right_keys[query.right->Row(row)[static_cast<size_t>(
        query.right_join_column)]];
  }
  double join_rows = 0.0;
  for (int64_t row = 0; row < query.left->num_rows(); ++row) {
    const auto it = right_keys.find(
        query.left->Row(row)[static_cast<size_t>(query.left_join_column)]);
    if (it != right_keys.end()) join_rows += static_cast<double>(it->second);
  }
  return join_rows;
}

JoinPlan PlanJoinQuery(const JoinQuery& query, CostCatalog& catalog,
                       int sample_rows, double risk_k) {
  JoinPlan plan;
  plan.risk_k = risk_k > 0.0 ? risk_k : 0.0;
  plan.estimated_join_rows = ExpectedJoinRows(query);

  std::vector<PredicateEstimates> left_estimates;
  std::vector<PredicateEstimates> right_estimates;
  for (const UdfPredicate* p : query.left_predicates) {
    left_estimates.push_back(EstimateOver(*p, *query.left, catalog, sample_rows));
  }
  for (const UdfPredicate* p : query.right_predicates) {
    right_estimates.push_back(
        EstimateOver(*p, *query.right, catalog, sample_rows));
  }

  // Selectivity products for "every other predicate already applied".
  auto product_excluding = [](const std::vector<PredicateEstimates>& v,
                              int skip) {
    double product = 1.0;
    for (size_t i = 0; i < v.size(); ++i) {
      if (static_cast<int>(i) != skip) product *= v[i].selectivity;
    }
    return product;
  };
  const double all_left = product_excluding(left_estimates, -1);
  const double all_right = product_excluding(right_estimates, -1);

  // Independent last-in-chain comparison for each predicate: evaluations if
  // placed below the join (its side's rows, filtered by the other same-side
  // predicates) vs above it (join rows, filtered by everything else).
  //
  // With risk_k > 0, near-ties (counts within 10%) break toward "below"
  // whenever the other side's selectivities are uncertain: the below count
  // rests on exact base cardinality and same-side estimates only, while the
  // above count additionally multiplies in the other side's (uncertain)
  // selectivity product. Decisive comparisons are never overridden.
  auto decide = [&](const std::vector<PredicateEstimates>& side_estimates,
                    int index, double side_rows, double other_side_product,
                    double other_side_uncertainty) {
    const double below =
        side_rows * product_excluding(side_estimates, index);
    const double above = plan.estimated_join_rows *
                         product_excluding(side_estimates, index) *
                         other_side_product;
    if (plan.risk_k > 0.0 && other_side_uncertainty > 0.0) {
      const double near_tie = 0.1 * std::max(below, above);
      if (std::abs(below - above) <= near_tie) return true;
    }
    return below <= above;  // Fewer (or equal) evaluations below: push down.
  };
  const double left_uncertainty = SelectivityUncertainty(left_estimates);
  const double right_uncertainty = SelectivityUncertainty(right_estimates);
  for (size_t i = 0; i < left_estimates.size(); ++i) {
    plan.left_before.push_back(
        decide(left_estimates, static_cast<int>(i),
               static_cast<double>(query.left->num_rows()), all_right,
               right_uncertainty));
  }
  for (size_t i = 0; i < right_estimates.size(); ++i) {
    plan.right_before.push_back(
        decide(right_estimates, static_cast<int>(i),
               static_cast<double>(query.right->num_rows()), all_left,
               left_uncertainty));
  }

  // Expected cost of the chosen plan (independence assumptions throughout):
  // below-join chains see their side's rows; the join output shrinks by the
  // pushed predicates' selectivities; above-join predicates see that.
  double cost = 0.0;
  double left_rows = static_cast<double>(query.left->num_rows());
  double right_rows = static_cast<double>(query.right->num_rows());
  double pushed_product = 1.0;
  for (size_t i = 0; i < left_estimates.size(); ++i) {
    if (!plan.left_before[i]) continue;
    cost += left_rows * left_estimates[i].cost_micros;
    left_rows *= left_estimates[i].selectivity;
    pushed_product *= left_estimates[i].selectivity;
  }
  for (size_t i = 0; i < right_estimates.size(); ++i) {
    if (!plan.right_before[i]) continue;
    cost += right_rows * right_estimates[i].cost_micros;
    right_rows *= right_estimates[i].selectivity;
    pushed_product *= right_estimates[i].selectivity;
  }
  double above_rows = plan.estimated_join_rows * pushed_product;
  for (size_t i = 0; i < left_estimates.size(); ++i) {
    if (plan.left_before[i]) continue;
    cost += above_rows * left_estimates[i].cost_micros;
    above_rows *= left_estimates[i].selectivity;
  }
  for (size_t i = 0; i < right_estimates.size(); ++i) {
    if (plan.right_before[i]) continue;
    cost += above_rows * right_estimates[i].cost_micros;
    above_rows *= right_estimates[i].selectivity;
  }
  plan.expected_cost_micros = cost;
  return plan;
}

std::string JoinPlan::Explain(const JoinQuery& query) const {
  char buf[160];
  std::string out;
  if (risk_k > 0.0) {
    std::snprintf(
        buf, sizeof(buf),
        "join plan (estimated join rows %.0f, expected cost %.0f us, "
        "risk k=%.2f):\n",
        estimated_join_rows, expected_cost_micros, risk_k);
  } else {
    std::snprintf(
        buf, sizeof(buf),
        "join plan (estimated join rows %.0f, expected cost %.0f us):\n",
        estimated_join_rows, expected_cost_micros);
  }
  out += buf;
  for (size_t i = 0; i < query.left_predicates.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "  %-14s [left]  %s join\n",
                  query.left_predicates[i]->name().c_str(),
                  left_before[i] ? "below" : "above");
    out += buf;
  }
  for (size_t i = 0; i < query.right_predicates.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "  %-14s [right] %s join\n",
                  query.right_predicates[i]->name().c_str(),
                  right_before[i] ? "below" : "above");
    out += buf;
  }
  return out;
}

ExecutionStats ExecuteJoinQuery(const JoinQuery& query, const JoinPlan& plan,
                                CostCatalog* catalog) {
  assert(plan.left_before.size() == query.left_predicates.size());
  assert(plan.right_before.size() == query.right_predicates.size());

  ExecutionStats stats;
  stats.rows_in = query.left->num_rows() + query.right->num_rows();
  stats.evaluations_per_predicate.assign(
      query.left_predicates.size() + query.right_predicates.size(), 0);

  auto evaluate = [&](const UdfPredicate* predicate, size_t stat_index,
                      std::span<const double> row) {
    const UdfPredicate::Outcome outcome = predicate->Evaluate(row);
    ++stats.evaluations_per_predicate[stat_index];
    stats.actual_cost_micros += outcome.cost.NominalMicros();
    if (catalog != nullptr) {
      catalog->RecordExecution(predicate->udf(), outcome.model_point,
                               outcome.cost, outcome.passed);
    }
    return outcome.passed;
  };

  // Build side: right rows surviving their below-join predicates.
  std::unordered_map<double, std::vector<int64_t>> hash_table;
  for (int64_t row = 0; row < query.right->num_rows(); ++row) {
    bool passes = true;
    for (size_t i = 0; i < query.right_predicates.size(); ++i) {
      if (!plan.right_before[i]) continue;
      if (!evaluate(query.right_predicates[i],
                    query.left_predicates.size() + i, query.right->Row(row))) {
        passes = false;
        break;
      }
    }
    if (passes) {
      hash_table[query.right->Row(row)[static_cast<size_t>(
                     query.right_join_column)]]
          .push_back(row);
    }
  }

  // Probe side.
  for (int64_t row = 0; row < query.left->num_rows(); ++row) {
    bool passes = true;
    for (size_t i = 0; i < query.left_predicates.size(); ++i) {
      if (!plan.left_before[i]) continue;
      if (!evaluate(query.left_predicates[i], i, query.left->Row(row))) {
        passes = false;
        break;
      }
    }
    if (!passes) continue;
    const auto it = hash_table.find(
        query.left->Row(row)[static_cast<size_t>(query.left_join_column)]);
    if (it == hash_table.end()) continue;
    for (int64_t right_row : it->second) {
      // Above-join predicates run once per joined pair — exactly the cost
      // behaviour that makes placement matter. (No per-row memoization,
      // like the paper's setting.)
      bool pair_passes = true;
      for (size_t i = 0; i < query.left_predicates.size() && pair_passes; ++i) {
        if (plan.left_before[i]) continue;
        pair_passes = evaluate(query.left_predicates[i], i, query.left->Row(row));
      }
      for (size_t i = 0; i < query.right_predicates.size() && pair_passes; ++i) {
        if (plan.right_before[i]) continue;
        pair_passes = evaluate(query.right_predicates[i],
                               query.left_predicates.size() + i,
                               query.right->Row(right_row));
      }
      if (pair_passes) ++stats.rows_out;
    }
  }
  return stats;
}

}  // namespace mlq
