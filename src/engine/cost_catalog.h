#ifndef MLQ_ENGINE_COST_CATALOG_H_
#define MLQ_ENGINE_COST_CATALOG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "model/mlq_model.h"
#include "udf/costed_udf.h"

namespace mlq {

// The optimizer-side metadata for UDFs: for every UDF, the two cost
// estimators the paper prescribes (one CPU, one disk-IO; Section 1) plus —
// reusing the same machinery — a self-tuning *selectivity* estimator, an
// MLQ whose "cost" values are the 0/1 pass outcomes of the predicate, so
// its block averages are local pass probabilities.
//
// Every executed predicate feeds all three models (the Fig. 1 feedback
// loop); the optimizer reads them when costing plans.
class CostCatalog {
 public:
  struct Entry {
    CostedUdf* udf;
    MlqModel cpu_model;
    MlqModel io_model;
    MlqModel selectivity_model;
  };

  // `memory_limit_bytes` is the per-model budget (the paper's 1.8 KB each).
  explicit CostCatalog(int64_t memory_limit_bytes = 1800);

  CostCatalog(const CostCatalog&) = delete;
  CostCatalog& operator=(const CostCatalog&) = delete;

  // Lazily creates the entry for a UDF.
  Entry& For(CostedUdf* udf);
  // Read-only lookup; nullptr if the UDF has never been registered.
  const Entry* Find(const CostedUdf* udf) const;

  // Records one execution outcome for the UDF at the given model point.
  void RecordExecution(CostedUdf* udf, const Point& model_point,
                       const UdfCost& cost, bool passed);

  // Predicted per-call cost in nominal microseconds (CPU + IO combined).
  double PredictCostMicros(CostedUdf* udf, const Point& model_point);

  // Predicted pass probability in [0.01, 1] (clamped away from 0 so plan
  // cost formulas stay finite); 0.5 when nothing is known yet.
  double PredictSelectivity(CostedUdf* udf, const Point& model_point);

  int size() const { return static_cast<int>(entries_.size()); }
  int64_t memory_limit_bytes() const { return memory_limit_bytes_; }

 private:
  int64_t memory_limit_bytes_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace mlq

#endif  // MLQ_ENGINE_COST_CATALOG_H_
