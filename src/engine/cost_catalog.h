#ifndef MLQ_ENGINE_COST_CATALOG_H_
#define MLQ_ENGINE_COST_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/drift_detector.h"
#include "model/cost_model.h"
#include "obs/telemetry.h"
#include "quadtree/shared_node_arena.h"
#include "udf/costed_udf.h"

namespace mlq {

class MaintenanceScheduler;
class MlqModel;

// How the catalog's models are protected against concurrent access.
enum class CatalogConcurrency {
  // Bare single-threaded models, zero locking — the paper's setting and
  // the default. One planner/executor thread only.
  kSingleThread,
  // Every model behind one mutex (ConcurrentCostModel). Correct under any
  // interleaving; throughput capped at one core per model.
  kGlobalMutex,
  // Sharded serving models (ShardedCostModel): striped locks, queued
  // feedback. Prediction throughput scales across threads; Observe never
  // blocks the prediction path. See docs/concurrency.md.
  kSharded,
};

// The optimizer-side metadata for UDFs: for every UDF, the two cost
// estimators the paper prescribes (one CPU, one disk-IO; Section 1) plus —
// reusing the same machinery — a self-tuning *selectivity* estimator, an
// MLQ whose "cost" values are the 0/1 pass outcomes of the predicate, so
// its block averages are local pass probabilities.
//
// Every executed predicate feeds all three models (the Fig. 1 feedback
// loop); the optimizer reads them when costing plans. In the concurrent
// modes, predictions and feedback may come from many threads at once.
class CostCatalog {
 public:
  // Exponentially weighted windows over recently observed ACTUAL execution
  // outcomes of one UDF — not model re-estimates. This is what the estimate
  // audit compares plan estimates against: a converged model's re-estimate
  // tracks the plan no matter what the workload does, while these windows
  // follow the executions themselves, so drift stays visible after millions
  // of stable observations (see docs/drift.md).
  struct WindowedActuals {
    // Per-call cost in nominal microseconds (CPU + IO combined, the same
    // unit PredictCostMicros reports), on two horizons.
    double fast_cost_micros = 0.0;
    double slow_cost_micros = 0.0;
    // Pass fraction on the same two horizons.
    double fast_selectivity = 0.0;
    double slow_selectivity = 0.0;
    // Executions folded in (0 = no feedback yet, windows meaningless).
    int64_t observations = 0;
  };

  // EWMA weights for WindowedActuals: the fast window reacts within ~5
  // observations, the slow window remembers the last ~50.
  static constexpr double kFastAlpha = 0.2;
  static constexpr double kSlowAlpha = 0.02;

  struct Entry {
    CostedUdf* udf;
    // Owning tenant id (multi-tenant quota accounting; "default" unless
    // the UDF was registered through the tenant-qualified For overload).
    std::string tenant;
    std::unique_ptr<CostModel> cpu_model;
    std::unique_ptr<CostModel> io_model;
    std::unique_ptr<CostModel> selectivity_model;
    // Predictions served through this entry since registration — the
    // governor's traffic / LRU-by-traffic signal. Relaxed: an approximate
    // count read racily by the governor is exactly what is needed.
    mutable std::atomic<int64_t> traffic{0};
    // Entry-level byte budget currently granted (split evenly across the
    // three models by SetEntryByteBudget). Guarded by entries_mutex_ in
    // the concurrent modes, like entries_ itself.
    int64_t budget_bytes = 0;
    // Windowed actual-outcome tracking plus the per-model drift detectors,
    // updated on the feedback path. Guarded by windowed_mutex. Lock order:
    // entries_mutex_ (when held at all) before windowed_mutex; nothing may
    // take entries_mutex_ while holding a windowed_mutex.
    mutable std::mutex windowed_mutex;
    WindowedActuals windowed;
    DriftDetector cost_detector;
    DriftDetector selectivity_detector;
  };

  // One execution outcome, buffered by the batched executor path and
  // delivered through RecordExecutionBatch.
  struct ExecutionRecord {
    Point model_point;
    UdfCost cost;
    bool passed = false;
  };

  // Result of one maintenance epoch (stop-the-world CompactArenas or a
  // CompactArenasIncremental run of bounded steps), summed over all of the
  // catalog's shared arenas.
  struct ArenaMaintenanceStats {
    int64_t physical_bytes_before = 0;
    int64_t physical_bytes_after = 0;
    int64_t bytes_reclaimed = 0;
    int64_t blocks_moved = 0;
    int arenas_compacted = 0;
    // Quiesce windows taken: 1 for stop-the-world, >= 1 for incremental.
    int steps = 0;
    // Longest / cumulative single quiesce window (locks held) in micros —
    // the serving pause the epoch imposed.
    int64_t max_pause_us = 0;
    int64_t total_pause_us = 0;
  };

  // Observable maintenance signals aggregated over the catalog's arenas;
  // what a MaintenanceScheduler policy decides from.
  struct ArenaSignals {
    // Tree compressions recorded by any model in any shared arena since the
    // catalog was created (monotonic).
    int64_t tree_compressions = 0;
    // Worst (highest) reclaimable slot fraction across arenas, in [0, 1].
    double max_fragmentation = 0.0;
    // Live (occupied) node slots across arenas; a cheap change detector.
    int64_t live_nodes = 0;
  };

  // `memory_limit_bytes` is the per-model budget (the paper's 1.8 KB each).
  // `num_shards` only applies to CatalogConcurrency::kSharded.
  explicit CostCatalog(
      int64_t memory_limit_bytes = 1800,
      CatalogConcurrency concurrency = CatalogConcurrency::kSingleThread,
      int num_shards = 4);

  CostCatalog(const CostCatalog&) = delete;
  CostCatalog& operator=(const CostCatalog&) = delete;

  // Lazily creates the entry for a UDF (tenant "default"), or — when the
  // UDF was evicted by the governor — restores it from its snapshot.
  // Thread-safe in concurrent modes.
  Entry& For(CostedUdf* udf);
  // Same, registering the UDF under an explicit tenant id. The tenant is
  // fixed at first registration; later calls (with any tenant) return the
  // existing entry unchanged.
  Entry& For(CostedUdf* udf, std::string_view tenant);
  // Read-only lookup; nullptr if the UDF has never been registered or is
  // currently evicted (Find never triggers a reload).
  const Entry* Find(const CostedUdf* udf) const;

  // Records one execution outcome for the UDF at the given model point.
  void RecordExecution(CostedUdf* udf, const Point& model_point,
                       const UdfCost& cost, bool passed);

  // Batched feedback: applies every record to the UDF's three models with
  // one ObserveBatch call each (one lock round-trip per model in the
  // concurrent modes) instead of three virtual dispatches per record. The
  // per-model insert sequences — hence the trees — are identical to calling
  // RecordExecution in a loop.
  void RecordExecutionBatch(CostedUdf* udf,
                            std::span<const ExecutionRecord> records);

  // Predicted per-call cost in nominal microseconds (CPU + IO combined).
  double PredictCostMicros(CostedUdf* udf, const Point& model_point);

  // Predicted pass probability in [0.01, 1] (clamped away from 0 so plan
  // cost formulas stay finite); 0.5 when nothing is known yet.
  double PredictSelectivity(CostedUdf* udf, const Point& model_point);

  // Batched variants: out[i] corresponds to model_points[i], element-wise
  // identical to the scalar calls. One entry lookup and one batched model
  // call per underlying model instead of 2-3 virtual dispatches (plus, in
  // the concurrent modes, lock round-trips) per point — the form the
  // optimizer's stride-sampling estimators use.
  void PredictCostMicrosBatch(CostedUdf* udf,
                              std::span<const Point> model_points,
                              std::span<double> out);
  void PredictSelectivityBatch(CostedUdf* udf,
                               std::span<const Point> model_points,
                               std::span<double> out);

  // --- Variance-aware prediction currency ----------------------------------
  //
  // Stats forms of the predictors above. Values are bit-identical to the
  // scalar calls (same model probes, same arithmetic); the extra fields
  // carry per-point uncertainty for risk-aware planning:
  //   * cost: CPU and IO estimates combine as independent scaled terms —
  //     value = cpu*kMicrosPerWorkUnit + io*kMicrosPerPageMiss, stddev is
  //     the root-sum-square of the scaled stddevs, count is the smaller
  //     support, reliable requires both.
  //   * selectivity: the unknown-UDF fallback reports the max-uncertainty
  //     prior {0.5, stddev 0.5, count 0, unreliable}.
  // Both cross-check against the entry's windowed actuals: when the fast
  // and slow windows of OBSERVED outcomes disagree strongly (the workload
  // is moving), in-node variance understates true uncertainty, so the
  // windowed disagreement is folded into stddev and `reliable` is dropped.
  CostEstimate PredictCostStats(CostedUdf* udf, const Point& model_point);
  CostEstimate PredictSelectivityStats(CostedUdf* udf,
                                       const Point& model_point);
  void PredictCostStatsBatch(CostedUdf* udf,
                             std::span<const Point> model_points,
                             std::span<CostEstimate> out);
  void PredictSelectivityStatsBatch(CostedUdf* udf,
                                    std::span<const Point> model_points,
                                    std::span<CostEstimate> out);

  // Snapshot of the windowed actual-outcome EWMAs for `udf` (all zeros when
  // the UDF is unknown or has never executed).
  WindowedActuals ReadWindowedActuals(const CostedUdf* udf) const;

  // Decay policy for the catalog's models: entries created AFTER this call
  // build their trees with the given summary half-life (in decay epochs;
  // 0 disables — the default, matching the paper's unbounded-memory-of-the-
  // past summaries). Set it before the first For() on a UDF; existing
  // entries keep the config they were built with.
  void SetModelDecayHalfLife(double half_life);
  double model_decay_half_life() const;

  // Advances every model's summary-decay clock by `epochs`. Called by the
  // maintenance scheduler: one epoch per steady-state interval, a burst
  // after the drift detector fires. No-op for decay-off models.
  void AdvanceDecayEpochs(int64_t epochs);

  // Worst drift-detector staleness (fast/slow windowed-error ratio) across
  // all entries; 1.0 when stable or when no entry has data.
  double MaxModelStaleness() const;

  // Applies any queued feedback in every model (kSharded); no-op in the
  // synchronous modes.
  void FlushFeedback();

  // The shared arena all models over a `dims`-dimensional space allocate
  // from (fanout 2^dims). Lazily created; stable for the catalog's life.
  // Exposed so callers can hand the same slabs to models they build
  // outside the catalog (e.g. PartitionedCostModel sub-models).
  std::shared_ptr<SharedNodeArena> ArenaForDims(int dims);

  // Explicit maintenance epoch: flush all queued feedback, take every
  // model's maintenance lock, and compact every shared arena — rewriting
  // live node blocks contiguously and returning high-water slab memory.
  // Blocks all predictions and feedback for the (short) duration; no
  // prediction changes. Returns what was reclaimed.
  ArenaMaintenanceStats CompactArenas();

  // One bounded incremental compaction step: flush feedback, quiesce every
  // model, and relocate at most `budget_slots` node slots per arena toward
  // the dense layout, then release all locks. Serving proceeds between
  // steps. Accumulates into *stats (steps, pauses, blocks moved, bytes
  // reclaimed). Returns true once every arena is fully dense — at which
  // point the physical footprint equals what stop-the-world CompactArenas
  // would have produced, and predictions / serialized trees are identical.
  bool CompactArenasStep(int64_t budget_slots, ArenaMaintenanceStats* stats);

  // A full incremental epoch: loops CompactArenasStep until convergence,
  // releasing every lock between steps so traffic interleaves with
  // maintenance. Equivalent end state to CompactArenas() with the
  // stop-the-world pause replaced by many bounded pauses.
  ArenaMaintenanceStats CompactArenasIncremental(int64_t budget_slots);

  // Snapshot of the scheduler-facing maintenance signals.
  ArenaSignals ReadArenaSignals() const;

  // Per-entry health snapshot for the telemetry exporter: footprint
  // (bytes, nodes over all three models), windowed NAE (normalized
  // fast-vs-slow deviation of the WindowedActuals cost windows),
  // staleness (worst detector fast/slow ratio), the entry's arena
  // fragmentation, and the derived accuracy-per-byte score. One vector element per catalog entry, in
  // registration order. Intended as the exporter's health provider:
  //   exporter.SetHealthProvider([&] { return catalog.ReadModelHealth(); });
  std::vector<obs::ModelHealth> ReadModelHealth() const;

  // Same snapshot, additionally filling `udfs` (when non-null) with the
  // matching CostedUdf handle per element — one consistent pass under the
  // catalog lock, so the governor can act on exactly the entries it
  // scored (a plain ReadModelHealth + name lookup would race with
  // registration and be O(n^2) at catalog scale).
  std::vector<obs::ModelHealth> ReadModelHealth(
      std::vector<CostedUdf*>* udfs) const;

  // --- Governor hooks (catalog-level budget redistribution) ---------------

  // Re-targets one entry's TOTAL byte budget: each of the entry's three
  // models is resized to max(entry_bytes / 3, kNodeBaseBytes), triggering
  // an eviction-compression pass when shrinking. Returns false when the
  // UDF has no resident entry. Thread-safe in the concurrent modes (same
  // lock order as the maintenance epochs: entries_mutex_, then the models'
  // own synchronization).
  bool SetEntryByteBudget(CostedUdf* udf, int64_t entry_bytes);

  // Evicts a whole resident entry: flushes its queued feedback, serializes
  // its three trees (serialization v2/v3) plus the windowed/drift state
  // into the in-memory snapshot store, and destroys the entry. The next
  // For() on the UDF restores it with bit-identical predictions. Returns
  // false for unknown/already-evicted UDFs and in kSharded mode (shard
  // trees don't round-trip through a single serialized image).
  //
  // Concurrency contract: callers must guarantee no thread holds (or
  // concurrently acquires) a reference to this UDF's entry — evict only
  // UDFs whose traffic has quiesced, or stop serving first. The governor
  // enforces this by evicting only zero-traffic-since-last-rebalance
  // entries and only when eviction is explicitly enabled.
  bool EvictEntry(CostedUdf* udf);

  // Entries currently parked in the snapshot store.
  int evicted_count() const;

  // Sum of serialized snapshot bytes currently parked in the store.
  int64_t evicted_snapshot_bytes() const;

  // Safe point for autonomous maintenance: forwards to the registered
  // scheduler's Tick(), unless a maintenance epoch (or feedback flush) is
  // already running on this thread or another — then it returns
  // immediately (skipping a tick is always safe; re-entering would
  // deadlock on entries_mutex_). Called by the batched executor at block
  // boundaries and by ShardedCostModel's post-drain hook.
  void MaintenanceTick();

  // Registers (or, with nullptr, unregisters) the scheduler MaintenanceTick
  // forwards to. The scheduler must outlive all ticks: unregister (or
  // destroy the scheduler, which unregisters itself) only after serving
  // traffic has quiesced.
  void SetMaintenanceScheduler(MaintenanceScheduler* scheduler);

  // Current physical footprint of the catalog's shared arenas (slab bytes
  // actually allocated — distinct from the per-model logical budgets).
  int64_t ArenaPhysicalBytes() const;

  int size() const;
  int64_t memory_limit_bytes() const { return memory_limit_bytes_; }
  CatalogConcurrency concurrency() const { return concurrency_; }

 private:
  // A snapshot of an evicted entry: the three serialized trees plus the
  // scalar serving state needed to resume exactly where the entry left
  // off. Keyed by CostedUdf pointer in evicted_.
  struct EvictedEntry {
    std::string tenant;
    int64_t budget_bytes = 0;
    int64_t traffic = 0;
    std::vector<uint8_t> cpu_image;
    std::vector<uint8_t> io_image;
    std::vector<uint8_t> selectivity_image;
    WindowedActuals windowed;
    DriftDetector cost_detector;
    DriftDetector selectivity_detector;

    int64_t ImageBytes() const {
      return static_cast<int64_t>(cpu_image.size() + io_image.size() +
                                  selectivity_image.size());
    }
  };

  // Wraps a freshly configured MLQ model according to concurrency_.
  std::unique_ptr<CostModel> MakeModel(const Box& space, int64_t beta);

  // Rebuilds one model from a serialized tree image (reload path); null on
  // malformed input. Caller holds entries_mutex_ in the concurrent modes.
  std::unique_ptr<CostModel> MakeModelFromImage(
      const std::vector<uint8_t>& image, int dims);

  // The bare quadtree model behind `model` under concurrency_ (the catalog
  // built every model, so the wrapping is known). Null in kSharded mode.
  const MlqModel* BareModel(const CostModel* model) const;

  // For(udf, tenant) body with entries_mutex_ already held as required.
  Entry& ForLocked(CostedUdf* udf, std::string_view tenant);

  // Folds one execution outcome into the entry's windowed EWMAs and feeds
  // the drift detectors. Takes entry.windowed_mutex; returns the worst
  // drift classification this outcome triggered.
  DriftKind UpdateWindowed(Entry& entry, const UdfCost& cost, bool passed);

  // Cross-check input for the stats predictors: how far the entry's fast
  // and slow windowed-actual cost EWMAs disagree (in micros), or 0 when
  // the windows agree / lack support. Takes entry.windowed_mutex briefly;
  // the batch predictors read it once per batch, not per point.
  double WindowedCostDisagreement(const Entry& entry) const;

  // Forwards a non-kNone detector verdict to the registered scheduler.
  // Must be called with no catalog or entry lock held.
  void NotifyDriftDetected(DriftKind kind);

  // ArenaForDims body with entries_mutex_ already held (concurrent modes).
  std::shared_ptr<SharedNodeArena>& ArenaForDimsLocked(int dims);

  // Flushes one entry's three models (any queued feedback applied inline).
  static void FlushEntry(Entry& entry);

  // Marks a maintenance epoch / feedback flush as running for the guarded
  // scope so MaintenanceTick() backs off instead of re-entering
  // entries_mutex_ from inside one.
  class BusyScope;

  int64_t memory_limit_bytes_;
  CatalogConcurrency concurrency_;
  int num_shards_;
  // Summary half-life applied to models created from now on (guarded by
  // entries_mutex_ in the concurrent modes, like entries_).
  double model_decay_half_life_ = 0.0;
  // Guards entries_ and arenas_ (lookup + lazy creation) in the concurrent
  // modes; the models themselves carry their own synchronization.
  mutable std::mutex entries_mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
  // Snapshot store for governor-evicted entries (guarded by entries_mutex_
  // in the concurrent modes). In-memory: the serialized images ARE the
  // catalog-persistence format, so spilling them to files is a plain
  // write; the store keeps the round-trip testable without filesystem
  // dependencies.
  std::map<const CostedUdf*, EvictedEntry> evicted_;
  // One shared arena per node fanout (= 2^dims): every model whose space
  // has the same dimensionality draws physical slabs from the same arena,
  // while each tree keeps its own logical byte budget.
  std::map<int, std::shared_ptr<SharedNodeArena>> arenas_;
  // Scheduler MaintenanceTick() forwards to; nullptr when none registered.
  std::atomic<MaintenanceScheduler*> scheduler_{nullptr};
  // > 0 while a maintenance epoch or feedback flush is in flight anywhere;
  // MaintenanceTick() treats that as "not a safe point" and returns.
  std::atomic<int> maintenance_busy_{0};
};

}  // namespace mlq

#endif  // MLQ_ENGINE_COST_CATALOG_H_
