#include "engine/maintenance_scheduler.h"

#include <algorithm>

#include "obs/obs.h"

namespace mlq {

MaintenanceScheduler::MaintenanceScheduler(CostCatalog* catalog,
                                           const MaintenancePolicy& policy)
    : catalog_(catalog), policy_(policy) {
  catalog_->SetMaintenanceScheduler(this);
}

MaintenanceScheduler::~MaintenanceScheduler() {
  catalog_->SetMaintenanceScheduler(nullptr);
}

void MaintenanceScheduler::Tick() {
  // Snapshot the signals before taking mutex_: ReadArenaSignals takes the
  // catalog's entries_mutex_, and holding both at once would order this
  // mutex after the catalog's — while RunEpochLocked orders it before.
  const CostCatalog::ArenaSignals signals = catalog_->ReadArenaSignals();
  if (obs::Enabled()) {
    obs::Core().arena_fragmentation.Set(signals.max_fragmentation);
  }

  std::unique_lock<std::mutex> lock(mutex_);
  ++ticks_;
  ++stats_.ticks;
  const bool idle = signals.tree_compressions == last_compressions_ &&
                    signals.live_nodes == last_live_nodes_;
  idle_ticks_ = idle ? idle_ticks_ + 1 : 0;
  last_compressions_ = signals.tree_compressions;
  last_live_nodes_ = signals.live_nodes;

  // An epoch is already in flight on another thread; its quiesce windows
  // will absorb this tick's churn.
  if (running_) return;
  if (ticks_ - ticks_at_last_epoch_ < policy_.min_ticks_between_epochs) {
    return;
  }

  const int64_t compressions_since =
      signals.tree_compressions - compressions_at_last_epoch_;
  bool trigger = false;
  if (policy_.compression_trigger > 0 &&
      compressions_since >= policy_.compression_trigger) {
    trigger = true;
  }
  if (policy_.fragmentation_trigger > 0 &&
      signals.max_fragmentation >= policy_.fragmentation_trigger) {
    trigger = true;
  }
  // Idle trigger only fires when there is actually something to reclaim;
  // otherwise a quiet system would compact no-op forever.
  if (policy_.idle_tick_trigger > 0 &&
      idle_ticks_ >= policy_.idle_tick_trigger &&
      signals.max_fragmentation > 0.0) {
    trigger = true;
  }
  if (!trigger) return;

  RunEpochLocked(lock);
}

CostCatalog::ArenaMaintenanceStats MaintenanceScheduler::RunEpochNow() {
  std::unique_lock<std::mutex> lock(mutex_);
  return RunEpochLocked(lock);
}

CostCatalog::ArenaMaintenanceStats MaintenanceScheduler::RunEpochLocked(
    std::unique_lock<std::mutex>& lock) {
  running_ = true;
  ticks_at_last_epoch_ = ticks_;
  // Compressions up to the trigger are absorbed by this epoch; churn that
  // lands DURING the epoch counts toward the next trigger.
  const int64_t compressions_at_trigger = last_compressions_;
  lock.unlock();

  const CostCatalog::ArenaMaintenanceStats epoch =
      policy_.incremental
          ? catalog_->CompactArenasIncremental(policy_.step_budget_slots)
          : catalog_->CompactArenas();

  lock.lock();
  running_ = false;
  compressions_at_last_epoch_ = compressions_at_trigger;
  idle_ticks_ = 0;
  ++stats_.epochs;
  stats_.steps += epoch.steps;
  stats_.bytes_reclaimed += epoch.bytes_reclaimed;
  stats_.max_pause_us = std::max(stats_.max_pause_us, epoch.max_pause_us);
  return epoch;
}

MaintenanceSchedulerStats MaintenanceScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mlq
