#include "engine/maintenance_scheduler.h"

#include <algorithm>

#include "engine/catalog_governor.h"
#include "obs/obs.h"

namespace mlq {

MaintenanceScheduler::MaintenanceScheduler(CostCatalog* catalog,
                                           const MaintenancePolicy& policy)
    : catalog_(catalog), policy_(policy) {
  catalog_->SetMaintenanceScheduler(this);
}

MaintenanceScheduler::~MaintenanceScheduler() {
  catalog_->SetMaintenanceScheduler(nullptr);
}

void MaintenanceScheduler::Tick() {
  // Snapshot the signals before taking mutex_: ReadArenaSignals takes the
  // catalog's entries_mutex_, and holding both at once would order this
  // mutex after the catalog's — while RunEpochLocked orders it before.
  const CostCatalog::ArenaSignals signals = catalog_->ReadArenaSignals();
  if (obs::Enabled()) {
    obs::Core().arena_fragmentation.Set(signals.max_fragmentation);
    // The staleness gauge is refreshed here (once per tick, not per
    // feedback record) because the tick already pays for a catalog scan.
    obs::Core().model_staleness.Set(catalog_->MaxModelStaleness());
  }

  bool advance_decay = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++ticks_;
    ++stats_.ticks;
    // The decay clock runs on the raw tick stream, independent of the
    // compaction triggers below (it must advance even when no epoch ever
    // fires). The advance itself happens after mutex_ is released:
    // AdvanceDecayEpochs takes entries_mutex_ plus model locks, which this
    // mutex must never be held across (same ordering rule as
    // ReadArenaSignals above).
    if (policy_.ticks_per_decay_epoch > 0 &&
        ticks_ % policy_.ticks_per_decay_epoch == 0) {
      advance_decay = true;
      ++stats_.decay_epochs;
    }
    const bool idle = signals.tree_compressions == last_compressions_ &&
                      signals.live_nodes == last_live_nodes_;
    idle_ticks_ = idle ? idle_ticks_ + 1 : 0;
    last_compressions_ = signals.tree_compressions;
    last_live_nodes_ = signals.live_nodes;

    // An epoch already in flight on another thread absorbs this tick's
    // churn; back-pressure caps epoch frequency regardless of triggers.
    const bool eligible =
        !running_ &&
        ticks_ - ticks_at_last_epoch_ >= policy_.min_ticks_between_epochs;
    if (eligible) {
      const int64_t compressions_since =
          signals.tree_compressions - compressions_at_last_epoch_;
      bool trigger = false;
      if (policy_.compression_trigger > 0 &&
          compressions_since >= policy_.compression_trigger) {
        trigger = true;
      }
      if (policy_.fragmentation_trigger > 0 &&
          signals.max_fragmentation >= policy_.fragmentation_trigger) {
        trigger = true;
      }
      // Idle trigger only fires when there is actually something to
      // reclaim; otherwise a quiet system would compact no-op forever.
      if (policy_.idle_tick_trigger > 0 &&
          idle_ticks_ >= policy_.idle_tick_trigger &&
          signals.max_fragmentation > 0.0) {
        trigger = true;
      }
      if (trigger) RunEpochLocked(lock);
    }
  }
  if (advance_decay) catalog_->AdvanceDecayEpochs(1);
  // Governor last, with no lock held: a rebalance takes the catalog's
  // entries_mutex_ and model locks, which mutex_ must never be held
  // across (the same ordering rule as the decay advance above).
  CatalogGovernor* governor = governor_.load(std::memory_order_acquire);
  if (governor != nullptr) governor->OnTick();
}

void MaintenanceScheduler::SetGovernor(CatalogGovernor* governor) {
  governor_.store(governor, std::memory_order_release);
}

void MaintenanceScheduler::NotifyDrift(DriftKind kind) {
  if (kind == DriftKind::kNone) return;
  const int64_t epochs = kind == DriftKind::kAbrupt
                             ? policy_.abrupt_drift_epochs
                             : policy_.gradual_drift_epochs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.drift_notifications;
    stats_.decay_epochs += epochs > 0 ? epochs : 0;
  }
  // Outside mutex_, like the tick-driven advance: the burst takes the
  // catalog's entries_mutex_ and every model's locks.
  if (epochs > 0) catalog_->AdvanceDecayEpochs(epochs);
}

CostCatalog::ArenaMaintenanceStats MaintenanceScheduler::RunEpochNow() {
  std::unique_lock<std::mutex> lock(mutex_);
  return RunEpochLocked(lock);
}

CostCatalog::ArenaMaintenanceStats MaintenanceScheduler::RunEpochLocked(
    std::unique_lock<std::mutex>& lock) {
  running_ = true;
  ticks_at_last_epoch_ = ticks_;
  // Compressions up to the trigger are absorbed by this epoch; churn that
  // lands DURING the epoch counts toward the next trigger.
  const int64_t compressions_at_trigger = last_compressions_;
  lock.unlock();

  const CostCatalog::ArenaMaintenanceStats epoch =
      policy_.incremental
          ? catalog_->CompactArenasIncremental(policy_.step_budget_slots)
          : catalog_->CompactArenas();

  lock.lock();
  running_ = false;
  compressions_at_last_epoch_ = compressions_at_trigger;
  idle_ticks_ = 0;
  ++stats_.epochs;
  stats_.steps += epoch.steps;
  stats_.bytes_reclaimed += epoch.bytes_reclaimed;
  stats_.max_pause_us = std::max(stats_.max_pause_us, epoch.max_pause_us);
  return epoch;
}

MaintenanceSchedulerStats MaintenanceScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mlq
