#ifndef MLQ_ENGINE_DRIFT_DETECTOR_H_
#define MLQ_ENGINE_DRIFT_DETECTOR_H_

#include <cstdint>

namespace mlq {

// Classification of a detected workload shift.
enum class DriftKind {
  kNone,
  // A sustained moderate divergence (cost surface moving slowly, e.g. a
  // dataset growing or a cache warming over minutes).
  kGradual,
  // A step change (cost surface jumped, e.g. an index dropped, a table
  // reloaded, a predicate's input distribution switched).
  kAbrupt,
};

// Tuning knobs for DriftDetector. The defaults classify a 2-3x step in the
// observed error level as abrupt within a few dozen observations while
// riding out ordinary execution-cost noise.
struct DriftDetectorOptions {
  // EWMA weights for the two error horizons. The fast track answers "how
  // wrong are we right now"; the slow track is the steady-state baseline.
  double fast_alpha = 0.2;
  double slow_alpha = 0.02;

  // fast/slow ratio at which a single evaluation classifies as abrupt.
  double abrupt_ratio = 3.0;

  // fast/slow ratio that, sustained for `gradual_patience` consecutive
  // observations, classifies as gradual.
  double gradual_ratio = 1.5;
  int gradual_patience = 48;

  // No classification until both horizons have seen this many samples —
  // a cold model's large-but-shrinking errors are learning, not drift.
  int64_t min_observations = 64;

  // Observations to ignore after a firing, giving the re-learning models
  // (and the reset baseline) time to settle before the next verdict.
  int64_t cooldown = 256;
};

// Windowed drift detection over a stream of (predicted, actual) pairs.
//
// The lifetime-aggregate audit gauges go blind once a model converges: after
// enough feedback, the model's own re-estimate tracks the plan estimate no
// matter what the workload does (see docs/drift.md). This detector instead
// keeps two exponentially weighted windows over the *relative error* of each
// observation and compares them: the fast window reacts within a handful of
// samples, the slow window remembers the steady state. A fast/slow ratio
// near 1 means "as wrong as usual"; a large ratio means the error level
// itself changed — drift.
//
// On a firing the slow baseline is reset to the fast track (the new regime
// becomes the norm) and a cooldown starts, so one drift event produces one
// classification, not a burst.
//
// Thread-compatible, not thread-safe: callers serialize access (CostCatalog
// guards each entry's detectors with the entry's windowed mutex).
class DriftDetector {
 public:
  explicit DriftDetector(const DriftDetectorOptions& options = {});

  // Feeds one (predicted, actual) pair; returns the classification this
  // observation triggered (almost always kNone).
  DriftKind Observe(double predicted, double actual);

  // Same, for callers that already computed a relative error (>= 0).
  // Non-finite or negative errors are discarded.
  DriftKind ObserveError(double relative_error);

  // Current fast/slow error ratio (the model-staleness signal; ~1 when the
  // error level is stable, large when the recent errors dwarf the
  // baseline). 1 before any data.
  double staleness() const;

  // Raw EWMA error levels behind the ratio: the fast track is the
  // freshest windowed accuracy reading (the health snapshot's NAE), the
  // slow track the steady-state baseline.
  double fast_error() const { return fast_error_; }
  double slow_error() const { return slow_error_; }

  // fast/slow ratio at the moment of the most recent firing (0 before any
  // firing). staleness() itself re-baselines to ~1 immediately after a
  // firing, so event payloads read this instead.
  double last_fire_ratio() const { return last_fire_ratio_; }

  int64_t observations() const { return observations_; }
  int64_t drift_count() const { return drift_count_; }
  const DriftDetectorOptions& options() const { return options_; }

  // Forgets all state (horizons, cooldown, counters).
  void Reset();

 private:
  DriftDetectorOptions options_;
  double fast_error_ = 0.0;
  double slow_error_ = 0.0;
  int64_t observations_ = 0;
  int64_t cooldown_remaining_ = 0;
  int gradual_streak_ = 0;
  int64_t drift_count_ = 0;
  double last_fire_ratio_ = 0.0;
};

}  // namespace mlq

#endif  // MLQ_ENGINE_DRIFT_DETECTOR_H_
