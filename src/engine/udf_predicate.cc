#include "engine/udf_predicate.h"

#include <cassert>

namespace mlq {

UdfPredicate::UdfPredicate(std::string name, CostedUdf* udf,
                           std::vector<int> column_of, Point constants,
                           int64_t min_result_count)
    : name_(std::move(name)),
      udf_(udf),
      column_of_(std::move(column_of)),
      constants_(constants),
      min_result_count_(min_result_count) {
  assert(udf_ != nullptr);
  const int dims = udf_->model_space().dims();
  assert(static_cast<int>(column_of_.size()) == dims);
  assert(constants_.dims() == dims);
}

Point UdfPredicate::ModelPointFor(std::span<const double> row) const {
  Point p(constants_.dims());
  for (int d = 0; d < p.dims(); ++d) {
    const int column = column_of_[static_cast<size_t>(d)];
    if (column >= 0) {
      assert(column < static_cast<int>(row.size()));
      p[d] = row[static_cast<size_t>(column)];
    } else {
      p[d] = constants_[d];
    }
  }
  return p;
}

UdfPredicate::Outcome UdfPredicate::Evaluate(std::span<const double> row) const {
  Outcome outcome;
  outcome.model_point = ModelPointFor(row);
  outcome.cost = udf_->Execute(outcome.model_point);
  outcome.passed = udf_->last_result_count() >= min_result_count_;
  return outcome;
}

}  // namespace mlq
