#include "engine/query_optimizer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "optimizer/predicate_ordering.h"

namespace mlq {

std::string Plan::Explain() const {
  std::string out = "plan (expected cost/row = ";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.2f us):\n",
                expected_cost_per_row_micros);
  out += buf;
  for (size_t i = 0; i < order.size(); ++i) {
    const PlannedPredicate& p = estimates[static_cast<size_t>(order[i])];
    std::snprintf(buf, sizeof(buf), "  %zu. %-12s cost=%9.2f us  sel=%.3f\n",
                  i + 1, p.predicate->name().c_str(), p.estimated_cost_micros,
                  p.estimated_selectivity);
    out += buf;
  }
  return out;
}

Plan PlanQuery(const Query& query, CostCatalog& catalog, int sample_rows) {
  assert(query.table != nullptr);
  Plan plan;
  plan.estimates.reserve(query.predicates.size());

  // Deterministic stride sample of the table's rows; per-row model points
  // differ, so estimates are sample averages.
  const int64_t n = query.table->num_rows();
  const int64_t stride =
      n > sample_rows ? n / sample_rows : 1;

  std::vector<PredicateEstimate> estimates;
  for (const UdfPredicate* predicate : query.predicates) {
    double cost_sum = 0.0;
    double selectivity_sum = 0.0;
    int64_t samples = 0;
    for (int64_t row = 0; row < n; row += stride) {
      const Point point = predicate->ModelPointFor(query.table->Row(row));
      cost_sum += catalog.PredictCostMicros(predicate->udf(), point);
      selectivity_sum += catalog.PredictSelectivity(predicate->udf(), point);
      ++samples;
    }
    PlannedPredicate planned;
    planned.predicate = predicate;
    if (samples > 0) {
      planned.estimated_cost_micros = cost_sum / static_cast<double>(samples);
      planned.estimated_selectivity =
          selectivity_sum / static_cast<double>(samples);
    } else {
      planned.estimated_selectivity = 0.5;
    }
    plan.estimates.push_back(planned);
    estimates.push_back(PredicateEstimate{
        predicate->name(), planned.estimated_cost_micros,
        planned.estimated_selectivity});
  }

  const OrderingResult ordering = OrderPredicates(estimates);
  plan.order = ordering.order;
  plan.expected_cost_per_row_micros = ordering.expected_cost_per_tuple;
  return plan;
}

}  // namespace mlq
