#include "engine/query_optimizer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

#include "obs/obs.h"
#include "optimizer/predicate_ordering.h"

namespace mlq {

std::string Plan::Explain() const {
  std::string out = "plan (expected cost/row = ";
  char buf[160];
  if (risk_k > 0.0) {
    std::snprintf(buf, sizeof(buf), "%.2f us, risk(k=%.2f)/row = %.2f us):\n",
                  expected_cost_per_row_micros, risk_k,
                  risk_cost_per_row_micros);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f us):\n",
                  expected_cost_per_row_micros);
  }
  out += buf;
  for (size_t i = 0; i < order.size(); ++i) {
    const PlannedPredicate& p = estimates[static_cast<size_t>(order[i])];
    // The +/- terms are ~95% confidence half-widths around the sample-mean
    // estimates; n is the weakest model support behind the samples.
    std::snprintf(buf, sizeof(buf),
                  "  %zu. %-12s cost=%9.2f +/-%.2f us  sel=%.3f +/-%.3f  "
                  "n=%lld\n",
                  i + 1, p.predicate->name().c_str(), p.estimated_cost_micros,
                  p.CostConfidenceHalfWidthMicros(), p.estimated_selectivity,
                  1.96 * p.estimated_selectivity_stddev,
                  static_cast<long long>(p.support));
    out += buf;
  }
  return out;
}

Plan PlanQuery(const Query& query, CostCatalog& catalog, int sample_rows,
               int planner_threads, double risk_k) {
  assert(query.table != nullptr);
  obs::ScopedLatency latency(obs::Core().plan_ns, obs::Core().plans,
                             obs::TraceEventType::kPlan);
  Plan plan;
  plan.risk_k = risk_k > 0.0 ? risk_k : 0.0;

  // Deterministic stride sample of the table's rows; per-row model points
  // differ, so estimates are sample averages.
  const int64_t n = query.table->num_rows();
  const int64_t stride =
      n > sample_rows ? n / sample_rows : 1;

  const size_t num_predicates = query.predicates.size();
  plan.estimates.assign(num_predicates, PlannedPredicate{});

  const auto estimate_one = [&query, &catalog, &plan, n, stride](size_t i) {
    const UdfPredicate* predicate = query.predicates[i];
    // Materialize the sample's model points, then cost them in one batched
    // catalog call per estimator: the models amortize locking and dispatch
    // over the whole sample instead of paying them per row.
    std::vector<Point> points;
    points.reserve(static_cast<size_t>(n / stride) + 1);
    for (int64_t row = 0; row < n; row += stride) {
      points.push_back(predicate->ModelPointFor(query.table->Row(row)));
    }
    PlannedPredicate& planned = plan.estimates[i];
    planned.predicate = predicate;
    if (points.empty()) {
      planned.estimated_selectivity = 0.5;
      return;
    }
    // Stats batches instead of the scalar batches: .value is bit-identical
    // to what PredictCostMicrosBatch / PredictSelectivityBatch return (same
    // probes, same arithmetic), and the stddev/count ride along for free.
    std::vector<CostEstimate> costs(points.size());
    std::vector<CostEstimate> selectivities(points.size());
    catalog.PredictCostStatsBatch(predicate->udf(), points, costs);
    catalog.PredictSelectivityStatsBatch(predicate->udf(), points,
                                         selectivities);
    double cost_sum = 0.0;
    double selectivity_sum = 0.0;
    double cost_var_sum = 0.0;
    double selectivity_var_sum = 0.0;
    int64_t support = std::numeric_limits<int64_t>::max();
    for (size_t s = 0; s < points.size(); ++s) {
      cost_sum += costs[s].value;
      selectivity_sum += selectivities[s].value;
      cost_var_sum += costs[s].stddev * costs[s].stddev;
      selectivity_var_sum +=
          selectivities[s].stddev * selectivities[s].stddev;
      support = std::min(support, costs[s].count);
    }
    const double samples = static_cast<double>(points.size());
    planned.estimated_cost_micros = cost_sum / samples;
    planned.estimated_selectivity = selectivity_sum / samples;
    // Stddev of the sample MEAN: independent per-point estimates combine
    // as sqrt(sum of variances) / n.
    planned.estimated_cost_stddev = std::sqrt(cost_var_sum) / samples;
    planned.estimated_selectivity_stddev =
        std::sqrt(selectivity_var_sum) / samples;
    planned.support = support;
  };

  // Concurrency-mode switch: predicates are estimated in parallel only
  // when the catalog's models can take concurrent probes. Estimates are
  // written to disjoint slots, so the plan is identical either way.
  const bool parallel_planning =
      planner_threads > 1 && num_predicates > 1 &&
      catalog.concurrency() != CatalogConcurrency::kSingleThread;
  if (parallel_planning) {
    assert(catalog.concurrency() != CatalogConcurrency::kSingleThread);
    std::vector<std::thread> workers;
    const size_t workers_wanted = std::min<size_t>(
        static_cast<size_t>(planner_threads), num_predicates);
    std::atomic<size_t> next{0};
    workers.reserve(workers_wanted);
    for (size_t w = 0; w < workers_wanted; ++w) {
      workers.emplace_back([&estimate_one, &next, num_predicates]() {
        for (size_t i = next.fetch_add(1); i < num_predicates;
             i = next.fetch_add(1)) {
          estimate_one(i);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  } else {
    for (size_t i = 0; i < num_predicates; ++i) estimate_one(i);
  }

  std::vector<PredicateEstimate> estimates;
  estimates.reserve(num_predicates);
  for (const PlannedPredicate& planned : plan.estimates) {
    estimates.push_back(PredicateEstimate{
        planned.predicate->name(), planned.estimated_cost_micros,
        planned.estimated_selectivity, planned.estimated_cost_stddev,
        planned.support});
  }

  RiskPolicy policy;
  policy.k = plan.risk_k;
  const OrderingResult ordering = OrderPredicatesRisk(estimates, policy);
  plan.order = ordering.order;
  plan.expected_cost_per_row_micros = ordering.expected_cost_per_tuple;
  plan.risk_cost_per_row_micros = ordering.risk_cost_per_tuple;
  if (plan.risk_k > 0.0 && obs::Enabled()) {
    obs::Core().risk_plans.Inc();
    // Did the variance signal actually change a decision? Only worth the
    // second (classical) sort when someone is watching the counter.
    const OrderingResult classical = OrderPredicates(estimates);
    if (classical.order != plan.order) obs::Core().risk_reorders.Inc();
  }
  latency.set_args(static_cast<double>(num_predicates),
                   plan.expected_cost_per_row_micros);
  return plan;
}

}  // namespace mlq
