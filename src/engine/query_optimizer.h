#ifndef MLQ_ENGINE_QUERY_OPTIMIZER_H_
#define MLQ_ENGINE_QUERY_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/cost_catalog.h"
#include "engine/table.h"
#include "engine/udf_predicate.h"

namespace mlq {

// A select query with a conjunctive WHERE clause of UDF predicates over one
// table — the exact shape the paper's introduction motivates ("when faced
// with multiple UDFs in the 'where' clause, the order in which the UDF
// predicates are evaluated can make a significant difference").
struct Query {
  const Table* table = nullptr;
  std::vector<const UdfPredicate*> predicates;
};

// Per-predicate plan estimates, for inspection and EXPLAIN-style output.
struct PlannedPredicate {
  const UdfPredicate* predicate = nullptr;
  double estimated_cost_micros = 0.0;
  double estimated_selectivity = 1.0;
  // Uncertainty of the sample-mean estimates above: stddev of the MEAN
  // (per-point stddevs combined across the sample, already divided by the
  // sample size) and the weakest per-point model support behind it.
  double estimated_cost_stddev = 0.0;
  double estimated_selectivity_stddev = 0.0;
  int64_t support = 0;

  // Half-width of the ~95% confidence interval around the cost estimate.
  double CostConfidenceHalfWidthMicros() const {
    return 1.96 * estimated_cost_stddev;
  }
};

// An execution plan: the predicate evaluation order plus its estimates.
struct Plan {
  // Indices into Query::predicates, in evaluation order.
  std::vector<int> order;
  std::vector<PlannedPredicate> estimates;  // Parallel to Query::predicates.
  double expected_cost_per_row_micros = 0.0;
  // The risk knob the plan was costed with and the risk-adjusted expected
  // cost (== expected_cost_per_row_micros when risk_k is 0).
  double risk_k = 0.0;
  double risk_cost_per_row_micros = 0.0;

  std::string Explain() const;
};

// The optimizer: estimates each predicate's per-row cost and selectivity
// from the catalog's self-tuning models — averaged over a deterministic
// sample of rows, since model points vary per row — and orders by the
// classical rank metric (ascending (selectivity - 1) / cost).
//
// `planner_threads` > 1 estimates predicates in parallel (one task per
// predicate; model probes only, no UDF execution) and requires the catalog
// to be in a concurrent mode. The plan is bit-identical to the serial one:
// per-predicate estimates are independent and the sample is deterministic.
//
// `risk_k` > 0 enables risk-aware ordering: each predicate's cost is
// padded by k standard errors (mean + k * stddev / sqrt(support)) before
// ranking, so a noisy cheap-looking predicate loses near-ties against a
// well-supported one. risk_k = 0 (the default) produces the classical
// plan bit-identically — same order, same expected cost.
Plan PlanQuery(const Query& query, CostCatalog& catalog,
               int sample_rows = 32, int planner_threads = 1,
               double risk_k = 0.0);

}  // namespace mlq

#endif  // MLQ_ENGINE_QUERY_OPTIMIZER_H_
