#ifndef MLQ_ENGINE_JOIN_QUERY_H_
#define MLQ_ENGINE_JOIN_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/cost_catalog.h"
#include "engine/executor.h"
#include "engine/table.h"
#include "engine/udf_predicate.h"

namespace mlq {

// Predicate placement around a join — the paper's second motivating
// decision ("whether a join should be performed before UDF execution
// depends on the cost of the UDFs", Section 1; Hellerstein & Stonebraker's
// predicate migration). A query of the shape
//
//   select ... from L, R
//   where L.key = R.key and udf_l(L...) and udf_r(R...)
//
// can evaluate each UDF predicate *before* the join (on every base-table
// row) or *after* it (only on rows that survive the join). Pulling an
// expensive predicate above a selective join can save most of its
// evaluations; pushing a cheap selective predicate below the join shrinks
// the join input. The optimizer decides per predicate, using the learned
// cost and selectivity models plus exact join-key statistics.

struct JoinQuery {
  const Table* left = nullptr;
  const Table* right = nullptr;
  int left_join_column = 0;
  int right_join_column = 0;
  // UDF predicates over the left (resp. right) table's columns.
  std::vector<const UdfPredicate*> left_predicates;
  std::vector<const UdfPredicate*> right_predicates;
};

struct JoinPlan {
  // Per predicate (parallel to JoinQuery's vectors): evaluated below the
  // join (true) or above it (false).
  std::vector<bool> left_before;
  std::vector<bool> right_before;
  // Estimates used for the decision, for EXPLAIN-style output.
  double estimated_join_rows = 0.0;
  double expected_cost_micros = 0.0;
  // The risk knob the plan was made with (0 = classical placement).
  double risk_k = 0.0;

  std::string Explain(const JoinQuery& query) const;
};

// Exact number of join result rows (equi-join on the key columns), from
// key-frequency statistics — the table-level statistics a real system
// keeps. O(|L| + |R|).
double ExpectedJoinRows(const JoinQuery& query);

// Chooses a placement for every UDF predicate using catalog estimates.
//
// `risk_k` > 0 makes placement variance-aware on NEAR-TIES only: when the
// below/above evaluation counts are within 10% of each other, the
// predicate is pushed below the join whenever the other side's selectivity
// estimates carry any uncertainty — the below-join count depends only on
// exact base cardinality and same-side selectivities, while the above-join
// count additionally inherits the other side's (uncertain) selectivity
// product. risk_k = 0 (the default) reproduces the classical placement
// bit-identically. Decisive (non-tie) comparisons are never overridden.
JoinPlan PlanJoinQuery(const JoinQuery& query, CostCatalog& catalog,
                       int sample_rows = 32, double risk_k = 0.0);

// Hash-join executor honoring the placement; feeds every UDF execution
// back into the catalog when non-null. Returns the same stats shape as the
// single-table executor (evaluations_per_predicate lists left predicates
// first, then right).
ExecutionStats ExecuteJoinQuery(const JoinQuery& query, const JoinPlan& plan,
                                CostCatalog* catalog);

}  // namespace mlq

#endif  // MLQ_ENGINE_JOIN_QUERY_H_
