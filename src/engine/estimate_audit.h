#ifndef MLQ_ENGINE_ESTIMATE_AUDIT_H_
#define MLQ_ENGINE_ESTIMATE_AUDIT_H_

#include <string>
#include <vector>

#include "engine/cost_catalog.h"
#include "engine/query_optimizer.h"

namespace mlq {

// LEO-style estimate auditing (Section 2.2 of the paper discusses DB2's
// LEarning Optimizer, which compares the optimizer's estimates with what
// execution actually observed). After a query runs, AuditPlan re-executes
// the *estimation* side — not the UDFs — against the catalog's post-feedback
// models and reports, per predicate, how far the plan's estimates were off.
// Useful for monitoring model quality in production and for tests that
// assert the feedback loop actually closes.

struct PredicateAudit {
  std::string predicate_name;
  // The plan's estimates at planning time.
  double estimated_cost_micros = 0.0;
  double estimated_selectivity = 1.0;
  // Catalog estimates for the same rows after execution feedback.
  double post_cost_micros = 0.0;
  double post_selectivity = 1.0;

  // Multiplicative estimation error (max of ratio and inverse ratio; 1 is
  // perfect). Infinite when one side is zero and the other is not.
  double CostDrift() const;
  double SelectivityDrift() const;
};

struct PlanAudit {
  std::vector<PredicateAudit> predicates;
  // Largest cost drift over all predicates (the "most wrong" estimate).
  double max_cost_drift = 1.0;

  std::string ToString() const;
};

// Compares `plan`'s estimates with fresh estimates from `catalog` over the
// same sample of `query`'s rows.
PlanAudit AuditPlan(const Query& query, const Plan& plan,
                    CostCatalog& catalog, int sample_rows = 32);

}  // namespace mlq

#endif  // MLQ_ENGINE_ESTIMATE_AUDIT_H_
