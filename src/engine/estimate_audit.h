#ifndef MLQ_ENGINE_ESTIMATE_AUDIT_H_
#define MLQ_ENGINE_ESTIMATE_AUDIT_H_

#include <string>
#include <vector>

#include "engine/cost_catalog.h"
#include "engine/query_optimizer.h"

namespace mlq {

// LEO-style estimate auditing (Section 2.2 of the paper discusses DB2's
// LEarning Optimizer, which compares the optimizer's estimates with what
// execution actually observed). After a query runs, AuditPlan re-executes
// the *estimation* side — not the UDFs — against the catalog's post-feedback
// models and reports, per predicate, how far the plan's estimates were off.
// Useful for monitoring model quality in production and for tests that
// assert the feedback loop actually closes.

struct PredicateAudit {
  std::string predicate_name;
  // The plan's estimates at planning time.
  double estimated_cost_micros = 0.0;
  double estimated_selectivity = 1.0;
  // The plan's own uncertainty about its cost estimate (stddev of the
  // sample mean) and the weakest model support behind it — copied from
  // PlannedPredicate so the audit can judge whether reality landed inside
  // the interval the planner claimed.
  double estimated_cost_stddev = 0.0;
  int64_t support = 0;
  // Catalog estimates for the same rows after execution feedback.
  double post_cost_micros = 0.0;
  double post_selectivity = 1.0;
  // Fast-window EWMAs of the ACTUAL outcomes recently observed for this
  // predicate's UDF (CostCatalog::WindowedActuals), and how many
  // executions they summarize (0 = no feedback yet, windows unusable).
  double windowed_cost_micros = 0.0;
  double windowed_selectivity = 1.0;
  int64_t windowed_observations = 0;

  // Multiplicative estimation error (max of ratio and inverse ratio; 1 is
  // perfect). Infinite when one side is zero and the other is not.
  double CostDrift() const;
  double SelectivityDrift() const;

  // Same drift measure, but against the windowed observed actuals instead
  // of the catalog's re-estimate. This is the signal that stays honest
  // after the model converges: the re-estimate follows the model (which
  // produced the plan), while the window follows the executions.
  double WindowedCostDrift() const;
  double WindowedSelectivityDrift() const;

  // The drift the audit aggregates and exports: windowed when execution
  // feedback exists, else the re-estimate drift (a cold model has no
  // window to compare against).
  double EffectiveCostDrift() const;
  double EffectiveSelectivityDrift() const;

  // Calibration check: did the windowed ACTUAL cost land inside the plan's
  // ~95% confidence interval (estimate +/- 1.96 * stddev)? False when no
  // windowed observations exist, or when the interval is degenerate (zero
  // stddev) and the actual moved away from the point estimate.
  bool WindowedWithinConfidence() const;
};

struct PlanAudit {
  std::vector<PredicateAudit> predicates;
  // Largest effective cost drift over all predicates (the "most wrong"
  // estimate, judged against windowed actuals where available).
  double max_cost_drift = 1.0;
  // Fraction of predicates WITH windowed feedback whose actual cost landed
  // inside the plan's claimed confidence interval; -1 when no predicate has
  // windowed feedback yet. 1.0 = the planner's uncertainty estimates are
  // honest (or conservative); low values mean the intervals are too tight.
  double confidence_coverage = -1.0;

  std::string ToString() const;
};

// Compares `plan`'s estimates with fresh estimates from `catalog` over the
// same sample of `query`'s rows.
PlanAudit AuditPlan(const Query& query, const Plan& plan,
                    CostCatalog& catalog, int sample_rows = 32);

}  // namespace mlq

#endif  // MLQ_ENGINE_ESTIMATE_AUDIT_H_
