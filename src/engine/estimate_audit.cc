#include "engine/estimate_audit.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>

namespace mlq {
namespace {

double Drift(double before, double after) {
  if (before == after) return 1.0;  // Covers 0 == 0.
  if (before <= 0.0 || after <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(before / after, after / before);
}

}  // namespace

double PredicateAudit::CostDrift() const {
  return Drift(estimated_cost_micros, post_cost_micros);
}

double PredicateAudit::SelectivityDrift() const {
  return Drift(estimated_selectivity, post_selectivity);
}

std::string PlanAudit::ToString() const {
  std::string out = "estimate audit:\n";
  char buf[200];
  for (const PredicateAudit& p : predicates) {
    std::snprintf(buf, sizeof(buf),
                  "  %-14s cost %9.2f -> %9.2f us (x%.2f)   sel %.3f -> %.3f "
                  "(x%.2f)\n",
                  p.predicate_name.c_str(), p.estimated_cost_micros,
                  p.post_cost_micros, p.CostDrift(), p.estimated_selectivity,
                  p.post_selectivity, p.SelectivityDrift());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  max cost drift: x%.2f\n", max_cost_drift);
  out += buf;
  return out;
}

PlanAudit AuditPlan(const Query& query, const Plan& plan,
                    CostCatalog& catalog, int sample_rows) {
  assert(query.table != nullptr);
  assert(plan.estimates.size() == query.predicates.size());
  PlanAudit audit;

  const int64_t n = query.table->num_rows();
  const int64_t stride = n > sample_rows ? n / sample_rows : 1;

  for (size_t i = 0; i < query.predicates.size(); ++i) {
    const UdfPredicate* predicate = query.predicates[i];
    PredicateAudit entry;
    entry.predicate_name = predicate->name();
    entry.estimated_cost_micros = plan.estimates[i].estimated_cost_micros;
    entry.estimated_selectivity = plan.estimates[i].estimated_selectivity;

    double cost_sum = 0.0;
    double selectivity_sum = 0.0;
    int64_t samples = 0;
    for (int64_t row = 0; row < n; row += stride) {
      const Point point = predicate->ModelPointFor(query.table->Row(row));
      cost_sum += catalog.PredictCostMicros(predicate->udf(), point);
      selectivity_sum += catalog.PredictSelectivity(predicate->udf(), point);
      ++samples;
    }
    if (samples > 0) {
      entry.post_cost_micros = cost_sum / static_cast<double>(samples);
      entry.post_selectivity = selectivity_sum / static_cast<double>(samples);
    }
    audit.max_cost_drift = std::max(audit.max_cost_drift, entry.CostDrift());
    audit.predicates.push_back(std::move(entry));
  }
  return audit;
}

}  // namespace mlq
