#include "engine/estimate_audit.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/obs.h"

namespace mlq {
namespace {

double Drift(double before, double after) {
  // Zero-cost estimates are legitimate (a predicate whose model has seen no
  // feedback yet, or a selectivity of exactly 0): when both sides are ~0 the
  // estimate and the post-hoc measurement agree, so the drift is 1.0, not a
  // division blow-up. The epsilon also absorbs denormal noise from averaged
  // samples. NaN on either side means a garbled measurement — surface it as
  // infinite drift rather than letting NaN poison max-aggregation downstream
  // (NaN comparisons are always false, so std::max would silently drop it).
  constexpr double kZeroEps = 1e-9;
  if (std::isnan(before) || std::isnan(after)) {
    return std::numeric_limits<double>::infinity();
  }
  if (std::abs(before) <= kZeroEps && std::abs(after) <= kZeroEps) return 1.0;
  if (before <= 0.0 || after <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(before / after, after / before);
}

}  // namespace

double PredicateAudit::CostDrift() const {
  return Drift(estimated_cost_micros, post_cost_micros);
}

double PredicateAudit::SelectivityDrift() const {
  return Drift(estimated_selectivity, post_selectivity);
}

double PredicateAudit::WindowedCostDrift() const {
  return Drift(estimated_cost_micros, windowed_cost_micros);
}

double PredicateAudit::WindowedSelectivityDrift() const {
  return Drift(estimated_selectivity, windowed_selectivity);
}

double PredicateAudit::EffectiveCostDrift() const {
  return windowed_observations > 0 ? WindowedCostDrift() : CostDrift();
}

double PredicateAudit::EffectiveSelectivityDrift() const {
  return windowed_observations > 0 ? WindowedSelectivityDrift()
                                   : SelectivityDrift();
}

bool PredicateAudit::WindowedWithinConfidence() const {
  if (windowed_observations <= 0) return false;
  // A degenerate interval (zero stddev) still tolerates epsilon-level
  // numeric noise between the estimate and the windowed EWMA.
  constexpr double kSlack = 1e-9;
  const double half_width = 1.96 * estimated_cost_stddev + kSlack;
  return std::abs(windowed_cost_micros - estimated_cost_micros) <= half_width;
}

std::string PlanAudit::ToString() const {
  std::string out = "estimate audit:\n";
  char buf[200];
  for (const PredicateAudit& p : predicates) {
    std::snprintf(buf, sizeof(buf),
                  "  %-14s cost %9.2f -> %9.2f us (x%.2f)   sel %.3f -> %.3f "
                  "(x%.2f)\n",
                  p.predicate_name.c_str(), p.estimated_cost_micros,
                  p.post_cost_micros, p.CostDrift(), p.estimated_selectivity,
                  p.post_selectivity, p.SelectivityDrift());
    out += buf;
    if (p.windowed_observations > 0) {
      std::snprintf(buf, sizeof(buf),
                    "  %-14s   windowed actuals %9.2f us (x%.2f)   sel %.3f "
                    "(x%.2f) over %lld obs\n",
                    "", p.windowed_cost_micros, p.WindowedCostDrift(),
                    p.windowed_selectivity, p.WindowedSelectivityDrift(),
                    static_cast<long long>(p.windowed_observations));
      out += buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "  max cost drift: x%.2f\n", max_cost_drift);
  out += buf;
  if (confidence_coverage >= 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "  confidence coverage: %.0f%% of windowed actuals inside "
                  "the plan's 95%% CI\n",
                  confidence_coverage * 100.0);
    out += buf;
  }
  return out;
}

PlanAudit AuditPlan(const Query& query, const Plan& plan,
                    CostCatalog& catalog, int sample_rows) {
  assert(query.table != nullptr);
  assert(plan.estimates.size() == query.predicates.size());
  PlanAudit audit;

  const int64_t n = query.table->num_rows();
  const int64_t stride = n > sample_rows ? n / sample_rows : 1;

  for (size_t i = 0; i < query.predicates.size(); ++i) {
    const UdfPredicate* predicate = query.predicates[i];
    PredicateAudit entry;
    entry.predicate_name = predicate->name();
    entry.estimated_cost_micros = plan.estimates[i].estimated_cost_micros;
    entry.estimated_selectivity = plan.estimates[i].estimated_selectivity;
    entry.estimated_cost_stddev = plan.estimates[i].estimated_cost_stddev;
    entry.support = plan.estimates[i].support;

    std::vector<Point> points;
    points.reserve(static_cast<size_t>(n / stride) + 1);
    for (int64_t row = 0; row < n; row += stride) {
      points.push_back(predicate->ModelPointFor(query.table->Row(row)));
    }
    if (!points.empty()) {
      std::vector<double> costs(points.size());
      std::vector<double> selectivities(points.size());
      catalog.PredictCostMicrosBatch(predicate->udf(), points, costs);
      catalog.PredictSelectivityBatch(predicate->udf(), points,
                                      selectivities);
      double cost_sum = 0.0;
      double selectivity_sum = 0.0;
      for (size_t s = 0; s < points.size(); ++s) {
        cost_sum += costs[s];
        selectivity_sum += selectivities[s];
      }
      const double samples = static_cast<double>(points.size());
      entry.post_cost_micros = cost_sum / samples;
      entry.post_selectivity = selectivity_sum / samples;
    }
    const CostCatalog::WindowedActuals windowed =
        catalog.ReadWindowedActuals(predicate->udf());
    entry.windowed_observations = windowed.observations;
    if (windowed.observations > 0) {
      entry.windowed_cost_micros = windowed.fast_cost_micros;
      entry.windowed_selectivity = windowed.fast_selectivity;
    }
    audit.max_cost_drift =
        std::max(audit.max_cost_drift, entry.EffectiveCostDrift());
    audit.predicates.push_back(std::move(entry));
  }
  int with_window = 0;
  int covered = 0;
  for (const PredicateAudit& p : audit.predicates) {
    if (p.windowed_observations <= 0) continue;
    ++with_window;
    if (p.WindowedWithinConfidence()) ++covered;
  }
  if (with_window > 0) {
    audit.confidence_coverage =
        static_cast<double>(covered) / static_cast<double>(with_window);
  }
  if (obs::Enabled()) {
    obs::CoreMetrics& core = obs::Core();
    core.plan_audits.Inc();
    double max_sel_drift = 0.0;
    for (const PredicateAudit& p : audit.predicates) {
      max_sel_drift = std::max(max_sel_drift, p.EffectiveSelectivityDrift());
    }
    // The drift gauges are the model-health signal, judged against windowed
    // observed actuals once feedback exists (a converged model's own
    // re-estimate would track the plan forever and mask real workload
    // drift): x1.0 means recent executions match the plan's estimates;
    // large values mean the workload has moved since planning.
    core.max_cost_drift.Set(audit.max_cost_drift);
    core.max_selectivity_drift.Set(max_sel_drift);
    MLQ_TRACE_EVENT(obs::TraceEventType::kPlanAudit, obs::NowNs(), 0,
                    audit.max_cost_drift, max_sel_drift);
  }
  return audit;
}

}  // namespace mlq
