#ifndef MLQ_ENGINE_CATALOG_GOVERNOR_H_
#define MLQ_ENGINE_CATALOG_GOVERNOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "engine/cost_catalog.h"

namespace mlq {

// How CatalogGovernor redistributes byte budget. All byte values are
// entry-level totals (summed over the entry's three models); see
// docs/governor.md for tuning guidance.
struct GovernorPolicy {
  // Total logical bytes the catalog's entries may hold between them. The
  // single invariant the governor enforces unconditionally: the sum of
  // granted entry budgets never exceeds this.
  int64_t global_budget_bytes = 0;

  // No entry is ever shrunk below this (cold models keep a coarse summary
  // so a returning workload warm-starts instead of relearning from zero).
  // Clamped to at least 3 roots' charge — below that a budget cannot be
  // enforced at all.
  int64_t min_entry_bytes = 256;

  // Optional per-entry ceiling (0 = no ceiling beyond the global budget).
  // Keeps one hot tenant from absorbing the entire pool.
  int64_t max_entry_bytes = 0;

  // Per-tenant byte quotas. An absent tenant is unconstrained (up to the
  // global budget). When a tenant's proportional allocations exceed its
  // quota, they are scaled down to fit and the freed bytes go to the
  // other tenants' entries in the same rebalance.
  std::map<std::string, int64_t> tenant_quota_bytes;

  // Rebalance cadence: OnTick() runs a rebalance every this many ticks.
  int64_t ticks_per_rebalance = 16;

  // Per-rebalance change clamp, as a fraction of the entry's current
  // budget (hysteresis: 0.5 means an entry can at most halve or grow by
  // half per rebalance). Keeps allocations from oscillating when traffic
  // shares jitter.
  double max_step_fraction = 0.5;

  // Budget changes smaller than this many bytes are not applied (dead
  // band; a SetEntryByteBudget that shrinks triggers compression, so
  // chasing noise has a real cost).
  int64_t min_change_bytes = 64;

  // Weight of the error signals in an entry's demand score:
  //   demand = traffic_share * (1 + error_weight * windowed_nae)
  //            * min(staleness, staleness_cap)
  // Drifting entries (staleness > 1, NAE > 0) bid for more bytes than
  // their traffic share alone.
  double error_weight = 1.0;
  double staleness_cap = 8.0;

  // Whole-model admission control: when > 0, at most this many entries
  // stay resident; beyond it the governor evicts the lowest-traffic
  // entries (snapshot-to-store, lazily reloaded by the next For()).
  // Eviction requires the catalog contract documented at
  // CostCatalog::EvictEntry — only enable it when serving threads cannot
  // hold entry references across rebalances (or in single-thread use).
  int max_resident_models = 0;
};

// Cumulative governor activity (monotonic; read via stats()).
struct GovernorStats {
  int64_t ticks = 0;
  int64_t rebalances = 0;
  // Sum over rebalances of bytes granted to entries that grew / taken
  // from entries that shrank.
  int64_t bytes_granted = 0;
  int64_t bytes_reclaimed = 0;
  // Entries whose budget changed across all rebalances.
  int64_t entries_rebalanced = 0;
  int64_t evictions = 0;
  // Allocation state after the most recent rebalance.
  int64_t allocated_bytes = 0;
  int resident_models = 0;
};

// The fleet-level budget controller: where the paper tunes ONE model under
// ONE byte budget, the governor tunes the catalog — thousands of models
// across many tenants sharing one global byte pool.
//
// Driven by MaintenanceScheduler ticks (SetGovernor wires it into the
// serving loop's tick stream) or called directly via RebalanceNow(). Each
// rebalance reads CostCatalog::ReadModelHealth() and:
//
//  1. Scores every entry's demand: traffic share, boosted by the windowed
//     NAE error signal and the drift detector's staleness ratio — hot or
//     drifting models bid up, cold converged models bid down.
//  2. Computes proportional target budgets over the global pool (floor +
//     demand share of the remainder), clamps per-entry ceilings and the
//     per-round step fraction, then scales tenants down to their quotas.
//  3. Enforces conservation (sum of grants <= global budget) and applies
//     the changed budgets via CostCatalog::SetEntryByteBudget — shrinking
//     entries run eviction-compression passes down to their new limit.
//  4. When admission control is on, evicts the lowest-traffic entries
//     beyond max_resident_models (flush + serialize to the snapshot
//     store; the next For() on the UDF reloads bit-identically).
//
// Thread-safe: ticks and rebalances serialize on an internal mutex, and
// the catalog calls take their own locks (never held together with it).
class CatalogGovernor {
 public:
  // `catalog` must outlive the governor. A zero/negative global budget
  // disables rebalancing (ticks count, nothing moves).
  CatalogGovernor(CostCatalog* catalog, const GovernorPolicy& policy);

  CatalogGovernor(const CatalogGovernor&) = delete;
  CatalogGovernor& operator=(const CatalogGovernor&) = delete;

  // One scheduler tick: runs a rebalance every ticks_per_rebalance ticks.
  // Cheap otherwise (one mutex, one counter).
  void OnTick();

  // Forces a rebalance now, regardless of cadence. Returns the number of
  // entries whose budget changed.
  int RebalanceNow();

  GovernorStats stats() const;
  const GovernorPolicy& policy() const { return policy_; }

 private:
  // The rebalance body. Caller holds mutex_.
  int RebalanceLocked();

  CostCatalog* const catalog_;
  const GovernorPolicy policy_;

  mutable std::mutex mutex_;
  // All below guarded by mutex_.
  int64_t ticks_ = 0;
  // Traffic totals at the previous rebalance, keyed by UDF name: the
  // demand score uses the traffic DELTA since last time, so an entry that
  // was hot last month and idle now reads as cold.
  std::map<std::string, int64_t> traffic_at_last_rebalance_;
  GovernorStats stats_;
};

}  // namespace mlq

#endif  // MLQ_ENGINE_CATALOG_GOVERNOR_H_
