#include "engine/table.h"

#include <cassert>

namespace mlq {

Table::Table(std::string name, std::vector<std::string> column_names)
    : name_(std::move(name)), column_names_(std::move(column_names)) {
  assert(!column_names_.empty());
}

int Table::ColumnIndex(std::string_view column_name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == column_name) return static_cast<int>(i);
  }
  return -1;
}

void Table::AddRow(std::span<const double> values) {
  assert(static_cast<int>(values.size()) == num_columns());
  cells_.insert(cells_.end(), values.begin(), values.end());
  ++num_rows_;
}

std::span<const double> Table::Row(int64_t i) const {
  assert(i >= 0 && i < num_rows_);
  return std::span<const double>(
      cells_.data() + i * num_columns(), static_cast<size_t>(num_columns()));
}

}  // namespace mlq
