#ifndef MLQ_ENGINE_EXECUTOR_H_
#define MLQ_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "engine/cost_catalog.h"
#include "engine/query_optimizer.h"

namespace mlq {

// What one query execution actually did and cost.
struct ExecutionStats {
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  // Actual execution cost over all UDF calls, in nominal microseconds.
  double actual_cost_micros = 0.0;
  // How many rows each predicate was actually evaluated on (short-circuit
  // evaluation skips predicates once a row fails). Parallel to
  // Query::predicates, not to the plan order.
  std::vector<int64_t> evaluations_per_predicate;
};

// Executes `query` under `plan` with short-circuit conjunction. When
// `catalog` is non-null, every UDF call's observed cost and pass outcome is
// fed back into its models — this is the execution-engine half of the
// paper's Fig. 1 loop, and it is what makes subsequent plans better.
ExecutionStats ExecuteQuery(const Query& query, const Plan& plan,
                            CostCatalog* catalog);

// Concurrent variant of ExecuteQuery: rows are partitioned into
// `num_threads` contiguous chunks evaluated by worker threads. UDF
// substrates (buffer pools, indexes) are stateful and single-threaded, so
// calls to the SAME predicate are serialized behind a per-predicate mutex;
// distinct predicates run in parallel, and all model traffic (feedback via
// `catalog`) is concurrent — which is why `catalog`, when given, must be in
// a concurrent mode (kGlobalMutex or kSharded; asserted). Results are
// deterministic and identical to ExecuteQuery: pass outcomes depend only on
// the row, and short-circuiting is per-row.
ExecutionStats ExecuteQueryConcurrent(const Query& query, const Plan& plan,
                                      CostCatalog* catalog, int num_threads);

// Adaptive variant: instead of one order for the whole table, re-ranks the
// predicates *per row* using each row's own model-point predictions — the
// cost models are cheap enough (~100 ns per probe) that per-tuple
// conditional planning is affordable. Wins when predicate costs vary
// strongly across tuples (e.g. a text search that is cheap for rare
// keywords and expensive for frequent ones). `catalog` is required: the
// per-row ranks come from its models, and feedback flows back into them.
ExecutionStats ExecuteQueryAdaptive(const Query& query, CostCatalog& catalog);

// Block-batched form of ExecuteQueryAdaptive: rows are processed in blocks
// of `block_rows`, and each block's model probes go through the catalog's
// batched predictors (one batch call per predicate per block instead of two
// virtual dispatches per predicate per row). A block's probes are taken
// before its rows execute, so within a block the per-row predicate order
// ignores that block's own feedback — the ranks can differ from
// ExecuteQueryAdaptive's mid-block. Query RESULTS are identical regardless
// (pass/fail depends only on the row): rows_in and rows_out always match
// the unbatched variant; only evaluation counts and cost may drift.
//
// `risk_k` > 0 ranks each row with risk-adjusted per-point costs
// (mean + k * stddev / sqrt(count), from the catalog's stats batches)
// instead of point estimates; risk_k = 0 keeps the classical per-row rank
// and the scalar batch predictors — that path is untouched.
ExecutionStats ExecuteQueryAdaptiveBatched(const Query& query,
                                           CostCatalog& catalog,
                                           int block_rows = 64,
                                           double risk_k = 0.0);

// Convenience: the full loop for one query arrival — plan, execute with
// feedback, return both.
struct PlannedExecution {
  Plan plan;
  ExecutionStats stats;
};
PlannedExecution PlanAndExecute(const Query& query, CostCatalog& catalog,
                                int sample_rows = 32);

}  // namespace mlq

#endif  // MLQ_ENGINE_EXECUTOR_H_
