#include "engine/cost_catalog.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/timer.h"
#include "engine/maintenance_scheduler.h"
#include "model/concurrent_model.h"
#include "model/mlq_model.h"
#include "model/serialization.h"
#include "model/sharded_model.h"
#include "obs/obs.h"

namespace mlq {
namespace {

// The paper's tuning (Section 5.1) with the beta appropriate to what the
// model predicts: 1 for deterministic CPU costs, 10 for cache-noisy IO
// costs, 5 for Bernoulli-noisy pass outcomes.
MlqConfig CatalogModelConfig(int64_t memory_limit_bytes, int64_t beta) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kLazy;
  config.max_depth = 6;
  config.alpha = 0.05;
  config.gamma = 0.001;
  config.beta = beta;
  config.memory_limit_bytes = memory_limit_bytes;
  return config;
}

}  // namespace

// RAII marker for "a maintenance epoch or feedback flush is running".
// MaintenanceTick() checks the counter and backs off, which (a) prevents a
// sharded model's post-drain hook — fired while an epoch's flush drains its
// queues — from re-entering entries_mutex_, and (b) keeps other threads'
// ticks from piling onto an epoch already in flight.
class CostCatalog::BusyScope {
 public:
  explicit BusyScope(CostCatalog& catalog) : catalog_(catalog) {
    catalog_.maintenance_busy_.fetch_add(1, std::memory_order_relaxed);
  }
  ~BusyScope() {
    catalog_.maintenance_busy_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  CostCatalog& catalog_;
};

CostCatalog::CostCatalog(int64_t memory_limit_bytes,
                         CatalogConcurrency concurrency, int num_shards)
    : memory_limit_bytes_(memory_limit_bytes),
      concurrency_(concurrency),
      num_shards_(std::max(num_shards, 1)) {}

std::unique_ptr<CostModel> CostCatalog::MakeModel(const Box& space,
                                                  int64_t beta) {
  MlqConfig config = CatalogModelConfig(memory_limit_bytes_, beta);
  config.decay_half_life = model_decay_half_life_;
  std::shared_ptr<SharedNodeArena> arena = ArenaForDimsLocked(space.dims());
  switch (concurrency_) {
    case CatalogConcurrency::kSingleThread:
      return std::make_unique<MlqModel>(space, config, std::move(arena));
    case CatalogConcurrency::kGlobalMutex:
      return std::make_unique<ConcurrentCostModel>(
          std::make_unique<MlqModel>(space, config, std::move(arena)));
    case CatalogConcurrency::kSharded: {
      ShardedModelOptions options;
      options.num_shards = num_shards_;
      options.arena = std::move(arena);
      // Every completed feedback drain is a safe point for autonomous
      // arena maintenance. The hook fires with no shard lock held and
      // never from Flush(), so epochs (which flush) cannot recurse; it is
      // safe for the catalog's whole life because ~ShardedCostModel only
      // flushes. MaintenanceTick additionally backs off while an epoch or
      // FlushFeedback is already on the stack.
      options.post_drain_hook = [this] { MaintenanceTick(); };
      return std::make_unique<ShardedCostModel>(space, config, options);
    }
  }
  return nullptr;  // Unreachable.
}

std::unique_ptr<CostModel> CostCatalog::MakeModelFromImage(
    const std::vector<uint8_t>& image, int dims) {
  std::string error;
  std::unique_ptr<MemoryLimitedQuadtree> tree =
      DeserializeQuadtree(image, ArenaForDimsLocked(dims), &error);
  if (tree == nullptr) return nullptr;
  auto model = std::make_unique<MlqModel>(std::move(tree));
  switch (concurrency_) {
    case CatalogConcurrency::kSingleThread:
      return model;
    case CatalogConcurrency::kGlobalMutex:
      return std::make_unique<ConcurrentCostModel>(std::move(model));
    case CatalogConcurrency::kSharded:
      // Sharded entries are never evicted (EvictEntry refuses), so there
      // is nothing to reload.
      return nullptr;
  }
  return nullptr;  // Unreachable.
}

const MlqModel* CostCatalog::BareModel(const CostModel* model) const {
  switch (concurrency_) {
    case CatalogConcurrency::kSingleThread:
      return static_cast<const MlqModel*>(model);
    case CatalogConcurrency::kGlobalMutex:
      return static_cast<const MlqModel*>(
          &const_cast<ConcurrentCostModel*>(
               static_cast<const ConcurrentCostModel*>(model))
               ->inner());
    case CatalogConcurrency::kSharded:
      return nullptr;
  }
  return nullptr;  // Unreachable.
}

std::shared_ptr<SharedNodeArena>& CostCatalog::ArenaForDimsLocked(int dims) {
  const int fanout = 1 << dims;
  std::shared_ptr<SharedNodeArena>& arena = arenas_[fanout];
  if (arena == nullptr) arena = std::make_shared<SharedNodeArena>(fanout);
  return arena;
}

std::shared_ptr<SharedNodeArena> CostCatalog::ArenaForDims(int dims) {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  return ArenaForDimsLocked(dims);
}

CostCatalog::Entry& CostCatalog::For(CostedUdf* udf) {
  return For(udf, "default");
}

CostCatalog::Entry& CostCatalog::For(CostedUdf* udf, std::string_view tenant) {
  assert(udf != nullptr);
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  return ForLocked(udf, tenant);
}

CostCatalog::Entry& CostCatalog::ForLocked(CostedUdf* udf,
                                           std::string_view tenant) {
  for (auto& entry : entries_) {
    if (entry->udf == udf) return *entry;
  }
  const Box space = udf->model_space();

  // Reload path: the governor evicted this UDF; rebuild its entry from the
  // serialized snapshot so predictions resume bit-identically.
  if (const auto it = evicted_.find(udf); it != evicted_.end()) {
    EvictedEntry& snap = it->second;
    auto cpu = MakeModelFromImage(snap.cpu_image, space.dims());
    auto io = MakeModelFromImage(snap.io_image, space.dims());
    auto sel = MakeModelFromImage(snap.selectivity_image, space.dims());
    if (cpu != nullptr && io != nullptr && sel != nullptr) {
      const double image_bytes = static_cast<double>(snap.ImageBytes());
      auto entry = std::make_unique<Entry>();
      entry->udf = udf;
      entry->tenant = std::move(snap.tenant);
      entry->cpu_model = std::move(cpu);
      entry->io_model = std::move(io);
      entry->selectivity_model = std::move(sel);
      entry->traffic.store(snap.traffic, std::memory_order_relaxed);
      entry->budget_bytes = snap.budget_bytes;
      entry->windowed = snap.windowed;
      entry->cost_detector = snap.cost_detector;
      entry->selectivity_detector = snap.selectivity_detector;
      evicted_.erase(it);
      entries_.push_back(std::move(entry));
      if (obs::Enabled()) {
        obs::Core().governor_reloads.Inc();
        obs::GlobalEventLog().Append(obs::EventKind::kModelReload,
                                     udf->name(), image_bytes);
      }
      return *entries_.back();
    }
    // A malformed snapshot falls through to a fresh entry: serving
    // correctness beats preserving a corrupt image.
    evicted_.erase(it);
  }

  auto entry = std::make_unique<Entry>();
  entry->udf = udf;
  entry->tenant = std::string(tenant);
  entry->cpu_model = MakeModel(space, /*beta=*/1);
  entry->io_model = MakeModel(space, /*beta=*/10);
  entry->selectivity_model = MakeModel(space, /*beta=*/5);
  entry->budget_bytes = 3 * memory_limit_bytes_;
  entries_.push_back(std::move(entry));
  obs::GlobalEventLog().Append(obs::EventKind::kModelLoad, udf->name(),
                               static_cast<double>(memory_limit_bytes_));
  return *entries_.back();
}

const CostCatalog::Entry* CostCatalog::Find(const CostedUdf* udf) const {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  for (const auto& entry : entries_) {
    if (entry->udf == udf) return entry.get();
  }
  return nullptr;
}

void CostCatalog::RecordExecution(CostedUdf* udf, const Point& model_point,
                                  const UdfCost& cost, bool passed) {
  Entry& entry = For(udf);
  entry.cpu_model->Observe(model_point, cost.cpu_work);
  entry.io_model->Observe(model_point, cost.io_pages);
  entry.selectivity_model->Observe(model_point, passed ? 1.0 : 0.0);
  const DriftKind drift = UpdateWindowed(entry, cost, passed);
  if (obs::Enabled()) obs::Core().catalog_feedback.Inc();
  if (drift != DriftKind::kNone) NotifyDriftDetected(drift);
}

void CostCatalog::RecordExecutionBatch(
    CostedUdf* udf, std::span<const ExecutionRecord> records) {
  if (records.empty()) return;
  Entry& entry = For(udf);
  // Three parallel observation vectors, one per model; insert order within
  // each model matches a RecordExecution loop exactly.
  std::vector<Observation> cpu;
  std::vector<Observation> io;
  std::vector<Observation> selectivity;
  cpu.reserve(records.size());
  io.reserve(records.size());
  selectivity.reserve(records.size());
  for (const ExecutionRecord& r : records) {
    cpu.push_back({r.model_point, r.cost.cpu_work});
    io.push_back({r.model_point, r.cost.io_pages});
    selectivity.push_back({r.model_point, r.passed ? 1.0 : 0.0});
  }
  entry.cpu_model->ObserveBatch(cpu);
  entry.io_model->ObserveBatch(io);
  entry.selectivity_model->ObserveBatch(selectivity);
  // Fold the windowed EWMAs in record order; keep only the worst verdict
  // and notify once per batch, after every entry lock is released.
  DriftKind worst = DriftKind::kNone;
  for (const ExecutionRecord& r : records) {
    const DriftKind drift = UpdateWindowed(entry, r.cost, r.passed);
    if (static_cast<int>(drift) > static_cast<int>(worst)) worst = drift;
  }
  if (obs::Enabled()) {
    obs::Core().catalog_feedback.Inc(static_cast<int64_t>(records.size()));
  }
  if (worst != DriftKind::kNone) NotifyDriftDetected(worst);
}

CostCatalog::WindowedActuals CostCatalog::ReadWindowedActuals(
    const CostedUdf* udf) const {
  const Entry* entry = Find(udf);
  if (entry == nullptr) return {};
  std::lock_guard<std::mutex> lock(entry->windowed_mutex);
  return entry->windowed;
}

DriftKind CostCatalog::UpdateWindowed(Entry& entry, const UdfCost& cost,
                                      bool passed) {
  const double cost_micros = cost.cpu_work * kMicrosPerWorkUnit +
                             cost.io_pages * kMicrosPerPageMiss;
  const double selectivity = passed ? 1.0 : 0.0;
  std::lock_guard<std::mutex> lock(entry.windowed_mutex);
  WindowedActuals& w = entry.windowed;
  // The detectors judge each sample against the PRE-update slow baseline:
  // once the baseline has folded the sample in, a step change would be
  // partially absorbed before it is measured.
  DriftKind cost_drift = DriftKind::kNone;
  DriftKind selectivity_drift = DriftKind::kNone;
  if (w.observations == 0) {
    w.fast_cost_micros = w.slow_cost_micros = cost_micros;
    w.fast_selectivity = w.slow_selectivity = selectivity;
  } else {
    cost_drift = entry.cost_detector.Observe(w.slow_cost_micros, cost_micros);
    // Pass outcomes are 0/1 Bernoulli samples: a relative error against a 0
    // sample explodes, so the selectivity detector judges the absolute
    // deviation from the baseline pass rate (already in [0, 1]).
    selectivity_drift = entry.selectivity_detector.ObserveError(
        std::abs(w.slow_selectivity - selectivity));
    if (cost_drift != DriftKind::kNone) {
      obs::GlobalEventLog().Append(
          obs::EventKind::kDriftFired, entry.udf->name(),
          static_cast<double>(cost_drift),
          entry.cost_detector.last_fire_ratio(),
          static_cast<double>(entry.cost_detector.observations()));
    }
    if (selectivity_drift != DriftKind::kNone) {
      obs::GlobalEventLog().Append(
          obs::EventKind::kDriftFired, entry.udf->name(),
          static_cast<double>(selectivity_drift),
          entry.selectivity_detector.last_fire_ratio(),
          static_cast<double>(entry.selectivity_detector.observations()));
    }
    w.fast_cost_micros += kFastAlpha * (cost_micros - w.fast_cost_micros);
    w.slow_cost_micros += kSlowAlpha * (cost_micros - w.slow_cost_micros);
    w.fast_selectivity += kFastAlpha * (selectivity - w.fast_selectivity);
    w.slow_selectivity += kSlowAlpha * (selectivity - w.slow_selectivity);
  }
  ++w.observations;
  return static_cast<int>(cost_drift) > static_cast<int>(selectivity_drift)
             ? cost_drift
             : selectivity_drift;
}

void CostCatalog::NotifyDriftDetected(DriftKind kind) {
  MaintenanceScheduler* scheduler = scheduler_.load(std::memory_order_acquire);
  if (scheduler != nullptr) scheduler->NotifyDrift(kind);
}

void CostCatalog::SetModelDecayHalfLife(double half_life) {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  model_decay_half_life_ = half_life > 0.0 ? half_life : 0.0;
}

double CostCatalog::model_decay_half_life() const {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  return model_decay_half_life_;
}

void CostCatalog::AdvanceDecayEpochs(int64_t epochs) {
  if (epochs <= 0) return;
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  // Same lock order as the compaction epochs: entries_mutex_, then each
  // model's own synchronization (inside AdvanceDecayEpoch).
  for (auto& entry : entries_) {
    entry->cpu_model->AdvanceDecayEpoch(epochs);
    entry->io_model->AdvanceDecayEpoch(epochs);
    entry->selectivity_model->AdvanceDecayEpoch(epochs);
  }
  obs::GlobalEventLog().Append(obs::EventKind::kDecayEpochs, "catalog",
                               static_cast<double>(epochs));
}

double CostCatalog::MaxModelStaleness() const {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  double staleness = 1.0;
  for (const auto& entry : entries_) {
    std::lock_guard<std::mutex> windowed_lock(entry->windowed_mutex);
    staleness = std::max(staleness, entry->cost_detector.staleness());
    staleness = std::max(staleness, entry->selectivity_detector.staleness());
  }
  return staleness;
}

double CostCatalog::PredictCostMicros(CostedUdf* udf,
                                      const Point& model_point) {
  Entry& entry = For(udf);
  entry.traffic.fetch_add(1, std::memory_order_relaxed);
  return entry.cpu_model->Predict(model_point) * kMicrosPerWorkUnit +
         entry.io_model->Predict(model_point) * kMicrosPerPageMiss;
}

double CostCatalog::PredictSelectivity(CostedUdf* udf,
                                       const Point& model_point) {
  Entry& entry = For(udf);
  entry.traffic.fetch_add(1, std::memory_order_relaxed);
  const Prediction p = entry.selectivity_model->PredictDetailed(model_point);
  if (!p.reliable && p.count == 0) return 0.5;  // Nothing known yet.
  return std::clamp(p.value, 0.01, 1.0);
}

void CostCatalog::PredictCostMicrosBatch(CostedUdf* udf,
                                         std::span<const Point> model_points,
                                         std::span<double> out) {
  assert(model_points.size() == out.size());
  if (model_points.empty()) return;
  Entry& entry = For(udf);
  entry.traffic.fetch_add(static_cast<int64_t>(model_points.size()),
                          std::memory_order_relaxed);
  std::vector<Prediction> cpu(model_points.size());
  std::vector<Prediction> io(model_points.size());
  entry.cpu_model->PredictBatch(model_points, cpu);
  entry.io_model->PredictBatch(model_points, io);
  for (size_t i = 0; i < model_points.size(); ++i) {
    out[i] = cpu[i].value * kMicrosPerWorkUnit +
             io[i].value * kMicrosPerPageMiss;
  }
}

void CostCatalog::PredictSelectivityBatch(CostedUdf* udf,
                                          std::span<const Point> model_points,
                                          std::span<double> out) {
  assert(model_points.size() == out.size());
  if (model_points.empty()) return;
  Entry& entry = For(udf);
  entry.traffic.fetch_add(static_cast<int64_t>(model_points.size()),
                          std::memory_order_relaxed);
  std::vector<Prediction> predictions(model_points.size());
  entry.selectivity_model->PredictBatch(model_points, predictions);
  for (size_t i = 0; i < model_points.size(); ++i) {
    const Prediction& p = predictions[i];
    out[i] = (!p.reliable && p.count == 0) ? 0.5
                                           : std::clamp(p.value, 0.01, 1.0);
  }
}

namespace {

// Combines independent CPU and IO predictions into one micros-denominated
// estimate: value matches PredictCostMicros bit for bit; the stddev of a
// sum of independently scaled estimates is the root-sum-square of the
// scaled stddevs; support is the weaker of the two.
CostEstimate CombineCostStats(const Prediction& cpu, const Prediction& io) {
  CostEstimate e;
  e.value = cpu.value * kMicrosPerWorkUnit + io.value * kMicrosPerPageMiss;
  const double cs = cpu.stddev * kMicrosPerWorkUnit;
  const double is = io.stddev * kMicrosPerPageMiss;
  e.stddev = std::sqrt(cs * cs + is * is);
  e.count = std::min(cpu.count, io.count);
  e.reliable = cpu.reliable && io.reliable;
  return e;
}

// Selectivity stats with the scalar path's clamp and fallback: an unknown
// UDF answers the max-uncertainty prior (0.5 +/- 0.5, unsupported).
CostEstimate SelectivityStats(const Prediction& p) {
  if (!p.reliable && p.count == 0) return CostEstimate{0.5, 0.5, 0, false};
  return CostEstimate{std::clamp(p.value, 0.01, 1.0), p.stddev, p.count,
                      p.reliable};
}

// mlq_predict_stddev sample, in milli-units so sub-micro uncertainty does
// not all collapse into the 0 bucket of the log2 histogram.
void RecordStddevObs(const CostEstimate& e) {
  obs::Core().predict_stddev.Record(
      static_cast<int64_t>(std::llround(e.stddev * 1000.0)));
}

}  // namespace

// Windowed-actuals cross-check: estimates come from the models, but the
// entry's fast/slow EWMAs track what executions actually did. When those
// two horizons disagree by more than kWindowDisagreement the workload is
// moving faster than the model converges, so the in-node variance
// understates true uncertainty: the stats predictors fold the returned
// disagreement into the stddev (root-sum-square, treating it as an
// independent error source) and drop the reliable bit. A handful of
// observations prove nothing, so the check arms only past
// kMinWindowObservations.
double CostCatalog::WindowedCostDisagreement(const Entry& entry) const {
  constexpr int64_t kMinWindowObservations = 8;
  constexpr double kWindowDisagreement = 1.5;
  double fast = 0.0;
  double slow = 0.0;
  {
    std::lock_guard<std::mutex> lock(entry.windowed_mutex);
    if (entry.windowed.observations < kMinWindowObservations) return 0.0;
    fast = entry.windowed.fast_cost_micros;
    slow = entry.windowed.slow_cost_micros;
  }
  const double lo = std::min(fast, slow);
  const double hi = std::max(fast, slow);
  if (lo <= 0.0 || hi / lo <= kWindowDisagreement) return 0.0;
  return hi - lo;
}

CostEstimate CostCatalog::PredictCostStats(CostedUdf* udf,
                                           const Point& model_point) {
  Entry& entry = For(udf);
  entry.traffic.fetch_add(1, std::memory_order_relaxed);
  const Prediction cpu = entry.cpu_model->PredictDetailed(model_point);
  const Prediction io = entry.io_model->PredictDetailed(model_point);
  CostEstimate e = CombineCostStats(cpu, io);
  const double disagreement = WindowedCostDisagreement(entry);
  if (disagreement > 0.0) {
    e.stddev = std::sqrt(e.stddev * e.stddev + disagreement * disagreement);
    e.reliable = false;
  }
  if (obs::Enabled()) RecordStddevObs(e);
  return e;
}

CostEstimate CostCatalog::PredictSelectivityStats(CostedUdf* udf,
                                                  const Point& model_point) {
  Entry& entry = For(udf);
  entry.traffic.fetch_add(1, std::memory_order_relaxed);
  return SelectivityStats(
      entry.selectivity_model->PredictDetailed(model_point));
}

void CostCatalog::PredictCostStatsBatch(CostedUdf* udf,
                                        std::span<const Point> model_points,
                                        std::span<CostEstimate> out) {
  assert(model_points.size() == out.size());
  if (model_points.empty()) return;
  Entry& entry = For(udf);
  entry.traffic.fetch_add(static_cast<int64_t>(model_points.size()),
                          std::memory_order_relaxed);
  std::vector<Prediction> cpu(model_points.size());
  std::vector<Prediction> io(model_points.size());
  entry.cpu_model->PredictBatch(model_points, cpu);
  entry.io_model->PredictBatch(model_points, io);
  const bool obs_on = obs::Enabled();
  const double disagreement = WindowedCostDisagreement(entry);
  for (size_t i = 0; i < model_points.size(); ++i) {
    out[i] = CombineCostStats(cpu[i], io[i]);
    if (disagreement > 0.0) {
      out[i].stddev = std::sqrt(out[i].stddev * out[i].stddev +
                                disagreement * disagreement);
      out[i].reliable = false;
    }
    if (obs_on) RecordStddevObs(out[i]);
  }
}

void CostCatalog::PredictSelectivityStatsBatch(
    CostedUdf* udf, std::span<const Point> model_points,
    std::span<CostEstimate> out) {
  assert(model_points.size() == out.size());
  if (model_points.empty()) return;
  Entry& entry = For(udf);
  entry.traffic.fetch_add(static_cast<int64_t>(model_points.size()),
                          std::memory_order_relaxed);
  std::vector<Prediction> predictions(model_points.size());
  entry.selectivity_model->PredictBatch(model_points, predictions);
  for (size_t i = 0; i < model_points.size(); ++i) {
    out[i] = SelectivityStats(predictions[i]);
  }
}

void CostCatalog::FlushEntry(Entry& entry) {
  entry.cpu_model->Flush();
  entry.io_model->Flush();
  entry.selectivity_model->Flush();
}

void CostCatalog::FlushFeedback() {
  BusyScope busy(*this);
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  for (auto& entry : entries_) FlushEntry(*entry);
  obs::GlobalEventLog().Append(obs::EventKind::kModelFlush, "catalog",
                               static_cast<double>(entries_.size()));
}

CostCatalog::ArenaMaintenanceStats CostCatalog::CompactArenas() {
  BusyScope busy(*this);
  ArenaMaintenanceStats stats;
  // The whole epoch runs under entries_mutex_ so no new models (or arenas)
  // can appear mid-compaction. Per-entry feedback is flushed inline — NOT
  // via FlushFeedback(), which would re-take this mutex — so the trees are
  // quiescent before their node blocks move.
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  for (auto& entry : entries_) FlushEntry(*entry);
  // Take every model's maintenance lock(s) so no prediction or drain can
  // observe a node mid-move. Locks release together when `locks` dies.
  WallTimer pause;
  {
    std::vector<std::unique_lock<std::mutex>> locks;
    for (auto& entry : entries_) {
      for (auto* model :
           {entry->cpu_model.get(), entry->io_model.get(),
            entry->selectivity_model.get()}) {
        auto model_locks = model->LockForMaintenance();
        for (auto& l : model_locks) locks.push_back(std::move(l));
      }
    }
    for (auto& [fanout, arena] : arenas_) {
      const SharedNodeArena::CompactionStats c = arena->Compact();
      stats.physical_bytes_before += c.physical_bytes_before;
      stats.physical_bytes_after += c.physical_bytes_after;
      stats.bytes_reclaimed += c.bytes_reclaimed;
      stats.blocks_moved += c.blocks_moved;
      ++stats.arenas_compacted;
    }
  }
  const auto pause_us = static_cast<int64_t>(pause.ElapsedMicros());
  stats.steps = 1;
  stats.max_pause_us = pause_us;
  stats.total_pause_us = pause_us;
  if (obs::Enabled()) {
    obs::Core().maintenance_epochs.Inc();
    obs::Core().maintenance_steps.Inc();
    obs::Core().maintenance_pause_ns.Record(pause_us * 1000);
    double max_frag = 0.0;
    for (auto& [fanout, arena] : arenas_) {
      max_frag = std::max(max_frag, arena->FragmentationRatio());
    }
    obs::Core().arena_fragmentation.Set(max_frag);
    obs::GlobalEventLog().Append(obs::EventKind::kMaintenanceEpoch, "full",
                                 /*a=*/0.0, static_cast<double>(pause_us),
                                 static_cast<double>(stats.bytes_reclaimed));
  }
  return stats;
}

bool CostCatalog::CompactArenasStep(int64_t budget_slots,
                                    ArenaMaintenanceStats* stats) {
  BusyScope busy(*this);
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  // Flush before quiescing: queued feedback holds Points, not node
  // indices, but applying it now keeps the trees identical to what a
  // stop-the-world epoch would have produced at this instant.
  for (auto& entry : entries_) FlushEntry(*entry);
  WallTimer pause;
  bool all_done = true;
  double max_frag = 0.0;
  {
    std::vector<std::unique_lock<std::mutex>> locks;
    for (auto& entry : entries_) {
      for (auto* model :
           {entry->cpu_model.get(), entry->io_model.get(),
            entry->selectivity_model.get()}) {
        auto model_locks = model->LockForMaintenance();
        for (auto& l : model_locks) locks.push_back(std::move(l));
      }
    }
    for (auto& [fanout, arena] : arenas_) {
      const SharedNodeArena::CompactStepStats c =
          arena->CompactStep(budget_slots);
      stats->blocks_moved += c.blocks_moved;
      stats->bytes_reclaimed += c.bytes_reclaimed;
      all_done = all_done && c.done;
      max_frag = std::max(max_frag, arena->FragmentationRatio());
    }
    stats->arenas_compacted = static_cast<int>(arenas_.size());
  }
  const auto pause_us = static_cast<int64_t>(pause.ElapsedMicros());
  ++stats->steps;
  stats->max_pause_us = std::max(stats->max_pause_us, pause_us);
  stats->total_pause_us += pause_us;
  if (obs::Enabled()) {
    obs::Core().maintenance_steps.Inc();
    obs::Core().maintenance_pause_ns.Record(pause_us * 1000);
    obs::Core().arena_fragmentation.Set(max_frag);
  }
  return all_done;
}

CostCatalog::ArenaMaintenanceStats CostCatalog::CompactArenasIncremental(
    int64_t budget_slots) {
  ArenaMaintenanceStats stats;
  stats.physical_bytes_before = ArenaPhysicalBytes();
  // Every lock (entries_mutex_ and all model locks) is released between
  // steps, so predictions and feedback interleave with the epoch.
  while (!CompactArenasStep(budget_slots, &stats)) {
  }
  stats.physical_bytes_after = ArenaPhysicalBytes();
  if (obs::Enabled()) {
    obs::Core().maintenance_epochs.Inc();
    obs::GlobalEventLog().Append(
        obs::EventKind::kMaintenanceEpoch, "incremental", /*a=*/1.0,
        static_cast<double>(stats.total_pause_us),
        static_cast<double>(stats.bytes_reclaimed));
  }
  return stats;
}

CostCatalog::ArenaSignals CostCatalog::ReadArenaSignals() const {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  ArenaSignals signals;
  for (const auto& [fanout, arena] : arenas_) {
    signals.tree_compressions += arena->tree_compressions();
    signals.max_fragmentation =
        std::max(signals.max_fragmentation, arena->FragmentationRatio());
    signals.live_nodes +=
        static_cast<int64_t>(arena->slot_count()) - arena->free_count();
  }
  return signals;
}

std::vector<obs::ModelHealth> CostCatalog::ReadModelHealth() const {
  return ReadModelHealth(nullptr);
}

std::vector<obs::ModelHealth> CostCatalog::ReadModelHealth(
    std::vector<CostedUdf*>* udfs) const {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  std::vector<obs::ModelHealth> out;
  out.reserve(entries_.size());
  if (udfs != nullptr) {
    udfs->clear();
    udfs->reserve(entries_.size());
  }
  for (const auto& entry : entries_) {
    obs::ModelHealth h;
    h.model = entry->udf->name();
    h.tenant = entry->tenant;
    h.traffic = entry->traffic.load(std::memory_order_relaxed);
    h.budget_bytes = entry->budget_bytes;
    // Same lock order as the compaction epochs: entries_mutex_, then the
    // models' own synchronization (inside MemoryBytes / NodeCount).
    for (const auto* model :
         {entry->cpu_model.get(), entry->io_model.get(),
          entry->selectivity_model.get()}) {
      h.bytes += model->MemoryBytes();
      h.nodes += model->NodeCount();
    }
    {
      std::lock_guard<std::mutex> windowed_lock(entry->windowed_mutex);
      h.observations = entry->windowed.observations;
      // Normalized deviation of the fast actual-cost window from the slow
      // baseline — bounded and zero-at-stability, unlike the detector's
      // raw relative-error EWMA, which explodes on near-zero actuals.
      const double slow = std::abs(entry->windowed.slow_cost_micros);
      h.windowed_nae =
          slow > 0.0 ? std::abs(entry->windowed.fast_cost_micros -
                                entry->windowed.slow_cost_micros) /
                           slow
                     : 0.0;
      h.staleness = std::max(entry->cost_detector.staleness(),
                             entry->selectivity_detector.staleness());
    }
    const auto arena_it = arenas_.find(1 << entry->udf->model_space().dims());
    if (arena_it != arenas_.end()) {
      h.fragmentation = arena_it->second->FragmentationRatio();
    }
    h.accuracy_per_byte =
        1.0 / ((1.0 + h.windowed_nae) *
               static_cast<double>(std::max<int64_t>(h.bytes, 1)));
    if (udfs != nullptr) udfs->push_back(entry->udf);
    out.push_back(std::move(h));
  }
  return out;
}

bool CostCatalog::SetEntryByteBudget(CostedUdf* udf, int64_t entry_bytes) {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  for (auto& entry : entries_) {
    if (entry->udf != udf) continue;
    // Even three-way split; each model keeps at least the root's charge so
    // every budget is enforceable. Same lock order as the maintenance
    // epochs: entries_mutex_, then each model's own synchronization
    // (inside SetByteBudget).
    const int64_t per_model =
        std::max<int64_t>(entry_bytes / 3, kNodeBaseBytes);
    entry->cpu_model->SetByteBudget(per_model);
    entry->io_model->SetByteBudget(per_model);
    entry->selectivity_model->SetByteBudget(per_model);
    entry->budget_bytes = entry_bytes;
    return true;
  }
  return false;
}

bool CostCatalog::EvictEntry(CostedUdf* udf) {
  if (concurrency_ == CatalogConcurrency::kSharded) return false;
  BusyScope busy(*this);
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    Entry& entry = **it;
    if (entry.udf != udf) continue;
    // Queued feedback (none in the evictable modes today, but Flush is the
    // documented quiesce step) must land in the trees before they are
    // imaged.
    FlushEntry(entry);
    EvictedEntry snap;
    snap.tenant = entry.tenant;
    snap.budget_bytes = entry.budget_bytes;
    snap.traffic = entry.traffic.load(std::memory_order_relaxed);
    snap.cpu_image = SerializeQuadtree(BareModel(entry.cpu_model.get())->tree());
    snap.io_image = SerializeQuadtree(BareModel(entry.io_model.get())->tree());
    snap.selectivity_image =
        SerializeQuadtree(BareModel(entry.selectivity_model.get())->tree());
    {
      std::lock_guard<std::mutex> windowed_lock(entry.windowed_mutex);
      snap.windowed = entry.windowed;
      snap.cost_detector = entry.cost_detector;
      snap.selectivity_detector = entry.selectivity_detector;
    }
    if (obs::Enabled()) {
      obs::Core().governor_evictions.Inc();
      obs::GlobalEventLog().Append(obs::EventKind::kModelEvict, udf->name(),
                                   static_cast<double>(snap.ImageBytes()),
                                   static_cast<double>(snap.traffic));
    }
    evicted_[udf] = std::move(snap);
    entries_.erase(it);
    return true;
  }
  return false;
}

int CostCatalog::evicted_count() const {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  return static_cast<int>(evicted_.size());
}

int64_t CostCatalog::evicted_snapshot_bytes() const {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  int64_t total = 0;
  for (const auto& [udf, snap] : evicted_) total += snap.ImageBytes();
  return total;
}

void CostCatalog::MaintenanceTick() {
  if (maintenance_busy_.load(std::memory_order_relaxed) > 0) return;
  MaintenanceScheduler* scheduler = scheduler_.load(std::memory_order_acquire);
  if (scheduler != nullptr) scheduler->Tick();
}

void CostCatalog::SetMaintenanceScheduler(MaintenanceScheduler* scheduler) {
  scheduler_.store(scheduler, std::memory_order_release);
}

int64_t CostCatalog::ArenaPhysicalBytes() const {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  int64_t total = 0;
  for (const auto& [fanout, arena] : arenas_) {
    total += arena->PhysicalCapacityBytes();
  }
  return total;
}

int CostCatalog::size() const {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  return static_cast<int>(entries_.size());
}

}  // namespace mlq
