#include "engine/cost_catalog.h"

#include <algorithm>
#include <cassert>

#include "common/timer.h"
#include "model/concurrent_model.h"
#include "model/mlq_model.h"
#include "model/sharded_model.h"
#include "obs/obs.h"

namespace mlq {
namespace {

// The paper's tuning (Section 5.1) with the beta appropriate to what the
// model predicts: 1 for deterministic CPU costs, 10 for cache-noisy IO
// costs, 5 for Bernoulli-noisy pass outcomes.
MlqConfig CatalogModelConfig(int64_t memory_limit_bytes, int64_t beta) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kLazy;
  config.max_depth = 6;
  config.alpha = 0.05;
  config.gamma = 0.001;
  config.beta = beta;
  config.memory_limit_bytes = memory_limit_bytes;
  return config;
}

}  // namespace

CostCatalog::CostCatalog(int64_t memory_limit_bytes,
                         CatalogConcurrency concurrency, int num_shards)
    : memory_limit_bytes_(memory_limit_bytes),
      concurrency_(concurrency),
      num_shards_(std::max(num_shards, 1)) {}

std::unique_ptr<CostModel> CostCatalog::MakeModel(const Box& space,
                                                  int64_t beta) {
  const MlqConfig config = CatalogModelConfig(memory_limit_bytes_, beta);
  std::shared_ptr<SharedNodeArena> arena = ArenaForDimsLocked(space.dims());
  switch (concurrency_) {
    case CatalogConcurrency::kSingleThread:
      return std::make_unique<MlqModel>(space, config, std::move(arena));
    case CatalogConcurrency::kGlobalMutex:
      return std::make_unique<ConcurrentCostModel>(
          std::make_unique<MlqModel>(space, config, std::move(arena)));
    case CatalogConcurrency::kSharded: {
      ShardedModelOptions options;
      options.num_shards = num_shards_;
      options.arena = std::move(arena);
      return std::make_unique<ShardedCostModel>(space, config, options);
    }
  }
  return nullptr;  // Unreachable.
}

std::shared_ptr<SharedNodeArena>& CostCatalog::ArenaForDimsLocked(int dims) {
  const int fanout = 1 << dims;
  std::shared_ptr<SharedNodeArena>& arena = arenas_[fanout];
  if (arena == nullptr) arena = std::make_shared<SharedNodeArena>(fanout);
  return arena;
}

std::shared_ptr<SharedNodeArena> CostCatalog::ArenaForDims(int dims) {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  return ArenaForDimsLocked(dims);
}

CostCatalog::Entry& CostCatalog::For(CostedUdf* udf) {
  assert(udf != nullptr);
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  for (auto& entry : entries_) {
    if (entry->udf == udf) return *entry;
  }
  const Box space = udf->model_space();
  entries_.push_back(std::unique_ptr<Entry>(
      new Entry{udf, MakeModel(space, /*beta=*/1), MakeModel(space, /*beta=*/10),
                MakeModel(space, /*beta=*/5)}));
  return *entries_.back();
}

const CostCatalog::Entry* CostCatalog::Find(const CostedUdf* udf) const {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  for (const auto& entry : entries_) {
    if (entry->udf == udf) return entry.get();
  }
  return nullptr;
}

void CostCatalog::RecordExecution(CostedUdf* udf, const Point& model_point,
                                  const UdfCost& cost, bool passed) {
  Entry& entry = For(udf);
  entry.cpu_model->Observe(model_point, cost.cpu_work);
  entry.io_model->Observe(model_point, cost.io_pages);
  entry.selectivity_model->Observe(model_point, passed ? 1.0 : 0.0);
  if (obs::Enabled()) obs::Core().catalog_feedback.Inc();
}

void CostCatalog::RecordExecutionBatch(
    CostedUdf* udf, std::span<const ExecutionRecord> records) {
  if (records.empty()) return;
  Entry& entry = For(udf);
  // Three parallel observation vectors, one per model; insert order within
  // each model matches a RecordExecution loop exactly.
  std::vector<Observation> cpu;
  std::vector<Observation> io;
  std::vector<Observation> selectivity;
  cpu.reserve(records.size());
  io.reserve(records.size());
  selectivity.reserve(records.size());
  for (const ExecutionRecord& r : records) {
    cpu.push_back({r.model_point, r.cost.cpu_work});
    io.push_back({r.model_point, r.cost.io_pages});
    selectivity.push_back({r.model_point, r.passed ? 1.0 : 0.0});
  }
  entry.cpu_model->ObserveBatch(cpu);
  entry.io_model->ObserveBatch(io);
  entry.selectivity_model->ObserveBatch(selectivity);
  if (obs::Enabled()) {
    obs::Core().catalog_feedback.Inc(static_cast<int64_t>(records.size()));
  }
}

double CostCatalog::PredictCostMicros(CostedUdf* udf,
                                      const Point& model_point) {
  Entry& entry = For(udf);
  return entry.cpu_model->Predict(model_point) * kMicrosPerWorkUnit +
         entry.io_model->Predict(model_point) * kMicrosPerPageMiss;
}

double CostCatalog::PredictSelectivity(CostedUdf* udf,
                                       const Point& model_point) {
  Entry& entry = For(udf);
  const Prediction p = entry.selectivity_model->PredictDetailed(model_point);
  if (!p.reliable && p.count == 0) return 0.5;  // Nothing known yet.
  return std::clamp(p.value, 0.01, 1.0);
}

void CostCatalog::PredictCostMicrosBatch(CostedUdf* udf,
                                         std::span<const Point> model_points,
                                         std::span<double> out) {
  assert(model_points.size() == out.size());
  if (model_points.empty()) return;
  Entry& entry = For(udf);
  std::vector<Prediction> cpu(model_points.size());
  std::vector<Prediction> io(model_points.size());
  entry.cpu_model->PredictBatch(model_points, cpu);
  entry.io_model->PredictBatch(model_points, io);
  for (size_t i = 0; i < model_points.size(); ++i) {
    out[i] = cpu[i].value * kMicrosPerWorkUnit +
             io[i].value * kMicrosPerPageMiss;
  }
}

void CostCatalog::PredictSelectivityBatch(CostedUdf* udf,
                                          std::span<const Point> model_points,
                                          std::span<double> out) {
  assert(model_points.size() == out.size());
  if (model_points.empty()) return;
  Entry& entry = For(udf);
  std::vector<Prediction> predictions(model_points.size());
  entry.selectivity_model->PredictBatch(model_points, predictions);
  for (size_t i = 0; i < model_points.size(); ++i) {
    const Prediction& p = predictions[i];
    out[i] = (!p.reliable && p.count == 0) ? 0.5
                                           : std::clamp(p.value, 0.01, 1.0);
  }
}

void CostCatalog::FlushFeedback() {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  for (auto& entry : entries_) {
    entry->cpu_model->Flush();
    entry->io_model->Flush();
    entry->selectivity_model->Flush();
  }
}

CostCatalog::ArenaMaintenanceStats CostCatalog::CompactArenas() {
  ArenaMaintenanceStats stats;
  // The whole epoch runs under entries_mutex_ so no new models (or arenas)
  // can appear mid-compaction. Per-entry feedback is flushed inline — NOT
  // via FlushFeedback(), which would re-take this mutex — so the trees are
  // quiescent before their node blocks move.
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  for (auto& entry : entries_) {
    entry->cpu_model->Flush();
    entry->io_model->Flush();
    entry->selectivity_model->Flush();
  }
  // Take every model's maintenance lock(s) so no prediction or drain can
  // observe a node mid-move. Locks release together when `locks` dies.
  std::vector<std::unique_lock<std::mutex>> locks;
  for (auto& entry : entries_) {
    for (auto* model :
         {entry->cpu_model.get(), entry->io_model.get(),
          entry->selectivity_model.get()}) {
      auto model_locks = model->LockForMaintenance();
      for (auto& l : model_locks) locks.push_back(std::move(l));
    }
  }
  for (auto& [fanout, arena] : arenas_) {
    const SharedNodeArena::CompactionStats c = arena->Compact();
    stats.physical_bytes_before += c.physical_bytes_before;
    stats.physical_bytes_after += c.physical_bytes_after;
    stats.bytes_reclaimed += c.bytes_reclaimed;
    stats.blocks_moved += c.blocks_moved;
    ++stats.arenas_compacted;
  }
  return stats;
}

int64_t CostCatalog::ArenaPhysicalBytes() const {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  int64_t total = 0;
  for (const auto& [fanout, arena] : arenas_) {
    total += arena->PhysicalCapacityBytes();
  }
  return total;
}

int CostCatalog::size() const {
  std::unique_lock<std::mutex> lock(entries_mutex_, std::defer_lock);
  if (concurrency_ != CatalogConcurrency::kSingleThread) lock.lock();
  return static_cast<int>(entries_.size());
}

}  // namespace mlq
