#include "engine/cost_catalog.h"

#include <algorithm>
#include <cassert>

#include "common/timer.h"

namespace mlq {
namespace {

// The paper's tuning (Section 5.1) with the beta appropriate to what the
// model predicts: 1 for deterministic CPU costs, 10 for cache-noisy IO
// costs, 5 for Bernoulli-noisy pass outcomes.
MlqConfig CatalogModelConfig(int64_t memory_limit_bytes, int64_t beta) {
  MlqConfig config;
  config.strategy = InsertionStrategy::kLazy;
  config.max_depth = 6;
  config.alpha = 0.05;
  config.gamma = 0.001;
  config.beta = beta;
  config.memory_limit_bytes = memory_limit_bytes;
  return config;
}

}  // namespace

CostCatalog::CostCatalog(int64_t memory_limit_bytes)
    : memory_limit_bytes_(memory_limit_bytes) {}

CostCatalog::Entry& CostCatalog::For(CostedUdf* udf) {
  assert(udf != nullptr);
  for (auto& entry : entries_) {
    if (entry->udf == udf) return *entry;
  }
  const Box space = udf->model_space();
  // Models are immovable (they own the quadtree); aggregate-initialize the
  // Entry in place (guaranteed elision), not through make_unique's forward.
  entries_.push_back(std::unique_ptr<Entry>(new Entry{
      udf,
      MlqModel(space, CatalogModelConfig(memory_limit_bytes_, /*beta=*/1)),
      MlqModel(space, CatalogModelConfig(memory_limit_bytes_, /*beta=*/10)),
      MlqModel(space, CatalogModelConfig(memory_limit_bytes_, /*beta=*/5))}));
  return *entries_.back();
}

const CostCatalog::Entry* CostCatalog::Find(const CostedUdf* udf) const {
  for (const auto& entry : entries_) {
    if (entry->udf == udf) return entry.get();
  }
  return nullptr;
}

void CostCatalog::RecordExecution(CostedUdf* udf, const Point& model_point,
                                  const UdfCost& cost, bool passed) {
  Entry& entry = For(udf);
  entry.cpu_model.Observe(model_point, cost.cpu_work);
  entry.io_model.Observe(model_point, cost.io_pages);
  entry.selectivity_model.Observe(model_point, passed ? 1.0 : 0.0);
}

double CostCatalog::PredictCostMicros(CostedUdf* udf,
                                      const Point& model_point) {
  Entry& entry = For(udf);
  return entry.cpu_model.Predict(model_point) * kMicrosPerWorkUnit +
         entry.io_model.Predict(model_point) * kMicrosPerPageMiss;
}

double CostCatalog::PredictSelectivity(CostedUdf* udf,
                                       const Point& model_point) {
  Entry& entry = For(udf);
  const Prediction p = entry.selectivity_model.PredictDetailed(model_point);
  if (!p.reliable && p.count == 0) return 0.5;  // Nothing known yet.
  return std::clamp(p.value, 0.01, 1.0);
}

}  // namespace mlq
