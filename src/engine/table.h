#ifndef MLQ_ENGINE_TABLE_H_
#define MLQ_ENGINE_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mlq {

// A minimal in-memory relation: named numeric columns, row-major storage.
//
// The engine exists to exercise cost-model-driven predicate ordering, so
// rows carry exactly what UDF predicates consume — the (ordinal) argument
// values that become model-variable coordinates. Strings and other payload
// types are irrelevant to that loop and deliberately out of scope.
class Table {
 public:
  explicit Table(std::string name, std::vector<std::string> column_names);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  int num_columns() const { return static_cast<int>(column_names_.size()); }
  int64_t num_rows() const { return num_rows_; }
  const std::vector<std::string>& column_names() const { return column_names_; }

  // Index of a column by name, or -1.
  int ColumnIndex(std::string_view column_name) const;

  // Appends a row; must have exactly num_columns() values.
  void AddRow(std::span<const double> values);

  // The i-th row as a contiguous span of num_columns() values.
  std::span<const double> Row(int64_t i) const;

 private:
  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<double> cells_;  // Row-major.
  int64_t num_rows_ = 0;
};

}  // namespace mlq

#endif  // MLQ_ENGINE_TABLE_H_
