#include "engine/catalog_governor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/obs.h"
#include "quadtree/quadtree_config.h"

namespace mlq {

CatalogGovernor::CatalogGovernor(CostCatalog* catalog,
                                 const GovernorPolicy& policy)
    : catalog_(catalog), policy_(policy) {}

void CatalogGovernor::OnTick() {
  std::unique_lock<std::mutex> lock(mutex_);
  ++ticks_;
  ++stats_.ticks;
  const int64_t cadence = std::max<int64_t>(policy_.ticks_per_rebalance, 1);
  if (ticks_ % cadence != 0) return;
  RebalanceLocked();
}

int CatalogGovernor::RebalanceNow() {
  std::unique_lock<std::mutex> lock(mutex_);
  return RebalanceLocked();
}

int CatalogGovernor::RebalanceLocked() {
  if (policy_.global_budget_bytes <= 0) return 0;
  // The health read takes the catalog's entries_mutex_; this governor's
  // mutex_ is never held by anything that calls back into the governor,
  // so the order (mutex_ before catalog locks) is acyclic.
  std::vector<CostedUdf*> udfs;
  const std::vector<obs::ModelHealth> health =
      catalog_->ReadModelHealth(&udfs);
  const size_t n = health.size();
  if (n == 0) return 0;

  // An entry budget below three roots' charge is not enforceable (each of
  // the entry's three models keeps at least its root).
  const int64_t floor_bytes =
      std::max<int64_t>(policy_.min_entry_bytes, 3 * kNodeBaseBytes);
  const int64_t global = policy_.global_budget_bytes;

  // 1. Demand scores: traffic share since the previous rebalance, boosted
  // by the error signals. The DELTA matters — lifetime traffic would keep
  // yesterday's hot models fat forever.
  std::vector<int64_t> traffic_delta(n, 0);
  int64_t total_delta = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto it = traffic_at_last_rebalance_.find(health[i].model);
    const int64_t prev =
        it == traffic_at_last_rebalance_.end() ? 0 : it->second;
    traffic_delta[i] = std::max<int64_t>(health[i].traffic - prev, 0);
    total_delta += traffic_delta[i];
  }
  // No traffic since the last rebalance means no new evidence: moving
  // budget now would redistribute toward a uniform split (the zero-delta
  // fallback below) and thrash compression for nothing, so hold the
  // current allocation. A catalog that has NEVER served reads all-zero
  // lifetime traffic and parks here too, which is fine — allocations only
  // matter once predictions flow, and the first served op unblocks the
  // next rebalance.
  if (total_delta == 0 && !traffic_at_last_rebalance_.empty()) return 0;
  std::vector<double> demand(n, 0.0);
  double total_demand = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const obs::ModelHealth& h = health[i];
    const double share =
        total_delta > 0
            ? static_cast<double>(traffic_delta[i]) /
                  static_cast<double>(total_delta)
            : 1.0 / static_cast<double>(n);
    const double error_boost =
        1.0 + policy_.error_weight * std::max(h.windowed_nae, 0.0);
    const double staleness_boost =
        std::clamp(h.staleness, 1.0, std::max(policy_.staleness_cap, 1.0));
    demand[i] = share * error_boost * staleness_boost;
    total_demand += demand[i];
  }

  // 2. Proportional targets over the pool above the floors. When the
  // floors alone exceed the global budget the pool is empty and every
  // entry gets an equal split instead (the floor is a goal, conservation
  // is the invariant).
  const int64_t sum_floors = floor_bytes * static_cast<int64_t>(n);
  std::vector<int64_t> target(n, 0);
  if (sum_floors >= global) {
    const int64_t equal = global / static_cast<int64_t>(n);
    std::fill(target.begin(), target.end(), equal);
  } else {
    const double pool = static_cast<double>(global - sum_floors);
    for (size_t i = 0; i < n; ++i) {
      const double share = total_demand > 0.0 ? demand[i] / total_demand
                                              : 1.0 / static_cast<double>(n);
      target[i] = floor_bytes + static_cast<int64_t>(pool * share);
      if (policy_.max_entry_bytes > 0) {
        target[i] = std::min(target[i], policy_.max_entry_bytes);
      }
      // Hysteresis: clamp the per-round change to a fraction of the
      // current budget so jittering traffic shares cannot thrash
      // compression.
      const double step = std::clamp(policy_.max_step_fraction, 0.0, 1.0);
      const int64_t cur = std::max<int64_t>(health[i].budget_bytes, 1);
      const auto lo = static_cast<int64_t>(
          std::floor(static_cast<double>(cur) * (1.0 - step)));
      const auto hi = static_cast<int64_t>(
          std::ceil(static_cast<double>(cur) * (1.0 + step)));
      target[i] = std::clamp(target[i], lo, hi);
      target[i] = std::max(target[i], floor_bytes);
    }
  }

  // 3. Tenant quotas: scale every entry of an over-quota tenant down
  // proportionally (but never below the floor — quotas smaller than their
  // tenants' summed floors are satisfied best-effort).
  if (!policy_.tenant_quota_bytes.empty()) {
    std::map<std::string, int64_t> tenant_sum;
    for (size_t i = 0; i < n; ++i) tenant_sum[health[i].tenant] += target[i];
    for (size_t i = 0; i < n; ++i) {
      const auto quota = policy_.tenant_quota_bytes.find(health[i].tenant);
      if (quota == policy_.tenant_quota_bytes.end()) continue;
      const int64_t sum = tenant_sum[health[i].tenant];
      if (sum <= quota->second) continue;
      const double scale = static_cast<double>(quota->second) /
                           static_cast<double>(sum);
      target[i] = std::max<int64_t>(
          static_cast<int64_t>(static_cast<double>(target[i]) * scale),
          std::min(floor_bytes, quota->second));
    }
  }

  // 4. Conservation: sum of grants must not exceed the global budget.
  // Integer truncation above keeps the proportional sum under the pool;
  // the step clamp and quota floors can push it over, so scale the
  // above-floor portion back down if needed.
  int64_t total = std::accumulate(target.begin(), target.end(), int64_t{0});
  if (total > global && total > sum_floors && sum_floors < global) {
    const double scale = static_cast<double>(global - sum_floors) /
                         static_cast<double>(total - sum_floors);
    total = 0;
    for (size_t i = 0; i < n; ++i) {
      const int64_t above = target[i] - floor_bytes;
      target[i] = floor_bytes +
                  static_cast<int64_t>(static_cast<double>(above) * scale);
      total += target[i];
    }
  }

  // 5. Apply. Entries within the dead band keep their current budget (and
  // still count toward the allocation total).
  int changed = 0;
  int64_t granted = 0;
  int64_t reclaimed = 0;
  int64_t allocated = 0;
  for (size_t i = 0; i < n; ++i) {
    const int64_t cur = health[i].budget_bytes;
    const int64_t delta = target[i] - cur;
    if (std::llabs(delta) < policy_.min_change_bytes) {
      allocated += cur;
      continue;
    }
    if (!catalog_->SetEntryByteBudget(udfs[i], target[i])) {
      allocated += cur;
      continue;  // Evicted or deregistered since the health read.
    }
    allocated += target[i];
    ++changed;
    if (delta > 0) {
      granted += delta;
    } else {
      reclaimed -= delta;
    }
  }

  // 6. Admission control: evict the coldest entries beyond the resident
  // cap, coldest-first by traffic delta (LRU-by-traffic).
  int evicted = 0;
  if (policy_.max_resident_models > 0 &&
      static_cast<int>(n) > policy_.max_resident_models) {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (traffic_delta[a] != traffic_delta[b]) {
        return traffic_delta[a] < traffic_delta[b];
      }
      return health[a].traffic < health[b].traffic;
    });
    const int excess = static_cast<int>(n) - policy_.max_resident_models;
    for (int k = 0; k < excess; ++k) {
      if (catalog_->EvictEntry(udfs[order[static_cast<size_t>(k)]])) {
        ++evicted;
      }
    }
  }

  // Remember this rebalance's traffic totals (evicted entries keep theirs
  // in the snapshot store and resume the same counter on reload).
  for (size_t i = 0; i < n; ++i) {
    traffic_at_last_rebalance_[health[i].model] = health[i].traffic;
  }

  ++stats_.rebalances;
  stats_.bytes_granted += granted;
  stats_.bytes_reclaimed += reclaimed;
  stats_.entries_rebalanced += changed;
  stats_.evictions += evicted;
  stats_.allocated_bytes = allocated;
  stats_.resident_models = static_cast<int>(n) - evicted;

  if (obs::Enabled()) {
    obs::CoreMetrics& core = obs::Core();
    core.governor_rebalances.Inc();
    core.governor_bytes_granted.Inc(granted);
    core.governor_bytes_reclaimed.Inc(reclaimed);
    core.governor_resident_models.Set(
        static_cast<double>(stats_.resident_models));
    core.governor_allocated_bytes.Set(static_cast<double>(allocated));
    obs::GlobalEventLog().Append(obs::EventKind::kGovernorDecision, "catalog",
                                 static_cast<double>(granted),
                                 static_cast<double>(reclaimed),
                                 static_cast<double>(changed));
  }
  return changed;
}

GovernorStats CatalogGovernor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mlq
