#ifndef MLQ_ENGINE_UDF_PREDICATE_H_
#define MLQ_ENGINE_UDF_PREDICATE_H_

#include <span>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "udf/costed_udf.h"

namespace mlq {

// A UDF predicate in a WHERE clause, bound to a table's columns:
//
//   WHERE Proximity(doc.kw1, doc.kw2, 20) >= 1
//
// Each of the UDF's model variables is fed either from a row column or
// from a query constant; the predicate passes when the UDF's result count
// reaches `min_result_count` (the "Contains(...)" / "SimilarityDistance(...)
// < 10" shapes from the paper's introduction reduce to this).
class UdfPredicate {
 public:
  // `column_of[d]` is the row column feeding model variable d, or -1 to use
  // `constants[d]` instead. Sizes must match the UDF's model space.
  UdfPredicate(std::string name, CostedUdf* udf, std::vector<int> column_of,
               Point constants, int64_t min_result_count);

  const std::string& name() const { return name_; }
  CostedUdf* udf() const { return udf_; }
  int64_t min_result_count() const { return min_result_count_; }

  // Model-variable point for a row (the transformation T applied to the
  // tuple's argument values).
  Point ModelPointFor(std::span<const double> row) const;

  struct Outcome {
    bool passed = false;
    UdfCost cost;
    Point model_point;
  };

  // Executes the UDF for the row and evaluates the pass rule.
  Outcome Evaluate(std::span<const double> row) const;

 private:
  std::string name_;
  CostedUdf* udf_;
  std::vector<int> column_of_;
  Point constants_;
  int64_t min_result_count_;
};

}  // namespace mlq

#endif  // MLQ_ENGINE_UDF_PREDICATE_H_
