#include "text/text_udfs.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace mlq {
namespace {

// Work units charged per elementary operation. Kept coarse on purpose: the
// cost model only needs surfaces whose *shape* matches a real engine.
constexpr double kWorkPerPosting = 1.0;
constexpr double kWorkPerResult = 4.0;
constexpr double kBaseWork = 16.0;

// Rounds a model coordinate to an integer rank in [1, vocab].
int32_t RankOf(double coordinate, int32_t vocab) {
  const auto rank = static_cast<int64_t>(std::llround(coordinate));
  return static_cast<int32_t>(std::clamp<int64_t>(rank, 1, vocab));
}

// Pages covering the first `postings` entries of a term's list.
int64_t PagesForPostings(int64_t postings) {
  return PagesForBytes(postings * InvertedIndex::kPostingBytes);
}

}  // namespace

// --------------------------------------------------------------------------
// SIMPLE

SimpleSearchUdf::SimpleSearchUdf(std::shared_ptr<TextSearchEngine> engine)
    : engine_(std::move(engine)) {}

Box SimpleSearchUdf::model_space() const {
  const auto vocab = static_cast<double>(engine_->index().vocab_size());
  return Box(Point{1.0, 0.01}, Point{vocab, 1.0});
}

UdfCost SimpleSearchUdf::Execute(const Point& model_point) {
  assert(model_point.dims() == 2);
  InvertedIndex& index = engine_->index();
  BufferPool& pool = engine_->pool();

  const int32_t term = RankOf(model_point[0], index.vocab_size()) - 1;
  const double frac = std::clamp(model_point[1], 0.01, 1.0);
  const auto doc_limit =
      static_cast<int32_t>(frac * static_cast<double>(index.num_docs()));

  // Scan the posting list up to the document-id prefix; lists are sorted by
  // doc id, so the scan covers a length-proportional page prefix.
  std::span<const Posting> postings = index.PostingsOf(term);
  int64_t scanned = 0;
  int64_t results = 0;
  int32_t previous_doc = -1;
  for (const Posting& posting : postings) {
    if (posting.doc_id >= doc_limit) break;
    ++scanned;
    if (posting.doc_id != previous_doc) {
      ++results;
      previous_doc = posting.doc_id;
    }
  }
  const int64_t pages = PagesForPostings(scanned);
  const int64_t misses =
      pages > 0 ? pool.FetchRun(index.index_file(), index.PostingFirstPage(term), pages)
                : 0;

  last_result_count_ = results;
  UdfCost cost;
  cost.cpu_work = kBaseWork + kWorkPerPosting * static_cast<double>(scanned) +
                  kWorkPerResult * static_cast<double>(results);
  cost.io_pages = static_cast<double>(misses);
  return cost;
}

// --------------------------------------------------------------------------
// THRESHOLD

ThresholdSearchUdf::ThresholdSearchUdf(std::shared_ptr<TextSearchEngine> engine)
    : engine_(std::move(engine)) {}

Box ThresholdSearchUdf::model_space() const {
  const auto vocab = static_cast<double>(engine_->index().vocab_size());
  return Box(Point{1.0, 0.0}, Point{vocab, 1.0});
}

UdfCost ThresholdSearchUdf::Execute(const Point& model_point) {
  assert(model_point.dims() == 2);
  InvertedIndex& index = engine_->index();
  BufferPool& pool = engine_->pool();

  const int32_t term = RankOf(model_point[0], index.vocab_size()) - 1;
  const double threshold = std::clamp(model_point[1], 0.0, 1.0);

  // Pass 1: scan the whole posting list, aggregating per-document term
  // frequencies (lists are doc-sorted so this is a grouped scan).
  std::span<const Posting> postings = index.PostingsOf(term);
  std::vector<std::pair<int32_t, int32_t>> doc_tf;  // (doc, tf)
  for (const Posting& posting : postings) {
    if (doc_tf.empty() || doc_tf.back().first != posting.doc_id) {
      doc_tf.emplace_back(posting.doc_id, 1);
    } else {
      ++doc_tf.back().second;
    }
  }
  int32_t max_tf = 0;
  for (const auto& [doc, tf] : doc_tf) max_tf = std::max(max_tf, tf);

  const int64_t index_pages = PagesForPostings(static_cast<int64_t>(postings.size()));
  int64_t misses =
      index_pages > 0
          ? pool.FetchRun(index.index_file(), index.PostingFirstPage(term), index_pages)
          : 0;

  // Pass 2: fetch every document whose normalized tf clears the threshold.
  int64_t results = 0;
  for (const auto& [doc, tf] : doc_tf) {
    const double score =
        max_tf > 0 ? static_cast<double>(tf) / static_cast<double>(max_tf) : 0.0;
    if (score >= threshold) {
      ++results;
      if (!pool.Fetch(index.doc_file(), index.DocPage(doc))) ++misses;
    }
  }

  last_result_count_ = results;
  UdfCost cost;
  cost.cpu_work = kBaseWork +
                  kWorkPerPosting * static_cast<double>(postings.size()) +
                  kWorkPerPosting * static_cast<double>(doc_tf.size()) +
                  kWorkPerResult * static_cast<double>(results);
  cost.io_pages = static_cast<double>(misses);
  return cost;
}

// --------------------------------------------------------------------------
// PROXIMITY

ProximitySearchUdf::ProximitySearchUdf(std::shared_ptr<TextSearchEngine> engine)
    : engine_(std::move(engine)) {}

Box ProximitySearchUdf::model_space() const {
  const auto vocab = static_cast<double>(engine_->index().vocab_size());
  return Box(Point{1.0, 1.0, 1.0}, Point{vocab, vocab, 50.0});
}

UdfCost ProximitySearchUdf::Execute(const Point& model_point) {
  assert(model_point.dims() == 3);
  InvertedIndex& index = engine_->index();
  BufferPool& pool = engine_->pool();

  const int32_t term1 = RankOf(model_point[0], index.vocab_size()) - 1;
  const int32_t term2 = RankOf(model_point[1], index.vocab_size()) - 1;
  const auto window =
      static_cast<int32_t>(std::clamp(std::llround(model_point[2]), 1LL, 50LL));

  std::span<const Posting> list1 = index.PostingsOf(term1);
  std::span<const Posting> list2 = index.PostingsOf(term2);

  int64_t misses = 0;
  for (int32_t term : {term1, term2}) {
    const int64_t pages = PagesForPostings(index.PostingCount(term));
    if (pages > 0) {
      misses += pool.FetchRun(index.index_file(), index.PostingFirstPage(term), pages);
    }
  }

  // Merge by document; within a shared document, a two-pointer sweep counts
  // position pairs no more than `window` apart.
  int64_t pair_work = 0;
  int64_t results = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < list1.size() && j < list2.size()) {
    const int32_t d1 = list1[i].doc_id;
    const int32_t d2 = list2[j].doc_id;
    if (d1 < d2) {
      ++i;
    } else if (d2 < d1) {
      ++j;
    } else {
      // Bounds of this document's runs in both lists.
      size_t i_end = i;
      while (i_end < list1.size() && list1[i_end].doc_id == d1) ++i_end;
      size_t j_end = j;
      while (j_end < list2.size() && list2[j_end].doc_id == d1) ++j_end;
      bool matched = false;
      size_t jj = j;
      for (size_t ii = i; ii < i_end; ++ii) {
        while (jj < j_end && list2[jj].position < list1[ii].position - window) {
          ++jj;
        }
        ++pair_work;
        if (jj < j_end && list2[jj].position <= list1[ii].position + window) {
          matched = true;
        }
      }
      if (matched) ++results;
      i = i_end;
      j = j_end;
    }
  }

  last_result_count_ = results;
  UdfCost cost;
  cost.cpu_work =
      kBaseWork +
      kWorkPerPosting * static_cast<double>(list1.size() + list2.size()) +
      kWorkPerPosting * static_cast<double>(pair_work) +
      kWorkPerResult * static_cast<double>(results);
  cost.io_pages = static_cast<double>(misses);
  return cost;
}

}  // namespace mlq
