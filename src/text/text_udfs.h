#ifndef MLQ_TEXT_TEXT_UDFS_H_
#define MLQ_TEXT_TEXT_UDFS_H_

#include <memory>

#include "text/text_search_engine.h"
#include "udf/costed_udf.h"

namespace mlq {

// The three keyword-based text-search UDFs of Section 5.1 ("simple,
// threshold, proximity"), implemented against TextSearchEngine. Each UDF
// documents its model-variable transformation T: model variables are term
// *ranks* (1 = most frequent) and scalar search parameters, all ordinal
// with known ranges.
//
// Engines are shared (several UDFs over one corpus, as in the paper), so
// UDFs hold a shared_ptr.

// SIMPLE(keyword, doc_prefix): returns documents with the keyword among the
// first `frac` fraction of the corpus (a date-range-restricted search).
// Model variables: (term_rank in [1, V], doc_fraction in [0.01, 1]).
// CPU ~ postings scanned; IO ~ posting-list pages read.
class SimpleSearchUdf : public CostedUdf {
 public:
  explicit SimpleSearchUdf(std::shared_ptr<TextSearchEngine> engine);

  std::string_view name() const override { return "SIMPLE"; }
  Box model_space() const override;
  UdfCost Execute(const Point& model_point) override;
  void ResetState() override { engine_->ResetCaches(); }

  // Result of the most recent Execute (matching documents), for testing.
  int64_t last_result_count() const override { return last_result_count_; }

 private:
  std::shared_ptr<TextSearchEngine> engine_;
  int64_t last_result_count_ = 0;
};

// THRESHOLD(keyword, threshold): returns documents whose normalized term
// frequency (tf / max-tf) is at least `threshold`, fetching each matching
// document. Model variables: (term_rank in [1, V], threshold in [0, 1]).
// CPU ~ postings + matches; IO ~ posting pages + one page per match.
class ThresholdSearchUdf : public CostedUdf {
 public:
  explicit ThresholdSearchUdf(std::shared_ptr<TextSearchEngine> engine);

  std::string_view name() const override { return "THRESH"; }
  Box model_space() const override;
  UdfCost Execute(const Point& model_point) override;
  void ResetState() override { engine_->ResetCaches(); }

  int64_t last_result_count() const override { return last_result_count_; }

 private:
  std::shared_ptr<TextSearchEngine> engine_;
  int64_t last_result_count_ = 0;
};

// PROXIMITY(keyword1, keyword2, window): returns documents containing both
// keywords within `window` token positions of each other. Model variables:
// (term_rank1, term_rank2 in [1, V], window in [1, 50]).
// CPU ~ merge of both posting lists + in-window pair counting; IO ~ pages
// of both lists.
class ProximitySearchUdf : public CostedUdf {
 public:
  explicit ProximitySearchUdf(std::shared_ptr<TextSearchEngine> engine);

  std::string_view name() const override { return "PROX"; }
  Box model_space() const override;
  UdfCost Execute(const Point& model_point) override;
  void ResetState() override { engine_->ResetCaches(); }

  int64_t last_result_count() const override { return last_result_count_; }

 private:
  std::shared_ptr<TextSearchEngine> engine_;
  int64_t last_result_count_ = 0;
};

}  // namespace mlq

#endif  // MLQ_TEXT_TEXT_UDFS_H_
