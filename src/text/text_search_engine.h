#ifndef MLQ_TEXT_TEXT_SEARCH_ENGINE_H_
#define MLQ_TEXT_TEXT_SEARCH_ENGINE_H_

#include <cstdint>

#include "storage/buffer_pool.h"
#include "text/corpus.h"
#include "text/inverted_index.h"

namespace mlq {

// The execution substrate shared by the three text-search UDFs: a paged
// inverted index plus the buffer pool its page reads go through. Mirrors
// the paper's Oracle Data Cartridge text functions over the Reuters corpus.
class TextSearchEngine {
 public:
  explicit TextSearchEngine(const CorpusConfig& config,
                            int64_t buffer_pool_pages = 1024);

  TextSearchEngine(const TextSearchEngine&) = delete;
  TextSearchEngine& operator=(const TextSearchEngine&) = delete;

  InvertedIndex& index() { return index_; }
  const InvertedIndex& index() const { return index_; }
  BufferPool& pool() { return pool_; }

  // Cold cache; used between experiment repetitions.
  void ResetCaches() { pool_.Invalidate(); }

 private:
  InvertedIndex index_;
  BufferPool pool_;
};

}  // namespace mlq

#endif  // MLQ_TEXT_TEXT_SEARCH_ENGINE_H_
