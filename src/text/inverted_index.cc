#include "text/inverted_index.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "common/zipf.h"

namespace mlq {

InvertedIndex::InvertedIndex(const CorpusConfig& config) : config_(config) {
  assert(config.num_docs > 0);
  assert(config.vocab_size > 0);

  Rng rng(config.seed);
  ZipfDistribution term_dist(config.vocab_size, config.zipf_z);

  postings_.assign(static_cast<size_t>(config.vocab_size), {});
  doc_lengths_.resize(static_cast<size_t>(config.num_docs));

  // Log-normal document lengths with the requested mean: if X ~ N(mu,
  // sigma^2) then E[e^X] = e^{mu + sigma^2/2}, so mu = ln(mean) - sigma^2/2.
  const double mu = std::log(config.mean_doc_length) -
                    0.5 * config.doc_length_sigma * config.doc_length_sigma;

  for (int32_t doc = 0; doc < config.num_docs; ++doc) {
    const double raw = std::exp(rng.Gaussian(mu, config.doc_length_sigma));
    const int32_t length = std::max<int32_t>(1, static_cast<int32_t>(raw));
    doc_lengths_[static_cast<size_t>(doc)] = length;
    for (int32_t pos = 0; pos < length; ++pos) {
      const int32_t term = static_cast<int32_t>(term_dist.Sample(rng)) - 1;
      postings_[static_cast<size_t>(term)].push_back(Posting{doc, pos});
      ++total_postings_;
    }
  }

  // Lay the posting lists out contiguously in the index file. Documents are
  // generated in ascending doc_id order, so each list is already sorted by
  // (doc_id, position).
  first_page_.resize(postings_.size());
  num_pages_.resize(postings_.size());
  for (size_t t = 0; t < postings_.size(); ++t) {
    const int64_t bytes = static_cast<int64_t>(postings_[t].size()) * kPostingBytes;
    const int64_t pages = PagesForBytes(bytes);
    num_pages_[t] = pages;
    first_page_[t] = pages > 0 ? index_file_.AllocateRun(pages) : kInvalidPageId;
  }

  // Document file: kDocsPerPage documents per page.
  const int64_t doc_pages =
      (config.num_docs + kDocsPerPage - 1) / kDocsPerPage;
  doc_file_.AllocateRun(doc_pages);
}

std::span<const Posting> InvertedIndex::PostingsOf(int32_t term_id) const {
  assert(term_id >= 0 && term_id < config_.vocab_size);
  return postings_[static_cast<size_t>(term_id)];
}

int64_t InvertedIndex::PostingCount(int32_t term_id) const {
  return static_cast<int64_t>(PostingsOf(term_id).size());
}

PageId InvertedIndex::PostingFirstPage(int32_t term_id) const {
  assert(term_id >= 0 && term_id < config_.vocab_size);
  return first_page_[static_cast<size_t>(term_id)];
}

int64_t InvertedIndex::PostingNumPages(int32_t term_id) const {
  assert(term_id >= 0 && term_id < config_.vocab_size);
  return num_pages_[static_cast<size_t>(term_id)];
}

int32_t InvertedIndex::DocLength(int32_t doc_id) const {
  assert(doc_id >= 0 && doc_id < config_.num_docs);
  return doc_lengths_[static_cast<size_t>(doc_id)];
}

PageId InvertedIndex::DocPage(int32_t doc_id) const {
  assert(doc_id >= 0 && doc_id < config_.num_docs);
  return doc_id / kDocsPerPage;
}

}  // namespace mlq
