#ifndef MLQ_TEXT_CORPUS_H_
#define MLQ_TEXT_CORPUS_H_

#include <cstdint>

namespace mlq {

// Parameters of the synthetic news corpus standing in for Reuters Corpus
// Volume 1 (36,422 XML articles in the paper). Term occurrences follow a
// Zipf law over a fixed vocabulary — the property of news text that drives
// text-search UDF costs (posting-list lengths) — and document lengths are
// log-normal, as is typical for news wire articles.
struct CorpusConfig {
  int32_t num_docs = 36422;
  int32_t vocab_size = 20000;
  double zipf_z = 1.0;
  // Mean document length in terms; lengths are log-normal with this mean
  // and the given sigma of the underlying normal.
  double mean_doc_length = 120.0;
  double doc_length_sigma = 0.6;
  uint64_t seed = 20040314;  // EDBT 2004 vintage.
};

}  // namespace mlq

#endif  // MLQ_TEXT_CORPUS_H_
