#ifndef MLQ_TEXT_INVERTED_INDEX_H_
#define MLQ_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "storage/page.h"
#include "storage/page_file.h"
#include "text/corpus.h"

namespace mlq {

// One term occurrence: which document and at which token position.
struct Posting {
  int32_t doc_id;
  int32_t position;
};

// A paged inverted index over a synthetic corpus.
//
// The index is generated directly from CorpusConfig (documents are never
// materialized): every document draws a log-normal length and Zipf terms,
// and each occurrence is appended to its term's posting list. Posting lists
// are laid out contiguously in a simulated page file (8 bytes per posting),
// so a scan of term t touches ceil(8 * |postings(t)| / 4096) consecutive
// pages — the IO cost a real engine would pay.
//
// A companion "document file" assigns each document a home page (documents
// are packed kDocsPerPage to a page); threshold search fetches matched
// documents from it.
class InvertedIndex {
 public:
  static constexpr int64_t kPostingBytes = 8;
  static constexpr int64_t kDocsPerPage = 8;

  explicit InvertedIndex(const CorpusConfig& config);

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  const CorpusConfig& config() const { return config_; }
  int32_t vocab_size() const { return config_.vocab_size; }
  int32_t num_docs() const { return config_.num_docs; }

  // Postings of a term (rank = term id + 1; rank 1 is the most frequent
  // term by construction of the Zipf draw). Sorted by (doc_id, position).
  std::span<const Posting> PostingsOf(int32_t term_id) const;
  int64_t PostingCount(int32_t term_id) const;

  // Page run backing the term's posting list in the index file.
  PageId PostingFirstPage(int32_t term_id) const;
  int64_t PostingNumPages(int32_t term_id) const;

  // Number of tokens in a document.
  int32_t DocLength(int32_t doc_id) const;
  // Home page of a document in the document file.
  PageId DocPage(int32_t doc_id) const;

  PageFile* index_file() { return &index_file_; }
  PageFile* doc_file() { return &doc_file_; }

  int64_t total_postings() const { return total_postings_; }

 private:
  CorpusConfig config_;
  // postings_[t] = flat posting list of term t.
  std::vector<std::vector<Posting>> postings_;
  std::vector<PageId> first_page_;
  std::vector<int64_t> num_pages_;
  std::vector<int32_t> doc_lengths_;
  PageFile index_file_{"text_index"};
  PageFile doc_file_{"text_docs"};
  int64_t total_postings_ = 0;
};

}  // namespace mlq

#endif  // MLQ_TEXT_INVERTED_INDEX_H_
