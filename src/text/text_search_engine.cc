#include "text/text_search_engine.h"

namespace mlq {

TextSearchEngine::TextSearchEngine(const CorpusConfig& config,
                                   int64_t buffer_pool_pages)
    : index_(config), pool_(buffer_pool_pages) {}

}  // namespace mlq
