#ifndef MLQ_SYNTHETIC_SYNTHETIC_UDF_H_
#define MLQ_SYNTHETIC_SYNTHETIC_UDF_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "synthetic/peak_surface.h"
#include "udf/costed_udf.h"

namespace mlq {

// Wraps a PeakSurface as an executable UDF.
//
// The surface value at the model point is the UDF's deterministic cost;
// with probability `noise_probability` an execution instead reports a
// uniformly random cost in [0, MaxCost] — the noise model of Experiment 3
// ("the probability that a query point returns a random value instead of
// the true value"). CPU and IO costs share the surface: cpu_work equals the
// surface value in work units; io_pages equals the value scaled down by
// kIoCostScale, standing for "pages fetched".
class SyntheticUdf : public CostedUdf {
 public:
  static constexpr double kIoCostScale = 1.0 / 100.0;

  SyntheticUdf(const PeakSurfaceConfig& surface_config, double noise_probability,
               uint64_t noise_seed = 0x5eedf00dULL);

  std::string_view name() const override { return name_; }
  Box model_space() const override { return surface_.space(); }
  UdfCost Execute(const Point& model_point) override;
  void ResetState() override { noise_rng_.Reseed(noise_seed_); }

  const PeakSurface& surface() const { return surface_; }
  double noise_probability() const { return noise_probability_; }

  // The noise-free cost at a point (for tests and error analysis).
  double TrueCost(const Point& p) const { return surface_.Cost(p); }

 private:
  PeakSurface surface_;
  double noise_probability_;
  uint64_t noise_seed_;
  Rng noise_rng_;
  std::string name_;
};

}  // namespace mlq

#endif  // MLQ_SYNTHETIC_SYNTHETIC_UDF_H_
