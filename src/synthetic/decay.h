#ifndef MLQ_SYNTHETIC_DECAY_H_
#define MLQ_SYNTHETIC_DECAY_H_

#include <string_view>

namespace mlq {

// The decay-function suite of Section 5.1: each synthetic peak is assigned
// one of these, specifying how the execution cost falls off with Euclidean
// distance from the peak. All are normalized to 1 at the peak and 0 at (and
// beyond) distance D, "reflecting the various computational complexities
// common to UDFs".
enum class DecayKind {
  kUniform,    // Constant plateau, cliff at D.
  kLinear,     // 1 - d/D.
  kGaussian,   // exp(-(d/D)^2 / (2 sigma^2)), sigma = 0.2 (paper value).
  kLog2,       // 1 - log2(1 + d/D).
  kQuadratic,  // 1 - (d/D)^2.
};

inline constexpr int kNumDecayKinds = 5;
inline constexpr double kGaussianDecaySigma = 0.2;

// Normalized decay factor in [0, 1] at `distance` from the peak for a decay
// region of radius `radius`. Returns 0 for distance >= radius.
double DecayValue(DecayKind kind, double distance, double radius);

// Enum <-> display name (for logs and bench output).
std::string_view DecayKindName(DecayKind kind);

// The i-th decay kind, i in [0, kNumDecayKinds).
DecayKind DecayKindAt(int i);

}  // namespace mlq

#endif  // MLQ_SYNTHETIC_DECAY_H_
