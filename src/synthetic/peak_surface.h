#ifndef MLQ_SYNTHETIC_PEAK_SURFACE_H_
#define MLQ_SYNTHETIC_PEAK_SURFACE_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "synthetic/decay.h"

namespace mlq {

// Parameters of the synthetic UDF/dataset generator (Section 5.1).
// Defaults are the paper's values.
struct PeakSurfaceConfig {
  int dims = 4;
  int num_peaks = 50;
  double range_lo = 0.0;
  double range_hi = 1000.0;
  // Maximum cost at the highest peak.
  double max_height = 10000.0;
  // Zipf exponent for peak heights.
  double zipf_z = 1.0;
  // Decay radius D as a fraction of the space diagonal (10% in the paper).
  double decay_radius_frac = 0.10;
  uint64_t seed = 7;
};

// A synthetic UDF cost surface: `num_peaks` peaks with uniformly random
// coordinates, Zipf-distributed heights scaled so the tallest reaches
// max_height, and a randomly chosen decay function per peak. The cost at a
// point is the maximum contribution over all peaks (overlapping decay
// regions therefore interact, growing more complex as N and D grow, exactly
// the knob the paper turns in Fig. 8).
class PeakSurface {
 public:
  explicit PeakSurface(const PeakSurfaceConfig& config);

  struct Peak {
    Point center;
    double height;
    DecayKind decay;
  };

  const Box& space() const { return space_; }
  const PeakSurfaceConfig& config() const { return config_; }
  const std::vector<Peak>& peaks() const { return peaks_; }
  double decay_radius() const { return decay_radius_; }

  // The (noise-free) execution cost at `p`.
  double Cost(const Point& p) const;

  // Maximum cost anywhere on the surface (the tallest peak's height).
  double MaxCost() const;

 private:
  PeakSurfaceConfig config_;
  Box space_;
  double decay_radius_;
  std::vector<Peak> peaks_;
};

}  // namespace mlq

#endif  // MLQ_SYNTHETIC_PEAK_SURFACE_H_
