#include "synthetic/decay.h"

#include <cassert>
#include <cmath>

namespace mlq {

double DecayValue(DecayKind kind, double distance, double radius) {
  assert(radius > 0.0);
  if (distance < 0.0) distance = 0.0;
  if (distance >= radius) return 0.0;
  const double t = distance / radius;  // In [0, 1).
  double v = 0.0;
  switch (kind) {
    case DecayKind::kUniform:
      v = 1.0;
      break;
    case DecayKind::kLinear:
      v = 1.0 - t;
      break;
    case DecayKind::kGaussian:
      v = std::exp(-(t * t) / (2.0 * kGaussianDecaySigma * kGaussianDecaySigma));
      break;
    case DecayKind::kLog2:
      v = 1.0 - std::log2(1.0 + t);
      break;
    case DecayKind::kQuadratic:
      v = 1.0 - t * t;
      break;
  }
  return v > 0.0 ? v : 0.0;
}

std::string_view DecayKindName(DecayKind kind) {
  switch (kind) {
    case DecayKind::kUniform:
      return "uniform";
    case DecayKind::kLinear:
      return "linear";
    case DecayKind::kGaussian:
      return "gaussian";
    case DecayKind::kLog2:
      return "log2";
    case DecayKind::kQuadratic:
      return "quadratic";
  }
  return "unknown";
}

DecayKind DecayKindAt(int i) {
  assert(i >= 0 && i < kNumDecayKinds);
  return static_cast<DecayKind>(i);
}

}  // namespace mlq
