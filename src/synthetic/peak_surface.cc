#include "synthetic/peak_surface.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"
#include "common/zipf.h"

namespace mlq {

PeakSurface::PeakSurface(const PeakSurfaceConfig& config)
    : config_(config),
      space_(Box::Cube(config.dims, config.range_lo, config.range_hi)) {
  assert(config.num_peaks >= 1);
  decay_radius_ = config.decay_radius_frac * space_.DiagonalLength();

  Rng rng(config.seed);
  ZipfDistribution zipf(config.num_peaks, config.zipf_z);

  peaks_.reserve(static_cast<size_t>(config.num_peaks));
  // Heights: rank i (1-based) gets weight 1/i^z, scaled so rank 1 ==
  // max_height; ranks are assigned to randomly placed peaks in order, the
  // placement already being uniform-random.
  for (int i = 0; i < config.num_peaks; ++i) {
    Peak peak;
    peak.center = Point(config.dims);
    for (int d = 0; d < config.dims; ++d) {
      peak.center[d] = rng.Uniform(config.range_lo, config.range_hi);
    }
    peak.height = config.max_height * zipf.RelativeWeight(i + 1);
    peak.decay = DecayKindAt(
        static_cast<int>(rng.UniformInt(0, kNumDecayKinds - 1)));
    peaks_.push_back(peak);
  }
}

double PeakSurface::Cost(const Point& p) const {
  assert(p.dims() == space_.dims());
  double best = 0.0;
  for (const Peak& peak : peaks_) {
    const double distance = p.DistanceTo(peak.center);
    if (distance >= decay_radius_) continue;
    const double v = peak.height * DecayValue(peak.decay, distance, decay_radius_);
    best = std::max(best, v);
  }
  return best;
}

double PeakSurface::MaxCost() const {
  double max_height = 0.0;
  for (const Peak& peak : peaks_) max_height = std::max(max_height, peak.height);
  return max_height;
}

}  // namespace mlq
