#include "synthetic/synthetic_udf.h"

namespace mlq {

SyntheticUdf::SyntheticUdf(const PeakSurfaceConfig& surface_config,
                           double noise_probability, uint64_t noise_seed)
    : surface_(surface_config),
      noise_probability_(noise_probability),
      noise_seed_(noise_seed),
      noise_rng_(noise_seed) {
  name_ = "SYNTH-" + std::to_string(surface_config.num_peaks) + "p";
}

UdfCost SyntheticUdf::Execute(const Point& model_point) {
  double value = surface_.Cost(model_point);
  if (noise_probability_ > 0.0 && noise_rng_.NextBool(noise_probability_)) {
    value = noise_rng_.Uniform(0.0, surface_.MaxCost());
  }
  UdfCost cost;
  cost.cpu_work = value;
  cost.io_pages = value * kIoCostScale;
  return cost;
}

}  // namespace mlq
