#include "udf/transformed_udf.h"

#include <cassert>

namespace mlq {

TransformedUdf::TransformedUdf(
    CostedUdf* inner, std::shared_ptr<const ArgumentTransform> transform)
    : inner_(inner), transform_(std::move(transform)) {
  assert(inner_ != nullptr);
  assert(transform_ != nullptr);
  assert(transform_->num_args() == inner_->model_space().dims());
  name_ = std::string(inner_->name()) + "+T";
}

}  // namespace mlq
