#ifndef MLQ_UDF_COSTED_UDF_H_
#define MLQ_UDF_COSTED_UDF_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/geometry.h"
#include "common/timer.h"

namespace mlq {

// Which execution cost a model predicts. The paper keeps one cost model per
// UDF per kind (Section 1: "the query optimizer needs to keep two cost
// estimators for each UDF in order to model both CPU and disk IO costs").
enum class CostKind {
  kCpu,
  kIo,
};

// The two actual execution costs of one UDF call.
struct UdfCost {
  // Deterministic CPU work units consumed (see common/timer.h for the
  // work-unit-to-microsecond scale).
  double cpu_work = 0.0;
  // Physical page reads (buffer-pool misses) incurred.
  double io_pages = 0.0;

  double Get(CostKind kind) const {
    return kind == CostKind::kCpu ? cpu_work : io_pages;
  }

  // Nominal wall-clock equivalent, used to normalize modeling overheads
  // against UDF execution cost (Fig. 10).
  double NominalMicros() const {
    return cpu_work * kMicrosPerWorkUnit + io_pages * kMicrosPerPageMiss;
  }
};

// A user-defined function instrumented for cost modeling.
//
// The transformation T of Section 3 is baked into each implementation: the
// Point passed to Execute already holds the *model variables* (e.g. term
// ranks, window extents), and Execute maps them back onto concrete
// arguments internally. Model variables are ordinal with known ranges,
// given by model_space().
class CostedUdf {
 public:
  virtual ~CostedUdf() = default;

  virtual std::string_view name() const = 0;

  // The k-dimensional model-variable space (ranges of every variable).
  virtual Box model_space() const = 0;

  // The space Execute's points live in. For most UDFs the transformation T
  // is the identity and this equals model_space(); UDFs wrapped in a
  // TransformedUdf expose their raw argument space here and map points
  // through ToModelPoint. Workload generators draw from execution_space();
  // cost models index ToModelPoint(point).
  virtual Box execution_space() const { return model_space(); }

  // Applies the transformation T of Section 3 to one execution point.
  // Identity by default.
  virtual Point ToModelPoint(const Point& execution_point) const {
    return execution_point;
  }

  // Runs the UDF for the arguments encoded by `model_point` and reports the
  // actual costs. Stateful substrates (buffer pools) make successive calls
  // at the same point legitimately return different IO costs.
  virtual UdfCost Execute(const Point& model_point) = 0;

  // Restores pristine execution state (e.g. cold caches) so experiments
  // can be repeated independently. Default: stateless.
  virtual void ResetState() {}

  // Number of result items produced by the most recent Execute call, for
  // UDFs whose results the engine turns into predicates (e.g. "at least k
  // matches"). Default: no result notion.
  virtual int64_t last_result_count() const { return 0; }
};

// Forwards every call to an owned inner UDF under a different name.
// Catalog-scale harnesses register many instances of one synthetic surface;
// per-entry bookkeeping (governor traffic keys, metric labels, snapshot
// store keys) requires the registered names to be distinct.
class RenamedUdf final : public CostedUdf {
 public:
  RenamedUdf(std::string name, std::unique_ptr<CostedUdf> inner)
      : name_(std::move(name)), inner_(std::move(inner)) {}

  std::string_view name() const override { return name_; }
  Box model_space() const override { return inner_->model_space(); }
  Box execution_space() const override { return inner_->execution_space(); }
  Point ToModelPoint(const Point& execution_point) const override {
    return inner_->ToModelPoint(execution_point);
  }
  UdfCost Execute(const Point& model_point) override {
    return inner_->Execute(model_point);
  }
  void ResetState() override { inner_->ResetState(); }
  int64_t last_result_count() const override {
    return inner_->last_result_count();
  }

  CostedUdf& inner() { return *inner_; }

 private:
  std::string name_;
  std::unique_ptr<CostedUdf> inner_;
};

}  // namespace mlq

#endif  // MLQ_UDF_COSTED_UDF_H_
