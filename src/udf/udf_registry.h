#ifndef MLQ_UDF_UDF_REGISTRY_H_
#define MLQ_UDF_UDF_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "udf/costed_udf.h"

namespace mlq {

// Owns a set of UDFs and resolves them by name — the role the ORDBMS
// catalog plays for the optimizer's cost estimators. Used by the example
// applications and the experiment harness.
class UdfRegistry {
 public:
  UdfRegistry() = default;
  UdfRegistry(const UdfRegistry&) = delete;
  UdfRegistry& operator=(const UdfRegistry&) = delete;

  // Registers a UDF; the registry takes ownership. Names must be unique.
  CostedUdf* Register(std::unique_ptr<CostedUdf> udf);

  // Returns the UDF with the given name, or nullptr.
  CostedUdf* Find(std::string_view name) const;

  // All registered UDFs, in registration order.
  std::vector<CostedUdf*> All() const;

  int size() const { return static_cast<int>(udfs_.size()); }

 private:
  std::vector<std::unique_ptr<CostedUdf>> udfs_;
};

}  // namespace mlq

#endif  // MLQ_UDF_UDF_REGISTRY_H_
