#ifndef MLQ_UDF_TRANSFORM_H_
#define MLQ_UDF_TRANSFORM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/geometry.h"

namespace mlq {

// The transformation function T of Section 3: maps a UDF's raw input
// arguments a_1..a_n onto the (usually fewer) cost variables c_1..c_k that
// the model actually indexes. "T allows the users to use their knowledge of
// the relationship between input arguments and the execution costs"; the
// paper's example maps (start_time, end_time) to elapsed_time.
//
// A VariableTransform describes one output cost variable as a function of
// the input arguments; ArgumentTransform bundles k of them plus the derived
// model space.
class VariableTransform {
 public:
  virtual ~VariableTransform() = default;

  // The output value from the raw argument vector.
  virtual double Apply(const Point& args) const = 0;

  // Output range given the input argument ranges (a conservative interval
  // is fine; the model clamps).
  virtual void Range(const Box& arg_space, double* lo, double* hi) const = 0;

  virtual std::string Describe() const = 0;
};

// c = a_i (pass-through).
std::unique_ptr<VariableTransform> Identity(int arg_index);

// c = a_i - a_j (the paper's elapsed_time example).
std::unique_ptr<VariableTransform> Difference(int minuend_index,
                                              int subtrahend_index);

// c = log2(1 + max(0, a_i)): compresses heavy-tailed arguments (posting
// lengths, row counts) so uniform quadtree blocks spread usefully.
std::unique_ptr<VariableTransform> Log2Scale(int arg_index);

// c = a_i * a_j (e.g. window area = width * height).
std::unique_ptr<VariableTransform> Product(int arg_index_a, int arg_index_b);

// Applies k variable transforms to map argument points into model points.
class ArgumentTransform {
 public:
  ArgumentTransform(const Box& arg_space,
                    std::vector<std::unique_ptr<VariableTransform>> variables);

  int num_args() const { return arg_space_.dims(); }
  int num_model_vars() const { return static_cast<int>(variables_.size()); }

  // The k-dimensional model space implied by the argument ranges.
  const Box& model_space() const { return model_space_; }

  // Maps raw arguments to the model point.
  Point Apply(const Point& args) const;

  std::string Describe() const;

 private:
  Box arg_space_;
  std::vector<std::unique_ptr<VariableTransform>> variables_;
  Box model_space_;
};

}  // namespace mlq

#endif  // MLQ_UDF_TRANSFORM_H_
