#include "udf/transform.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mlq {
namespace {

class IdentityTransform : public VariableTransform {
 public:
  explicit IdentityTransform(int arg_index) : arg_(arg_index) {}
  double Apply(const Point& args) const override { return args[arg_]; }
  void Range(const Box& arg_space, double* lo, double* hi) const override {
    *lo = arg_space.lo()[arg_];
    *hi = arg_space.hi()[arg_];
  }
  std::string Describe() const override {
    return "a" + std::to_string(arg_);
  }

 private:
  int arg_;
};

class DifferenceTransform : public VariableTransform {
 public:
  DifferenceTransform(int minuend, int subtrahend)
      : minuend_(minuend), subtrahend_(subtrahend) {}
  double Apply(const Point& args) const override {
    return args[minuend_] - args[subtrahend_];
  }
  void Range(const Box& arg_space, double* lo, double* hi) const override {
    *lo = arg_space.lo()[minuend_] - arg_space.hi()[subtrahend_];
    *hi = arg_space.hi()[minuend_] - arg_space.lo()[subtrahend_];
  }
  std::string Describe() const override {
    return "a" + std::to_string(minuend_) + "-a" + std::to_string(subtrahend_);
  }

 private:
  int minuend_;
  int subtrahend_;
};

class Log2Transform : public VariableTransform {
 public:
  explicit Log2Transform(int arg_index) : arg_(arg_index) {}
  double Apply(const Point& args) const override {
    return std::log2(1.0 + std::max(0.0, args[arg_]));
  }
  void Range(const Box& arg_space, double* lo, double* hi) const override {
    *lo = std::log2(1.0 + std::max(0.0, arg_space.lo()[arg_]));
    *hi = std::log2(1.0 + std::max(0.0, arg_space.hi()[arg_]));
  }
  std::string Describe() const override {
    return "log2(1+a" + std::to_string(arg_) + ")";
  }

 private:
  int arg_;
};

class ProductTransform : public VariableTransform {
 public:
  ProductTransform(int a, int b) : a_(a), b_(b) {}
  double Apply(const Point& args) const override {
    return args[a_] * args[b_];
  }
  void Range(const Box& arg_space, double* lo, double* hi) const override {
    const double candidates[4] = {
        arg_space.lo()[a_] * arg_space.lo()[b_],
        arg_space.lo()[a_] * arg_space.hi()[b_],
        arg_space.hi()[a_] * arg_space.lo()[b_],
        arg_space.hi()[a_] * arg_space.hi()[b_],
    };
    *lo = *std::min_element(candidates, candidates + 4);
    *hi = *std::max_element(candidates, candidates + 4);
  }
  std::string Describe() const override {
    return "a" + std::to_string(a_) + "*a" + std::to_string(b_);
  }

 private:
  int a_;
  int b_;
};

}  // namespace

std::unique_ptr<VariableTransform> Identity(int arg_index) {
  return std::make_unique<IdentityTransform>(arg_index);
}

std::unique_ptr<VariableTransform> Difference(int minuend_index,
                                              int subtrahend_index) {
  return std::make_unique<DifferenceTransform>(minuend_index, subtrahend_index);
}

std::unique_ptr<VariableTransform> Log2Scale(int arg_index) {
  return std::make_unique<Log2Transform>(arg_index);
}

std::unique_ptr<VariableTransform> Product(int arg_index_a, int arg_index_b) {
  return std::make_unique<ProductTransform>(arg_index_a, arg_index_b);
}

ArgumentTransform::ArgumentTransform(
    const Box& arg_space,
    std::vector<std::unique_ptr<VariableTransform>> variables)
    : arg_space_(arg_space), variables_(std::move(variables)) {
  assert(!variables_.empty());
  assert(static_cast<int>(variables_.size()) <= kMaxDims);
  Point lo(static_cast<int>(variables_.size()));
  Point hi(static_cast<int>(variables_.size()));
  for (size_t k = 0; k < variables_.size(); ++k) {
    double var_lo = 0.0;
    double var_hi = 0.0;
    variables_[k]->Range(arg_space_, &var_lo, &var_hi);
    assert(var_lo <= var_hi);
    // Guard zero-width ranges so the model space stays a valid box.
    if (var_lo == var_hi) var_hi = var_lo + 1.0;
    lo[static_cast<int>(k)] = var_lo;
    hi[static_cast<int>(k)] = var_hi;
  }
  model_space_ = Box(lo, hi);
}

Point ArgumentTransform::Apply(const Point& args) const {
  assert(args.dims() == arg_space_.dims());
  Point out(num_model_vars());
  for (size_t k = 0; k < variables_.size(); ++k) {
    out[static_cast<int>(k)] = variables_[k]->Apply(args);
  }
  return out;
}

std::string ArgumentTransform::Describe() const {
  std::string out = "T(a0..a" + std::to_string(num_args() - 1) + ") -> (";
  for (size_t k = 0; k < variables_.size(); ++k) {
    if (k > 0) out += ", ";
    out += variables_[k]->Describe();
  }
  out += ")";
  return out;
}

}  // namespace mlq
