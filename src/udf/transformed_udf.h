#ifndef MLQ_UDF_TRANSFORMED_UDF_H_
#define MLQ_UDF_TRANSFORMED_UDF_H_

#include <memory>
#include <string>

#include "udf/costed_udf.h"
#include "udf/transform.h"

namespace mlq {

// Attaches a transformation function T (Section 3) to an existing UDF:
// executions still happen on the raw argument points (the inner UDF's
// space), but the *cost model* indexes the transformed cost variables.
//
// This is how a user encodes domain knowledge like "only the window *area*
// matters, not width and height separately": the model space shrinks a
// dimension, so a fixed memory budget buys more resolution.
class TransformedUdf : public CostedUdf {
 public:
  // `inner` must outlive this object. The transform's argument space must
  // equal the inner UDF's model space.
  TransformedUdf(CostedUdf* inner,
                 std::shared_ptr<const ArgumentTransform> transform);

  std::string_view name() const override { return name_; }
  Box model_space() const override { return transform_->model_space(); }
  Box execution_space() const override { return inner_->model_space(); }
  Point ToModelPoint(const Point& execution_point) const override {
    return transform_->Apply(execution_point);
  }
  UdfCost Execute(const Point& execution_point) override {
    return inner_->Execute(execution_point);
  }
  void ResetState() override { inner_->ResetState(); }
  int64_t last_result_count() const override {
    return inner_->last_result_count();
  }

  const ArgumentTransform& transform() const { return *transform_; }

 private:
  CostedUdf* inner_;
  std::shared_ptr<const ArgumentTransform> transform_;
  std::string name_;
};

}  // namespace mlq

#endif  // MLQ_UDF_TRANSFORMED_UDF_H_
