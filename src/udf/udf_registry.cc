#include "udf/udf_registry.h"

#include <cassert>

namespace mlq {

CostedUdf* UdfRegistry::Register(std::unique_ptr<CostedUdf> udf) {
  assert(udf != nullptr);
  assert(Find(udf->name()) == nullptr);
  udfs_.push_back(std::move(udf));
  return udfs_.back().get();
}

CostedUdf* UdfRegistry::Find(std::string_view name) const {
  for (const auto& udf : udfs_) {
    if (udf->name() == name) return udf.get();
  }
  return nullptr;
}

std::vector<CostedUdf*> UdfRegistry::All() const {
  std::vector<CostedUdf*> out;
  out.reserve(udfs_.size());
  for (const auto& udf : udfs_) out.push_back(udf.get());
  return out;
}

}  // namespace mlq
