#include "spatial/grid_index.h"

#include <algorithm>
#include <cassert>

namespace mlq {

GridIndex::GridIndex(const SpatialDataset* dataset, int grid_size)
    : dataset_(dataset), grid_size_(grid_size) {
  assert(dataset != nullptr);
  assert(grid_size >= 1);
  const SpatialDatasetConfig& config = dataset->config();
  cell_extent_ = (config.range_hi - config.range_lo) / grid_size_;

  const size_t num_cells =
      static_cast<size_t>(grid_size_) * static_cast<size_t>(grid_size_);
  cell_entries_.assign(num_cells, {});

  // Assign every rectangle to each cell it overlaps.
  const auto& rects = dataset->rects();
  for (int32_t id = 0; id < static_cast<int32_t>(rects.size()); ++id) {
    const Rect& r = rects[static_cast<size_t>(id)];
    const int gx_lo = CellOf(r.lo_x);
    const int gx_hi = CellOf(r.hi_x);
    const int gy_lo = CellOf(r.lo_y);
    const int gy_hi = CellOf(r.hi_y);
    for (int gy = gy_lo; gy <= gy_hi; ++gy) {
      for (int gx = gx_lo; gx <= gx_hi; ++gx) {
        cell_entries_[CellSlot(gx, gy)].push_back(id);
      }
    }
  }

  // Page layout: one contiguous run per cell (at least one page per
  // non-empty cell), then the object file.
  cell_first_page_.assign(num_cells, kInvalidPageId);
  cell_num_pages_.assign(num_cells, 0);
  for (size_t slot = 0; slot < num_cells; ++slot) {
    const int64_t bytes =
        static_cast<int64_t>(cell_entries_[slot].size()) * kEntryBytes;
    const int64_t pages = PagesForBytes(bytes);
    cell_num_pages_[slot] = pages;
    if (pages > 0) cell_first_page_[slot] = index_file_.AllocateRun(pages);
  }
  const int64_t object_pages =
      (dataset->size() + kRectsPerPage - 1) / kRectsPerPage;
  object_file_.AllocateRun(object_pages);
}

int GridIndex::CellOf(double coordinate) const {
  const SpatialDatasetConfig& config = dataset_->config();
  const double offset = coordinate - config.range_lo;
  int g = static_cast<int>(offset / cell_extent_);
  return std::clamp(g, 0, grid_size_ - 1);
}

double GridIndex::CellLowerEdge(int g) const {
  return dataset_->config().range_lo + g * cell_extent_;
}

std::span<const int32_t> GridIndex::CellEntries(int gx, int gy) const {
  assert(gx >= 0 && gx < grid_size_ && gy >= 0 && gy < grid_size_);
  return cell_entries_[CellSlot(gx, gy)];
}

PageId GridIndex::CellFirstPage(int gx, int gy) const {
  return cell_first_page_[CellSlot(gx, gy)];
}

int64_t GridIndex::CellNumPages(int gx, int gy) const {
  return cell_num_pages_[CellSlot(gx, gy)];
}

}  // namespace mlq
