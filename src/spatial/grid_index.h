#ifndef MLQ_SPATIAL_GRID_INDEX_H_
#define MLQ_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "spatial/dataset.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace mlq {

// A paged uniform grid over a SpatialDataset.
//
// The space is split into grid_size x grid_size cells; each cell's list of
// overlapping rectangle ids (4 bytes each) is laid out contiguously in the
// index page file, and the rectangles themselves live in an object file at
// kRectsPerPage per page. Spatial UDFs read cells and objects through the
// buffer pool, so their IO cost is the pages actually missed.
class GridIndex {
 public:
  static constexpr int64_t kEntryBytes = 4;
  static constexpr int64_t kRectsPerPage = 64;

  GridIndex(const SpatialDataset* dataset, int grid_size = 64);

  GridIndex(const GridIndex&) = delete;
  GridIndex& operator=(const GridIndex&) = delete;

  const SpatialDataset& dataset() const { return *dataset_; }
  int grid_size() const { return grid_size_; }

  // Grid coordinate of a spatial coordinate (clamped into range).
  int CellOf(double coordinate) const;
  // Lower edge of cell `g` along either axis.
  double CellLowerEdge(int g) const;
  double cell_extent() const { return cell_extent_; }

  // Rect ids overlapping cell (gx, gy).
  std::span<const int32_t> CellEntries(int gx, int gy) const;
  PageId CellFirstPage(int gx, int gy) const;
  int64_t CellNumPages(int gx, int gy) const;

  // Home page of a rectangle in the object file.
  PageId ObjectPage(int32_t rect_id) const { return rect_id / kRectsPerPage; }

  PageFile* index_file() { return &index_file_; }
  PageFile* object_file() { return &object_file_; }

 private:
  size_t CellSlot(int gx, int gy) const {
    return static_cast<size_t>(gy) * static_cast<size_t>(grid_size_) +
           static_cast<size_t>(gx);
  }

  const SpatialDataset* dataset_;
  int grid_size_;
  double cell_extent_;
  std::vector<std::vector<int32_t>> cell_entries_;
  std::vector<PageId> cell_first_page_;
  std::vector<int64_t> cell_num_pages_;
  PageFile index_file_{"spatial_index"};
  PageFile object_file_{"spatial_objects"};
};

}  // namespace mlq

#endif  // MLQ_SPATIAL_GRID_INDEX_H_
