#include "spatial/spatial_udfs.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <vector>

namespace mlq {
namespace {

constexpr double kWorkPerCandidate = 2.0;
constexpr double kWorkPerResult = 4.0;
constexpr double kWorkPerCell = 1.0;
constexpr double kBaseWork = 16.0;

}  // namespace

SpatialEngine::SpatialEngine(const SpatialDatasetConfig& config, int grid_size,
                             int64_t buffer_pool_pages)
    : dataset_(config), grid_(&dataset_, grid_size), pool_(buffer_pool_pages) {}

// --------------------------------------------------------------------------
// WIN

WindowUdf::WindowUdf(std::shared_ptr<SpatialEngine> engine)
    : engine_(std::move(engine)) {}

Box WindowUdf::model_space() const {
  const SpatialDatasetConfig& config = engine_->dataset().config();
  return Box(Point{config.range_lo, config.range_lo, 1.0, 1.0},
             Point{config.range_hi, config.range_hi, 200.0, 200.0});
}

UdfCost WindowUdf::Execute(const Point& model_point) {
  assert(model_point.dims() == 4);
  GridIndex& grid = engine_->grid();
  BufferPool& pool = engine_->pool();
  const auto& rects = engine_->dataset().rects();

  const double x = model_point[0];
  const double y = model_point[1];
  const double w = std::max(1.0, model_point[2]);
  const double h = std::max(1.0, model_point[3]);
  const double wlo_x = x - 0.5 * w;
  const double whi_x = x + 0.5 * w;
  const double wlo_y = y - 0.5 * h;
  const double whi_y = y + 0.5 * h;

  int64_t misses = 0;
  int64_t candidates = 0;
  int64_t results = 0;
  int64_t cells = 0;

  const int gx_lo = grid.CellOf(wlo_x);
  const int gx_hi = grid.CellOf(whi_x);
  const int gy_lo = grid.CellOf(wlo_y);
  const int gy_hi = grid.CellOf(whi_y);
  for (int gy = gy_lo; gy <= gy_hi; ++gy) {
    for (int gx = gx_lo; gx <= gx_hi; ++gx) {
      ++cells;
      const int64_t pages = grid.CellNumPages(gx, gy);
      if (pages > 0) {
        misses += pool.FetchRun(grid.index_file(), grid.CellFirstPage(gx, gy), pages);
      }
      for (int32_t id : grid.CellEntries(gx, gy)) {
        const Rect& r = rects[static_cast<size_t>(id)];
        ++candidates;
        if (!r.IntersectsWindow(wlo_x, wlo_y, whi_x, whi_y)) continue;
        // Report each result exactly once: from the first (lowest-indexed)
        // scanned cell the rectangle overlaps — the standard grid-index
        // de-duplication for extended objects.
        if (std::max(grid.CellOf(r.lo_x), gx_lo) != gx ||
            std::max(grid.CellOf(r.lo_y), gy_lo) != gy) {
          continue;
        }
        ++results;
        if (!pool.Fetch(grid.object_file(), grid.ObjectPage(id))) ++misses;
      }
    }
  }

  last_result_count_ = results;
  UdfCost cost;
  cost.cpu_work = kBaseWork + kWorkPerCell * static_cast<double>(cells) +
                  kWorkPerCandidate * static_cast<double>(candidates) +
                  kWorkPerResult * static_cast<double>(results);
  cost.io_pages = static_cast<double>(misses);
  return cost;
}

// --------------------------------------------------------------------------
// RANGE

RangeSearchUdf::RangeSearchUdf(std::shared_ptr<SpatialEngine> engine)
    : engine_(std::move(engine)) {}

Box RangeSearchUdf::model_space() const {
  const SpatialDatasetConfig& config = engine_->dataset().config();
  return Box(Point{config.range_lo, config.range_lo, 1.0},
             Point{config.range_hi, config.range_hi, 150.0});
}

UdfCost RangeSearchUdf::Execute(const Point& model_point) {
  assert(model_point.dims() == 3);
  GridIndex& grid = engine_->grid();
  BufferPool& pool = engine_->pool();
  const auto& rects = engine_->dataset().rects();

  const double x = model_point[0];
  const double y = model_point[1];
  const double radius = std::max(1.0, model_point[2]);

  int64_t misses = 0;
  int64_t candidates = 0;
  int64_t results = 0;
  int64_t cells = 0;

  const int gx_lo = grid.CellOf(x - radius);
  const int gx_hi = grid.CellOf(x + radius);
  const int gy_lo = grid.CellOf(y - radius);
  const int gy_hi = grid.CellOf(y + radius);
  for (int gy = gy_lo; gy <= gy_hi; ++gy) {
    for (int gx = gx_lo; gx <= gx_hi; ++gx) {
      ++cells;
      const int64_t pages = grid.CellNumPages(gx, gy);
      if (pages > 0) {
        misses += pool.FetchRun(grid.index_file(), grid.CellFirstPage(gx, gy), pages);
      }
      for (int32_t id : grid.CellEntries(gx, gy)) {
        const Rect& r = rects[static_cast<size_t>(id)];
        ++candidates;
        if (r.DistanceTo(x, y) > radius) continue;
        // Exactly-once reporting from the first scanned cell the rectangle
        // overlaps (see WindowUdf).
        if (std::max(grid.CellOf(r.lo_x), gx_lo) != gx ||
            std::max(grid.CellOf(r.lo_y), gy_lo) != gy) {
          continue;
        }
        ++results;
        if (!pool.Fetch(grid.object_file(), grid.ObjectPage(id))) ++misses;
      }
    }
  }

  last_result_count_ = results;
  UdfCost cost;
  cost.cpu_work = kBaseWork + kWorkPerCell * static_cast<double>(cells) +
                  kWorkPerCandidate * static_cast<double>(candidates) +
                  kWorkPerResult * static_cast<double>(results);
  cost.io_pages = static_cast<double>(misses);
  return cost;
}

// --------------------------------------------------------------------------
// KNN

KnnUdf::KnnUdf(std::shared_ptr<SpatialEngine> engine)
    : engine_(std::move(engine)) {}

Box KnnUdf::model_space() const {
  const SpatialDatasetConfig& config = engine_->dataset().config();
  return Box(Point{config.range_lo, config.range_lo, 1.0},
             Point{config.range_hi, config.range_hi, 100.0});
}

UdfCost KnnUdf::Execute(const Point& model_point) {
  assert(model_point.dims() == 3);
  GridIndex& grid = engine_->grid();
  BufferPool& pool = engine_->pool();
  const auto& rects = engine_->dataset().rects();
  const int grid_size = grid.grid_size();

  const double x = model_point[0];
  const double y = model_point[1];
  const auto k = static_cast<int64_t>(
      std::clamp(std::llround(model_point[2]), 1LL, 100LL));

  int64_t misses = 0;
  int64_t candidates = 0;
  int64_t cells = 0;

  // Max-heap of the best k distances so far.
  std::priority_queue<std::pair<double, int32_t>> best;

  const int cgx = grid.CellOf(x);
  const int cgy = grid.CellOf(y);
  const int max_ring = grid_size;  // Upper bound; loop breaks earlier.

  for (int ring = 0; ring <= max_ring; ++ring) {
    // Once k candidates are held, a ring whose nearest possible rectangle is
    // farther than the current k-th distance cannot improve the result. A
    // rectangle owned (by center) by a ring cell can stick out of the cell
    // toward the query by at most the dataset's max half extent.
    if (static_cast<int64_t>(best.size()) >= k) {
      const double ring_min_distance =
          ring == 0 ? 0.0
                    : (ring - 1) * grid.cell_extent() -
                          engine_->dataset().max_half_extent();
      if (ring_min_distance > best.top().first) break;
    }
    bool any_cell = false;
    for (int gy = cgy - ring; gy <= cgy + ring; ++gy) {
      if (gy < 0 || gy >= grid_size) continue;
      for (int gx = cgx - ring; gx <= cgx + ring; ++gx) {
        if (gx < 0 || gx >= grid_size) continue;
        // Ring perimeter only.
        if (std::max(std::abs(gx - cgx), std::abs(gy - cgy)) != ring) continue;
        any_cell = true;
        ++cells;
        const int64_t pages = grid.CellNumPages(gx, gy);
        if (pages > 0) {
          misses +=
              pool.FetchRun(grid.index_file(), grid.CellFirstPage(gx, gy), pages);
        }
        for (int32_t id : grid.CellEntries(gx, gy)) {
          const Rect& r = rects[static_cast<size_t>(id)];
          if (grid.CellOf(r.CenterX()) != gx || grid.CellOf(r.CenterY()) != gy) {
            continue;  // De-duplicate multi-cell rectangles.
          }
          ++candidates;
          const double distance = r.DistanceTo(x, y);
          if (static_cast<int64_t>(best.size()) < k) {
            best.emplace(distance, id);
          } else if (distance < best.top().first) {
            best.pop();
            best.emplace(distance, id);
          }
        }
      }
    }
    if (!any_cell && ring > 0 && static_cast<int64_t>(best.size()) >= k) break;
  }

  // Fetch the result objects.
  int64_t results = 0;
  while (!best.empty()) {
    const int32_t id = best.top().second;
    best.pop();
    ++results;
    if (!pool.Fetch(grid.object_file(), grid.ObjectPage(id))) ++misses;
  }

  last_result_count_ = results;
  UdfCost cost;
  cost.cpu_work = kBaseWork + kWorkPerCell * static_cast<double>(cells) +
                  kWorkPerCandidate * static_cast<double>(candidates) +
                  kWorkPerResult * static_cast<double>(results);
  cost.io_pages = static_cast<double>(misses);
  return cost;
}

}  // namespace mlq
