#ifndef MLQ_SPATIAL_DATASET_H_
#define MLQ_SPATIAL_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace mlq {

// One urban-area rectangle (axis-aligned).
struct Rect {
  double lo_x = 0.0;
  double lo_y = 0.0;
  double hi_x = 0.0;
  double hi_y = 0.0;

  double CenterX() const { return 0.5 * (lo_x + hi_x); }
  double CenterY() const { return 0.5 * (lo_y + hi_y); }

  bool IntersectsWindow(double wlo_x, double wlo_y, double whi_x,
                        double whi_y) const {
    return !(hi_x < wlo_x || whi_x < lo_x || hi_y < wlo_y || whi_y < lo_y);
  }

  // Minimum Euclidean distance from (x, y) to this rectangle (0 inside).
  double DistanceTo(double x, double y) const;
};

// Parameters of the synthetic clustered rectangle dataset standing in for
// the PASDA urban-area maps of Pennsylvania counties: urban areas cluster
// around population centers with heavy-tailed cluster sizes, which is what
// makes spatial UDF costs strongly location-dependent.
struct SpatialDatasetConfig {
  int32_t num_rects = 30000;
  int32_t num_clusters = 40;
  // Cluster point scatter, as a fraction of the space extent.
  double cluster_sigma_frac = 0.04;
  // Zipf exponent for cluster populations (cluster 1 is the "Philadelphia"
  // of the dataset).
  double cluster_zipf_z = 0.8;
  double range_lo = 0.0;
  double range_hi = 1000.0;
  // Log-normal rectangle side lengths.
  double mean_rect_size = 4.0;
  double rect_size_sigma = 0.8;
  uint64_t seed = 17760704;
};

// Generates and owns the rectangles. The 2-d data space is
// [range_lo, range_hi]^2.
class SpatialDataset {
 public:
  explicit SpatialDataset(const SpatialDatasetConfig& config);

  SpatialDataset(const SpatialDataset&) = delete;
  SpatialDataset& operator=(const SpatialDataset&) = delete;

  const SpatialDatasetConfig& config() const { return config_; }
  const std::vector<Rect>& rects() const { return rects_; }
  int32_t size() const { return static_cast<int32_t>(rects_.size()); }
  Box space() const {
    return Box::Cube(2, config_.range_lo, config_.range_hi);
  }

  // Largest half side length over all rectangles; KNN's ring-pruning bound
  // must allow for a rectangle body sticking out this far from the cell
  // that owns its center.
  double max_half_extent() const { return max_half_extent_; }

 private:
  SpatialDatasetConfig config_;
  std::vector<Rect> rects_;
  double max_half_extent_ = 0.0;
};

}  // namespace mlq

#endif  // MLQ_SPATIAL_DATASET_H_
