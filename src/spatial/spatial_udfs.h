#ifndef MLQ_SPATIAL_SPATIAL_UDFS_H_
#define MLQ_SPATIAL_SPATIAL_UDFS_H_

#include <memory>

#include "spatial/grid_index.h"
#include "storage/buffer_pool.h"
#include "udf/costed_udf.h"

namespace mlq {

// The execution substrate shared by the three spatial UDFs: dataset, grid
// index, and the buffer pool their page reads go through. Mirrors the
// paper's Oracle Data Cartridge spatial functions over the PASDA urban-area
// maps.
class SpatialEngine {
 public:
  explicit SpatialEngine(const SpatialDatasetConfig& config, int grid_size = 64,
                         int64_t buffer_pool_pages = 1024);

  SpatialEngine(const SpatialEngine&) = delete;
  SpatialEngine& operator=(const SpatialEngine&) = delete;

  const SpatialDataset& dataset() const { return dataset_; }
  GridIndex& grid() { return grid_; }
  BufferPool& pool() { return pool_; }

  void ResetCaches() { pool_.Invalidate(); }

 private:
  SpatialDataset dataset_;
  GridIndex grid_;
  BufferPool pool_;
};

// WIN(x, y, w, h): rectangles intersecting the w x h window centered at
// (x, y). Model variables: (x, y in [0, 1000], w, h in [1, 200]).
// CPU ~ candidates tested; IO ~ cell pages + result object pages.
class WindowUdf : public CostedUdf {
 public:
  explicit WindowUdf(std::shared_ptr<SpatialEngine> engine);

  std::string_view name() const override { return "WIN"; }
  Box model_space() const override;
  UdfCost Execute(const Point& model_point) override;
  void ResetState() override { engine_->ResetCaches(); }

  int64_t last_result_count() const override { return last_result_count_; }

 private:
  std::shared_ptr<SpatialEngine> engine_;
  int64_t last_result_count_ = 0;
};

// RANGE(x, y, r): rectangles within distance r of (x, y). Model variables:
// (x, y in [0, 1000], r in [1, 150]).
class RangeSearchUdf : public CostedUdf {
 public:
  explicit RangeSearchUdf(std::shared_ptr<SpatialEngine> engine);

  std::string_view name() const override { return "RANGE"; }
  Box model_space() const override;
  UdfCost Execute(const Point& model_point) override;
  void ResetState() override { engine_->ResetCaches(); }

  int64_t last_result_count() const override { return last_result_count_; }

 private:
  std::shared_ptr<SpatialEngine> engine_;
  int64_t last_result_count_ = 0;
};

// KNN(x, y, k): the k rectangles nearest to (x, y), found by expanding
// square rings of grid cells until the k-th best distance is safe. Model
// variables: (x, y in [0, 1000], k in [1, 100]).
class KnnUdf : public CostedUdf {
 public:
  explicit KnnUdf(std::shared_ptr<SpatialEngine> engine);

  std::string_view name() const override { return "KNN"; }
  Box model_space() const override;
  UdfCost Execute(const Point& model_point) override;
  void ResetState() override { engine_->ResetCaches(); }

  int64_t last_result_count() const override { return last_result_count_; }

 private:
  std::shared_ptr<SpatialEngine> engine_;
  int64_t last_result_count_ = 0;
};

}  // namespace mlq

#endif  // MLQ_SPATIAL_SPATIAL_UDFS_H_
