#include "spatial/dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "common/zipf.h"

namespace mlq {

double Rect::DistanceTo(double x, double y) const {
  const double dx = std::max({lo_x - x, 0.0, x - hi_x});
  const double dy = std::max({lo_y - y, 0.0, y - hi_y});
  return std::sqrt(dx * dx + dy * dy);
}

SpatialDataset::SpatialDataset(const SpatialDatasetConfig& config)
    : config_(config) {
  assert(config.num_rects > 0);
  assert(config.num_clusters > 0);

  Rng rng(config.seed);
  const double extent = config.range_hi - config.range_lo;
  const double sigma = config.cluster_sigma_frac * extent;

  // Cluster centers uniform; cluster populations Zipf-distributed.
  struct Cluster {
    double x;
    double y;
  };
  std::vector<Cluster> clusters;
  clusters.reserve(static_cast<size_t>(config.num_clusters));
  for (int32_t c = 0; c < config.num_clusters; ++c) {
    clusters.push_back(Cluster{rng.Uniform(config.range_lo, config.range_hi),
                               rng.Uniform(config.range_lo, config.range_hi)});
  }
  ZipfDistribution cluster_dist(config.num_clusters, config.cluster_zipf_z);

  const double size_mu = std::log(config.mean_rect_size) -
                         0.5 * config.rect_size_sigma * config.rect_size_sigma;

  rects_.reserve(static_cast<size_t>(config.num_rects));
  for (int32_t i = 0; i < config.num_rects; ++i) {
    const auto c = static_cast<size_t>(cluster_dist.Sample(rng) - 1);
    const double cx = std::clamp(rng.Gaussian(clusters[c].x, sigma),
                                 config.range_lo, config.range_hi);
    const double cy = std::clamp(rng.Gaussian(clusters[c].y, sigma),
                                 config.range_lo, config.range_hi);
    const double w = std::exp(rng.Gaussian(size_mu, config.rect_size_sigma));
    const double h = std::exp(rng.Gaussian(size_mu, config.rect_size_sigma));
    Rect rect;
    rect.lo_x = std::max(config.range_lo, cx - 0.5 * w);
    rect.hi_x = std::min(config.range_hi, cx + 0.5 * w);
    rect.lo_y = std::max(config.range_lo, cy - 0.5 * h);
    rect.hi_y = std::min(config.range_hi, cy + 0.5 * h);
    rects_.push_back(rect);
    max_half_extent_ = std::max(
        {max_half_extent_, 0.5 * (rect.hi_x - rect.lo_x),
         0.5 * (rect.hi_y - rect.lo_y)});
  }
}

}  // namespace mlq
