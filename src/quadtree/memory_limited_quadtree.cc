#include "quadtree/memory_limited_quadtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <queue>

#include "obs/obs.h"

namespace mlq {
namespace {

// Clamps `point` onto the closed box `space`, coordinate by coordinate.
Point ClampToSpace(const Point& point, const Box& space) {
  Point p = point;
  for (int i = 0; i < space.dims(); ++i) {
    if (p[i] < space.lo()[i]) p[i] = space.lo()[i];
    if (p[i] > space.hi()[i]) p[i] = space.hi()[i];
  }
  return p;
}

}  // namespace

MemoryLimitedQuadtree::MemoryLimitedQuadtree(const Box& space,
                                             const MlqConfig& config)
    : space_(space), config_(config), budget_(config.memory_limit_bytes) {
  assert(space.dims() >= 1 && space.dims() <= kMaxDims);
  assert(config.max_depth >= 0);
  assert(config.memory_limit_bytes >= kNodeBaseBytes);
  root_ = std::make_unique<QuadtreeNode>(nullptr, 0, 0);
  budget_.Charge(NodeCost(/*is_root=*/true));
  num_nodes_ = 1;
}

Prediction MemoryLimitedQuadtree::Predict(const Point& point) const {
  return PredictWithBeta(point, config_.beta);
}

Prediction MemoryLimitedQuadtree::PredictWithBeta(const Point& point,
                                                  int64_t beta) const {
  obs::ScopedLatency latency(obs::Core().predict_ns, obs::Core().predicts,
                             obs::TraceEventType::kPredict);
  const Point p = ClampToSpace(point, space_);
  const QuadtreeNode* cn = root_.get();
  Prediction out;
  if (cn->summary().count < beta) {
    // Not even the root qualifies; fall back to whatever average exists.
    out.value = cn->summary().Avg();
    out.stddev = cn->summary().count > 0
                     ? std::sqrt(cn->summary().Sse() /
                                 static_cast<double>(cn->summary().count))
                     : 0.0;
    out.count = cn->summary().count;
    out.depth = 0;
    out.reliable = false;
    latency.set_args(out.value, out.depth);
    return out;
  }
  // Counts shrink monotonically along a root-to-leaf path (summaries are
  // cumulative), so the lowest node with count >= beta is found by walking
  // down until the next child is absent or under-populated.
  Box box = space_;
  while (true) {
    const int ci = box.ChildIndexOf(p);
    const QuadtreeNode* child = cn->Child(ci);
    if (child == nullptr || child->summary().count < beta) break;
    cn = child;
    box = box.Child(ci);
  }
  out.value = cn->summary().Avg();
  out.stddev =
      std::sqrt(cn->summary().Sse() / static_cast<double>(cn->summary().count));
  out.count = cn->summary().count;
  out.depth = cn->depth();
  out.reliable = true;
  latency.set_args(out.value, out.depth);
  return out;
}

double MemoryLimitedQuadtree::CurrentSseThreshold() const {
  if (config_.strategy == InsertionStrategy::kEager) return 0.0;
  // Lazy uses th_SSE = alpha * SSE(root) only once the first compression
  // has established how much cost variation the space holds (Section 4.4);
  // before that it partitions eagerly.
  if (!compressed_once_) return 0.0;
  return config_.alpha * root_->summary().Sse();
}

void MemoryLimitedQuadtree::ExpandToInclude(const Point& point) {
  while (!space_.ContainsClosed(point)) {
    if (obs::Enabled()) {
      obs::Core().expansions.Inc();
      MLQ_TRACE_EVENT(obs::TraceEventType::kExpand, obs::NowNs(), 0,
                      static_cast<double>(config_.max_depth + 1), 0.0);
    }
    // Grow the space away from the point's overflow direction: along every
    // dimension where the point lies below the space, the old block becomes
    // the *upper* half of the doubled space; everywhere else the lower half.
    Point new_lo(space_.dims());
    Point new_hi(space_.dims());
    int old_root_index = 0;
    for (int d = 0; d < space_.dims(); ++d) {
      const double extent = space_.Extent(d);
      if (point[d] < space_.lo()[d]) {
        new_lo[d] = space_.lo()[d] - extent;
        new_hi[d] = space_.hi()[d];
        old_root_index |= (1 << d);
      } else {
        new_lo[d] = space_.lo()[d];
        new_hi[d] = space_.hi()[d] + extent;
      }
    }

    // A tree that has never absorbed an observation just grows its space:
    // demoting the empty root to a child slot would create a node with no
    // data points, which every non-root node must have.
    if (root_->IsLeaf() && root_->summary().count == 0) {
      space_ = Box(new_lo, new_hi);
      ++config_.max_depth;  // Preserve the finest block resolution.
      continue;
    }

    // The old root becomes a non-root node: it now occupies a child slot,
    // and the new root costs a base charge. Make room first if needed.
    const int64_t extra = kNodeBaseBytes + kChildSlotBytes;
    if (!budget_.CanCharge(extra)) CompressInternal({});
    // Even if compression could not free enough, expansion must proceed —
    // the space has to cover the data. The budget check above keeps this
    // within limits in all but pathological tiny-budget cases.
    budget_.Charge(extra);

    auto new_root = std::make_unique<QuadtreeNode>(nullptr, 0, 0);
    new_root->mutable_summary() = root_->summary();
    new_root->AdoptChild(old_root_index, std::move(root_));
    root_ = std::move(new_root);
    space_ = Box(new_lo, new_hi);
    ++config_.max_depth;  // Preserve the finest block resolution.
    ++num_nodes_;
    ++counters_.nodes_created;
  }
}

void MemoryLimitedQuadtree::Insert(const Point& point, double value) {
  // Non-finite feedback would permanently poison the summary triples (a
  // single NaN makes every ancestor average NaN); drop such observations,
  // as a production system would drop a garbled measurement.
  if (!std::isfinite(value)) return;
  for (int d = 0; d < point.dims(); ++d) {
    if (!std::isfinite(point[d])) return;
  }

  WallTimer timer;
  const double compress_seconds_before = counters_.compress_seconds;
  ++counters_.insertions;
  obs::ScopedLatency latency(obs::Core().insert_ns, obs::Core().inserts,
                             obs::TraceEventType::kInsert);

  if (config_.auto_expand) ExpandToInclude(point);
  const Point p = ClampToSpace(point, space_);
  const double th_sse = CurrentSseThreshold();

  std::vector<const QuadtreeNode*> path;
  path.reserve(static_cast<size_t>(config_.max_depth) + 1);

  QuadtreeNode* cn = root_.get();
  Box box = space_;
  cn->mutable_summary().Add(value);
  cn->set_last_touch(counters_.insertions);
  path.push_back(cn);

  // Fig. 4: descend while the current node wants partitioning (SSE above
  // threshold and below max depth) or is already internal; create missing
  // children along the way.
  while ((cn->summary().Sse() >= th_sse && cn->depth() < config_.max_depth) ||
         !cn->IsLeaf()) {
    const int ci = box.ChildIndexOf(p);
    QuadtreeNode* child = cn->Child(ci);
    if (child == nullptr) {
      if (cn->depth() >= config_.max_depth) break;  // Never exceed lambda.
      child = TryCreateChild(cn, ci, path);
      if (child == nullptr) break;  // Budget exhausted even after compression.
    }
    cn = child;
    box = box.Child(ci);
    cn->mutable_summary().Add(value);
    cn->set_last_touch(counters_.insertions);
    path.push_back(cn);
  }

  const double compress_delta =
      counters_.compress_seconds - compress_seconds_before;
  counters_.insert_seconds += timer.ElapsedSeconds() - compress_delta;
  latency.set_args(value, static_cast<double>(path.size()));
}

QuadtreeNode* MemoryLimitedQuadtree::TryCreateChild(
    QuadtreeNode* parent, int index,
    const std::vector<const QuadtreeNode*>& protected_path) {
  const int64_t cost = NodeCost(/*is_root=*/false);
  if (!budget_.CanCharge(cost)) {
    CompressInternal(protected_path);
    if (!budget_.CanCharge(cost)) return nullptr;
  }
  budget_.Charge(cost);
  ++num_nodes_;
  ++counters_.nodes_created;
  if (obs::Enabled()) {
    obs::Core().partitions.Inc();
    MLQ_TRACE_EVENT(obs::TraceEventType::kPartition, obs::NowNs(), 0,
                    static_cast<double>(parent->depth() + 1),
                    static_cast<double>(index));
  }
  return parent->CreateChild(index);
}

void MemoryLimitedQuadtree::Compress() { CompressInternal({}); }

void MemoryLimitedQuadtree::CompressInternal(
    const std::vector<const QuadtreeNode*>& protected_path) {
  WallTimer timer;
  const bool obs_on = obs::Enabled();
  const int64_t obs_t0 = obs_on ? obs::NowNs() : 0;
  ++counters_.compressions;
  compressed_once_ = true;

  auto is_protected = [&protected_path](const QuadtreeNode* n) {
    return std::find(protected_path.begin(), protected_path.end(), n) !=
           protected_path.end();
  };

  // Min-heap over leaves keyed by SSEG (Fig. 6, line 1). SSEG values never
  // change during a compression pass — removing a leaf leaves every other
  // node's summary intact — so entries are never stale. With the optional
  // recency extension the key is SSEG damped by the node's idle age.
  struct Entry {
    double sseg;
    QuadtreeNode* node;
  };
  auto cmp = [](const Entry& a, const Entry& b) { return a.sseg > b.sseg; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> pq(cmp);

  // The eviction key: smaller evicts first. kSseg is Eq. 9; the ablation
  // policies replace it. Random uses a per-pass hash of the node address so
  // the PQ machinery is identical across policies.
  uint64_t random_salt = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(
                             counters_.compressions);
  auto eviction_key = [this, random_salt](const QuadtreeNode* node) {
    double key = 0.0;
    switch (config_.eviction_policy) {
      case EvictionPolicy::kSseg:
        key = node->Sseg();
        break;
      case EvictionPolicy::kCountOnly:
        key = static_cast<double>(node->summary().count);
        break;
      case EvictionPolicy::kRandom: {
        uint64_t h = reinterpret_cast<uint64_t>(node) ^ random_salt;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        key = static_cast<double>(h >> 11);
        break;
      }
    }
    if (config_.recency_half_life > 0.0) {
      const double age =
          static_cast<double>(counters_.insertions - node->last_touch());
      key *= std::exp2(-age / config_.recency_half_life);
    }
    return key;
  };

  std::function<void(QuadtreeNode*)> collect = [&](QuadtreeNode* node) {
    if (node->IsLeaf()) {
      if (node != root_.get() && !is_protected(node)) {
        pq.push(Entry{eviction_key(node), node});
      }
      return;
    }
    for (const auto& entry : node->children()) collect(entry.node.get());
  };
  collect(root_.get());

  // Free at least gamma * budget bytes (Fig. 6, line 2), always at least
  // one node so a triggered compression makes progress.
  const int64_t target = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(config_.gamma *
                                           static_cast<double>(budget_.limit()))));
  int64_t freed = 0;
  while (!pq.empty() && freed < target) {
    QuadtreeNode* leaf = pq.top().node;
    pq.pop();
    QuadtreeNode* parent = leaf->parent();
    parent->RemoveChild(leaf->index_in_parent());
    budget_.Release(NodeCost(/*is_root=*/false));
    freed += NodeCost(/*is_root=*/false);
    --num_nodes_;
    ++counters_.nodes_freed;
    if (parent != root_.get() && parent->IsLeaf() && !is_protected(parent)) {
      pq.push(Entry{eviction_key(parent), parent});
    }
  }

  counters_.compress_seconds += timer.ElapsedSeconds();
  if (obs_on) {
    obs::CoreMetrics& core = obs::Core();
    core.compressions.Inc();
    core.compress_bytes_freed.Inc(freed);
    const double th_sse = CurrentSseThreshold();
    core.sse_threshold.Set(th_sse);
    const int64_t dur = obs::NowNs() - obs_t0;
    core.compress_ns.Record(dur);
    MLQ_TRACE_EVENT(obs::TraceEventType::kCompress, obs_t0, dur,
                    static_cast<double>(freed), th_sse);
  }
}

double MemoryLimitedQuadtree::TotalSsenc() const {
  const int full_children = 1 << space_.dims();
  double total = 0.0;
  std::function<void(const QuadtreeNode&)> walk = [&](const QuadtreeNode& node) {
    // SSENC(b) = SSE(b) - sum_children [SSE(c) + SSEG(c)]: the squared error
    // about AVG(b) of points not summarized by any existing child.
    double ssenc = node.summary().Sse();
    for (const auto& entry : node.children()) {
      const QuadtreeNode& child = *entry.node;
      ssenc -= child.summary().Sse() + child.Sseg();
      walk(child);
    }
    if (node.num_children() < full_children) {
      total += std::max(0.0, ssenc);
    }
  };
  walk(*root_);
  return total;
}

void MemoryLimitedQuadtree::ForEachNode(
    const std::function<void(const QuadtreeNode&, const Box&)>& fn) const {
  std::function<void(const QuadtreeNode&, const Box&)> walk =
      [&](const QuadtreeNode& node, const Box& box) {
        fn(node, box);
        for (const auto& entry : node.children()) {
          walk(*entry.node, box.Child(entry.index));
        }
      };
  walk(*root_, space_);
}

bool MemoryLimitedQuadtree::CheckInvariants(std::string* error) const {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  char buf[256];

  int64_t nodes_seen = 0;
  int64_t expected_memory = 0;
  bool ok = true;
  std::string first_error;

  std::function<void(const QuadtreeNode&, const Box&)> walk =
      [&](const QuadtreeNode& node, const Box& box) {
        if (!ok) return;
        ++nodes_seen;
        expected_memory += NodeCost(node.parent() == nullptr);
        if (node.depth() > config_.max_depth) {
          std::snprintf(buf, sizeof(buf), "node at depth %d exceeds lambda %d",
                        node.depth(), config_.max_depth);
          first_error = buf;
          ok = false;
          return;
        }
        if (node.parent() == nullptr && &node != root_.get()) {
          first_error = "non-root node without parent";
          ok = false;
          return;
        }
        // Every node summarizes at least one data point — except the root
        // of a never-inserted-into tree.
        if (node.summary().count <= 0 && node.parent() != nullptr) {
          first_error = "node with no data points at " + box.ToString();
          ok = false;
          return;
        }
        int64_t child_count_sum = 0;
        int previous_index = -1;
        for (const auto& entry : node.children()) {
          if (entry.index <= previous_index) {
            first_error = "child list not sorted/unique";
            ok = false;
            return;
          }
          previous_index = entry.index;
          if (entry.index >= (1 << space_.dims())) {
            first_error = "child index out of range";
            ok = false;
            return;
          }
          if (entry.node->parent() != &node ||
              entry.node->index_in_parent() != entry.index ||
              entry.node->depth() != node.depth() + 1) {
            first_error = "child back-pointers inconsistent";
            ok = false;
            return;
          }
          child_count_sum += entry.node->summary().count;
        }
        if (child_count_sum > node.summary().count) {
          std::snprintf(buf, sizeof(buf),
                        "children count %lld exceeds parent count %lld",
                        static_cast<long long>(child_count_sum),
                        static_cast<long long>(node.summary().count));
          first_error = buf;
          ok = false;
          return;
        }
        for (const auto& entry : node.children()) {
          walk(*entry.node, box.Child(entry.index));
        }
      };
  walk(*root_, space_);
  if (!ok) return fail(first_error);

  if (nodes_seen != num_nodes_) {
    std::snprintf(buf, sizeof(buf), "num_nodes %lld but %lld reachable",
                  static_cast<long long>(num_nodes_),
                  static_cast<long long>(nodes_seen));
    return fail(buf);
  }
  if (expected_memory != budget_.used()) {
    std::snprintf(buf, sizeof(buf), "memory accounting %lld != expected %lld",
                  static_cast<long long>(budget_.used()),
                  static_cast<long long>(expected_memory));
    return fail(buf);
  }
  if (budget_.used() > budget_.limit()) {
    return fail("memory over budget");
  }
  return true;
}

}  // namespace mlq
