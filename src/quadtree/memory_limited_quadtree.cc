#include "quadtree/memory_limited_quadtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <queue>

#include "obs/obs.h"

namespace mlq {
namespace {

// Clamps `point` onto the closed box `space`, coordinate by coordinate,
// writing into a raw coordinate array (the descent below works on raw
// doubles to avoid Point/Box copies per level).
void ClampToSpace(const Point& point, const Box& space, double* out) {
  for (int i = 0; i < space.dims(); ++i) {
    double v = point[i];
    if (v < space.lo()[i]) v = space.lo()[i];
    if (v > space.hi()[i]) v = space.hi()[i];
    out[i] = v;
  }
}

}  // namespace

MemoryLimitedQuadtree::MemoryLimitedQuadtree(const Box& space,
                                             const MlqConfig& config)
    : MemoryLimitedQuadtree(space, config, nullptr) {}

MemoryLimitedQuadtree::MemoryLimitedQuadtree(
    const Box& space, const MlqConfig& config,
    std::shared_ptr<SharedNodeArena> arena)
    : space_(space),
      config_(config),
      budget_(config.memory_limit_bytes),
      pool_(1 << space.dims(), std::move(arena)) {
  assert(space.dims() >= 1 && space.dims() <= kMaxDims);
  assert(config.max_depth >= 0);
  assert(config.memory_limit_bytes >= kNodeBaseBytes);
  // Pre-size the arena for the budget ceiling. Child blocks hold vacant
  // slots for unmaterialized quadrants, so the slot demand can exceed the
  // live-node ceiling; reserving the node ceiling covers the common case
  // and the vector's growth doubling absorbs the rest.
  const int64_t max_nodes =
      1 + (config.memory_limit_bytes - kNodeBaseBytes) / kNonRootNodeBytes;
  pool_.Reserve(static_cast<size_t>(std::min<int64_t>(max_nodes, 1 << 20)));
  root_ = pool_.AllocateRoot();
  SyncBudget();
  counters_.nodes_created = 0;  // The root is not counted as "created".
  // On a shared arena, Compact() relocates blocks and must patch this
  // tree's root index in place.
  if (pool_.shares_arena()) pool_.arena().RegisterRoot(&root_);
}

MemoryLimitedQuadtree::~MemoryLimitedQuadtree() {
  // A private arena simply dies with the pool; a shared one outlives this
  // tree, so hand every block back to the communal free-list.
  if (pool_.shares_arena()) {
    pool_.arena().UnregisterRoot(&root_);
    pool_.ReleaseTree(root_);
  }
}

Prediction MemoryLimitedQuadtree::Predict(const Point& point) const {
  return PredictWithBeta(point, config_.beta);
}

Prediction MemoryLimitedQuadtree::PredictInternal(const Point& point,
                                                  int64_t beta) const {
  const int dims = space_.dims();
  double p[kMaxDims];
  ClampToSpace(point, space_, p);

  // Node addresses are slab-stable, so holding references across the
  // (read-only) descent is safe even while sibling trees grow the arena.
  const SharedNodeArena& arena = pool_.arena();
  const PooledNode* cn = &arena.node(root_);
  Prediction out;
  // With decay on, the beta reliability test weighs each node's count by
  // its un-materialized age (the predict path never mutates the tree): a
  // stale node counts as 2^(-age/H) of itself, so the descent stops higher
  // in regions the workload has left. With decay off this is the seed's
  // exact integer comparison.
  const bool decay_on = decay_enabled();
  auto under_beta = [&](const PooledNode& n) {
    if (!decay_on) return n.summary.count < beta;
    double c = static_cast<double>(n.summary.count);
    if (n.decay_epoch != decay_epoch_) c *= DecayFactor(n.decay_epoch);
    return c < static_cast<double>(beta);
  };
  if (under_beta(*cn)) {
    // Not even the root qualifies; fall back to whatever average exists.
    out.value = cn->summary.Avg();
    out.stddev = cn->summary.Stddev();
    out.count = cn->summary.count;
    out.depth = 0;
    out.reliable = false;
    return out;
  }
  // Counts shrink monotonically along a root-to-leaf path (summaries are
  // cumulative), so the lowest node with count >= beta is found by walking
  // down until the next child is absent or under-populated. The block
  // bounds are maintained in place — same arithmetic as Box::ChildIndexOf /
  // Box::Child, without materializing a Box per level.
  double lo[kMaxDims];
  double hi[kMaxDims];
  double mid[kMaxDims];
  for (int d = 0; d < dims; ++d) {
    lo[d] = space_.lo()[d];
    hi[d] = space_.hi()[d];
  }
  while (true) {
    int ci = 0;
    for (int d = 0; d < dims; ++d) {
      mid[d] = 0.5 * (lo[d] + hi[d]);
      if (p[d] >= mid[d]) ci |= (1 << d);
    }
    // Block layout: the child for quadrant ci, when present, is exactly at
    // slot first_child + ci — a single indexed load, no sibling scan.
    const NodeIndex base = cn->first_child;
    if (base == kInvalidNodeIndex) break;
    const PooledNode* child = &arena.node(base + static_cast<NodeIndex>(ci));
    if (child->index_in_parent != ci || under_beta(*child)) break;
    cn = child;
    for (int d = 0; d < dims; ++d) {
      if ((ci >> d) & 1) {
        lo[d] = mid[d];
      } else {
        hi[d] = mid[d];
      }
    }
  }
  out.value = cn->summary.Avg();
  // Stddev() rather than a bare sqrt(SSE/C): an explicit beta <= 0 admits
  // empty nodes as "reliable", and 0/0 under the sqrt would surface NaN.
  out.stddev = cn->summary.Stddev();
  out.count = cn->summary.count;
  out.depth = cn->depth;
  out.reliable = true;
  return out;
}

Prediction MemoryLimitedQuadtree::PredictWithBeta(const Point& point,
                                                  int64_t beta) const {
  obs::ScopedLatency latency(obs::Core().predict_ns, obs::Core().predicts,
                             obs::TraceEventType::kPredict);
  const Prediction out = PredictInternal(point, beta);
  latency.set_args(out.value, out.depth);
  return out;
}

void MemoryLimitedQuadtree::PredictBatch(std::span<const Point> points,
                                         std::span<Prediction> out) const {
  PredictBatchWithBeta(points, out, config_.beta);
}

void MemoryLimitedQuadtree::PredictBatchWithBeta(std::span<const Point> points,
                                                 std::span<Prediction> out,
                                                 int64_t beta) const {
  assert(points.size() == out.size());
  const bool obs_on = obs::Enabled();
  const int64_t t0 = obs_on ? obs::NowNs() : 0;
  for (size_t i = 0; i < points.size(); ++i) {
    out[i] = PredictInternal(points[i], beta);
  }
  if (obs_on && !points.empty()) {
    obs::CoreMetrics& core = obs::Core();
    core.predicts.Inc(static_cast<int64_t>(points.size()));
    core.predict_batches.Inc();
    const int64_t dur = obs::NowNs() - t0;
    core.predict_batch_ns.Record(dur);
    MLQ_TRACE_EVENT(obs::TraceEventType::kPredict, t0, dur,
                    static_cast<double>(points.size()),
                    out[0].value);
  }
}

double MemoryLimitedQuadtree::CurrentSseThreshold() const {
  if (config_.strategy == InsertionStrategy::kEager) return 0.0;
  // Lazy uses th_SSE = alpha * SSE(root) only once the first compression
  // has established how much cost variation the space holds (Section 4.4);
  // before that it partitions eagerly.
  if (!compressed_once_) return 0.0;
  return config_.alpha * pool_.node(root_).summary.Sse();
}

void MemoryLimitedQuadtree::AdvanceDecayEpoch(int64_t epochs) {
  if (!decay_enabled() || epochs <= 0) return;
  decay_epoch_ += static_cast<uint32_t>(epochs);
  if (obs::Enabled()) obs::Core().decay_epochs.Inc(epochs);
}

double MemoryLimitedQuadtree::DecayFactor(uint32_t node_epoch) const {
  const double age = static_cast<double>(decay_epoch_ - node_epoch);
  return std::exp2(-age / config_.decay_half_life);
}

void MemoryLimitedQuadtree::MaterializeDecay(PooledNode& node) {
  if (node.decay_epoch == decay_epoch_) return;
  const int64_t count = node.summary.count;
  const int64_t decayed = std::llround(
      DecayFactor(node.decay_epoch) * static_cast<double>(count));
  if (decayed >= count) {
    // Rounding kept the count intact (small count or small age): leave the
    // node — including its epoch stamp — untouched, so the age keeps
    // accumulating and is applied in full on a later touch. Stamping here
    // instead would let a count-1 node shrug off any number of sub-half-life
    // nudges and never forget.
    return;
  }
  node.decay_epoch = decay_epoch_;
  if (decayed <= 0) {
    node.summary = SummaryTriple{};
    return;
  }
  // Scale sum and sum-of-squares by the exact realized ratio so
  // AVG = sum/count is preserved bit-for-bit-in-spirit (same real value)
  // and SSE = SS - C * AVG^2 scales by the ratio, staying non-negative.
  const double ratio =
      static_cast<double>(decayed) / static_cast<double>(count);
  node.summary.sum *= ratio;
  node.summary.sum_squares *= ratio;
  node.summary.count = decayed;
}

void MemoryLimitedQuadtree::ExpandToInclude(const Point& point) {
  while (!space_.ContainsClosed(point)) {
    if (obs::Enabled()) {
      obs::Core().expansions.Inc();
      MLQ_TRACE_EVENT(obs::TraceEventType::kExpand, obs::NowNs(), 0,
                      static_cast<double>(config_.max_depth + 1), 0.0);
    }
    // Grow the space away from the point's overflow direction: along every
    // dimension where the point lies below the space, the old block becomes
    // the *upper* half of the doubled space; everywhere else the lower half.
    Point new_lo(space_.dims());
    Point new_hi(space_.dims());
    int old_root_quadrant = 0;
    for (int d = 0; d < space_.dims(); ++d) {
      const double extent = space_.Extent(d);
      if (point[d] < space_.lo()[d]) {
        new_lo[d] = space_.lo()[d] - extent;
        new_hi[d] = space_.hi()[d];
        old_root_quadrant |= (1 << d);
      } else {
        new_lo[d] = space_.lo()[d];
        new_hi[d] = space_.hi()[d] + extent;
      }
    }

    // A tree that has never absorbed an observation just grows its space:
    // demoting the empty root to a child slot would create a node with no
    // data points, which every non-root node must have.
    if (pool_.node(root_).IsLeaf() && pool_.node(root_).summary.count == 0) {
      space_ = Box(new_lo, new_hi);
      ++config_.max_depth;  // Preserve the finest block resolution.
      continue;
    }

    // The old root becomes a non-root node: it now occupies a child slot,
    // and the new root costs a base charge. Make room first if needed.
    const int64_t extra = kNodeBaseBytes + kChildSlotBytes;
    if (!budget_.CanCharge(extra)) CompressInternal({});
    // Even if compression could not free enough, expansion must proceed —
    // the space has to cover the data. The budget check above keeps this
    // within limits in all but pathological tiny-budget cases.

    const NodeIndex old_root = root_;
    const NodeIndex new_root = pool_.AllocateRoot();
    {
      // AllocateRoot may grow the arena: fetch references afterwards.
      PooledNode& new_root_node = pool_.node(new_root);
      const PooledNode& old_root_node = pool_.node(old_root);
      new_root_node.summary = old_root_node.summary;
      new_root_node.last_touch = old_root_node.last_touch;
      new_root_node.decay_epoch = old_root_node.decay_epoch;
    }
    // Move the old root into the new root's child block (this relocates it
    // to slot first_child + quadrant and recycles its old block), then shift
    // the whole demoted subtree one level down (iterative pre-order; the
    // pool makes an explicit stack natural).
    const NodeIndex demoted =
        pool_.AdoptChild(new_root, old_root_quadrant, old_root);
    const int fanout = pool_.fanout();
    std::vector<NodeIndex> stack{demoted};
    while (!stack.empty()) {
      const NodeIndex index = stack.back();
      stack.pop_back();
      PooledNode& node = pool_.node(index);
      assert(node.depth < 0xFFFF);
      ++node.depth;
      if (node.first_child == kInvalidNodeIndex) continue;
      const PooledNode* block = pool_.block(node.first_child);
      for (int q = 0; q < fanout; ++q) {
        if (block[q].index_in_parent == q) {
          stack.push_back(node.first_child + static_cast<NodeIndex>(q));
        }
      }
    }
    root_ = new_root;
    space_ = Box(new_lo, new_hi);
    ++config_.max_depth;  // Preserve the finest block resolution.
    SyncBudget();
    ++counters_.nodes_created;
  }
}

namespace {

// Non-finite feedback would permanently poison the summary triples (a
// single NaN makes every ancestor average NaN); drop such observations,
// as a production system would drop a garbled measurement.
bool IsFiniteObservation(const Point& point, double value) {
  if (!std::isfinite(value)) return false;
  for (int d = 0; d < point.dims(); ++d) {
    if (!std::isfinite(point[d])) return false;
  }
  return true;
}

}  // namespace

void MemoryLimitedQuadtree::Insert(const Point& point, double value) {
  if (!IsFiniteObservation(point, value)) return;

  WallTimer timer;
  const double compress_seconds_before = counters_.compress_seconds;
  obs::ScopedLatency latency(obs::Core().insert_ns, obs::Core().inserts,
                             obs::TraceEventType::kInsert);

  std::vector<NodeIndex> path;
  path.reserve(static_cast<size_t>(config_.max_depth) + 1);
  InsertOne(point, value, path);

  const double compress_delta =
      counters_.compress_seconds - compress_seconds_before;
  counters_.insert_seconds += timer.ElapsedSeconds() - compress_delta;
  latency.set_args(value, static_cast<double>(path.size()));
}

void MemoryLimitedQuadtree::InsertBatch(std::span<const Observation> batch) {
  if (batch.empty()) return;

  WallTimer timer;
  const double compress_seconds_before = counters_.compress_seconds;
  const bool obs_on = obs::Enabled();
  const int64_t t0 = obs_on ? obs::NowNs() : 0;

  // One path scratch vector for the whole batch — and, being thread_local,
  // for every batch this thread ever delivers, so the allocation happens
  // once per thread, not once per call. The per-insert descent is
  // identical to Insert's (per-point th_SSE, per-point compression
  // triggers — required for bit-identical trees), only the per-call
  // overhead is amortized.
  static thread_local std::vector<NodeIndex> path;
  path.reserve(static_cast<size_t>(config_.max_depth) + 1);
  int64_t accepted = 0;
  for (const Observation& o : batch) {
    if (!IsFiniteObservation(o.point, o.value)) continue;
    InsertOne(o.point, o.value, path);
    ++accepted;
  }

  const double compress_delta =
      counters_.compress_seconds - compress_seconds_before;
  counters_.insert_seconds += timer.ElapsedSeconds() - compress_delta;
  if (obs_on) {
    obs::CoreMetrics& core = obs::Core();
    core.inserts.Inc(accepted);
    core.observe_batches.Inc();
    const int64_t dur = obs::NowNs() - t0;
    core.observe_batch_ns.Record(dur);
    core.observe_batch_points.Record(static_cast<int64_t>(batch.size()));
    MLQ_TRACE_EVENT(obs::TraceEventType::kInsert, t0, dur,
                    static_cast<double>(batch.size()), batch[0].value);
  }
}

void MemoryLimitedQuadtree::InsertBatch(std::span<const Observation> all,
                                        std::span<const uint32_t> indices) {
  if (indices.empty()) return;

  WallTimer timer;
  const double compress_seconds_before = counters_.compress_seconds;
  const bool obs_on = obs::Enabled();
  const int64_t t0 = obs_on ? obs::NowNs() : 0;

  // Same thread_local scratch reuse as the span overload.
  static thread_local std::vector<NodeIndex> path;
  path.reserve(static_cast<size_t>(config_.max_depth) + 1);
  int64_t accepted = 0;
  for (const uint32_t i : indices) {
    const Observation& o = all[i];
    if (!IsFiniteObservation(o.point, o.value)) continue;
    InsertOne(o.point, o.value, path);
    ++accepted;
  }

  const double compress_delta =
      counters_.compress_seconds - compress_seconds_before;
  counters_.insert_seconds += timer.ElapsedSeconds() - compress_delta;
  if (obs_on) {
    obs::CoreMetrics& core = obs::Core();
    core.inserts.Inc(accepted);
    core.observe_batches.Inc();
    const int64_t dur = obs::NowNs() - t0;
    core.observe_batch_ns.Record(dur);
    core.observe_batch_points.Record(static_cast<int64_t>(indices.size()));
    MLQ_TRACE_EVENT(obs::TraceEventType::kInsert, t0, dur,
                    static_cast<double>(indices.size()),
                    all[indices[0]].value);
  }
}

void MemoryLimitedQuadtree::InsertOne(const Point& point, double value,
                                      std::vector<NodeIndex>& path) {
  ++counters_.insertions;

  if (config_.auto_expand) ExpandToInclude(point);
  const int dims = space_.dims();
  double p[kMaxDims];
  ClampToSpace(point, space_, p);
  const double th_sse = CurrentSseThreshold();

  path.clear();

  double lo[kMaxDims];
  double hi[kMaxDims];
  double mid[kMaxDims];
  for (int d = 0; d < dims; ++d) {
    lo[d] = space_.lo()[d];
    hi[d] = space_.hi()[d];
  }

  // The decay guard is one double compare per touched node; the decay-off
  // hot path is otherwise byte-for-byte the seed's (bench/decay_overhead
  // holds the guard cost under 2%).
  const bool decay_on = decay_enabled();

  NodeIndex cn = root_;
  {
    PooledNode& root_node = pool_.node(cn);
    if (decay_on) MaterializeDecay(root_node);
    root_node.summary.Add(value);
    root_node.last_touch = counters_.insertions;
  }
  path.push_back(cn);

  // Fig. 4: descend while the current node wants partitioning (SSE above
  // threshold and below max depth) or is already internal; create missing
  // children along the way. References into the pool are re-fetched each
  // round: TryCreateChild can compress (freeing slots) or allocate.
  while (true) {
    const PooledNode& node = pool_.node(cn);
    if (!((node.summary.Sse() >= th_sse && node.depth < config_.max_depth) ||
          !node.IsLeaf())) {
      break;
    }
    int ci = 0;
    for (int d = 0; d < dims; ++d) {
      mid[d] = 0.5 * (lo[d] + hi[d]);
      if (p[d] >= mid[d]) ci |= (1 << d);
    }
    NodeIndex child = pool_.Child(cn, ci);
    if (child == kInvalidNodeIndex) {
      if (node.depth >= config_.max_depth) break;  // Never exceed lambda.
      child = TryCreateChild(cn, ci, path);
      if (child == kInvalidNodeIndex) break;  // Budget exhausted even after compression.
    }
    cn = child;
    for (int d = 0; d < dims; ++d) {
      if ((ci >> d) & 1) {
        lo[d] = mid[d];
      } else {
        hi[d] = mid[d];
      }
    }
    PooledNode& child_node = pool_.node(cn);
    if (decay_on) MaterializeDecay(child_node);
    child_node.summary.Add(value);
    child_node.last_touch = counters_.insertions;
    path.push_back(cn);
  }
}

NodeIndex MemoryLimitedQuadtree::TryCreateChild(
    NodeIndex parent, int quadrant,
    const std::vector<NodeIndex>& protected_path) {
  const int64_t cost = kNonRootNodeBytes;
  if (!budget_.CanCharge(cost)) {
    CompressInternal(protected_path);
    if (!budget_.CanCharge(cost)) return kInvalidNodeIndex;
  }
  const NodeIndex child = pool_.CreateChild(parent, quadrant);
  // A fresh node is born fully aged to the current epoch (0 when decay is
  // off, matching the vacant-slot state bit for bit).
  pool_.node(child).decay_epoch = decay_epoch_;
  SyncBudget();
  ++counters_.nodes_created;
  if (obs::Enabled()) {
    obs::Core().partitions.Inc();
    MLQ_TRACE_EVENT(obs::TraceEventType::kPartition, obs::NowNs(), 0,
                    static_cast<double>(pool_.node(parent).depth + 1),
                    static_cast<double>(quadrant));
  }
  return child;
}

void MemoryLimitedQuadtree::Compress() { CompressInternal({}); }

int64_t MemoryLimitedQuadtree::SetMemoryLimit(int64_t limit_bytes) {
  // The root is never evictable, so no budget below its charge is
  // enforceable.
  const int64_t applied = std::max<int64_t>(limit_bytes, kNodeBaseBytes);
  budget_.SetLimit(applied);
  config_.memory_limit_bytes = applied;
  // Shrink-to-fit: every CompressInternal pass frees at least one node
  // (when any non-root leaf exists), so this loop strictly decreases the
  // footprint and terminates — at the latest when only the root remains.
  while (budget_.used() > budget_.limit() && pool_.live_count() > 1) {
    CompressInternal({});
  }
  return applied;
}

void MemoryLimitedQuadtree::CompressInternal(
    const std::vector<NodeIndex>& protected_path) {
  WallTimer timer;
  const bool obs_on = obs::Enabled();
  const int64_t obs_t0 = obs_on ? obs::NowNs() : 0;
  ++counters_.compressions;
  compressed_once_ = true;
  // Budget-pressure signal for the maintenance scheduler: compression is
  // what parks blocks on the arena free-list.
  pool_.arena().NoteCompression();

  auto is_protected = [&protected_path](NodeIndex n) {
    return std::find(protected_path.begin(), protected_path.end(), n) !=
           protected_path.end();
  };

  // Min-heap over leaves keyed by SSEG (Fig. 6, line 1). SSEG values never
  // change during a compression pass — removing a leaf leaves every other
  // node's summary intact — so entries are never stale. With the optional
  // recency extension the key is SSEG damped by the node's idle age.
  struct Entry {
    double key;
    NodeIndex node;
  };
  auto cmp = [](const Entry& a, const Entry& b) { return a.key > b.key; };
  std::vector<Entry> pq_storage;
  pq_storage.reserve(static_cast<size_t>(pool_.live_count()));
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> pq(
      cmp, std::move(pq_storage));

  // The eviction key: smaller evicts first. kSseg is Eq. 9; the ablation
  // policies replace it. Random hashes the node's pool slot with a per-pass
  // salt — slot indices are stable and reproducible across runs, so the
  // random policy is now deterministic for a fixed insertion sequence
  // (addresses, the old hash input, were not).
  const uint64_t random_salt =
      0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(counters_.compressions);
  auto eviction_key = [this, random_salt](NodeIndex index) {
    const PooledNode& node = pool_.node(index);
    double key = 0.0;
    switch (config_.eviction_policy) {
      case EvictionPolicy::kSseg: {
        const PooledNode& parent = pool_.node(node.parent);
        const double diff = parent.summary.Avg() - node.summary.Avg();
        key = static_cast<double>(node.summary.count) * diff * diff;
        break;
      }
      case EvictionPolicy::kCountOnly:
        key = static_cast<double>(node.summary.count);
        break;
      case EvictionPolicy::kRandom: {
        uint64_t h = static_cast<uint64_t>(index) ^ random_salt;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        key = static_cast<double>(h >> 11);
        break;
      }
    }
    if (config_.recency_half_life > 0.0) {
      const double age =
          static_cast<double>(counters_.insertions - node.last_touch);
      key *= std::exp2(-age / config_.recency_half_life);
    }
    // Windowed-summary decay: the node's EFFECTIVE count is its stored
    // count times the un-materialized decay factor, so Eq. 9's key (and
    // the count-only ablation) scale by the same factor — stale structure
    // yields its memory first. Applied uniformly (also to kRandom) so the
    // policies rank stale blocks consistently. Composes with the recency
    // damping above.
    if (config_.decay_half_life > 0.0 && node.decay_epoch != decay_epoch_) {
      key *= DecayFactor(node.decay_epoch);
    }
    return key;
  };

  // Collect all evictable leaves (iterative pre-order over the arena).
  const int fanout = pool_.fanout();
  std::vector<NodeIndex> stack{root_};
  while (!stack.empty()) {
    const NodeIndex index = stack.back();
    stack.pop_back();
    const PooledNode& node = pool_.node(index);
    if (node.IsLeaf()) {
      if (index != root_ && !is_protected(index)) {
        pq.push(Entry{eviction_key(index), index});
      }
      continue;
    }
    // One slab resolution for the whole child block: this scan visits
    // every node times fanout and dominates the pass on large trees.
    const PooledNode* block = pool_.block(node.first_child);
    for (int q = 0; q < fanout; ++q) {
      if (block[q].index_in_parent == q) {
        stack.push_back(node.first_child + static_cast<NodeIndex>(q));
      }
    }
  }

  // Free at least gamma * budget bytes (Fig. 6, line 2), always at least
  // one node so a triggered compression makes progress.
  const int64_t target = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(config_.gamma *
                                           static_cast<double>(budget_.limit()))));
  int64_t freed = 0;
  while (!pq.empty() && freed < target) {
    const NodeIndex leaf = pq.top().node;
    pq.pop();
    const NodeIndex parent = pool_.node(leaf).parent;
    pool_.RemoveLeafChild(parent, pool_.node(leaf).index_in_parent);
    freed += kNonRootNodeBytes;
    ++counters_.nodes_freed;
    if (parent != root_ && pool_.node(parent).IsLeaf() &&
        !is_protected(parent)) {
      pq.push(Entry{eviction_key(parent), parent});
    }
  }
  SyncBudget();

  counters_.compress_seconds += timer.ElapsedSeconds();
  if (obs_on) {
    obs::CoreMetrics& core = obs::Core();
    core.compressions.Inc();
    core.compress_bytes_freed.Inc(freed);
    const double th_sse = CurrentSseThreshold();
    core.sse_threshold.Set(th_sse);
    const int64_t dur = obs::NowNs() - obs_t0;
    core.compress_ns.Record(dur);
    MLQ_TRACE_EVENT(obs::TraceEventType::kCompress, obs_t0, dur,
                    static_cast<double>(freed), th_sse);
    // Journal 1-in-64 passes: compression is per-insert-frequent in
    // budget-tight workloads (unlike the other journal kinds, which are
    // genuine macro events), and an unsampled stream would wrap the
    // journal past the drift/maintenance entries an operator needs. The
    // full-rate signal stays in the counters and the trace ring above.
    if ((counters_.compressions & 63) == 1) {
      obs::GlobalEventLog().Append(obs::EventKind::kCompressionEpoch, "tree",
                                   static_cast<double>(freed), th_sse,
                                   static_cast<double>(pool_.live_count()));
    }
  }
}

double MemoryLimitedQuadtree::TotalSsenc() const {
  const int full_children = 1 << space_.dims();
  double total = 0.0;
  std::function<void(const NodeView&)> walk = [&](const NodeView& node) {
    // SSENC(b) = SSE(b) - sum_children [SSE(c) + SSEG(c)]: the squared error
    // about AVG(b) of points not summarized by any existing child.
    double ssenc = node.summary().Sse();
    for (const NodeView child : node.children()) {
      ssenc -= child.summary().Sse() + child.Sseg();
      walk(child);
    }
    if (node.num_children() < full_children) {
      total += std::max(0.0, ssenc);
    }
  };
  walk(root());
  return total;
}

void MemoryLimitedQuadtree::ForEachNode(
    const std::function<void(const NodeView&, const Box&)>& fn) const {
  std::function<void(const NodeView&, const Box&)> walk =
      [&](const NodeView& node, const Box& box) {
        fn(node, box);
        for (const NodeView child : node.children()) {
          walk(child, box.Child(child.index_in_parent()));
        }
      };
  walk(root(), space_);
}

bool MemoryLimitedQuadtree::CheckInvariants(std::string* error) const {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  char buf[256];

  int64_t nodes_seen = 0;
  bool ok = true;
  std::string first_error;

  std::function<void(const NodeView&, const Box&)> walk =
      [&](const NodeView& node, const Box& box) {
        if (!ok) return;
        ++nodes_seen;
        if (node.depth() > config_.max_depth) {
          std::snprintf(buf, sizeof(buf), "node at depth %d exceeds lambda %d",
                        node.depth(), config_.max_depth);
          first_error = buf;
          ok = false;
          return;
        }
        if (!node.has_parent() && node.index() != root_) {
          first_error = "non-root node without parent";
          ok = false;
          return;
        }
        // Every node summarizes at least one data point — except the root
        // of a never-inserted-into tree.
        if (node.summary().count <= 0 && node.has_parent()) {
          first_error = "node with no data points at " + box.ToString();
          ok = false;
          return;
        }
        int64_t child_count_sum = 0;
        int chain_length = 0;
        int previous_index = -1;
        for (const NodeView child : node.children()) {
          ++chain_length;
          if (child.index_in_parent() <= previous_index) {
            first_error = "child chain not sorted/unique";
            ok = false;
            return;
          }
          previous_index = child.index_in_parent();
          if (child.index_in_parent() >= (1 << space_.dims())) {
            first_error = "child quadrant out of range";
            ok = false;
            return;
          }
          if (!child.has_parent() || child.parent().index() != node.index() ||
              child.depth() != node.depth() + 1) {
            first_error = "child back-links inconsistent";
            ok = false;
            return;
          }
          child_count_sum += child.summary().count;
        }
        if (chain_length != node.num_children()) {
          first_error = "num_children disagrees with sibling chain";
          ok = false;
          return;
        }
        // Summaries are cumulative, so each parent covers at least its
        // children — except under decay, where lazy per-node aging shrinks
        // a touched parent while untouched children keep their stale
        // counts; the relation is then only eventual, not structural.
        if (!decay_enabled() && child_count_sum > node.summary().count) {
          std::snprintf(buf, sizeof(buf),
                        "children count %lld exceeds parent count %lld",
                        static_cast<long long>(child_count_sum),
                        static_cast<long long>(node.summary().count));
          first_error = buf;
          ok = false;
          return;
        }
        // Decay bookkeeping: node epochs never lead the tree's clock, and
        // with decay off every node must still carry the zero stamp the
        // seed layout had (the differential tests pin this).
        const PooledNode& raw = pool_.node(node.index());
        if (raw.decay_epoch > decay_epoch_ ||
            (!decay_enabled() && raw.decay_epoch != 0)) {
          first_error = "node decay epoch inconsistent";
          ok = false;
          return;
        }
        if (raw.summary.count < 0 || raw.summary.sum_squares < 0.0 ||
            !std::isfinite(raw.summary.sum) ||
            !std::isfinite(raw.summary.sum_squares)) {
          first_error = "summary triple negative or non-finite";
          ok = false;
          return;
        }
        for (const NodeView child : node.children()) {
          walk(child, box.Child(child.index_in_parent()));
        }
      };
  walk(root(), space_);
  if (!ok) return fail(first_error);

  if (nodes_seen != pool_.live_count()) {
    std::snprintf(buf, sizeof(buf), "pool live count %lld but %lld reachable",
                  static_cast<long long>(pool_.live_count()),
                  static_cast<long long>(nodes_seen));
    return fail(buf);
  }
  if (!pool_.CheckConsistency(&first_error)) {
    return fail("node pool inconsistent: " + first_error);
  }
  if (LogicalBytesFor(nodes_seen) != budget_.used()) {
    std::snprintf(buf, sizeof(buf), "memory accounting %lld != expected %lld",
                  static_cast<long long>(budget_.used()),
                  static_cast<long long>(LogicalBytesFor(nodes_seen)));
    return fail(buf);
  }
  if (budget_.used() > budget_.limit()) {
    return fail("memory over budget");
  }
  return true;
}

}  // namespace mlq
