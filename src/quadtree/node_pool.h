#ifndef MLQ_QUADTREE_NODE_POOL_H_
#define MLQ_QUADTREE_NODE_POOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace mlq {

// Index of a node inside a NodePool. 32 bits address four billion nodes —
// far beyond any budget the paper (1.8 KB!) or the serving layer uses —
// at half the footprint of a pointer, and indices stay valid when the
// pool's backing vector reallocates or a tree is serialized.
using NodeIndex = uint32_t;
inline constexpr NodeIndex kInvalidNodeIndex = 0xFFFFFFFFu;

// One block of the memory-limited quadtree, laid out for arena storage.
//
// A node stores the summary triple of the data points that map into its
// block (Section 4.1) plus tree-structure bookkeeping. All 2^d potential
// children of a node live in ONE contiguous, 2^d-aligned group of pool
// slots ("child block"): the child for quadrant q, when present, is slot
// `first_child + q`. Child lookup on the predict/insert descent is a
// single indexed load — no pointer chase, no sibling scan.
struct PooledNode {
  SummaryTriple summary;                      // 24 bytes
  int64_t last_touch = 0;                     // Insertion tick, recency ext.
  NodeIndex parent = kInvalidNodeIndex;
  NodeIndex first_child = kInvalidNodeIndex;  // Child-block base; free link.
  uint8_t index_in_parent = 0;                // Quadrant in the parent.
  uint8_t num_children = 0;
  uint16_t depth = 0;                         // 0 = root.
  uint32_t reserved = 0;                      // Padding, kept deterministic.

  bool IsLeaf() const { return num_children == 0; }
};
static_assert(sizeof(PooledNode) == 48, "keep the hot-path node packed");

// Contiguous arena of quadtree nodes, allocated in child blocks.
//
// The pool is constructed for a fixed fanout (2^d). Slots come in
// fanout-sized, fanout-aligned blocks; within an allocated block a slot is
// either a live node or vacant (quadrant not materialized — the common
// case in sparse data). Fully vacated blocks go onto a LIFO free-list and
// are recycled by the next allocation, so compression (Fig. 6) recycles
// arena slots instead of freeing heap memory, and a tree oscillating
// around its budget churns the same cache-resident slots.
//
// Trade-off: the arena holds fanout slots per partitioned node even when
// few quadrants are materialized, buying O(1) child lookup with physical
// (not logical/budgeted) bytes. At the paper's d <= 4 this is at most
// 768 B per internal node; PhysicalCapacityBytes() reports the honest
// total.
//
// Indices are stable across vector growth; raw PooledNode references are
// not (they are invalidated by any allocation), so mutation paths re-fetch
// references after allocating.
class NodePool {
 public:
  // `fanout` is 2^d: the number of slots per child block.
  explicit NodePool(int fanout);

  // Pre-sizes the arena to `slots` total slots (callers typically pass a
  // multiple of the fanout).
  void Reserve(size_t slots) { nodes_.reserve(slots); }

  int fanout() const { return fanout_; }

  // Allocates a block and makes its slot 0 a live root node (depth 0, no
  // parent). Called once per tree.
  NodeIndex AllocateRoot();

  PooledNode& node(NodeIndex index) { return nodes_[index]; }
  const PooledNode& node(NodeIndex index) const { return nodes_[index]; }

  // Raw base pointer for read-only hot loops (prediction descents). Never
  // hold it across an allocation.
  const PooledNode* raw() const { return nodes_.data(); }

  int64_t live_count() const { return live_count_; }
  // Slots currently parked on the block free-list.
  int64_t free_count() const { return free_count_; }
  // Total slots ever materialized (live + vacant + free-listed).
  size_t slot_count() const { return nodes_.size(); }
  // Exact bytes of backing storage the arena holds right now.
  int64_t PhysicalCapacityBytes() const {
    return static_cast<int64_t>(nodes_.capacity() * sizeof(PooledNode));
  }

  // Child with the given quadrant index, or kInvalidNodeIndex when that
  // block is empty. O(1).
  NodeIndex Child(NodeIndex parent, int quadrant) const {
    const NodeIndex base = nodes_[parent].first_child;
    if (base == kInvalidNodeIndex) return kInvalidNodeIndex;
    const NodeIndex slot = base + static_cast<NodeIndex>(quadrant);
    return nodes_[slot].index_in_parent == quadrant ? slot : kInvalidNodeIndex;
  }

  // Materializes the child for `quadrant` (must not already exist),
  // allocating the parent's child block first if this is its first child.
  // May grow the arena: re-fetch node references afterwards. Memory
  // accounting is the tree's job, not the pool's.
  NodeIndex CreateChild(NodeIndex parent, int quadrant);

  // Vacates the child with the given quadrant (must exist and be a leaf).
  // Returns the whole child block to the free-list when this was the
  // parent's last child.
  void RemoveLeafChild(NodeIndex parent, int quadrant);

  // Moves the existing subtree root `child` (currently detached from any
  // parent slot — i.e. the tree root) into `parent`'s child block at
  // `quadrant`, re-parenting its children and recycling its old block if
  // emptied. Returns the subtree root's NEW index. Depths are NOT
  // adjusted; callers that re-root a subtree (model-space expansion) shift
  // depths themselves.
  NodeIndex AdoptChild(NodeIndex parent, int quadrant, NodeIndex child);

  // Structural self-check of the arena: block alignment, vacant/live slot
  // markers, the free-list reaching exactly the freed blocks, and the
  // live/free counters adding up. Returns false with a description in
  // `error` on corruption.
  bool CheckConsistency(std::string* error) const;

 private:
  NodeIndex AllocateBlock();

  std::vector<PooledNode> nodes_;
  int fanout_;
  NodeIndex free_head_ = kInvalidNodeIndex;  // Block bases, LIFO.
  int64_t live_count_ = 0;
  int64_t free_count_ = 0;
};

// Lightweight read-only handle onto one pool node: (pool, index), cheap to
// copy, invalid when the block is absent. This is the traversal currency of
// ForEachNode, tree stats, serialization and the tests — it keeps the
// index-based arena an implementation detail of the hot path.
class NodeView {
 public:
  NodeView() = default;
  NodeView(const NodePool* pool, NodeIndex index) : pool_(pool), index_(index) {}

  bool valid() const { return pool_ != nullptr && index_ != kInvalidNodeIndex; }
  explicit operator bool() const { return valid(); }

  NodeIndex index() const { return index_; }
  const SummaryTriple& summary() const { return n().summary; }
  int depth() const { return n().depth; }
  int num_children() const { return n().num_children; }
  bool IsLeaf() const { return n().IsLeaf(); }
  int index_in_parent() const { return n().index_in_parent; }
  int64_t last_touch() const { return n().last_touch; }

  bool has_parent() const { return valid() && n().parent != kInvalidNodeIndex; }
  NodeView parent() const { return NodeView(pool_, n().parent); }

  // Child with the given quadrant index; invalid view when absent.
  NodeView Child(int quadrant) const {
    return NodeView(pool_, pool_->Child(index_, quadrant));
  }

  // SSEG(b) = C(b) * (AVG(parent) - AVG(b))^2 (Eq. 9): the increase in the
  // tree's total expected prediction error if this node is discarded.
  // Requires a parent.
  double Sseg() const;

  // Iteration over present children in ascending quadrant order:
  //   for (NodeView child : node.children()) ...
  // The iterator walks the parent's child block, skipping vacant slots.
  // (It stores raw pool/slot state: NodeView is incomplete inside its own
  // nested classes.)
  class ChildIterator {
   public:
    ChildIterator(const NodePool* pool, NodeIndex base, int quadrant)
        : pool_(pool), base_(base), quadrant_(quadrant) {
      SkipVacant();
    }
    NodeView operator*() const {
      return NodeView(pool_, base_ + static_cast<NodeIndex>(quadrant_));
    }
    ChildIterator& operator++() {
      ++quadrant_;
      SkipVacant();
      return *this;
    }
    bool operator!=(const ChildIterator& other) const {
      return quadrant_ != other.quadrant_;
    }

   private:
    void SkipVacant() {
      if (base_ == kInvalidNodeIndex) return;
      while (quadrant_ < pool_->fanout() &&
             pool_->node(base_ + static_cast<NodeIndex>(quadrant_))
                     .index_in_parent != quadrant_) {
        ++quadrant_;
      }
    }

    const NodePool* pool_;
    NodeIndex base_;
    int quadrant_;
  };
  class ChildRange {
   public:
    ChildRange(const NodePool* pool, NodeIndex base) : pool_(pool), base_(base) {}
    ChildIterator begin() const {
      return ChildIterator(pool_, base_,
                           base_ == kInvalidNodeIndex ? pool_->fanout() : 0);
    }
    ChildIterator end() const {
      return ChildIterator(pool_, kInvalidNodeIndex, pool_->fanout());
    }

   private:
    const NodePool* pool_;
    NodeIndex base_;
  };
  ChildRange children() const { return ChildRange(pool_, n().first_child); }

  friend bool operator==(const NodeView& a, const NodeView& b) {
    return a.pool_ == b.pool_ && a.index_ == b.index_;
  }

 private:
  const PooledNode& n() const { return pool_->node(index_); }

  const NodePool* pool_ = nullptr;
  NodeIndex index_ = kInvalidNodeIndex;
};

}  // namespace mlq

#endif  // MLQ_QUADTREE_NODE_POOL_H_
