#ifndef MLQ_QUADTREE_NODE_POOL_H_
#define MLQ_QUADTREE_NODE_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "quadtree/shared_node_arena.h"

namespace mlq {

// One tree's view onto a node arena, allocated in child blocks.
//
// The pool is constructed for a fixed fanout (2^d). By default it owns a
// PRIVATE SharedNodeArena; a catalog serving hundreds of per-UDF models
// instead passes one arena to many pools so physical slabs (and the block
// free-list) are shared while each tree keeps its own logical budget.
// Slots come in fanout-sized, fanout-aligned blocks; within an allocated
// block a slot is either a live node or vacant (quadrant not materialized —
// the common case in sparse data). Fully vacated blocks go onto a LIFO
// free-list and are recycled by the next allocation, so compression
// (Fig. 6) recycles arena slots instead of freeing heap memory, and a tree
// oscillating around its budget churns the same cache-resident slots.
//
// Trade-off: the arena holds fanout slots per partitioned node even when
// few quadrants are materialized, buying O(1) child lookup with physical
// (not logical/budgeted) bytes. At the paper's d <= 4 this is at most
// 768 B per internal node; PhysicalCapacityBytes() reports the honest
// total — arena-wide when the arena is shared.
//
// Node addresses are slab-stable: indices AND references stay valid across
// arena growth (only SharedNodeArena::Compact() moves nodes).
class NodePool {
 public:
  // `fanout` is 2^d: the number of slots per child block. When `arena` is
  // null the pool creates a private arena; otherwise it allocates from the
  // shared one (whose fanout must match).
  explicit NodePool(int fanout,
                    std::shared_ptr<SharedNodeArena> arena = nullptr);

  // Pre-sizes the arena to `slots` total slots (callers typically pass a
  // multiple of the fanout).
  void Reserve(size_t slots) { arena_->Reserve(slots); }

  int fanout() const { return fanout_; }

  // True when this pool draws from an arena owned by someone else.
  bool shares_arena() const { return shared_; }
  SharedNodeArena& arena() { return *arena_; }
  const SharedNodeArena& arena() const { return *arena_; }
  const std::shared_ptr<SharedNodeArena>& arena_handle() const {
    return arena_;
  }

  // Allocates a block and makes its slot 0 a live root node (depth 0, no
  // parent). Called once per tree.
  NodeIndex AllocateRoot();

  PooledNode& node(NodeIndex index) { return arena_->node(index); }
  const PooledNode& node(NodeIndex index) const { return arena_->node(index); }

  // One slab resolution for a whole child block (see SharedNodeArena::block).
  PooledNode* block(NodeIndex base) { return arena_->block(base); }
  const PooledNode* block(NodeIndex base) const { return arena_->block(base); }

  // Live nodes belonging to THIS tree (the budgeted quantity).
  int64_t live_count() const { return live_count_; }
  // Slots currently parked on the block free-list (arena-wide when shared).
  int64_t free_count() const { return arena_->free_count(); }
  // Total slots ever materialized (arena-wide when shared).
  size_t slot_count() const { return arena_->slot_count(); }
  // Exact bytes of backing storage the arena holds right now (arena-wide
  // when shared — physical slabs have no per-tree owner).
  int64_t PhysicalCapacityBytes() const {
    return arena_->PhysicalCapacityBytes();
  }

  // Child with the given quadrant index, or kInvalidNodeIndex when that
  // block is empty. O(1).
  NodeIndex Child(NodeIndex parent, int quadrant) const {
    const NodeIndex base = arena_->node(parent).first_child;
    if (base == kInvalidNodeIndex) return kInvalidNodeIndex;
    const NodeIndex slot = base + static_cast<NodeIndex>(quadrant);
    return arena_->node(slot).index_in_parent == quadrant ? slot
                                                          : kInvalidNodeIndex;
  }

  // Materializes the child for `quadrant` (must not already exist),
  // allocating the parent's child block first if this is its first child.
  // May grow the arena; indices and references remain stable. Memory
  // accounting is the tree's job, not the pool's.
  NodeIndex CreateChild(NodeIndex parent, int quadrant);

  // Vacates the child with the given quadrant (must exist and be a leaf).
  // Returns the whole child block to the free-list when this was the
  // parent's last child.
  void RemoveLeafChild(NodeIndex parent, int quadrant);

  // Moves the existing subtree root `child` (currently detached from any
  // parent slot — i.e. the tree root) into `parent`'s child block at
  // `quadrant`, re-parenting its children and recycling its old block if
  // emptied. Returns the subtree root's NEW index. Depths are NOT
  // adjusted; callers that re-root a subtree (model-space expansion) shift
  // depths themselves.
  NodeIndex AdoptChild(NodeIndex parent, int quadrant, NodeIndex child);

  // Returns every block of the subtree rooted at `root` to the free-list
  // and debits this pool's live count. Used by tree teardown on shared
  // arenas (a private arena just dies with the pool).
  void ReleaseTree(NodeIndex root);

  // Structural self-check: delegates the arena-wide scan (block alignment,
  // vacant/live markers, free-list, global live total) to the arena, then
  // checks this pool's own live count against it. Returns false with a
  // description in `error` on corruption.
  bool CheckConsistency(std::string* error) const;

 private:
  std::shared_ptr<SharedNodeArena> arena_;
  int fanout_;
  bool shared_;
  int64_t live_count_ = 0;
};

// Lightweight read-only handle onto one pool node: (pool, index), cheap to
// copy, invalid when the block is absent. This is the traversal currency of
// ForEachNode, tree stats, serialization and the tests — it keeps the
// index-based arena an implementation detail of the hot path.
class NodeView {
 public:
  NodeView() = default;
  NodeView(const NodePool* pool, NodeIndex index) : pool_(pool), index_(index) {}

  bool valid() const { return pool_ != nullptr && index_ != kInvalidNodeIndex; }
  explicit operator bool() const { return valid(); }

  NodeIndex index() const { return index_; }
  const SummaryTriple& summary() const { return n().summary; }
  int depth() const { return n().depth; }
  int num_children() const { return n().num_children; }
  bool IsLeaf() const { return n().IsLeaf(); }
  int index_in_parent() const { return n().index_in_parent; }
  int64_t last_touch() const { return n().last_touch; }

  bool has_parent() const { return valid() && n().parent != kInvalidNodeIndex; }
  NodeView parent() const { return NodeView(pool_, n().parent); }

  // Child with the given quadrant index; invalid view when absent.
  NodeView Child(int quadrant) const {
    return NodeView(pool_, pool_->Child(index_, quadrant));
  }

  // SSEG(b) = C(b) * (AVG(parent) - AVG(b))^2 (Eq. 9): the increase in the
  // tree's total expected prediction error if this node is discarded.
  // Requires a parent.
  double Sseg() const;

  // Iteration over present children in ascending quadrant order:
  //   for (NodeView child : node.children()) ...
  // The iterator walks the parent's child block, skipping vacant slots.
  // (It stores raw pool/slot state: NodeView is incomplete inside its own
  // nested classes.)
  class ChildIterator {
   public:
    ChildIterator(const NodePool* pool, NodeIndex base, int quadrant)
        : pool_(pool),
          base_(base),
          // Resolve the block's slab pointer once for the whole scan.
          block_(base == kInvalidNodeIndex ? nullptr : pool->block(base)),
          fanout_(pool->fanout()),
          quadrant_(quadrant) {
      SkipVacant();
    }
    NodeView operator*() const {
      return NodeView(pool_, base_ + static_cast<NodeIndex>(quadrant_));
    }
    ChildIterator& operator++() {
      ++quadrant_;
      SkipVacant();
      return *this;
    }
    bool operator!=(const ChildIterator& other) const {
      return quadrant_ != other.quadrant_;
    }

   private:
    void SkipVacant() {
      if (block_ == nullptr) return;
      while (quadrant_ < fanout_ &&
             block_[quadrant_].index_in_parent != quadrant_) {
        ++quadrant_;
      }
    }

    const NodePool* pool_;
    NodeIndex base_;
    const PooledNode* block_;
    int fanout_;
    int quadrant_;
  };
  class ChildRange {
   public:
    ChildRange(const NodePool* pool, NodeIndex base) : pool_(pool), base_(base) {}
    ChildIterator begin() const {
      return ChildIterator(pool_, base_,
                           base_ == kInvalidNodeIndex ? pool_->fanout() : 0);
    }
    ChildIterator end() const {
      return ChildIterator(pool_, kInvalidNodeIndex, pool_->fanout());
    }

   private:
    const NodePool* pool_;
    NodeIndex base_;
  };
  ChildRange children() const { return ChildRange(pool_, n().first_child); }

  friend bool operator==(const NodeView& a, const NodeView& b) {
    return a.pool_ == b.pool_ && a.index_ == b.index_;
  }

 private:
  const PooledNode& n() const { return pool_->node(index_); }

  const NodePool* pool_ = nullptr;
  NodeIndex index_ = kInvalidNodeIndex;
};

}  // namespace mlq

#endif  // MLQ_QUADTREE_NODE_POOL_H_
