#include "quadtree/node_pool.h"

#include <cassert>

namespace mlq {

NodePool::NodePool(int fanout, std::shared_ptr<SharedNodeArena> arena)
    : arena_(std::move(arena)), fanout_(fanout), shared_(arena_ != nullptr) {
  // 2 <= fanout <= 128 keeps every quadrant strictly below kVacantSlot.
  assert(fanout_ >= 2 && fanout_ <= 128);
  if (arena_ == nullptr) {
    arena_ = std::make_shared<SharedNodeArena>(fanout_);
  } else {
    assert(arena_->fanout() == fanout_ && "arena fanout must match the tree");
  }
}

NodeIndex NodePool::AllocateRoot() {
  const NodeIndex base = arena_->AllocateBlock();
  arena_->node(base).index_in_parent = 0;
  ++live_count_;
  arena_->NoteLiveDelta(1);
  return base;
}

NodeIndex NodePool::CreateChild(NodeIndex parent, int quadrant) {
  assert(Child(parent, quadrant) == kInvalidNodeIndex);
  NodeIndex base = arena_->node(parent).first_child;
  if (base == kInvalidNodeIndex) {
    base = arena_->AllocateBlock();
    arena_->node(parent).first_child = base;
  }
  const NodeIndex slot = base + static_cast<NodeIndex>(quadrant);
  PooledNode& child = arena_->node(slot);
  child.parent = parent;
  child.index_in_parent = static_cast<uint8_t>(quadrant);
  child.depth = static_cast<uint16_t>(arena_->node(parent).depth + 1);
  ++arena_->node(parent).num_children;
  ++live_count_;
  arena_->NoteLiveDelta(1);
  return slot;
}

void NodePool::RemoveLeafChild(NodeIndex parent, int quadrant) {
  const NodeIndex base = arena_->node(parent).first_child;
  assert(base != kInvalidNodeIndex);
  const NodeIndex slot = base + static_cast<NodeIndex>(quadrant);
  assert(arena_->node(slot).index_in_parent == quadrant);
  assert(arena_->node(slot).IsLeaf());
  MarkVacantSlot(arena_->node(slot));
  --arena_->node(parent).num_children;
  --live_count_;
  arena_->NoteLiveDelta(-1);
  if (arena_->node(parent).num_children == 0) {
    arena_->node(parent).first_child = kInvalidNodeIndex;
    arena_->ReleaseBlock(base);
  }
}

NodeIndex NodePool::AdoptChild(NodeIndex parent, int quadrant,
                               NodeIndex child) {
  assert(arena_->node(child).parent == kInvalidNodeIndex);
  assert(Child(parent, quadrant) == kInvalidNodeIndex);
  NodeIndex base = arena_->node(parent).first_child;
  if (base == kInvalidNodeIndex) {
    base = arena_->AllocateBlock();
    arena_->node(parent).first_child = base;
  }
  const NodeIndex slot = base + static_cast<NodeIndex>(quadrant);
  PooledNode& moved = arena_->node(slot);
  moved = arena_->node(child);
  moved.parent = parent;
  moved.index_in_parent = static_cast<uint8_t>(quadrant);
  ++arena_->node(parent).num_children;
  // Re-parent the moved node's children onto its new slot.
  if (moved.first_child != kInvalidNodeIndex) {
    const NodeIndex child_base = moved.first_child;
    for (int q = 0; q < fanout_; ++q) {
      PooledNode& grandchild = arena_->node(child_base + q);
      if (grandchild.index_in_parent == q) grandchild.parent = slot;
    }
  }
  // Vacate the old slot and recycle its block if that empties it. A
  // detached root sits at its block's slot 0; siblings may not exist, but
  // scan defensively.
  const NodeIndex old_base =
      child - static_cast<NodeIndex>(arena_->node(child).index_in_parent);
  MarkVacantSlot(arena_->node(child));
  bool block_empty = true;
  for (int q = 0; q < fanout_; ++q) {
    if (arena_->node(old_base + q).index_in_parent == q) {
      block_empty = false;
      break;
    }
  }
  if (block_empty) arena_->ReleaseBlock(old_base);
  return slot;
}

void NodePool::ReleaseTree(NodeIndex root) {
  const int64_t released = arena_->ReleaseTree(root);
  live_count_ -= released;
  assert(live_count_ == 0 && "ReleaseTree must cover the whole tree");
}

bool NodePool::CheckConsistency(std::string* error) const {
  if (!arena_->CheckConsistency(error)) return false;
  if (!shared_ && live_count_ != arena_->live_count()) {
    if (error != nullptr) {
      *error = "pool live count does not match its private arena";
    }
    return false;
  }
  if (shared_ && live_count_ > arena_->live_count()) {
    if (error != nullptr) {
      *error = "pool live count exceeds the shared arena total";
    }
    return false;
  }
  return true;
}

double NodeView::Sseg() const {
  assert(has_parent());
  const double diff = parent().summary().Avg() - summary().Avg();
  return static_cast<double>(summary().count) * diff * diff;
}

}  // namespace mlq
