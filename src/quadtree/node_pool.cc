#include "quadtree/node_pool.h"

#include <cassert>
#include <unordered_set>

namespace mlq {
namespace {

// index_in_parent value marking a slot that belongs to an allocated block
// but holds no node: the quadrant is not materialized, or the whole block
// sits on the free-list. The marker exceeds any real quadrant (fanout is
// at most 256 with quadrants 0..255 never all used at d = 8 in practice;
// we cap fanout below so 0xFF stays unreachable), which makes the O(1)
// quadrant comparison in NodePool::Child reject vacant slots for free.
constexpr uint8_t kVacantSlot = 0xFF;

void MarkVacant(PooledNode& n) {
  n.summary = SummaryTriple{};
  n.last_touch = 0;
  n.parent = kInvalidNodeIndex;
  n.first_child = kInvalidNodeIndex;
  n.index_in_parent = kVacantSlot;
  n.num_children = 0;
  n.depth = 0;
}

}  // namespace

NodePool::NodePool(int fanout) : fanout_(fanout) {
  // 2 <= fanout <= 128 keeps every quadrant strictly below kVacantSlot.
  assert(fanout_ >= 2 && fanout_ <= 128);
}

NodeIndex NodePool::AllocateBlock() {
  if (free_head_ != kInvalidNodeIndex) {
    const NodeIndex base = free_head_;
    free_head_ = nodes_[base].first_child;
    nodes_[base].first_child = kInvalidNodeIndex;
    free_count_ -= fanout_;
    return base;
  }
  assert(nodes_.size() + static_cast<size_t>(fanout_) < kInvalidNodeIndex);
  const NodeIndex base = static_cast<NodeIndex>(nodes_.size());
  nodes_.resize(nodes_.size() + static_cast<size_t>(fanout_));
  for (int q = 0; q < fanout_; ++q) MarkVacant(nodes_[base + q]);
  return base;
}

NodeIndex NodePool::AllocateRoot() {
  const NodeIndex base = AllocateBlock();
  nodes_[base].index_in_parent = 0;
  ++live_count_;
  return base;
}

NodeIndex NodePool::CreateChild(NodeIndex parent, int quadrant) {
  assert(Child(parent, quadrant) == kInvalidNodeIndex);
  NodeIndex base = nodes_[parent].first_child;
  if (base == kInvalidNodeIndex) {
    base = AllocateBlock();  // May grow the arena: index `parent` afterwards.
    nodes_[parent].first_child = base;
  }
  const NodeIndex slot = base + static_cast<NodeIndex>(quadrant);
  PooledNode& child = nodes_[slot];
  child.parent = parent;
  child.index_in_parent = static_cast<uint8_t>(quadrant);
  child.depth = static_cast<uint16_t>(nodes_[parent].depth + 1);
  ++nodes_[parent].num_children;
  ++live_count_;
  return slot;
}

void NodePool::RemoveLeafChild(NodeIndex parent, int quadrant) {
  const NodeIndex base = nodes_[parent].first_child;
  assert(base != kInvalidNodeIndex);
  const NodeIndex slot = base + static_cast<NodeIndex>(quadrant);
  assert(nodes_[slot].index_in_parent == quadrant);
  assert(nodes_[slot].IsLeaf());
  MarkVacant(nodes_[slot]);
  --nodes_[parent].num_children;
  --live_count_;
  if (nodes_[parent].num_children == 0) {
    nodes_[parent].first_child = kInvalidNodeIndex;
    nodes_[base].first_child = free_head_;
    free_head_ = base;
    free_count_ += fanout_;
  }
}

NodeIndex NodePool::AdoptChild(NodeIndex parent, int quadrant,
                               NodeIndex child) {
  assert(nodes_[child].parent == kInvalidNodeIndex);
  assert(Child(parent, quadrant) == kInvalidNodeIndex);
  NodeIndex base = nodes_[parent].first_child;
  if (base == kInvalidNodeIndex) {
    base = AllocateBlock();
    nodes_[parent].first_child = base;
  }
  const NodeIndex slot = base + static_cast<NodeIndex>(quadrant);
  PooledNode& moved = nodes_[slot];
  moved = nodes_[child];
  moved.parent = parent;
  moved.index_in_parent = static_cast<uint8_t>(quadrant);
  ++nodes_[parent].num_children;
  ++live_count_;
  // Re-parent the moved node's children onto its new slot.
  if (moved.first_child != kInvalidNodeIndex) {
    const NodeIndex child_base = moved.first_child;
    for (int q = 0; q < fanout_; ++q) {
      PooledNode& grandchild = nodes_[child_base + q];
      if (grandchild.index_in_parent == q) grandchild.parent = slot;
    }
  }
  // Vacate the old slot and recycle its block if that empties it. A
  // detached root sits at its block's slot 0; siblings may not exist, but
  // scan defensively.
  const NodeIndex old_base =
      child - static_cast<NodeIndex>(nodes_[child].index_in_parent);
  MarkVacant(nodes_[child]);
  --live_count_;
  bool block_empty = true;
  for (int q = 0; q < fanout_; ++q) {
    if (nodes_[old_base + q].index_in_parent == q) {
      block_empty = false;
      break;
    }
  }
  if (block_empty) {
    nodes_[old_base].first_child = free_head_;
    free_head_ = old_base;
    free_count_ += fanout_;
  }
  return slot;
}

bool NodePool::CheckConsistency(std::string* error) const {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (nodes_.size() % static_cast<size_t>(fanout_) != 0) {
    return fail("arena size is not a multiple of the fanout");
  }
  // Collect free-listed block bases, guarding against cycles.
  std::unordered_set<NodeIndex> free_blocks;
  const size_t max_blocks = nodes_.size() / static_cast<size_t>(fanout_);
  for (NodeIndex base = free_head_; base != kInvalidNodeIndex;
       base = nodes_[base].first_child) {
    if (base >= nodes_.size() || base % fanout_ != 0) {
      return fail("free-list entry is not a valid block base");
    }
    if (!free_blocks.insert(base).second || free_blocks.size() > max_blocks) {
      return fail("free-list cycle detected");
    }
  }
  if (free_count_ != static_cast<int64_t>(free_blocks.size()) * fanout_) {
    return fail("free_count does not match the free-list");
  }
  int64_t live_seen = 0;
  for (size_t block = 0; block < nodes_.size();
       block += static_cast<size_t>(fanout_)) {
    const NodeIndex base = static_cast<NodeIndex>(block);
    const bool in_free_list = free_blocks.count(base) > 0;
    for (int q = 0; q < fanout_; ++q) {
      const NodeIndex slot = base + static_cast<NodeIndex>(q);
      const PooledNode& n = nodes_[slot];
      if (n.index_in_parent == kVacantSlot) {
        if (n.summary.count != 0 || n.num_children != 0) {
          return fail("vacant slot holds node state");
        }
        if (!(q == 0 && in_free_list) && n.first_child != kInvalidNodeIndex) {
          return fail("vacant slot has a dangling child link");
        }
        continue;
      }
      if (in_free_list) return fail("free-listed block holds a live node");
      if (n.index_in_parent != q) {
        return fail("slot quadrant does not match its block offset");
      }
      ++live_seen;
      if (n.parent != kInvalidNodeIndex) {
        const PooledNode& p = nodes_[n.parent];
        if (p.first_child != base) {
          return fail("child slot not reachable from its parent");
        }
        if (n.depth != p.depth + 1) {
          return fail("child depth is not parent depth + 1");
        }
      }
      if (n.first_child != kInvalidNodeIndex) {
        if (n.first_child % fanout_ != 0 ||
            static_cast<size_t>(n.first_child) >= nodes_.size()) {
          return fail("child-block base is not block-aligned");
        }
        int present = 0;
        for (int cq = 0; cq < fanout_; ++cq) {
          const PooledNode& c = nodes_[n.first_child + cq];
          if (c.index_in_parent == cq) {
            if (c.parent != slot) return fail("child has a stale parent link");
            ++present;
          }
        }
        if (present != n.num_children) {
          return fail("num_children does not match the child block");
        }
        if (present == 0) return fail("empty child block was not recycled");
      } else if (n.num_children != 0) {
        return fail("leaf node reports children");
      }
    }
  }
  if (live_seen != live_count_) {
    return fail("live_count does not match the arena contents");
  }
  return true;
}

double NodeView::Sseg() const {
  assert(has_parent());
  const double diff = parent().summary().Avg() - summary().Avg();
  return static_cast<double>(summary().count) * diff * diff;
}

}  // namespace mlq
