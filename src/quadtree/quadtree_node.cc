#include "quadtree/quadtree_node.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace mlq {

QuadtreeNode* QuadtreeNode::Child(int index) const {
  for (const auto& entry : children_) {
    if (entry.index == index) return entry.node.get();
  }
  return nullptr;
}

QuadtreeNode* QuadtreeNode::CreateChild(int index) {
  assert(Child(index) == nullptr);
  auto node = std::make_unique<QuadtreeNode>(this, static_cast<uint8_t>(index),
                                             depth_ + 1);
  QuadtreeNode* raw = node.get();
  auto pos = std::lower_bound(
      children_.begin(), children_.end(), index,
      [](const ChildEntry& e, int idx) { return e.index < idx; });
  children_.insert(pos, ChildEntry{static_cast<uint8_t>(index), std::move(node)});
  return raw;
}

void QuadtreeNode::RemoveChild(int index) {
  auto pos = std::find_if(
      children_.begin(), children_.end(),
      [index](const ChildEntry& e) { return e.index == index; });
  assert(pos != children_.end());
  children_.erase(pos);
}

void QuadtreeNode::AdoptChild(int index, std::unique_ptr<QuadtreeNode> child) {
  assert(Child(index) == nullptr);
  assert(child != nullptr);
  child->parent_ = this;
  child->index_in_parent_ = static_cast<uint8_t>(index);
  // Shift the whole adopted subtree one level down.
  std::function<void(QuadtreeNode&)> shift = [&shift](QuadtreeNode& node) {
    assert(node.depth_ < 255);
    ++node.depth_;
    for (const auto& entry : node.children_) shift(*entry.node);
  };
  shift(*child);
  auto pos = std::lower_bound(
      children_.begin(), children_.end(), index,
      [](const ChildEntry& e, int idx) { return e.index < idx; });
  children_.insert(pos, ChildEntry{static_cast<uint8_t>(index), std::move(child)});
}

double QuadtreeNode::Sseg() const {
  assert(parent_ != nullptr);
  double diff = parent_->summary().Avg() - summary_.Avg();
  return static_cast<double>(summary_.count) * diff * diff;
}

}  // namespace mlq
